// Determinism check for the parallel ingestion pipeline: BuildDataset must
// produce a bit-identical Dataset — entries, interned term streams,
// dictionary contents, counters — and BuildFormPageSet identical weighted
// vectors, at every thread count. This is the ingestion twin of
// cluster_parallel_equivalence_test: per-chunk dictionary shards merged in
// fixed chunk order, outcomes written to per-candidate slots, and all
// policy applied in a serial candidate-order pass.

#include <vector>

#include <gtest/gtest.h>

#include "core/dataset.h"
#include "util/thread_pool.h"
#include "web/fault_injection.h"
#include "web/synthesizer.h"

namespace cafc {
namespace {

web::SynthesizerConfig TestConfig() {
  web::SynthesizerConfig config;
  config.seed = 99;
  config.form_pages_total = 96;
  config.single_attribute_forms = 10;
  config.homogeneous_hubs_per_domain = 30;
  config.mixed_hubs = 60;
  config.directory_hubs = 4;
  config.large_air_hotel_hubs = 4;
  config.non_searchable_form_pages = 16;
  config.noise_pages = 12;
  config.outlier_pages = 2;
  return config;
}

Dataset Build(const web::SyntheticWeb& web, int threads) {
  DatasetOptions options;
  options.collect_anchor_text = true;  // exercise the hub-DOM cache too
  options.threads = threads;
  Result<Dataset> dataset = BuildDataset(web, options);
  EXPECT_TRUE(dataset.ok());
  return std::move(dataset).value();
}

void ExpectDatasetsIdentical(const Dataset& a, const Dataset& b,
                             int threads) {
  SCOPED_TRACE("threads=" + std::to_string(threads));
  EXPECT_TRUE(a.stats == b.stats);
  EXPECT_EQ(a.num_classes, b.num_classes);

  ASSERT_TRUE(a.dictionary != nullptr);
  ASSERT_TRUE(b.dictionary != nullptr);
  ASSERT_EQ(a.dictionary->size(), b.dictionary->size());
  for (vsm::TermId id = 0; id < a.dictionary->size(); ++id) {
    ASSERT_EQ(a.dictionary->term(id), b.dictionary->term(id)) << "id=" << id;
  }

  ASSERT_EQ(a.entries.size(), b.entries.size());
  for (size_t i = 0; i < a.entries.size(); ++i) {
    const DatasetEntry& ea = a.entries[i];
    const DatasetEntry& eb = b.entries[i];
    SCOPED_TRACE(ea.doc.url);
    EXPECT_EQ(ea.doc.url, eb.doc.url);
    EXPECT_EQ(ea.site, eb.site);
    EXPECT_EQ(ea.root_url, eb.root_url);
    EXPECT_EQ(ea.gold, eb.gold);
    EXPECT_EQ(ea.single_attribute, eb.single_attribute);
    EXPECT_EQ(ea.backlinks, eb.backlinks);
    // Interned term streams: same ids, same order, same locations.
    EXPECT_EQ(ea.doc.page_terms, eb.doc.page_terms);
    EXPECT_EQ(ea.doc.form_terms, eb.doc.form_terms);
    ASSERT_EQ(ea.labels.size(), eb.labels.size());
    for (size_t f = 0; f < ea.labels.size(); ++f) {
      EXPECT_EQ(ea.labels[f].field_name, eb.labels[f].field_name);
      EXPECT_EQ(ea.labels[f].label, eb.labels[f].label);
    }
  }
}

class DatasetParallelTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    // Real worker threads even on a 1-core host.
    util::ThreadPool::SetDefaultThreads(8);
    web_ = new web::SyntheticWeb(web::Synthesizer(TestConfig()).Generate());
    serial_ = new Dataset(Build(*web_, 1));
  }
  static void TearDownTestSuite() {
    delete serial_;
    delete web_;
    serial_ = nullptr;
    web_ = nullptr;
    util::ThreadPool::SetDefaultThreads(0);  // restore automatic sizing
  }

  static web::SyntheticWeb* web_;
  static Dataset* serial_;
};

web::SyntheticWeb* DatasetParallelTest::web_ = nullptr;
Dataset* DatasetParallelTest::serial_ = nullptr;

TEST_F(DatasetParallelTest, SerialRunKeepsMostGoldPages) {
  EXPECT_GE(serial_->entries.size(), 90u);
  EXPECT_GT(serial_->dictionary->size(), 0u);
  EXPECT_GT(serial_->stats.term_occurrences, 0u);
  EXPECT_GT(serial_->stats.hub_fetches, 0u);
}

TEST_F(DatasetParallelTest, DatasetIdenticalAcrossThreadCounts) {
  for (int threads : {2, 8}) {
    Dataset parallel = Build(*web_, threads);
    ExpectDatasetsIdentical(*serial_, parallel, threads);
  }
}

TEST_F(DatasetParallelTest, WeightedVectorsIdenticalAcrossThreadCounts) {
  FormPageSet serial_set = BuildFormPageSet(*serial_);
  for (int threads : {2, 8}) {
    Dataset parallel = Build(*web_, threads);
    FormPageSet parallel_set = BuildFormPageSet(parallel);
    ASSERT_EQ(parallel_set.size(), serial_set.size()) << "threads=" << threads;
    for (size_t i = 0; i < serial_set.size(); ++i) {
      EXPECT_EQ(parallel_set.page(i).url, serial_set.page(i).url);
      // Bit-identical weights: same ids, same order, same doubles.
      EXPECT_EQ(parallel_set.page(i).pc, serial_set.page(i).pc)
          << "threads=" << threads << " url=" << serial_set.page(i).url;
      EXPECT_EQ(parallel_set.page(i).fc, serial_set.page(i).fc)
          << "threads=" << threads << " url=" << serial_set.page(i).url;
    }
  }
}

TEST_F(DatasetParallelTest, TransientFaultsInvisibleInFinalDataset) {
  // 30% of URLs fail transiently (twice each); the crawler's default retry
  // budget recovers every one, so the assembled dataset must be
  // bit-identical to the zero-fault dataset — the only trace of the faults
  // is the retry accounting in stats.crawl.
  web::FaultProfile profile;
  profile.transient_rate = 0.3;
  profile.transient_attempts = 2;
  profile.seed = 21;

  auto build_faulted = [&](int threads) {
    // Fresh decorator per run: attempt counters model one run's view of
    // the network, and sharing them would warm later runs.
    web::FaultInjectingFetcher faulty(web_, profile);
    DatasetOptions options;
    options.collect_anchor_text = true;
    options.threads = threads;
    options.fetcher = &faulty;
    Result<Dataset> dataset = BuildDataset(*web_, options);
    EXPECT_TRUE(dataset.ok());
    return std::move(dataset).value();
  };

  Dataset faulted = build_faulted(1);
  EXPECT_GT(faulted.stats.crawl.transient_recovered, 0u);
  EXPECT_GT(faulted.stats.crawl.retry_attempts, 0u);
  EXPECT_EQ(faulted.stats.crawl.fetch_failures(), 0u);

  // Identical across thread counts, including the full failure taxonomy.
  for (int threads : {2, 8}) {
    Dataset parallel = build_faulted(threads);
    ExpectDatasetsIdentical(faulted, parallel, threads);
  }

  // Identical to the zero-fault dataset once the retry accounting (the
  // one legitimate difference) is factored out.
  faulted.stats.crawl = serial_->stats.crawl;
  ExpectDatasetsIdentical(*serial_, faulted, 1);
}

TEST_F(DatasetParallelTest, SingleParsePipelineAccounting) {
  // The pipeline parses each fetched page exactly once, during the crawl:
  // candidates reuse the crawl's DOM and hub anchors come from the crawl's
  // records, so no page is ever parsed twice and every hub fetch is
  // answered without a parse.
  const DatasetStats& stats = serial_->stats;
  EXPECT_EQ(stats.html_parses, stats.crawled_pages);
  EXPECT_GT(stats.hub_fetches, 0u);
  EXPECT_EQ(stats.hub_parse_cache_hits, stats.hub_fetches);
}

}  // namespace
}  // namespace cafc
