#include "text/analyzer.h"

#include <gtest/gtest.h>

namespace cafc::text {
namespace {

TEST(AnalyzerTest, FullPipeline) {
  Analyzer analyzer;
  EXPECT_EQ(analyzer.Analyze("The flights were booked"),
            (std::vector<std::string>{"flight", "book"}));
}

TEST(AnalyzerTest, StopwordsRemoved) {
  Analyzer analyzer;
  EXPECT_EQ(analyzer.Analyze("the a of and"), (std::vector<std::string>{}));
}

TEST(AnalyzerTest, DuplicatesPreserved) {
  Analyzer analyzer;
  EXPECT_EQ(analyzer.Analyze("jobs jobs jobs"),
            (std::vector<std::string>{"job", "job", "job"}));
}

TEST(AnalyzerTest, StemmingDisabled) {
  AnalyzerOptions options;
  options.stem = false;
  Analyzer analyzer(options);
  EXPECT_EQ(analyzer.Analyze("flights booked"),
            (std::vector<std::string>{"flights", "booked"}));
}

TEST(AnalyzerTest, StopwordsDisabled) {
  AnalyzerOptions options;
  options.remove_stopwords = false;
  options.stem = false;
  Analyzer analyzer(options);
  EXPECT_EQ(analyzer.Analyze("the cat"),
            (std::vector<std::string>{"the", "cat"}));
}

TEST(AnalyzerTest, MaxWordLengthDropsBlobs) {
  Analyzer analyzer;  // max 24 default
  std::string blob(30, 'x');
  EXPECT_TRUE(analyzer.Analyze(blob).empty());
  EXPECT_EQ(analyzer.Analyze("normal " + blob),
            (std::vector<std::string>{"normal"}));
}

TEST(AnalyzerTest, AnalyzeWordFiltersAndStems) {
  Analyzer analyzer;
  EXPECT_EQ(analyzer.AnalyzeWord("Flights"), "flight");
  EXPECT_EQ(analyzer.AnalyzeWord("the"), "");
  EXPECT_EQ(analyzer.AnalyzeWord("a"), "");  // below min length
}

TEST(AnalyzerTest, StemsCanShrinkBelowMinLength) {
  // "ties" → "ti": the pipeline keeps post-stem short terms.
  Analyzer analyzer;
  EXPECT_EQ(analyzer.AnalyzeWord("ties"), "ti");
}

TEST(AnalyzerTest, MixedMarkupFreeText) {
  Analyzer analyzer;
  auto terms = analyzer.Analyze("Search 1,000+ job openings today!");
  EXPECT_EQ(terms,
            (std::vector<std::string>{"search", "job", "open", "todai"}));
}

TEST(AnalyzerTest, BigramsEmittedAfterUnigrams) {
  AnalyzerOptions options;
  options.emit_bigrams = true;
  Analyzer analyzer(options);
  EXPECT_EQ(analyzer.Analyze("job category state"),
            (std::vector<std::string>{"job", "categori", "state",
                                      "job_categori", "categori_state"}));
}

TEST(AnalyzerTest, BigramsSkipStopwords) {
  AnalyzerOptions options;
  options.emit_bigrams = true;
  Analyzer analyzer(options);
  // "check" + "in": "in" is a stopword, so the bigram bridges to "date".
  EXPECT_EQ(analyzer.Analyze("check in date"),
            (std::vector<std::string>{"check", "date", "check_date"}));
}

TEST(AnalyzerTest, NoBigramForSingleTerm) {
  AnalyzerOptions options;
  options.emit_bigrams = true;
  Analyzer analyzer(options);
  EXPECT_EQ(analyzer.Analyze("flights"),
            (std::vector<std::string>{"flight"}));
}

TEST(AnalyzerTest, OptionsAccessor) {
  AnalyzerOptions options;
  options.min_word_length = 3;
  Analyzer analyzer(options);
  EXPECT_EQ(analyzer.options().min_word_length, 3u);
  EXPECT_TRUE(analyzer.Analyze("go up").empty());
}

// Resolves AnalyzeInto's id stream back to strings through the dictionary.
std::vector<std::string> InternedStream(const Analyzer& analyzer,
                                        std::string_view input,
                                        AnalyzerScratch* scratch = nullptr) {
  vsm::TermDictionary dict;
  std::vector<vsm::TermId> ids;
  analyzer.AnalyzeInto(input, &dict, &ids, scratch);
  std::vector<std::string> terms;
  terms.reserve(ids.size());
  for (vsm::TermId id : ids) terms.push_back(dict.term(id));
  return terms;
}

TEST(AnalyzeIntoTest, MatchesAnalyzeOnRepresentativeInputs) {
  const char* kInputs[] = {
      "Find Cheap Flights and hotel deals!",
      "job's don't it's  123 mixed-up CASE text",
      "aaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaa tiny ok",
      "",
      "a b c xy",
      "running runner ran runs   ponies pony",
  };
  for (bool stem : {true, false}) {
    for (bool stopwords : {true, false}) {
      AnalyzerOptions options;
      options.stem = stem;
      options.remove_stopwords = stopwords;
      Analyzer analyzer(options);
      for (const char* input : kInputs) {
        EXPECT_EQ(InternedStream(analyzer, input), analyzer.Analyze(input))
            << "stem=" << stem << " stopwords=" << stopwords
            << " input=" << input;
      }
    }
  }
}

TEST(AnalyzeIntoTest, MatchesAnalyzeWithBigrams) {
  AnalyzerOptions options;
  options.emit_bigrams = true;
  Analyzer analyzer(options);
  for (const char* input :
       {"job category state", "check in date", "flights", "",
        "departure city arrival city"}) {
    EXPECT_EQ(InternedStream(analyzer, input), analyzer.Analyze(input))
        << input;
  }
}

TEST(AnalyzeIntoTest, ReusedScratchAndDictionaryAccumulate) {
  Analyzer analyzer;
  AnalyzerScratch scratch;
  vsm::TermDictionary dict;
  std::vector<vsm::TermId> ids;
  analyzer.AnalyzeInto("cheap flights", &dict, &ids, &scratch);
  analyzer.AnalyzeInto("cheap hotels", &dict, &ids, &scratch);
  // Appended, with repeated terms mapping to the same id.
  ASSERT_EQ(ids.size(), 4u);
  EXPECT_EQ(ids[0], ids[2]);  // "cheap" both times
  EXPECT_EQ(dict.size(), 3u);
  EXPECT_EQ(dict.term(ids[1]), "flight");
  EXPECT_EQ(dict.term(ids[3]), "hotel");
}

}  // namespace
}  // namespace cafc::text
