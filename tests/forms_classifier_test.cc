#include "forms/form_classifier.h"

#include <gtest/gtest.h>

#include "forms/form_extractor.h"
#include "html/dom.h"
#include "web/synthesizer.h"

namespace cafc::forms {
namespace {

Form FromHtml(std::string_view html) {
  html::Document doc = html::Parse(html);
  auto forms = ExtractForms(doc);
  EXPECT_EQ(forms.size(), 1u);
  return forms.empty() ? Form{} : forms[0];
}

TEST(FormClassifierTest, KeywordSearchFormIsSearchable) {
  Form form = FromHtml(
      R"(<form action="/search" method="get">
         <input type="text" name="q"><input type="submit" value="search">
         </form>)");
  FormClassifier classifier;
  FormVerdict verdict = classifier.Classify(form);
  EXPECT_TRUE(verdict.searchable);
  EXPECT_GT(verdict.searchable_score, verdict.non_searchable_score);
}

TEST(FormClassifierTest, MultiSelectSearchFormIsSearchable) {
  Form form = FromHtml(
      R"(<form action="/findcars" method="get">
         Make: <select name="make"><option>ford</option><option>honda</option>
         </select>
         Model: <select name="model"><option>civic</option><option>accord
         </option></select>
         <input type="submit" value="find"></form>)");
  EXPECT_TRUE(FormClassifier().IsSearchable(form));
}

TEST(FormClassifierTest, LoginFormRejected) {
  Form form = FromHtml(
      R"(<form action="/login.cgi" method="post">
         username <input type="text" name="username">
         password <input type="password" name="password">
         <input type="submit" value="login"></form>)");
  FormVerdict verdict = FormClassifier().Classify(form);
  EXPECT_FALSE(verdict.searchable);
  EXPECT_GE(verdict.non_searchable_score, 4);
}

TEST(FormClassifierTest, NewsletterSignupRejected) {
  Form form = FromHtml(
      R"(<form action="/subscribe" method="post">
         email address <input type="text" name="email">
         <input type="submit" value="subscribe"></form>)");
  EXPECT_FALSE(FormClassifier().IsSearchable(form));
}

TEST(FormClassifierTest, QuoteRequestRejected) {
  Form form = FromHtml(
      R"(<form action="/quote" method="post">
         your name <input type="text" name="name">
         phone <input type="text" name="phone">
         comments <textarea name="comments"></textarea>
         <input type="submit" value="request a quote"></form>)");
  EXPECT_FALSE(FormClassifier().IsSearchable(form));
}

TEST(FormClassifierTest, FileUploadRejected) {
  Form form = FromHtml(
      R"(<form action="/upload" method="post">
         <input type="file" name="resume">
         <input type="submit" value="send"></form>)");
  EXPECT_FALSE(FormClassifier().IsSearchable(form));
}

TEST(FormClassifierTest, EmptyFormRejected) {
  Form form = FromHtml("<form action=\"/x\"></form>");
  EXPECT_FALSE(FormClassifier().IsSearchable(form));
}

TEST(FormClassifierTest, UnlabeledSingleFieldGetFormSearchable) {
  // The Figure 1(c) case: no label at all, generic action.
  Form form = FromHtml(
      R"(<form action="/query.php" method="get">
         <input type="text" name="keywords">
         <input type="submit" value="go"></form>)");
  EXPECT_TRUE(FormClassifier().IsSearchable(form));
}

TEST(FormClassifierTest, PostSearchFormStillSearchableWithStrongCues) {
  Form form = FromHtml(
      R"(<form action="/search" method="post">
         search our inventory <input type="text" name="query">
         <select name="category"><option>books</option><option>music</option>
         </select><input type="submit" value="search"></form>)");
  EXPECT_TRUE(FormClassifier().IsSearchable(form));
}

struct CueCase {
  const char* name;
  const char* html;
  bool searchable;
};

class ClassifierCueTest : public ::testing::TestWithParam<CueCase> {};

TEST_P(ClassifierCueTest, VerdictMatches) {
  const CueCase& c = GetParam();
  html::Document doc = html::Parse(c.html);
  auto forms = ExtractForms(doc);
  ASSERT_EQ(forms.size(), 1u) << c.name;
  EXPECT_EQ(FormClassifier().IsSearchable(forms[0]), c.searchable)
      << c.name;
}

INSTANTIATE_TEST_SUITE_P(
    Cues, ClassifierCueTest,
    ::testing::Values(
        CueCase{"advanced_search_text",
                R"(<form action="/as" method="get">advanced search
                   <input name="terms"><input type=submit value=go></form>)",
                true},
        CueCase{"browse_catalog_selects",
                R"(<form action="/browse" method="get">
                   <select name="cat"><option>a</option><option>b</option>
                   </select><select name="sub"><option>x</option>
                   <option>y</option></select>
                   <input type=submit value=browse></form>)",
                true},
        CueCase{"query_field_name",
                R"(<form action="/x" method="get"><input name="query">
                   <input type=submit></form>)",
                true},
        CueCase{"locate_action_cue",
                R"(<form action="/locate.jsp" method="get">
                   <input name="city"><input type=submit value=ok></form>)",
                true},
        CueCase{"signin_text_cue",
                R"(<form action="/x" method="post">please sign in
                   <input name="u"><input type="password" name="p">
                   <input type=submit value=ok></form>)",
                false},
        CueCase{"registration_names",
                R"(<form action="/reg" method="post">
                   <input name="firstname"><input name="lastname">
                   <input name="email"><input type=submit value=ok></form>)",
                false},
        CueCase{"feedback_textarea",
                R"(<form action="/fb" method="post">feedback
                   <textarea name="message"></textarea>
                   <input type=submit value=send></form>)",
                false},
        CueCase{"no_fillable_fields",
                R"(<form action="/go" method="get">
                   <input type="submit" value="continue"></form>)",
                false}),
    [](const ::testing::TestParamInfo<CueCase>& info) {
      return info.param.name;
    });

// Corpus-level check: the classifier must accept (nearly) all generated
// searchable forms and reject (nearly) all generated non-searchable ones.
TEST(FormClassifierTest, HighAccuracyOnSyntheticCorpus) {
  web::SynthesizerConfig config;
  config.seed = 11;
  config.form_pages_total = 120;
  config.single_attribute_forms = 15;
  config.homogeneous_hubs_per_domain = 10;
  config.mixed_hubs = 10;
  config.directory_hubs = 2;
  config.large_air_hotel_hubs = 2;
  config.non_searchable_form_pages = 40;
  config.noise_pages = 0;
  web::SyntheticWeb web = web::Synthesizer(config).Generate();

  FormClassifier classifier;
  int searchable_accepted = 0;
  for (const web::FormPageInfo& info : web.form_pages()) {
    auto page = web.Fetch(info.url);
    ASSERT_TRUE(page.ok());
    html::Document doc = html::Parse((*page)->html);
    bool any = false;
    for (const Form& form : ExtractForms(doc)) {
      any = any || classifier.IsSearchable(form);
    }
    searchable_accepted += any ? 1 : 0;
  }
  EXPECT_GE(searchable_accepted, 114);  // >= 95% recall

  int non_searchable_rejected = 0;
  int non_searchable_total = 0;
  for (const web::WebPage& page : web.pages()) {
    if (page.url.find("login.html") == std::string::npos &&
        page.url.find("signup.html") == std::string::npos) {
      continue;
    }
    ++non_searchable_total;
    html::Document doc = html::Parse(page.html);
    bool any = false;
    for (const Form& form : ExtractForms(doc)) {
      any = any || classifier.IsSearchable(form);
    }
    non_searchable_rejected += any ? 0 : 1;
  }
  ASSERT_EQ(non_searchable_total, 40);
  EXPECT_GE(non_searchable_rejected, 38);  // >= 95% rejection
}

}  // namespace
}  // namespace cafc::forms
