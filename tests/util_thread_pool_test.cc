// Tests for the ThreadPool / ParallelFor determinism contract: fixed
// grain-based chunking independent of thread count, exception propagation,
// nested-loop safety, and the ScopedThreads per-thread override.
//
// The CI box may expose a single core, so these tests construct pools with
// an explicit thread count (and restore the default pool afterwards) to
// exercise real cross-thread execution regardless of the host.

#include "util/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <mutex>
#include <stdexcept>
#include <utility>
#include <vector>

#include "gtest/gtest.h"

namespace cafc::util {
namespace {

/// Collects the chunk boundaries a ParallelFor produced, in sorted order
/// (arrival order is nondeterministic; the *set* of chunks must not be).
std::vector<std::pair<size_t, size_t>> Chunks(ThreadPool* pool, size_t begin,
                                              size_t end, size_t grain) {
  std::mutex m;
  std::vector<std::pair<size_t, size_t>> chunks;
  pool->ParallelFor(begin, end, grain, [&](size_t b, size_t e) {
    std::lock_guard<std::mutex> lock(m);
    chunks.emplace_back(b, e);
  });
  std::sort(chunks.begin(), chunks.end());
  return chunks;
}

TEST(ThreadPoolTest, EmptyRangeRunsNothing) {
  ThreadPool pool(4);
  std::atomic<int> calls{0};
  pool.ParallelFor(0, 0, 8, [&](size_t, size_t) { ++calls; });
  pool.ParallelFor(5, 5, 8, [&](size_t, size_t) { ++calls; });
  // begin > end is treated as empty, not as a huge wrapped range.
  pool.ParallelFor(7, 3, 8, [&](size_t, size_t) { ++calls; });
  EXPECT_EQ(calls.load(), 0);
}

TEST(ThreadPoolTest, CoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  const size_t n = 1000;
  std::vector<std::atomic<int>> hits(n);
  for (auto& h : hits) h.store(0);
  pool.ParallelFor(0, n, 7, [&](size_t b, size_t e) {
    for (size_t i = b; i < e; ++i) hits[i].fetch_add(1);
  });
  for (size_t i = 0; i < n; ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ThreadPoolTest, ChunkBoundariesIndependentOfThreadCount) {
  ThreadPool serial(1);
  ThreadPool two(2);
  ThreadPool four(4);
  for (size_t grain : {size_t{1}, size_t{3}, size_t{16}, size_t{1000}}) {
    auto expected = Chunks(&serial, 10, 143, grain);
    EXPECT_EQ(Chunks(&two, 10, 143, grain), expected) << "grain " << grain;
    EXPECT_EQ(Chunks(&four, 10, 143, grain), expected) << "grain " << grain;
  }
}

TEST(ThreadPoolTest, GrainZeroIsTreatedAsOne) {
  ThreadPool pool(2);
  auto chunks = Chunks(&pool, 0, 5, 0);
  ASSERT_EQ(chunks.size(), 5u);
  for (size_t i = 0; i < 5; ++i) {
    EXPECT_EQ(chunks[i], std::make_pair(i, i + 1));
  }
}

TEST(ThreadPoolTest, GrainLargerThanRangeYieldsOneChunk) {
  ThreadPool pool(4);
  auto chunks = Chunks(&pool, 3, 20, 1000);
  ASSERT_EQ(chunks.size(), 1u);
  EXPECT_EQ(chunks[0], std::make_pair(size_t{3}, size_t{20}));
}

TEST(ThreadPoolTest, ExceptionPropagatesToCaller) {
  ThreadPool pool(4);
  EXPECT_THROW(
      pool.ParallelFor(0, 100, 1,
                       [&](size_t b, size_t) {
                         if (b == 42) throw std::runtime_error("chunk 42");
                       }),
      std::runtime_error);
  // The pool must stay usable after a throwing loop.
  std::atomic<size_t> sum{0};
  pool.ParallelFor(0, 10, 1, [&](size_t b, size_t) { sum.fetch_add(b); });
  EXPECT_EQ(sum.load(), 45u);
}

TEST(ThreadPoolTest, ExceptionDoesNotAbortOtherChunks) {
  ThreadPool pool(4);
  std::atomic<int> executed{0};
  try {
    pool.ParallelFor(0, 64, 1, [&](size_t b, size_t) {
      ++executed;
      if (b == 0) throw std::runtime_error("first chunk");
    });
    FAIL() << "expected std::runtime_error";
  } catch (const std::runtime_error&) {
  }
  // Every chunk ran even though one threw.
  EXPECT_EQ(executed.load(), 64);
}

TEST(ThreadPoolTest, NestedParallelForDoesNotDeadlock) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(64);
  for (auto& h : hits) h.store(0);
  pool.ParallelFor(0, 8, 1, [&](size_t ob, size_t oe) {
    for (size_t o = ob; o < oe; ++o) {
      // Nested loops run inline on the worker; they must neither deadlock
      // nor skip work.
      pool.ParallelFor(0, 8, 1, [&](size_t ib, size_t ie) {
        for (size_t i = ib; i < ie; ++i) hits[o * 8 + i].fetch_add(1);
      });
    }
  });
  for (size_t i = 0; i < hits.size(); ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "slot " << i;
  }
}

TEST(ThreadPoolTest, ParallelSumMatchesSerialWithOrderedReduction) {
  // The documented reduction pattern: disjoint slot writes, then a serial
  // in-order combine. The result must be bit-identical across pool sizes.
  const size_t n = 10000;
  std::vector<double> values(n);
  for (size_t i = 0; i < n; ++i) {
    values[i] = 1.0 / static_cast<double>(i + 1);
  }
  auto sum_with = [&](ThreadPool* pool) {
    const size_t grain = 64;
    const size_t num_chunks = (n + grain - 1) / grain;
    std::vector<double> partial(num_chunks, 0.0);
    pool->ParallelFor(0, n, grain, [&](size_t b, size_t e) {
      double s = 0.0;
      for (size_t i = b; i < e; ++i) s += values[i];
      partial[b / grain] = s;
    });
    double total = 0.0;
    for (double p : partial) total += p;
    return total;
  };
  ThreadPool serial(1);
  ThreadPool four(4);
  EXPECT_EQ(sum_with(&serial), sum_with(&four));  // exact, not Near
}

TEST(ThreadPoolTest, ShutdownDrainsInFlightWorkAndIsIdempotent) {
  ThreadPool pool(4);
  // A loop racing the shutdown from another thread: Shutdown must block
  // until every chunk of the in-flight job ran, never strand one.
  std::atomic<int> executed{0};
  std::thread racer([&] {
    pool.ParallelFor(0, 256, 1, [&](size_t, size_t) {
      ++executed;
    });
  });
  pool.Shutdown();
  racer.join();
  EXPECT_EQ(executed.load(), 256);
  pool.Shutdown();  // second call is a no-op, not a double-join
}

TEST(ThreadPoolTest, ParallelForAfterShutdownRunsSeriallyInline) {
  ThreadPool pool(4);
  pool.Shutdown();
  // Post-shutdown loops must still cover the range — inline on the caller,
  // so unsynchronized writes are safe and chunk order is ascending.
  std::vector<int> order;
  pool.ParallelFor(0, 6, 2, [&](size_t b, size_t) {
    order.push_back(static_cast<int>(b));
  });
  EXPECT_EQ(order, (std::vector<int>{0, 2, 4}));
}

TEST(ThreadPoolTest, DoubleShutdownWithoutWorkIsSafe) {
  ThreadPool pool(2);
  pool.Shutdown();
  pool.Shutdown();
  std::atomic<size_t> sum{0};
  pool.ParallelFor(0, 10, 1, [&](size_t b, size_t) { sum.fetch_add(b); });
  EXPECT_EQ(sum.load(), 45u);
}

TEST(ScopedThreadsTest, OverrideCapsEffectiveThreads) {
  ThreadPool::SetDefaultThreads(4);
  EXPECT_EQ(ThreadPool::EffectiveThreads(), 4);
  {
    ScopedThreads one(1);
    EXPECT_EQ(ThreadPool::EffectiveThreads(), 1);
    {
      // Nested override narrows further; restores outward on scope exit.
      ScopedThreads two(2);  // larger than the active override of 1...
      EXPECT_EQ(ThreadPool::EffectiveThreads(), 2);
    }
    EXPECT_EQ(ThreadPool::EffectiveThreads(), 1);
  }
  EXPECT_EQ(ThreadPool::EffectiveThreads(), 4);
  {
    // Requests above the pool size are capped at the pool size.
    ScopedThreads many(64);
    EXPECT_EQ(ThreadPool::EffectiveThreads(), 4);
  }
  {
    // <= 0 means "no override".
    ScopedThreads none(0);
    EXPECT_EQ(ThreadPool::EffectiveThreads(), 4);
  }
  ThreadPool::SetDefaultThreads(0);  // restore automatic sizing
}

TEST(ScopedThreadsTest, OverrideOfOneRunsSerially) {
  ThreadPool::SetDefaultThreads(4);
  {
    ScopedThreads one(1);
    // With the override the free ParallelFor must run inline: writes from
    // the loop are visible without any synchronization.
    std::vector<int> order;
    util::ParallelFor(0, 6, 2, [&](size_t b, size_t) {
      order.push_back(static_cast<int>(b));  // unsynchronized on purpose
    });
    EXPECT_EQ(order, (std::vector<int>{0, 2, 4}));  // ascending chunk order
  }
  ThreadPool::SetDefaultThreads(0);
}

TEST(FreeParallelForTest, UsesDefaultPool) {
  ThreadPool::SetDefaultThreads(3);
  std::atomic<size_t> sum{0};
  util::ParallelFor(0, 100, 10,
                    [&](size_t b, size_t e) { sum.fetch_add(e - b); });
  EXPECT_EQ(sum.load(), 100u);
  ThreadPool::SetDefaultThreads(0);
}

}  // namespace
}  // namespace cafc::util
