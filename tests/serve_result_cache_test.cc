// Tests of the epoch-keyed result cache: exact-version freshness, LRU
// byte budgeting, the stale LookupAny degradation path, and — through a
// live DirectoryServer — the refresh-storm invariant the workload bench
// gates: after snapshot N+1 publishes, no answer computed at snapshot N
// is ever served without the stale flag.

#include "serve/result_cache.h"

#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "core/cafc.h"
#include "core/corpus.h"
#include "core/ingest.h"
#include "serve/server.h"
#include "util/rng.h"
#include "web/synthesizer.h"

namespace cafc {
namespace {

using serve::CachedAnswer;
using serve::ResultCache;
using serve::ResultCacheStats;

CachedAnswer SearchAnswer(uint64_t version, size_t num_hits) {
  CachedAnswer answer;
  answer.is_search = true;
  answer.snapshot_version = version;
  answer.corpus_epoch = version;
  for (size_t i = 0; i < num_hits; ++i) {
    DatabaseDirectory::SearchHit hit;
    hit.entry = static_cast<int>(i);
    hit.similarity = 1.0 / static_cast<double>(i + 1);
    answer.hits.push_back(hit);
  }
  return answer;
}

TEST(ResultCacheTest, FreshHitRequiresExactSnapshotVersion) {
  ResultCache cache(1 << 20);
  cache.Insert("key", SearchAnswer(3, 2));

  CachedAnswer out;
  ASSERT_TRUE(cache.Lookup("key", 3, &out));
  EXPECT_EQ(out.snapshot_version, 3u);
  ASSERT_EQ(out.hits.size(), 2u);
  EXPECT_EQ(out.hits[0].entry, 0);
  EXPECT_EQ(out.hits[1].similarity, 0.5);  // exact doubles

  // A version bump invalidates wholesale: the same key misses fresh...
  EXPECT_FALSE(cache.Lookup("key", 4, &out));
  EXPECT_FALSE(cache.Lookup("key", 2, &out));
  // ...but stays reachable through the degradation path.
  ASSERT_TRUE(cache.LookupAny("key", &out));
  EXPECT_EQ(out.snapshot_version, 3u);

  ResultCacheStats stats = cache.Stats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 2u);
  EXPECT_EQ(stats.stale_hits, 1u);
}

TEST(ResultCacheTest, MissOnAbsentKey) {
  ResultCache cache(1 << 20);
  CachedAnswer out;
  EXPECT_FALSE(cache.Lookup("absent", 1, &out));
  EXPECT_FALSE(cache.LookupAny("absent", &out));
  EXPECT_EQ(cache.Stats().misses, 1u);
}

TEST(ResultCacheTest, InsertReplacesSameKey) {
  ResultCache cache(1 << 20);
  cache.Insert("key", SearchAnswer(1, 1));
  cache.Insert("key", SearchAnswer(2, 3));
  EXPECT_EQ(cache.Stats().entries, 1u);
  CachedAnswer out;
  EXPECT_FALSE(cache.Lookup("key", 1, &out));  // superseded
  ASSERT_TRUE(cache.Lookup("key", 2, &out));
  EXPECT_EQ(out.hits.size(), 3u);
}

TEST(ResultCacheTest, LruEvictionHoldsByteBudget) {
  // Budget sized for only a few entries; a steady stream must evict.
  ResultCache cache(600);
  for (int i = 0; i < 64; ++i) {
    cache.Insert("key-" + std::to_string(i), SearchAnswer(1, 2));
  }
  ResultCacheStats stats = cache.Stats();
  EXPECT_GT(stats.evictions, 0u);
  EXPECT_LE(stats.bytes, 600u);
  EXPECT_LT(stats.entries, 64u);
  // The newest entry always survives its own insert.
  CachedAnswer out;
  EXPECT_TRUE(cache.Lookup("key-63", 1, &out));
  EXPECT_FALSE(cache.Lookup("key-0", 1, &out));
}

TEST(ResultCacheTest, FreshLookupRefreshesLruStaleLookupDoesNot) {
  // Budget fits exactly two of these entries (each ~ key + 2 hits + 128).
  const size_t entry_bytes = 5 + 2 * sizeof(DatabaseDirectory::SearchHit) +
                             128;
  ResultCache cache(2 * entry_bytes);
  CachedAnswer out;

  cache.Insert("old-a", SearchAnswer(1, 2));
  cache.Insert("old-b", SearchAnswer(1, 2));
  ASSERT_TRUE(cache.Lookup("old-a", 1, &out));  // refreshes a to MRU
  cache.Insert("new-c", SearchAnswer(1, 2));    // evicts b, not a
  EXPECT_TRUE(cache.Lookup("old-a", 1, &out));
  EXPECT_FALSE(cache.Lookup("old-b", 1, &out));

  cache.Clear();
  cache.Insert("old-a", SearchAnswer(1, 2));
  cache.Insert("old-b", SearchAnswer(1, 2));
  ASSERT_TRUE(cache.LookupAny("old-a", &out));  // no LRU refresh
  cache.Insert("new-c", SearchAnswer(1, 2));    // evicts a (still LRU tail)
  EXPECT_FALSE(cache.Lookup("old-a", 1, &out));
  EXPECT_TRUE(cache.Lookup("old-b", 1, &out));
}

TEST(ResultCacheTest, ZeroBudgetDisablesAndOversizeIsDropped) {
  ResultCache off(0);
  off.Insert("key", SearchAnswer(1, 1));
  CachedAnswer out;
  EXPECT_FALSE(off.Lookup("key", 1, &out));
  EXPECT_EQ(off.Stats().entries, 0u);

  ResultCache tiny(64);  // smaller than any single entry's estimate
  tiny.Insert("key", SearchAnswer(1, 8));
  EXPECT_FALSE(tiny.LookupAny("key", &out));
  EXPECT_EQ(tiny.Stats().entries, 0u);
}

TEST(ResultCacheTest, ClearDropsEntriesKeepsCounters) {
  ResultCache cache(1 << 20);
  cache.Insert("key", SearchAnswer(1, 1));
  CachedAnswer out;
  ASSERT_TRUE(cache.Lookup("key", 1, &out));
  cache.Clear();
  EXPECT_FALSE(cache.Lookup("key", 1, &out));
  ResultCacheStats stats = cache.Stats();
  EXPECT_EQ(stats.entries, 0u);
  EXPECT_EQ(stats.bytes, 0u);
  EXPECT_EQ(stats.hits, 1u);  // lifetime counters survive Clear
  EXPECT_EQ(stats.inserts, 1u);
}

// ---------------------------------------------------------------------
// Refresh-storm invariant through the full server.

web::SynthesizerConfig GrowConfig(uint32_t seed, size_t form_pages) {
  web::SynthesizerConfig config;
  config.seed = seed;
  config.form_pages_total = form_pages;
  config.single_attribute_forms = form_pages / 8;
  config.homogeneous_hubs_per_domain = 20;
  config.mixed_hubs = 30;
  config.directory_hubs = 3;
  config.large_air_hotel_hubs = 3;
  config.non_searchable_form_pages = 2;
  config.noise_pages = 2;
  config.outlier_pages = 0;
  return config;
}

Corpus GrowCorpus(uint32_t seed, size_t form_pages) {
  web::SyntheticWeb web =
      web::Synthesizer(GrowConfig(seed, form_pages)).Generate();
  Result<CorpusBuild> build = BuildCorpus(web);
  EXPECT_TRUE(build.ok()) << build.status().ToString();
  return std::move(build->corpus);
}

DatabaseDirectory BuildDirectory(Corpus& corpus, int k = 6) {
  Rng rng(1234);
  cluster::Clustering clustering =
      CafcC(corpus.Weighted(), k, CafcOptions{}, &rng);
  return DatabaseDirectory::Build(
      corpus.Weighted(), clustering,
      DatabaseDirectory::AutoLabels(corpus.Weighted(), clustering));
}

serve::QueryRequest SearchRequest(std::string query) {
  serve::QueryRequest request;
  request.kind = serve::QueryKind::kSearch;
  request.query = std::move(query);
  request.top_k = 5;
  return request;
}

TEST(ResultCacheStormTest, NoSupersededAnswerServedUnflaggedAcrossSwaps) {
  Corpus corpus = GrowCorpus(21, 48);
  DatabaseDirectory directory = BuildDirectory(corpus);

  serve::DirectoryServerOptions options;
  options.workers = 2;
  options.cache_bytes = 1 << 20;
  serve::DirectoryServer server(std::move(directory), std::move(corpus),
                                options);

  const std::vector<std::string> queries = {
      "job career", "hotel room flight", "music cd", "book author",
      "car rental"};
  constexpr int kSwaps = 5;

  uint64_t fresh_hits = 0;
  for (int round = 0; round <= kSwaps; ++round) {
    if (round > 0) {
      // One refresh batch per round: the 5-swap storm.
      Corpus incoming = GrowCorpus(100 + static_cast<uint32_t>(round), 24);
      ASSERT_TRUE(server.ScheduleRefresh(incoming.TakeEntries()).ok());
      server.WaitForRefreshes();
    }
    const uint64_t version = server.snapshot()->version();
    ASSERT_EQ(version, static_cast<uint64_t>(round) + 1);

    for (int pass = 0; pass < 2; ++pass) {
      for (const std::string& q : queries) {
        serve::QueryResponse response = server.Query(SearchRequest(q));
        ASSERT_TRUE(response.status.ok()) << response.status.ToString();
        // The invariant: without the stale flag, the answer must carry
        // the currently published snapshot version — a cached epoch-N
        // answer must never leak through after N+1 published. (No
        // refresh is in flight here, so the published version is
        // stable across the Query call.)
        EXPECT_FALSE(response.stale);
        EXPECT_EQ(response.snapshot_version, version)
            << "round " << round << " query " << q;
        if (response.cache_hit) ++fresh_hits;
      }
    }
  }

  // The second pass of every round ran at an unchanged version, so the
  // cache must have produced fresh hits (warm-pass hit rate).
  EXPECT_GE(fresh_hits, static_cast<uint64_t>(kSwaps + 1) * queries.size());

  serve::ServerStats stats = server.Stats();
  EXPECT_EQ(stats.refreshes, static_cast<uint64_t>(kSwaps));
  EXPECT_EQ(stats.stale_served, 0u);  // never overloaded here
  // Accounting identity across the storm.
  EXPECT_EQ(stats.submitted, stats.accepted + stats.rejected_queue_full +
                                 stats.rejected_stopped + stats.cache_hits +
                                 stats.stale_served);
  server.Shutdown();
}

TEST(ResultCacheStormTest, CachedAnswerIsBitIdenticalToRecompute) {
  Corpus corpus = GrowCorpus(21, 48);
  DatabaseDirectory directory = BuildDirectory(corpus);
  Corpus oracle_corpus = GrowCorpus(21, 48);
  DatabaseDirectory oracle = BuildDirectory(oracle_corpus);

  serve::DirectoryServerOptions options;
  options.workers = 2;
  options.cache_bytes = 1 << 20;
  serve::DirectoryServer server(std::move(directory), std::move(corpus),
                                options);

  for (const char* q : {"job career", "hotel room flight"}) {
    serve::QueryResponse cold = server.Query(SearchRequest(q));
    ASSERT_TRUE(cold.status.ok());
    EXPECT_FALSE(cold.cache_hit);
    serve::QueryResponse warm = server.Query(SearchRequest(q));
    ASSERT_TRUE(warm.status.ok());
    EXPECT_TRUE(warm.cache_hit);

    auto expected = oracle.Search(q, 5);
    ASSERT_EQ(warm.hits.size(), expected.size()) << q;
    ASSERT_EQ(warm.hits.size(), cold.hits.size()) << q;
    for (size_t i = 0; i < expected.size(); ++i) {
      EXPECT_EQ(warm.hits[i].entry, expected[i].entry) << q;
      EXPECT_EQ(warm.hits[i].similarity, expected[i].similarity) << q;
      EXPECT_EQ(warm.hits[i].entry, cold.hits[i].entry) << q;
      EXPECT_EQ(warm.hits[i].similarity, cold.hits[i].similarity) << q;
    }
  }
  server.Shutdown();
}

}  // namespace
}  // namespace cafc
