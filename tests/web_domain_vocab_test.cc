#include "web/domain_vocab.h"

#include <set>

#include <gtest/gtest.h>

namespace cafc::web {
namespace {

TEST(DomainVocabTest, AllDomainsEnumerated) {
  EXPECT_EQ(AllDomains().size(), static_cast<size_t>(kNumDomains));
  std::set<Domain> unique(AllDomains().begin(), AllDomains().end());
  EXPECT_EQ(unique.size(), static_cast<size_t>(kNumDomains));
}

TEST(DomainVocabTest, NamesAreDistinct) {
  std::set<std::string_view> names;
  for (Domain d : AllDomains()) names.insert(DomainName(d));
  EXPECT_EQ(names.size(), static_cast<size_t>(kNumDomains));
}

class DomainSpecTest : public ::testing::TestWithParam<Domain> {};

TEST_P(DomainSpecTest, SpecIsWellFormed) {
  const DomainSpec& spec = GetDomainSpec(GetParam());
  EXPECT_EQ(spec.domain, GetParam());
  EXPECT_GE(spec.attributes.size(), 6u) << DomainName(GetParam());
  EXPECT_GE(spec.content_terms.size(), 50u);
  EXPECT_GE(spec.title_terms.size(), 5u);
  EXPECT_GE(spec.site_terms.size(), 5u);
}

TEST_P(DomainSpecTest, AttributesHaveLabels) {
  const DomainSpec& spec = GetDomainSpec(GetParam());
  for (const AttributeSpec& attr : spec.attributes) {
    EXPECT_FALSE(attr.labels.empty());
    for (const std::string& label : attr.labels) {
      EXPECT_FALSE(label.empty());
    }
    if (attr.prefer_select) {
      EXPECT_GE(attr.values.size(), 2u);
    }
  }
}

TEST_P(DomainSpecTest, SchemaHasMultiAttributeCapacity) {
  // The generator renders up to 9 attributes + 1 borrowed; the pool must
  // support that without repetition.
  EXPECT_GE(GetDomainSpec(GetParam()).attributes.size(), 6u);
}

TEST_P(DomainSpecTest, SpecIsSingletonReference) {
  const DomainSpec& a = GetDomainSpec(GetParam());
  const DomainSpec& b = GetDomainSpec(GetParam());
  EXPECT_EQ(&a, &b);
}

INSTANTIATE_TEST_SUITE_P(AllDomains, DomainSpecTest,
                         ::testing::ValuesIn(AllDomains()),
                         [](const ::testing::TestParamInfo<Domain>& info) {
                           return std::string(DomainName(info.param));
                         });

TEST(DomainVocabTest, SharedPoolsNonEmpty) {
  EXPECT_GE(GenericWebTerms().size(), 40u);
  EXPECT_GE(GenericFormTerms().size(), 10u);
  EXPECT_GE(MediaOverlapTerms().size(), 15u);
  EXPECT_GE(TravelOverlapTerms().size(), 15u);
}

TEST(DomainVocabTest, MediaOverlapIsAboutMedia) {
  // Spot-check that the pool carries the Music/Movie-shared signal the
  // paper describes (dvd, soundtrack, title...).
  std::set<std::string> pool(MediaOverlapTerms().begin(),
                             MediaOverlapTerms().end());
  EXPECT_TRUE(pool.contains("dvd"));
  EXPECT_TRUE(pool.contains("soundtrack"));
  EXPECT_TRUE(pool.contains("title"));
}

TEST(DomainVocabTest, JobAndAirfareVocabulariesMostlyDisjoint) {
  std::set<std::string> job(GetDomainSpec(Domain::kJob).content_terms.begin(),
                            GetDomainSpec(Domain::kJob).content_terms.end());
  int shared = 0;
  for (const std::string& t :
       GetDomainSpec(Domain::kAirfare).content_terms) {
    if (job.contains(t)) ++shared;
  }
  EXPECT_LE(shared, 3);
}

TEST(DomainVocabTest, AutoAndCarRentalOverlapExists) {
  // Realistic cross-domain confusion: both verticals talk about cars.
  std::set<std::string> auto_terms(
      GetDomainSpec(Domain::kAuto).content_terms.begin(),
      GetDomainSpec(Domain::kAuto).content_terms.end());
  int shared = 0;
  for (const std::string& t :
       GetDomainSpec(Domain::kCarRental).content_terms) {
    if (auto_terms.contains(t)) ++shared;
  }
  EXPECT_GE(shared, 3);
}

TEST(DomainVocabTest, FigureOneSynonymsPresent) {
  // The paper's Figure 1: "Job Category" vs "Industry" name the same
  // attribute on different sites.
  const DomainSpec& job = GetDomainSpec(Domain::kJob);
  bool found = false;
  for (const AttributeSpec& attr : job.attributes) {
    bool has_category = false;
    bool has_industry = false;
    for (const std::string& label : attr.labels) {
      if (label == "job category") has_category = true;
      if (label == "industry") has_industry = true;
    }
    found = found || (has_category && has_industry);
  }
  EXPECT_TRUE(found);
}

}  // namespace
}  // namespace cafc::web
