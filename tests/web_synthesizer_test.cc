#include "web/synthesizer.h"

#include <algorithm>
#include <set>
#include <unordered_set>

#include <gtest/gtest.h>

#include "html/dom.h"
#include "web/url.h"

namespace cafc::web {
namespace {

SynthesizerConfig SmallConfig(uint64_t seed = 5) {
  SynthesizerConfig config;
  config.seed = seed;
  config.form_pages_total = 80;
  config.single_attribute_forms = 10;
  config.homogeneous_hubs_per_domain = 40;
  config.mixed_hubs = 100;
  config.directory_hubs = 5;
  config.large_air_hotel_hubs = 6;
  config.non_searchable_form_pages = 10;
  config.noise_pages = 10;
  config.outlier_pages = 2;
  return config;
}

TEST(SynthesizerTest, GoldFormPageCountMatchesConfig) {
  SyntheticWeb web = Synthesizer(SmallConfig()).Generate();
  EXPECT_EQ(web.form_pages().size(), 80u);
}

TEST(SynthesizerTest, SingleAttributeCountMatchesConfig) {
  SyntheticWeb web = Synthesizer(SmallConfig()).Generate();
  int singles = 0;
  for (const FormPageInfo& info : web.form_pages()) {
    if (info.single_attribute) ++singles;
  }
  EXPECT_EQ(singles, 10);
}

TEST(SynthesizerTest, DefaultConfigMatchesPaperDataset) {
  SyntheticWeb web = Synthesizer(SynthesizerConfig{}).Generate();
  EXPECT_EQ(web.form_pages().size(), 454u);
  int singles = 0;
  for (const FormPageInfo& info : web.form_pages()) {
    if (info.single_attribute) ++singles;
  }
  EXPECT_EQ(singles, 56);
}

TEST(SynthesizerTest, AllEightDomainsRepresented) {
  SyntheticWeb web = Synthesizer(SmallConfig()).Generate();
  std::set<Domain> domains;
  for (const FormPageInfo& info : web.form_pages()) {
    domains.insert(info.domain);
  }
  EXPECT_EQ(domains.size(), static_cast<size_t>(kNumDomains));
}

TEST(SynthesizerTest, DeterministicPerSeed) {
  SyntheticWeb a = Synthesizer(SmallConfig(9)).Generate();
  SyntheticWeb b = Synthesizer(SmallConfig(9)).Generate();
  ASSERT_EQ(a.pages().size(), b.pages().size());
  for (size_t i = 0; i < a.pages().size(); ++i) {
    EXPECT_EQ(a.pages()[i].url, b.pages()[i].url);
    EXPECT_EQ(a.pages()[i].html, b.pages()[i].html);
  }
}

TEST(SynthesizerTest, DifferentSeedsDiffer) {
  SyntheticWeb a = Synthesizer(SmallConfig(1)).Generate();
  SyntheticWeb b = Synthesizer(SmallConfig(2)).Generate();
  bool any_difference = a.pages().size() != b.pages().size();
  for (size_t i = 0; !any_difference && i < a.pages().size(); ++i) {
    any_difference = a.pages()[i].html != b.pages()[i].html;
  }
  EXPECT_TRUE(any_difference);
}

TEST(SynthesizerTest, UrlsAreUniqueAndFetchable) {
  SyntheticWeb web = Synthesizer(SmallConfig()).Generate();
  std::unordered_set<std::string> urls;
  for (const WebPage& page : web.pages()) {
    EXPECT_TRUE(urls.insert(page.url).second) << "duplicate " << page.url;
    Result<const WebPage*> fetched = web.Fetch(page.url);
    ASSERT_TRUE(fetched.ok());
    EXPECT_EQ((*fetched)->url, page.url);
  }
}

TEST(SynthesizerTest, FetchUnknownFails) {
  SyntheticWeb web = Synthesizer(SmallConfig()).Generate();
  EXPECT_FALSE(web.Fetch("http://not-generated.com/").ok());
}

TEST(SynthesizerTest, GoldFormPagesContainForms) {
  SyntheticWeb web = Synthesizer(SmallConfig()).Generate();
  for (const FormPageInfo& info : web.form_pages()) {
    Result<const WebPage*> page = web.Fetch(info.url);
    ASSERT_TRUE(page.ok());
    html::Document doc = html::Parse((*page)->html);
    EXPECT_NE(doc.root().FindFirst("form"), nullptr) << info.url;
  }
}

TEST(SynthesizerTest, RootPagesLinkToFormPages) {
  SyntheticWeb web = Synthesizer(SmallConfig()).Generate();
  const LinkGraph& g = web.graph();
  for (const FormPageInfo& info : web.form_pages()) {
    PageId root = g.Lookup(info.root_url);
    PageId form = g.Lookup(info.url);
    ASSERT_NE(root, kInvalidPageId);
    ASSERT_NE(form, kInvalidPageId);
    const auto& out = g.OutLinks(root);
    EXPECT_NE(std::find(out.begin(), out.end(), form), out.end())
        << info.root_url << " must link " << info.url;
  }
}

TEST(SynthesizerTest, FormAndRootShareSite) {
  SyntheticWeb web = Synthesizer(SmallConfig()).Generate();
  for (const FormPageInfo& info : web.form_pages()) {
    EXPECT_EQ(SiteOf(info.url), SiteOf(info.root_url));
  }
}

TEST(SynthesizerTest, HubPagesLinkOnlyOffSite) {
  SyntheticWeb web = Synthesizer(SmallConfig()).Generate();
  const LinkGraph& g = web.graph();
  for (const std::string& hub : web.hub_urls()) {
    PageId id = g.Lookup(hub);
    ASSERT_NE(id, kInvalidPageId);
    for (PageId target : g.OutLinks(id)) {
      EXPECT_NE(SiteOf(g.url(target)), SiteOf(hub));
    }
  }
}

TEST(SynthesizerTest, SeedsCoverHubsAndRoots) {
  SyntheticWeb web = Synthesizer(SmallConfig()).Generate();
  std::unordered_set<std::string> seeds(web.seed_urls().begin(),
                                        web.seed_urls().end());
  for (const std::string& hub : web.hub_urls()) {
    EXPECT_TRUE(seeds.contains(hub));
  }
  for (const FormPageInfo& info : web.form_pages()) {
    EXPECT_TRUE(seeds.contains(info.root_url));
  }
}

TEST(SynthesizerTest, FindFormPage) {
  SyntheticWeb web = Synthesizer(SmallConfig()).Generate();
  const FormPageInfo& first = web.form_pages().front();
  const FormPageInfo* found = web.FindFormPage(first.url);
  ASSERT_NE(found, nullptr);
  EXPECT_EQ(found->domain, first.domain);
  EXPECT_EQ(web.FindFormPage("http://nope.com/"), nullptr);
}

TEST(SynthesizerTest, OutlierPagesMarked) {
  SyntheticWeb web = Synthesizer(SmallConfig()).Generate();
  int outliers = 0;
  for (const FormPageInfo& info : web.form_pages()) {
    if (info.outlier_vocabulary) ++outliers;
  }
  EXPECT_EQ(outliers, 2);
}

TEST(SynthesizerTest, AmbiguousMediaStoresAreMusicLabelled) {
  SyntheticWeb web = Synthesizer(SynthesizerConfig{}).Generate();
  int ambiguous = 0;
  for (const FormPageInfo& info : web.form_pages()) {
    if (info.ambiguous_media) {
      ++ambiguous;
      EXPECT_EQ(info.domain, Domain::kMusic);
    }
  }
  EXPECT_EQ(ambiguous, SynthesizerConfig{}.ambiguous_media_stores);
}

TEST(SynthesizerTest, GeneratedHtmlParsesWithoutFormLeakage) {
  // Hidden-input machine tokens must sit inside attribute values only —
  // never as visible page text.
  SyntheticWeb web = Synthesizer(SmallConfig()).Generate();
  int checked = 0;
  for (const FormPageInfo& info : web.form_pages()) {
    Result<const WebPage*> page = web.Fetch(info.url);
    html::Document doc = html::Parse((*page)->html);
    std::string text = doc.root().TextContent();
    EXPECT_EQ(text.find("xkqzjw"), std::string::npos);
    if (++checked > 20) break;
  }
}

// Property sweep: corpus invariants hold for any generator seed.
class SynthesizerSeedTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SynthesizerSeedTest, CorpusInvariants) {
  SyntheticWeb web = Synthesizer(SmallConfig(GetParam())).Generate();

  // Exact gold counts.
  EXPECT_EQ(web.form_pages().size(), 80u);
  int singles = 0;
  std::set<Domain> domains;
  std::unordered_set<std::string> urls;
  for (const FormPageInfo& info : web.form_pages()) {
    singles += info.single_attribute ? 1 : 0;
    domains.insert(info.domain);
    EXPECT_TRUE(urls.insert(info.url).second);
    // Root and form page exist and live on the same host.
    EXPECT_TRUE(web.Fetch(info.url).ok());
    EXPECT_TRUE(web.Fetch(info.root_url).ok());
    EXPECT_EQ(SiteOf(info.url), SiteOf(info.root_url));
  }
  EXPECT_EQ(singles, 10);
  EXPECT_EQ(domains.size(), static_cast<size_t>(kNumDomains));

  // Graph is consistent: every recorded edge connects generated pages or
  // frontier URLs; hub pages never self-cite.
  const LinkGraph& g = web.graph();
  EXPECT_GT(g.num_edges(), web.form_pages().size());
  for (const std::string& hub : web.hub_urls()) {
    PageId id = g.Lookup(hub);
    ASSERT_NE(id, kInvalidPageId);
    for (PageId target : g.OutLinks(id)) {
      EXPECT_NE(g.url(target), hub);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SynthesizerSeedTest,
                         ::testing::Values(1, 17, 333, 2026));

TEST(SynthesizerTest, TinyPageCountsDoNotCrash) {
  // Regression: with fewer form pages than domains-worth of slack, a mixed
  // hub could sample from a domain that received zero pages (Uniform(0)
  // aborts). The generator must skip empty domains instead.
  for (int pages : {8, 10, 12, 14}) {
    SynthesizerConfig config;
    config.seed = 4;
    config.form_pages_total = pages;
    config.single_attribute_forms = 1;
    SyntheticWeb web = Synthesizer(config).Generate();
    EXPECT_GT(web.form_pages().size(), 0u) << pages;
  }
}

}  // namespace
}  // namespace cafc::web
