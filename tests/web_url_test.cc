#include "web/url.h"

#include <gtest/gtest.h>

namespace cafc::web {
namespace {

TEST(ParseUrlTest, BasicHttp) {
  Result<Url> url = ParseUrl("http://www.example.com/path/page.html");
  ASSERT_TRUE(url.ok());
  EXPECT_EQ(url->scheme, "http");
  EXPECT_EQ(url->host, "www.example.com");
  EXPECT_EQ(url->path, "/path/page.html");
  EXPECT_EQ(url->query, "");
}

TEST(ParseUrlTest, HostOnlyGetsRootPath) {
  Result<Url> url = ParseUrl("http://example.com");
  ASSERT_TRUE(url.ok());
  EXPECT_EQ(url->path, "/");
  EXPECT_EQ(url->ToString(), "http://example.com/");
}

TEST(ParseUrlTest, QueryPreserved) {
  Result<Url> url = ParseUrl("http://x.com/search?q=jobs&state=ca");
  ASSERT_TRUE(url.ok());
  EXPECT_EQ(url->query, "q=jobs&state=ca");
  EXPECT_EQ(url->ToString(), "http://x.com/search?q=jobs&state=ca");
}

TEST(ParseUrlTest, FragmentStripped) {
  Result<Url> url = ParseUrl("http://x.com/page#section");
  ASSERT_TRUE(url.ok());
  EXPECT_EQ(url->path, "/page");
}

TEST(ParseUrlTest, HostLowercased) {
  Result<Url> url = ParseUrl("HTTP://WWW.Example.COM/Page");
  ASSERT_TRUE(url.ok());
  EXPECT_EQ(url->scheme, "http");
  EXPECT_EQ(url->host, "www.example.com");
  EXPECT_EQ(url->path, "/Page");  // path keeps case
}

TEST(ParseUrlTest, HttpsAccepted) {
  EXPECT_TRUE(ParseUrl("https://secure.example.com/").ok());
}

TEST(ParseUrlTest, RejectsMissingScheme) {
  EXPECT_FALSE(ParseUrl("www.example.com/page").ok());
  EXPECT_FALSE(ParseUrl("").ok());
}

TEST(ParseUrlTest, RejectsUnsupportedScheme) {
  EXPECT_FALSE(ParseUrl("ftp://example.com/file").ok());
  EXPECT_FALSE(ParseUrl("mailto://someone").ok());
}

TEST(ParseUrlTest, RejectsMissingHost) {
  EXPECT_FALSE(ParseUrl("http:///path").ok());
}

TEST(ParseUrlTest, SurroundingWhitespaceTrimmed) {
  Result<Url> url = ParseUrl("  http://x.com/a  ");
  ASSERT_TRUE(url.ok());
  EXPECT_EQ(url->host, "x.com");
}

struct ResolveCase {
  const char* base;
  const char* href;
  const char* expected;  // nullptr = expect failure
};

class ResolveHrefTest : public ::testing::TestWithParam<ResolveCase> {};

TEST_P(ResolveHrefTest, Resolves) {
  const ResolveCase& c = GetParam();
  Url base = ParseUrl(c.base).value();
  Result<Url> resolved = ResolveHref(base, c.href);
  if (c.expected == nullptr) {
    EXPECT_FALSE(resolved.ok());
  } else {
    ASSERT_TRUE(resolved.ok()) << resolved.status().ToString();
    EXPECT_EQ(resolved->ToString(), c.expected);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Cases, ResolveHrefTest,
    ::testing::Values(
        // Absolute pass-through.
        ResolveCase{"http://a.com/x", "http://b.com/y", "http://b.com/y"},
        // Root-relative.
        ResolveCase{"http://a.com/deep/page.html", "/top.html",
                    "http://a.com/top.html"},
        // Sibling-relative.
        ResolveCase{"http://a.com/dir/page.html", "other.html",
                    "http://a.com/dir/other.html"},
        // Relative from root.
        ResolveCase{"http://a.com/", "search.html",
                    "http://a.com/search.html"},
        // Dot segments.
        ResolveCase{"http://a.com/a/b/c.html", "../up.html",
                    "http://a.com/a/up.html"},
        ResolveCase{"http://a.com/a/b/c.html", "./same.html",
                    "http://a.com/a/b/same.html"},
        // Excess parent segments clamp at root.
        ResolveCase{"http://a.com/a.html", "../../x.html",
                    "http://a.com/x.html"},
        // Query handling.
        ResolveCase{"http://a.com/dir/p.html", "find?q=1",
                    "http://a.com/dir/find?q=1"},
        // Directory-style link keeps trailing slash.
        ResolveCase{"http://a.com/x.html", "sub/", "http://a.com/sub/"},
        // Unsupported schemes fail.
        ResolveCase{"http://a.com/", "mailto:me@x.com", nullptr},
        ResolveCase{"http://a.com/", "javascript:void(0)", nullptr},
        ResolveCase{"http://a.com/", "#anchor", nullptr},
        ResolveCase{"http://a.com/", "", nullptr}));

TEST(SiteOfTest, ExtractsHost) {
  EXPECT_EQ(SiteOf("http://www.jobs1.com/search.html"), "www.jobs1.com");
  EXPECT_EQ(SiteOf("not a url"), "");
}

TEST(RootPageOfTest, BuildsRoot) {
  Url url = ParseUrl("http://www.jobs1.com/a/b?q=1").value();
  EXPECT_EQ(RootPageOf(url), "http://www.jobs1.com/");
}

}  // namespace
}  // namespace cafc::web
