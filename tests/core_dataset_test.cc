#include "core/dataset.h"

#include <memory>
#include <set>

#include <gtest/gtest.h>

#include "web/fault_injection.h"
#include "web/url.h"

namespace cafc {
namespace {

web::SynthesizerConfig SmallConfig() {
  web::SynthesizerConfig config;
  config.seed = 77;
  config.form_pages_total = 64;
  config.single_attribute_forms = 8;
  config.homogeneous_hubs_per_domain = 30;
  config.mixed_hubs = 60;
  config.directory_hubs = 4;
  config.large_air_hotel_hubs = 4;
  config.non_searchable_form_pages = 12;
  config.noise_pages = 8;
  config.outlier_pages = 2;
  return config;
}

class DatasetTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    web_ = new web::SyntheticWeb(web::Synthesizer(SmallConfig()).Generate());
    dataset_ = new Dataset(std::move(BuildDataset(*web_)).value());
  }
  static void TearDownTestSuite() {
    delete dataset_;
    delete web_;
    dataset_ = nullptr;
    web_ = nullptr;
  }

  static web::SyntheticWeb* web_;
  static Dataset* dataset_;
};

web::SyntheticWeb* DatasetTest::web_ = nullptr;
Dataset* DatasetTest::dataset_ = nullptr;

TEST_F(DatasetTest, RecoversAllGoldFormPages) {
  // The classifier should keep essentially the whole gold set.
  EXPECT_GE(dataset_->entries.size(), 60u);
  EXPECT_LE(dataset_->entries.size(), 64u);
  EXPECT_LE(dataset_->stats.classifier_false_negatives, 4u);
}

TEST_F(DatasetTest, CrawlCoveredTheWholeWeb) {
  EXPECT_EQ(dataset_->stats.crawled_pages, web_->pages().size());
  EXPECT_GT(dataset_->stats.pages_with_forms, dataset_->entries.size());
}

TEST_F(DatasetTest, GoldLabelsValid) {
  for (const DatasetEntry& e : dataset_->entries) {
    EXPECT_GE(e.gold, 0);
    EXPECT_LT(e.gold, dataset_->num_classes);
    const web::FormPageInfo* info = web_->FindFormPage(e.doc.url);
    ASSERT_NE(info, nullptr);
    EXPECT_EQ(e.gold, static_cast<int>(info->domain));
    EXPECT_EQ(e.single_attribute, info->single_attribute);
  }
}

TEST_F(DatasetTest, GoldLabelsAccessorAligned) {
  std::vector<int> gold = dataset_->GoldLabels();
  ASSERT_EQ(gold.size(), dataset_->entries.size());
  for (size_t i = 0; i < gold.size(); ++i) {
    EXPECT_EQ(gold[i], dataset_->entries[i].gold);
  }
}

TEST_F(DatasetTest, BacklinksAreOffSiteOnly) {
  for (const DatasetEntry& e : dataset_->entries) {
    for (const std::string& link : e.backlinks) {
      EXPECT_NE(web::SiteOf(link), e.site) << e.doc.url;
    }
  }
}

TEST_F(DatasetTest, MostPagesHaveBacklinksAfterFallback) {
  size_t with_backlinks = 0;
  for (const DatasetEntry& e : dataset_->entries) {
    if (!e.backlinks.empty()) ++with_backlinks;
  }
  EXPECT_GE(with_backlinks, dataset_->entries.size() * 9 / 10);
  EXPECT_EQ(dataset_->entries.size() - with_backlinks,
            dataset_->stats.pages_without_any_backlinks);
}

TEST_F(DatasetTest, NoDuplicateUrls) {
  std::set<std::string> urls;
  for (const DatasetEntry& e : dataset_->entries) {
    EXPECT_TRUE(urls.insert(e.doc.url).second);
  }
}

TEST_F(DatasetTest, DocumentsCarryTerms) {
  for (const DatasetEntry& e : dataset_->entries) {
    EXPECT_FALSE(e.doc.page_terms.empty()) << e.doc.url;
    EXPECT_FALSE(e.doc.forms.empty()) << e.doc.url;
  }
}

TEST_F(DatasetTest, BuildFormPageSetAlignsWithEntries) {
  FormPageSet set = BuildFormPageSet(*dataset_);
  ASSERT_EQ(set.size(), dataset_->entries.size());
  for (size_t i = 0; i < set.size(); ++i) {
    EXPECT_EQ(set.page(i).url, dataset_->entries[i].doc.url);
    EXPECT_EQ(set.page(i).site, dataset_->entries[i].site);
    EXPECT_EQ(set.page(i).backlinks, dataset_->entries[i].backlinks);
    EXPECT_FALSE(set.page(i).pc.empty()) << set.page(i).url;
  }
  EXPECT_EQ(set.pc_stats().num_documents(), set.size());
  EXPECT_EQ(set.fc_stats().num_documents(), set.size());
}

TEST_F(DatasetTest, UniformWeightsChangeVectors) {
  FormPageSet differentiated = BuildFormPageSet(*dataset_);
  FormPageSet uniform =
      BuildFormPageSet(*dataset_, vsm::LocationWeightConfig::Uniform());
  bool any_difference = false;
  for (size_t i = 0; i < differentiated.size(); ++i) {
    if (!(differentiated.page(i).pc == uniform.page(i).pc)) {
      any_difference = true;
      break;
    }
  }
  EXPECT_TRUE(any_difference);
}

TEST_F(DatasetTest, WeighNewDocumentUsesCollectionSpace) {
  FormPageSet set = BuildFormPageSet(*dataset_);
  // Re-weigh an existing entry: it must reproduce the stored vectors.
  FormPage reweighed = WeighNewDocument(set, dataset_->entries[0].doc);
  EXPECT_EQ(reweighed.pc, set.page(0).pc);
  EXPECT_EQ(reweighed.fc, set.page(0).fc);

  // A document full of unseen terms (interned in its own dictionary)
  // yields an empty vector.
  auto alien_dict = std::make_shared<vsm::TermDictionary>();
  forms::FormPageDocument alien;
  alien.url = "http://alien.com/";
  alien.page_terms.push_back(
      {alien_dict->Intern("zzzzunseenterm"), vsm::Location::kPageBody});
  alien.dictionary = alien_dict;
  EXPECT_TRUE(WeighNewDocument(set, alien).pc.empty());
}

TEST(BuildDatasetTest, AnchorTextCollectionAddsAnchorTerms) {
  web::SyntheticWeb web = web::Synthesizer(SmallConfig()).Generate();
  DatasetOptions plain;
  DatasetOptions with_anchors;
  with_anchors.collect_anchor_text = true;
  Dataset without = std::move(BuildDataset(web, plain)).value();
  Dataset with = std::move(BuildDataset(web, with_anchors)).value();
  ASSERT_EQ(without.entries.size(), with.entries.size());

  size_t anchor_terms = 0;
  size_t pages_with_anchors = 0;
  for (size_t i = 0; i < with.entries.size(); ++i) {
    size_t here = 0;
    for (const vsm::InternedTerm& t : with.entries[i].doc.page_terms) {
      if (t.location == vsm::Location::kAnchorText) ++here;
    }
    // Anchor terms only ever get added, never removed.
    EXPECT_GE(with.entries[i].doc.page_terms.size(),
              without.entries[i].doc.page_terms.size());
    anchor_terms += here;
    if (here > 0) ++pages_with_anchors;
  }
  EXPECT_GT(anchor_terms, 0u);
  // Most pages have at least one citing hub whose anchor text survives
  // analysis.
  EXPECT_GE(pages_with_anchors * 2, with.entries.size());

  // The plain run must carry no anchor-tagged terms beyond the page's own
  // <a> elements (nav links are "home | about us | help" — stopwords and
  // short words mostly vanish).
  for (const DatasetEntry& e : without.entries) {
    for (const vsm::InternedTerm& t : e.doc.page_terms) {
      if (t.location == vsm::Location::kAnchorText) {
        // allowed: the page's own anchors
        SUCCEED();
      }
    }
  }
}

TEST(BuildDatasetTest, PrunedVectorsRespectCap) {
  web::SyntheticWeb web = web::Synthesizer(SmallConfig()).Generate();
  Dataset dataset = std::move(BuildDataset(web)).value();
  FormPageSet pruned = BuildFormPageSet(dataset, {}, 16);
  for (size_t i = 0; i < pruned.size(); ++i) {
    EXPECT_LE(pruned.page(i).pc.size(), 16u);
    EXPECT_LE(pruned.page(i).fc.size(), 16u);
  }
}

TEST(BuildDatasetTest, Bm25SetAlignedAndDifferent) {
  web::SyntheticWeb web = web::Synthesizer(SmallConfig()).Generate();
  Dataset dataset = std::move(BuildDataset(web)).value();
  FormPageSet tfidf = BuildFormPageSet(dataset);
  FormPageSet bm25 = BuildFormPageSetBm25(dataset);
  ASSERT_EQ(bm25.size(), tfidf.size());
  bool any_difference = false;
  for (size_t i = 0; i < bm25.size(); ++i) {
    EXPECT_EQ(bm25.page(i).url, tfidf.page(i).url);
    EXPECT_FALSE(bm25.page(i).pc.empty());
    if (!(bm25.page(i).pc == tfidf.page(i).pc)) any_difference = true;
  }
  EXPECT_TRUE(any_difference);
}

TEST(BuildDatasetTest, SurvivesDeadAndMalformedFaults) {
  // Dead hosts, truncated bodies and soft-404 garbage shrink the corpus
  // but must never break the pipeline: BuildDataset completes, classifies
  // the losses in stats.crawl, and keeps a usable (smaller) entry set.
  web::SyntheticWeb web = web::Synthesizer(SmallConfig()).Generate();
  Dataset clean = std::move(BuildDataset(web)).value();

  web::FaultProfile profile;
  profile.dead_rate = 0.1;
  profile.truncated_rate = 0.1;
  profile.soft404_rate = 0.1;
  profile.seed = 17;
  web::FaultInjectingFetcher faulty(&web, profile);
  DatasetOptions options;
  options.fetcher = &faulty;
  Result<Dataset> degraded = BuildDataset(web, options);
  ASSERT_TRUE(degraded.ok());

  EXPECT_GT(degraded->stats.crawl.dead_urls, 0u);
  EXPECT_GT(degraded->stats.crawl.malformed_pages, 0u);
  EXPECT_GT(degraded->stats.crawl.soft404_pages, 0u);
  EXPECT_LE(degraded->entries.size(), clean.entries.size());
  EXPECT_GT(degraded->entries.size(), 0u);
  // Every surviving entry is still a gold page with intact metadata.
  for (const DatasetEntry& e : degraded->entries) {
    EXPECT_NE(web.FindFormPage(e.doc.url), nullptr) << e.doc.url;
  }
}

TEST(BuildDatasetTest, DeterministicAcrossRuns) {
  web::SyntheticWeb web = web::Synthesizer(SmallConfig()).Generate();
  Dataset a = std::move(BuildDataset(web)).value();
  Dataset b = std::move(BuildDataset(web)).value();
  ASSERT_EQ(a.entries.size(), b.entries.size());
  for (size_t i = 0; i < a.entries.size(); ++i) {
    EXPECT_EQ(a.entries[i].doc.url, b.entries[i].doc.url);
    EXPECT_EQ(a.entries[i].backlinks, b.entries[i].backlinks);
  }
}

}  // namespace
}  // namespace cafc
