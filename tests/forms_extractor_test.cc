#include "forms/form_extractor.h"

#include <gtest/gtest.h>

#include "html/dom.h"

namespace cafc::forms {
namespace {

std::vector<Form> Extract(std::string_view html) {
  html::Document doc = html::Parse(html);
  return ExtractForms(doc);
}

TEST(FormExtractorTest, NoFormsOnPlainPage) {
  EXPECT_TRUE(Extract("<html><body><p>text</p></body></html>").empty());
}

TEST(FormExtractorTest, ActionMethodName) {
  auto forms = Extract(
      R"(<form action="/cgi-bin/search" method="POST" name="sf"></form>)");
  ASSERT_EQ(forms.size(), 1u);
  EXPECT_EQ(forms[0].action, "/cgi-bin/search");
  EXPECT_EQ(forms[0].method, "post");  // lowercased
  EXPECT_EQ(forms[0].name, "sf");
}

TEST(FormExtractorTest, MethodDefaultsToGet) {
  auto forms = Extract("<form action=\"/s\"></form>");
  ASSERT_EQ(forms.size(), 1u);
  EXPECT_EQ(forms[0].method, "get");
}

TEST(FormExtractorTest, InputFieldsCaptured) {
  auto forms = Extract(
      R"(<form><input type="text" name="q" value="default">
         <input type="hidden" name="sid" value="tok"></form>)");
  ASSERT_EQ(forms.size(), 1u);
  ASSERT_EQ(forms[0].fields.size(), 2u);
  EXPECT_EQ(forms[0].fields[0].type, FieldType::kText);
  EXPECT_EQ(forms[0].fields[0].name, "q");
  EXPECT_EQ(forms[0].fields[0].value, "default");
  EXPECT_EQ(forms[0].fields[1].type, FieldType::kHidden);
}

TEST(FormExtractorTest, SelectOptionsCaptured) {
  auto forms = Extract(
      R"(<form><select name="state">
           <option value="">all</option>
           <option>california</option>
           <option>texas</option>
         </select></form>)");
  ASSERT_EQ(forms.size(), 1u);
  ASSERT_EQ(forms[0].fields.size(), 1u);
  const FormField& select = forms[0].fields[0];
  EXPECT_EQ(select.type, FieldType::kSelect);
  EXPECT_EQ(select.name, "state");
  EXPECT_EQ(select.options,
            (std::vector<std::string>{"all", "california", "texas"}));
  EXPECT_EQ(forms[0].option_text, "all california texas");
}

TEST(FormExtractorTest, OptionTextSeparateFromFormText) {
  auto forms = Extract(
      R"(<form>Job Category: <select name="c"><option>sales</option>
         </select></form>)");
  ASSERT_EQ(forms.size(), 1u);
  EXPECT_EQ(forms[0].text, "Job Category:");
  EXPECT_EQ(forms[0].option_text, "sales");
}

TEST(FormExtractorTest, HiddenValuesNeverInText) {
  auto forms = Extract(
      R"(<form>visible label
         <input type="hidden" name="sid" value="secrettoken"></form>)");
  ASSERT_EQ(forms.size(), 1u);
  EXPECT_EQ(forms[0].text.find("secrettoken"), std::string::npos);
  // The field itself is still recorded for the classifier.
  EXPECT_TRUE(forms[0].HasFieldType(FieldType::kHidden));
}

TEST(FormExtractorTest, SubmitButtonCaptionIsFormText) {
  auto forms = Extract(
      R"(<form><input type="submit" value="Search Jobs"></form>)");
  ASSERT_EQ(forms.size(), 1u);
  EXPECT_EQ(forms[0].text, "Search Jobs");
}

TEST(FormExtractorTest, TextareaDefaultValueNotText) {
  auto forms = Extract(
      R"(<form><textarea name="comments">prefilled text</textarea></form>)");
  ASSERT_EQ(forms.size(), 1u);
  EXPECT_EQ(forms[0].fields[0].type, FieldType::kTextArea);
  EXPECT_EQ(forms[0].fields[0].value, "prefilled text");
  EXPECT_EQ(forms[0].text, "");
}

TEST(FormExtractorTest, LabelOutsideFormExcluded) {
  // The paper's Figure 1(c): "Search Jobs" above the form is NOT form text.
  auto forms = Extract(
      R"(<b>Search Jobs</b><form><input type="text" name="q"></form>)");
  ASSERT_EQ(forms.size(), 1u);
  EXPECT_EQ(forms[0].text, "");
}

TEST(FormExtractorTest, NestedMarkupTextGathered) {
  auto forms = Extract(
      R"(<form><table><tr><td><b>Make:</b></td><td>
         <input name="make"></td></tr></table></form>)");
  ASSERT_EQ(forms.size(), 1u);
  EXPECT_EQ(forms[0].text, "Make:");
  EXPECT_EQ(forms[0].fields.size(), 1u);
}

TEST(FormExtractorTest, MultipleFormsInOrder) {
  auto forms = Extract(
      R"(<form action="/search"></form><form action="/login"></form>)");
  ASSERT_EQ(forms.size(), 2u);
  EXPECT_EQ(forms[0].action, "/search");
  EXPECT_EQ(forms[1].action, "/login");
}

TEST(FormExtractorTest, RadioAndCheckbox) {
  auto forms = Extract(
      R"(<form><input type="radio" name="type" value="new"> new
         <input type="radio" name="type" value="used"> used
         <input type="checkbox" name="photos"> with photos</form>)");
  ASSERT_EQ(forms.size(), 1u);
  EXPECT_EQ(forms[0].fields.size(), 3u);
  EXPECT_EQ(forms[0].fields[0].type, FieldType::kRadio);
  EXPECT_EQ(forms[0].fields[2].type, FieldType::kCheckbox);
  EXPECT_EQ(forms[0].text, "new used with photos");
}

TEST(FormExtractorTest, ImplicitlyClosedOptionsAllCaptured) {
  auto forms = Extract(
      "<form><select name=\"x\"><option>a<option>b<option>c</select></form>");
  ASSERT_EQ(forms.size(), 1u);
  EXPECT_EQ(forms[0].fields[0].options.size(), 3u);
}

TEST(FormExtractorTest, UnclosedFormAtEof) {
  auto forms = Extract("<form action=\"/s\"><input name=\"q\">trailing");
  ASSERT_EQ(forms.size(), 1u);
  EXPECT_EQ(forms[0].fields.size(), 1u);
  EXPECT_EQ(forms[0].text, "trailing");
}

}  // namespace
}  // namespace cafc::forms
