#include "storage/reader.h"

#include <sys/stat.h>
#include <unistd.h>

#include <bit>
#include <cerrno>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/cafc.h"
#include "core/dataset.h"
#include "core/directory.h"
#include "storage/format.h"
#include "storage/writer.h"
#include "web/synthesizer.h"

namespace cafc::storage {
namespace {

web::SynthesizerConfig SmallConfig() {
  web::SynthesizerConfig config;
  config.seed = 77;
  config.form_pages_total = 64;
  config.single_attribute_forms = 8;
  config.homogeneous_hubs_per_domain = 25;
  config.mixed_hubs = 40;
  config.directory_hubs = 3;
  config.large_air_hotel_hubs = 3;
  config.non_searchable_form_pages = 0;
  config.noise_pages = 0;
  config.outlier_pages = 0;
  return config;
}

std::string TempPath(const char* name) {
  return std::string(::testing::TempDir()) + "/" + name;
}

std::string ReadAll(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good());
  return std::string(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
}

void WriteAll(const std::string& path, const std::string& data) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(data.data(), static_cast<std::streamsize>(data.size()));
  ASSERT_TRUE(out.good());
}

bool DirectoriesIdentical(const DatabaseDirectory& a,
                          const DatabaseDirectory& b) {
  if (a.size() != b.size() || a.epoch() != b.epoch()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    const DirectoryEntry& x = a.entries()[i];
    const DirectoryEntry& y = b.entries()[i];
    if (x.label != y.label || x.member_urls != y.member_urls ||
        !(x.centroid.pc == y.centroid.pc) ||
        !(x.centroid.fc == y.centroid.fc)) {
      return false;
    }
  }
  return true;
}

class SnapshotTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    web::SyntheticWeb web = web::Synthesizer(SmallConfig()).Generate();
    dataset_ = new Dataset(std::move(BuildDataset(web)).value());
    pages_ = new FormPageSet(BuildFormPageSet(*dataset_));
    CafcChOptions options;
    options.min_hub_cardinality = 4;
    cluster::Clustering clustering =
        CafcCh(*pages_, web::kNumDomains, options);
    directory_ = new DatabaseDirectory(DatabaseDirectory::Build(
        *pages_, clustering,
        DatabaseDirectory::AutoLabels(*pages_, clustering)));
    v3_path_ = new std::string(TempPath("snapshot_fixture.cafc3"));
    Status status = WriteSnapshotV3(*directory_, pages_, *v3_path_);
    ASSERT_TRUE(status.ok()) << status.ToString();
  }
  static void TearDownTestSuite() {
    std::remove(v3_path_->c_str());
    delete v3_path_;
    delete directory_;
    delete pages_;
    delete dataset_;
    v3_path_ = nullptr;
    directory_ = nullptr;
    pages_ = nullptr;
    dataset_ = nullptr;
  }

  static Dataset* dataset_;
  static FormPageSet* pages_;
  static DatabaseDirectory* directory_;
  static std::string* v3_path_;
};

Dataset* SnapshotTest::dataset_ = nullptr;
FormPageSet* SnapshotTest::pages_ = nullptr;
DatabaseDirectory* SnapshotTest::directory_ = nullptr;
std::string* SnapshotTest::v3_path_ = nullptr;

TEST_F(SnapshotTest, MaterializeRoundTripsBitExactly) {
  Result<std::unique_ptr<MappedSnapshot>> snapshot =
      MappedSnapshot::Open(*v3_path_);
  ASSERT_TRUE(snapshot.ok()) << snapshot.status().ToString();
  Result<DatabaseDirectory> materialized =
      (*snapshot)->MaterializeDirectory();
  ASSERT_TRUE(materialized.ok()) << materialized.status().ToString();
  EXPECT_TRUE(DirectoriesIdentical(*directory_, *materialized));

  // Classification through the materialized copy is identical bits.
  for (size_t i = 0; i < 10 && i < pages_->size(); ++i) {
    DatabaseDirectory::Classification a =
        directory_->ClassifyPage(pages_->page(i));
    DatabaseDirectory::Classification b =
        materialized->ClassifyPage(pages_->page(i));
    EXPECT_EQ(a.entry, b.entry);
    EXPECT_EQ(a.similarity, b.similarity);
  }
}

TEST_F(SnapshotTest, LoadDirectoryAutoNegotiatesTextAndBinary) {
  const std::string text_path = TempPath("auto_text.cafc");
  ASSERT_TRUE(directory_->SaveToFile(text_path).ok());
  Result<DatabaseDirectory> from_text = LoadDirectoryAuto(text_path);
  Result<DatabaseDirectory> from_v3 = LoadDirectoryAuto(*v3_path_);
  ASSERT_TRUE(from_text.ok()) << from_text.status().ToString();
  ASSERT_TRUE(from_v3.ok()) << from_v3.status().ToString();
  EXPECT_TRUE(DirectoriesIdentical(*from_text, *from_v3));
  std::remove(text_path.c_str());
}

TEST_F(SnapshotTest, TextLoaderPointsV3FilesAtTheStorageLoader) {
  Result<DatabaseDirectory> loaded =
      DatabaseDirectory::LoadFromFile(*v3_path_);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kParseError);
  EXPECT_NE(loaded.status().ToString().find("binary v3"),
            std::string::npos);
}

TEST_F(SnapshotTest, ThinDirectoryServesIndexedQueriesIdentically) {
  Result<std::unique_ptr<MappedSnapshot>> snapshot =
      MappedSnapshot::Open(*v3_path_);
  ASSERT_TRUE(snapshot.ok());
  const cluster::CentroidIndex reference_index =
      directory_->BuildCentroidIndex();
  for (size_t i = 0; i < pages_->size(); i += 7) {
    DatabaseDirectory::Classification expected = directory_->ClassifyPage(
        pages_->page(i), ContentConfig::kFcPlusPc, reference_index);
    DatabaseDirectory::Classification got =
        (*snapshot)->directory().ClassifyPage(
            pages_->page(i), ContentConfig::kFcPlusPc, (*snapshot)->index());
    EXPECT_EQ(got.entry, expected.entry);
    EXPECT_EQ(got.similarity, expected.similarity);
  }
  for (const char* query :
       {"job career resume", "hotel rooms", "cheap flights"}) {
    auto expected = directory_->Search(query, 4, reference_index);
    auto got = (*snapshot)->directory().Search(query, 4,
                                               (*snapshot)->index());
    ASSERT_EQ(got.size(), expected.size()) << query;
    for (size_t h = 0; h < got.size(); ++h) {
      EXPECT_EQ(got[h].entry, expected[h].entry);
      EXPECT_EQ(got[h].similarity, expected[h].similarity);
    }
  }
}

TEST_F(SnapshotTest, StoredPagesDecodeBitExactly) {
  Result<std::unique_ptr<MappedSnapshot>> snapshot =
      MappedSnapshot::Open(*v3_path_);
  ASSERT_TRUE(snapshot.ok());
  ASSERT_EQ((*snapshot)->num_pages(), pages_->size());
  for (size_t i = 0; i < pages_->size(); i += 5) {
    Result<std::shared_ptr<const FormPage>> page = (*snapshot)->GetPage(i);
    ASSERT_TRUE(page.ok()) << page.status().ToString();
    const FormPage& original = pages_->page(i);
    EXPECT_EQ((*page)->url, original.url);
    EXPECT_EQ((*page)->site, original.site);
    EXPECT_EQ((*page)->backlinks, original.backlinks);
    EXPECT_TRUE((*page)->pc == original.pc);
    EXPECT_TRUE((*page)->fc == original.fc);
  }
  EXPECT_EQ((*snapshot)->GetPage(pages_->size()).status().code(),
            StatusCode::kOutOfRange);
}

TEST_F(SnapshotTest, DirectoryOnlySnapshotHasNoPages) {
  const std::string path = TempPath("dir_only.cafc3");
  ASSERT_TRUE(WriteSnapshotV3(*directory_, nullptr, path).ok());
  Result<std::unique_ptr<MappedSnapshot>> snapshot =
      MappedSnapshot::Open(path);
  ASSERT_TRUE(snapshot.ok()) << snapshot.status().ToString();
  EXPECT_EQ((*snapshot)->num_pages(), 0u);
  EXPECT_EQ((*snapshot)->GetPage(0).status().code(),
            StatusCode::kOutOfRange);
  Result<DatabaseDirectory> materialized =
      (*snapshot)->MaterializeDirectory();
  ASSERT_TRUE(materialized.ok());
  EXPECT_TRUE(DirectoriesIdentical(*directory_, *materialized));
  std::remove(path.c_str());
}

TEST_F(SnapshotTest, PageStoreRespectsTheMemoryBudget) {
  Result<std::unique_ptr<MappedSnapshot>> probe =
      MappedSnapshot::Open(*v3_path_);
  ASSERT_TRUE(probe.ok());
  const uint64_t fixed = (*probe)->fixed_resident_bytes();

  SnapshotOpenOptions options;
  options.memory_budget_bytes = fixed + 8 * 1024;
  Result<std::unique_ptr<MappedSnapshot>> snapshot =
      MappedSnapshot::Open(*v3_path_, options);
  ASSERT_TRUE(snapshot.ok()) << snapshot.status().ToString();
  EXPECT_EQ((*snapshot)->memory_budget_bytes(), options.memory_budget_bytes);

  // Two sweeps with a pinned hot page: the LRU must produce hits (hot
  // page), misses and evictions (sweep), and never exceed the budget.
  for (int sweep = 0; sweep < 2; ++sweep) {
    for (size_t i = 0; i < (*snapshot)->num_pages(); ++i) {
      ASSERT_TRUE((*snapshot)->GetPage(0).ok());
      ASSERT_TRUE((*snapshot)->GetPage(i).ok());
      EXPECT_LE((*snapshot)->resident_bytes(),
                options.memory_budget_bytes);
    }
  }
  const PageStoreStats stats = (*snapshot)->page_store_stats();
  EXPECT_GT(stats.hits, 0u);
  EXPECT_GT(stats.misses, 0u);
  EXPECT_GT(stats.evictions, 0u);

  // A budget below the fixed footprint cannot serve anything: refuse.
  SnapshotOpenOptions impossible;
  impossible.memory_budget_bytes = fixed / 2;
  Result<std::unique_ptr<MappedSnapshot>> rejected =
      MappedSnapshot::Open(*v3_path_, impossible);
  ASSERT_FALSE(rejected.ok());
  EXPECT_EQ(rejected.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(SnapshotTest, InspectReportsSectionsAndChecksums) {
  std::vector<bool> checksum_ok;
  Result<SnapshotFileInfo> info = ReadSnapshotInfo(*v3_path_, &checksum_ok);
  ASSERT_TRUE(info.ok()) << info.status().ToString();
  EXPECT_EQ(info->version, kFormatVersion3);
  ASSERT_EQ(checksum_ok.size(), info->sections.size());
  for (bool ok : checksum_ok) EXPECT_TRUE(ok);
  bool has_entries = false;
  bool has_pages = false;
  for (const SectionInfo& section : info->sections) {
    if (section.kind == SectionKind::kEntries) {
      has_entries = true;
      EXPECT_EQ(section.item_count, directory_->size());
    }
    if (section.kind == SectionKind::kPages) {
      has_pages = true;
      EXPECT_EQ(section.item_count, pages_->size());
    }
  }
  EXPECT_TRUE(has_entries);
  EXPECT_TRUE(has_pages);
}

TEST_F(SnapshotTest, BitFlipInAnySectionFailsTheOpen) {
  const std::string clean = ReadAll(*v3_path_);
  Result<SnapshotFileInfo> info = ReadSnapshotInfo(*v3_path_);
  ASSERT_TRUE(info.ok());
  const std::string path = TempPath("bitflip.cafc3");
  for (const SectionInfo& section : info->sections) {
    std::string corrupted = clean;
    // Flip one bit in the middle of this section's payload.
    const size_t victim = section.offset + section.bytes / 2;
    ASSERT_LT(victim, corrupted.size());
    corrupted[victim] = static_cast<char>(corrupted[victim] ^ 0x10);
    WriteAll(path, corrupted);
    Result<std::unique_ptr<MappedSnapshot>> opened =
        MappedSnapshot::Open(path);
    ASSERT_FALSE(opened.ok())
        << "section " << SectionKindName(section.kind);
    EXPECT_EQ(opened.status().code(), StatusCode::kParseError);
    EXPECT_NE(opened.status().ToString().find("checksum"),
              std::string::npos);

    // inspect-style read still works and pinpoints the broken section.
    std::vector<bool> checksum_ok;
    ASSERT_TRUE(ReadSnapshotInfo(path, &checksum_ok).ok());
    size_t broken = 0;
    for (bool ok : checksum_ok) broken += ok ? 0 : 1;
    EXPECT_EQ(broken, 1u) << SectionKindName(section.kind);
  }
  std::remove(path.c_str());
}

TEST_F(SnapshotTest, TruncationAtAnyBoundaryFailsTheOpen) {
  const std::string clean = ReadAll(*v3_path_);
  const std::string path = TempPath("truncated.cafc3");
  for (size_t keep :
       {size_t{0}, size_t{4}, size_t{63}, kHeaderBytes,
        kHeaderBytes + kSectionRowBytes / 2, clean.size() / 2,
        clean.size() - 1}) {
    WriteAll(path, clean.substr(0, keep));
    Result<std::unique_ptr<MappedSnapshot>> opened =
        MappedSnapshot::Open(path);
    EXPECT_FALSE(opened.ok()) << "kept " << keep;
  }
  std::remove(path.c_str());
}

TEST_F(SnapshotTest, WriteIntoMissingDirectoryFailsAndLeavesNoDroppings) {
  const std::string path =
      std::string(::testing::TempDir()) + "/no_such_dir/x.cafc3";
  Status status = WriteSnapshotV3(*directory_, nullptr, path);
  EXPECT_FALSE(status.ok());
}

TEST_F(SnapshotTest, FailedRewriteLeavesTheOldSnapshotIntact) {
  // Crash-safety contract of the atomic temp+rename write: a failed
  // rewrite must leave the previous file byte-identical.
  const std::string path = TempPath("atomic.cafc3");
  ASSERT_TRUE(WriteSnapshotV3(*directory_, nullptr, path).ok());
  const std::string before = ReadAll(path);

  // Occupy the temp sibling with a directory so the rewrite cannot open
  // its staging file.
  const std::string tmp_sibling = path + ".tmp";
  ASSERT_EQ(std::remove(tmp_sibling.c_str()) == 0 || errno == ENOENT, true);
  ASSERT_NE(mkdir(tmp_sibling.c_str(), 0700), -1);
  Status status = WriteSnapshotV3(*directory_, pages_, path);
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(ReadAll(path), before);
  rmdir(tmp_sibling.c_str());
  std::remove(path.c_str());
}

}  // namespace
}  // namespace cafc::storage
