#include "cluster/kmeans.h"

#include <cmath>
#include <set>

#include <gtest/gtest.h>

namespace cafc::cluster {
namespace {

/// 1-D points with mean centroids and negative-distance similarity — the
/// simplest possible CentroidModel for exercising the algorithm.
class LineModel : public CentroidModel {
 public:
  explicit LineModel(std::vector<double> points, int k)
      : points_(std::move(points)), centroids_(static_cast<size_t>(k), 0.0) {}

  size_t num_points() const override { return points_.size(); }
  int num_clusters() const override {
    return static_cast<int>(centroids_.size());
  }

  double Similarity(size_t point, int cluster) const override {
    return -std::abs(points_[point] -
                     centroids_[static_cast<size_t>(cluster)]);
  }

  void RecomputeCentroid(int cluster,
                         const std::vector<size_t>& members) override {
    if (members.empty()) return;
    double sum = 0.0;
    for (size_t m : members) sum += points_[m];
    centroids_[static_cast<size_t>(cluster)] =
        sum / static_cast<double>(members.size());
    ++recomputes_;
  }

  double centroid(int c) const { return centroids_[static_cast<size_t>(c)]; }
  int recomputes() const { return recomputes_; }

 private:
  std::vector<double> points_;
  std::vector<double> centroids_;
  int recomputes_ = 0;
};

TEST(KMeansTest, SeparatesTwoObviousGroups) {
  LineModel model({0.0, 0.1, 0.2, 10.0, 10.1, 10.2}, 2);
  Clustering c = KMeans(&model, {{0}, {3}});
  ASSERT_EQ(c.num_clusters, 2);
  EXPECT_EQ(c.assignment[0], c.assignment[1]);
  EXPECT_EQ(c.assignment[1], c.assignment[2]);
  EXPECT_EQ(c.assignment[3], c.assignment[4]);
  EXPECT_EQ(c.assignment[4], c.assignment[5]);
  EXPECT_NE(c.assignment[0], c.assignment[3]);
}

TEST(KMeansTest, RecoveryFromBadSeedsInSameGroup) {
  LineModel model({0.0, 0.1, 10.0, 10.1, 20.0, 20.1}, 3);
  // Two seeds in the first group, none in the last.
  KMeansStats stats;
  Clustering c = KMeans(&model, {{0}, {1}, {2}}, {}, &stats);
  // The natural groups should still end up separated into at least two
  // clusters (k-means can recover because centroids move).
  std::set<int> groups = {c.assignment[0], c.assignment[2], c.assignment[4]};
  EXPECT_GE(groups.size(), 2u);
  EXPECT_EQ(c.assignment[4], c.assignment[5]);
}

TEST(KMeansTest, EveryPointAssigned) {
  LineModel model({1, 2, 3, 4, 5, 6, 7, 8}, 3);
  Clustering c = KMeans(&model, {{0}, {3}, {7}});
  for (int a : c.assignment) {
    EXPECT_GE(a, 0);
    EXPECT_LT(a, 3);
  }
}

TEST(KMeansTest, MultiMemberSeedCentroidIsMean) {
  LineModel model({0.0, 4.0, 100.0}, 2);
  KMeansOptions options;
  options.max_iterations = 0;  // no iterations: probe the initial centroid
  KMeans(&model, {{0, 1}, {2}}, options);
  EXPECT_DOUBLE_EQ(model.centroid(0), 2.0);
  EXPECT_DOUBLE_EQ(model.centroid(1), 100.0);
}

TEST(KMeansTest, StopCriterionReportsConvergence) {
  LineModel model({0, 0, 0, 9, 9, 9}, 2);
  KMeansStats stats;
  KMeans(&model, {{0}, {5}}, {}, &stats);
  EXPECT_TRUE(stats.converged);
  EXPECT_GE(stats.iterations, 1);
  EXPECT_LE(stats.iterations, 3);
}

TEST(KMeansTest, MaxIterationsBoundsWork) {
  LineModel model({0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11}, 4);
  KMeansOptions options;
  options.max_iterations = 1;
  options.movement_stop_fraction = 0.0;  // never converges by movement
  KMeansStats stats;
  KMeans(&model, {{0}, {3}, {6}, {9}}, options, &stats);
  EXPECT_EQ(stats.iterations, 1);
  EXPECT_FALSE(stats.converged);
}

TEST(KMeansTest, TenPercentStopCriterion) {
  // With the paper's 10% movement threshold, a clustering where fewer than
  // 10% of points would still move stops immediately after one pass.
  LineModel model({0, 0.1, 0.2, 0.3, 0.4, 9, 9.1, 9.2, 9.3, 9.4}, 2);
  KMeansOptions options;
  options.movement_stop_fraction = 2.0;  // everything counts as converged
  KMeansStats stats;
  KMeans(&model, {{0}, {5}}, options, &stats);
  EXPECT_EQ(stats.iterations, 1);
  EXPECT_TRUE(stats.converged);
}

TEST(KMeansTest, DeterministicGivenSeeds) {
  std::vector<double> points = {3, 1, 4, 1, 5, 9, 2, 6, 5, 3, 5};
  LineModel a(points, 3);
  LineModel b(points, 3);
  Clustering ca = KMeans(&a, {{0}, {5}, {9}});
  Clustering cb = KMeans(&b, {{0}, {5}, {9}});
  EXPECT_EQ(ca.assignment, cb.assignment);
}

TEST(KMeansTest, SingleCluster) {
  LineModel model({1, 2, 3}, 1);
  Clustering c = KMeans(&model, {{0}});
  EXPECT_EQ(c.num_clusters, 1);
  for (int a : c.assignment) EXPECT_EQ(a, 0);
}

TEST(RandomSingletonSeedsTest, DistinctSingletons) {
  Rng rng(5);
  auto seeds = RandomSingletonSeeds(20, 8, &rng);
  ASSERT_EQ(seeds.size(), 8u);
  std::set<size_t> used;
  for (const auto& s : seeds) {
    ASSERT_EQ(s.size(), 1u);
    EXPECT_TRUE(used.insert(s[0]).second);
    EXPECT_LT(s[0], 20u);
  }
}

TEST(KMeansPlusPlusTest, ReturnsKDistinctSingletons) {
  // 3 topic blocks: in-block sim 1, cross 0.
  auto sim = [](size_t a, size_t b) { return (a / 3) == (b / 3) ? 1.0 : 0.0; };
  Rng rng(5);
  auto seeds = KMeansPlusPlusSeeds(9, 3, sim, &rng);
  ASSERT_EQ(seeds.size(), 3u);
  std::set<size_t> blocks;
  std::set<size_t> points;
  for (const auto& s : seeds) {
    ASSERT_EQ(s.size(), 1u);
    EXPECT_TRUE(points.insert(s[0]).second);
    blocks.insert(s[0] / 3);
  }
  // d^2 sampling makes same-block repeats impossible (distance 0).
  EXPECT_EQ(blocks.size(), 3u);
}

TEST(KMeansPlusPlusTest, HandlesKLargerThanPoints) {
  auto sim = [](size_t, size_t) { return 0.5; };
  Rng rng(7);
  auto seeds = KMeansPlusPlusSeeds(2, 8, sim, &rng);
  EXPECT_EQ(seeds.size(), 2u);
}

TEST(KMeansPlusPlusTest, EmptyInput) {
  auto sim = [](size_t, size_t) { return 0.5; };
  Rng rng(7);
  EXPECT_TRUE(KMeansPlusPlusSeeds(0, 3, sim, &rng).empty());
  EXPECT_TRUE(KMeansPlusPlusSeeds(5, 0, sim, &rng).empty());
}

TEST(KMeansPlusPlusTest, DeterministicPerRngSeed) {
  auto sim = [](size_t a, size_t b) { return (a / 4) == (b / 4) ? 0.9 : 0.1; };
  Rng a(11);
  Rng b(11);
  EXPECT_EQ(KMeansPlusPlusSeeds(12, 3, sim, &a),
            KMeansPlusPlusSeeds(12, 3, sim, &b));
}

TEST(ClusteringTest, MembersAndSizes) {
  Clustering c;
  c.num_clusters = 2;
  c.assignment = {0, 1, 0, 1, 0};
  EXPECT_EQ(c.Members(0), (std::vector<size_t>{0, 2, 4}));
  EXPECT_EQ(c.ClusterSize(0), 3u);
  EXPECT_EQ(c.ClusterSize(1), 2u);
}

}  // namespace
}  // namespace cafc::cluster
