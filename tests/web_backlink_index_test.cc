#include "web/backlink_index.h"

#include <gtest/gtest.h>

namespace cafc::web {
namespace {

LinkGraph StarGraph(int spokes) {
  LinkGraph g;
  for (int i = 0; i < spokes; ++i) {
    g.AddLink("http://hub" + std::to_string(i) + ".com/",
              "http://center.com/");
  }
  return g;
}

TEST(BacklinkIndexTest, FullCoverageReturnsAll) {
  LinkGraph g = StarGraph(10);
  BacklinkIndexOptions options;
  options.coverage = 1.0;
  BacklinkIndex index(&g, options);
  EXPECT_EQ(index.Backlinks("http://center.com/").size(), 10u);
  EXPECT_TRUE(index.HasBacklinks("http://center.com/"));
}

TEST(BacklinkIndexTest, ZeroCoverageReturnsNone) {
  LinkGraph g = StarGraph(10);
  BacklinkIndexOptions options;
  options.coverage = 0.0;
  BacklinkIndex index(&g, options);
  EXPECT_TRUE(index.Backlinks("http://center.com/").empty());
  EXPECT_FALSE(index.HasBacklinks("http://center.com/"));
}

TEST(BacklinkIndexTest, UnknownUrlEmpty) {
  LinkGraph g = StarGraph(3);
  BacklinkIndex index(&g, BacklinkIndexOptions{});
  EXPECT_TRUE(index.Backlinks("http://unknown.com/").empty());
  EXPECT_FALSE(index.HasBacklinks("http://unknown.com/"));
}

TEST(BacklinkIndexTest, MaxResultsCapApplied) {
  LinkGraph g = StarGraph(50);
  BacklinkIndexOptions options;
  options.coverage = 1.0;
  options.max_results = 7;
  BacklinkIndex index(&g, options);
  EXPECT_EQ(index.Backlinks("http://center.com/").size(), 7u);
}

TEST(BacklinkIndexTest, MaxResultsZeroReturnsNothing) {
  LinkGraph g = StarGraph(10);
  BacklinkIndexOptions options;
  options.coverage = 1.0;
  options.max_results = 0;  // a dead engine: every query comes back empty
  BacklinkIndex index(&g, options);
  EXPECT_TRUE(index.Backlinks("http://center.com/").empty());
}

TEST(BacklinkIndexTest, MaxResultsOneReturnsExactlyOne) {
  LinkGraph g = StarGraph(10);
  BacklinkIndexOptions options;
  options.coverage = 1.0;
  options.max_results = 1;
  BacklinkIndex index(&g, options);
  EXPECT_EQ(index.Backlinks("http://center.com/").size(), 1u);
}

TEST(BacklinkIndexTest, SampleStableUnderMaxResultsChange) {
  // The deterministic edge sample must not depend on the cap: raising
  // max_results extends the result, it never reshuffles the prefix.
  LinkGraph g = StarGraph(100);
  BacklinkIndexOptions small;
  small.coverage = 0.5;
  small.max_results = 5;
  BacklinkIndexOptions large = small;
  large.max_results = 50;
  auto few = BacklinkIndex(&g, small).Backlinks("http://center.com/");
  auto many = BacklinkIndex(&g, large).Backlinks("http://center.com/");
  ASSERT_EQ(few.size(), 5u);
  ASSERT_GE(many.size(), few.size());
  for (size_t i = 0; i < few.size(); ++i) EXPECT_EQ(few[i], many[i]);
}

TEST(BacklinkIndexTest, DeterministicAcrossQueries) {
  LinkGraph g = StarGraph(100);
  BacklinkIndexOptions options;
  options.coverage = 0.5;
  BacklinkIndex index(&g, options);
  auto first = index.Backlinks("http://center.com/");
  auto second = index.Backlinks("http://center.com/");
  EXPECT_EQ(first, second);
}

TEST(BacklinkIndexTest, CoverageApproximatelyRespected) {
  LinkGraph g = StarGraph(2000);
  BacklinkIndexOptions options;
  options.coverage = 0.6;
  options.max_results = 100000;
  BacklinkIndex index(&g, options);
  size_t returned = index.Backlinks("http://center.com/").size();
  EXPECT_NEAR(static_cast<double>(returned) / 2000.0, 0.6, 0.05);
}

TEST(BacklinkIndexTest, SeedChangesSample) {
  LinkGraph g = StarGraph(200);
  BacklinkIndexOptions a;
  a.coverage = 0.5;
  a.seed = 1;
  BacklinkIndexOptions b = a;
  b.seed = 2;
  BacklinkIndex ia(&g, a);
  BacklinkIndex ib(&g, b);
  EXPECT_NE(ia.Backlinks("http://center.com/"),
            ib.Backlinks("http://center.com/"));
}

TEST(BacklinkIndexTest, HasBacklinksConsistentWithBacklinks) {
  LinkGraph g = StarGraph(30);
  BacklinkIndexOptions options;
  options.coverage = 0.4;
  BacklinkIndex index(&g, options);
  EXPECT_EQ(index.HasBacklinks("http://center.com/"),
            !index.Backlinks("http://center.com/").empty());
}

}  // namespace
}  // namespace cafc::web
