#include "html/entities.h"

#include <gtest/gtest.h>

namespace cafc::html {
namespace {

TEST(EntitiesTest, PassThroughPlainText) {
  EXPECT_EQ(DecodeEntities("hello world"), "hello world");
  EXPECT_EQ(DecodeEntities(""), "");
}

TEST(EntitiesTest, NamedEntities) {
  EXPECT_EQ(DecodeEntities("a &amp; b"), "a & b");
  EXPECT_EQ(DecodeEntities("&lt;form&gt;"), "<form>");
  EXPECT_EQ(DecodeEntities("&quot;hi&quot;"), "\"hi\"");
  EXPECT_EQ(DecodeEntities("it&apos;s"), "it's");
}

TEST(EntitiesTest, UppercaseVariants) {
  EXPECT_EQ(DecodeEntities("&AMP;&LT;&GT;"), "&<>");
}

TEST(EntitiesTest, NbspBecomesUtf8NonBreakingSpace) {
  EXPECT_EQ(DecodeEntities("a&nbsp;b"), "a\xc2\xa0" "b");
}

TEST(EntitiesTest, CopyrightAndTrademark) {
  EXPECT_EQ(DecodeEntities("&copy;"), "\xc2\xa9");
  EXPECT_EQ(DecodeEntities("&trade;"), "\xe2\x84\xa2");
}

TEST(EntitiesTest, DecimalNumeric) {
  EXPECT_EQ(DecodeEntities("&#65;&#66;"), "AB");
  EXPECT_EQ(DecodeEntities("&#38;"), "&");
}

TEST(EntitiesTest, HexNumeric) {
  EXPECT_EQ(DecodeEntities("&#x41;"), "A");
  EXPECT_EQ(DecodeEntities("&#X61;"), "a");
  EXPECT_EQ(DecodeEntities("&#x20AC;"), "\xe2\x82\xac");  // euro sign
}

TEST(EntitiesTest, MalformedPassThrough) {
  EXPECT_EQ(DecodeEntities("&bogus;"), "&bogus;");
  EXPECT_EQ(DecodeEntities("& amp;"), "& amp;");
  EXPECT_EQ(DecodeEntities("&;"), "&;");
  EXPECT_EQ(DecodeEntities("&#;"), "&#;");
  EXPECT_EQ(DecodeEntities("&#xzz;"), "&#xzz;");
  EXPECT_EQ(DecodeEntities("tom & jerry"), "tom & jerry");
}

TEST(EntitiesTest, UnterminatedReference) {
  EXPECT_EQ(DecodeEntities("a&ampb"), "a&ampb");
  EXPECT_EQ(DecodeEntities("trailing &"), "trailing &");
}

TEST(EntitiesTest, ConsecutiveEntities) {
  EXPECT_EQ(DecodeEntities("&lt;&lt;&gt;&gt;"), "<<>>");
}

TEST(EntitiesTest, SurrogateCodePointReplaced) {
  // U+D800 is a surrogate — must become U+FFFD, not raw bytes.
  EXPECT_EQ(DecodeEntities("&#xD800;"), "\xef\xbf\xbd");
}

TEST(EntitiesTest, OverlargeCodePointReplaced) {
  EXPECT_EQ(DecodeEntities("&#x110000;"), "\xef\xbf\xbd");
}

TEST(AppendUtf8Test, AsciiRange) {
  std::string out;
  AppendUtf8('A', &out);
  EXPECT_EQ(out, "A");
}

TEST(AppendUtf8Test, TwoByteRange) {
  std::string out;
  AppendUtf8(0xE9, &out);  // é
  EXPECT_EQ(out, "\xc3\xa9");
}

TEST(AppendUtf8Test, ThreeByteRange) {
  std::string out;
  AppendUtf8(0x20AC, &out);  // €
  EXPECT_EQ(out, "\xe2\x82\xac");
}

TEST(AppendUtf8Test, FourByteRange) {
  std::string out;
  AppendUtf8(0x1F600, &out);
  EXPECT_EQ(out, "\xf0\x9f\x98\x80");
}

}  // namespace
}  // namespace cafc::html
