#include "vsm/df_table.h"

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "vsm/weighting.h"

namespace cafc::vsm {
namespace {

TEST(DfTableTest, StartsEmpty) {
  DfTable table;
  EXPECT_EQ(table.num_documents(), 0u);
  EXPECT_EQ(table.DocumentFrequency(0), 0u);
  EXPECT_DOUBLE_EQ(table.Idf(0), 0.0);  // N == 0 → 0, like CorpusStats
}

TEST(DfTableTest, AddCountsUniqueTermsOnce) {
  DfTable table;
  table.AddDocument({0, 2, 5});
  table.AddDocument({2, 5});
  EXPECT_EQ(table.num_documents(), 2u);
  EXPECT_EQ(table.DocumentFrequency(0), 1u);
  EXPECT_EQ(table.DocumentFrequency(2), 2u);
  EXPECT_EQ(table.DocumentFrequency(5), 2u);
  EXPECT_EQ(table.DocumentFrequency(1), 0u);   // never seen
  EXPECT_EQ(table.DocumentFrequency(99), 0u);  // beyond the table
}

TEST(DfTableTest, RemoveUndoesAdd) {
  DfTable table;
  table.AddDocument({0, 1});
  table.AddDocument({1, 2});
  table.RemoveDocument({0, 1});
  EXPECT_EQ(table.num_documents(), 1u);
  EXPECT_EQ(table.DocumentFrequency(0), 0u);
  EXPECT_EQ(table.DocumentFrequency(1), 1u);
  EXPECT_EQ(table.DocumentFrequency(2), 1u);
}

TEST(DfTableTest, RemoveClampsUnderflow) {
  DfTable table;
  table.AddDocument({0});
  // Removing a profile that was never added is a caller logic error; the
  // table clamps instead of wrapping.
  table.RemoveDocument({0, 7});
  table.RemoveDocument({0});
  EXPECT_EQ(table.num_documents(), 0u);
  EXPECT_EQ(table.DocumentFrequency(0), 0u);
  EXPECT_EQ(table.DocumentFrequency(7), 0u);
}

TEST(DfTableTest, IdfMatchesCorpusStats) {
  // Register the same three documents in a DfTable and a CorpusStats; the
  // smoothed IDF must agree bit-for-bit for every id.
  TermDictionary dictionary;
  CorpusStats stats(&dictionary);
  DfTable table;
  std::vector<std::vector<TermId>> docs = {{0, 1, 2}, {1, 2}, {2, 3}};
  for (const auto& unique_ids : docs) {
    std::vector<InternedTerm> terms;
    for (TermId id : unique_ids) {
      while (dictionary.size() <= id) {
        dictionary.Intern("t" + std::to_string(dictionary.size()));
      }
      terms.push_back({id, Location::kPageBody});
    }
    stats.AddDocument(terms);
    table.AddDocument(unique_ids);
  }
  ASSERT_EQ(table.num_documents(), stats.num_documents());
  for (TermId id = 0; id < 6; ++id) {
    EXPECT_EQ(table.DocumentFrequency(id), stats.DocumentFrequency(id)) << id;
    EXPECT_DOUBLE_EQ(table.Idf(id), stats.Idf(id)) << id;
  }
  // Term in every document → IDF exactly 0 (the paper's noise elimination).
  EXPECT_DOUBLE_EQ(table.Idf(2), 0.0);
}

TEST(DfTableTest, FillIdfMatchesPerTermIdf) {
  DfTable table;
  table.AddDocument({0, 3});
  table.AddDocument({3, 4});
  std::vector<double> idf;
  table.FillIdf(8, &idf);
  ASSERT_EQ(idf.size(), 8u);
  for (TermId id = 0; id < 8; ++id) {
    EXPECT_DOUBLE_EQ(idf[id], table.Idf(id)) << id;
  }
}

TEST(DfTableTest, SnapshotPadsToVocabularySize) {
  DfTable table;
  table.AddDocument({1});
  std::vector<size_t> snapshot = table.Snapshot(4);
  ASSERT_EQ(snapshot.size(), 4u);
  EXPECT_EQ(snapshot[0], 0u);
  EXPECT_EQ(snapshot[1], 1u);
  EXPECT_EQ(snapshot[2], 0u);
  EXPECT_EQ(snapshot[3], 0u);
}

TEST(DfTableTest, SnapshotRestoresIntoCorpusStats) {
  TermDictionary dictionary;
  dictionary.Intern("alpha");
  dictionary.Intern("beta");
  DfTable table;
  table.AddDocument({0});
  table.AddDocument({0, 1});
  CorpusStats stats(&dictionary);
  stats.Restore(table.num_documents(), table.Snapshot(dictionary.size()));
  EXPECT_EQ(stats.num_documents(), 2u);
  EXPECT_DOUBLE_EQ(stats.Idf(0), table.Idf(0));
  EXPECT_DOUBLE_EQ(stats.Idf(1), table.Idf(1));
}

TEST(FoldTermProfileTest, FoldsDuplicatesWithMaxLoc) {
  LocationWeightConfig config;  // form_text = 2, page_body = 1
  std::vector<InternedTerm> terms = {
      {3, Location::kPageBody},
      {1, Location::kFormText},
      {3, Location::kPageTitle},
      {3, Location::kPageBody},
  };
  std::vector<TermProfileEntry> profile = FoldTermProfile(terms, config);
  ASSERT_EQ(profile.size(), 2u);
  EXPECT_EQ(profile[0].term, 1u);
  EXPECT_EQ(profile[0].tf, 1u);
  EXPECT_EQ(profile[0].loc_factor, config.Factor(Location::kFormText));
  EXPECT_EQ(profile[1].term, 3u);
  EXPECT_EQ(profile[1].tf, 3u);
  // The strongest location among the occurrences wins.
  EXPECT_EQ(profile[1].loc_factor, config.Factor(Location::kPageTitle));
}

TEST(FoldTermProfileTest, ProfileWeighMatchesTfIdfWeighter) {
  // WeighProfileTfIdf(FoldTermProfile(terms), idf) must reproduce
  // TfIdfWeighter::Weigh(terms) bit-for-bit — this is the equivalence the
  // incremental corpus's cached profiles rely on.
  TermDictionary dictionary;
  for (const char* t : {"job", "career", "resume", "salary", "hotel"}) {
    dictionary.Intern(t);
  }
  CorpusStats stats(&dictionary);
  std::vector<std::vector<InternedTerm>> docs = {
      {{0, Location::kPageBody},
       {1, Location::kFormText},
       {0, Location::kPageTitle},
       {2, Location::kFormOption}},
      {{0, Location::kPageBody}, {3, Location::kPageBody}},
      {{4, Location::kFormText}, {0, Location::kFormText}},
  };
  for (const auto& doc : docs) stats.AddDocument(doc);

  std::vector<double> idf(dictionary.size());
  for (TermId id = 0; id < dictionary.size(); ++id) idf[id] = stats.Idf(id);

  LocationWeightConfig config;
  TfIdfWeighter weighter(&stats, config);
  for (const auto& doc : docs) {
    SparseVector direct = weighter.Weigh(doc);
    SparseVector via_profile =
        WeighProfileTfIdf(FoldTermProfile(doc, config), idf);
    EXPECT_EQ(via_profile, direct);
  }
}

TEST(FoldTermProfileTest, IdsBeyondIdfTableAreSkipped) {
  std::vector<TermProfileEntry> profile = {{0, 2, 1}, {9, 1, 2}};
  std::vector<double> idf = {1.5};  // table only covers id 0
  SparseVector v = WeighProfileTfIdf(profile, idf);
  ASSERT_EQ(v.size(), 1u);
  EXPECT_EQ(v.entries()[0].term, 0u);
  EXPECT_DOUBLE_EQ(v.entries()[0].weight, 2 * 1.5);
}

}  // namespace
}  // namespace cafc::vsm
