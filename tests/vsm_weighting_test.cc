#include "vsm/weighting.h"

#include <cmath>

#include <gtest/gtest.h>

namespace cafc::vsm {
namespace {

std::vector<LocatedTerm> Terms(
    std::initializer_list<std::pair<const char*, Location>> items) {
  std::vector<LocatedTerm> out;
  for (const auto& [term, loc] : items) out.push_back({term, loc});
  return out;
}

TEST(LocationWeightConfigTest, DefaultsAreDifferentiated) {
  LocationWeightConfig config;
  EXPECT_GT(config.Factor(Location::kPageTitle),
            config.Factor(Location::kPageBody));
  EXPECT_GT(config.Factor(Location::kFormText),
            config.Factor(Location::kFormOption));
}

TEST(LocationWeightConfigTest, UniformIsAllOnes) {
  LocationWeightConfig config = LocationWeightConfig::Uniform();
  for (Location loc :
       {Location::kPageBody, Location::kPageTitle, Location::kAnchorText,
        Location::kFormText, Location::kFormOption}) {
    EXPECT_EQ(config.Factor(loc), 1);
  }
}

TEST(CorpusStatsTest, DocumentFrequencyCountsDocumentsNotOccurrences) {
  TermDictionary dict;
  CorpusStats stats(&dict);
  stats.AddDocument(Terms({{"job", Location::kPageBody},
                           {"job", Location::kPageBody},
                           {"career", Location::kPageBody}}));
  stats.AddDocument(Terms({{"job", Location::kPageBody}}));
  EXPECT_EQ(stats.num_documents(), 2u);
  EXPECT_EQ(stats.DocumentFrequency(dict.Lookup("job")), 2u);
  EXPECT_EQ(stats.DocumentFrequency(dict.Lookup("career")), 1u);
}

TEST(CorpusStatsTest, IdfFormula) {
  TermDictionary dict;
  CorpusStats stats(&dict);
  for (int i = 0; i < 4; ++i) {
    std::vector<LocatedTerm> doc = {{"common", Location::kPageBody}};
    if (i == 0) doc.push_back({"rare", Location::kPageBody});
    stats.AddDocument(doc);
  }
  EXPECT_NEAR(stats.Idf(dict.Lookup("common")), std::log(4.0 / 4.0), 1e-12);
  EXPECT_NEAR(stats.Idf(dict.Lookup("rare")), std::log(4.0 / 1.0), 1e-12);
}

TEST(CorpusStatsTest, TermInEveryDocumentHasZeroIdf) {
  TermDictionary dict;
  CorpusStats stats(&dict);
  stats.AddDocument(Terms({{"noise", Location::kPageBody}}));
  stats.AddDocument(Terms({{"noise", Location::kPageBody}}));
  EXPECT_DOUBLE_EQ(stats.Idf(dict.Lookup("noise")), 0.0);
}

TEST(CorpusStatsTest, UnknownTermIdfClamped) {
  TermDictionary dict;
  CorpusStats stats(&dict);
  stats.AddDocument(Terms({{"x", Location::kPageBody}}));
  TermId later = dict.Intern("never-in-a-doc");
  EXPECT_NEAR(stats.Idf(later), std::log(1.0), 1e-12);
  EXPECT_EQ(stats.DocumentFrequency(later), 0u);
}

TEST(TfIdfWeighterTest, WeightIsLocTimesTfTimesIdf) {
  TermDictionary dict;
  CorpusStats stats(&dict);
  // 2 documents; "flight" in one → idf = ln 2.
  stats.AddDocument(Terms({{"flight", Location::kPageTitle},
                           {"flight", Location::kPageBody},
                           {"other", Location::kPageBody}}));
  stats.AddDocument(Terms({{"other", Location::kPageBody}}));

  LocationWeightConfig config;  // title factor 2
  TfIdfWeighter weighter(&stats, config);
  SparseVector v = weighter.Weigh(Terms({{"flight", Location::kPageTitle},
                                         {"flight", Location::kPageBody}}));
  // LOC = max(title=2, body=1) = 2; TF = 2; idf = ln 2.
  EXPECT_NEAR(v.Get(dict.Lookup("flight")), 2 * 2 * std::log(2.0), 1e-12);
}

TEST(TfIdfWeighterTest, ZeroIdfTermsDropped) {
  TermDictionary dict;
  CorpusStats stats(&dict);
  stats.AddDocument(Terms({{"everywhere", Location::kPageBody}}));
  stats.AddDocument(Terms({{"everywhere", Location::kPageBody}}));
  TfIdfWeighter weighter(&stats, LocationWeightConfig{});
  SparseVector v =
      weighter.Weigh(Terms({{"everywhere", Location::kPageBody}}));
  EXPECT_TRUE(v.empty());
}

TEST(TfIdfWeighterTest, UnknownTermsSkipped) {
  TermDictionary dict;
  CorpusStats stats(&dict);
  stats.AddDocument(Terms({{"known", Location::kPageBody}}));
  stats.AddDocument(Terms({{"also", Location::kPageBody}}));
  TfIdfWeighter weighter(&stats, LocationWeightConfig{});
  SparseVector v = weighter.Weigh(Terms({{"unknown", Location::kPageBody},
                                         {"known", Location::kPageBody}}));
  EXPECT_EQ(v.size(), 1u);
  EXPECT_GT(v.Get(dict.Lookup("known")), 0.0);
}

TEST(TfIdfWeighterTest, UniformVsDifferentiatedTitleBoost) {
  TermDictionary dict;
  CorpusStats stats(&dict);
  stats.AddDocument(Terms({{"word", Location::kPageTitle}}));
  stats.AddDocument(Terms({{"pad", Location::kPageBody}}));

  TfIdfWeighter differentiated(&stats, LocationWeightConfig{});
  TfIdfWeighter uniform(&stats, LocationWeightConfig::Uniform());
  auto doc = Terms({{"word", Location::kPageTitle}});
  EXPECT_NEAR(differentiated.Weigh(doc).Get(dict.Lookup("word")),
              2.0 * uniform.Weigh(doc).Get(dict.Lookup("word")), 1e-12);
}

TEST(Bm25WeighterTest, SingleDocBehaviour) {
  TermDictionary dict;
  CorpusStats stats(&dict);
  stats.AddDocument(Terms({{"rare", Location::kPageBody},
                           {"pad", Location::kPageBody}}));
  stats.AddDocument(Terms({{"pad", Location::kPageBody}}));

  Bm25Weighter weighter(&stats, LocationWeightConfig::Uniform(),
                        /*average_document_length=*/1.5);
  SparseVector v = weighter.Weigh(Terms({{"rare", Location::kPageBody}}));
  // tf=1, dl=1, avgdl=1.5, k1=1.2, b=0.75:
  // norm = 1.2 * (1 - 0.75 + 0.75 * (1/1.5)) = 1.2 * 0.75 = 0.9
  // sat = 1 * 2.2 / (1 + 0.9) = 2.2 / 1.9; idf = ln 2.
  EXPECT_NEAR(v.Get(dict.Lookup("rare")),
              (2.2 / 1.9) * std::log(2.0), 1e-12);
}

TEST(Bm25WeighterTest, TermFrequencySaturates) {
  TermDictionary dict;
  CorpusStats stats(&dict);
  stats.AddDocument(Terms({{"x", Location::kPageBody}}));
  stats.AddDocument(Terms({{"pad", Location::kPageBody}}));
  Bm25Weighter weighter(&stats, LocationWeightConfig::Uniform(), 1.0);

  auto weight_for_tf = [&](int tf) {
    std::vector<LocatedTerm> doc;
    for (int i = 0; i < tf; ++i) doc.push_back({"x", Location::kPageBody});
    return weighter.Weigh(doc).Get(dict.Lookup("x"));
  };
  double w1 = weight_for_tf(1);
  double w10 = weight_for_tf(10);
  double w100 = weight_for_tf(100);
  EXPECT_LT(w1, w10);
  EXPECT_LT(w10, w100);
  // Saturation: x100 increase in tf buys far less than x100 in weight
  // (BM25 caps at (k1+1)*idf).
  EXPECT_LT(w100, (1.2 + 1.0) * std::log(2.0) + 1e-12);
}

TEST(Bm25WeighterTest, LongDocumentsPenalized) {
  TermDictionary dict;
  CorpusStats stats(&dict);
  stats.AddDocument(Terms({{"x", Location::kPageBody}}));
  stats.AddDocument(Terms({{"pad", Location::kPageBody}}));
  Bm25Weighter weighter(&stats, LocationWeightConfig::Uniform(),
                        /*average_document_length=*/5.0);

  std::vector<LocatedTerm> short_doc = {{"x", Location::kPageBody}};
  std::vector<LocatedTerm> long_doc = {{"x", Location::kPageBody}};
  for (int i = 0; i < 50; ++i) {
    long_doc.push_back({"pad", Location::kPageBody});
  }
  EXPECT_GT(weighter.Weigh(short_doc).Get(dict.Lookup("x")),
            weighter.Weigh(long_doc).Get(dict.Lookup("x")));
}

TEST(Bm25WeighterTest, LocationFactorApplies) {
  TermDictionary dict;
  CorpusStats stats(&dict);
  stats.AddDocument(Terms({{"x", Location::kPageTitle}}));
  stats.AddDocument(Terms({{"pad", Location::kPageBody}}));
  Bm25Weighter differentiated(&stats, LocationWeightConfig{}, 1.0);
  Bm25Weighter uniform(&stats, LocationWeightConfig::Uniform(), 1.0);
  auto doc = Terms({{"x", Location::kPageTitle}});
  EXPECT_NEAR(differentiated.Weigh(doc).Get(dict.Lookup("x")),
              2.0 * uniform.Weigh(doc).Get(dict.Lookup("x")), 1e-12);
}

TEST(CentroidTest, MeanOfVectors) {
  SparseVector a = SparseVector::FromUnsorted({{0, 2.0}, {1, 4.0}});
  SparseVector b = SparseVector::FromUnsorted({{1, 2.0}, {2, 6.0}});
  SparseVector c = Centroid({&a, &b});
  EXPECT_DOUBLE_EQ(c.Get(0), 1.0);
  EXPECT_DOUBLE_EQ(c.Get(1), 3.0);
  EXPECT_DOUBLE_EQ(c.Get(2), 3.0);
}

TEST(CentroidTest, SingleVectorIsItself) {
  SparseVector a = SparseVector::FromUnsorted({{3, 5.0}});
  SparseVector c = Centroid({&a});
  EXPECT_EQ(c, a);
}

TEST(CentroidTest, EmptyInputYieldsEmpty) {
  EXPECT_TRUE(Centroid({}).empty());
}

TEST(TermDictionaryTest, InternIsIdempotent) {
  TermDictionary dict;
  TermId a = dict.Intern("abc");
  TermId b = dict.Intern("abc");
  EXPECT_EQ(a, b);
  EXPECT_EQ(dict.size(), 1u);
  EXPECT_EQ(dict.term(a), "abc");
}

TEST(TermDictionaryTest, LookupUnknownReturnsSentinel) {
  TermDictionary dict;
  EXPECT_EQ(dict.Lookup("nope"), kInvalidTermId);
}

TEST(TermDictionaryTest, DenseSequentialIds) {
  TermDictionary dict;
  EXPECT_EQ(dict.Intern("a"), 0u);
  EXPECT_EQ(dict.Intern("b"), 1u);
  EXPECT_EQ(dict.Intern("c"), 2u);
}

}  // namespace
}  // namespace cafc::vsm
