#include "text/stopwords.h"

#include <gtest/gtest.h>

namespace cafc::text {
namespace {

TEST(StopwordsTest, CommonFunctionWords) {
  for (const char* w : {"the", "a", "an", "and", "or", "of", "to", "in",
                        "is", "are", "was", "were", "this", "that", "with"}) {
    EXPECT_TRUE(IsStopword(w)) << w;
  }
}

TEST(StopwordsTest, WebGlue) {
  for (const char* w : {"www", "http", "com", "click", "copyright"}) {
    EXPECT_TRUE(IsStopword(w)) << w;
  }
}

TEST(StopwordsTest, DomainTermsAreNotStopwords) {
  // The paper relies on IDF, not the stop list, for generic-but-topical
  // terms; domain anchors must never be filtered.
  for (const char* w :
       {"flight", "hotel", "job", "music", "movie", "book", "car", "rental",
        "search", "shop", "help", "privacy", "home"}) {
    EXPECT_FALSE(IsStopword(w)) << w;
  }
}

TEST(StopwordsTest, CaseSensitiveLowercaseOnly) {
  // Callers lowercase before lookup; uppercase is not matched.
  EXPECT_TRUE(IsStopword("the"));
  EXPECT_FALSE(IsStopword("The"));
}

TEST(StopwordsTest, EmptyStringNotStopword) {
  EXPECT_FALSE(IsStopword(""));
}

TEST(StopwordsTest, CountMatchesDeclaredSize) {
  EXPECT_EQ(StopwordCount(), 181u);
}

TEST(StopwordsTest, ContractionFragments) {
  for (const char* w : {"don", "isn", "won", "ll", "ve", "re"}) {
    EXPECT_TRUE(IsStopword(w)) << w;
  }
}

}  // namespace
}  // namespace cafc::text
