// Tests of snapshot-backed (read-only, mmapped) DirectoryServer mode:
// stored-page classification and search must be bit-identical to the
// in-RAM directory at any worker count, refresh must be refused, and the
// storage counters must surface through ServerStats.

#include <cstdio>
#include <future>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "core/cafc.h"
#include "core/dataset.h"
#include "core/directory.h"
#include "serve/server.h"
#include "storage/reader.h"
#include "storage/writer.h"
#include "web/synthesizer.h"

namespace cafc {
namespace {

using serve::DirectoryServer;
using serve::DirectoryServerOptions;
using serve::QueryKind;
using serve::QueryRequest;
using serve::QueryResponse;
using serve::ServerStats;

web::SynthesizerConfig SmallConfig() {
  web::SynthesizerConfig config;
  config.seed = 91;
  config.form_pages_total = 64;
  config.single_attribute_forms = 8;
  config.homogeneous_hubs_per_domain = 25;
  config.mixed_hubs = 40;
  config.directory_hubs = 3;
  config.large_air_hotel_hubs = 3;
  config.non_searchable_form_pages = 0;
  config.noise_pages = 0;
  config.outlier_pages = 0;
  return config;
}

std::string TempPath(const char* name) {
  return std::string(::testing::TempDir()) + "/" + name;
}

class MappedServeTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    web::SyntheticWeb web = web::Synthesizer(SmallConfig()).Generate();
    Dataset dataset = std::move(BuildDataset(web)).value();
    pages_ = new FormPageSet(BuildFormPageSet(dataset));
    CafcChOptions options;
    options.min_hub_cardinality = 4;
    cluster::Clustering clustering =
        CafcCh(*pages_, web::kNumDomains, options);
    directory_ = new DatabaseDirectory(DatabaseDirectory::Build(
        *pages_, clustering,
        DatabaseDirectory::AutoLabels(*pages_, clustering)));
    path_ = new std::string(TempPath("serve_mapped.cafc3"));
    ASSERT_TRUE(
        storage::WriteSnapshotV3(*directory_, pages_, *path_).ok());
  }
  static void TearDownTestSuite() {
    std::remove(path_->c_str());
    delete path_;
    delete directory_;
    delete pages_;
    path_ = nullptr;
    directory_ = nullptr;
    pages_ = nullptr;
  }

  static std::shared_ptr<const storage::MappedSnapshot> OpenSnapshot(
      uint64_t budget = 0) {
    storage::SnapshotOpenOptions options;
    options.memory_budget_bytes = budget;
    Result<std::unique_ptr<storage::MappedSnapshot>> opened =
        storage::MappedSnapshot::Open(*path_, options);
    EXPECT_TRUE(opened.ok()) << opened.status().ToString();
    return opened.ok()
               ? std::shared_ptr<const storage::MappedSnapshot>(
                     std::move(*opened))
               : nullptr;
  }

  static FormPageSet* pages_;
  static DatabaseDirectory* directory_;
  static std::string* path_;
};

FormPageSet* MappedServeTest::pages_ = nullptr;
DatabaseDirectory* MappedServeTest::directory_ = nullptr;
std::string* MappedServeTest::path_ = nullptr;

TEST_F(MappedServeTest, StoredClassifyMatchesInRamAtEveryWorkerCount) {
  const cluster::CentroidIndex reference_index =
      directory_->BuildCentroidIndex();
  std::vector<DatabaseDirectory::Classification> expected;
  for (size_t i = 0; i < pages_->size(); ++i) {
    expected.push_back(directory_->ClassifyPage(
        pages_->page(i), ContentConfig::kFcPlusPc, reference_index));
  }

  for (size_t workers : {size_t{1}, size_t{3}}) {
    auto snapshot = OpenSnapshot();
    ASSERT_NE(snapshot, nullptr);
    DirectoryServerOptions options;
    options.workers = workers;
    options.queue_capacity = pages_->size() + 8;
    DirectoryServer server(snapshot, options);

    std::vector<std::future<QueryResponse>> futures;
    for (size_t i = 0; i < pages_->size(); ++i) {
      QueryRequest request;
      request.kind = QueryKind::kClassifyStored;
      request.page_ordinal = i;
      futures.push_back(server.Submit(std::move(request)));
    }
    for (size_t i = 0; i < futures.size(); ++i) {
      QueryResponse response = futures[i].get();
      ASSERT_TRUE(response.status.ok()) << response.status.ToString();
      EXPECT_EQ(response.classification.entry, expected[i].entry);
      EXPECT_EQ(response.classification.similarity,
                expected[i].similarity);
    }
    server.Shutdown();
  }
}

TEST_F(MappedServeTest, SearchMatchesInRamBitExactly) {
  const cluster::CentroidIndex reference_index =
      directory_->BuildCentroidIndex();
  auto snapshot = OpenSnapshot();
  ASSERT_NE(snapshot, nullptr);
  DirectoryServer server(snapshot, DirectoryServerOptions{});
  for (const char* query :
       {"job career resume", "hotel rooms", "cheap flights airline"}) {
    QueryRequest request;
    request.kind = QueryKind::kSearch;
    request.query = query;
    request.top_k = 4;
    QueryResponse response = server.Query(std::move(request));
    ASSERT_TRUE(response.status.ok());
    auto expected = directory_->Search(query, 4, reference_index);
    ASSERT_EQ(response.hits.size(), expected.size()) << query;
    for (size_t h = 0; h < expected.size(); ++h) {
      EXPECT_EQ(response.hits[h].entry, expected[h].entry);
      EXPECT_EQ(response.hits[h].similarity, expected[h].similarity);
    }
  }
  server.Shutdown();
}

TEST_F(MappedServeTest, ReadOnlyServerRefusesRefresh) {
  auto snapshot = OpenSnapshot();
  ASSERT_NE(snapshot, nullptr);
  DirectoryServer server(snapshot, DirectoryServerOptions{});
  Status status = server.ScheduleRefresh({});
  EXPECT_EQ(status.code(), StatusCode::kFailedPrecondition);
  server.Shutdown();
}

TEST_F(MappedServeTest, StatsSurfaceStorageCounters) {
  auto probe = OpenSnapshot();
  ASSERT_NE(probe, nullptr);
  const uint64_t budget = probe->fixed_resident_bytes() + 8 * 1024;
  probe.reset();

  auto snapshot = OpenSnapshot(budget);
  ASSERT_NE(snapshot, nullptr);
  DirectoryServerOptions options;
  options.workers = 2;
  DirectoryServer server(snapshot, options);

  // A hot page interleaved with a sweep: hits and misses both happen.
  for (size_t i = 0; i < pages_->size(); ++i) {
    for (size_t ordinal : {size_t{0}, i}) {
      QueryRequest request;
      request.kind = QueryKind::kClassifyStored;
      request.page_ordinal = ordinal;
      QueryResponse response = server.Query(std::move(request));
      ASSERT_TRUE(response.status.ok());
    }
  }
  const ServerStats stats = server.Stats();
  EXPECT_TRUE(stats.mapped_storage);
  EXPECT_GT(stats.page_hits, 0u);
  EXPECT_GT(stats.page_misses, 0u);
  EXPECT_EQ(stats.memory_budget_bytes, budget);
  EXPECT_GT(stats.storage_fixed_bytes, 0u);
  EXPECT_GE(stats.storage_resident_bytes, stats.storage_fixed_bytes);
  EXPECT_LE(stats.storage_resident_bytes, budget);
  server.Shutdown();
}

TEST_F(MappedServeTest, StoredClassifyRejectsBadOrdinal) {
  auto snapshot = OpenSnapshot();
  ASSERT_NE(snapshot, nullptr);
  DirectoryServer server(snapshot, DirectoryServerOptions{});
  QueryRequest request;
  request.kind = QueryKind::kClassifyStored;
  request.page_ordinal = pages_->size() + 100;
  QueryResponse response = server.Query(std::move(request));
  EXPECT_EQ(response.status.code(), StatusCode::kOutOfRange);
  const ServerStats stats = server.Stats();
  EXPECT_GT(stats.failed, 0u);
  server.Shutdown();
}

}  // namespace
}  // namespace cafc
