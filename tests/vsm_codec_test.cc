#include "vsm/codec.h"

#include <bit>
#include <cmath>
#include <cstdint>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "vsm/sparse_vector.h"
#include "vsm/term_dictionary.h"

namespace cafc::vsm::codec {
namespace {

std::vector<Entry> RoundTrip(const std::vector<Entry>& entries,
                             const std::vector<double>& idf, double inv,
                             bool scaled,
                             PostingCodecStats* stats = nullptr) {
  std::string buf;
  EncodePostings(entries, idf, inv, scaled, &buf, stats);
  util::ByteReader reader(buf);
  std::vector<Entry> decoded;
  Status status = DecodePostings(&reader, idf, inv, scaled, &decoded);
  EXPECT_TRUE(status.ok()) << status.ToString();
  EXPECT_TRUE(reader.empty()) << "trailing bytes after posting block";
  return decoded;
}

TEST(PostingCodec, EmptyBlockRoundTrips) {
  const std::vector<double> idf = {1.5, 2.5};
  EXPECT_TRUE(RoundTrip({}, idf, 1.0, false).empty());
}

TEST(PostingCodec, SingleEntryAtTermZero) {
  const std::vector<double> idf = {1.5};
  const std::vector<Entry> entries = {{0, 3.0}};  // m = 2, exact
  PostingCodecStats stats;
  EXPECT_EQ(RoundTrip(entries, idf, 1.0, false, &stats), entries);
  EXPECT_EQ(stats.quantized_weights, 1u);
  EXPECT_EQ(stats.raw_weights, 0u);
}

TEST(PostingCodec, LastVocabularyTermRoundTrips) {
  // The decoder validates ids against the vocabulary size; the last valid
  // id must pass and id == size must be rejected (tested further down).
  std::vector<double> idf(1000, 1.0);
  const TermId last = 999;
  const std::vector<Entry> entries = {{0, 1.0}, {last, 7.0}};
  EXPECT_EQ(RoundTrip(entries, idf, 1.0, false), entries);
}

TEST(PostingCodec, QuantizedPathIsBitExact) {
  // Page-vector weights are double(m) * idf by construction, so every one
  // of them must take the integer-multiplier path.
  const std::vector<double> idf = {std::log(3.0), std::log(7.0) / 2,
                                   0.875};
  std::vector<Entry> entries;
  for (TermId t = 0; t < 3; ++t) {
    entries.push_back({t, static_cast<double>(17 * (t + 1)) * idf[t]});
  }
  PostingCodecStats stats;
  const std::vector<Entry> decoded =
      RoundTrip(entries, idf, 1.0, false, &stats);
  ASSERT_EQ(decoded.size(), entries.size());
  for (size_t i = 0; i < entries.size(); ++i) {
    EXPECT_EQ(std::bit_cast<uint64_t>(decoded[i].weight),
              std::bit_cast<uint64_t>(entries[i].weight));
  }
  EXPECT_EQ(stats.quantized_weights, 3u);
  EXPECT_EQ(stats.delta_weights, 0u);
  EXPECT_EQ(stats.raw_weights, 0u);
}

TEST(PostingCodec, ScaledQuantizedPathMatchesCentroidExpression) {
  // Centroid weights are (double(m) * idf) * inv with inv = 1/members.
  const std::vector<double> idf = {1.25, std::log(5.0)};
  const double inv = 1.0 / 3.0;
  const std::vector<Entry> entries = {
      {0, (4.0 * idf[0]) * inv},
      {1, (9.0 * idf[1]) * inv},
  };
  PostingCodecStats stats;
  EXPECT_EQ(RoundTrip(entries, idf, inv, true, &stats), entries);
  EXPECT_EQ(stats.quantized_weights, 2u);
  EXPECT_EQ(stats.raw_weights, 0u);
}

TEST(PostingCodec, UlpDeltaPathIsBitExact) {
  // A centroid mean accumulated in a different order lands a few
  // representable doubles away from any exact reconstruction — the codec
  // must absorb that with the ulp-delta token, not the 8-byte fallback.
  const std::vector<double> idf = {std::log(11.0)};
  const double inv = 1.0 / 7.0;
  double base = (5.0 * idf[0]) * inv;
  for (int ulps : {1, -1, 3, -17, 4095}) {
    double perturbed = std::bit_cast<double>(static_cast<uint64_t>(
        static_cast<int64_t>(std::bit_cast<uint64_t>(base)) + ulps));
    PostingCodecStats stats;
    const std::vector<Entry> decoded =
        RoundTrip({{0, perturbed}}, idf, inv, true, &stats);
    ASSERT_EQ(decoded.size(), 1u);
    EXPECT_EQ(std::bit_cast<uint64_t>(decoded[0].weight),
              std::bit_cast<uint64_t>(perturbed))
        << "ulps " << ulps;
    EXPECT_EQ(stats.delta_weights + stats.quantized_weights, 1u);
    EXPECT_EQ(stats.raw_weights, 0u);
  }
}

TEST(PostingCodec, HostileWeightsFallBackToRawBitsExactly) {
  // No integer multiplier reconstructs these; raw IEEE-754 bytes must.
  const std::vector<double> idf = {1.5, 1.5, 1.5, 1.5};
  const std::vector<Entry> entries = {
      {0, 0.3},     // estimate 0.2 < 0.5: below the smallest multiplier
      {1, -2.25},   // negative weight
      {2, 1.0e300}, // estimate beyond the exact-integer range of double
      {3, 4.9e-324} // subnormal
  };
  PostingCodecStats stats;
  const std::vector<Entry> decoded =
      RoundTrip(entries, idf, 1.0, false, &stats);
  ASSERT_EQ(decoded.size(), entries.size());
  for (size_t i = 0; i < entries.size(); ++i) {
    EXPECT_EQ(std::bit_cast<uint64_t>(decoded[i].weight),
              std::bit_cast<uint64_t>(entries[i].weight))
        << "entry " << i;
  }
  EXPECT_EQ(stats.raw_weights, entries.size());
  EXPECT_EQ(stats.quantized_weights + stats.delta_weights, 0u);
}

TEST(PostingCodec, DecodedEntriesRebuildAnIdenticalSparseVector) {
  const std::vector<double> idf = {1.5, 2.0, 0.5};
  std::vector<Entry> entries = {{0, 3.0}, {1, 8.0}, {2, 0.25}};
  SparseVector original = SparseVector::FromSorted(entries);
  SparseVector rebuilt =
      SparseVector::FromSorted(RoundTrip(entries, idf, 1.0, false));
  EXPECT_TRUE(original == rebuilt);
  EXPECT_EQ(std::bit_cast<uint64_t>(original.Norm()),
            std::bit_cast<uint64_t>(rebuilt.Norm()));
}

TEST(PostingCodec, SkipAdvancesExactlyOneBlock) {
  const std::vector<double> idf = {1.5, 1.5, 1.5, 1.5};
  const std::vector<Entry> a = {{0, 0.3}, {1, 3.0}, {3, 4.9e-324}};
  const std::vector<Entry> b = {{2, 6.0}};
  std::string buf;
  EncodePostings(a, idf, 1.0, false, &buf);
  EncodePostings(b, idf, 1.0, false, &buf);
  util::ByteReader reader(buf);
  ASSERT_TRUE(SkipPostings(&reader).ok());
  std::vector<Entry> decoded;
  ASSERT_TRUE(DecodePostings(&reader, idf, 1.0, false, &decoded).ok());
  EXPECT_EQ(decoded, b);
  EXPECT_TRUE(reader.empty());
}

TEST(PostingCodec, RejectsCountBeyondVocabulary) {
  std::string buf;
  util::PutVarint64(&buf, 5);  // five postings in a 2-term vocabulary
  util::ByteReader reader(buf);
  std::vector<Entry> decoded;
  EXPECT_EQ(DecodePostings(&reader, {1.0, 1.0}, 1.0, false, &decoded)
                .code(),
            StatusCode::kParseError);
}

TEST(PostingCodec, RejectsNonIncreasingTermIds) {
  std::string buf;
  util::PutVarint64(&buf, 2);  // count
  util::PutVarint64(&buf, 1);  // term 1
  util::PutVarint64(&buf, 2);  // weight token (m = 1)
  util::PutVarint64(&buf, 0);  // zero delta: term 1 again
  util::PutVarint64(&buf, 2);
  util::ByteReader reader(buf);
  std::vector<Entry> decoded;
  EXPECT_EQ(DecodePostings(&reader, {1.0, 1.0}, 1.0, false, &decoded)
                .code(),
            StatusCode::kParseError);
}

TEST(PostingCodec, RejectsZeroMultiplierToken) {
  // Token 0 is the raw marker; token 1 would decode as m = 0 with a ulp
  // delta, which the encoder never emits — corruption, not a weight.
  std::string buf;
  util::PutVarint64(&buf, 1);  // count
  util::PutVarint64(&buf, 0);  // term 0
  util::PutVarint64(&buf, 1);  // weight token with m = 0
  util::PutVarint64(&buf, 2);  // zigzag delta, present for odd tokens
  util::ByteReader reader(buf);
  std::vector<Entry> decoded;
  EXPECT_EQ(DecodePostings(&reader, {1.0}, 1.0, false, &decoded).code(),
            StatusCode::kParseError);
}

TEST(PostingCodec, TruncatedBlockFailsAtEveryCutPoint) {
  const std::vector<double> idf = {1.5, 1.5};
  const std::vector<Entry> entries = {{0, 0.3}, {1, 3.0}};
  std::string buf;
  EncodePostings(entries, idf, 1.0, false, &buf);
  for (size_t keep = 0; keep < buf.size(); ++keep) {
    util::ByteReader reader(
        reinterpret_cast<const uint8_t*>(buf.data()), keep);
    std::vector<Entry> decoded;
    EXPECT_FALSE(
        DecodePostings(&reader, idf, 1.0, false, &decoded).ok())
        << "kept " << keep << " of " << buf.size();
  }
}

// ---------------------------------------------------------------- lists

std::vector<std::string> ListRoundTrip(
    const std::vector<std::string>& items) {
  std::string buf;
  EncodeFrontCodedList(items, &buf);
  util::ByteReader reader(buf);
  std::vector<std::string> decoded;
  Status status = DecodeFrontCodedList(&reader, &decoded);
  EXPECT_TRUE(status.ok()) << status.ToString();
  EXPECT_TRUE(reader.empty());
  return decoded;
}

TEST(FrontCodedList, BoundaryShapesRoundTrip) {
  const std::vector<std::vector<std::string>> cases = {
      {},
      {""},
      {"solo"},
      {"", "", ""},
      {"a", "a", "a"},
      {"abc", "abd", "abd", "b", ""},
      {"suffix.html", "prefix.html", "x.html", ".html"},
      {std::string(300, 'q') + "1end", std::string(300, 'q') + "2end"},
  };
  for (const auto& items : cases) {
    EXPECT_EQ(ListRoundTrip(items), items);
  }
}

TEST(FrontCodedList, UrlNeighborsCompressBothEnds) {
  // The member-URL workload: same scheme and host template, same file
  // name, only the site number differs. Two-ended coding must reduce each
  // subsequent URL to a handful of bytes.
  std::vector<std::string> urls;
  for (int site = 12300; site < 12400; ++site) {
    urls.push_back("http://s" + std::to_string(site) +
                   ".stream.test/form.html");
  }
  std::string buf;
  EncodeFrontCodedList(urls, &buf);
  size_t raw_bytes = 0;
  for (const std::string& url : urls) raw_bytes += url.size();
  EXPECT_LT(buf.size() * 3, raw_bytes);  // >3x on this shape
  EXPECT_EQ(ListRoundTrip(urls), urls);
}

TEST(FrontCodedList, SkipJumpsTheWholeListAndReportsTheCount) {
  std::vector<std::string> urls = {"http://a/x", "http://b/x",
                                   "http://c/y"};
  std::string buf;
  EncodeFrontCodedList(urls, &buf);
  util::PutVarint64(&buf, 424242);  // sentinel after the list
  util::ByteReader reader(buf);
  uint64_t count = 0;
  ASSERT_TRUE(SkipFrontCodedList(&reader, &count).ok());
  EXPECT_EQ(count, urls.size());
  uint64_t sentinel = 0;
  ASSERT_TRUE(reader.ReadVarint64(&sentinel).ok());
  EXPECT_EQ(sentinel, 424242u);
  EXPECT_TRUE(reader.empty());
}

TEST(FrontCodedList, RejectsOverlappingShares) {
  // prefix + suffix beyond the previous item's length reads memory the
  // previous item does not have; the decoder must refuse.
  std::string buf;
  util::PutVarint64(&buf, 2);  // count
  std::string body;
  util::PutVarint64(&body, 0);  // item 0: "ab"
  util::PutVarint64(&body, 0);
  util::PutVarint64(&body, 2);
  body += "ab";
  util::PutVarint64(&body, 2);  // item 1: prefix 2 + suffix 1 > len("ab")
  util::PutVarint64(&body, 1);
  util::PutVarint64(&body, 0);
  util::PutVarint64(&buf, body.size());
  buf += body;
  util::ByteReader reader(buf);
  std::vector<std::string> decoded;
  EXPECT_EQ(DecodeFrontCodedList(&reader, &decoded).code(),
            StatusCode::kParseError);
}

TEST(FrontCodedList, RejectsBodyLengthMismatch) {
  std::string buf;
  EncodeFrontCodedList({"aa", "ab"}, &buf);
  // Grow the declared count without growing the body: the decoder either
  // runs past the body (caught by the final offset check) or off the end.
  std::string tampered;
  util::PutVarint64(&tampered, 3);
  tampered.append(buf.begin() + 1, buf.end());
  util::ByteReader reader(tampered);
  std::vector<std::string> decoded;
  EXPECT_FALSE(DecodeFrontCodedList(&reader, &decoded).ok());
}

TEST(FrontCodedList, TruncatedListFailsCleanly) {
  std::string buf;
  EncodeFrontCodedList({"http://a/x", "http://b/x"}, &buf);
  for (size_t keep = 0; keep < buf.size(); ++keep) {
    util::ByteReader reader(
        reinterpret_cast<const uint8_t*>(buf.data()), keep);
    std::vector<std::string> decoded;
    EXPECT_FALSE(DecodeFrontCodedList(&reader, &decoded).ok())
        << "kept " << keep;
  }
}

// ----------------------------------------------------------- dictionary

TEST(DictionaryCodec, RoundTripPreservesIdsAcrossSortReordering) {
  // Intern order (= id order) deliberately differs from string order, so
  // the sorted-on-disk layout must restore the permutation exactly.
  TermDictionary dict;
  for (const char* term : {"zebra", "apple", "mango", "aardvark", "kiwi"}) {
    dict.Intern(term);
  }
  std::string buf;
  EncodeDictionary(dict, &buf);
  util::ByteReader reader(buf);
  TermDictionary decoded;
  ASSERT_TRUE(DecodeDictionary(&reader, &decoded).ok());
  ASSERT_EQ(decoded.size(), dict.size());
  for (size_t i = 0; i < dict.size(); ++i) {
    EXPECT_EQ(decoded.term(static_cast<TermId>(i)),
              dict.term(static_cast<TermId>(i)));
  }
}

TEST(DictionaryCodec, SingleTermAndEmptyDictionaries) {
  for (size_t terms : {size_t{0}, size_t{1}}) {
    TermDictionary dict;
    if (terms == 1) dict.Intern("only");
    std::string buf;
    EncodeDictionary(dict, &buf);
    util::ByteReader reader(buf);
    TermDictionary decoded;
    ASSERT_TRUE(DecodeDictionary(&reader, &decoded).ok());
    EXPECT_EQ(decoded.size(), terms);
    if (terms == 1) EXPECT_EQ(decoded.term(0), "only");
  }
}

TEST(DictionaryCodec, RejectsDuplicateOrOutOfRangeIds) {
  std::string buf;
  util::PutVarint64(&buf, 2);  // two terms
  util::PutVarint64(&buf, 0);  // "aa" -> id 0
  util::PutVarint64(&buf, 2);
  buf += "aa";
  util::PutVarint64(&buf, 0);
  util::PutVarint64(&buf, 1);  // "ab" (prefix 1 + "b") -> id 0 again
  util::PutVarint64(&buf, 1);
  buf += "b";
  util::PutVarint64(&buf, 0);  // duplicate id
  util::ByteReader reader(buf);
  TermDictionary decoded;
  EXPECT_EQ(DecodeDictionary(&reader, &decoded).code(),
            StatusCode::kParseError);
}

}  // namespace
}  // namespace cafc::vsm::codec
