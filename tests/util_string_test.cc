#include "util/string_util.h"

#include <gtest/gtest.h>

namespace cafc {
namespace {

TEST(StringUtilTest, ToLower) {
  EXPECT_EQ(ToLower("AbC dEf"), "abc def");
  EXPECT_EQ(ToLower(""), "");
  EXPECT_EQ(ToLower("123!@#"), "123!@#");
}

TEST(StringUtilTest, CharacterClasses) {
  EXPECT_TRUE(IsAsciiAlpha('a'));
  EXPECT_TRUE(IsAsciiAlpha('Z'));
  EXPECT_FALSE(IsAsciiAlpha('1'));
  EXPECT_FALSE(IsAsciiAlpha(' '));
  EXPECT_TRUE(IsAsciiDigit('0'));
  EXPECT_TRUE(IsAsciiDigit('9'));
  EXPECT_FALSE(IsAsciiDigit('a'));
  EXPECT_TRUE(IsAsciiAlnum('a'));
  EXPECT_TRUE(IsAsciiAlnum('7'));
  EXPECT_FALSE(IsAsciiAlnum('-'));
  EXPECT_TRUE(IsAsciiSpace(' '));
  EXPECT_TRUE(IsAsciiSpace('\t'));
  EXPECT_TRUE(IsAsciiSpace('\n'));
  EXPECT_TRUE(IsAsciiSpace('\r'));
  EXPECT_FALSE(IsAsciiSpace('x'));
}

TEST(StringUtilTest, StripAsciiWhitespace) {
  EXPECT_EQ(StripAsciiWhitespace("  abc  "), "abc");
  EXPECT_EQ(StripAsciiWhitespace("abc"), "abc");
  EXPECT_EQ(StripAsciiWhitespace("\t\n abc def \r"), "abc def");
  EXPECT_EQ(StripAsciiWhitespace("   "), "");
  EXPECT_EQ(StripAsciiWhitespace(""), "");
}

TEST(StringUtilTest, SplitNonEmpty) {
  EXPECT_EQ(SplitNonEmpty("a,b,c", ','),
            (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(SplitNonEmpty("a,,c", ','), (std::vector<std::string>{"a", "c"}));
  EXPECT_EQ(SplitNonEmpty(",,", ','), (std::vector<std::string>{}));
  EXPECT_EQ(SplitNonEmpty("", ','), (std::vector<std::string>{}));
  EXPECT_EQ(SplitNonEmpty("abc", ','), (std::vector<std::string>{"abc"}));
  EXPECT_EQ(SplitNonEmpty("/a/b/", '/'), (std::vector<std::string>{"a", "b"}));
}

TEST(StringUtilTest, Join) {
  EXPECT_EQ(Join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(Join({"solo"}, ","), "solo");
  EXPECT_EQ(Join({}, ","), "");
}

TEST(StringUtilTest, SplitJoinRoundTrip) {
  std::string input = "alpha beta gamma";
  EXPECT_EQ(Join(SplitNonEmpty(input, ' '), " "), input);
}

TEST(StringUtilTest, StartsAndEndsWith) {
  EXPECT_TRUE(StartsWith("http://x", "http://"));
  EXPECT_FALSE(StartsWith("ttp://x", "http://"));
  EXPECT_TRUE(StartsWith("abc", ""));
  EXPECT_FALSE(StartsWith("ab", "abc"));
  EXPECT_TRUE(EndsWith("page.html", ".html"));
  EXPECT_FALSE(EndsWith("page.htm", ".html"));
  EXPECT_TRUE(EndsWith("abc", ""));
}

TEST(StringUtilTest, EqualsIgnoreCase) {
  EXPECT_TRUE(EqualsIgnoreCase("FORM", "form"));
  EXPECT_TRUE(EqualsIgnoreCase("", ""));
  EXPECT_FALSE(EqualsIgnoreCase("form", "forms"));
  EXPECT_FALSE(EqualsIgnoreCase("form", "farm"));
}

TEST(StringUtilTest, ContainsIgnoreCase) {
  EXPECT_TRUE(ContainsIgnoreCase("Search Jobs Now", "search"));
  EXPECT_TRUE(ContainsIgnoreCase("Search Jobs Now", "JOBS"));
  EXPECT_TRUE(ContainsIgnoreCase("abc", ""));
  EXPECT_FALSE(ContainsIgnoreCase("abc", "abcd"));
  EXPECT_FALSE(ContainsIgnoreCase("login form", "search"));
}

TEST(StringUtilTest, FormatDouble) {
  EXPECT_EQ(FormatDouble(0.5, 2), "0.50");
  EXPECT_EQ(FormatDouble(1.005, 2), "1.00");  // round-to-even artifacts ok
  EXPECT_EQ(FormatDouble(3.14159, 3), "3.142");
  EXPECT_EQ(FormatDouble(-2.0, 1), "-2.0");
  EXPECT_EQ(FormatDouble(7.0, 0), "7");
}

}  // namespace
}  // namespace cafc
