#include "util/flags.h"

#include <gtest/gtest.h>

namespace cafc {
namespace {

FlagParser Parse(std::vector<const char*> args) {
  args.insert(args.begin(), "prog");
  return FlagParser(static_cast<int>(args.size()), args.data());
}

TEST(FlagParserTest, EmptyCommandLine) {
  FlagParser flags = Parse({});
  EXPECT_TRUE(flags.positional().empty());
  EXPECT_FALSE(flags.Has("anything"));
}

TEST(FlagParserTest, EqualsSyntax) {
  FlagParser flags = Parse({"--seed=42", "--name=hello"});
  EXPECT_EQ(flags.GetInt("seed", 0), 42);
  EXPECT_EQ(flags.GetString("name"), "hello");
}

TEST(FlagParserTest, SpaceSyntax) {
  FlagParser flags = Parse({"--seed", "42", "--name", "hello"});
  EXPECT_EQ(flags.GetInt("seed", 0), 42);
  EXPECT_EQ(flags.GetString("name"), "hello");
  EXPECT_TRUE(flags.positional().empty());
}

TEST(FlagParserTest, BareBooleanFlag) {
  FlagParser flags = Parse({"--verbose", "--quiet", "--x=1"});
  EXPECT_TRUE(flags.GetBool("verbose", false));
  EXPECT_TRUE(flags.GetBool("quiet", false));
  EXPECT_FALSE(flags.GetBool("absent", false));
  EXPECT_TRUE(flags.GetBool("absent", true));
}

TEST(FlagParserTest, BooleanValues) {
  FlagParser flags = Parse({"--a=true", "--b=false", "--c=1", "--d=off",
                            "--e=garbage"});
  EXPECT_TRUE(flags.GetBool("a", false));
  EXPECT_FALSE(flags.GetBool("b", true));
  EXPECT_TRUE(flags.GetBool("c", false));
  EXPECT_FALSE(flags.GetBool("d", true));
  EXPECT_TRUE(flags.GetBool("e", true));  // malformed → default
}

TEST(FlagParserTest, Positionals) {
  FlagParser flags = Parse({"cluster", "--k=8", "extra"});
  ASSERT_EQ(flags.positional().size(), 2u);
  EXPECT_EQ(flags.positional()[0], "cluster");
  EXPECT_EQ(flags.positional()[1], "extra");
}

TEST(FlagParserTest, DoubleDashEndsFlags) {
  FlagParser flags = Parse({"--a=1", "--", "--not-a-flag"});
  EXPECT_TRUE(flags.Has("a"));
  EXPECT_FALSE(flags.Has("not-a-flag"));
  ASSERT_EQ(flags.positional().size(), 1u);
  EXPECT_EQ(flags.positional()[0], "--not-a-flag");
}

TEST(FlagParserTest, NumericParsing) {
  FlagParser flags = Parse({"--i=-5", "--d=2.5", "--bad=xyz"});
  EXPECT_EQ(flags.GetInt("i", 0), -5);
  EXPECT_DOUBLE_EQ(flags.GetDouble("d", 0.0), 2.5);
  EXPECT_EQ(flags.GetInt("bad", 7), 7);       // malformed → default
  EXPECT_DOUBLE_EQ(flags.GetDouble("bad", 1.5), 1.5);
  EXPECT_EQ(flags.GetInt("absent", 9), 9);
}

TEST(FlagParserTest, SpaceSyntaxDoesNotEatNextFlag) {
  FlagParser flags = Parse({"--a", "--b=2"});
  EXPECT_TRUE(flags.Has("a"));
  EXPECT_TRUE(flags.GetBool("a", false));
  EXPECT_EQ(flags.GetInt("b", 0), 2);
}

TEST(FlagParserTest, UnknownFlags) {
  FlagParser flags = Parse({"--known=1", "--mystery=2"});
  std::vector<std::string> unknown = flags.UnknownFlags({"known", "other"});
  ASSERT_EQ(unknown.size(), 1u);
  EXPECT_EQ(unknown[0], "mystery");
}

TEST(FlagParserTest, NegativeNumberAsSpaceValue) {
  FlagParser flags = Parse({"--offset", "-3"});
  EXPECT_EQ(flags.GetInt("offset", 0), -3);
}

TEST(FlagParserTest, GetIntInRangeAbsentUsesDefault) {
  FlagParser flags = Parse({});
  Result<int64_t> value = flags.GetIntInRange("threads", 7, 0, 100);
  ASSERT_TRUE(value.ok());
  EXPECT_EQ(*value, 7);
  // The default is NOT range-checked — it only applies when the user said
  // nothing, so a caller-chosen sentinel outside the range is fine.
  Result<int64_t> sentinel = flags.GetIntInRange("threads", -1, 0, 100);
  ASSERT_TRUE(sentinel.ok());
  EXPECT_EQ(*sentinel, -1);
}

TEST(FlagParserTest, GetIntInRangeAcceptsBoundaries) {
  FlagParser flags = Parse({"--lo=0", "--hi=100"});
  EXPECT_EQ(*flags.GetIntInRange("lo", 5, 0, 100), 0);
  EXPECT_EQ(*flags.GetIntInRange("hi", 5, 0, 100), 100);
}

TEST(FlagParserTest, GetIntInRangeRejectsOutOfRange) {
  FlagParser flags = Parse({"--threads=-2", "--k=5000"});
  Result<int64_t> threads = flags.GetIntInRange("threads", 0, 0, 4096);
  ASSERT_FALSE(threads.ok());
  EXPECT_EQ(threads.status().code(), StatusCode::kInvalidArgument);
  // The message names the flag and the accepted range.
  EXPECT_NE(threads.status().message().find("--threads"), std::string::npos);
  EXPECT_NE(threads.status().message().find("[0, 4096]"), std::string::npos);
  EXPECT_FALSE(flags.GetIntInRange("k", 8, 1, 4096).ok());
}

TEST(FlagParserTest, GetIntInRangeRejectsMalformed) {
  FlagParser flags = Parse({"--seed=abc", "--n=1x", "--empty="});
  EXPECT_FALSE(flags.GetIntInRange("seed", 0, 0, 100).ok());
  EXPECT_FALSE(flags.GetIntInRange("n", 0, 0, 100).ok());
  // A present-but-valueless flag is malformed for a numeric option, not
  // silently the default (that is GetInt's legacy behaviour).
  EXPECT_FALSE(flags.GetIntInRange("empty", 0, 0, 100).ok());
}

TEST(FlagParserTest, GetRateAcceptsUnitInterval) {
  FlagParser flags = Parse({"--a=0", "--b=1", "--c=0.25"});
  EXPECT_DOUBLE_EQ(*flags.GetRate("a", 0.5), 0.0);
  EXPECT_DOUBLE_EQ(*flags.GetRate("b", 0.5), 1.0);
  EXPECT_DOUBLE_EQ(*flags.GetRate("c", 0.5), 0.25);
  EXPECT_DOUBLE_EQ(*flags.GetRate("absent", 0.5), 0.5);
}

TEST(FlagParserTest, GetRateRejectsOutOfRangeAndMalformed) {
  FlagParser flags =
      Parse({"--over=1.5", "--under=-0.1", "--word=high", "--nan=nan"});
  for (const char* name : {"over", "under", "word", "nan"}) {
    Result<double> value = flags.GetRate(name, 0.0);
    ASSERT_FALSE(value.ok()) << name;
    EXPECT_EQ(value.status().code(), StatusCode::kInvalidArgument) << name;
    EXPECT_NE(value.status().message().find(std::string("--") + name),
              std::string::npos);
  }
}

}  // namespace
}  // namespace cafc
