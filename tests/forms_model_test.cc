#include "forms/form_page_model.h"

#include <algorithm>

#include <gtest/gtest.h>

namespace cafc::forms {
namespace {

using vsm::InternedTerm;
using vsm::Location;

constexpr const char* kPage = R"html(
<html><head><title>Cheap Flights Online</title></head>
<body>
<h1>Welcome travelers</h1>
<p>Find airline tickets and vacation deals. <a href="/deals">hot deals</a></p>
<form action="/search" method="get">
Departure city: <input type="text" name="from">
<select name="class"><option>economy</option><option>business</option></select>
<input type="submit" value="find flights">
<input type="hidden" name="sid" value="zzyxw">
</form>
<p>copyright notice</p>
</body></html>
)html";

// Term occurrences are interned; resolve the probe string through the
// document's dictionary first.
bool HasTerm(const FormPageDocument& doc,
             const std::vector<InternedTerm>& terms, std::string_view term,
             Location loc) {
  vsm::TermId id = doc.dictionary->Lookup(term);
  if (id == vsm::kInvalidTermId) return false;
  return std::any_of(terms.begin(), terms.end(),
                     [id, loc](const InternedTerm& t) {
                       return t.term == id && t.location == loc;
                     });
}

bool HasTermAnywhere(const FormPageDocument& doc,
                     const std::vector<InternedTerm>& terms,
                     std::string_view term) {
  vsm::TermId id = doc.dictionary->Lookup(term);
  if (id == vsm::kInvalidTermId) return false;
  return std::any_of(terms.begin(), terms.end(),
                     [id](const InternedTerm& t) { return t.term == id; });
}

class FormPageModelTest : public ::testing::Test {
 protected:
  FormPageModelBuilder builder_;
  FormPageDocument doc_ = builder_.Build("http://x.com/search.html", kPage);
};

TEST_F(FormPageModelTest, UrlRecorded) {
  EXPECT_EQ(doc_.url, "http://x.com/search.html");
}

TEST_F(FormPageModelTest, FormsExtracted) {
  ASSERT_EQ(doc_.forms.size(), 1u);
  EXPECT_EQ(doc_.forms[0].action, "/search");
}

TEST_F(FormPageModelTest, TitleTermsTagged) {
  EXPECT_TRUE(HasTerm(doc_, doc_.page_terms, "cheap", Location::kPageTitle));
  EXPECT_TRUE(HasTerm(doc_, doc_.page_terms, "flight", Location::kPageTitle));
}

TEST_F(FormPageModelTest, AnchorTermsTagged) {
  EXPECT_TRUE(HasTerm(doc_, doc_.page_terms, "deal", Location::kAnchorText));
}

TEST_F(FormPageModelTest, BodyTermsTagged) {
  EXPECT_TRUE(HasTerm(doc_, doc_.page_terms, "airlin", Location::kPageBody));
  EXPECT_TRUE(HasTerm(doc_, doc_.page_terms, "vacat", Location::kPageBody));
}

TEST_F(FormPageModelTest, FormTextGoesToFc) {
  EXPECT_TRUE(HasTerm(doc_, doc_.form_terms, "departur", Location::kFormText));
  EXPECT_TRUE(HasTerm(doc_, doc_.form_terms, "citi", Location::kFormText));
  // Submit caption counts as form text.
  EXPECT_TRUE(HasTerm(doc_, doc_.form_terms, "find", Location::kFormText));
}

TEST_F(FormPageModelTest, OptionTermsTagged) {
  EXPECT_TRUE(HasTerm(doc_, doc_.form_terms, "economi", Location::kFormOption));
  EXPECT_TRUE(HasTerm(doc_, doc_.form_terms, "busi", Location::kFormOption));
}

TEST_F(FormPageModelTest, PartitionIsDisjoint) {
  // Form-subtree terms must not appear in PC.
  EXPECT_FALSE(HasTermAnywhere(doc_, doc_.page_terms, "economi"));
  EXPECT_FALSE(HasTermAnywhere(doc_, doc_.page_terms, "departur"));
  // Page terms must not appear in FC.
  EXPECT_FALSE(HasTermAnywhere(doc_, doc_.form_terms, "welcom"));
}

TEST_F(FormPageModelTest, HiddenTokensExcludedEverywhere) {
  EXPECT_FALSE(HasTermAnywhere(doc_, doc_.form_terms, "zzyxw"));
  EXPECT_FALSE(HasTermAnywhere(doc_, doc_.page_terms, "zzyxw"));
}

TEST_F(FormPageModelTest, StopwordsFiltered) {
  EXPECT_FALSE(HasTermAnywhere(doc_, doc_.page_terms, "and"));
  EXPECT_FALSE(HasTermAnywhere(doc_, doc_.page_terms, "copyright"));
}

TEST(FormPageModelOptionsTest, UnpartitionedModeIncludesFormInPc) {
  FormPageModelOptions options;
  options.partition_page_and_form = false;
  FormPageModelBuilder builder({}, options);
  FormPageDocument doc = builder.Build("http://x.com/", kPage);
  // Form text now also appears in the page space (as body text).
  EXPECT_TRUE(HasTermAnywhere(doc, doc.page_terms, "departur"));
  // FC is unchanged.
  EXPECT_TRUE(HasTermAnywhere(doc, doc.form_terms, "departur"));
}

TEST(FormPageModelPlainTest, PageWithoutFormsHasEmptyFc) {
  FormPageModelBuilder builder;
  FormPageDocument doc =
      builder.Build("http://x.com/", "<html><body>just text</body></html>");
  EXPECT_TRUE(doc.forms.empty());
  EXPECT_TRUE(doc.form_terms.empty());
  EXPECT_FALSE(doc.page_terms.empty());
}

TEST(FormPageModelPlainTest, ScriptAndStyleNeverPageText) {
  FormPageModelBuilder builder;
  FormPageDocument doc = builder.Build(
      "http://x.com/",
      "<html><head><style>body { margincolor: red }</style></head>"
      "<body><script>var secretword = 1;</script>visible</body></html>");
  EXPECT_TRUE(HasTermAnywhere(doc, doc.page_terms, "visibl"));
  EXPECT_FALSE(HasTermAnywhere(doc, doc.page_terms, "secretword"));
  EXPECT_FALSE(HasTermAnywhere(doc, doc.page_terms, "margincolor"));
}

TEST(FormPageModelPlainTest, CountsMatchTermVectors) {
  FormPageModelBuilder builder;
  FormPageDocument doc = builder.Build("http://x.com/", kPage);
  EXPECT_EQ(doc.NumFormTerms(), doc.form_terms.size());
  EXPECT_EQ(doc.NumPageTerms(), doc.page_terms.size());
  EXPECT_GT(doc.NumPageTerms(), doc.NumFormTerms());
}

TEST(FormPageModelPlainTest, MultipleFormsAllContributeToFc) {
  FormPageModelBuilder builder;
  FormPageDocument doc = builder.Build(
      "http://x.com/",
      "<form>alpha words</form><p>interstitial</p><form>bravo words</form>");
  EXPECT_TRUE(HasTermAnywhere(doc, doc.form_terms, "alpha"));
  EXPECT_TRUE(HasTermAnywhere(doc, doc.form_terms, "bravo"));
  EXPECT_TRUE(HasTermAnywhere(doc, doc.page_terms, "interstiti"));
}

}  // namespace
}  // namespace cafc::forms
