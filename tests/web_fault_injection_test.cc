#include "web/fault_injection.h"

#include <map>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "util/status.h"

namespace cafc::web {
namespace {

/// Clean base fetcher with a numbered page universe.
class MiniWeb : public WebFetcher {
 public:
  void Add(std::string url, std::string html) {
    pages_[url] = WebPage{url, std::move(html)};
  }

  Result<const WebPage*> Fetch(std::string_view url) const override {
    auto it = pages_.find(std::string(url));
    if (it == pages_.end()) return Status::NotFound("404");
    return &it->second;
  }

 private:
  std::map<std::string, WebPage> pages_;
};

MiniWeb UniformWeb(int n) {
  MiniWeb web;
  for (int i = 0; i < n; ++i) {
    web.Add("http://site" + std::to_string(i) + ".com/",
            "<html><head><title>page</title></head><body>"
            "<p>some body text</p><form action=\"/s\">"
            "<input name=\"q\"></form></body></html>");
  }
  return web;
}

std::vector<std::string> Urls(int n) {
  std::vector<std::string> urls;
  for (int i = 0; i < n; ++i) {
    urls.push_back("http://site" + std::to_string(i) + ".com/");
  }
  return urls;
}

TEST(FaultInjectionTest, InactiveProfilePassesThrough) {
  MiniWeb web = UniformWeb(10);
  FaultInjectingFetcher faulty(&web, FaultProfile{});
  for (const std::string& url : Urls(10)) {
    EXPECT_EQ(faulty.KindFor(url), FaultKind::kNone);
    Result<const WebPage*> page = faulty.Fetch(url);
    ASSERT_TRUE(page.ok());
    EXPECT_EQ((*page)->url, url);
    EXPECT_FALSE((*page)->truncated);
  }
  EXPECT_EQ(faulty.stats().fetch_calls, 10u);
}

TEST(FaultInjectionTest, KindIsDeterministicPerUrlAndSeed) {
  FaultProfile profile;
  profile.dead_rate = 0.2;
  profile.transient_rate = 0.3;
  profile.truncated_rate = 0.2;
  profile.seed = 7;
  MiniWeb web = UniformWeb(200);
  FaultInjectingFetcher a(&web, profile);
  FaultInjectingFetcher b(&web, profile);
  for (const std::string& url : Urls(200)) {
    EXPECT_EQ(a.KindFor(url), b.KindFor(url)) << url;
  }
}

TEST(FaultInjectionTest, SeedChangesAssignment) {
  FaultProfile a;
  a.dead_rate = 0.5;
  a.seed = 1;
  FaultProfile b = a;
  b.seed = 2;
  MiniWeb web = UniformWeb(200);
  FaultInjectingFetcher fa(&web, a);
  FaultInjectingFetcher fb(&web, b);
  int differs = 0;
  for (const std::string& url : Urls(200)) {
    if (fa.KindFor(url) != fb.KindFor(url)) ++differs;
  }
  EXPECT_GT(differs, 0);
}

TEST(FaultInjectionTest, RatesApproximatelyRespected) {
  FaultProfile profile;
  profile.dead_rate = 0.25;
  profile.seed = 3;
  MiniWeb web = UniformWeb(2000);
  FaultInjectingFetcher faulty(&web, profile);
  int dead = 0;
  for (const std::string& url : Urls(2000)) {
    if (faulty.KindFor(url) == FaultKind::kDead) ++dead;
  }
  EXPECT_NEAR(dead / 2000.0, 0.25, 0.05);
}

TEST(FaultInjectionTest, GrowingOneRateNestsFaultSets) {
  // Stacked-band contract: every URL dead at rate r stays dead at r' > r.
  MiniWeb web = UniformWeb(500);
  std::vector<std::string> urls = Urls(500);
  FaultProfile lo;
  lo.dead_rate = 0.1;
  lo.seed = 11;
  FaultProfile hi = lo;
  hi.dead_rate = 0.4;
  FaultInjectingFetcher flo(&web, lo);
  FaultInjectingFetcher fhi(&web, hi);
  for (const std::string& url : urls) {
    if (flo.KindFor(url) == FaultKind::kDead) {
      EXPECT_EQ(fhi.KindFor(url), FaultKind::kDead) << url;
    }
  }
}

TEST(FaultInjectionTest, DeadUrlFailsPermanentlyWithNonRetryableCode) {
  FaultProfile profile;
  profile.dead_rate = 1.0;
  MiniWeb web = UniformWeb(1);
  FaultInjectingFetcher faulty(&web, profile);
  for (int attempt = 0; attempt < 3; ++attempt) {
    Result<const WebPage*> page = faulty.Fetch("http://site0.com/");
    ASSERT_FALSE(page.ok());
    // Internal, not Unavailable: resilient callers must classify the URL
    // as dead instead of burning retry budget on it.
    EXPECT_EQ(page.status().code(), StatusCode::kInternal);
  }
  EXPECT_EQ(faulty.stats().injected_dead, 3u);
}

TEST(FaultInjectionTest, TransientUrlRecoversAfterNAttempts) {
  FaultProfile profile;
  profile.transient_rate = 1.0;
  profile.transient_attempts = 2;
  MiniWeb web = UniformWeb(1);
  FaultInjectingFetcher faulty(&web, profile);
  const std::string url = "http://site0.com/";
  for (int attempt = 1; attempt <= 2; ++attempt) {
    Result<const WebPage*> page = faulty.Fetch(url);
    ASSERT_FALSE(page.ok());
    EXPECT_EQ(page.status().code(), StatusCode::kUnavailable);
  }
  Result<const WebPage*> page = faulty.Fetch(url);
  ASSERT_TRUE(page.ok());
  EXPECT_EQ((*page)->url, url);
  EXPECT_EQ(faulty.stats().injected_transient, 2u);
}

TEST(FaultInjectionTest, SlowUrlEitherServesOrDeadlines) {
  FaultProfile profile;
  profile.slow_rate = 1.0;
  profile.latency_budget_ms = 200;
  profile.slow_latency_min_ms = 50;
  profile.slow_latency_max_ms = 600;
  MiniWeb web = UniformWeb(50);
  FaultInjectingFetcher faulty(&web, profile);
  size_t deadlines = 0;
  size_t served = 0;
  for (const std::string& url : Urls(50)) {
    Result<const WebPage*> page = faulty.Fetch(url);
    if (page.ok()) {
      ++served;
    } else {
      EXPECT_EQ(page.status().code(), StatusCode::kDeadlineExceeded);
      ++deadlines;
    }
  }
  // The latency range straddles the budget, so both outcomes occur.
  EXPECT_GT(deadlines, 0u);
  EXPECT_GT(served, 0u);
  EXPECT_EQ(faulty.stats().injected_deadline, deadlines);
  EXPECT_GT(faulty.stats().simulated_latency_ms, 0u);
}

TEST(FaultInjectionTest, SlowUrlCanRecoverOnRetry) {
  FaultProfile profile;
  profile.slow_rate = 1.0;
  profile.latency_budget_ms = 200;
  MiniWeb web = UniformWeb(100);
  FaultInjectingFetcher faulty(&web, profile);
  // At least one URL whose first attempt deadlines must succeed within a
  // few retries (latency is drawn per attempt).
  bool recovered = false;
  for (const std::string& url : Urls(100)) {
    if (faulty.Fetch(url).ok()) continue;  // fast first attempt
    for (int retry = 0; retry < 5 && !recovered; ++retry) {
      if (faulty.Fetch(url).ok()) recovered = true;
    }
    if (recovered) break;
  }
  EXPECT_TRUE(recovered);
}

TEST(FaultInjectionTest, TruncatedPageIsPrefixAndFlagged) {
  FaultProfile profile;
  profile.truncated_rate = 1.0;
  MiniWeb web = UniformWeb(1);
  FaultInjectingFetcher faulty(&web, profile);
  const std::string url = "http://site0.com/";
  Result<const WebPage*> cut = faulty.Fetch(url);
  ASSERT_TRUE(cut.ok());
  EXPECT_TRUE((*cut)->truncated);
  Result<const WebPage*> real = web.Fetch(url);
  ASSERT_TRUE(real.ok());
  ASSERT_LT((*cut)->html.size(), (*real)->html.size());
  EXPECT_EQ((*cut)->html, (*real)->html.substr(0, (*cut)->html.size()));
  // Served from the cache on repeat fetches: same pointer, same bytes.
  Result<const WebPage*> again = faulty.Fetch(url);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(*again, *cut);
}

TEST(FaultInjectionTest, Soft404LooksHealthyButIsGarbage) {
  FaultProfile profile;
  profile.soft404_rate = 1.0;
  MiniWeb web = UniformWeb(1);
  FaultInjectingFetcher faulty(&web, profile);
  Result<const WebPage*> page = faulty.Fetch("http://site0.com/");
  ASSERT_TRUE(page.ok());  // "200 OK" from the crawler's point of view
  EXPECT_FALSE((*page)->truncated);
  EXPECT_NE((*page)->html.find("404 Not Found"), std::string::npos);
  EXPECT_EQ((*page)->html.find("<form"), std::string::npos);
  EXPECT_EQ(faulty.stats().soft404_served, 1u);
}

TEST(FaultInjectionTest, UrlsOutsideUniversePassThroughAsNotFound) {
  FaultProfile profile;
  profile.truncated_rate = 1.0;  // mutation needs a real body to mutate
  MiniWeb web = UniformWeb(1);
  FaultInjectingFetcher faulty(&web, profile);
  Result<const WebPage*> page = faulty.Fetch("http://nowhere.com/");
  ASSERT_FALSE(page.ok());
  EXPECT_EQ(page.status().code(), StatusCode::kNotFound);
}

TEST(FaultInjectionTest, ResetRestoresAsConstructedState) {
  FaultProfile profile;
  profile.transient_rate = 1.0;
  profile.transient_attempts = 1;
  MiniWeb web = UniformWeb(1);
  FaultInjectingFetcher faulty(&web, profile);
  const std::string url = "http://site0.com/";
  EXPECT_FALSE(faulty.Fetch(url).ok());
  EXPECT_TRUE(faulty.Fetch(url).ok());  // warmed past the failure
  faulty.Reset();
  EXPECT_EQ(faulty.stats(), FaultStats{});
  EXPECT_FALSE(faulty.Fetch(url).ok());  // cold again
}

}  // namespace
}  // namespace cafc::web
