#include "core/directory.h"

#include <string>
#include <unordered_set>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "core/cafc.h"
#include "core/corpus.h"
#include "core/ingest.h"
#include "util/rng.h"
#include "web/synthesizer.h"

namespace cafc {
namespace {

web::SynthesizerConfig GrowConfig(uint32_t seed, size_t form_pages) {
  web::SynthesizerConfig config;
  config.seed = seed;
  config.form_pages_total = form_pages;
  config.single_attribute_forms = form_pages / 8;
  config.homogeneous_hubs_per_domain = 20;
  config.mixed_hubs = 30;
  config.directory_hubs = 3;
  config.large_air_hotel_hubs = 3;
  config.non_searchable_form_pages = 2;
  config.noise_pages = 2;
  config.outlier_pages = 0;
  return config;
}

Corpus GrowCorpus(uint32_t seed, size_t form_pages) {
  web::SyntheticWeb web =
      web::Synthesizer(GrowConfig(seed, form_pages)).Generate();
  Result<CorpusBuild> build = BuildCorpus(web);
  EXPECT_TRUE(build.ok()) << build.status().ToString();
  return std::move(build->corpus);
}

/// Directory over the corpus's current epoch, cold-seeded CAFC-C.
DatabaseDirectory BuildDirectory(Corpus& corpus, int k,
                                 cluster::KMeansStats* stats = nullptr) {
  Rng rng(1234);
  cluster::Clustering clustering =
      CafcC(corpus.Weighted(), k, CafcOptions{}, &rng, stats);
  return DatabaseDirectory::Build(
      corpus.Weighted(), clustering,
      DatabaseDirectory::AutoLabels(corpus.Weighted(), clustering));
}

TEST(DirectoryRefreshTest, RefilesGrownCorpusAndReportsDrift) {
  Corpus corpus = GrowCorpus(21, 48);
  DatabaseDirectory directory = BuildDirectory(corpus, 6);
  size_t base_pages = corpus.size();

  Corpus incoming = GrowCorpus(22, 24);
  Result<size_t> added = corpus.AddPages(incoming.TakeEntries());
  ASSERT_TRUE(added.ok());
  ASSERT_GT(*added, 0u);

  Result<DirectoryRefreshReport> report = directory.Refresh(corpus);
  ASSERT_TRUE(report.ok()) << report.status().ToString();

  // Every previously filed page survived the growth, so the intersection
  // is the full base collection and the new pages all enter.
  EXPECT_EQ(report->retained + report->moved, base_pages);
  EXPECT_EQ(report->entered, *added);
  EXPECT_EQ(report->left, 0u);
  EXPECT_GE(report->drift, 0.0);
  EXPECT_LE(report->drift, 1.0);
  EXPECT_EQ(report->epoch, corpus.epoch());
  EXPECT_EQ(directory.epoch(), corpus.epoch());
  EXPECT_EQ(report->reseed_recommended, report->drift > 0.25);

  // The refreshed sections cover the grown corpus exactly.
  std::unordered_set<std::string> filed;
  for (const DirectoryEntry& e : directory.entries()) {
    EXPECT_FALSE(e.member_urls.empty());  // empty sections are dropped
    for (const std::string& url : e.member_urls) {
      EXPECT_TRUE(filed.insert(url).second) << url;
      EXPECT_TRUE(corpus.Contains(url)) << url;
    }
  }
  EXPECT_EQ(filed.size(), corpus.size());
}

TEST(DirectoryRefreshTest, WarmStartBeatsColdOnLightDrift) {
  Corpus corpus = GrowCorpus(21, 48);
  DatabaseDirectory directory = BuildDirectory(corpus, 6);

  Corpus incoming = GrowCorpus(22, 8);  // small delta → light drift
  ASSERT_TRUE(corpus.AddPages(incoming.TakeEntries()).ok());

  Result<DirectoryRefreshReport> report = directory.Refresh(corpus);
  ASSERT_TRUE(report.ok()) << report.status().ToString();

  cluster::KMeansStats cold;
  Rng rng(1234);
  CafcC(corpus.Weighted(), 6, CafcOptions{}, &rng, &cold);

  // The warm start primes from the previous epoch's centroids, so it must
  // converge in strictly fewer counted iterations than a cold relocation
  // (whose first iteration always moves every page).
  EXPECT_TRUE(report->kmeans.converged);
  EXPECT_LT(report->kmeans.iterations, cold.iterations);
}

TEST(DirectoryRefreshTest, ReportsPagesThatLeft) {
  Corpus corpus = GrowCorpus(21, 48);
  DatabaseDirectory directory = BuildDirectory(corpus, 6);
  std::vector<std::string> victims = {corpus.entries()[0].doc.url,
                                      corpus.entries()[1].doc.url};
  ASSERT_EQ(corpus.RemovePages(victims), 2u);

  Result<DirectoryRefreshReport> report = directory.Refresh(corpus);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report->left, 2u);
  EXPECT_EQ(report->entered, 0u);
  EXPECT_EQ(report->retained + report->moved, corpus.size());
  for (const DirectoryEntry& e : directory.entries()) {
    for (const std::string& url : e.member_urls) {
      EXPECT_NE(url, victims[0]);
      EXPECT_NE(url, victims[1]);
    }
  }
}

TEST(DirectoryRefreshTest, ClassificationSpeaksTheNewEpoch) {
  Corpus corpus = GrowCorpus(21, 48);
  DatabaseDirectory directory = BuildDirectory(corpus, 6);
  Corpus incoming = GrowCorpus(22, 16);
  ASSERT_TRUE(corpus.AddPages(incoming.TakeEntries()).ok());
  ASSERT_TRUE(directory.Refresh(corpus).ok());

  // Every page of the grown corpus — including ones the original build
  // never saw — classifies into the section that lists it (up to the 10%
  // k-means stop criterion).
  const FormPageSet& pages = corpus.Weighted();
  size_t correct = 0;
  for (size_t i = 0; i < pages.size(); ++i) {
    DatabaseDirectory::Classification verdict =
        directory.ClassifyPage(pages.page(i));
    ASSERT_GE(verdict.entry, 0);
    const DirectoryEntry& entry =
        directory.entries()[static_cast<size_t>(verdict.entry)];
    for (const std::string& url : entry.member_urls) {
      if (url == pages.page(i).url) {
        ++correct;
        break;
      }
    }
  }
  EXPECT_GE(correct * 10, pages.size() * 9);
}

TEST(DirectoryRefreshTest, EmptyDirectoryFailsPrecondition) {
  Corpus corpus = GrowCorpus(21, 48);
  DatabaseDirectory empty;
  Result<DirectoryRefreshReport> report = empty.Refresh(corpus);
  ASSERT_FALSE(report.ok());
  EXPECT_EQ(report.status().code(), StatusCode::kFailedPrecondition);
}

TEST(DirectoryRefreshTest, EmptyCorpusFailsPrecondition) {
  Corpus corpus = GrowCorpus(21, 48);
  DatabaseDirectory directory = BuildDirectory(corpus, 6);
  Corpus empty;
  Result<DirectoryRefreshReport> report = directory.Refresh(empty);
  ASSERT_FALSE(report.ok());
  EXPECT_EQ(report.status().code(), StatusCode::kFailedPrecondition);
  // The directory is unchanged on failure.
  EXPECT_EQ(directory.epoch(), 0u);
  EXPECT_GT(directory.size(), 0u);
}

TEST(DirectoryRefreshTest, ForeignCorpusFailsPrecondition) {
  // A corpus whose dictionary is not an id-stable extension of the
  // directory's vocabulary must be rejected — its term ids mean different
  // strings.
  Corpus corpus = GrowCorpus(21, 48);
  DatabaseDirectory directory = BuildDirectory(corpus, 6);
  Corpus foreign = GrowCorpus(99, 48);
  Result<DirectoryRefreshReport> report = directory.Refresh(foreign);
  ASSERT_FALSE(report.ok());
  EXPECT_EQ(report.status().code(), StatusCode::kFailedPrecondition);
}

}  // namespace
}  // namespace cafc
