#include "core/hub_quality.h"

#include <gtest/gtest.h>

namespace cafc {
namespace {

/// Pages on orthogonal topics (one term per topic); same-topic pages are
/// identical, cross-topic pages orthogonal.
FormPageSet TopicSet(const std::vector<int>& topics) {
  FormPageSet set;
  for (size_t i = 0; i < topics.size(); ++i) {
    FormPage page;
    page.url = "http://p" + std::to_string(i) + ".com/";
    page.pc = vsm::SparseVector::FromUnsorted(
        {{static_cast<vsm::TermId>(topics[i]), 1.0}});
    page.fc = page.pc;
    set.mutable_pages()->push_back(std::move(page));
  }
  return set;
}

TEST(HubQualityTest, SingletonScoresZero) {
  FormPageSet pages = TopicSet({0});
  EXPECT_DOUBLE_EQ(HubClusterCohesion(pages, HubCluster{"h", {0}}), 0.0);
  EXPECT_DOUBLE_EQ(HubClusterCohesion(pages, HubCluster{"h", {}}), 0.0);
}

TEST(HubQualityTest, PureClusterScoresOne) {
  FormPageSet pages = TopicSet({0, 0, 0});
  EXPECT_NEAR(HubClusterCohesion(pages, HubCluster{"h", {0, 1, 2}}), 1.0,
              1e-12);
}

TEST(HubQualityTest, OrthogonalClusterScoresZero) {
  FormPageSet pages = TopicSet({0, 1, 2});
  EXPECT_NEAR(HubClusterCohesion(pages, HubCluster{"h", {0, 1, 2}}), 0.0,
              1e-12);
}

TEST(HubQualityTest, MixedClusterScoresBetween) {
  // Two same-topic + one foreign: 1 of 3 pairs is similar.
  FormPageSet pages = TopicSet({0, 0, 1});
  EXPECT_NEAR(HubClusterCohesion(pages, HubCluster{"h", {0, 1, 2}}),
              1.0 / 3.0, 1e-12);
}

TEST(HubQualityTest, FilterKeepsCohesiveOnly) {
  FormPageSet pages = TopicSet({0, 0, 1, 1, 2, 3});
  std::vector<HubCluster> clusters = {
      {"pure", {0, 1}},      // cohesion 1
      {"mixed", {0, 2}},     // cohesion 0
      {"pure2", {2, 3}},     // cohesion 1
      {"directory", {4, 5}}  // cohesion 0
  };
  std::vector<HubCluster> kept =
      FilterByCohesion(pages, clusters, 0.5);
  ASSERT_EQ(kept.size(), 2u);
  EXPECT_EQ(kept[0].hub_url, "pure");
  EXPECT_EQ(kept[1].hub_url, "pure2");
}

TEST(HubQualityTest, ThresholdZeroKeepsMultiMemberOnly) {
  FormPageSet pages = TopicSet({0, 1});
  std::vector<HubCluster> clusters = {{"single", {0}}, {"pair", {0, 1}}};
  // Cohesion of the singleton is 0 and of the orthogonal pair is 0; with a
  // strictly positive threshold both drop, at 0.0 both stay.
  EXPECT_EQ(FilterByCohesion(pages, clusters, 0.0).size(), 2u);
  EXPECT_EQ(FilterByCohesion(pages, clusters, 0.01).size(), 0u);
}

TEST(HubQualityTest, ContentConfigRespected) {
  // Pages identical in PC but orthogonal in FC.
  FormPageSet set;
  for (int i = 0; i < 2; ++i) {
    FormPage page;
    page.pc = vsm::SparseVector::FromUnsorted({{0, 1.0}});
    page.fc = vsm::SparseVector::FromUnsorted(
        {{static_cast<vsm::TermId>(10 + i), 1.0}});
    set.mutable_pages()->push_back(std::move(page));
  }
  HubCluster cluster{"h", {0, 1}};
  HubQualityOptions pc_only;
  pc_only.content = ContentConfig::kPcOnly;
  HubQualityOptions fc_only;
  fc_only.content = ContentConfig::kFcOnly;
  EXPECT_NEAR(HubClusterCohesion(set, cluster, pc_only), 1.0, 1e-12);
  EXPECT_NEAR(HubClusterCohesion(set, cluster, fc_only), 0.0, 1e-12);
}

}  // namespace
}  // namespace cafc
