#include "text/word_tokenizer.h"

#include <gtest/gtest.h>

namespace cafc::text {
namespace {

TEST(WordTokenizerTest, SimpleWords) {
  EXPECT_EQ(TokenizeWords("hello world"),
            (std::vector<std::string>{"hello", "world"}));
}

TEST(WordTokenizerTest, Lowercases) {
  EXPECT_EQ(TokenizeWords("Job Category"),
            (std::vector<std::string>{"job", "category"}));
}

TEST(WordTokenizerTest, PunctuationSeparates) {
  EXPECT_EQ(TokenizeWords("cars, trucks; vans!"),
            (std::vector<std::string>{"cars", "trucks", "vans"}));
}

TEST(WordTokenizerTest, DigitsSeparate) {
  EXPECT_EQ(TokenizeWords("top10 hits 2006"),
            (std::vector<std::string>{"top", "hits"}));
}

TEST(WordTokenizerTest, PossessiveDropped) {
  EXPECT_EQ(TokenizeWords("job's requirements"),
            (std::vector<std::string>{"job", "requirements"}));
}

TEST(WordTokenizerTest, ContractionKeepsStem) {
  EXPECT_EQ(TokenizeWords("don't can't"),
            (std::vector<std::string>{"don", "can"}));
}

TEST(WordTokenizerTest, MinLengthFiltersShortWords) {
  EXPECT_EQ(TokenizeWords("a to be or I am", 2),
            (std::vector<std::string>{"to", "be", "or", "am"}));
  EXPECT_EQ(TokenizeWords("a to be", 3), (std::vector<std::string>{}));
}

TEST(WordTokenizerTest, MinLengthOneKeepsSingles) {
  EXPECT_EQ(TokenizeWords("a b", 1), (std::vector<std::string>{"a", "b"}));
}

TEST(WordTokenizerTest, EmptyAndWhitespaceOnly) {
  EXPECT_TRUE(TokenizeWords("").empty());
  EXPECT_TRUE(TokenizeWords("   \t\n ").empty());
  EXPECT_TRUE(TokenizeWords("123 456 !!").empty());
}

TEST(WordTokenizerTest, NonAsciiBytesSeparate) {
  // UTF-8 bytes act as separators (English-only corpus).
  EXPECT_EQ(TokenizeWords("caf\xc3\xa9 latte"),
            (std::vector<std::string>{"caf", "latte"}));
}

TEST(WordTokenizerTest, TrailingWord) {
  EXPECT_EQ(TokenizeWords("ends with word"),
            (std::vector<std::string>{"ends", "with", "word"}));
}

TEST(WordTokenizerTest, HyphenatedSplit) {
  EXPECT_EQ(TokenizeWords("check-in drop-off"),
            (std::vector<std::string>{"check", "in", "drop", "off"}));
}

TEST(WordTokenizerTest, ApostropheAtWordEndNotConsumed) {
  EXPECT_EQ(TokenizeWords("cars' wheels"),
            (std::vector<std::string>{"cars", "wheels"}));
}

}  // namespace
}  // namespace cafc::text
