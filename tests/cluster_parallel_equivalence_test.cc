// End-to-end determinism check for the parallel clustering engine: CAFC-C,
// CAFC-CH, and HAC must produce *identical* assignments at every thread
// count. This is the executable form of the ParallelFor contract (fixed
// chunking, disjoint writes, serial in-order reductions) — if any parallel
// loop races or reorders a floating-point reduction, the assignments
// diverge and these tests fail.
//
// The workbench is the full §4.1-shaped corpus (454 form pages), so the
// comparison covers the real hot paths: hub-cluster centroids, the
// Algorithm-3 distance matrix, the k-means assignment scan, and the HAC
// similarity matrix. Thread counts are forced explicitly because CI
// machines may expose a single core.

#include <cstdint>
#include <vector>

#include "bench/common.h"
#include "core/cafc.h"
#include "gtest/gtest.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace cafc {
namespace {

using bench::BuildWorkbench;
using bench::Workbench;

class ParallelEquivalenceTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    // Real worker threads even on a 1-core host.
    util::ThreadPool::SetDefaultThreads(4);
    wb_ = new Workbench(BuildWorkbench(42));
  }
  static void TearDownTestSuite() {
    delete wb_;
    wb_ = nullptr;
    util::ThreadPool::SetDefaultThreads(0);  // restore automatic sizing
  }

  static const Workbench& wb() { return *wb_; }

 private:
  static Workbench* wb_;
};

Workbench* ParallelEquivalenceTest::wb_ = nullptr;

constexpr int kK = 8;  // the paper's 8 domains
const int kThreadCounts[] = {1, 2, 4};

cluster::Clustering RunCafcC(const Workbench& wb, int threads) {
  CafcOptions options;
  options.threads = threads;
  Rng rng(1234);  // same seed per run — only the thread count varies
  return CafcC(wb.pages, kK, options, &rng);
}

TEST_F(ParallelEquivalenceTest, CafcCIdenticalAcrossThreadCounts) {
  cluster::Clustering serial = RunCafcC(wb(), 1);
  ASSERT_EQ(serial.assignment.size(), wb().pages.size());
  for (int threads : kThreadCounts) {
    cluster::Clustering parallel = RunCafcC(wb(), threads);
    EXPECT_EQ(parallel.num_clusters, serial.num_clusters)
        << "threads=" << threads;
    EXPECT_EQ(parallel.assignment, serial.assignment) << "threads=" << threads;
  }
}

TEST_F(ParallelEquivalenceTest, CafcChIdenticalAcrossThreadCounts) {
  auto run = [&](int threads) {
    CafcChOptions options;
    options.cafc.threads = threads;
    return CafcCh(wb().pages, kK, options);
  };
  cluster::Clustering serial = run(1);
  ASSERT_EQ(serial.assignment.size(), wb().pages.size());
  for (int threads : kThreadCounts) {
    cluster::Clustering parallel = run(threads);
    EXPECT_EQ(parallel.num_clusters, serial.num_clusters)
        << "threads=" << threads;
    EXPECT_EQ(parallel.assignment, serial.assignment) << "threads=" << threads;
  }
}

TEST_F(ParallelEquivalenceTest, HacIdenticalAcrossThreadCounts) {
  auto run = [&](int threads) {
    CafcOptions options;
    options.threads = threads;
    return CafcHac(wb().pages, kK, options);
  };
  cluster::Clustering serial = run(1);
  ASSERT_EQ(serial.assignment.size(), wb().pages.size());
  for (int threads : kThreadCounts) {
    cluster::Clustering parallel = run(threads);
    EXPECT_EQ(parallel.num_clusters, serial.num_clusters)
        << "threads=" << threads;
    EXPECT_EQ(parallel.assignment, serial.assignment) << "threads=" << threads;
  }
}

TEST_F(ParallelEquivalenceTest, AverageCafcCIdenticalAcrossThreadCounts) {
  // The bench-level repeated-run averaging parallelizes across runs; its
  // serial in-run-order reduction must make the averages exact matches.
  CafcOptions serial_options;
  serial_options.threads = 1;
  bench::Quality serial =
      bench::AverageCafcC(wb(), kK, serial_options, /*runs=*/4);
  for (int threads : kThreadCounts) {
    CafcOptions options;
    options.threads = threads;
    bench::Quality parallel = bench::AverageCafcC(wb(), kK, options, 4);
    EXPECT_EQ(parallel.entropy, serial.entropy) << "threads=" << threads;
    EXPECT_EQ(parallel.f_measure, serial.f_measure) << "threads=" << threads;
  }
}

}  // namespace
}  // namespace cafc
