#include "core/directory.h"

#include <cstdio>
#include <string>
#include <type_traits>

#include <gtest/gtest.h>

#include "core/cafc.h"
#include "core/dataset.h"
#include "web/synthesizer.h"

namespace cafc {
namespace {

// A directory owns the collection vocabulary and statistics; a copy would
// silently fork that state. Only moves are allowed.
static_assert(!std::is_copy_constructible_v<DatabaseDirectory>);
static_assert(!std::is_copy_assignable_v<DatabaseDirectory>);
static_assert(std::is_move_constructible_v<DatabaseDirectory>);
static_assert(std::is_move_assignable_v<DatabaseDirectory>);

web::SynthesizerConfig SmallConfig() {
  web::SynthesizerConfig config;
  config.seed = 55;
  config.form_pages_total = 64;
  config.single_attribute_forms = 8;
  config.homogeneous_hubs_per_domain = 25;
  config.mixed_hubs = 40;
  config.directory_hubs = 3;
  config.large_air_hotel_hubs = 3;
  config.non_searchable_form_pages = 0;
  config.noise_pages = 0;
  config.outlier_pages = 0;
  return config;
}

std::string TempPath(const char* name) {
  return std::string(::testing::TempDir()) + "/" + name;
}

class DirectoryTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    web::SyntheticWeb web = web::Synthesizer(SmallConfig()).Generate();
    dataset_ = new Dataset(std::move(BuildDataset(web)).value());
    pages_ = new FormPageSet(BuildFormPageSet(*dataset_));
    CafcChOptions options;
    options.min_hub_cardinality = 4;
    clustering_ = new cluster::Clustering(
        CafcCh(*pages_, web::kNumDomains, options));
    directory_ = new DatabaseDirectory(DatabaseDirectory::Build(
        *pages_, *clustering_,
        DatabaseDirectory::AutoLabels(*pages_, *clustering_)));
  }
  static void TearDownTestSuite() {
    delete directory_;
    delete clustering_;
    delete pages_;
    delete dataset_;
    directory_ = nullptr;
    clustering_ = nullptr;
    pages_ = nullptr;
    dataset_ = nullptr;
  }

  static Dataset* dataset_;
  static FormPageSet* pages_;
  static cluster::Clustering* clustering_;
  static DatabaseDirectory* directory_;
};

Dataset* DirectoryTest::dataset_ = nullptr;
FormPageSet* DirectoryTest::pages_ = nullptr;
cluster::Clustering* DirectoryTest::clustering_ = nullptr;
DatabaseDirectory* DirectoryTest::directory_ = nullptr;

TEST_F(DirectoryTest, EntriesCoverAllPages) {
  size_t total = 0;
  for (const DirectoryEntry& e : directory_->entries()) {
    EXPECT_FALSE(e.label.empty());
    EXPECT_FALSE(e.member_urls.empty());
    total += e.member_urls.size();
  }
  EXPECT_EQ(total, pages_->size());
}

TEST_F(DirectoryTest, AutoLabelsAreDomainWords) {
  // At least one entry label should contain a recognizable domain stem.
  bool any = false;
  for (const DirectoryEntry& e : directory_->entries()) {
    for (const char* stem : {"job", "hotel", "flight", "music", "movi",
                             "book", "car", "rental", "auto"}) {
      if (e.label.find(stem) != std::string::npos) any = true;
    }
  }
  EXPECT_TRUE(any);
}

TEST_F(DirectoryTest, ClassifyPageFilesMembersIntoTheirOwnEntry) {
  // Every training page must classify into the entry that lists it.
  size_t correct = 0;
  for (size_t i = 0; i < pages_->size(); ++i) {
    DatabaseDirectory::Classification verdict =
        directory_->ClassifyPage(pages_->page(i));
    ASSERT_GE(verdict.entry, 0);
    const DirectoryEntry& entry =
        directory_->entries()[static_cast<size_t>(verdict.entry)];
    for (const std::string& url : entry.member_urls) {
      if (url == pages_->page(i).url) {
        ++correct;
        break;
      }
    }
  }
  // k-means convergence guarantees most points sit nearest their own
  // centroid (all, unless the run stopped on the 10% criterion).
  EXPECT_GE(correct * 10, pages_->size() * 9);
}

TEST_F(DirectoryTest, ClassifyDocumentMatchesClassifyPage) {
  DatabaseDirectory::Classification by_doc =
      directory_->ClassifyDocument(dataset_->entries[0].doc);
  DatabaseDirectory::Classification by_page =
      directory_->ClassifyPage(pages_->page(0));
  EXPECT_EQ(by_doc.entry, by_page.entry);
  EXPECT_NEAR(by_doc.similarity, by_page.similarity, 1e-9);
}

TEST_F(DirectoryTest, SaveLoadRoundTrip) {
  std::string path = TempPath("directory_roundtrip.cafc");
  ASSERT_TRUE(directory_->SaveToFile(path).ok());
  Result<DatabaseDirectory> loaded = DatabaseDirectory::LoadFromFile(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();

  ASSERT_EQ(loaded->size(), directory_->size());
  for (size_t i = 0; i < loaded->size(); ++i) {
    const DirectoryEntry& a = directory_->entries()[i];
    const DirectoryEntry& b = loaded->entries()[i];
    EXPECT_EQ(a.label, b.label);
    EXPECT_EQ(a.member_urls, b.member_urls);
    EXPECT_EQ(a.centroid.pc.size(), b.centroid.pc.size());
    EXPECT_NEAR(a.centroid.pc.Norm(), b.centroid.pc.Norm(), 1e-9);
    EXPECT_NEAR(a.centroid.fc.Norm(), b.centroid.fc.Norm(), 1e-9);
  }

  // Classification through the loaded directory is identical, including
  // the re-weighting of raw documents (dictionary + IDF survived).
  for (size_t i = 0; i < 10 && i < dataset_->entries.size(); ++i) {
    DatabaseDirectory::Classification original =
        directory_->ClassifyDocument(dataset_->entries[i].doc);
    DatabaseDirectory::Classification reloaded =
        loaded->ClassifyDocument(dataset_->entries[i].doc);
    EXPECT_EQ(original.entry, reloaded.entry);
    EXPECT_NEAR(original.similarity, reloaded.similarity, 1e-9);
  }
  std::remove(path.c_str());
}

TEST_F(DirectoryTest, SaveLoadRoundTripsBitExact) {
  // Weighted directories must survive Save/Load *bit-exactly*: centroid
  // weights are TF×IDF products (irrational logs with all 52 mantissa bits
  // in play), so the previous 6-significant-digit serialization perturbed
  // every weight on reload and Classify similarities drifted. Non-default
  // LOC factors make the weights line part of the contract too.
  vsm::LocationWeightConfig weights;
  weights.page_title = 3;
  weights.anchor_text = 2;
  weights.form_text = 5;
  FormPageSet weighted = BuildFormPageSet(*dataset_, weights);
  DatabaseDirectory original = DatabaseDirectory::Build(
      weighted, *clustering_,
      DatabaseDirectory::AutoLabels(weighted, *clustering_));

  std::string path = TempPath("bit_exact_roundtrip.cafc");
  ASSERT_TRUE(original.SaveToFile(path).ok());
  Result<DatabaseDirectory> loaded = DatabaseDirectory::LoadFromFile(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  std::remove(path.c_str());

  ASSERT_EQ(loaded->size(), original.size());
  for (size_t i = 0; i < original.size(); ++i) {
    const DirectoryEntry& a = original.entries()[i];
    const DirectoryEntry& b = loaded->entries()[i];
    EXPECT_EQ(a.label, b.label) << "entry " << i;
    EXPECT_EQ(a.member_urls, b.member_urls) << "entry " << i;
    // Bit-exact centroids: same terms, same doubles (== on purpose).
    EXPECT_TRUE(a.centroid.pc == b.centroid.pc) << "pc centroid " << i;
    EXPECT_TRUE(a.centroid.fc == b.centroid.fc) << "fc centroid " << i;
  }

  // Classifying a raw document exercises the reloaded collection state
  // (vocabulary, IDF, LOC weights); similarities must be identical bits.
  for (size_t i = 0; i < dataset_->entries.size(); ++i) {
    DatabaseDirectory::Classification before =
        original.ClassifyDocument(dataset_->entries[i].doc);
    DatabaseDirectory::Classification after =
        loaded->ClassifyDocument(dataset_->entries[i].doc);
    EXPECT_EQ(before.entry, after.entry) << "doc " << i;
    EXPECT_EQ(before.similarity, after.similarity) << "doc " << i;  // exact
  }

  // Search goes through the same Eq. 1 weighting; exact as well.
  auto before = original.Search("job career hotel flight", 8);
  auto after = loaded->Search("job career hotel flight", 8);
  ASSERT_EQ(before.size(), after.size());
  for (size_t i = 0; i < before.size(); ++i) {
    EXPECT_EQ(before[i].entry, after[i].entry);
    EXPECT_EQ(before[i].similarity, after[i].similarity);
  }
}

TEST_F(DirectoryTest, CloneIsBitExactAndIndependent) {
  DatabaseDirectory clone = directory_->Clone();
  ASSERT_EQ(clone.size(), directory_->size());
  for (size_t i = 0; i < clone.size(); ++i) {
    const DirectoryEntry& a = directory_->entries()[i];
    const DirectoryEntry& b = clone.entries()[i];
    EXPECT_EQ(a.label, b.label);
    EXPECT_EQ(a.member_urls, b.member_urls);
    EXPECT_TRUE(a.centroid.pc == b.centroid.pc);
    EXPECT_TRUE(a.centroid.fc == b.centroid.fc);
  }
  EXPECT_EQ(clone.epoch(), directory_->epoch());
  for (size_t i = 0; i < 10 && i < dataset_->entries.size(); ++i) {
    DatabaseDirectory::Classification a =
        directory_->ClassifyDocument(dataset_->entries[i].doc);
    DatabaseDirectory::Classification b =
        clone.ClassifyDocument(dataset_->entries[i].doc);
    EXPECT_EQ(a.entry, b.entry);
    EXPECT_EQ(a.similarity, b.similarity);  // exact
  }

  // Mutating the clone (filing a source moves its centroid) must leave the
  // original untouched — the clone owns its state.
  const forms::FormPageDocument& doc = dataset_->entries[0].doc;
  DatabaseDirectory::Classification filed = clone.AddSource(doc);
  ASSERT_GE(filed.entry, 0);
  const size_t e = static_cast<size_t>(filed.entry);
  EXPECT_EQ(clone.entries()[e].member_urls.size(),
            directory_->entries()[e].member_urls.size() + 1);
  EXPECT_FALSE(clone.entries()[e].centroid.pc ==
               directory_->entries()[e].centroid.pc);
}

TEST_F(DirectoryTest, AdversarialLabelsSurviveRoundTrip) {
  // Labels are free text: embedded newlines, the member-list separator,
  // leading/trailing whitespace and non-ASCII bytes must all round-trip
  // through the escaped v2 format.
  std::vector<std::string> labels;
  const std::vector<std::string> adversarial = {
      "jobs\nand careers",        // embedded newline (v1 format breaker)
      "hotels, rooms, suites",    // commas like the member separator
      "  padded  ",               // leading/trailing spaces
      "caf\xc3\xa9 m\xc3\xbasica",  // UTF-8 bytes
      "back\\slash\rreturn",      // escape char + carriage return
  };
  for (size_t c = 0; c < static_cast<size_t>(clustering_->num_clusters);
       ++c) {
    labels.push_back(adversarial[c % adversarial.size()]);
  }
  DatabaseDirectory hostile =
      DatabaseDirectory::Build(*pages_, *clustering_, labels);

  std::string path = TempPath("adversarial_labels.cafc");
  ASSERT_TRUE(hostile.SaveToFile(path).ok());
  Result<DatabaseDirectory> loaded = DatabaseDirectory::LoadFromFile(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();

  ASSERT_EQ(loaded->size(), hostile.size());
  for (size_t i = 0; i < hostile.size(); ++i) {
    EXPECT_EQ(loaded->entries()[i].label, hostile.entries()[i].label) << i;
    EXPECT_EQ(loaded->entries()[i].member_urls,
              hostile.entries()[i].member_urls);
  }
  // Classification through the reloaded directory is unchanged — labels
  // never leak into vectors or statistics.
  for (size_t i = 0; i < 10 && i < dataset_->entries.size(); ++i) {
    DatabaseDirectory::Classification original =
        hostile.ClassifyDocument(dataset_->entries[i].doc);
    DatabaseDirectory::Classification reloaded =
        loaded->ClassifyDocument(dataset_->entries[i].doc);
    EXPECT_EQ(original.entry, reloaded.entry);
    EXPECT_NEAR(original.similarity, reloaded.similarity, 1e-9);
  }
  std::remove(path.c_str());
}

TEST_F(DirectoryTest, EpochSurvivesRoundTrip) {
  // The fixture directory was built from a plain FormPageSet: epoch 0.
  EXPECT_EQ(directory_->epoch(), 0u);
  std::string path = TempPath("epoch_roundtrip.cafc");
  ASSERT_TRUE(directory_->SaveToFile(path).ok());
  Result<DatabaseDirectory> loaded = DatabaseDirectory::LoadFromFile(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->epoch(), directory_->epoch());
  std::remove(path.c_str());
}

TEST_F(DirectoryTest, LoadRejectsGarbage) {
  std::string path = TempPath("garbage.cafc");
  {
    FILE* f = fopen(path.c_str(), "w");
    ASSERT_NE(f, nullptr);
    fputs("definitely not a directory\n", f);
    fclose(f);
  }
  Result<DatabaseDirectory> loaded = DatabaseDirectory::LoadFromFile(path);
  EXPECT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kParseError);
  std::remove(path.c_str());
}

TEST_F(DirectoryTest, LoadRejectsMissingFile) {
  Result<DatabaseDirectory> loaded =
      DatabaseDirectory::LoadFromFile("/nonexistent/nope.cafc");
  EXPECT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kNotFound);
}

TEST_F(DirectoryTest, LoadRejectsTruncatedFile) {
  std::string full = TempPath("full.cafc");
  ASSERT_TRUE(directory_->SaveToFile(full).ok());
  // Truncate to half size.
  std::string truncated = TempPath("truncated.cafc");
  {
    FILE* in = fopen(full.c_str(), "rb");
    ASSERT_NE(in, nullptr);
    fseek(in, 0, SEEK_END);
    long size = ftell(in);
    fseek(in, 0, SEEK_SET);
    std::string data(static_cast<size_t>(size / 2), '\0');
    ASSERT_EQ(fread(data.data(), 1, data.size(), in), data.size());
    fclose(in);
    FILE* out = fopen(truncated.c_str(), "wb");
    ASSERT_NE(out, nullptr);
    fwrite(data.data(), 1, data.size(), out);
    fclose(out);
  }
  Result<DatabaseDirectory> loaded =
      DatabaseDirectory::LoadFromFile(truncated);
  EXPECT_FALSE(loaded.ok());
  std::remove(full.c_str());
  std::remove(truncated.c_str());
}

TEST_F(DirectoryTest, SearchFindsTheRightSection) {
  // Query with unmistakable domain vocabulary; the top hit's entry must be
  // the cluster dominated by that domain.
  auto top_entry_gold = [this](const char* query) {
    auto hits = directory_->Search(query, 1);
    if (hits.empty()) return -1;
    // Majority gold of the hit entry's members.
    const DirectoryEntry& entry =
        directory_->entries()[static_cast<size_t>(hits[0].entry)];
    std::vector<int> votes(web::kNumDomains, 0);
    for (const std::string& url : entry.member_urls) {
      for (const DatasetEntry& e : dataset_->entries) {
        if (e.doc.url == url) {
          ++votes[static_cast<size_t>(e.gold)];
          break;
        }
      }
    }
    int best = 0;
    for (int d = 1; d < web::kNumDomains; ++d) {
      if (votes[static_cast<size_t>(d)] > votes[static_cast<size_t>(best)]) {
        best = d;
      }
    }
    return best;
  };
  EXPECT_EQ(top_entry_gold("job career resume employment"),
            static_cast<int>(web::Domain::kJob));
  EXPECT_EQ(top_entry_gold("hotel rooms reservation"),
            static_cast<int>(web::Domain::kHotel));
  EXPECT_EQ(top_entry_gold("cheap flights airline tickets"),
            static_cast<int>(web::Domain::kAirfare));
}

TEST_F(DirectoryTest, SearchRespectsTopK) {
  auto hits = directory_->Search("search databases online", 3);
  EXPECT_LE(hits.size(), 3u);
  for (size_t i = 1; i < hits.size(); ++i) {
    EXPECT_GE(hits[i - 1].similarity, hits[i].similarity);
  }
}

TEST_F(DirectoryTest, SearchUnknownTermsYieldNothing) {
  EXPECT_TRUE(directory_->Search("zzzzqqqq xxxyyy", 5).empty());
}

TEST_F(DirectoryTest, SearchSurvivesRoundTrip) {
  std::string path = TempPath("search_roundtrip.cafc");
  ASSERT_TRUE(directory_->SaveToFile(path).ok());
  Result<DatabaseDirectory> loaded = DatabaseDirectory::LoadFromFile(path);
  ASSERT_TRUE(loaded.ok());
  auto before = directory_->Search("job career", 2);
  auto after = loaded->Search("job career", 2);
  ASSERT_EQ(before.size(), after.size());
  for (size_t i = 0; i < before.size(); ++i) {
    EXPECT_EQ(before[i].entry, after[i].entry);
    EXPECT_NEAR(before[i].similarity, after[i].similarity, 1e-9);
  }
  std::remove(path.c_str());
}

TEST_F(DirectoryTest, AddSourceUpdatesCentroidAndMembers) {
  // Work on a private copy so other tests see the shared fixture intact.
  std::string path = TempPath("addsource.cafc");
  ASSERT_TRUE(directory_->SaveToFile(path).ok());
  Result<DatabaseDirectory> copy = DatabaseDirectory::LoadFromFile(path);
  ASSERT_TRUE(copy.ok());
  std::remove(path.c_str());

  const forms::FormPageDocument& doc = dataset_->entries[0].doc;
  DatabaseDirectory::Classification before = copy->ClassifyDocument(doc);
  size_t members_before =
      copy->entries()[static_cast<size_t>(before.entry)].member_urls.size();
  double norm_before = copy->entries()[static_cast<size_t>(before.entry)]
                           .centroid.pc.Norm();

  DatabaseDirectory::Classification filed = copy->AddSource(doc);
  EXPECT_EQ(filed.entry, before.entry);
  const DirectoryEntry& entry =
      copy->entries()[static_cast<size_t>(filed.entry)];
  EXPECT_EQ(entry.member_urls.size(), members_before + 1);
  EXPECT_EQ(entry.member_urls.back(), doc.url);
  // Centroid changed (running mean with one more vector).
  EXPECT_NE(entry.centroid.pc.Norm(), norm_before);

  // The newly filed source still classifies into the same entry.
  EXPECT_EQ(copy->ClassifyDocument(doc).entry, filed.entry);
}

TEST_F(DirectoryTest, AddSourceRunningMeanMatchesBatchMean) {
  // Adding a member twice: centroid must equal (n*c + 2v) / (n+2) — check
  // against a hand-computed running mean on a tiny directory.
  std::string path = TempPath("addsource_mean.cafc");
  ASSERT_TRUE(directory_->SaveToFile(path).ok());
  Result<DatabaseDirectory> copy = DatabaseDirectory::LoadFromFile(path);
  ASSERT_TRUE(copy.ok());
  std::remove(path.c_str());

  const forms::FormPageDocument& doc = dataset_->entries[1].doc;
  DatabaseDirectory::Classification first = copy->AddSource(doc);
  ASSERT_GE(first.entry, 0);
  // Filing the same document again: similarity to its section must not
  // decrease (the centroid moved toward it).
  DatabaseDirectory::Classification second = copy->ClassifyDocument(doc);
  EXPECT_EQ(second.entry, first.entry);
  EXPECT_GE(second.similarity, first.similarity - 1e-9);
}

TEST_F(DirectoryTest, AddSourceSurvivesSaveLoad) {
  std::string path = TempPath("addsource_save.cafc");
  ASSERT_TRUE(directory_->SaveToFile(path).ok());
  Result<DatabaseDirectory> copy = DatabaseDirectory::LoadFromFile(path);
  ASSERT_TRUE(copy.ok());

  const forms::FormPageDocument& doc = dataset_->entries[2].doc;
  DatabaseDirectory::Classification filed = copy->AddSource(doc);
  ASSERT_GE(filed.entry, 0);
  ASSERT_TRUE(copy->SaveToFile(path).ok());

  Result<DatabaseDirectory> reloaded = DatabaseDirectory::LoadFromFile(path);
  ASSERT_TRUE(reloaded.ok());
  const DirectoryEntry& entry =
      reloaded->entries()[static_cast<size_t>(filed.entry)];
  EXPECT_EQ(entry.member_urls.back(), doc.url);
  EXPECT_EQ(reloaded->ClassifyDocument(doc).entry, filed.entry);
  std::remove(path.c_str());
}

TEST_F(DirectoryTest, AddSourceOnEmptyDirectoryIsNoop) {
  DatabaseDirectory empty;
  forms::FormPageDocument doc;
  doc.url = "http://x.com/";
  EXPECT_EQ(empty.AddSource(doc).entry, -1);
  EXPECT_EQ(empty.size(), 0u);
}

TEST_F(DirectoryTest, EmptyDirectoryClassifiesToNothing) {
  DatabaseDirectory empty;
  DatabaseDirectory::Classification verdict =
      empty.ClassifyPage(pages_->page(0));
  EXPECT_EQ(verdict.entry, -1);
}

TEST_F(DirectoryTest, GoldAccuracyOfDirectoryClassification) {
  // Classify every training document; majority-label the entries by gold
  // and measure accuracy — this is the §5 automation claim.
  std::vector<int> entry_label(directory_->size(), -1);
  {
    std::vector<std::vector<int>> votes(
        directory_->size(), std::vector<int>(web::kNumDomains, 0));
    for (size_t i = 0; i < dataset_->entries.size(); ++i) {
      DatabaseDirectory::Classification v =
          directory_->ClassifyPage(pages_->page(i));
      ++votes[static_cast<size_t>(v.entry)]
             [static_cast<size_t>(dataset_->entries[i].gold)];
    }
    for (size_t e = 0; e < directory_->size(); ++e) {
      int best = 0;
      for (int d = 1; d < web::kNumDomains; ++d) {
        if (votes[e][static_cast<size_t>(d)] >
            votes[e][static_cast<size_t>(best)]) {
          best = d;
        }
      }
      entry_label[e] = best;
    }
  }
  size_t correct = 0;
  for (size_t i = 0; i < dataset_->entries.size(); ++i) {
    DatabaseDirectory::Classification v =
        directory_->ClassifyDocument(dataset_->entries[i].doc);
    if (entry_label[static_cast<size_t>(v.entry)] ==
        dataset_->entries[i].gold) {
      ++correct;
    }
  }
  EXPECT_GE(correct * 10, dataset_->entries.size() * 8);  // >= 80%
}

}  // namespace
}  // namespace cafc
