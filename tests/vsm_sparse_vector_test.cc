#include "vsm/sparse_vector.h"

#include <cmath>

#include <gtest/gtest.h>

#include "util/rng.h"

namespace cafc::vsm {
namespace {

SparseVector Make(std::vector<Entry> entries) {
  return SparseVector::FromUnsorted(std::move(entries));
}

TEST(SparseVectorTest, FromUnsortedSortsAndMerges) {
  SparseVector v = Make({{5, 1.0}, {2, 2.0}, {5, 3.0}, {1, 0.5}});
  ASSERT_EQ(v.size(), 3u);
  EXPECT_EQ(v.entries()[0].term, 1u);
  EXPECT_EQ(v.entries()[1].term, 2u);
  EXPECT_EQ(v.entries()[2].term, 5u);
  EXPECT_DOUBLE_EQ(v.Get(5), 4.0);
}

TEST(SparseVectorTest, AddInsertsAndAccumulates) {
  SparseVector v;
  v.Add(3, 1.0);
  v.Add(1, 2.0);
  v.Add(3, 0.5);
  EXPECT_EQ(v.size(), 2u);
  EXPECT_DOUBLE_EQ(v.Get(3), 1.5);
  EXPECT_DOUBLE_EQ(v.Get(1), 2.0);
  EXPECT_DOUBLE_EQ(v.Get(99), 0.0);
}

TEST(SparseVectorTest, NormAndSum) {
  SparseVector v = Make({{0, 3.0}, {1, 4.0}});
  EXPECT_DOUBLE_EQ(v.Norm(), 5.0);
  EXPECT_DOUBLE_EQ(v.Sum(), 7.0);
  EXPECT_DOUBLE_EQ(SparseVector().Norm(), 0.0);
}

TEST(SparseVectorTest, Scale) {
  SparseVector v = Make({{0, 2.0}, {7, -1.0}});
  v.Scale(0.5);
  EXPECT_DOUBLE_EQ(v.Get(0), 1.0);
  EXPECT_DOUBLE_EQ(v.Get(7), -0.5);
}

TEST(SparseVectorTest, AxpyMergesDisjoint) {
  SparseVector a = Make({{0, 1.0}});
  SparseVector b = Make({{1, 2.0}});
  a.Axpy(1.0, b);
  EXPECT_EQ(a.size(), 2u);
  EXPECT_DOUBLE_EQ(a.Get(0), 1.0);
  EXPECT_DOUBLE_EQ(a.Get(1), 2.0);
}

TEST(SparseVectorTest, AxpyAccumulatesOverlap) {
  SparseVector a = Make({{0, 1.0}, {2, 1.0}});
  SparseVector b = Make({{0, 3.0}, {1, 1.0}});
  a.Axpy(2.0, b);
  EXPECT_DOUBLE_EQ(a.Get(0), 7.0);
  EXPECT_DOUBLE_EQ(a.Get(1), 2.0);
  EXPECT_DOUBLE_EQ(a.Get(2), 1.0);
}

TEST(SparseVectorTest, AxpyWithSelfEquivalentDoubling) {
  SparseVector a = Make({{0, 1.0}, {3, 2.0}});
  SparseVector copy = a;
  a.Axpy(1.0, copy);
  EXPECT_DOUBLE_EQ(a.Get(0), 2.0);
  EXPECT_DOUBLE_EQ(a.Get(3), 4.0);
}

TEST(SparseVectorTest, CompactDropsZeros) {
  SparseVector a = Make({{0, 1.0}, {1, 0.0}, {2, 1e-12}});
  a.Compact(1e-9);
  EXPECT_EQ(a.size(), 1u);
  EXPECT_DOUBLE_EQ(a.Get(0), 1.0);
}

TEST(SparseVectorTest, KeepTopKPrunesToLargestWeights) {
  SparseVector v = Make({{0, 1.0}, {1, 5.0}, {2, 3.0}, {3, 4.0}});
  v.KeepTopK(2);
  ASSERT_EQ(v.size(), 2u);
  EXPECT_DOUBLE_EQ(v.Get(1), 5.0);
  EXPECT_DOUBLE_EQ(v.Get(3), 4.0);
  EXPECT_DOUBLE_EQ(v.Get(0), 0.0);
  // Entries stay sorted by term id.
  EXPECT_LT(v.entries()[0].term, v.entries()[1].term);
}

TEST(SparseVectorTest, KeepTopKNoopWhenSmaller) {
  SparseVector v = Make({{0, 1.0}, {1, 2.0}});
  SparseVector copy = v;
  v.KeepTopK(10);
  EXPECT_EQ(v, copy);
}

TEST(SparseVectorTest, KeepTopKTieBreaksTowardLowerIds) {
  SparseVector v = Make({{5, 1.0}, {2, 1.0}, {9, 1.0}});
  v.KeepTopK(2);
  ASSERT_EQ(v.size(), 2u);
  EXPECT_DOUBLE_EQ(v.Get(2), 1.0);
  EXPECT_DOUBLE_EQ(v.Get(5), 1.0);
}

TEST(SparseVectorTest, KeepTopKZeroEmpties) {
  SparseVector v = Make({{0, 1.0}});
  v.KeepTopK(0);
  EXPECT_TRUE(v.empty());
}

TEST(SparseVectorTest, DotDisjointIsZero) {
  EXPECT_DOUBLE_EQ(Dot(Make({{0, 1.0}}), Make({{1, 1.0}})), 0.0);
}

TEST(SparseVectorTest, DotOverlap) {
  SparseVector a = Make({{0, 1.0}, {1, 2.0}, {5, 3.0}});
  SparseVector b = Make({{1, 4.0}, {5, 1.0}, {9, 7.0}});
  EXPECT_DOUBLE_EQ(Dot(a, b), 2.0 * 4.0 + 3.0 * 1.0);
}

TEST(CosineTest, IdenticalVectorsSimilarityOne) {
  SparseVector a = Make({{0, 1.0}, {1, 2.0}});
  EXPECT_NEAR(CosineSimilarity(a, a), 1.0, 1e-12);
}

TEST(CosineTest, ScaleInvariant) {
  SparseVector a = Make({{0, 1.0}, {1, 2.0}});
  SparseVector b = a;
  b.Scale(42.0);
  EXPECT_NEAR(CosineSimilarity(a, b), 1.0, 1e-12);
}

TEST(CosineTest, OrthogonalIsZero) {
  EXPECT_DOUBLE_EQ(CosineSimilarity(Make({{0, 1.0}}), Make({{1, 1.0}})), 0.0);
}

TEST(CosineTest, EmptyVectorYieldsZero) {
  SparseVector empty;
  SparseVector a = Make({{0, 1.0}});
  EXPECT_DOUBLE_EQ(CosineSimilarity(empty, a), 0.0);
  EXPECT_DOUBLE_EQ(CosineSimilarity(empty, empty), 0.0);
}

TEST(CosineTest, KnownValue) {
  SparseVector a = Make({{0, 1.0}, {1, 1.0}});
  SparseVector b = Make({{0, 1.0}});
  EXPECT_NEAR(CosineSimilarity(a, b), 1.0 / std::sqrt(2.0), 1e-12);
}

// ---- property tests over random vectors ----

class CosinePropertyTest : public ::testing::TestWithParam<uint64_t> {
 protected:
  SparseVector RandomVector(Rng* rng, size_t max_terms) {
    std::vector<Entry> entries;
    size_t n = 1 + rng->Uniform(max_terms);
    for (size_t i = 0; i < n; ++i) {
      entries.push_back(Entry{static_cast<TermId>(rng->Uniform(50)),
                              rng->UniformDouble() + 0.01});
    }
    return SparseVector::FromUnsorted(std::move(entries));
  }
};

TEST_P(CosinePropertyTest, BoundedAndSymmetric) {
  Rng rng(GetParam());
  for (int i = 0; i < 200; ++i) {
    SparseVector a = RandomVector(&rng, 20);
    SparseVector b = RandomVector(&rng, 20);
    double ab = CosineSimilarity(a, b);
    double ba = CosineSimilarity(b, a);
    EXPECT_NEAR(ab, ba, 1e-12);
    EXPECT_GE(ab, 0.0);          // non-negative weights
    EXPECT_LE(ab, 1.0 + 1e-12);  // Cauchy-Schwarz
  }
}

TEST_P(CosinePropertyTest, SelfSimilarityIsOne) {
  Rng rng(GetParam() ^ 0xabcdef);
  for (int i = 0; i < 100; ++i) {
    SparseVector a = RandomVector(&rng, 20);
    EXPECT_NEAR(CosineSimilarity(a, a), 1.0, 1e-9);
  }
}

TEST_P(CosinePropertyTest, AxpyMatchesDenseAddition) {
  Rng rng(GetParam() ^ 0x1234);
  for (int i = 0; i < 100; ++i) {
    SparseVector a = RandomVector(&rng, 15);
    SparseVector b = RandomVector(&rng, 15);
    double factor = rng.UniformDouble() * 4.0 - 2.0;
    SparseVector sum = a;
    sum.Axpy(factor, b);
    for (TermId t = 0; t < 50; ++t) {
      EXPECT_NEAR(sum.Get(t), a.Get(t) + factor * b.Get(t), 1e-12);
    }
  }
}

TEST_P(CosinePropertyTest, DotCommutesAndMatchesNormIdentity) {
  Rng rng(GetParam() ^ 0x77);
  for (int i = 0; i < 100; ++i) {
    SparseVector a = RandomVector(&rng, 15);
    EXPECT_NEAR(Dot(a, a), a.Norm() * a.Norm(), 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CosinePropertyTest,
                         ::testing::Values(1, 2, 3, 42, 1337));

}  // namespace
}  // namespace cafc::vsm
