#include "forms/form.h"

#include <gtest/gtest.h>

namespace cafc::forms {
namespace {

TEST(InputTypeTest, KnownTypes) {
  EXPECT_EQ(InputTypeFromString("text"), FieldType::kText);
  EXPECT_EQ(InputTypeFromString("TEXT"), FieldType::kText);
  EXPECT_EQ(InputTypeFromString("password"), FieldType::kPassword);
  EXPECT_EQ(InputTypeFromString("hidden"), FieldType::kHidden);
  EXPECT_EQ(InputTypeFromString("checkbox"), FieldType::kCheckbox);
  EXPECT_EQ(InputTypeFromString("radio"), FieldType::kRadio);
  EXPECT_EQ(InputTypeFromString("submit"), FieldType::kSubmit);
  EXPECT_EQ(InputTypeFromString("reset"), FieldType::kReset);
  EXPECT_EQ(InputTypeFromString("button"), FieldType::kButton);
  EXPECT_EQ(InputTypeFromString("file"), FieldType::kFile);
  EXPECT_EQ(InputTypeFromString("image"), FieldType::kImage);
}

TEST(InputTypeTest, EmptyAndUnknownDefaultToText) {
  EXPECT_EQ(InputTypeFromString(""), FieldType::kText);
  EXPECT_EQ(InputTypeFromString("bogus"), FieldType::kText);
}

Form MakeForm(std::vector<FieldType> types) {
  Form form;
  for (FieldType t : types) {
    FormField f;
    f.type = t;
    form.fields.push_back(f);
  }
  return form;
}

TEST(FormTest, NumFillableFieldsExcludesChrome) {
  Form form = MakeForm({FieldType::kText, FieldType::kHidden,
                        FieldType::kSubmit, FieldType::kReset,
                        FieldType::kButton, FieldType::kImage,
                        FieldType::kSelect});
  EXPECT_EQ(form.NumFillableFields(), 2);
}

TEST(FormTest, NumFillableIncludesPasswordAndFile) {
  Form form = MakeForm({FieldType::kPassword, FieldType::kFile});
  EXPECT_EQ(form.NumFillableFields(), 2);
}

TEST(FormTest, NumAttributesCountsQueryControls) {
  Form form = MakeForm({FieldType::kText, FieldType::kSelect,
                        FieldType::kTextArea, FieldType::kRadio,
                        FieldType::kCheckbox, FieldType::kPassword,
                        FieldType::kHidden, FieldType::kSubmit});
  EXPECT_EQ(form.NumAttributes(), 5);
}

TEST(FormTest, HasFieldType) {
  Form form = MakeForm({FieldType::kText, FieldType::kHidden});
  EXPECT_TRUE(form.HasFieldType(FieldType::kText));
  EXPECT_TRUE(form.HasFieldType(FieldType::kHidden));
  EXPECT_FALSE(form.HasFieldType(FieldType::kPassword));
}

TEST(FormTest, HasFieldNamedCaseInsensitive) {
  Form form;
  FormField f;
  f.type = FieldType::kText;
  f.name = "UserName";
  form.fields.push_back(f);
  EXPECT_TRUE(form.HasFieldNamed("username"));
  EXPECT_TRUE(form.HasFieldNamed("USERNAME"));
  EXPECT_FALSE(form.HasFieldNamed("user"));
}

TEST(FormTest, EmptyForm) {
  Form form;
  EXPECT_EQ(form.NumFillableFields(), 0);
  EXPECT_EQ(form.NumAttributes(), 0);
  EXPECT_FALSE(form.HasFieldNamed("q"));
}

}  // namespace
}  // namespace cafc::forms
