#include "eval/metrics.h"

#include <cmath>

#include <gtest/gtest.h>

namespace cafc::eval {
namespace {

cluster::Clustering MakeClustering(std::vector<int> assignment, int k) {
  cluster::Clustering c;
  c.assignment = std::move(assignment);
  c.num_clusters = k;
  return c;
}

TEST(ContingencyTableTest, CellsAndMarginals) {
  // classes: 0 0 1 1 1; clusters: 0 1 1 1 0
  ContingencyTable t({0, 0, 1, 1, 1}, 2, MakeClustering({0, 1, 1, 1, 0}, 2));
  EXPECT_EQ(t.total(), 5u);
  EXPECT_EQ(t.cell(0, 0), 1u);
  EXPECT_EQ(t.cell(0, 1), 1u);
  EXPECT_EQ(t.cell(1, 0), 1u);
  EXPECT_EQ(t.cell(1, 1), 2u);
  EXPECT_EQ(t.ClassSize(0), 2u);
  EXPECT_EQ(t.ClassSize(1), 3u);
  EXPECT_EQ(t.ClusterSize(0), 2u);
  EXPECT_EQ(t.ClusterSize(1), 3u);
}

TEST(ContingencyTableTest, UnassignedPointsSkipped) {
  ContingencyTable t({0, 1}, 2, MakeClustering({0, -1}, 1));
  EXPECT_EQ(t.total(), 1u);
}

TEST(EntropyTest, PureClusterIsZero) {
  ContingencyTable t({0, 0, 1, 1}, 2, MakeClustering({0, 0, 1, 1}, 2));
  EXPECT_DOUBLE_EQ(ClusterEntropy(t, 0), 0.0);
  EXPECT_DOUBLE_EQ(ClusterEntropy(t, 1), 0.0);
  EXPECT_DOUBLE_EQ(TotalEntropy(t), 0.0);
}

TEST(EntropyTest, FiftyFiftyClusterIsLnTwo) {
  ContingencyTable t({0, 1}, 2, MakeClustering({0, 0}, 1));
  EXPECT_NEAR(ClusterEntropy(t, 0), std::log(2.0), 1e-12);
  EXPECT_NEAR(TotalEntropy(t), std::log(2.0), 1e-12);
}

TEST(EntropyTest, WeightedBySize) {
  // Cluster 0: 4 pure points (entropy 0); cluster 1: 2 mixed (ln 2).
  ContingencyTable t({0, 0, 0, 0, 0, 1}, 2,
                     MakeClustering({0, 0, 0, 0, 1, 1}, 2));
  EXPECT_NEAR(TotalEntropy(t), (2.0 / 6.0) * std::log(2.0), 1e-12);
}

TEST(EntropyTest, UniformOverKClassesIsLnK) {
  ContingencyTable t({0, 1, 2, 3}, 4, MakeClustering({0, 0, 0, 0}, 1));
  EXPECT_NEAR(TotalEntropy(t), std::log(4.0), 1e-12);
}

TEST(EntropyTest, EmptyClusterContributesNothing) {
  ContingencyTable t({0, 0}, 1, MakeClustering({1, 1}, 2));
  EXPECT_DOUBLE_EQ(ClusterEntropy(t, 0), 0.0);
  EXPECT_DOUBLE_EQ(TotalEntropy(t), 0.0);
}

TEST(PrecisionRecallTest, Formulas) {
  // class 0: 3 members, 2 land in cluster 0 (size 4).
  ContingencyTable t({0, 0, 0, 1, 1, 1, 1}, 2,
                     MakeClustering({0, 0, 1, 0, 0, 1, 1}, 2));
  EXPECT_NEAR(Recall(t, 0, 0), 2.0 / 3.0, 1e-12);
  EXPECT_NEAR(Precision(t, 0, 0), 2.0 / 4.0, 1e-12);
  double r = 2.0 / 3.0;
  double p = 0.5;
  EXPECT_NEAR(FScore(t, 0, 0), 2 * r * p / (r + p), 1e-12);
}

TEST(PrecisionRecallTest, ZeroCellGivesZeroF) {
  ContingencyTable t({0, 1}, 2, MakeClustering({0, 1}, 2));
  EXPECT_DOUBLE_EQ(FScore(t, 0, 1), 0.0);
}

TEST(FMeasureTest, PerfectClusteringScoresOne) {
  ContingencyTable t({0, 0, 1, 1, 2, 2}, 3,
                     MakeClustering({2, 2, 0, 0, 1, 1}, 3));
  EXPECT_NEAR(OverallFMeasure(t), 1.0, 1e-12);
  EXPECT_NEAR(Purity(t), 1.0, 1e-12);
  EXPECT_NEAR(TotalEntropy(t), 0.0, 1e-12);
}

TEST(FMeasureTest, SingleBlobScoresLow) {
  // Everything in one cluster: per-class F = 2*1*(1/k)/(1+1/k).
  ContingencyTable t({0, 1, 2, 3}, 4, MakeClustering({0, 0, 0, 0}, 1));
  double per_class = 2.0 * 1.0 * 0.25 / (1.0 + 0.25);
  EXPECT_NEAR(OverallFMeasure(t), per_class, 1e-12);
}

TEST(FMeasureTest, ClassWeightedAverage) {
  // class 0 (4 pts) perfectly clustered; class 1 (2 pts) split in half
  // across cluster 1 (alone) and cluster 0.
  ContingencyTable t({0, 0, 0, 0, 1, 1}, 2,
                     MakeClustering({0, 0, 0, 0, 0, 1}, 2));
  // class 0: best F vs cluster 0: r=1, p=4/5 → 8/9.
  // class 1: vs cluster 1: r=1/2, p=1 → 2/3; vs cluster 0: r=1/2,p=1/5→2/7.
  double expected = (4.0 * (8.0 / 9.0) + 2.0 * (2.0 / 3.0)) / 6.0;
  EXPECT_NEAR(OverallFMeasure(t), expected, 1e-12);
}

TEST(PurityTest, MajorityFraction) {
  ContingencyTable t({0, 0, 1, 1, 1, 0}, 2,
                     MakeClustering({0, 0, 0, 1, 1, 1}, 2));
  // cluster 0: {0,0,1} majority 2; cluster 1: {1,1,0} majority 2 → 4/6.
  EXPECT_NEAR(Purity(t), 4.0 / 6.0, 1e-12);
}

TEST(HomogeneityTest, CountsPureClusters) {
  ContingencyTable t({0, 0, 1, 1, 0, 1}, 2,
                     MakeClustering({0, 0, 1, 1, 2, 2}, 3));
  // clusters 0 and 1 pure, cluster 2 mixed → 2/3.
  EXPECT_NEAR(HomogeneousClusterFraction(t), 2.0 / 3.0, 1e-12);
}

TEST(HomogeneityTest, EmptyClustersSkipped) {
  ContingencyTable t({0, 0}, 1, MakeClustering({2, 2}, 3));
  EXPECT_NEAR(HomogeneousClusterFraction(t), 1.0, 1e-12);
}

TEST(MetricsTest, EmptyInputSafe) {
  ContingencyTable t({}, 2, MakeClustering({}, 0));
  EXPECT_DOUBLE_EQ(TotalEntropy(t), 0.0);
  EXPECT_DOUBLE_EQ(OverallFMeasure(t), 0.0);
  EXPECT_DOUBLE_EQ(Purity(t), 0.0);
  EXPECT_DOUBLE_EQ(HomogeneousClusterFraction(t), 0.0);
}

TEST(NmiTest, PerfectClusteringIsOne) {
  ContingencyTable t({0, 0, 1, 1}, 2, MakeClustering({1, 1, 0, 0}, 2));
  EXPECT_NEAR(NormalizedMutualInformation(t), 1.0, 1e-12);
}

TEST(NmiTest, SingleBlobIsZero) {
  ContingencyTable t({0, 1, 0, 1}, 2, MakeClustering({0, 0, 0, 0}, 1));
  EXPECT_NEAR(NormalizedMutualInformation(t), 0.0, 1e-12);
}

TEST(NmiTest, IndependentPartitionsNearZero) {
  // Classes and clusters fully crossed: MI = 0.
  ContingencyTable t({0, 0, 1, 1}, 2, MakeClustering({0, 1, 0, 1}, 2));
  EXPECT_NEAR(NormalizedMutualInformation(t), 0.0, 1e-12);
}

TEST(RandIndexTest, PerfectIsOne) {
  ContingencyTable t({0, 0, 1, 1}, 2, MakeClustering({1, 1, 0, 0}, 2));
  EXPECT_NEAR(RandIndex(t), 1.0, 1e-12);
  EXPECT_NEAR(AdjustedRandIndex(t), 1.0, 1e-12);
}

TEST(RandIndexTest, KnownHandValue) {
  // gold: {a,b} {c,d,e}; clustering: {a,b,c} {d,e}.
  // pairs (10 total): agree on ab, de; agree-apart on ad, ae, bd, be;
  // disagree on ac, bc, cd, ce → Rand = 6/10.
  ContingencyTable t({0, 0, 1, 1, 1}, 2, MakeClustering({0, 0, 0, 1, 1}, 2));
  EXPECT_NEAR(RandIndex(t), 0.6, 1e-12);
}

TEST(RandIndexTest, AdjustedBelowPlainForImperfect) {
  ContingencyTable t({0, 0, 1, 1, 1}, 2, MakeClustering({0, 0, 0, 1, 1}, 2));
  EXPECT_LT(AdjustedRandIndex(t), RandIndex(t));
}

TEST(RandIndexTest, SingleBlobDegenerateAri) {
  // One cluster vs one class: identical trivial partitions.
  ContingencyTable t({0, 0, 0}, 1, MakeClustering({0, 0, 0}, 1));
  EXPECT_NEAR(AdjustedRandIndex(t), 1.0, 1e-12);
  EXPECT_NEAR(RandIndex(t), 1.0, 1e-12);
}

TEST(RandIndexTest, TinyInputs) {
  ContingencyTable t({0}, 1, MakeClustering({0}, 1));
  EXPECT_DOUBLE_EQ(RandIndex(t), 1.0);
  EXPECT_DOUBLE_EQ(AdjustedRandIndex(t), 1.0);
}

TEST(SilhouetteTest, WellSeparatedBlocksScoreHigh) {
  // 2 blocks of 3; in-block distance 0.1, cross 0.9.
  auto sim = [](size_t a, size_t b) {
    return (a / 3) == (b / 3) ? 0.9 : 0.1;
  };
  cluster::Clustering c = MakeClustering({0, 0, 0, 1, 1, 1}, 2);
  // a = 0.1, b = 0.9 → s = (0.9-0.1)/0.9 ≈ 0.888...
  EXPECT_NEAR(MeanSilhouette(c, sim), 0.8 / 0.9, 1e-12);
}

TEST(SilhouetteTest, WrongPartitionScoresNegative) {
  auto sim = [](size_t a, size_t b) {
    return (a / 3) == (b / 3) ? 0.9 : 0.1;
  };
  // Split each true block across both clusters.
  cluster::Clustering c = MakeClustering({0, 1, 0, 1, 0, 1}, 2);
  EXPECT_LT(MeanSilhouette(c, sim), 0.0);
}

TEST(SilhouetteTest, SingleClusterIsZero) {
  auto sim = [](size_t, size_t) { return 0.5; };
  cluster::Clustering c = MakeClustering({0, 0, 0}, 1);
  EXPECT_DOUBLE_EQ(MeanSilhouette(c, sim), 0.0);
}

TEST(SilhouetteTest, SingletonClustersScoreZero) {
  auto sim = [](size_t, size_t) { return 0.5; };
  cluster::Clustering c = MakeClustering({0, 1}, 2);
  EXPECT_DOUBLE_EQ(MeanSilhouette(c, sim), 0.0);
}

TEST(SilhouetteTest, EmptyInputSafe) {
  auto sim = [](size_t, size_t) { return 0.5; };
  cluster::Clustering c = MakeClustering({}, 0);
  EXPECT_DOUBLE_EQ(MeanSilhouette(c, sim), 0.0);
}

TEST(SilhouetteTest, UnassignedPointsIgnored) {
  auto sim = [](size_t a, size_t b) {
    return (a / 2) == (b / 2) ? 0.9 : 0.1;
  };
  cluster::Clustering c = MakeClustering({0, 0, 1, 1, -1}, 2);
  EXPECT_GT(MeanSilhouette(c, sim), 0.5);
}

// Property sweep: entropy of random clusterings is within [0, ln(classes)]
// and perfect assignments always score best.
class MetricsPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(MetricsPropertyTest, EntropyBounds) {
  int k = GetParam();
  std::vector<int> gold;
  std::vector<int> assignment;
  uint64_t state = static_cast<uint64_t>(k) * 2654435761u + 17;
  auto next = [&state]() {
    state = state * 6364136223846793005ULL + 1442695040888963407ULL;
    return static_cast<int>((state >> 33) % 1000);
  };
  for (int i = 0; i < 100; ++i) {
    gold.push_back(next() % k);
    assignment.push_back(next() % k);
  }
  ContingencyTable t(gold, k, MakeClustering(assignment, k));
  EXPECT_GE(TotalEntropy(t), 0.0);
  EXPECT_LE(TotalEntropy(t), std::log(static_cast<double>(k)) + 1e-9);
  EXPECT_GE(OverallFMeasure(t), 0.0);
  EXPECT_LE(OverallFMeasure(t), 1.0 + 1e-9);

  EXPECT_GE(NormalizedMutualInformation(t), -1e-9);
  EXPECT_LE(NormalizedMutualInformation(t), 1.0 + 1e-9);
  EXPECT_GE(RandIndex(t), 0.0);
  EXPECT_LE(RandIndex(t), 1.0 + 1e-9);
  EXPECT_LE(AdjustedRandIndex(t), 1.0 + 1e-9);

  ContingencyTable perfect(gold, k, MakeClustering(gold, k));
  EXPECT_LE(TotalEntropy(perfect), TotalEntropy(t) + 1e-9);
  EXPECT_GE(OverallFMeasure(perfect), OverallFMeasure(t) - 1e-9);
  EXPECT_NEAR(NormalizedMutualInformation(perfect), 1.0, 1e-9);
  EXPECT_NEAR(AdjustedRandIndex(perfect), 1.0, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Ks, MetricsPropertyTest,
                         ::testing::Values(2, 3, 4, 8, 16));

}  // namespace
}  // namespace cafc::eval
