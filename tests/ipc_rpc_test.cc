// Tests of the typed message-pipe RPC: synchronous and pipelined calls
// over both transports (in-process pair and socketpair), out-of-order
// response matching, client poisoning on transport failure, hostile
// envelope bytes, and the WireDocument round trip's classify bit-identity.

#include "ipc/shard_rpc.h"

#include <atomic>
#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "core/cafc.h"
#include "core/corpus.h"
#include "core/directory.h"
#include "core/ingest.h"
#include "ipc/message.h"
#include "ipc/pipe.h"
#include "util/rng.h"
#include "util/varint.h"
#include "web/synthesizer.h"

namespace cafc::ipc {
namespace {

/// Deterministic toy backend: every answer is a pure function of the
/// request, so tests can verify transport fidelity without a directory.
class EchoHandler : public ShardHandler {
 public:
  Result<ClassifyResponse> HandleClassify(
      const ClassifyRequest& request) override {
    ClassifyResponse response;
    response.best.entry = static_cast<int64_t>(request.doc.terms.size());
    response.best.similarity = 0.25;
    response.snapshot_version = 7;
    response.corpus_epoch = 3;
    return response;
  }

  Result<SearchResponse> HandleSearch(
      const SearchRequest& request) override {
    if (request.query == "slow") {
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
    }
    if (request.query == "fail") {
      return Status::InvalidArgument("handler rejects this query");
    }
    SearchResponse response;
    for (uint64_t i = 0; i < request.top_k; ++i) {
      response.hits.push_back(
          {static_cast<int64_t>(request.query.size() + i),
           1.0 / static_cast<double>(i + 1)});
    }
    response.snapshot_version = 7;
    response.corpus_epoch = 3;
    return response;
  }

  Result<StatsResponse> HandleStats(const StatsRequest&) override {
    StatsResponse response;
    response.completed = 42;
    return response;
  }

  Result<EpochResponse> HandleEpoch(const EpochRequest&) override {
    EpochResponse response;
    response.shard_id = 2;
    response.num_shards = 4;
    response.snapshot_version = 7;
    response.corpus_epoch = 3;
    response.sections = 11;
    return response;
  }
};

/// One served client over the given transport; joins the serve thread on
/// destruction.
struct Rig {
  explicit Rig(std::pair<std::unique_ptr<MessagePipe>,
                         std::unique_ptr<MessagePipe>>
                   ends,
               size_t serve_threads = 1)
      : service_pipe(std::move(ends.first)),
        client(std::move(ends.second)) {
    for (size_t i = 0; i < serve_threads; ++i) {
      loops.emplace_back(
          [this] { ServeLoop(service_pipe.get(), &handler); });
    }
  }

  ~Rig() {
    service_pipe->Close();
    client.Close();
    for (std::thread& t : loops) t.join();
  }

  EchoHandler handler;
  std::unique_ptr<MessagePipe> service_pipe;
  ShardClient client;
  std::vector<std::thread> loops;
};

SearchRequest MakeSearch(std::string query, uint64_t top_k = 3) {
  SearchRequest request;
  request.query = std::move(query);
  request.top_k = top_k;
  return request;
}

void ExerciseAllMethods(Rig& rig) {
  ClassifyRequest classify;
  classify.doc.terms = {"job", "career"};
  Result<ClassifyResponse> classified = rig.client.Classify(classify);
  ASSERT_TRUE(classified.ok()) << classified.status().ToString();
  EXPECT_EQ(classified->best.entry, 2);
  EXPECT_EQ(classified->best.similarity, 0.25);
  EXPECT_EQ(classified->snapshot_version, 7u);

  Result<SearchResponse> found = rig.client.Search(MakeSearch("hotel", 2));
  ASSERT_TRUE(found.ok());
  ASSERT_EQ(found->hits.size(), 2u);
  EXPECT_EQ(found->hits[0].entry, 5);
  EXPECT_EQ(found->hits[1].entry, 6);
  EXPECT_EQ(found->hits[1].similarity, 0.5);

  Result<StatsResponse> stats = rig.client.Stats(StatsRequest{});
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->completed, 42u);

  Result<EpochResponse> epoch = rig.client.Epoch(EpochRequest{});
  ASSERT_TRUE(epoch.ok());
  EXPECT_EQ(epoch->shard_id, 2u);
  EXPECT_EQ(epoch->sections, 11u);

  // A handler error travels as a status, not a transport failure.
  Result<SearchResponse> rejected = rig.client.Search(MakeSearch("fail"));
  EXPECT_EQ(rejected.status().code(), StatusCode::kInvalidArgument);
  // And the client is NOT poisoned by it.
  EXPECT_TRUE(rig.client.Epoch(EpochRequest{}).ok());
}

TEST(ShardRpcTest, RoundTripsOverInProcessTransport) {
  Rig rig(CreateInProcessPipePair());
  ExerciseAllMethods(rig);
}

TEST(ShardRpcTest, RoundTripsOverSocketpairTransport) {
  Result<std::pair<std::unique_ptr<MessagePipe>,
                   std::unique_ptr<MessagePipe>>>
      ends = CreateSocketPipePair();
  ASSERT_TRUE(ends.ok()) << ends.status().ToString();
  Rig rig(std::move(*ends));
  ExerciseAllMethods(rig);
}

TEST(ShardRpcTest, PipelinedResponsesMatchByIdOutOfOrder) {
  // Two serve threads: the slow request holds one while the fast ones
  // complete on the other, so responses genuinely arrive out of order.
  Rig rig(CreateInProcessPipePair(), /*serve_threads=*/2);
  Result<uint64_t> slow_id = rig.client.SendSearch(MakeSearch("slow", 1));
  ASSERT_TRUE(slow_id.ok());
  std::vector<uint64_t> fast_ids;
  for (int i = 0; i < 4; ++i) {
    Result<uint64_t> id = rig.client.SendSearch(MakeSearch("fast", 1));
    ASSERT_TRUE(id.ok());
    fast_ids.push_back(*id);
  }
  // Collect the fast ones first — their responses overtook the slow one.
  for (uint64_t id : fast_ids) {
    Result<SearchResponse> response = rig.client.AwaitSearch(id);
    ASSERT_TRUE(response.ok());
    EXPECT_EQ(response->hits[0].entry, 4);  // strlen("fast")
  }
  Result<SearchResponse> slow = rig.client.AwaitSearch(*slow_id);
  ASSERT_TRUE(slow.ok());
  EXPECT_EQ(slow->hits[0].entry, 4);  // strlen("slow")
}

TEST(ShardRpcTest, ConcurrentCallersShareOnePipe) {
  Rig rig(CreateInProcessPipePair(), /*serve_threads=*/4);
  std::vector<std::thread> callers;
  std::atomic<int> failures{0};
  for (int c = 0; c < 8; ++c) {
    callers.emplace_back([&rig, &failures, c] {
      for (int i = 0; i < 25; ++i) {
        std::string query(static_cast<size_t>(c + 1), 'q');
        Result<SearchResponse> response =
            rig.client.Search(MakeSearch(query, 1));
        if (!response.ok() ||
            response->hits[0].entry != static_cast<int64_t>(c + 1)) {
          failures.fetch_add(1);
        }
      }
    });
  }
  for (std::thread& t : callers) t.join();
  EXPECT_EQ(failures.load(), 0);
}

TEST(ShardRpcTest, ClosedPipePoisonsOutstandingAndFutureCalls) {
  auto [service_end, client_end] = CreateInProcessPipePair();
  ShardClient client(std::move(client_end));
  // No server at all: park a pipelined call, then kill the transport.
  Result<uint64_t> parked = client.SendEpoch(EpochRequest{});
  ASSERT_TRUE(parked.ok());
  service_end->Close();
  EXPECT_EQ(client.AwaitEpoch(*parked).status().code(),
            StatusCode::kUnavailable);
  // Poisoned: every future call fails immediately with the same taxonomy.
  EXPECT_EQ(client.Epoch(EpochRequest{}).status().code(),
            StatusCode::kUnavailable);
  EXPECT_EQ(client.Search(MakeSearch("job")).status().code(),
            StatusCode::kUnavailable);
}

TEST(ShardRpcTest, HostileEnvelopeBytesFailCleanly) {
  // Truncation sweep over a valid response envelope: every prefix must
  // decode to a clean error, never crash.
  ResponseEnvelope envelope;
  envelope.request_id = 99;
  envelope.method = MethodId::kSearch;
  envelope.status_code = 0;
  envelope.payload = "opaque";
  std::string wire;
  envelope.EncodeTo(&wire);
  for (size_t cut = 0; cut < wire.size(); ++cut) {
    util::ByteReader reader(std::string_view(wire).substr(0, cut));
    ResponseEnvelope decoded;
    Status status = decoded.DecodeFrom(&reader);
    // Some prefixes happen to decode (trailing payload bytes are length-
    // prefixed, so most truncations are caught); none may crash.
    (void)status;
  }
  // The envelope's payload is "rest of frame" (the frame codec bounds
  // it), so the envelope decoder's own validation surface is the header:
  // an unknown method id must fail ParseError...
  RequestEnvelope request;
  {
    const std::string unknown_method = {0x05 /*id*/, 0x63 /*method 99*/};
    util::ByteReader reader(unknown_method);
    EXPECT_EQ(request.DecodeFrom(&reader).code(), StatusCode::kParseError);
  }
  // ...and header truncation must fail cleanly, not crash.
  for (const std::string bytes : {std::string(), std::string(1, 0x05)}) {
    util::ByteReader reader(bytes);
    EXPECT_FALSE(request.DecodeFrom(&reader).ok());
  }
  // A truncated *inner message* behind a valid envelope fails at the
  // typed decode: chop a classify payload and decode it directly.
  ClassifyRequest classify;
  classify.doc.terms = {"alpha", "beta"};
  classify.doc.url = "http://example.com/f";
  std::string payload;
  classify.EncodeTo(&payload);
  for (size_t cut = 0; cut < payload.size(); ++cut) {
    util::ByteReader reader(std::string_view(payload).substr(0, cut));
    ClassifyRequest decoded;
    // Most cuts are truncation errors; any that parse must not crash.
    (void)decoded.DecodeFrom(&reader);
  }
  {
    util::ByteReader reader(
        std::string_view(payload).substr(0, payload.size() / 2));
    ClassifyRequest decoded;
    EXPECT_FALSE(decoded.DecodeFrom(&reader).ok());
  }
}

TEST(ShardRpcTest, WireDocumentRoundTripClassifiesBitIdentically) {
  web::SynthesizerConfig config;
  config.seed = 11;
  config.form_pages_total = 32;
  config.single_attribute_forms = 4;
  config.homogeneous_hubs_per_domain = 20;
  config.mixed_hubs = 30;
  config.directory_hubs = 2;
  config.large_air_hotel_hubs = 2;
  web::SyntheticWeb web = web::Synthesizer(config).Generate();
  Result<CorpusBuild> built = BuildCorpus(web);
  ASSERT_TRUE(built.ok());
  Corpus corpus = std::move(built->corpus);
  Rng rng(1234);
  cluster::Clustering clustering =
      CafcC(corpus.Weighted(), 4, CafcOptions{}, &rng);
  DatabaseDirectory directory = DatabaseDirectory::Build(
      corpus.Weighted(), clustering,
      DatabaseDirectory::AutoLabels(corpus.Weighted(), clustering));

  for (const DatasetEntry& entry : corpus.entries()) {
    // Flatten for the wire, encode, decode, rebuild — then classify both
    // the original and the round-tripped document. The by-string
    // translation in WeighNewDocument makes the weights, and therefore
    // the classification, bit-identical.
    WireDocument flattened = WireDocument::FromDocument(entry.doc);
    std::string wire;
    flattened.EncodeTo(&wire);
    util::ByteReader reader(wire);
    WireDocument decoded;
    ASSERT_TRUE(decoded.DecodeFrom(&reader).ok()) << entry.doc.url;
    forms::FormPageDocument rebuilt = decoded.ToDocument();

    DatabaseDirectory::Classification original =
        directory.ClassifyDocument(entry.doc);
    DatabaseDirectory::Classification roundtripped =
        directory.ClassifyDocument(rebuilt);
    EXPECT_EQ(roundtripped.entry, original.entry) << entry.doc.url;
    EXPECT_EQ(roundtripped.similarity, original.similarity)
        << entry.doc.url;  // exact doubles
  }
}

}  // namespace
}  // namespace cafc::ipc
