#include "core/corpus.h"

#include <type_traits>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "core/dataset.h"
#include "core/ingest.h"
#include "util/thread_pool.h"
#include "web/synthesizer.h"

namespace cafc {
namespace {

static_assert(!std::is_copy_constructible_v<Corpus>,
              "Corpus owns the dictionary and DF state; copying would fork it");
static_assert(!std::is_copy_assignable_v<Corpus>);
static_assert(std::is_move_constructible_v<Corpus>);
static_assert(std::is_move_assignable_v<Corpus>);

web::SynthesizerConfig SmallConfig(uint32_t seed) {
  web::SynthesizerConfig config;
  config.seed = seed;
  config.form_pages_total = 48;
  config.single_attribute_forms = 6;
  config.homogeneous_hubs_per_domain = 20;
  config.mixed_hubs = 30;
  config.directory_hubs = 3;
  config.large_air_hotel_hubs = 3;
  config.non_searchable_form_pages = 2;
  config.noise_pages = 2;
  config.outlier_pages = 0;
  return config;
}

Corpus BuildSmallCorpus(uint32_t seed) {
  web::SyntheticWeb web = web::Synthesizer(SmallConfig(seed)).Generate();
  Result<CorpusBuild> build = BuildCorpus(web);
  EXPECT_TRUE(build.ok()) << build.status().ToString();
  return std::move(build->corpus);
}

/// Bit-identity between an epoch snapshot and a from-scratch rebuild:
/// URLs, both weighted vectors, dictionary, and per-space statistics.
void ExpectSetsIdentical(const FormPageSet& a, const FormPageSet& b) {
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a.page(i).url, b.page(i).url) << i;
    EXPECT_EQ(a.page(i).pc, b.page(i).pc) << a.page(i).url;
    EXPECT_EQ(a.page(i).fc, b.page(i).fc) << a.page(i).url;
  }
  ASSERT_EQ(a.dictionary().size(), b.dictionary().size());
  EXPECT_EQ(a.pc_stats().num_documents(), b.pc_stats().num_documents());
  EXPECT_EQ(a.fc_stats().num_documents(), b.fc_stats().num_documents());
  for (vsm::TermId id = 0; id < a.dictionary().size(); ++id) {
    ASSERT_EQ(a.dictionary().term(id), b.dictionary().term(id)) << id;
    EXPECT_EQ(a.pc_stats().DocumentFrequency(id),
              b.pc_stats().DocumentFrequency(id))
        << a.dictionary().term(id);
    EXPECT_EQ(a.fc_stats().DocumentFrequency(id),
              b.fc_stats().DocumentFrequency(id))
        << a.dictionary().term(id);
  }
}

TEST(CorpusTest, StartsEmptyAtVersionZero) {
  Corpus corpus;
  EXPECT_EQ(corpus.size(), 0u);
  EXPECT_EQ(corpus.version(), 0u);
  EXPECT_EQ(corpus.epoch(), 0u);
  EXPECT_FALSE(corpus.Contains("http://nowhere.com/"));
}

TEST(CorpusTest, StreamingBuildMatchesBatchPipeline) {
  // The streaming-ingest corpus must be bit-identical to the historical
  // one-shot BuildDataset + BuildFormPageSet over the same web.
  web::SyntheticWeb web = web::Synthesizer(SmallConfig(11)).Generate();
  Result<CorpusBuild> build = BuildCorpus(web);
  ASSERT_TRUE(build.ok()) << build.status().ToString();
  Result<Dataset> dataset = BuildDataset(web);
  ASSERT_TRUE(dataset.ok());
  FormPageSet batch = BuildFormPageSet(*dataset);
  ExpectSetsIdentical(build->corpus.Weighted(), batch);
}

TEST(CorpusTest, EpochMatchesRebuildAfterGrowth) {
  Corpus corpus = BuildSmallCorpus(11);
  Corpus incoming = BuildSmallCorpus(12);  // different web, different pages
  std::vector<DatasetEntry> pages = incoming.TakeEntries();
  Result<size_t> added = corpus.AddPages(std::move(pages));
  ASSERT_TRUE(added.ok()) << added.status().ToString();
  EXPECT_GT(*added, 0u);
  ExpectSetsIdentical(corpus.Weighted(),
                      BuildFormPageSet(corpus.SnapshotDataset()));
}

TEST(CorpusTest, DuplicateUrlsAreSkipped) {
  Corpus corpus = BuildSmallCorpus(11);
  size_t size_before = corpus.size();
  uint64_t version_before = corpus.version();
  std::vector<DatasetEntry> again = corpus.SnapshotDataset().entries;
  Result<size_t> added = corpus.AddPages(std::move(again));
  ASSERT_TRUE(added.ok());
  EXPECT_EQ(*added, 0u);
  EXPECT_EQ(corpus.size(), size_before);
  // A no-op batch must not invalidate the derived epoch.
  EXPECT_EQ(corpus.version(), version_before);
}

TEST(CorpusTest, RemovePagesShrinksAndStaysRebuildIdentical) {
  Corpus corpus = BuildSmallCorpus(11);
  size_t n = corpus.size();
  ASSERT_GE(n, 4u);
  std::vector<std::string> victims = {corpus.entries()[0].doc.url,
                                      corpus.entries()[n / 2].doc.url,
                                      "http://never-crawled.example/"};
  EXPECT_EQ(corpus.RemovePages(victims), 2u);  // unknown URL ignored
  EXPECT_EQ(corpus.size(), n - 2);
  EXPECT_FALSE(corpus.Contains(victims[0]));
  ExpectSetsIdentical(corpus.Weighted(),
                      BuildFormPageSet(corpus.SnapshotDataset()));
}

TEST(CorpusTest, RemoveReAddReusesUntouchedVectors) {
  Corpus corpus = BuildSmallCorpus(11);
  corpus.Weighted();  // settle an epoch
  size_t n = corpus.size();
  ASSERT_GE(n, 2u);
  DatasetEntry victim = corpus.entries()[n / 2];
  ASSERT_EQ(corpus.RemovePages({victim.doc.url}), 1u);
  Result<size_t> re_added = corpus.AddPages({std::move(victim)});
  ASSERT_TRUE(re_added.ok());
  ASSERT_EQ(*re_added, 1u);
  const FormPageSet& derived = corpus.Weighted();
  // N and every df net out, so no IDF moved: only the re-added page's two
  // vectors are recomputed, everything else is carried over verbatim.
  EXPECT_EQ(corpus.last_derive().dirty_terms_pc, 0u);
  EXPECT_EQ(corpus.last_derive().dirty_terms_fc, 0u);
  EXPECT_EQ(corpus.last_derive().vectors_recomputed, 2u);
  EXPECT_EQ(corpus.last_derive().vectors_reused, 2 * (n - 1));
  ExpectSetsIdentical(derived, BuildFormPageSet(corpus.SnapshotDataset()));
}

TEST(CorpusTest, VersionAndEpochBookkeeping) {
  Corpus corpus = BuildSmallCorpus(11);
  uint64_t v = corpus.version();
  EXPECT_GT(v, 0u);
  EXPECT_LT(corpus.epoch(), v);  // BuildCorpus leaves the derive lazy
  corpus.Weighted();
  EXPECT_EQ(corpus.epoch(), v);
  std::string url = corpus.entries()[0].doc.url;
  corpus.RemovePages({url});
  EXPECT_GT(corpus.version(), v);
  EXPECT_LT(corpus.epoch(), corpus.version());  // stale until derive
  corpus.Weighted();
  EXPECT_EQ(corpus.epoch(), corpus.version());
  EXPECT_EQ(corpus.last_derive().epoch, corpus.epoch());
  // Removing an unknown URL is a no-op and must not bump the version.
  uint64_t settled = corpus.version();
  EXPECT_EQ(corpus.RemovePages({"http://never-crawled.example/"}), 0u);
  EXPECT_EQ(corpus.version(), settled);
}

TEST(CorpusTest, CrossCorpusGrowTranslatesDictionaries) {
  // Entries exported from a corpus with its own dictionary resolve by term
  // string when absorbed into another corpus (the grow path).
  Corpus a = BuildSmallCorpus(11);
  Corpus b = BuildSmallCorpus(12);
  size_t size_a = a.size();
  size_t size_b = b.size();
  ASSERT_GT(size_b, 0u);
  Result<size_t> added = a.AddPages(b.TakeEntries());
  ASSERT_TRUE(added.ok()) << added.status().ToString();
  EXPECT_EQ(*added, size_b);
  EXPECT_EQ(a.size(), size_a + size_b);
  ExpectSetsIdentical(a.Weighted(), BuildFormPageSet(a.SnapshotDataset()));
}

TEST(CorpusTest, AddRejectsOutOfRangeIds) {
  Corpus corpus = BuildSmallCorpus(11);
  size_t size_before = corpus.size();
  DatasetEntry bogus;
  bogus.doc.url = "http://bogus.example/";
  bogus.doc.page_terms = {
      {static_cast<vsm::TermId>(corpus.dictionary()->size() + 1000),
       vsm::Location::kPageBody}};
  Result<size_t> added = corpus.AddPages({std::move(bogus)});
  ASSERT_FALSE(added.ok());
  EXPECT_EQ(added.status().code(), StatusCode::kInvalidArgument);
  // Failed batches are all-or-nothing.
  EXPECT_EQ(corpus.size(), size_before);
  EXPECT_FALSE(corpus.Contains("http://bogus.example/"));
}

TEST(CorpusTest, EpochsAreThreadCountInvariant) {
  // The same growth schedule at 1 and at 4 threads must produce
  // bit-identical epochs (profiles and vectors are pure per-page work over
  // fixed grains; everything order-dependent is serial).
  auto grow = [](int threads) {
    util::ScopedThreads scoped(threads);
    Corpus corpus = BuildSmallCorpus(11);
    Corpus incoming = BuildSmallCorpus(12);
    Result<size_t> added = corpus.AddPages(incoming.TakeEntries());
    EXPECT_TRUE(added.ok());
    corpus.Weighted();
    return corpus;
  };
  Corpus serial = grow(1);
  Corpus parallel = grow(4);
  ExpectSetsIdentical(serial.Weighted(), parallel.Weighted());
}

TEST(CorpusTest, TakeEntriesLeavesCorpusEmpty) {
  Corpus corpus = BuildSmallCorpus(11);
  size_t n = corpus.size();
  std::vector<DatasetEntry> entries = corpus.TakeEntries();
  EXPECT_EQ(entries.size(), n);
  EXPECT_EQ(corpus.size(), 0u);
  EXPECT_EQ(corpus.version(), 0u);
  EXPECT_EQ(corpus.epoch(), 0u);
}

}  // namespace
}  // namespace cafc
