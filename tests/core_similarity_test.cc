#include <gtest/gtest.h>

#include "core/centroid_model.h"
#include "core/form_page.h"

namespace cafc {
namespace {

FormPage MakePage(std::vector<vsm::Entry> pc, std::vector<vsm::Entry> fc) {
  FormPage page;
  page.pc = vsm::SparseVector::FromUnsorted(std::move(pc));
  page.fc = vsm::SparseVector::FromUnsorted(std::move(fc));
  return page;
}

TEST(FormPageSimilarityTest, FcOnlyIgnoresPc) {
  FormPage a = MakePage({{0, 1.0}}, {{10, 1.0}});
  FormPage b = MakePage({{1, 1.0}}, {{10, 1.0}});  // orthogonal PC, same FC
  EXPECT_NEAR(FormPageSimilarity(a, b, ContentConfig::kFcOnly), 1.0, 1e-12);
  EXPECT_NEAR(FormPageSimilarity(a, b, ContentConfig::kPcOnly), 0.0, 1e-12);
}

TEST(FormPageSimilarityTest, CombinedIsAverageWithUnitWeights) {
  FormPage a = MakePage({{0, 1.0}}, {{10, 1.0}});
  FormPage b = MakePage({{0, 1.0}}, {{11, 1.0}});  // same PC, orthogonal FC
  EXPECT_NEAR(FormPageSimilarity(a, b, ContentConfig::kFcPlusPc), 0.5, 1e-12);
}

TEST(FormPageSimilarityTest, WeightsShiftTheAverage) {
  FormPage a = MakePage({{0, 1.0}}, {{10, 1.0}});
  FormPage b = MakePage({{0, 1.0}}, {{11, 1.0}});
  SimilarityWeights weights;
  weights.page = 3.0;  // C1
  weights.form = 1.0;  // C2
  // (3*1 + 1*0) / 4 = 0.75
  EXPECT_NEAR(
      FormPageSimilarity(a, b, ContentConfig::kFcPlusPc, weights), 0.75,
      1e-12);
}

TEST(FormPageSimilarityTest, ZeroWeightsSafe) {
  FormPage a = MakePage({{0, 1.0}}, {{10, 1.0}});
  SimilarityWeights weights;
  weights.page = 0.0;
  weights.form = 0.0;
  EXPECT_DOUBLE_EQ(
      FormPageSimilarity(a, a, ContentConfig::kFcPlusPc, weights), 0.0);
}

TEST(FormPageSimilarityTest, SelfSimilarityIsOne) {
  FormPage a = MakePage({{0, 2.0}, {3, 1.0}}, {{10, 1.0}});
  EXPECT_NEAR(FormPageSimilarity(a, a, ContentConfig::kFcPlusPc), 1.0, 1e-12);
}

TEST(FormPageSimilarityTest, EmptyFcActsAsZeroSimilarity) {
  // A single-attribute form page with (near) empty FC: the FC cosine is 0,
  // the combined score is half the PC cosine.
  FormPage a = MakePage({{0, 1.0}}, {});
  FormPage b = MakePage({{0, 1.0}}, {{10, 1.0}});
  EXPECT_NEAR(FormPageSimilarity(a, b, ContentConfig::kFcPlusPc), 0.5, 1e-12);
}

TEST(ContentConfigNameTest, Names) {
  EXPECT_EQ(ContentConfigName(ContentConfig::kFcOnly), "FC");
  EXPECT_EQ(ContentConfigName(ContentConfig::kPcOnly), "PC");
  EXPECT_EQ(ContentConfigName(ContentConfig::kFcPlusPc), "FC+PC");
}

TEST(ComputeCentroidTest, AveragesBothSpaces) {
  std::vector<FormPage> pages;
  pages.push_back(MakePage({{0, 2.0}}, {{10, 4.0}}));
  pages.push_back(MakePage({{1, 2.0}}, {{10, 0.0}}));
  CentroidPair c = ComputeCentroid(pages, {0, 1});
  EXPECT_DOUBLE_EQ(c.pc.Get(0), 1.0);
  EXPECT_DOUBLE_EQ(c.pc.Get(1), 1.0);
  EXPECT_DOUBLE_EQ(c.fc.Get(10), 2.0);
}

TEST(ComputeCentroidTest, SubsetOnly) {
  std::vector<FormPage> pages;
  pages.push_back(MakePage({{0, 1.0}}, {}));
  pages.push_back(MakePage({{0, 3.0}}, {}));
  pages.push_back(MakePage({{0, 100.0}}, {}));
  CentroidPair c = ComputeCentroid(pages, {0, 1});
  EXPECT_DOUBLE_EQ(c.pc.Get(0), 2.0);
}

TEST(PageCentroidSimilarityTest, MatchesPagePageWhenCentroidIsPage) {
  FormPage a = MakePage({{0, 1.0}, {1, 2.0}}, {{10, 1.0}});
  FormPage b = MakePage({{0, 2.0}}, {{10, 1.0}, {11, 1.0}});
  CentroidPair c;
  c.pc = b.pc;
  c.fc = b.fc;
  EXPECT_NEAR(PageCentroidSimilarity(a, c, ContentConfig::kFcPlusPc),
              FormPageSimilarity(a, b, ContentConfig::kFcPlusPc), 1e-12);
}

TEST(CentroidModelTest, SimilarityAndRecompute) {
  FormPageSet set;
  set.mutable_pages()->push_back(MakePage({{0, 1.0}}, {{10, 1.0}}));
  set.mutable_pages()->push_back(MakePage({{1, 1.0}}, {{11, 1.0}}));
  FormPageCentroidModel model(&set, 2, ContentConfig::kFcPlusPc);
  model.RecomputeCentroid(0, {0});
  model.RecomputeCentroid(1, {1});
  EXPECT_NEAR(model.Similarity(0, 0), 1.0, 1e-12);
  EXPECT_NEAR(model.Similarity(0, 1), 0.0, 1e-12);
  EXPECT_EQ(model.num_points(), 2u);
  EXPECT_EQ(model.num_clusters(), 2);
}

TEST(CentroidModelTest, EmptyMembersKeepPreviousCentroid) {
  FormPageSet set;
  set.mutable_pages()->push_back(MakePage({{0, 1.0}}, {}));
  FormPageCentroidModel model(&set, 1, ContentConfig::kPcOnly);
  model.RecomputeCentroid(0, {0});
  double before = model.Similarity(0, 0);
  model.RecomputeCentroid(0, {});
  EXPECT_DOUBLE_EQ(model.Similarity(0, 0), before);
}

}  // namespace
}  // namespace cafc
