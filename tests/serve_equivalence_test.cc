// Concurrency contract of the serving layer, run under TSan in CI:
//  - responses from N concurrent clients are bit-identical to serial
//    library calls at the response's snapshot version, at every worker
//    count {1, 2, 4, 8};
//  - a refresh storm under query load never produces a torn epoch — every
//    response validates against the serial oracle of the exact snapshot
//    version it reports, and the final published version is the last one.

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <sstream>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "core/cafc.h"
#include "core/corpus.h"
#include "core/ingest.h"
#include "serve/server.h"
#include "util/rng.h"
#include "web/synthesizer.h"

namespace cafc {
namespace {

using serve::DirectoryServer;
using serve::DirectoryServerOptions;
using serve::QueryKind;
using serve::QueryRequest;
using serve::QueryResponse;

constexpr uint32_t kBaseSeed = 21;
constexpr size_t kBasePages = 48;
constexpr size_t kRefreshRounds = 3;
constexpr size_t kBatchPages = 12;

const char* kQueries[] = {"job career employ", "hotel room",
                          "flight airline ticket", "music cd artist",
                          "book author"};

web::SynthesizerConfig GrowConfig(uint32_t seed, size_t form_pages) {
  web::SynthesizerConfig config;
  config.seed = seed;
  config.form_pages_total = form_pages;
  config.single_attribute_forms = form_pages / 8;
  config.homogeneous_hubs_per_domain = 20;
  config.mixed_hubs = 30;
  config.directory_hubs = 3;
  config.large_air_hotel_hubs = 3;
  config.non_searchable_form_pages = 2;
  config.noise_pages = 2;
  config.outlier_pages = 0;
  return config;
}

Corpus GrowCorpus(uint32_t seed, size_t form_pages) {
  web::SyntheticWeb web =
      web::Synthesizer(GrowConfig(seed, form_pages)).Generate();
  Result<CorpusBuild> build = BuildCorpus(web);
  EXPECT_TRUE(build.ok()) << build.status().ToString();
  return std::move(build->corpus);
}

DatabaseDirectory BuildDirectory(Corpus& corpus) {
  Rng rng(1234);
  cluster::Clustering clustering =
      CafcC(corpus.Weighted(), 6, CafcOptions{}, &rng);
  return DatabaseDirectory::Build(
      corpus.Weighted(), clustering,
      DatabaseDirectory::AutoLabels(corpus.Weighted(), clustering));
}

/// Serial oracle answers at one snapshot version: classification per probe
/// document, hits per canned query.
struct ExpectedAtVersion {
  std::vector<DatabaseDirectory::Classification> classify;
  std::vector<std::vector<DatabaseDirectory::SearchHit>> search;
};

ExpectedAtVersion Snapshot(const DatabaseDirectory& directory,
                           const std::vector<forms::FormPageDocument>& docs) {
  ExpectedAtVersion expected;
  for (const forms::FormPageDocument& doc : docs) {
    expected.classify.push_back(directory.ClassifyDocument(doc));
  }
  for (const char* q : kQueries) {
    expected.search.push_back(directory.Search(q, 5));
  }
  return expected;
}

/// Validates one OK response against the oracle of its reported version.
/// Returns an empty string on bit-exact match.
std::string Validate(const QueryResponse& response, size_t doc_index,
                     size_t query_index,
                     const std::map<uint64_t, ExpectedAtVersion>& oracle) {
  auto it = oracle.find(response.snapshot_version);
  if (it == oracle.end()) {
    return "unknown snapshot version " +
           std::to_string(response.snapshot_version);
  }
  std::ostringstream err;
  if (doc_index != static_cast<size_t>(-1)) {
    const DatabaseDirectory::Classification& want =
        it->second.classify[doc_index];
    if (response.classification.entry != want.entry ||
        response.classification.similarity != want.similarity) {
      err << "classify doc " << doc_index << " @v"
          << response.snapshot_version << ": got ("
          << response.classification.entry << ", "
          << response.classification.similarity << ") want (" << want.entry
          << ", " << want.similarity << ")";
      return err.str();
    }
  } else {
    const std::vector<DatabaseDirectory::SearchHit>& want =
        it->second.search[query_index];
    if (response.hits.size() != want.size()) {
      return "search size mismatch @v" +
             std::to_string(response.snapshot_version);
    }
    for (size_t i = 0; i < want.size(); ++i) {
      if (response.hits[i].entry != want[i].entry ||
          response.hits[i].similarity != want[i].similarity) {
        err << "search " << query_index << " hit " << i << " @v"
            << response.snapshot_version << " differs";
        return err.str();
      }
    }
  }
  return "";
}

class ServeEquivalenceTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    // Probe documents: the base collection, frozen before any refresh.
    Corpus oracle_corpus = GrowCorpus(kBaseSeed, kBasePages);
    DatabaseDirectory oracle = BuildDirectory(oracle_corpus);
    docs_ = new std::vector<forms::FormPageDocument>();
    for (const DatasetEntry& e : oracle_corpus.entries()) {
      docs_->push_back(e.doc);
    }
    // Oracle table: serial answers at version 1, then after each refresh
    // batch (versions 2 .. kRefreshRounds+1). The server replays the same
    // batches; the determinism contract makes the replica bit-identical.
    oracle_ = new std::map<uint64_t, ExpectedAtVersion>();
    (*oracle_)[1] = Snapshot(oracle, *docs_);
    for (size_t r = 0; r < kRefreshRounds; ++r) {
      Corpus batch = GrowCorpus(BatchSeed(r), kBatchPages);
      ASSERT_TRUE(oracle_corpus.AddPages(batch.TakeEntries()).ok());
      ASSERT_TRUE(oracle.Refresh(oracle_corpus).ok());
      (*oracle_)[2 + r] = Snapshot(oracle, *docs_);
    }
  }
  static void TearDownTestSuite() {
    delete docs_;
    delete oracle_;
    docs_ = nullptr;
    oracle_ = nullptr;
  }

  static uint32_t BatchSeed(size_t round) {
    return 100 + static_cast<uint32_t>(round);
  }

  static std::vector<forms::FormPageDocument>* docs_;
  static std::map<uint64_t, ExpectedAtVersion>* oracle_;
};

std::vector<forms::FormPageDocument>* ServeEquivalenceTest::docs_ = nullptr;
std::map<uint64_t, ExpectedAtVersion>* ServeEquivalenceTest::oracle_ =
    nullptr;

TEST_F(ServeEquivalenceTest, EveryWorkerCountMatchesSerialBitExactly) {
  for (size_t workers : {1u, 2u, 4u, 8u}) {
    Corpus corpus = GrowCorpus(kBaseSeed, kBasePages);
    DatabaseDirectory directory = BuildDirectory(corpus);
    DirectoryServerOptions options;
    options.workers = workers;
    options.queue_capacity = 1024;
    DirectoryServer server(std::move(directory), std::move(corpus), options);

    constexpr size_t kClients = 4;
    constexpr size_t kPerClient = 24;
    std::mutex failures_mutex;
    std::vector<std::string> failures;
    std::vector<std::thread> clients;
    for (size_t c = 0; c < kClients; ++c) {
      clients.emplace_back([&, c] {
        for (size_t i = 0; i < kPerClient; ++i) {
          const size_t pick = (c * kPerClient + i * 7) % (docs_->size() + 5);
          QueryRequest request;
          size_t doc_index = static_cast<size_t>(-1);
          size_t query_index = 0;
          if (pick < docs_->size()) {
            request.kind = QueryKind::kClassify;
            request.doc = (*docs_)[pick];
            doc_index = pick;
          } else {
            request.kind = QueryKind::kSearch;
            query_index = pick - docs_->size();
            request.query = kQueries[query_index];
          }
          QueryResponse response = server.Query(std::move(request));
          if (!response.status.ok()) {
            std::lock_guard<std::mutex> lock(failures_mutex);
            failures.push_back(response.status.ToString());
            continue;
          }
          std::string err =
              Validate(response, doc_index, query_index, *oracle_);
          if (!err.empty()) {
            std::lock_guard<std::mutex> lock(failures_mutex);
            failures.push_back("workers=" + std::to_string(workers) + ": " +
                               err);
          }
        }
      });
    }
    for (std::thread& t : clients) t.join();
    EXPECT_TRUE(failures.empty())
        << failures.size() << " mismatches at workers=" << workers
        << ", first: " << failures.front();
    EXPECT_EQ(server.Stats().completed, kClients * kPerClient);
  }
}

TEST_F(ServeEquivalenceTest, RefreshStormUnderLoadHasNoTornEpoch) {
  Corpus corpus = GrowCorpus(kBaseSeed, kBasePages);
  DatabaseDirectory directory = BuildDirectory(corpus);
  DirectoryServerOptions options;
  options.workers = 4;
  options.queue_capacity = 4096;
  DirectoryServer server(std::move(directory), std::move(corpus), options);

  std::atomic<bool> stop{false};
  std::mutex failures_mutex;
  std::vector<std::string> failures;
  std::atomic<uint64_t> versions_seen_mask{0};

  constexpr size_t kClients = 4;
  std::vector<std::thread> clients;
  for (size_t c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      size_t i = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        const size_t pick = (c + i * 13) % (docs_->size() + 5);
        QueryRequest request;
        size_t doc_index = static_cast<size_t>(-1);
        size_t query_index = 0;
        if (pick < docs_->size()) {
          request.kind = QueryKind::kClassify;
          request.doc = (*docs_)[pick];
          doc_index = pick;
        } else {
          request.kind = QueryKind::kSearch;
          query_index = pick - docs_->size();
          request.query = kQueries[query_index];
        }
        QueryResponse response = server.Query(std::move(request));
        ++i;
        if (!response.status.ok()) continue;  // shed under storm: fine
        versions_seen_mask.fetch_or(uint64_t{1}
                                        << response.snapshot_version,
                                    std::memory_order_relaxed);
        // A torn epoch — any field computed against a different snapshot
        // than the one the response claims — fails this bit-exact check.
        std::string err = Validate(response, doc_index, query_index, *oracle_);
        if (!err.empty()) {
          std::lock_guard<std::mutex> lock(failures_mutex);
          failures.push_back(err);
        }
      }
    });
  }

  // The storm: all refresh batches scheduled while clients hammer away.
  for (size_t r = 0; r < kRefreshRounds; ++r) {
    Corpus batch = GrowCorpus(BatchSeed(r), kBatchPages);
    ASSERT_TRUE(server.ScheduleRefresh(batch.TakeEntries()).ok());
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  server.WaitForRefreshes();
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  stop.store(true);
  for (std::thread& t : clients) t.join();

  EXPECT_TRUE(failures.empty())
      << failures.size() << " torn/mismatched responses, first: "
      << failures.front();
  EXPECT_EQ(server.snapshot()->version(), 1 + kRefreshRounds);
  EXPECT_EQ(server.Stats().refreshes, kRefreshRounds);
  EXPECT_EQ(server.Stats().refresh_failures, 0u);
  // The final epoch is always observed by the post-storm queries; earlier
  // epochs may or may not be, depending on scheduling.
  EXPECT_NE(versions_seen_mask.load() &
                (uint64_t{1} << (1 + kRefreshRounds)),
            0u);

  // After the storm settles, serial and served answers agree at the final
  // version for every probe document.
  for (size_t i = 0; i < docs_->size(); ++i) {
    QueryRequest request;
    request.kind = QueryKind::kClassify;
    request.doc = (*docs_)[i];
    QueryResponse response = server.Query(std::move(request));
    ASSERT_TRUE(response.status.ok());
    EXPECT_EQ(response.snapshot_version, 1 + kRefreshRounds);
    std::string err = Validate(response, i, 0, *oracle_);
    EXPECT_TRUE(err.empty()) << err;
  }
}

}  // namespace
}  // namespace cafc
