// Bit-identity contract of the pruned (Hamerly-bound) assignment kernel
// and the deterministic mini-batch mode against the exact O(n*k) scan —
// including the edge cases where tie-breaking and bound invalidation are
// easiest to get wrong: duplicate points, orthogonal single-term vectors,
// clusters that empty out mid-run, and more clusters than points. Every
// comparison is repeated at thread counts {1, 2, 8}.

#include <gtest/gtest.h>

#include <vector>

#include "core/cafc.h"
#include "core/centroid_model.h"
#include "core/stream_ingest.h"
#include "util/rng.h"
#include "util/thread_pool.h"
#include "web/stream_synthesizer.h"

namespace cafc {
namespace {

using cluster::AssignmentKernel;
using cluster::Clustering;
using cluster::KMeansOptions;
using cluster::KMeansStats;

/// A hand-built page set: each row is (term, weight) pairs for PC; FC
/// mirrors PC so both spaces participate.
FormPageSet MakePages(
    const std::vector<std::vector<std::pair<vsm::TermId, double>>>& rows) {
  FormPageSet pages;
  for (size_t i = 0; i < rows.size(); ++i) {
    FormPage page;
    page.url = "http://p" + std::to_string(i) + ".test/";
    std::vector<vsm::Entry> entries;
    for (auto [term, weight] : rows[i]) entries.push_back({term, weight});
    page.pc = vsm::SparseVector::FromUnsorted(entries);
    page.fc = page.pc;
    pages.mutable_pages()->push_back(std::move(page));
  }
  return pages;
}

/// Runs KMeans over a fresh FormPageCentroidModel with the given kernel.
Clustering RunKernel(const FormPageSet& pages,
               const std::vector<std::vector<size_t>>& seeds,
               AssignmentKernel kernel, KMeansStats* stats = nullptr,
               size_t minibatch = 0) {
  FormPageCentroidModel model(&pages, static_cast<int>(seeds.size()),
                              ContentConfig::kFcPlusPc);
  KMeansOptions options;
  options.kernel = kernel;
  options.minibatch_size = minibatch;
  return cluster::KMeans(&model, seeds, options, stats);
}

/// Exact and pruned kernels must agree bit-for-bit at every thread count.
void ExpectKernelsAgree(const FormPageSet& pages,
                        const std::vector<std::vector<size_t>>& seeds) {
  for (int threads : {1, 2, 8}) {
    util::ScopedThreads scoped(threads);
    KMeansStats exact_stats, pruned_stats;
    Clustering exact = RunKernel(pages, seeds, AssignmentKernel::kExact,
                           &exact_stats);
    Clustering pruned = RunKernel(pages, seeds, AssignmentKernel::kPruned,
                            &pruned_stats);
    EXPECT_EQ(exact.assignment, pruned.assignment) << threads << " threads";
    EXPECT_EQ(exact.num_clusters, pruned.num_clusters);
    EXPECT_EQ(exact_stats.iterations, pruned_stats.iterations);
    EXPECT_FALSE(exact_stats.pruned_kernel);
    EXPECT_TRUE(pruned_stats.pruned_kernel);
    EXPECT_LE(pruned_stats.similarity_evals, exact_stats.similarity_evals);
  }
}

TEST(PrunedKMeansTest, DuplicatePoints) {
  // Three copies of each of three distinct points: ties everywhere, and
  // the winner must be the same first-centroid-wins choice in both
  // kernels.
  FormPageSet pages = MakePages({{{0, 1.0}},
                                 {{0, 1.0}},
                                 {{0, 1.0}},
                                 {{1, 1.0}, {2, 0.5}},
                                 {{1, 1.0}, {2, 0.5}},
                                 {{1, 1.0}, {2, 0.5}},
                                 {{3, 2.0}},
                                 {{3, 2.0}},
                                 {{3, 2.0}}});
  ExpectKernelsAgree(pages, {{0}, {3}, {6}});
}

TEST(PrunedKMeansTest, SingleTermOrthogonalVectors) {
  // Every page is one term, every cross-cluster similarity is exactly 0 —
  // the all-ties regime where any pruning sloppiness changes the result.
  std::vector<std::vector<std::pair<vsm::TermId, double>>> rows;
  for (vsm::TermId t = 0; t < 10; ++t) {
    rows.push_back({{t, 1.0 + 0.1 * static_cast<double>(t)}});
  }
  ExpectKernelsAgree(MakePages(rows), {{0}, {4}, {9}});
}

TEST(PrunedKMeansTest, MoreClustersThanPoints) {
  // k = 6 seed clusters over n = 4 points (duplicated seed members), so
  // some clusters are born empty and stay empty.
  FormPageSet pages = MakePages(
      {{{0, 1.0}}, {{1, 1.0}}, {{0, 1.0}, {1, 1.0}}, {{2, 1.0}}});
  ExpectKernelsAgree(pages, {{0}, {1}, {2}, {3}, {0}, {1}});
}

TEST(PrunedKMeansTest, ClustersEmptyOutMidRun) {
  // Two tight groups plus a seed between them that loses every point
  // after the first recompute: its later RecomputeCentroid calls see an
  // empty member list and must keep the old centroid without breaking the
  // drift bounds.
  FormPageSet pages = MakePages({{{0, 1.0}},
                                 {{0, 1.0}, {1, 0.05}},
                                 {{0, 1.0}, {2, 0.05}},
                                 {{5, 1.0}},
                                 {{5, 1.0}, {6, 0.05}},
                                 {{5, 1.0}, {7, 0.05}},
                                 {{0, 0.5}, {5, 0.5}}});
  ExpectKernelsAgree(pages, {{0}, {3}, {6}});
}

TEST(PrunedKMeansTest, StreamedCorpusEquivalenceAcrossThreadCounts) {
  // Realistic vectors: a streamed 150-site corpus, full CAFC-C runs with
  // both kernels from the same RNG seed.
  web::StreamingWebConfig config;
  config.seed = 3;
  config.sites = 150;
  web::StreamingWeb web(config);
  Result<StreamedCorpusBuild> build = BuildStreamedCorpus(web);
  ASSERT_TRUE(build.ok());
  const FormPageSet& pages = build->corpus.Weighted();

  Clustering reference;
  for (int threads : {1, 2, 8}) {
    CafcOptions exact_options;
    exact_options.threads = threads;
    exact_options.kmeans.kernel = AssignmentKernel::kExact;
    // Run to exact convergence: the paper's 10% movement stop quits after
    // two iterations here, before the bounds have anything to prune.
    exact_options.kmeans.movement_stop_fraction = 0.001;
    CafcOptions pruned_options = exact_options;
    pruned_options.kmeans.kernel = AssignmentKernel::kPruned;

    Rng exact_rng(99), pruned_rng(99);
    KMeansStats exact_stats, pruned_stats;
    Clustering exact = CafcC(pages, 8, exact_options, &exact_rng,
                             &exact_stats);
    Clustering pruned = CafcC(pages, 8, pruned_options, &pruned_rng,
                              &pruned_stats);
    EXPECT_EQ(exact.assignment, pruned.assignment) << threads << " threads";
    EXPECT_EQ(exact_stats.iterations, pruned_stats.iterations);
    EXPECT_GT(pruned_stats.bound_skips, 0u);
    EXPECT_GT(pruned_stats.centroid_prunes, 0u);
    EXPECT_LT(pruned_stats.similarity_evals, exact_stats.similarity_evals);
    if (threads == 1) {
      reference = exact;
    } else {
      EXPECT_EQ(exact.assignment, reference.assignment);
    }
  }
}

TEST(PrunedKMeansTest, AutoKernelPrunesWhenTheModelTracksDrift) {
  FormPageSet pages = MakePages(
      {{{0, 1.0}}, {{0, 1.0}, {1, 0.2}}, {{2, 1.0}}, {{2, 1.0}, {3, 0.2}}});
  KMeansStats stats;
  Clustering c = RunKernel(pages, {{0}, {2}}, AssignmentKernel::kAuto, &stats);
  EXPECT_TRUE(stats.pruned_kernel);
  EXPECT_EQ(c.assignment, (std::vector<int>{0, 0, 1, 1}));
}

TEST(PrunedKMeansTest, FullSizedMinibatchMatchesTheClassicLoop) {
  // minibatch_size >= n must reduce to the classic full-batch loop —
  // identical assignment AND identical iteration count.
  web::StreamingWebConfig config;
  config.seed = 5;
  config.sites = 100;
  web::StreamingWeb web(config);
  Result<StreamedCorpusBuild> build = BuildStreamedCorpus(web);
  ASSERT_TRUE(build.ok());
  const FormPageSet& pages = build->corpus.Weighted();

  for (int threads : {1, 2, 8}) {
    CafcOptions classic;
    classic.threads = threads;
    CafcOptions full_batch = classic;
    full_batch.kmeans.minibatch_size = pages.size();

    Rng a(7), b(7);
    KMeansStats classic_stats, batch_stats;
    Clustering one = CafcC(pages, 8, classic, &a, &classic_stats);
    Clustering two = CafcC(pages, 8, full_batch, &b, &batch_stats);
    EXPECT_EQ(one.assignment, two.assignment) << threads << " threads";
    EXPECT_EQ(classic_stats.iterations, batch_stats.iterations);
  }
}

TEST(PrunedKMeansTest, MinibatchIsDeterministicAcrossThreadCounts) {
  web::StreamingWebConfig config;
  config.seed = 5;
  config.sites = 100;
  web::StreamingWeb web(config);
  Result<StreamedCorpusBuild> build = BuildStreamedCorpus(web);
  ASSERT_TRUE(build.ok());
  const FormPageSet& pages = build->corpus.Weighted();

  Clustering reference;
  for (int threads : {1, 2, 8}) {
    CafcOptions options;
    options.threads = threads;
    options.kmeans.minibatch_size = 25;  // several wrap-around slices
    Rng rng(13);
    Clustering c = CafcC(pages, 8, options, &rng);
    ASSERT_EQ(c.assignment.size(), pages.size());
    if (threads == 1) {
      reference = c;
    } else {
      EXPECT_EQ(c.assignment, reference.assignment) << threads << " threads";
    }
  }
}

}  // namespace
}  // namespace cafc
