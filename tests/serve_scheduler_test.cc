// Tests of the policy-ordered backlog behind the DirectoryServer's queue:
// FIFO arrival order, strict priority bands, earliest-deadline-first
// within a band, and admission-sequence tie-breaking. The scheduler is
// deliberately lock-free of the server so these rules are testable
// without threads.

#include "serve/scheduler.h"

#include <chrono>
#include <string>
#include <vector>

#include <gtest/gtest.h>

namespace cafc::serve {
namespace {

using TimePoint = RequestScheduler<int>::TimePoint;

TimePoint At(int ms) {
  return TimePoint{} + std::chrono::milliseconds(ms);
}

constexpr TimePoint kNoDeadline = TimePoint::max();

std::vector<int> Drain(RequestScheduler<int>* scheduler) {
  std::vector<int> order;
  int item = 0;
  while (scheduler->Pop(&item)) order.push_back(item);
  return order;
}

TEST(RequestSchedulerTest, FifoPreservesArrivalOrderAcrossPriorities) {
  RequestScheduler<int> fifo(SchedulingPolicy::kFifo);
  fifo.Push(QueryPriority::kBatch, At(1), 0);
  fifo.Push(QueryPriority::kInteractive, At(999), 1);
  fifo.Push(QueryPriority::kStandard, kNoDeadline, 2);
  fifo.Push(QueryPriority::kInteractive, At(5), 3);
  EXPECT_EQ(Drain(&fifo), (std::vector<int>{0, 1, 2, 3}));
}

TEST(RequestSchedulerTest, HigherBandAlwaysDrainsFirst) {
  RequestScheduler<int> sched(SchedulingPolicy::kPriorityDeadline);
  // Admit in worst order: batch first with the tightest deadlines.
  sched.Push(QueryPriority::kBatch, At(1), 0);
  sched.Push(QueryPriority::kBatch, At(2), 1);
  sched.Push(QueryPriority::kStandard, At(500), 2);
  sched.Push(QueryPriority::kInteractive, kNoDeadline, 3);
  sched.Push(QueryPriority::kInteractive, At(900), 4);
  // Interactive (deadlined before deadline-less) -> standard -> batch: a
  // tight batch deadline never jumps the band fence.
  EXPECT_EQ(Drain(&sched), (std::vector<int>{4, 3, 2, 0, 1}));
}

TEST(RequestSchedulerTest, EarliestDeadlineFirstWithinBand) {
  RequestScheduler<int> sched(SchedulingPolicy::kPriorityDeadline);
  sched.Push(QueryPriority::kStandard, At(30), 0);
  sched.Push(QueryPriority::kStandard, At(10), 1);
  sched.Push(QueryPriority::kStandard, At(20), 2);
  sched.Push(QueryPriority::kStandard, At(5), 3);
  EXPECT_EQ(Drain(&sched), (std::vector<int>{3, 1, 2, 0}));
}

TEST(RequestSchedulerTest, DeadlinelessSortsAfterDeadlinedFifoAmongSelves) {
  RequestScheduler<int> sched(SchedulingPolicy::kPriorityDeadline);
  sched.Push(QueryPriority::kStandard, kNoDeadline, 0);
  sched.Push(QueryPriority::kStandard, kNoDeadline, 1);
  sched.Push(QueryPriority::kStandard, At(10'000), 2);
  sched.Push(QueryPriority::kStandard, kNoDeadline, 3);
  // The lone deadlined request wins; the rest keep admission order.
  EXPECT_EQ(Drain(&sched), (std::vector<int>{2, 0, 1, 3}));
}

TEST(RequestSchedulerTest, EqualDeadlinesTieBreakByAdmissionSequence) {
  RequestScheduler<int> sched(SchedulingPolicy::kPriorityDeadline);
  for (int i = 0; i < 8; ++i) {
    sched.Push(QueryPriority::kInteractive, At(50), i);
  }
  EXPECT_EQ(Drain(&sched), (std::vector<int>{0, 1, 2, 3, 4, 5, 6, 7}));
}

TEST(RequestSchedulerTest, SizeTracksPushPopAcrossBands) {
  RequestScheduler<int> sched(SchedulingPolicy::kPriorityDeadline);
  EXPECT_TRUE(sched.empty());
  sched.Push(QueryPriority::kInteractive, At(1), 0);
  sched.Push(QueryPriority::kBatch, At(2), 1);
  EXPECT_EQ(sched.size(), 2u);
  int item = 0;
  ASSERT_TRUE(sched.Pop(&item));
  EXPECT_EQ(sched.size(), 1u);
  ASSERT_TRUE(sched.Pop(&item));
  EXPECT_TRUE(sched.empty());
  EXPECT_FALSE(sched.Pop(&item));
}

TEST(RequestSchedulerTest, InterleavedPushPopStaysMostUrgentFirst) {
  RequestScheduler<int> sched(SchedulingPolicy::kPriorityDeadline);
  sched.Push(QueryPriority::kStandard, At(100), 0);
  sched.Push(QueryPriority::kStandard, At(50), 1);
  int item = -1;
  ASSERT_TRUE(sched.Pop(&item));
  EXPECT_EQ(item, 1);
  // A later, tighter admission preempts the remaining backlog.
  sched.Push(QueryPriority::kStandard, At(10), 2);
  ASSERT_TRUE(sched.Pop(&item));
  EXPECT_EQ(item, 2);
  // And a higher band preempts regardless of deadline.
  sched.Push(QueryPriority::kInteractive, kNoDeadline, 3);
  ASSERT_TRUE(sched.Pop(&item));
  EXPECT_EQ(item, 3);
  ASSERT_TRUE(sched.Pop(&item));
  EXPECT_EQ(item, 0);
}

TEST(QueryPriorityTest, NamesRoundTripAndUnknownIsRejected) {
  for (QueryPriority p : {QueryPriority::kInteractive,
                          QueryPriority::kStandard, QueryPriority::kBatch}) {
    QueryPriority parsed = QueryPriority::kStandard;
    ASSERT_TRUE(ParseQueryPriority(QueryPriorityName(p), &parsed));
    EXPECT_EQ(parsed, p);
  }
  QueryPriority untouched = QueryPriority::kBatch;
  EXPECT_FALSE(ParseQueryPriority("urgent", &untouched));
  EXPECT_FALSE(ParseQueryPriority("", &untouched));
  EXPECT_FALSE(ParseQueryPriority("HIGH", &untouched));
  EXPECT_EQ(untouched, QueryPriority::kBatch);  // out untouched on failure
}

}  // namespace
}  // namespace cafc::serve
