#include "util/table.h"

#include <gtest/gtest.h>

namespace cafc {
namespace {

TEST(TableTest, RendersHeaderAndRows) {
  Table t({"name", "value"});
  t.AddRow({"alpha", "1"});
  t.AddRow({"b", "22"});
  std::string out = t.ToString();
  EXPECT_NE(out.find("| name "), std::string::npos);
  EXPECT_NE(out.find("| alpha "), std::string::npos);
  EXPECT_NE(out.find("| 22 "), std::string::npos);
}

TEST(TableTest, ColumnsAligned) {
  Table t({"h", "x"});
  t.AddRow({"longcell", "1"});
  std::string out = t.ToString();
  // Every line must have the same length (aligned columns).
  size_t line_len = out.find('\n');
  size_t pos = 0;
  while (pos < out.size()) {
    size_t next = out.find('\n', pos);
    ASSERT_NE(next, std::string::npos);
    EXPECT_EQ(next - pos, line_len);
    pos = next + 1;
  }
}

TEST(TableTest, ShortRowsPadded) {
  Table t({"a", "b", "c"});
  t.AddRow({"only"});
  std::string out = t.ToString();
  EXPECT_NE(out.find("| only "), std::string::npos);
}

TEST(TableTest, ExtraCellsWidenTable) {
  Table t({"a"});
  t.AddRow({"x", "extra"});
  std::string out = t.ToString();
  EXPECT_NE(out.find("extra"), std::string::npos);
}

TEST(TableTest, SeparatorRendersRule) {
  Table t({"a"});
  t.AddRow({"1"});
  t.AddSeparator();
  t.AddRow({"2"});
  std::string out = t.ToString();
  // rule appears: top, under header, separator, bottom = 4 occurrences.
  int rules = 0;
  size_t pos = 0;
  while ((pos = out.find("+--", pos)) != std::string::npos) {
    ++rules;
    pos += 3;
  }
  EXPECT_EQ(rules, 4);
}

TEST(TableTest, NumRows) {
  Table t({"a"});
  EXPECT_EQ(t.num_rows(), 0u);
  t.AddRow({"1"});
  t.AddSeparator();
  EXPECT_EQ(t.num_rows(), 2u);
}

TEST(TableTest, EmptyTableStillRenders) {
  Table t({"col"});
  std::string out = t.ToString();
  EXPECT_NE(out.find("col"), std::string::npos);
}

}  // namespace
}  // namespace cafc
