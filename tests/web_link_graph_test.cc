#include "web/link_graph.h"

#include <gtest/gtest.h>

namespace cafc::web {
namespace {

TEST(LinkGraphTest, InternAssignsDenseIds) {
  LinkGraph g;
  EXPECT_EQ(g.Intern("http://a.com/"), 0u);
  EXPECT_EQ(g.Intern("http://b.com/"), 1u);
  EXPECT_EQ(g.Intern("http://a.com/"), 0u);
  EXPECT_EQ(g.num_pages(), 2u);
}

TEST(LinkGraphTest, LookupUnknown) {
  LinkGraph g;
  EXPECT_EQ(g.Lookup("http://nope.com/"), kInvalidPageId);
}

TEST(LinkGraphTest, AddLinkPopulatesBothDirections) {
  LinkGraph g;
  g.AddLink("http://hub.com/", "http://page.com/");
  PageId hub = g.Lookup("http://hub.com/");
  PageId page = g.Lookup("http://page.com/");
  ASSERT_NE(hub, kInvalidPageId);
  ASSERT_NE(page, kInvalidPageId);
  EXPECT_EQ(g.OutLinks(hub), std::vector<PageId>{page});
  EXPECT_EQ(g.InLinks(page), std::vector<PageId>{hub});
  EXPECT_TRUE(g.OutLinks(page).empty());
  EXPECT_EQ(g.num_edges(), 1u);
}

TEST(LinkGraphTest, DuplicateEdgesIgnored) {
  LinkGraph g;
  g.AddLink("a://x", "a://y");
  g.AddLink("a://x", "a://y");
  EXPECT_EQ(g.num_edges(), 1u);
}

TEST(LinkGraphTest, SelfLinksIgnored) {
  LinkGraph g;
  g.AddLink("a://x", "a://x");
  EXPECT_EQ(g.num_edges(), 0u);
  EXPECT_TRUE(g.OutLinks(g.Lookup("a://x")).empty());
}

TEST(LinkGraphTest, UrlRoundTrip) {
  LinkGraph g;
  PageId id = g.Intern("http://x.com/page");
  EXPECT_EQ(g.url(id), "http://x.com/page");
}

TEST(LinkGraphTest, FanInAccumulates) {
  LinkGraph g;
  g.AddLink("h://1", "h://t");
  g.AddLink("h://2", "h://t");
  g.AddLink("h://3", "h://t");
  EXPECT_EQ(g.InLinks(g.Lookup("h://t")).size(), 3u);
  EXPECT_EQ(g.num_edges(), 3u);
}

}  // namespace
}  // namespace cafc::web
