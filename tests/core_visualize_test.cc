#include "core/visualize.h"

#include <gtest/gtest.h>

namespace cafc {
namespace {

FormPageSet TwoTopicPages() {
  FormPageSet set;
  for (int i = 0; i < 6; ++i) {
    FormPage page;
    page.url = "http://site" + std::to_string(i) + ".com/search";
    page.site = "site" + std::to_string(i) + ".com";
    page.pc = vsm::SparseVector::FromUnsorted(
        {{static_cast<vsm::TermId>(i / 3), 1.0}});
    page.fc = page.pc;
    set.mutable_pages()->push_back(std::move(page));
  }
  return set;
}

cluster::Clustering TwoClusters() {
  cluster::Clustering c;
  c.num_clusters = 2;
  c.assignment = {0, 0, 0, 1, 1, 1};
  return c;
}

TEST(VisualizeTest, WellFormedDot) {
  FormPageSet pages = TwoTopicPages();
  std::string dot = ExportClusteringToDot(pages, TwoClusters(),
                                          {"jobs", "hotels"});
  EXPECT_EQ(dot.find("graph cafc_clusters {"), 0u);
  EXPECT_EQ(dot.back(), '\n');
  EXPECT_NE(dot.find("subgraph cluster_0"), std::string::npos);
  EXPECT_NE(dot.find("subgraph cluster_1"), std::string::npos);
  EXPECT_NE(dot.find("\"jobs"), std::string::npos);
  EXPECT_NE(dot.find("\"hotels"), std::string::npos);
  // Braces balance.
  EXPECT_EQ(std::count(dot.begin(), dot.end(), '{'),
            std::count(dot.begin(), dot.end(), '}'));
}

TEST(VisualizeTest, MemberNodesShowHosts) {
  FormPageSet pages = TwoTopicPages();
  std::string dot = ExportClusteringToDot(pages, TwoClusters(),
                                          {"a", "b"});
  for (int i = 0; i < 6; ++i) {
    EXPECT_NE(dot.find("site" + std::to_string(i) + ".com"),
              std::string::npos);
  }
}

TEST(VisualizeTest, MemberCapTruncatesWithEllipsis) {
  FormPageSet pages = TwoTopicPages();
  DotExportOptions options;
  options.max_members_per_cluster = 2;
  std::string dot =
      ExportClusteringToDot(pages, TwoClusters(), {"a", "b"}, options);
  EXPECT_NE(dot.find("... +1"), std::string::npos);
}

TEST(VisualizeTest, LabelQuotesEscaped) {
  FormPageSet pages = TwoTopicPages();
  std::string dot = ExportClusteringToDot(pages, TwoClusters(),
                                          {"say \"hi\"", "b"});
  EXPECT_NE(dot.find("say \\\"hi\\\""), std::string::npos);
}

TEST(VisualizeTest, MissingLabelsFallBack) {
  FormPageSet pages = TwoTopicPages();
  std::string dot = ExportClusteringToDot(pages, TwoClusters(), {});
  EXPECT_NE(dot.find("cluster 0"), std::string::npos);
  EXPECT_NE(dot.find("cluster 1"), std::string::npos);
}

TEST(VisualizeTest, EmptyClusteringProducesValidSkeleton) {
  FormPageSet pages;
  cluster::Clustering c;
  c.num_clusters = 0;
  std::string dot = ExportClusteringToDot(pages, c, {});
  EXPECT_EQ(dot.find("graph cafc_clusters {"), 0u);
  EXPECT_EQ(std::count(dot.begin(), dot.end(), '{'),
            std::count(dot.begin(), dot.end(), '}'));
}

}  // namespace
}  // namespace cafc
