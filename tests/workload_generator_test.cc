// Tests of the deterministic workload generator: same-seed reproduction,
// Zipf popularity skew, arrival-envelope shapes on the virtual clock,
// closed-loop client assignment, and the offered-load trace accounting.

#include "workload/workload.h"

#include <algorithm>
#include <cmath>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "util/rng.h"

namespace cafc::workload {
namespace {

std::vector<std::string> Terms(size_t n) {
  std::vector<std::string> terms;
  for (size_t i = 0; i < n; ++i) terms.push_back("term" + std::to_string(i));
  return terms;
}

WorkloadOptions BaseOptions() {
  WorkloadOptions options;
  options.seed = 7;
  options.num_events = 2000;
  options.duration_ms = 1000.0;
  options.zipf_s = 1.0;
  return options;
}

TEST(WorkloadGeneratorTest, SameSeedReproducesByteIdenticalSchedule) {
  const WorkloadOptions options = BaseOptions();
  const Workload a = GenerateWorkload(options, 100, Terms(20));
  const Workload b = GenerateWorkload(options, 100, Terms(20));
  ASSERT_EQ(a.events.size(), b.events.size());
  for (size_t i = 0; i < a.events.size(); ++i) {
    EXPECT_EQ(a.events[i].at_ms, b.events[i].at_ms) << i;  // exact doubles
    EXPECT_EQ(a.events[i].class_index, b.events[i].class_index) << i;
    EXPECT_EQ(a.events[i].is_classify, b.events[i].is_classify) << i;
    EXPECT_EQ(a.events[i].page_index, b.events[i].page_index) << i;
    EXPECT_EQ(a.events[i].query, b.events[i].query) << i;
  }
  EXPECT_EQ(a.offered, b.offered);
}

TEST(WorkloadGeneratorTest, DifferentSeedsDiverge) {
  WorkloadOptions options = BaseOptions();
  const Workload a = GenerateWorkload(options, 100, Terms(20));
  options.seed = 8;
  const Workload b = GenerateWorkload(options, 100, Terms(20));
  size_t differing = 0;
  for (size_t i = 0; i < a.events.size(); ++i) {
    if (a.events[i].page_index != b.events[i].page_index ||
        a.events[i].query != b.events[i].query) {
      ++differing;
    }
  }
  EXPECT_GT(differing, a.events.size() / 4);
}

TEST(WorkloadGeneratorTest, EventsSortedWithinDurationWindow) {
  for (ArrivalShape shape : {ArrivalShape::kSteady, ArrivalShape::kBurst,
                             ArrivalShape::kDiurnal}) {
    WorkloadOptions options = BaseOptions();
    options.arrival.shape = shape;
    const Workload w = GenerateWorkload(options, 100, Terms(20));
    ASSERT_EQ(w.events.size(), options.num_events);
    for (size_t i = 0; i < w.events.size(); ++i) {
      EXPECT_GE(w.events[i].at_ms, 0.0);
      EXPECT_LE(w.events[i].at_ms, options.duration_ms);
      if (i > 0) {
        EXPECT_GE(w.events[i].at_ms, w.events[i - 1].at_ms);
      }
    }
  }
}

TEST(ZipfSamplerTest, LowerRanksDominateAndAllRanksReachable) {
  ZipfSampler zipf(50, 1.2);
  Rng rng(3);
  std::vector<uint64_t> counts(50, 0);
  for (int i = 0; i < 50'000; ++i) ++counts[zipf.Sample(&rng)];
  // Monotone-ish head: rank 0 clearly beats rank 1 beats rank 5 etc.
  EXPECT_GT(counts[0], counts[1]);
  EXPECT_GT(counts[1], counts[5]);
  EXPECT_GT(counts[5], counts[20]);
  // The head absorbs most of the traffic — the cache-friendly regime.
  EXPECT_GT(counts[0] + counts[1] + counts[2],
            static_cast<uint64_t>(50'000 / 4));
  // Every rank stays reachable (CDF back() == 1.0 guard).
  for (size_t r = 0; r < 50; ++r) EXPECT_GT(counts[r], 0u) << "rank " << r;
}

TEST(ZipfSamplerTest, ZeroExponentIsUniform) {
  ZipfSampler zipf(10, 0.0);
  Rng rng(5);
  std::vector<uint64_t> counts(10, 0);
  for (int i = 0; i < 100'000; ++i) ++counts[zipf.Sample(&rng)];
  for (uint64_t c : counts) {
    EXPECT_GT(c, 8'000u);
    EXPECT_LT(c, 12'000u);
  }
}

TEST(WorkloadGeneratorTest, BurstShapeConcentratesArrivalsInBurstWindows) {
  WorkloadOptions options = BaseOptions();
  options.num_events = 4000;
  options.arrival.shape = ArrivalShape::kBurst;
  options.arrival.base_rate_qps = 1000.0;
  options.arrival.burst_rate_qps = 9000.0;
  options.arrival.burst_period_ms = 200.0;
  options.arrival.burst_duty = 0.25;  // burst window = first 50ms of 200
  const Workload w = GenerateWorkload(options, 100, Terms(20));

  size_t in_burst = 0;
  for (const WorkloadEvent& e : w.events) {
    const double phase = std::fmod(e.at_ms, 200.0);
    if (phase < 50.0) ++in_burst;
  }
  // Expected share = 9000*50 / (9000*50 + 1000*150) = 0.75; the
  // quantile placement is deterministic so the tolerance can be tight.
  const double share =
      static_cast<double>(in_burst) / static_cast<double>(w.events.size());
  EXPECT_GT(share, 0.70);
  EXPECT_LT(share, 0.80);
}

TEST(WorkloadGeneratorTest, DiurnalShapeLeansIntoTheFirstHalfWave) {
  WorkloadOptions options = BaseOptions();
  options.num_events = 4000;
  options.arrival.shape = ArrivalShape::kDiurnal;
  options.arrival.diurnal_amplitude = 0.9;
  const Workload w = GenerateWorkload(options, 100, Terms(20));
  // rate(t) = base * (1 + a*sin(2*pi*t/D)): above base in the first half
  // of the trace, below in the second — so more than half of all events
  // land before t = D/2, and a steady trace would split evenly.
  size_t first_half = 0;
  for (const WorkloadEvent& e : w.events) {
    if (e.at_ms < options.duration_ms / 2) ++first_half;
  }
  const double share = static_cast<double>(first_half) /
                       static_cast<double>(w.events.size());
  EXPECT_GT(share, 0.60);
}

TEST(WorkloadGeneratorTest, ClassMixFollowsWeightsAndCarriesPriorities) {
  WorkloadOptions options = BaseOptions();
  options.num_events = 6000;
  WorkloadClass interactive;
  interactive.name = "interactive";
  interactive.priority = serve::QueryPriority::kInteractive;
  interactive.weight = 0.2;
  interactive.deadline_ms = 40.0;
  WorkloadClass batch;
  batch.name = "batch";
  batch.priority = serve::QueryPriority::kBatch;
  batch.weight = 0.8;
  options.classes = {interactive, batch};
  const Workload w = GenerateWorkload(options, 100, Terms(20));

  size_t interactive_count = 0;
  for (const WorkloadEvent& e : w.events) {
    ASSERT_LT(e.class_index, 2u);
    if (e.class_index == 0) {
      ++interactive_count;
      EXPECT_EQ(e.priority, serve::QueryPriority::kInteractive);
      EXPECT_EQ(e.deadline_ms, 40.0);
    } else {
      EXPECT_EQ(e.priority, serve::QueryPriority::kBatch);
      EXPECT_EQ(e.deadline_ms, 0.0);
    }
  }
  const double share = static_cast<double>(interactive_count) /
                       static_cast<double>(w.events.size());
  EXPECT_GT(share, 0.15);
  EXPECT_LT(share, 0.25);
}

TEST(WorkloadGeneratorTest, ClosedLoopDealsEventsRoundRobin) {
  WorkloadOptions options = BaseOptions();
  options.num_events = 100;
  options.closed_loop_clients = 4;
  const Workload w = GenerateWorkload(options, 100, Terms(20));
  ASSERT_EQ(w.events.size(), 100u);
  for (size_t i = 0; i < w.events.size(); ++i) {
    EXPECT_EQ(w.events[i].client, i % 4) << i;
  }
}

TEST(WorkloadGeneratorTest, OfferedTraceAccountsForEveryEvent) {
  WorkloadOptions options = BaseOptions();
  options.trace_bucket_ms = 100.0;
  WorkloadClass a;
  a.weight = 0.5;
  WorkloadClass b;
  b.weight = 0.5;
  options.classes = {a, b};
  const Workload w = GenerateWorkload(options, 100, Terms(20));

  ASSERT_EQ(w.offered.size(), 10u);  // 1000ms / 100ms buckets
  uint64_t total = 0;
  std::vector<uint64_t> per_class(2, 0);
  for (const std::vector<uint64_t>& bucket : w.offered) {
    ASSERT_EQ(bucket.size(), 2u);
    for (size_t c = 0; c < bucket.size(); ++c) {
      total += bucket[c];
      per_class[c] += bucket[c];
    }
  }
  EXPECT_EQ(total, w.events.size());
  // Cross-check against the events themselves.
  std::vector<uint64_t> expected(2, 0);
  for (const WorkloadEvent& e : w.events) ++expected[e.class_index];
  EXPECT_EQ(per_class, expected);
}

TEST(WorkloadGeneratorTest, EmptyRankSpacesFallBackGracefully) {
  WorkloadOptions options = BaseOptions();
  options.num_events = 200;
  // No search vocabulary: every event must come out Classify.
  const Workload no_terms = GenerateWorkload(options, 50, {});
  for (const WorkloadEvent& e : no_terms.events) {
    EXPECT_TRUE(e.is_classify);
    EXPECT_LT(e.page_index, 50u);
  }
  // No pages: every event must come out Search.
  const Workload no_pages = GenerateWorkload(options, 0, Terms(10));
  for (const WorkloadEvent& e : no_pages.events) {
    EXPECT_FALSE(e.is_classify);
    EXPECT_FALSE(e.query.empty());
  }
}

TEST(ArrivalShapeTest, ParseNamesAndRejectUnknown) {
  ArrivalShape shape = ArrivalShape::kSteady;
  ASSERT_TRUE(ParseArrivalShape("burst", &shape));
  EXPECT_EQ(shape, ArrivalShape::kBurst);
  ASSERT_TRUE(ParseArrivalShape("diurnal", &shape));
  EXPECT_EQ(shape, ArrivalShape::kDiurnal);
  ASSERT_TRUE(ParseArrivalShape("steady", &shape));
  EXPECT_EQ(shape, ArrivalShape::kSteady);
  EXPECT_FALSE(ParseArrivalShape("poisson", &shape));
  EXPECT_FALSE(ParseArrivalShape("", &shape));
}

}  // namespace
}  // namespace cafc::workload
