// Tests for the fixed-bucket latency histogram: exact bookkeeping (count,
// sum, min, max), percentile extraction within the documented one-bucket
// (25%) error bound, merge = element-wise sum, and edge cases.

#include "util/histogram.h"

#include <vector>

#include "gtest/gtest.h"

namespace cafc::util {
namespace {

TEST(HistogramTest, EmptyHistogramIsAllZeros) {
  Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.sum(), 0.0);
  EXPECT_EQ(h.min(), 0.0);
  EXPECT_EQ(h.max(), 0.0);
  EXPECT_EQ(h.mean(), 0.0);
  EXPECT_EQ(h.Percentile(50), 0.0);
  EXPECT_EQ(h.Percentile(99), 0.0);
}

TEST(HistogramTest, SingleValueIsEveryPercentile) {
  Histogram h;
  h.Add(123.0);
  EXPECT_EQ(h.count(), 1u);
  EXPECT_EQ(h.sum(), 123.0);
  EXPECT_EQ(h.min(), 123.0);
  EXPECT_EQ(h.max(), 123.0);
  // Percentiles clamp to the exact observed extremes, so a singleton is
  // reported exactly at any p.
  EXPECT_EQ(h.Percentile(0), 123.0);
  EXPECT_EQ(h.Percentile(50), 123.0);
  EXPECT_EQ(h.Percentile(100), 123.0);
}

TEST(HistogramTest, ExactBookkeepingOverManyValues) {
  Histogram h;
  double sum = 0.0;
  for (int i = 1; i <= 1000; ++i) {
    h.Add(static_cast<double>(i));
    sum += static_cast<double>(i);
  }
  EXPECT_EQ(h.count(), 1000u);
  EXPECT_EQ(h.sum(), sum);
  EXPECT_EQ(h.min(), 1.0);
  EXPECT_EQ(h.max(), 1000.0);
  EXPECT_DOUBLE_EQ(h.mean(), sum / 1000.0);
}

TEST(HistogramTest, PercentilesWithinOneBucketOfTruth) {
  // Uniform 1..10000: the true p-th percentile is p% of 10000. Bucket
  // edges grow by 25%, so the interpolated estimate must sit within
  // [truth / 1.25, truth * 1.25].
  Histogram h;
  for (int i = 1; i <= 10000; ++i) h.Add(static_cast<double>(i));
  for (double p : {10.0, 50.0, 95.0, 99.0}) {
    const double truth = p / 100.0 * 10000.0;
    const double got = h.Percentile(p);
    EXPECT_GE(got, truth / 1.25) << "p" << p;
    EXPECT_LE(got, truth * 1.25) << "p" << p;
  }
  // The extremes are exact (clamped to observed min/max).
  EXPECT_EQ(h.Percentile(0), 1.0);
  EXPECT_EQ(h.Percentile(100), 10000.0);
}

TEST(HistogramTest, PercentilesAreMonotone) {
  Histogram h;
  for (int i = 0; i < 5000; ++i) h.Add(static_cast<double>(i % 997));
  double previous = -1.0;
  for (double p = 0.0; p <= 100.0; p += 2.5) {
    const double value = h.Percentile(p);
    EXPECT_GE(value, previous) << "p" << p;
    previous = value;
  }
}

TEST(HistogramTest, MergeEqualsRecordingEverythingInOne) {
  Histogram a;
  Histogram b;
  Histogram all;
  for (int i = 1; i <= 500; ++i) {
    const double v = static_cast<double>(i * 3 % 769);
    (i % 2 == 0 ? a : b).Add(v);
    all.Add(v);
  }
  a.Merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_EQ(a.sum(), all.sum());
  EXPECT_EQ(a.min(), all.min());
  EXPECT_EQ(a.max(), all.max());
  for (double p : {1.0, 25.0, 50.0, 75.0, 99.0}) {
    EXPECT_EQ(a.Percentile(p), all.Percentile(p)) << "p" << p;
  }
}

TEST(HistogramTest, MergeWithEmptyIsIdentity) {
  Histogram a;
  a.Add(7.0);
  a.Add(9.0);
  Histogram empty;
  a.Merge(empty);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_EQ(a.min(), 7.0);
  EXPECT_EQ(a.max(), 9.0);
  empty.Merge(a);
  EXPECT_EQ(empty.count(), 2u);
  EXPECT_EQ(empty.min(), 7.0);
  EXPECT_EQ(empty.max(), 9.0);
}

TEST(HistogramTest, NegativeAndHugeValuesAreClamped) {
  Histogram h;
  h.Add(-5.0);  // clock skew: clamped to 0
  h.Add(1e18);  // far past the last edge: overflow bucket
  EXPECT_EQ(h.count(), 2u);
  EXPECT_EQ(h.min(), 0.0);
  EXPECT_EQ(h.max(), 1e18);
  EXPECT_EQ(h.Percentile(100), 1e18);
  EXPECT_EQ(h.Percentile(0), 0.0);
}

TEST(HistogramTest, ResetForgetsEverything) {
  Histogram h;
  for (int i = 0; i < 10; ++i) h.Add(static_cast<double>(i));
  h.Reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.sum(), 0.0);
  EXPECT_EQ(h.Percentile(50), 0.0);
  h.Add(4.0);  // usable after reset
  EXPECT_EQ(h.Percentile(50), 4.0);
}

}  // namespace
}  // namespace cafc::util
