// Opens the golden v3 snapshot committed under tests/testdata/. The file
// was written once and checked in; this test is the compatibility gate
// that keeps today's reader able to load yesterday's bytes. If a format
// change breaks it, bump kFormatVersion3 and regenerate the golden file
// deliberately — never "fix" the test by rewriting the file in place.
//
// Golden provenance:
//   cafc cluster --seed 3 --pages 48 --min-cardinality 4 \
//     --save-v3 tests/testdata/golden_v3.cafc3

#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/directory.h"
#include "storage/format.h"
#include "storage/reader.h"

namespace cafc::storage {
namespace {

std::string GoldenPath() {
  return std::string(CAFC_TESTDATA_DIR) + "/golden_v3.cafc3";
}

TEST(StorageGoldenTest, HeaderAndEveryChecksumStillVerify) {
  std::vector<bool> checksum_ok;
  Result<SnapshotFileInfo> info = ReadSnapshotInfo(GoldenPath(), &checksum_ok);
  ASSERT_TRUE(info.ok()) << info.status().ToString();
  EXPECT_EQ(info->version, kFormatVersion3);
  ASSERT_EQ(checksum_ok.size(), info->sections.size());
  for (size_t i = 0; i < checksum_ok.size(); ++i) {
    EXPECT_TRUE(checksum_ok[i]) << "section " << i << " checksum mismatch";
  }

  bool has_entries = false;
  bool has_pages = false;
  for (const SectionInfo& section : info->sections) {
    if (section.kind == SectionKind::kEntries) has_entries = true;
    if (section.kind == SectionKind::kPages) has_pages = true;
  }
  EXPECT_TRUE(has_entries);
  EXPECT_TRUE(has_pages) << "golden file was written with pages";
}

TEST(StorageGoldenTest, OpensServesAndMaterializes) {
  Result<std::unique_ptr<MappedSnapshot>> opened =
      MappedSnapshot::Open(GoldenPath());
  ASSERT_TRUE(opened.ok()) << opened.status().ToString();
  const MappedSnapshot& snapshot = **opened;

  ASSERT_GT(snapshot.directory().size(), 0u);
  ASSERT_GT(snapshot.num_pages(), 0u);

  Result<DatabaseDirectory> materialized = snapshot.MaterializeDirectory();
  ASSERT_TRUE(materialized.ok()) << materialized.status().ToString();
  ASSERT_EQ(materialized->size(), snapshot.directory().size());

  // A stored page classified through the thin (mapped) path must agree
  // with the fully materialized directory — bit for bit.
  const cluster::CentroidIndex reference = materialized->BuildCentroidIndex();
  for (size_t ordinal : {size_t{0}, snapshot.num_pages() - 1}) {
    Result<std::shared_ptr<const FormPage>> page = snapshot.GetPage(ordinal);
    ASSERT_TRUE(page.ok()) << page.status().ToString();
    const DatabaseDirectory::Classification thin =
        snapshot.directory().ClassifyPage(
            **page, ContentConfig::kFcPlusPc, snapshot.index());
    const DatabaseDirectory::Classification full = materialized->ClassifyPage(
        **page, ContentConfig::kFcPlusPc, reference);
    EXPECT_EQ(thin.entry, full.entry);
    EXPECT_EQ(thin.similarity, full.similarity);
  }

  const auto thin_hits =
      snapshot.directory().Search("search form query", 3, snapshot.index());
  const auto full_hits =
      materialized->Search("search form query", 3, reference);
  ASSERT_EQ(thin_hits.size(), full_hits.size());
  for (size_t i = 0; i < thin_hits.size(); ++i) {
    EXPECT_EQ(thin_hits[i].entry, full_hits[i].entry);
    EXPECT_EQ(thin_hits[i].similarity, full_hits[i].similarity);
  }
}

TEST(StorageGoldenTest, AutoLoaderNegotiatesTheGoldenAsV3) {
  Result<DatabaseDirectory> loaded = LoadDirectoryAuto(GoldenPath());
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_GT(loaded->size(), 0u);
}

}  // namespace
}  // namespace cafc::storage
