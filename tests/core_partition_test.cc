// Tests of the site-hash partitioning layer: deterministic assignment,
// edge cases (empty corpus, one site, more shards than sites), stability
// under corpus churn, the global-DF broadcast's weighting bit-identity,
// and the section-hosting invariants the scatter-gather merge relies on.

#include "core/partition.h"

#include <set>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "core/cafc.h"
#include "core/corpus.h"
#include "core/directory.h"
#include "core/ingest.h"
#include "util/rng.h"
#include "web/synthesizer.h"

namespace cafc {
namespace {

Corpus GrowCorpus(uint32_t seed, size_t form_pages) {
  web::SynthesizerConfig config;
  config.seed = seed;
  config.form_pages_total = form_pages;
  config.single_attribute_forms = form_pages / 8;
  config.homogeneous_hubs_per_domain = 20;
  config.mixed_hubs = 30;
  config.directory_hubs = 2;
  config.large_air_hotel_hubs = 2;
  web::SyntheticWeb web = web::Synthesizer(config).Generate();
  Result<CorpusBuild> build = BuildCorpus(web);
  EXPECT_TRUE(build.ok()) << build.status().ToString();
  return std::move(build->corpus);
}

DatabaseDirectory BuildDirectory(Corpus& corpus, int k = 6) {
  Rng rng(1234);
  cluster::Clustering clustering =
      CafcC(corpus.Weighted(), k, CafcOptions{}, &rng);
  return DatabaseDirectory::Build(
      corpus.Weighted(), clustering,
      DatabaseDirectory::AutoLabels(corpus.Weighted(), clustering));
}

TEST(ShardForSiteTest, DeterministicPureFunctionOfSiteAndCount) {
  for (const char* site : {"jobs.example.com", "hotel.example.org", ""}) {
    for (size_t n : {1u, 2u, 5u, 64u}) {
      size_t first = ShardForSite(site, n);
      EXPECT_LT(first, n);
      EXPECT_EQ(ShardForSite(site, n), first) << site << " n=" << n;
    }
    // One shard maps everything to shard 0.
    EXPECT_EQ(ShardForSite(site, 1), 0u);
  }
}

TEST(PlanPartitionTest, EmptyCorpusYieldsEmptyValidPlan) {
  Corpus corpus;
  PartitionPlan plan = PlanPartition(corpus, 4);
  EXPECT_EQ(plan.num_shards, 4u);
  ASSERT_EQ(plan.slots.size(), 4u);
  for (const auto& slots : plan.slots) EXPECT_TRUE(slots.empty());
}

TEST(PlanPartitionTest, SlotsPartitionTheCorpusSiteCoherently) {
  Corpus corpus = GrowCorpus(31, 48);
  PartitionPlan plan = PlanPartition(corpus, 3);
  std::set<size_t> seen;
  for (size_t s = 0; s < plan.slots.size(); ++s) {
    size_t previous = 0;
    bool first = true;
    for (size_t slot : plan.slots[s]) {
      // Each slot appears exactly once, ascending within its shard.
      EXPECT_TRUE(seen.insert(slot).second);
      if (!first) EXPECT_GT(slot, previous);
      previous = slot;
      first = false;
      // Site coherence: the slot landed on its site's hash shard.
      EXPECT_EQ(ShardForSite(corpus.entries()[slot].site, 3), s);
    }
  }
  EXPECT_EQ(seen.size(), corpus.entries().size());
}

TEST(PlanPartitionTest, AssignmentStableAcrossCorpusChurn) {
  Corpus corpus = GrowCorpus(31, 48);
  // Site -> shard before churn.
  std::unordered_map<std::string, size_t> before;
  PartitionPlan plan = PlanPartition(corpus, 4);
  for (size_t s = 0; s < plan.slots.size(); ++s) {
    for (size_t slot : plan.slots[s]) {
      before[corpus.entries()[slot].site] = s;
    }
  }
  // Grow and shrink the corpus; surviving sites must keep their shard.
  Corpus incoming = GrowCorpus(32, 16);
  ASSERT_TRUE(corpus.AddPages(incoming.TakeEntries()).ok());
  corpus.RemovePages({corpus.entries().front().doc.url});
  PartitionPlan after = PlanPartition(corpus, 4);
  for (size_t s = 0; s < after.slots.size(); ++s) {
    for (size_t slot : after.slots[s]) {
      auto it = before.find(corpus.entries()[slot].site);
      if (it != before.end()) {
        EXPECT_EQ(it->second, s) << corpus.entries()[slot].site;
      }
    }
  }
}

TEST(PartitionDirectoryTest, MoreShardsThanSitesLeavesSurplusEmptyButValid) {
  Corpus corpus = GrowCorpus(33, 16);
  DatabaseDirectory global = BuildDirectory(corpus, 3);
  Result<std::vector<ShardBundle>> bundles =
      PartitionDirectory(global, corpus, 64);
  ASSERT_TRUE(bundles.ok()) << bundles.status().ToString();
  ASSERT_EQ(bundles->size(), 64u);
  size_t pages = 0;
  size_t hostings = 0;
  for (const ShardBundle& bundle : *bundles) {
    EXPECT_EQ(bundle.num_shards, 64u);
    EXPECT_EQ(bundle.directory.size(), bundle.global_sections.size());
    pages += bundle.corpus.entries().size();
    hostings += bundle.directory.size();
  }
  EXPECT_EQ(pages, corpus.entries().size());
  // Every global section hosted at least once.
  EXPECT_GE(hostings, global.size());
}

TEST(PartitionDirectoryTest, EveryGlobalSectionHostedAndMembersConserved) {
  Corpus corpus = GrowCorpus(31, 48);
  DatabaseDirectory global = BuildDirectory(corpus);
  Result<std::vector<ShardBundle>> bundles =
      PartitionDirectory(global, corpus, 4);
  ASSERT_TRUE(bundles.ok());

  std::set<uint32_t> hosted;
  std::unordered_map<uint32_t, size_t> member_counts;
  for (const ShardBundle& bundle : *bundles) {
    for (size_t local = 0; local < bundle.global_sections.size(); ++local) {
      const uint32_t g = bundle.global_sections[local];
      hosted.insert(g);
      member_counts[g] +=
          bundle.directory.entries()[local].member_urls.size();
      // Projection invariants: label and centroid travel verbatim.
      EXPECT_EQ(bundle.directory.entries()[local].label,
                global.entries()[g].label);
      EXPECT_EQ(bundle.directory.entries()[local].centroid.pc.entries(),
                global.entries()[g].centroid.pc.entries());
      EXPECT_EQ(bundle.directory.entries()[local].centroid.fc.entries(),
                global.entries()[g].centroid.fc.entries());
    }
    // global_sections ascends (global order preserved).
    for (size_t i = 1; i < bundle.global_sections.size(); ++i) {
      EXPECT_LT(bundle.global_sections[i - 1], bundle.global_sections[i]);
    }
  }
  ASSERT_EQ(hosted.size(), global.size());
  for (size_t g = 0; g < global.size(); ++g) {
    EXPECT_EQ(member_counts[static_cast<uint32_t>(g)],
              global.entries()[g].member_urls.size())
        << "section " << g;
  }
}

TEST(PartitionDirectoryTest, DfBroadcastMakesShardWeightsBitIdentical) {
  Corpus corpus = GrowCorpus(31, 48);
  DatabaseDirectory global = BuildDirectory(corpus);
  Result<std::vector<ShardBundle>> bundles =
      PartitionDirectory(global, corpus, 3);
  ASSERT_TRUE(bundles.ok());

  // URL -> global weighted page.
  const FormPageSet& weighted = corpus.Weighted();
  std::unordered_map<std::string, const FormPage*> by_url;
  for (const FormPage& page : weighted.pages()) by_url[page.url] = &page;

  for (ShardBundle& bundle : *bundles) {
    const FormPageSet& shard_weighted = bundle.corpus.Weighted();
    for (const FormPage& page : shard_weighted.pages()) {
      auto it = by_url.find(page.url);
      ASSERT_NE(it, by_url.end()) << page.url;
      // The DF broadcast makes every shard page's TF-IDF vectors equal to
      // the global corpus's, entry for entry, bit for bit.
      EXPECT_EQ(page.pc.entries(), it->second->pc.entries()) << page.url;
      EXPECT_EQ(page.fc.entries(), it->second->fc.entries()) << page.url;
    }
  }
}

TEST(PartitionDirectoryTest, MergedShardClassifyEqualsGlobalClassify) {
  Corpus corpus = GrowCorpus(31, 48);
  DatabaseDirectory global = BuildDirectory(corpus);
  Result<std::vector<ShardBundle>> bundles =
      PartitionDirectory(global, corpus, 4);
  ASSERT_TRUE(bundles.ok());

  for (const DatasetEntry& entry : corpus.entries()) {
    DatabaseDirectory::Classification want =
        global.ClassifyDocument(entry.doc);
    // The router's merge rule, serially: best similarity, lowest global
    // index on ties, across per-shard winners.
    int best_entry = -1;
    double best_sim = 0.0;
    for (const ShardBundle& bundle : *bundles) {
      DatabaseDirectory::Classification local =
          bundle.directory.ClassifyDocument(entry.doc);
      if (local.entry < 0) continue;
      const int g = static_cast<int>(
          bundle.global_sections[static_cast<size_t>(local.entry)]);
      if (best_entry < 0 || local.similarity > best_sim ||
          (local.similarity == best_sim && g < best_entry)) {
        best_entry = g;
        best_sim = local.similarity;
      }
    }
    EXPECT_EQ(best_entry, want.entry) << entry.doc.url;
    EXPECT_EQ(best_sim, want.similarity) << entry.doc.url;  // exact
  }
}

TEST(PartitionDirectoryTest, DriftedDirectoryFailsInvalidArgument) {
  Corpus corpus = GrowCorpus(33, 16);
  DatabaseDirectory global = BuildDirectory(corpus, 3);
  // Remove a page that is a member of some section: the directory now
  // references a URL the corpus no longer has.
  ASSERT_FALSE(global.entries().empty());
  ASSERT_FALSE(global.entries()[0].member_urls.empty());
  corpus.RemovePages({global.entries()[0].member_urls[0]});
  Result<std::vector<ShardBundle>> bundles =
      PartitionDirectory(global, corpus, 2);
  EXPECT_EQ(bundles.status().code(), StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace cafc
