// Tests of the scatter-gather ShardRouter over in-process RPC fleets:
// merged answers bit-identical to the unsharded directory, per-shard
// epoch echoes, explicit partial results when a shard dies, stats
// aggregation, and the no-shards edge case.

#include "serve/shard_router.h"

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "core/cafc.h"
#include "core/corpus.h"
#include "core/directory.h"
#include "core/ingest.h"
#include "core/partition.h"
#include "ipc/pipe.h"
#include "ipc/shard_rpc.h"
#include "serve/server.h"
#include "serve/shard_service.h"
#include "util/rng.h"
#include "web/synthesizer.h"

namespace cafc {
namespace {

using serve::DirectoryServer;
using serve::DirectoryServerOptions;
using serve::DirectoryShardService;
using serve::RouterResponse;
using serve::ShardRouter;
using serve::ShardServiceHost;

Corpus GrowCorpus(uint32_t seed, size_t form_pages) {
  web::SynthesizerConfig config;
  config.seed = seed;
  config.form_pages_total = form_pages;
  config.single_attribute_forms = form_pages / 8;
  config.homogeneous_hubs_per_domain = 20;
  config.mixed_hubs = 30;
  config.directory_hubs = 2;
  config.large_air_hotel_hubs = 2;
  web::SyntheticWeb web = web::Synthesizer(config).Generate();
  Result<CorpusBuild> build = BuildCorpus(web);
  EXPECT_TRUE(build.ok()) << build.status().ToString();
  return std::move(build->corpus);
}

DatabaseDirectory BuildDirectory(Corpus& corpus, int k = 6) {
  Rng rng(1234);
  cluster::Clustering clustering =
      CafcC(corpus.Weighted(), k, CafcOptions{}, &rng);
  return DatabaseDirectory::Build(
      corpus.Weighted(), clustering,
      DatabaseDirectory::AutoLabels(corpus.Weighted(), clustering));
}

/// An in-process shard fleet wired through the real RPC stack.
struct Fleet {
  Fleet() = default;
  Fleet(Fleet&&) = default;
  Fleet& operator=(Fleet&&) = default;

  std::vector<std::unique_ptr<DirectoryServer>> servers;
  std::vector<std::unique_ptr<DirectoryShardService>> services;
  std::vector<std::unique_ptr<ShardServiceHost>> hosts;
  std::unique_ptr<ShardRouter> router;

  static Fleet Make(const DatabaseDirectory& global, const Corpus& corpus,
                    size_t num_shards,
                    serve::RouterOptions router_options = {}) {
    Result<std::vector<ShardBundle>> bundles =
        PartitionDirectory(global, corpus, num_shards);
    EXPECT_TRUE(bundles.ok()) << bundles.status().ToString();
    Fleet fleet;
    std::vector<std::unique_ptr<ipc::ShardClient>> clients;
    for (ShardBundle& bundle : *bundles) {
      DirectoryServerOptions options;
      options.workers = 2;
      fleet.servers.push_back(std::make_unique<DirectoryServer>(
          std::move(bundle.directory), std::move(bundle.corpus), options));
      fleet.services.push_back(std::make_unique<DirectoryShardService>(
          fleet.servers.back().get(), bundle.global_sections,
          static_cast<uint32_t>(bundle.shard_id),
          static_cast<uint32_t>(bundle.num_shards)));
      auto [service_end, client_end] = ipc::CreateInProcessPipePair();
      fleet.hosts.push_back(std::make_unique<ShardServiceHost>(
          std::move(service_end), fleet.services.back().get(), 2));
      clients.push_back(
          std::make_unique<ipc::ShardClient>(std::move(client_end)));
    }
    fleet.router =
        std::make_unique<ShardRouter>(std::move(clients), router_options);
    return fleet;
  }

  ~Fleet() {
    if (router) router->Close();
    for (auto& host : hosts) host->Shutdown();
    for (auto& server : servers) server->Shutdown();
  }
};

TEST(ShardRouterTest, MergedAnswersBitIdenticalToUnshardedDirectory) {
  Corpus corpus = GrowCorpus(21, 48);
  DatabaseDirectory global = BuildDirectory(corpus);
  for (size_t num_shards : {1u, 3u}) {
    Fleet fleet = Fleet::Make(global, corpus, num_shards);
    for (const DatasetEntry& entry : corpus.entries()) {
      RouterResponse response = fleet.router->Classify(entry.doc);
      ASSERT_TRUE(response.status.ok()) << response.status.ToString();
      EXPECT_FALSE(response.partial);
      ASSERT_EQ(response.shards.size(), num_shards);
      for (const serve::ShardEcho& echo : response.shards) {
        EXPECT_TRUE(echo.status.ok());
        EXPECT_GE(echo.snapshot_version, 1u);
      }
      DatabaseDirectory::Classification want =
          global.ClassifyDocument(entry.doc);
      EXPECT_EQ(response.classification.entry, want.entry)
          << entry.doc.url;
      EXPECT_EQ(response.classification.similarity, want.similarity)
          << entry.doc.url;  // exact doubles
    }
    for (const char* query : {"job career", "hotel room", "music cd"}) {
      for (size_t top_k : {size_t{3}, global.size()}) {
        RouterResponse response = fleet.router->Search(query, top_k);
        ASSERT_TRUE(response.status.ok());
        auto want = global.Search(query, top_k);
        ASSERT_EQ(response.hits.size(), want.size())
            << query << " k=" << top_k;
        for (size_t i = 0; i < want.size(); ++i) {
          EXPECT_EQ(response.hits[i].entry, want[i].entry) << query;
          EXPECT_EQ(response.hits[i].similarity, want[i].similarity)
              << query;
        }
      }
    }
  }
}

TEST(ShardRouterTest, ClassifyFastPathBitIdenticalToScatter) {
  Corpus corpus = GrowCorpus(21, 48);
  DatabaseDirectory global = BuildDirectory(corpus);
  serve::RouterOptions fast_options;
  fast_options.classify_fast_path = true;
  for (size_t num_shards : {1u, 3u}) {
    Fleet scatter = Fleet::Make(global, corpus, num_shards);
    Fleet fast = Fleet::Make(global, corpus, num_shards, fast_options);
    for (const DatasetEntry& entry : corpus.entries()) {
      RouterResponse want = scatter.router->Classify(entry.doc);
      ASSERT_TRUE(want.status.ok()) << want.status.ToString();
      EXPECT_FALSE(want.fast_path);
      ASSERT_EQ(want.shards.size(), num_shards);

      RouterResponse got = fast.router->Classify(entry.doc);
      ASSERT_TRUE(got.status.ok()) << got.status.ToString();
      // One RPC instead of a scatter: a single (owning) shard echo.
      EXPECT_TRUE(got.fast_path);
      ASSERT_EQ(got.shards.size(), 1u);
      EXPECT_TRUE(got.shards[0].status.ok());
      // Bit-identity against both the scatter merge and the unsharded
      // oracle — the site partition puts every corpus page's winning
      // section on its own shard.
      EXPECT_EQ(got.classification.entry, want.classification.entry)
          << entry.doc.url;
      EXPECT_EQ(got.classification.similarity,
                want.classification.similarity)
          << entry.doc.url;  // exact doubles
      DatabaseDirectory::Classification oracle =
          global.ClassifyDocument(entry.doc);
      EXPECT_EQ(got.classification.entry, oracle.entry) << entry.doc.url;
      EXPECT_EQ(got.classification.similarity, oracle.similarity)
          << entry.doc.url;
    }
  }
}

TEST(ShardRouterTest, FastPathFallsBackToScatterForUrllessDocs) {
  Corpus corpus = GrowCorpus(21, 48);
  DatabaseDirectory global = BuildDirectory(corpus);
  serve::RouterOptions fast_options;
  fast_options.classify_fast_path = true;
  Fleet fleet = Fleet::Make(global, corpus, 3, fast_options);

  forms::FormPageDocument doc = corpus.entries().front().doc;
  doc.url.clear();  // no site to route by — must scatter
  RouterResponse response = fleet.router->Classify(doc);
  ASSERT_TRUE(response.status.ok()) << response.status.ToString();
  EXPECT_FALSE(response.fast_path);
  EXPECT_EQ(response.shards.size(), 3u);
  DatabaseDirectory::Classification oracle = global.ClassifyDocument(doc);
  EXPECT_EQ(response.classification.entry, oracle.entry);
  EXPECT_EQ(response.classification.similarity, oracle.similarity);

  // Search is never fast-pathed — it must merge every shard's hits.
  RouterResponse search = fleet.router->Search("job career", 5);
  ASSERT_TRUE(search.status.ok());
  EXPECT_FALSE(search.fast_path);
  EXPECT_EQ(search.shards.size(), 3u);
}

TEST(ShardRouterTest, DeadShardYieldsExplicitPartialResult) {
  Corpus corpus = GrowCorpus(21, 48);
  DatabaseDirectory global = BuildDirectory(corpus);
  Fleet fleet = Fleet::Make(global, corpus, 3);
  fleet.hosts[1]->Shutdown();  // kill the middle shard's transport

  RouterResponse response =
      fleet.router->Classify(corpus.entries().front().doc);
  // Still answers from the live shards...
  ASSERT_TRUE(response.status.ok()) << response.status.ToString();
  // ...but the degradation is explicit, never silent.
  EXPECT_TRUE(response.partial);
  ASSERT_EQ(response.shards.size(), 3u);
  EXPECT_TRUE(response.shards[0].status.ok());
  EXPECT_EQ(response.shards[1].status.code(), StatusCode::kUnavailable);
  EXPECT_TRUE(response.shards[2].status.ok());

  RouterResponse search = fleet.router->Search("job career", 5);
  ASSERT_TRUE(search.status.ok());
  EXPECT_TRUE(search.partial);
}

TEST(ShardRouterTest, AllShardsDeadFailsWithFirstShardError) {
  Corpus corpus = GrowCorpus(21, 24);
  DatabaseDirectory global = BuildDirectory(corpus, 4);
  Fleet fleet = Fleet::Make(global, corpus, 2);
  for (auto& host : fleet.hosts) host->Shutdown();
  RouterResponse response =
      fleet.router->Classify(corpus.entries().front().doc);
  EXPECT_EQ(response.status.code(), StatusCode::kUnavailable);
  EXPECT_TRUE(response.partial);
}

TEST(ShardRouterTest, NoShardsIsUnavailable) {
  ShardRouter router({});
  EXPECT_EQ(router.num_shards(), 0u);
  RouterResponse response = router.Search("anything", 5);
  EXPECT_EQ(response.status.code(), StatusCode::kUnavailable);
}

TEST(ShardRouterTest, EpochsAndStatsAggregateAcrossShards) {
  Corpus corpus = GrowCorpus(21, 48);
  DatabaseDirectory global = BuildDirectory(corpus);
  Fleet fleet = Fleet::Make(global, corpus, 3);

  // Generate some traffic so the merged counters are non-trivial.
  for (size_t i = 0; i < 12 && i < corpus.entries().size(); ++i) {
    ASSERT_TRUE(fleet.router->Classify(corpus.entries()[i].doc).status.ok());
  }

  std::vector<Result<ipc::EpochResponse>> epochs = fleet.router->Epochs();
  ASSERT_EQ(epochs.size(), 3u);
  size_t hosted = 0;
  for (size_t s = 0; s < epochs.size(); ++s) {
    ASSERT_TRUE(epochs[s].ok());
    EXPECT_EQ((*epochs[s]).shard_id, s);
    EXPECT_EQ((*epochs[s]).num_shards, 3u);
    EXPECT_EQ((*epochs[s]).snapshot_version, 1u);
    hosted += (*epochs[s]).sections;
  }
  EXPECT_GE(hosted, global.size());  // duplicates possible, holes not

  Result<serve::ServerStats> merged = fleet.router->Stats();
  ASSERT_TRUE(merged.ok());
  uint64_t per_shard_completed = 0;
  for (const Result<serve::ServerStats>& stats :
       fleet.router->PerShardStats()) {
    ASSERT_TRUE(stats.ok());
    per_shard_completed += stats->completed;
  }
  EXPECT_EQ(merged->completed, per_shard_completed);
  EXPECT_GT(merged->completed, 0u);
  EXPECT_EQ(merged->service_cpu_us.count(), merged->completed);
}

}  // namespace
}  // namespace cafc
