#include "cluster/hac.h"

#include <algorithm>
#include <memory>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "util/rng.h"

namespace cafc::cluster {
namespace {

/// Block-structured similarity: points i and j are similar iff they share
/// a block of size `block`.
SimilarityFn BlockSimilarity(size_t block, double in_sim, double out_sim,
                             uint64_t seed) {
  auto rng = std::make_shared<Rng>(seed);
  // Pre-generate symmetric noise so the function is consistent.
  auto noise = std::make_shared<std::vector<double>>();
  return [block, in_sim, out_sim, rng, noise](size_t i, size_t j) {
    size_t a = std::min(i, j);
    size_t b = std::max(i, j);
    size_t key = a * 1000 + b;
    if (noise->size() <= key) noise->resize(key + 1, -1.0);
    if ((*noise)[key] < 0.0) (*noise)[key] = rng->UniformDouble() * 0.05;
    return ((i / block) == (j / block) ? in_sim : out_sim) + (*noise)[key];
  };
}

std::set<std::set<size_t>> Groups(const Clustering& c) {
  std::set<std::set<size_t>> out;
  for (int g = 0; g < c.num_clusters; ++g) {
    std::set<size_t> members;
    for (size_t m : c.Members(g)) members.insert(m);
    if (!members.empty()) out.insert(members);
  }
  return out;
}

class HacLinkageTest : public ::testing::TestWithParam<Linkage> {};

TEST_P(HacLinkageTest, RecoversBlocks) {
  auto sim = BlockSimilarity(5, 0.8, 0.1, 3);
  HacResult result = Hac(15, sim, 3, GetParam());
  EXPECT_EQ(result.clustering.num_clusters, 3);
  std::set<std::set<size_t>> expected = {
      {0, 1, 2, 3, 4}, {5, 6, 7, 8, 9}, {10, 11, 12, 13, 14}};
  EXPECT_EQ(Groups(result.clustering), expected);
}

TEST_P(HacLinkageTest, MergeCountIsNMinusK) {
  auto sim = BlockSimilarity(4, 0.7, 0.2, 5);
  HacResult result = Hac(12, sim, 3, GetParam());
  EXPECT_EQ(result.merges.size(), 9u);
}

INSTANTIATE_TEST_SUITE_P(Linkages, HacLinkageTest,
                         ::testing::Values(Linkage::kSingle,
                                           Linkage::kComplete,
                                           Linkage::kAverage));

TEST(HacTest, KEqualsNMeansNoMerges) {
  auto sim = BlockSimilarity(2, 0.9, 0.1, 7);
  HacResult result = Hac(4, sim, 4);
  EXPECT_TRUE(result.merges.empty());
  EXPECT_EQ(result.clustering.num_clusters, 4);
}

TEST(HacTest, KOneMergesEverything) {
  auto sim = BlockSimilarity(2, 0.9, 0.1, 9);
  HacResult result = Hac(6, sim, 1);
  EXPECT_EQ(result.clustering.num_clusters, 1);
  for (int a : result.clustering.assignment) EXPECT_EQ(a, 0);
}

TEST(HacTest, EmptyInput) {
  HacResult result = Hac(0, [](size_t, size_t) { return 0.0; }, 3);
  EXPECT_EQ(result.clustering.num_clusters, 0);
  EXPECT_TRUE(result.clustering.assignment.empty());
}

TEST(HacTest, MergesInDecreasingSimilarityForCleanData) {
  // With single linkage on clean blocks, within-block merges (high sim)
  // happen before cross-block merges.
  auto sim = BlockSimilarity(3, 0.9, 0.1, 11);
  HacResult result = Hac(9, sim, 1, Linkage::kSingle);
  ASSERT_EQ(result.merges.size(), 8u);
  // First 6 merges are within-block (similarity ~0.9); last 2 cross.
  for (size_t i = 0; i < 6; ++i) EXPECT_GT(result.merges[i].similarity, 0.5);
  for (size_t i = 6; i < 8; ++i) EXPECT_LT(result.merges[i].similarity, 0.5);
}

TEST(HacFromGroupsTest, SeedGroupsStayTogether) {
  auto sim = BlockSimilarity(4, 0.8, 0.1, 13);
  HacResult result =
      HacFromGroups(12, sim, {{0, 1, 2, 3}, {4, 5, 6, 7}}, 3);
  const Clustering& c = result.clustering;
  EXPECT_EQ(c.assignment[0], c.assignment[3]);
  EXPECT_EQ(c.assignment[4], c.assignment[7]);
  EXPECT_EQ(c.num_clusters, 3);
}

TEST(HacFromGroupsTest, LeftoversBecomeSingletonsThenMerge) {
  auto sim = BlockSimilarity(4, 0.8, 0.1, 17);
  HacResult result = HacFromGroups(12, sim, {{0, 1}}, 3);
  std::set<std::set<size_t>> expected = {
      {0, 1, 2, 3}, {4, 5, 6, 7}, {8, 9, 10, 11}};
  EXPECT_EQ(Groups(result.clustering), expected);
}

TEST(HacFromGroupsTest, DuplicatePointKeptInFirstGroup) {
  auto sim = BlockSimilarity(2, 0.8, 0.1, 19);
  HacResult result = HacFromGroups(4, sim, {{0, 1}, {1, 2}}, 2);
  // Point 1 belongs to the first group; no crash, full assignment.
  for (int a : result.clustering.assignment) EXPECT_GE(a, 0);
}

TEST(HacFromGroupsTest, OutOfRangePointsIgnored) {
  auto sim = BlockSimilarity(2, 0.8, 0.1, 23);
  HacResult result = HacFromGroups(4, sim, {{0, 99}}, 2);
  EXPECT_EQ(result.clustering.assignment.size(), 4u);
}

TEST(HacFromGroupsTest, EquivalentToHacWithSingletonGroups) {
  auto sim = BlockSimilarity(3, 0.7, 0.15, 29);
  HacResult plain = Hac(9, sim, 3, Linkage::kAverage);
  HacResult grouped = HacFromGroups(
      9, sim, {{0}, {1}, {2}, {3}, {4}, {5}, {6}, {7}, {8}}, 3,
      Linkage::kAverage);
  EXPECT_EQ(Groups(plain.clustering), Groups(grouped.clustering));
}

}  // namespace
}  // namespace cafc::cluster
