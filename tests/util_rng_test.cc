#include "util/rng.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <set>
#include <vector>

#include <gtest/gtest.h>

namespace cafc {
namespace {

TEST(RngTest, DeterministicPerSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Next64(), b.Next64());
  }
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int differences = 0;
  for (int i = 0; i < 10; ++i) {
    if (a.Next64() != b.Next64()) ++differences;
  }
  EXPECT_GT(differences, 0);
}

TEST(RngTest, UniformRespectsBound) {
  Rng rng(7);
  for (uint64_t bound : {1ULL, 2ULL, 3ULL, 10ULL, 1000ULL}) {
    for (int i = 0; i < 1000; ++i) {
      EXPECT_LT(rng.Uniform(bound), bound);
    }
  }
}

TEST(RngTest, UniformBoundOneAlwaysZero) {
  Rng rng(7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.Uniform(1), 0u);
}

TEST(RngTest, UniformCoversAllResidues) {
  Rng rng(11);
  std::set<uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.Uniform(7));
  EXPECT_EQ(seen.size(), 7u);
}

TEST(RngTest, UniformIntInclusiveRange) {
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    int64_t v = rng.UniformInt(-5, 5);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
  }
}

TEST(RngTest, UniformIntDegenerateRange) {
  Rng rng(3);
  EXPECT_EQ(rng.UniformInt(42, 42), 42);
}

TEST(RngTest, UniformDoubleInUnitInterval) {
  Rng rng(5);
  for (int i = 0; i < 10000; ++i) {
    double v = rng.UniformDouble();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(RngTest, UniformDoubleMeanNearHalf) {
  Rng rng(17);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.UniformDouble();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(RngTest, BernoulliExtremes) {
  Rng rng(9);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.Bernoulli(0.0));
    EXPECT_TRUE(rng.Bernoulli(1.0));
    EXPECT_FALSE(rng.Bernoulli(-1.0));
    EXPECT_TRUE(rng.Bernoulli(2.0));
  }
}

TEST(RngTest, BernoulliRateApproximatesP) {
  Rng rng(13);
  const int n = 100000;
  int hits = 0;
  for (int i = 0; i < n; ++i) hits += rng.Bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(RngTest, GaussianMomentsApproximatelyStandard) {
  Rng rng(21);
  const int n = 100000;
  double sum = 0.0;
  double sum_sq = 0.0;
  for (int i = 0; i < n; ++i) {
    double g = rng.Gaussian();
    sum += g;
    sum_sq += g * g;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sum_sq / n, 1.0, 0.03);
}

TEST(RngTest, ShufflePreservesMultiset) {
  Rng rng(31);
  std::vector<int> items(50);
  std::iota(items.begin(), items.end(), 0);
  std::vector<int> shuffled = items;
  rng.Shuffle(&shuffled);
  EXPECT_NE(shuffled, items);  // astronomically unlikely to be identity
  std::sort(shuffled.begin(), shuffled.end());
  EXPECT_EQ(shuffled, items);
}

TEST(RngTest, ShuffleHandlesEmptyAndSingle) {
  Rng rng(31);
  std::vector<int> empty;
  rng.Shuffle(&empty);
  EXPECT_TRUE(empty.empty());
  std::vector<int> one = {7};
  rng.Shuffle(&one);
  EXPECT_EQ(one, std::vector<int>{7});
}

TEST(RngTest, SampleWithoutReplacementDistinct) {
  Rng rng(41);
  for (int trial = 0; trial < 50; ++trial) {
    std::vector<size_t> sample = rng.SampleWithoutReplacement(100, 10);
    ASSERT_EQ(sample.size(), 10u);
    std::set<size_t> unique(sample.begin(), sample.end());
    EXPECT_EQ(unique.size(), 10u);
    for (size_t v : sample) EXPECT_LT(v, 100u);
  }
}

TEST(RngTest, SampleWithoutReplacementWholePool) {
  Rng rng(43);
  std::vector<size_t> sample = rng.SampleWithoutReplacement(5, 5);
  std::sort(sample.begin(), sample.end());
  EXPECT_EQ(sample, (std::vector<size_t>{0, 1, 2, 3, 4}));
}

TEST(RngTest, SampleWithoutReplacementOverAsk) {
  Rng rng(43);
  std::vector<size_t> sample = rng.SampleWithoutReplacement(3, 10);
  EXPECT_EQ(sample.size(), 3u);
}

TEST(RngTest, SampleWithoutReplacementUnbiasedFirstElement) {
  // Every index should appear in a size-1 sample roughly uniformly.
  Rng rng(47);
  std::vector<int> counts(10, 0);
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    ++counts[rng.SampleWithoutReplacement(10, 1)[0]];
  }
  for (int c : counts) {
    EXPECT_NEAR(static_cast<double>(c) / n, 0.1, 0.01);
  }
}

TEST(RngTest, WeightedIndexZeroWeightNeverPicked) {
  Rng rng(53);
  std::vector<double> weights = {0.0, 1.0, 0.0, 2.0};
  for (int i = 0; i < 1000; ++i) {
    size_t idx = rng.WeightedIndex(weights);
    EXPECT_TRUE(idx == 1 || idx == 3);
  }
}

TEST(RngTest, WeightedIndexProportional) {
  Rng rng(59);
  std::vector<double> weights = {1.0, 3.0};
  const int n = 100000;
  int ones = 0;
  for (int i = 0; i < n; ++i) ones += rng.WeightedIndex(weights) == 1 ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(ones) / n, 0.75, 0.01);
}

TEST(RngTest, WeightedIndexAllZeroFallsBackToUniform) {
  Rng rng(61);
  std::vector<double> weights = {0.0, 0.0, 0.0};
  std::set<size_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.WeightedIndex(weights));
  EXPECT_EQ(seen.size(), 3u);
}

TEST(RngTest, WeightedIndexNegativeTreatedAsZero) {
  Rng rng(67);
  std::vector<double> weights = {-5.0, 1.0};
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(rng.WeightedIndex(weights), 1u);
  }
}

// Property sweep: Uniform(bound) mean should approach (bound-1)/2.
class RngUniformMeanTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RngUniformMeanTest, MeanMatchesExpectation) {
  uint64_t bound = GetParam();
  Rng rng(bound * 977 + 1);
  const int n = 200000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) {
    sum += static_cast<double>(rng.Uniform(bound));
  }
  double expected = static_cast<double>(bound - 1) / 2.0;
  EXPECT_NEAR(sum / n, expected, 0.02 * static_cast<double>(bound) + 0.02);
}

INSTANTIATE_TEST_SUITE_P(Bounds, RngUniformMeanTest,
                         ::testing::Values(2, 3, 5, 10, 100, 1000));

}  // namespace
}  // namespace cafc
