#include "text/porter_stemmer.h"

#include <string>
#include <utility>

#include <gtest/gtest.h>

namespace cafc::text {
namespace {

struct Case {
  const char* input;
  const char* expected;
};

class PorterCaseTest : public ::testing::TestWithParam<Case> {};

TEST_P(PorterCaseTest, StemsToExpected) {
  const Case& c = GetParam();
  EXPECT_EQ(PorterStem(c.input), c.expected) << "input: " << c.input;
}

// Step 1a: plural handling (examples from Porter 1980).
INSTANTIATE_TEST_SUITE_P(
    Step1aPlurals, PorterCaseTest,
    ::testing::Values(Case{"caresses", "caress"}, Case{"ponies", "poni"},
                      Case{"ties", "ti"}, Case{"caress", "caress"},
                      Case{"cats", "cat"}, Case{"forms", "form"},
                      Case{"databases", "databas"}));

// Step 1b: -eed / -ed / -ing with second-chance fixups.
INSTANTIATE_TEST_SUITE_P(
    Step1bEdIng, PorterCaseTest,
    ::testing::Values(Case{"feed", "feed"}, Case{"agreed", "agre"},
                      Case{"plastered", "plaster"}, Case{"bled", "bled"},
                      Case{"motoring", "motor"}, Case{"sing", "sing"},
                      Case{"conflated", "conflat"}, Case{"troubled", "troubl"},
                      Case{"sized", "size"}, Case{"hopping", "hop"},
                      Case{"tanned", "tan"}, Case{"falling", "fall"},
                      Case{"hissing", "hiss"}, Case{"fizzed", "fizz"},
                      Case{"failing", "fail"}, Case{"filing", "file"}));

// Step 1c: y -> i.
INSTANTIATE_TEST_SUITE_P(
    Step1cY, PorterCaseTest,
    ::testing::Values(Case{"happy", "happi"}, Case{"sky", "sky"}));

// Step 2: double suffixes.
INSTANTIATE_TEST_SUITE_P(
    Step2, PorterCaseTest,
    ::testing::Values(Case{"relational", "relat"},
                      Case{"conditional", "condit"},
                      Case{"rational", "ration"}, Case{"valenci", "valenc"},
                      Case{"hesitanci", "hesit"}, Case{"digitizer", "digit"},
                      Case{"conformabli", "conform"},
                      Case{"radicalli", "radic"},
                      Case{"differentli", "differ"}, Case{"vileli", "vile"},
                      Case{"analogousli", "analog"},
                      Case{"vietnamization", "vietnam"},
                      Case{"predication", "predic"},
                      Case{"operator", "oper"}, Case{"feudalism", "feudal"},
                      Case{"decisiveness", "decis"},
                      Case{"hopefulness", "hope"},
                      Case{"callousness", "callous"},
                      Case{"formaliti", "formal"},
                      Case{"sensitiviti", "sensit"},
                      Case{"sensibiliti", "sensibl"}));

// Step 3.
INSTANTIATE_TEST_SUITE_P(
    Step3, PorterCaseTest,
    ::testing::Values(Case{"triplicate", "triplic"},
                      Case{"formative", "form"}, Case{"formalize", "formal"},
                      Case{"electriciti", "electr"},
                      Case{"electrical", "electr"}, Case{"hopeful", "hope"},
                      Case{"goodness", "good"}));

// Step 4: residual suffixes require m > 1.
INSTANTIATE_TEST_SUITE_P(
    Step4, PorterCaseTest,
    ::testing::Values(Case{"revival", "reviv"}, Case{"allowance", "allow"},
                      Case{"inference", "infer"}, Case{"airliner", "airlin"},
                      Case{"gyroscopic", "gyroscop"},
                      Case{"adjustable", "adjust"},
                      Case{"defensible", "defens"},
                      Case{"irritant", "irrit"},
                      Case{"replacement", "replac"},
                      Case{"adjustment", "adjust"},
                      Case{"dependent", "depend"}, Case{"adoption", "adopt"},
                      Case{"homologou", "homolog"},
                      Case{"communism", "commun"}, Case{"activate", "activ"},
                      Case{"angulariti", "angular"},
                      Case{"homologous", "homolog"},
                      Case{"effective", "effect"}, Case{"bowdlerize",
                                                        "bowdler"}));

// Step 5: final -e and -ll.
INSTANTIATE_TEST_SUITE_P(
    Step5, PorterCaseTest,
    ::testing::Values(Case{"probate", "probat"}, Case{"rate", "rate"},
                      Case{"cease", "ceas"}, Case{"controll", "control"},
                      Case{"roll", "roll"}));

// Domain vocabulary of the paper's corpus.
INSTANTIATE_TEST_SUITE_P(
    DomainWords, PorterCaseTest,
    ::testing::Values(Case{"flights", "flight"}, Case{"booking", "book"},
                      Case{"hotels", "hotel"}, Case{"reservations",
                                                    "reserv"},
                      Case{"movies", "movi"}, Case{"rental", "rental"},
                      Case{"searching", "search"}, Case{"clustering",
                                                        "cluster"},
                      Case{"privacy", "privaci"}, Case{"copyright",
                                                       "copyright"}));

TEST(PorterStemTest, ShortWordsUntouched) {
  EXPECT_EQ(PorterStem("a"), "a");
  EXPECT_EQ(PorterStem("as"), "as");
  EXPECT_EQ(PorterStem("is"), "is");
  EXPECT_EQ(PorterStem(""), "");
}

TEST(PorterStemTest, NonLowercaseInputPassesThrough) {
  EXPECT_EQ(PorterStem("Forms"), "Forms");
  EXPECT_EQ(PorterStem("abc123"), "abc123");
  EXPECT_EQ(PorterStem("top-10"), "top-10");
}

TEST(PorterStemTest, IdempotentOnTypicalStems) {
  // Porter is not idempotent in general ("databases" -> "databas" ->
  // "databa"); but for these common families the stem is a fixed point.
  for (const char* word :
       {"flights", "relational", "hopping", "caresses", "formalize",
        "adjustment", "probate", "controlling"}) {
    std::string once = PorterStem(word);
    EXPECT_EQ(PorterStem(once), once) << "not idempotent for " << word;
  }
}

TEST(PorterStemTest, NeverLengthens) {
  for (const char* word :
       {"cat", "flights", "relational", "agreement", "skies", "controlled",
        "electricity", "engineering"}) {
    EXPECT_LE(PorterStem(word).size(), std::string(word).size());
  }
}

TEST(PorterStemTest, StemIsPrefixCompatibleFamily) {
  // Inflected family collapses to one stem.
  EXPECT_EQ(PorterStem("connect"), PorterStem("connected"));
  EXPECT_EQ(PorterStem("connect"), PorterStem("connecting"));
  EXPECT_EQ(PorterStem("connect"), PorterStem("connection"));
  EXPECT_EQ(PorterStem("connect"), PorterStem("connections"));
}

}  // namespace
}  // namespace cafc::text
