#include "html/tokenizer.h"

#include <gtest/gtest.h>

namespace cafc::html {
namespace {

std::vector<Token> Lex(std::string_view input) {
  return Tokenizer::TokenizeAll(input);
}

TEST(TokenizerTest, PlainText) {
  auto tokens = Lex("hello world");
  ASSERT_EQ(tokens.size(), 1u);
  EXPECT_EQ(tokens[0].type, TokenType::kText);
  EXPECT_EQ(tokens[0].text, "hello world");
}

TEST(TokenizerTest, SimpleElement) {
  auto tokens = Lex("<b>bold</b>");
  ASSERT_EQ(tokens.size(), 3u);
  EXPECT_EQ(tokens[0].type, TokenType::kStartTag);
  EXPECT_EQ(tokens[0].name, "b");
  EXPECT_EQ(tokens[1].type, TokenType::kText);
  EXPECT_EQ(tokens[1].text, "bold");
  EXPECT_EQ(tokens[2].type, TokenType::kEndTag);
  EXPECT_EQ(tokens[2].name, "b");
}

TEST(TokenizerTest, TagNamesLowercased) {
  auto tokens = Lex("<FORM></Form>");
  ASSERT_EQ(tokens.size(), 2u);
  EXPECT_EQ(tokens[0].name, "form");
  EXPECT_EQ(tokens[1].name, "form");
}

TEST(TokenizerTest, QuotedAttributes) {
  auto tokens = Lex(R"(<input type="text" name='query'>)");
  ASSERT_EQ(tokens.size(), 1u);
  ASSERT_EQ(tokens[0].attrs.size(), 2u);
  EXPECT_EQ(tokens[0].attrs[0].name, "type");
  EXPECT_EQ(tokens[0].attrs[0].value, "text");
  EXPECT_EQ(tokens[0].attrs[1].name, "name");
  EXPECT_EQ(tokens[0].attrs[1].value, "query");
}

TEST(TokenizerTest, UnquotedAttributeValue) {
  auto tokens = Lex("<input size=20 name=q>");
  ASSERT_EQ(tokens.size(), 1u);
  ASSERT_EQ(tokens[0].attrs.size(), 2u);
  EXPECT_EQ(tokens[0].attrs[0].value, "20");
  EXPECT_EQ(tokens[0].attrs[1].value, "q");
}

TEST(TokenizerTest, ValuelessAttribute) {
  auto tokens = Lex("<option selected>x</option>");
  ASSERT_GE(tokens.size(), 1u);
  ASSERT_EQ(tokens[0].attrs.size(), 1u);
  EXPECT_EQ(tokens[0].attrs[0].name, "selected");
  EXPECT_EQ(tokens[0].attrs[0].value, "");
}

TEST(TokenizerTest, AttributeNamesLowercased) {
  auto tokens = Lex("<input TYPE=\"TEXT\">");
  ASSERT_EQ(tokens[0].attrs.size(), 1u);
  EXPECT_EQ(tokens[0].attrs[0].name, "type");
  EXPECT_EQ(tokens[0].attrs[0].value, "TEXT");  // values keep case
}

TEST(TokenizerTest, EntityDecodedInAttributeValue) {
  auto tokens = Lex("<a href=\"x?a=1&amp;b=2\">");
  ASSERT_EQ(tokens[0].attrs.size(), 1u);
  EXPECT_EQ(tokens[0].attrs[0].value, "x?a=1&b=2");
}

TEST(TokenizerTest, EntityDecodedInText) {
  auto tokens = Lex("fish &amp; chips");
  ASSERT_EQ(tokens.size(), 1u);
  EXPECT_EQ(tokens[0].text, "fish & chips");
}

TEST(TokenizerTest, SelfClosingTag) {
  auto tokens = Lex("<br/><hr />");
  ASSERT_EQ(tokens.size(), 2u);
  EXPECT_TRUE(tokens[0].self_closing);
  EXPECT_TRUE(tokens[1].self_closing);
}

TEST(TokenizerTest, Comment) {
  auto tokens = Lex("a<!-- note -->b");
  ASSERT_EQ(tokens.size(), 3u);
  EXPECT_EQ(tokens[1].type, TokenType::kComment);
  EXPECT_EQ(tokens[1].text, " note ");
}

TEST(TokenizerTest, UnterminatedCommentConsumesRest) {
  auto tokens = Lex("a<!-- oops");
  ASSERT_EQ(tokens.size(), 2u);
  EXPECT_EQ(tokens[1].type, TokenType::kComment);
}

TEST(TokenizerTest, Doctype) {
  auto tokens = Lex("<!DOCTYPE html><p>x</p>");
  ASSERT_GE(tokens.size(), 3u);
  EXPECT_EQ(tokens[0].type, TokenType::kDoctype);
}

TEST(TokenizerTest, StrayLessThanIsText) {
  auto tokens = Lex("price < 100");
  ASSERT_EQ(tokens.size(), 1u);
  EXPECT_EQ(tokens[0].text, "price < 100");
}

TEST(TokenizerTest, TrailingLessThan) {
  auto tokens = Lex("x <");
  ASSERT_GE(tokens.size(), 1u);
  std::string all;
  for (const auto& t : tokens) all += t.text;
  EXPECT_EQ(all, "x <");
}

TEST(TokenizerTest, ScriptContentIsRawText) {
  auto tokens = Lex("<script>if (a < b) { x(); }</script>done");
  ASSERT_GE(tokens.size(), 4u);
  EXPECT_EQ(tokens[0].type, TokenType::kStartTag);
  EXPECT_EQ(tokens[0].name, "script");
  EXPECT_EQ(tokens[1].type, TokenType::kText);
  EXPECT_EQ(tokens[1].text, "if (a < b) { x(); }");
  EXPECT_EQ(tokens[2].type, TokenType::kEndTag);
  EXPECT_EQ(tokens[3].text, "done");
}

TEST(TokenizerTest, StyleContentIsRawText) {
  auto tokens = Lex("<style>p > a { color: red }</style>");
  ASSERT_GE(tokens.size(), 2u);
  EXPECT_EQ(tokens[1].text, "p > a { color: red }");
}

TEST(TokenizerTest, ScriptCloseTagCaseInsensitive) {
  auto tokens = Lex("<script>x</SCRIPT>after");
  std::string text;
  for (const auto& t : tokens) {
    if (t.type == TokenType::kText) text += t.text;
  }
  EXPECT_EQ(text, "xafter");
}

TEST(TokenizerTest, UnterminatedScriptConsumesRest) {
  auto tokens = Lex("<script>never closed");
  ASSERT_EQ(tokens.size(), 2u);
  EXPECT_EQ(tokens[1].text, "never closed");
}

TEST(TokenizerTest, EndTagAttributesDropped) {
  auto tokens = Lex("</form junk=1>");
  ASSERT_EQ(tokens.size(), 1u);
  EXPECT_EQ(tokens[0].type, TokenType::kEndTag);
  EXPECT_TRUE(tokens[0].attrs.empty());
}

TEST(TokenizerTest, GarbageTagSkipped) {
  auto tokens = Lex("a</>b");
  std::string text;
  for (const auto& t : tokens) text += t.text;
  EXPECT_EQ(text, "ab");
}

TEST(TokenizerTest, UnterminatedTagAtEof) {
  auto tokens = Lex("<input type=text");
  ASSERT_EQ(tokens.size(), 1u);
  EXPECT_EQ(tokens[0].type, TokenType::kStartTag);
  EXPECT_EQ(tokens[0].name, "input");
}

TEST(TokenizerTest, NewlinesInsideTag) {
  auto tokens = Lex("<select\n name=\"x\"\n>");
  ASSERT_EQ(tokens.size(), 1u);
  EXPECT_EQ(tokens[0].name, "select");
  ASSERT_EQ(tokens[0].attrs.size(), 1u);
  EXPECT_EQ(tokens[0].attrs[0].value, "x");
}

TEST(TokenizerTest, RealisticFormSnippet) {
  auto tokens = Lex(
      "<form action=\"/cgi-bin/search\" method=\"get\">"
      "<input type=\"text\" name=\"q\"><input type=submit value=\"Go\">"
      "</form>");
  ASSERT_EQ(tokens.size(), 4u);
  EXPECT_EQ(tokens[0].name, "form");
  EXPECT_EQ(tokens[0].attrs[0].value, "/cgi-bin/search");
  EXPECT_EQ(tokens[1].name, "input");
  EXPECT_EQ(tokens[2].attrs[1].value, "Go");
  EXPECT_EQ(tokens[3].type, TokenType::kEndTag);
}

}  // namespace
}  // namespace cafc::html
