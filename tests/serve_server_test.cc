// Unit tests of the DirectoryServer: serial-equivalent answers, admission
// control (queue-full backpressure), deadline expiry in the queue,
// idempotent draining shutdown, and refresh hot-swap publication.

#include "serve/server.h"

#include <future>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "core/cafc.h"
#include "core/corpus.h"
#include "core/ingest.h"
#include "util/rng.h"
#include "web/synthesizer.h"

namespace cafc {
namespace {

using serve::DirectoryServer;
using serve::DirectoryServerOptions;
using serve::QueryKind;
using serve::QueryRequest;
using serve::QueryResponse;
using serve::ServerStats;

web::SynthesizerConfig GrowConfig(uint32_t seed, size_t form_pages) {
  web::SynthesizerConfig config;
  config.seed = seed;
  config.form_pages_total = form_pages;
  config.single_attribute_forms = form_pages / 8;
  config.homogeneous_hubs_per_domain = 20;
  config.mixed_hubs = 30;
  config.directory_hubs = 3;
  config.large_air_hotel_hubs = 3;
  config.non_searchable_form_pages = 2;
  config.noise_pages = 2;
  config.outlier_pages = 0;
  return config;
}

Corpus GrowCorpus(uint32_t seed, size_t form_pages) {
  web::SyntheticWeb web =
      web::Synthesizer(GrowConfig(seed, form_pages)).Generate();
  Result<CorpusBuild> build = BuildCorpus(web);
  EXPECT_TRUE(build.ok()) << build.status().ToString();
  return std::move(build->corpus);
}

/// Cold-seeded CAFC-C directory over the corpus's current epoch.
/// Deterministic (fixed seed), so two calls over equal corpora produce
/// bit-identical directories — the replica trick the tests lean on.
DatabaseDirectory BuildDirectory(Corpus& corpus, int k = 6) {
  Rng rng(1234);
  cluster::Clustering clustering =
      CafcC(corpus.Weighted(), k, CafcOptions{}, &rng);
  return DatabaseDirectory::Build(
      corpus.Weighted(), clustering,
      DatabaseDirectory::AutoLabels(corpus.Weighted(), clustering));
}

QueryRequest ClassifyRequest(const forms::FormPageDocument& doc) {
  QueryRequest request;
  request.kind = QueryKind::kClassify;
  request.doc = doc;
  return request;
}

QueryRequest SearchRequest(std::string query, size_t top_k = 5) {
  QueryRequest request;
  request.kind = QueryKind::kSearch;
  request.query = std::move(query);
  request.top_k = top_k;
  return request;
}

TEST(DirectoryServerTest, AnswersMatchSerialLibraryCallsBitExactly) {
  Corpus corpus = GrowCorpus(21, 48);
  DatabaseDirectory directory = BuildDirectory(corpus);
  // Replica: same seeds, same build — bit-identical by the determinism
  // contract. Serves as the serial oracle while the server owns its copy.
  Corpus oracle_corpus = GrowCorpus(21, 48);
  DatabaseDirectory oracle = BuildDirectory(oracle_corpus);

  std::vector<forms::FormPageDocument> docs;
  for (const DatasetEntry& e : oracle_corpus.entries()) docs.push_back(e.doc);

  DirectoryServerOptions options;
  options.workers = 3;
  DirectoryServer server(std::move(directory), std::move(corpus), options);

  ASSERT_EQ(server.snapshot()->version(), 1u);

  std::vector<std::future<QueryResponse>> futures;
  for (const forms::FormPageDocument& doc : docs) {
    futures.push_back(server.Submit(ClassifyRequest(doc)));
  }
  for (size_t i = 0; i < docs.size(); ++i) {
    QueryResponse response = futures[i].get();
    ASSERT_TRUE(response.status.ok()) << response.status.ToString();
    EXPECT_EQ(response.snapshot_version, 1u);
    DatabaseDirectory::Classification expected =
        oracle.ClassifyDocument(docs[i]);
    EXPECT_EQ(response.classification.entry, expected.entry) << "doc " << i;
    EXPECT_EQ(response.classification.similarity, expected.similarity)
        << "doc " << i;  // exact doubles, not NEAR
    EXPECT_GE(response.queue_ms, 0.0);
    EXPECT_GE(response.service_ms, 0.0);
  }

  for (const char* q : {"job career", "hotel room flight", "music cd"}) {
    QueryResponse response = server.Query(SearchRequest(q));
    ASSERT_TRUE(response.status.ok());
    auto expected = oracle.Search(q, 5);
    ASSERT_EQ(response.hits.size(), expected.size()) << q;
    for (size_t i = 0; i < expected.size(); ++i) {
      EXPECT_EQ(response.hits[i].entry, expected[i].entry) << q;
      EXPECT_EQ(response.hits[i].similarity, expected[i].similarity) << q;
    }
  }

  ServerStats stats = server.Stats();
  EXPECT_EQ(stats.submitted, docs.size() + 3);
  EXPECT_EQ(stats.accepted, docs.size() + 3);
  EXPECT_EQ(stats.completed, docs.size() + 3);
  EXPECT_EQ(stats.rejected_queue_full, 0u);
  EXPECT_EQ(stats.total_us.count(), docs.size() + 3);
}

TEST(DirectoryServerTest, FullQueueRejectsWithUnavailable) {
  Corpus corpus = GrowCorpus(21, 24);
  DatabaseDirectory directory = BuildDirectory(corpus, 4);
  DirectoryServerOptions options;
  options.workers = 1;
  options.queue_capacity = 1;
  options.service_pad_ms = 100.0;  // each request holds the worker ~100 ms
  DirectoryServer server(std::move(directory), std::move(corpus), options);

  // Three instant submissions against one slow worker and a queue of one:
  // at most one executes immediately and one waits; the rest MUST bounce.
  std::vector<std::future<QueryResponse>> futures;
  for (int i = 0; i < 3; ++i) {
    futures.push_back(server.Submit(SearchRequest("job")));
  }
  size_t ok = 0;
  size_t unavailable = 0;
  for (auto& f : futures) {
    QueryResponse response = f.get();
    if (response.status.ok()) {
      ++ok;
    } else {
      EXPECT_EQ(response.status.code(), StatusCode::kUnavailable);
      ++unavailable;
    }
  }
  EXPECT_GE(unavailable, 1u);
  EXPECT_GE(ok, 1u);

  ServerStats stats = server.Stats();
  EXPECT_EQ(stats.submitted, 3u);
  EXPECT_EQ(stats.accepted + stats.rejected_queue_full, 3u);
  EXPECT_EQ(stats.rejected_queue_full, unavailable);
  // Rejected submissions never reach a worker, so no latency is recorded
  // for them.
  EXPECT_EQ(stats.total_us.count(), stats.accepted);
}

TEST(DirectoryServerTest, DeadlineBurnedInQueueIsDeadlineExceeded) {
  Corpus corpus = GrowCorpus(21, 24);
  DatabaseDirectory directory = BuildDirectory(corpus, 4);
  DirectoryServerOptions options;
  options.workers = 1;
  options.queue_capacity = 8;
  options.service_pad_ms = 150.0;
  DirectoryServer server(std::move(directory), std::move(corpus), options);

  // First request occupies the single worker for ~150 ms; the second has a
  // 1 ms budget and must expire while queued.
  std::future<QueryResponse> slow = server.Submit(SearchRequest("job"));
  QueryRequest doomed = SearchRequest("hotel");
  doomed.deadline_ms = 1.0;
  QueryResponse response = server.Submit(std::move(doomed)).get();
  EXPECT_EQ(response.status.code(), StatusCode::kDeadlineExceeded);
  EXPECT_GT(response.queue_ms, 1.0);
  EXPECT_TRUE(slow.get().status.ok());

  ServerStats stats = server.Stats();
  EXPECT_EQ(stats.deadline_exceeded, 1u);
  EXPECT_EQ(stats.completed, 1u);
}

TEST(DirectoryServerTest, ShutdownDrainsThenRejectsAndIsIdempotent) {
  Corpus corpus = GrowCorpus(21, 24);
  DatabaseDirectory directory = BuildDirectory(corpus, 4);
  DirectoryServerOptions options;
  options.workers = 2;
  options.service_pad_ms = 20.0;
  DirectoryServer server(std::move(directory), std::move(corpus), options);

  std::vector<std::future<QueryResponse>> futures;
  for (int i = 0; i < 6; ++i) {
    futures.push_back(server.Submit(SearchRequest("flight")));
  }
  server.Shutdown();
  // Every admitted request was answered before Shutdown returned — the
  // queue drains, it is not dropped.
  for (auto& f : futures) {
    EXPECT_TRUE(f.get().status.ok());
  }
  EXPECT_EQ(server.Stats().completed, 6u);

  QueryResponse late = server.Query(SearchRequest("job"));
  EXPECT_EQ(late.status.code(), StatusCode::kUnavailable);
  EXPECT_EQ(server.Stats().rejected_stopped, 1u);
  EXPECT_EQ(server.ScheduleRefresh({}).code(), StatusCode::kUnavailable);

  server.Shutdown();  // second call: no deadlock, no crash
  EXPECT_EQ(server.Stats().completed, 6u);
}

TEST(DirectoryServerTest, RefreshPublishesNewEpochMatchingSerialRefresh) {
  Corpus corpus = GrowCorpus(21, 48);
  DatabaseDirectory directory = BuildDirectory(corpus);
  // Serial oracle replica, advanced through the same refresh.
  Corpus oracle_corpus = GrowCorpus(21, 48);
  DatabaseDirectory oracle = BuildDirectory(oracle_corpus);

  DirectoryServerOptions options;
  options.workers = 2;
  DirectoryServer server(std::move(directory), std::move(corpus), options);
  const uint64_t epoch_before = server.snapshot()->corpus_epoch();

  Corpus incoming = GrowCorpus(22, 16);
  Corpus incoming_replica = GrowCorpus(22, 16);
  ASSERT_TRUE(server.ScheduleRefresh(incoming.TakeEntries()).ok());
  server.WaitForRefreshes();

  ASSERT_TRUE(oracle_corpus.AddPages(incoming_replica.TakeEntries()).ok());
  ASSERT_TRUE(oracle.Refresh(oracle_corpus).ok());

  serve::SnapshotPtr snap = server.snapshot();
  EXPECT_EQ(snap->version(), 2u);
  EXPECT_GT(snap->corpus_epoch(), epoch_before);
  EXPECT_EQ(snap->corpus_epoch(), oracle_corpus.epoch());

  // Post-refresh answers are bit-identical to the serial refresh path.
  for (const DatasetEntry& e : oracle_corpus.entries()) {
    QueryResponse response = server.Query(ClassifyRequest(e.doc));
    ASSERT_TRUE(response.status.ok());
    EXPECT_EQ(response.snapshot_version, 2u);
    DatabaseDirectory::Classification expected = oracle.ClassifyDocument(e.doc);
    EXPECT_EQ(response.classification.entry, expected.entry);
    EXPECT_EQ(response.classification.similarity, expected.similarity);
  }

  ServerStats stats = server.Stats();
  EXPECT_EQ(stats.refreshes, 1u);
  EXPECT_EQ(stats.epochs_published, 1u);
  EXPECT_EQ(stats.refresh_failures, 0u);
}

TEST(DirectoryServerTest, RefreshFailureKeepsServingOldSnapshot) {
  // An empty directory makes Refresh fail its precondition; the server
  // must count the failure and keep the published snapshot untouched.
  DatabaseDirectory empty;
  Corpus corpus;
  DirectoryServerOptions options;
  options.workers = 1;
  DirectoryServer server(std::move(empty), std::move(corpus), options);

  Corpus incoming = GrowCorpus(22, 8);
  ASSERT_TRUE(server.ScheduleRefresh(incoming.TakeEntries()).ok());
  server.WaitForRefreshes();

  EXPECT_EQ(server.snapshot()->version(), 1u);
  ServerStats stats = server.Stats();
  EXPECT_EQ(stats.refreshes, 0u);
  EXPECT_EQ(stats.refresh_failures, 1u);

  // Still serving: an empty directory classifies to entry -1, OK status.
  QueryResponse response =
      server.Query(ClassifyRequest(forms::FormPageDocument{}));
  EXPECT_TRUE(response.status.ok());
  EXPECT_EQ(response.classification.entry, -1);
}

}  // namespace
}  // namespace cafc
