#include "web/crawler.h"

#include <algorithm>
#include <map>

#include <gtest/gtest.h>

#include "web/synthesizer.h"

namespace cafc::web {
namespace {

/// Tiny hand-built web for precise crawl assertions.
class MiniWeb : public WebFetcher {
 public:
  void Add(std::string url, std::string html) {
    pages_[url] = WebPage{url, std::move(html)};
  }

  Result<const WebPage*> Fetch(std::string_view url) const override {
    auto it = pages_.find(std::string(url));
    if (it == pages_.end()) return Status::NotFound("404");
    return &it->second;
  }

 private:
  std::map<std::string, WebPage> pages_;
};

MiniWeb ThreePageWeb() {
  MiniWeb web;
  web.Add("http://a.com/",
          R"(<a href="/page1.html">one</a> <a href="http://b.com/">b</a>)");
  web.Add("http://a.com/page1.html",
          R"(<form action="/s"><input name=q></form>)");
  web.Add("http://b.com/", "terminal page, no links");
  return web;
}

TEST(CrawlerTest, VisitsAllReachablePages) {
  MiniWeb web = ThreePageWeb();
  Crawler crawler(&web);
  CrawlResult result = crawler.Crawl({"http://a.com/"});
  EXPECT_EQ(result.visited.size(), 3u);
  EXPECT_EQ(result.visited[0], "http://a.com/");  // BFS order: seed first
}

TEST(CrawlerTest, DetectsFormPages) {
  MiniWeb web = ThreePageWeb();
  Crawler crawler(&web);
  CrawlResult result = crawler.Crawl({"http://a.com/"});
  ASSERT_EQ(result.form_page_urls.size(), 1u);
  EXPECT_EQ(result.form_page_urls[0], "http://a.com/page1.html");
}

TEST(CrawlerTest, BuildsLinkGraph) {
  MiniWeb web = ThreePageWeb();
  Crawler crawler(&web);
  CrawlResult result = crawler.Crawl({"http://a.com/"});
  PageId a = result.graph.Lookup("http://a.com/");
  ASSERT_NE(a, kInvalidPageId);
  EXPECT_EQ(result.graph.OutLinks(a).size(), 2u);
}

TEST(CrawlerTest, DanglingLinksAreNotFetchFailures) {
  MiniWeb web;
  web.Add("http://a.com/", R"(<a href="/missing.html">x</a>)");
  Crawler crawler(&web);
  CrawlResult result = crawler.Crawl({"http://a.com/"});
  EXPECT_EQ(result.visited.size(), 1u);
  EXPECT_EQ(result.stats.dangling_links, 1u);
  EXPECT_EQ(result.stats.fetch_failures(), 0u);  // expected BFS noise
}

TEST(CrawlerTest, MaxPagesLimit) {
  MiniWeb web = ThreePageWeb();
  CrawlerOptions options;
  options.max_pages = 1;
  Crawler crawler(&web, options);
  CrawlResult result = crawler.Crawl({"http://a.com/"});
  EXPECT_EQ(result.visited.size(), 1u);
}

TEST(CrawlerTest, MaxDepthLimit) {
  MiniWeb web;
  web.Add("http://a.com/", R"(<a href="/1.html">x</a>)");
  web.Add("http://a.com/1.html", R"(<a href="/2.html">x</a>)");
  web.Add("http://a.com/2.html", "deep");
  CrawlerOptions options;
  options.max_depth = 1;
  Crawler crawler(&web, options);
  CrawlResult result = crawler.Crawl({"http://a.com/"});
  EXPECT_EQ(result.visited.size(), 2u);  // seed + depth-1 page
}

TEST(CrawlerTest, DuplicateSeedsVisitedOnce) {
  MiniWeb web = ThreePageWeb();
  Crawler crawler(&web);
  CrawlResult result =
      crawler.Crawl({"http://a.com/", "http://a.com/", "http://a.com/"});
  EXPECT_EQ(std::count(result.visited.begin(), result.visited.end(),
                       "http://a.com/"),
            1);
}

TEST(CrawlerTest, CyclesTerminate) {
  MiniWeb web;
  web.Add("http://a.com/x", R"(<a href="/y">y</a>)");
  web.Add("http://a.com/y", R"(<a href="/x">x</a>)");
  Crawler crawler(&web);
  CrawlResult result = crawler.Crawl({"http://a.com/x"});
  EXPECT_EQ(result.visited.size(), 2u);
}

TEST(CrawlerTest, BadSeedSkipped) {
  MiniWeb web = ThreePageWeb();
  Crawler crawler(&web);
  CrawlResult result = crawler.Crawl({"not a url", "http://a.com/"});
  EXPECT_EQ(result.visited.size(), 3u);
}

TEST(CrawlerTest, JavascriptAndMailtoIgnored) {
  MiniWeb web;
  web.Add("http://a.com/",
          R"html(<a href="javascript:void(0)">j</a><a href="mailto:x@y">m</a>)html");
  Crawler crawler(&web);
  CrawlResult result = crawler.Crawl({"http://a.com/"});
  EXPECT_EQ(result.visited.size(), 1u);
  EXPECT_EQ(result.stats.dangling_links, 0u);
  EXPECT_EQ(result.stats.fetch_failures(), 0u);
}

TEST(CrawlerTest, BaseHrefRespected) {
  MiniWeb web;
  web.Add("http://a.com/deep/dir/page.html",
          R"html(<base href="http://cdn.example.com/assets/">
                 <a href="rel.html">x</a>)html");
  web.Add("http://cdn.example.com/assets/rel.html", "resolved via base");
  Crawler crawler(&web);
  CrawlResult result = crawler.Crawl({"http://a.com/deep/dir/page.html"});
  EXPECT_EQ(result.visited.size(), 2u);
  EXPECT_EQ(result.visited[1], "http://cdn.example.com/assets/rel.html");
}

TEST(CrawlerTest, MalformedBaseHrefFallsBackToPageUrl) {
  MiniWeb web;
  web.Add("http://a.com/dir/page.html",
          R"html(<base href="mailto:bad"><a href="rel.html">x</a>)html");
  web.Add("http://a.com/dir/rel.html", "resolved against page");
  Crawler crawler(&web);
  CrawlResult result = crawler.Crawl({"http://a.com/dir/page.html"});
  EXPECT_EQ(result.visited.size(), 2u);
}

TEST(CrawlerTest, CoversFullSyntheticWeb) {
  SynthesizerConfig config;
  config.seed = 3;
  config.form_pages_total = 40;
  config.single_attribute_forms = 5;
  config.homogeneous_hubs_per_domain = 20;
  config.mixed_hubs = 40;
  config.directory_hubs = 4;
  config.large_air_hotel_hubs = 4;
  config.non_searchable_form_pages = 5;
  config.noise_pages = 5;
  config.outlier_pages = 0;
  SyntheticWeb web = Synthesizer(config).Generate();

  Crawler crawler(&web);
  CrawlResult result = crawler.Crawl(web.seed_urls());
  // Every generated page is reachable from the seeds.
  EXPECT_EQ(result.visited.size(), web.pages().size());
  // Every gold form page is discovered as a form page.
  for (const FormPageInfo& info : web.form_pages()) {
    EXPECT_NE(std::find(result.form_page_urls.begin(),
                        result.form_page_urls.end(), info.url),
              result.form_page_urls.end())
        << info.url;
  }
}

TEST(CrawlerTest, StreamingBatchesConcatenateToCandidateList) {
  SynthesizerConfig config;
  config.seed = 3;
  config.form_pages_total = 40;
  config.single_attribute_forms = 5;
  config.homogeneous_hubs_per_domain = 20;
  config.mixed_hubs = 40;
  config.directory_hubs = 4;
  config.large_air_hotel_hubs = 4;
  config.non_searchable_form_pages = 5;
  config.noise_pages = 5;
  config.outlier_pages = 0;
  SyntheticWeb web = Synthesizer(config).Generate();

  Crawler crawler(&web);
  CrawlResult batch = crawler.Crawl(web.seed_urls());

  std::vector<std::string> streamed;
  size_t streamed_doms = 0;
  size_t last_depth = 0;
  CrawlResult streaming =
      crawler.Crawl(web.seed_urls(), [&](CrawlPageBatch&& emitted) {
        EXPECT_GE(emitted.depth, last_depth);  // emitted in frontier order
        last_depth = emitted.depth;
        streamed_doms += emitted.doms.size();
        for (std::string& url : emitted.urls) {
          streamed.push_back(std::move(url));
        }
      });

  // The concatenation of the emitted batches IS the candidate list, and
  // the rest of the crawl output is unaffected by streaming.
  EXPECT_EQ(streamed, batch.form_page_urls);
  EXPECT_EQ(streaming.form_page_urls, batch.form_page_urls);
  EXPECT_EQ(streaming.visited, batch.visited);
  EXPECT_EQ(streaming.stats, batch.stats);
  // Without keep_form_page_doms neither path retains DOMs.
  EXPECT_EQ(streamed_doms, 0u);
  EXPECT_TRUE(streaming.form_page_doms.empty());
}

TEST(CrawlerTest, StreamingTransfersDomOwnership) {
  MiniWeb web = ThreePageWeb();
  CrawlerOptions options;
  options.keep_form_page_doms = true;
  Crawler crawler(&web, options);

  size_t streamed_doms = 0;
  std::vector<std::string> streamed;
  CrawlResult result =
      crawler.Crawl({"http://a.com/"}, [&](CrawlPageBatch&& emitted) {
        ASSERT_EQ(emitted.doms.size(), emitted.urls.size());
        streamed_doms += emitted.doms.size();
        for (std::string& url : emitted.urls) {
          streamed.push_back(std::move(url));
        }
      });

  // DOMs flow to the callback instead of accumulating in the result.
  EXPECT_EQ(streamed, result.form_page_urls);
  EXPECT_EQ(streamed_doms, result.form_page_urls.size());
  EXPECT_TRUE(result.form_page_doms.empty());
}

}  // namespace
}  // namespace cafc::web
