// Tests of ServerStats::Merge (the router's fleet aggregation) and the
// serve<->ipc stats boundary translation, including the histogram wire
// round trip the Stats RPC rides on.

#include "serve/server.h"

#include <string>

#include <gtest/gtest.h>

#include "ipc/message.h"
#include "serve/shard_service.h"
#include "util/histogram.h"
#include "util/varint.h"

namespace cafc::serve {
namespace {

ServerStats SampleStats(uint64_t base) {
  ServerStats stats;
  stats.submitted = base + 10;
  stats.accepted = base + 9;
  stats.rejected_queue_full = base + 1;
  stats.rejected_stopped = base;
  stats.deadline_exceeded = base / 2;
  stats.failed = base % 3;
  stats.completed = base + 8;
  stats.deadline_missed = base % 4;
  stats.cache_hits = base * 3;
  stats.cache_misses = base + 7;
  stats.cache_evictions = base % 6;
  stats.cache_entries = base + 2;
  stats.cache_bytes_used = base * 512;
  stats.stale_served = base % 3;
  stats.degraded_truncated = base % 5;
  stats.refreshes = base % 5;
  stats.refresh_failures = base % 2;
  stats.epochs_published = base % 5;
  stats.queue_peak = base + 3;
  for (uint64_t i = 0; i < base + 4; ++i) {
    stats.queue_us.Add(static_cast<double>(i * 10));
    stats.service_us.Add(static_cast<double>(i * 100 + 1));
    stats.service_cpu_us.Add(static_cast<double>(i * 90 + 1));
    stats.total_us.Add(static_cast<double>(i * 110 + 2));
    stats.distance_comps.Add(static_cast<double>(i % 7));
    // Each scheduling class gets a distinct latency regime so a band swap
    // in a merge or round trip would show up in the sums.
    for (size_t band = 0; band < kNumQueryPriorities; ++band) {
      stats.priority_total_us[band].Add(
          static_cast<double>((band + 1) * 1000 + i));
    }
  }
  stats.mapped_storage = (base % 2) == 1;
  stats.page_hits = base * 2;
  stats.page_misses = base;
  stats.page_evictions = base / 3;
  stats.page_cached = base % 11;
  stats.storage_fixed_bytes = base * 1000;
  stats.storage_resident_bytes = base * 1500;
  stats.memory_budget_bytes = base * 2000;
  return stats;
}

TEST(ServerStatsMergeTest, CountersAddPeaksMaxStorageGaugesAdd) {
  ServerStats a = SampleStats(4);
  ServerStats b = SampleStats(9);
  const uint64_t a_completed = a.completed;
  const uint64_t a_count = a.total_us.count();
  const double a_sum = a.total_us.sum();

  a.Merge(b);
  EXPECT_EQ(a.submitted, 14u + 19u);
  EXPECT_EQ(a.accepted, 13u + 18u);
  EXPECT_EQ(a.rejected_queue_full, 5u + 10u);
  EXPECT_EQ(a.completed, a_completed + b.completed);
  EXPECT_EQ(a.refreshes, 4u % 5 + 9u % 5);
  // Peaks of independent queues do not add.
  EXPECT_EQ(a.queue_peak, 12u);
  // Histograms merge element-wise: counts and sums add exactly.
  EXPECT_EQ(a.total_us.count(), a_count + b.total_us.count());
  EXPECT_EQ(a.total_us.sum(), a_sum + b.total_us.sum());
  // Storage gauges add; mapped_storage ORs.
  EXPECT_TRUE(a.mapped_storage);  // b (base 9) is mapped
  EXPECT_EQ(a.page_hits, 8u + 18u);
  EXPECT_EQ(a.storage_resident_bytes, 4u * 1500 + 9u * 1500);
}

TEST(ServerStatsMergeTest, SchedulingAndCacheCountersAdd) {
  ServerStats a = SampleStats(4);
  const ServerStats b = SampleStats(9);
  const ServerStats before = SampleStats(4);
  a.Merge(b);
  EXPECT_EQ(a.deadline_missed, before.deadline_missed + b.deadline_missed);
  EXPECT_EQ(a.cache_hits, before.cache_hits + b.cache_hits);
  EXPECT_EQ(a.cache_misses, before.cache_misses + b.cache_misses);
  EXPECT_EQ(a.cache_evictions, before.cache_evictions + b.cache_evictions);
  // Cache gauges add like the storage gauges: the merged view answers
  // "what is the fleet holding now".
  EXPECT_EQ(a.cache_entries, before.cache_entries + b.cache_entries);
  EXPECT_EQ(a.cache_bytes_used,
            before.cache_bytes_used + b.cache_bytes_used);
  EXPECT_EQ(a.stale_served, before.stale_served + b.stale_served);
  EXPECT_EQ(a.degraded_truncated,
            before.degraded_truncated + b.degraded_truncated);
}

TEST(ServerStatsMergeTest, PriorityHistogramsMergePerBand) {
  ServerStats a = SampleStats(4);
  const ServerStats b = SampleStats(9);
  const ServerStats before = SampleStats(4);
  a.Merge(b);
  for (size_t band = 0; band < kNumQueryPriorities; ++band) {
    EXPECT_EQ(a.priority_total_us[band].count(),
              before.priority_total_us[band].count() +
                  b.priority_total_us[band].count())
        << "band=" << band;
    EXPECT_EQ(a.priority_total_us[band].sum(),
              before.priority_total_us[band].sum() +
                  b.priority_total_us[band].sum())
        << "band=" << band;
  }
}

TEST(ServerStatsMergeTest, HistogramMergeWithEmptySideIsIdentity) {
  // Both directions: empty.Merge(full) == full, full.Merge(empty) == full.
  util::Histogram full;
  for (int i = 0; i < 32; ++i) full.Add(static_cast<double>(i * 13 + 1));
  util::Histogram onto_empty;
  onto_empty.Merge(full);
  EXPECT_EQ(onto_empty.count(), full.count());
  EXPECT_EQ(onto_empty.sum(), full.sum());
  EXPECT_EQ(onto_empty.min(), full.min());
  EXPECT_EQ(onto_empty.max(), full.max());
  util::Histogram from_empty = full;
  from_empty.Merge(util::Histogram{});
  EXPECT_EQ(from_empty.count(), full.count());
  EXPECT_EQ(from_empty.sum(), full.sum());
  EXPECT_EQ(from_empty.min(), full.min());
  EXPECT_EQ(from_empty.max(), full.max());
}

TEST(ServerStatsMergeTest, HistogramMergeAcrossDisjointBucketRanges) {
  // The two inputs populate entirely different buckets of the compiled-in
  // layout; the merge must keep both populations intact rather than
  // collapsing onto either range.
  util::Histogram low;
  for (int i = 0; i < 16; ++i) low.Add(1.0 + i * 0.25);  // ~1-5 us
  util::Histogram high;
  for (int i = 0; i < 16; ++i) {
    high.Add(1e6 + i * 1e5);  // ~1-2.5 s, far buckets
  }
  const uint64_t low_count = low.count();
  const double low_sum = low.sum();
  low.Merge(high);
  EXPECT_EQ(low.count(), low_count + high.count());
  EXPECT_EQ(low.sum(), low_sum + high.sum());
  EXPECT_EQ(low.min(), 1.0);
  EXPECT_EQ(low.max(), high.max());
  // The median stays in the low range and p99 lands in the high range:
  // both bucket populations survived the merge.
  EXPECT_LT(low.Percentile(40), 100.0);
  EXPECT_GT(low.Percentile(99), 1e5);
}

TEST(ServerStatsMergeTest, MergeWithEmptyIsIdentity) {
  ServerStats a = SampleStats(6);
  ServerStats before = SampleStats(6);
  a.Merge(ServerStats{});
  EXPECT_EQ(a.submitted, before.submitted);
  EXPECT_EQ(a.completed, before.completed);
  EXPECT_EQ(a.queue_peak, before.queue_peak);
  EXPECT_EQ(a.total_us.count(), before.total_us.count());
  EXPECT_EQ(a.total_us.sum(), before.total_us.sum());
  EXPECT_EQ(a.mapped_storage, before.mapped_storage);
}

TEST(ServerStatsMergeTest, MergeIsCommutativeOnCountersAndHistograms) {
  ServerStats ab = SampleStats(3);
  ab.Merge(SampleStats(11));
  ServerStats ba = SampleStats(11);
  ba.Merge(SampleStats(3));
  EXPECT_EQ(ab.submitted, ba.submitted);
  EXPECT_EQ(ab.completed, ba.completed);
  EXPECT_EQ(ab.queue_peak, ba.queue_peak);
  EXPECT_EQ(ab.total_us.count(), ba.total_us.count());
  EXPECT_EQ(ab.total_us.sum(), ba.total_us.sum());
  EXPECT_EQ(ab.service_cpu_us.sum(), ba.service_cpu_us.sum());
  EXPECT_EQ(ab.total_us.min(), ba.total_us.min());
  EXPECT_EQ(ab.total_us.max(), ba.total_us.max());
}

TEST(ServerStatsWireTest, ToWireAndBackPreservesServingFields) {
  ServerStats stats = SampleStats(7);
  ServerStats decoded = FromWireStats(ToWireStats(stats));
  EXPECT_EQ(decoded.submitted, stats.submitted);
  EXPECT_EQ(decoded.accepted, stats.accepted);
  EXPECT_EQ(decoded.rejected_queue_full, stats.rejected_queue_full);
  EXPECT_EQ(decoded.rejected_stopped, stats.rejected_stopped);
  EXPECT_EQ(decoded.deadline_exceeded, stats.deadline_exceeded);
  EXPECT_EQ(decoded.failed, stats.failed);
  EXPECT_EQ(decoded.completed, stats.completed);
  EXPECT_EQ(decoded.refreshes, stats.refreshes);
  EXPECT_EQ(decoded.refresh_failures, stats.refresh_failures);
  EXPECT_EQ(decoded.epochs_published, stats.epochs_published);
  EXPECT_EQ(decoded.queue_peak, stats.queue_peak);
  EXPECT_EQ(decoded.deadline_missed, stats.deadline_missed);
  EXPECT_EQ(decoded.cache_hits, stats.cache_hits);
  EXPECT_EQ(decoded.cache_misses, stats.cache_misses);
  EXPECT_EQ(decoded.cache_evictions, stats.cache_evictions);
  EXPECT_EQ(decoded.cache_entries, stats.cache_entries);
  EXPECT_EQ(decoded.cache_bytes_used, stats.cache_bytes_used);
  EXPECT_EQ(decoded.stale_served, stats.stale_served);
  EXPECT_EQ(decoded.degraded_truncated, stats.degraded_truncated);
  EXPECT_EQ(decoded.total_us.count(), stats.total_us.count());
  EXPECT_EQ(decoded.total_us.sum(), stats.total_us.sum());  // bit-exact
  EXPECT_EQ(decoded.service_cpu_us.sum(), stats.service_cpu_us.sum());
  EXPECT_EQ(decoded.distance_comps.count(), stats.distance_comps.count());
  for (size_t band = 0; band < kNumQueryPriorities; ++band) {
    EXPECT_EQ(decoded.priority_total_us[band].count(),
              stats.priority_total_us[band].count())
        << "band=" << band;
    EXPECT_EQ(decoded.priority_total_us[band].sum(),
              stats.priority_total_us[band].sum())
        << "band=" << band;
  }
  // Storage gauges do not travel (the RPC reports serving work only).
  EXPECT_FALSE(decoded.mapped_storage);
  EXPECT_EQ(decoded.page_hits, 0u);
}

TEST(ServerStatsWireTest, StatsResponseWireRoundTripIsExact) {
  ipc::StatsResponse wire = ToWireStats(SampleStats(13));
  std::string bytes;
  wire.EncodeTo(&bytes);
  util::ByteReader reader(bytes);
  ipc::StatsResponse decoded;
  ASSERT_TRUE(decoded.DecodeFrom(&reader).ok());
  EXPECT_EQ(decoded.submitted, wire.submitted);
  EXPECT_EQ(decoded.completed, wire.completed);
  EXPECT_EQ(decoded.queue_peak, wire.queue_peak);
  EXPECT_EQ(decoded.cache_hits, wire.cache_hits);
  EXPECT_EQ(decoded.stale_served, wire.stale_served);
  EXPECT_EQ(decoded.degraded_truncated, wire.degraded_truncated);
  EXPECT_EQ(decoded.priority_total_us[0].sum(),
            wire.priority_total_us[0].sum());
  EXPECT_EQ(decoded.priority_total_us[2].count(),
            wire.priority_total_us[2].count());
  EXPECT_EQ(decoded.total_us.count(), wire.total_us.count());
  EXPECT_EQ(decoded.total_us.sum(), wire.total_us.sum());
  EXPECT_EQ(decoded.total_us.min(), wire.total_us.min());
  EXPECT_EQ(decoded.total_us.max(), wire.total_us.max());
  EXPECT_EQ(decoded.service_us.Percentile(95),
            wire.service_us.Percentile(95));
}

TEST(ServerStatsWireTest, TruncatedStatsBytesFailCleanly) {
  ipc::StatsResponse wire = ToWireStats(SampleStats(5));
  std::string bytes;
  wire.EncodeTo(&bytes);
  for (size_t cut : {size_t{0}, size_t{1}, bytes.size() / 2,
                     bytes.size() - 1}) {
    util::ByteReader reader(std::string_view(bytes).substr(0, cut));
    ipc::StatsResponse decoded;
    EXPECT_FALSE(decoded.DecodeFrom(&reader).ok()) << "cut=" << cut;
  }
}

}  // namespace
}  // namespace cafc::serve
