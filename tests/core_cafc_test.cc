#include "core/cafc.h"

#include <cmath>
#include <set>

#include <gtest/gtest.h>

#include "core/dataset.h"
#include "eval/metrics.h"
#include "web/synthesizer.h"

namespace cafc {
namespace {

web::SynthesizerConfig SmallConfig() {
  web::SynthesizerConfig config;
  config.seed = 99;
  config.form_pages_total = 96;
  config.single_attribute_forms = 12;
  config.homogeneous_hubs_per_domain = 60;
  config.mixed_hubs = 120;
  config.directory_hubs = 6;
  config.large_air_hotel_hubs = 6;
  config.non_searchable_form_pages = 10;
  config.noise_pages = 10;
  config.outlier_pages = 0;  // keep the small corpus clean
  return config;
}

class CafcTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    web::SyntheticWeb web = web::Synthesizer(SmallConfig()).Generate();
    dataset_ = new Dataset(std::move(BuildDataset(web)).value());
    pages_ = new FormPageSet(BuildFormPageSet(*dataset_));
    gold_ = new std::vector<int>(dataset_->GoldLabels());
  }
  static void TearDownTestSuite() {
    delete gold_;
    delete pages_;
    delete dataset_;
    gold_ = nullptr;
    pages_ = nullptr;
    dataset_ = nullptr;
  }

  static double Entropy(const cluster::Clustering& c) {
    eval::ContingencyTable t(*gold_, web::kNumDomains, c);
    return eval::TotalEntropy(t);
  }
  static double FMeasure(const cluster::Clustering& c) {
    eval::ContingencyTable t(*gold_, web::kNumDomains, c);
    return eval::OverallFMeasure(t);
  }

  static Dataset* dataset_;
  static FormPageSet* pages_;
  static std::vector<int>* gold_;
};

Dataset* CafcTest::dataset_ = nullptr;
FormPageSet* CafcTest::pages_ = nullptr;
std::vector<int>* CafcTest::gold_ = nullptr;

TEST_F(CafcTest, CafcCProducesKClustersWithFullAssignment) {
  Rng rng(1);
  cluster::Clustering c = CafcC(*pages_, 8, CafcOptions{}, &rng);
  EXPECT_EQ(c.num_clusters, 8);
  ASSERT_EQ(c.assignment.size(), pages_->size());
  for (int a : c.assignment) {
    EXPECT_GE(a, 0);
    EXPECT_LT(a, 8);
  }
}

TEST_F(CafcTest, CafcCQualityIsReasonable) {
  // Averaged over a few random seeds, content k-means must do far better
  // than chance on this clean corpus.
  double entropy_sum = 0.0;
  double f_sum = 0.0;
  const int runs = 5;
  for (int r = 0; r < runs; ++r) {
    Rng rng(100 + static_cast<uint64_t>(r));
    cluster::Clustering c = CafcC(*pages_, 8, CafcOptions{}, &rng);
    entropy_sum += Entropy(c);
    f_sum += FMeasure(c);
  }
  EXPECT_LT(entropy_sum / runs, 1.0);   // chance would be ~ln(8) = 2.08
  EXPECT_GT(f_sum / runs, 0.6);
}

TEST_F(CafcTest, CafcCDeterministicGivenRngSeed) {
  Rng rng_a(7);
  Rng rng_b(7);
  cluster::Clustering a = CafcC(*pages_, 8, CafcOptions{}, &rng_a);
  cluster::Clustering b = CafcC(*pages_, 8, CafcOptions{}, &rng_b);
  EXPECT_EQ(a.assignment, b.assignment);
}

TEST_F(CafcTest, CafcChBeatsCafcCOnAverage) {
  CafcChOptions ch_options;
  ch_options.min_hub_cardinality = 5;  // small corpus → smaller clusters
  CafcChReport report;
  cluster::Clustering ch = CafcCh(*pages_, 8, ch_options, &report);
  double ch_entropy = Entropy(ch);

  double c_entropy_sum = 0.0;
  const int runs = 5;
  for (int r = 0; r < runs; ++r) {
    Rng rng(200 + static_cast<uint64_t>(r));
    c_entropy_sum += Entropy(CafcC(*pages_, 8, CafcOptions{}, &rng));
  }
  EXPECT_LT(ch_entropy, c_entropy_sum / runs + 1e-9);
  EXPECT_GT(report.hub_clusters_total, 0u);
  EXPECT_GT(report.hub_clusters_kept, 0u);
  EXPECT_GT(FMeasure(ch), 0.8);
}

TEST_F(CafcTest, CafcChReportsFilteringCounts) {
  CafcChOptions options;
  options.min_hub_cardinality = 3;
  CafcChReport loose;
  CafcCh(*pages_, 8, options, &loose);
  options.min_hub_cardinality = 8;
  CafcChReport strict;
  CafcCh(*pages_, 8, options, &strict);
  EXPECT_EQ(loose.hub_clusters_total, strict.hub_clusters_total);
  EXPECT_GT(loose.hub_clusters_kept, strict.hub_clusters_kept);
}

TEST_F(CafcTest, CafcChDeterministic) {
  CafcChOptions options;
  cluster::Clustering a = CafcCh(*pages_, 8, options);
  cluster::Clustering b = CafcCh(*pages_, 8, options);
  EXPECT_EQ(a.assignment, b.assignment);
}

TEST_F(CafcTest, ContentConfigsProduceDifferentClusterings) {
  CafcChOptions fc_only;
  fc_only.cafc.content = ContentConfig::kFcOnly;
  CafcChOptions pc_only;
  pc_only.cafc.content = ContentConfig::kPcOnly;
  cluster::Clustering fc = CafcCh(*pages_, 8, fc_only);
  cluster::Clustering pc = CafcCh(*pages_, 8, pc_only);
  EXPECT_NE(fc.assignment, pc.assignment);
}

TEST_F(CafcTest, HacVariantsProduceValidClusterings) {
  cluster::Clustering plain = CafcHac(*pages_, 8, CafcOptions{});
  EXPECT_EQ(plain.num_clusters, 8);
  for (int a : plain.assignment) EXPECT_GE(a, 0);

  std::vector<HubCluster> hubs =
      FilterByCardinality(GenerateHubClusters(*pages_), 5);
  std::vector<HubCluster> seeds = SelectHubClusters(*pages_, hubs, 8, {});
  std::vector<std::vector<size_t>> members;
  for (const HubCluster& s : seeds) members.push_back(s.members);
  cluster::Clustering seeded = CafcHacWithSeeds(*pages_, members, 8,
                                                CafcOptions{});
  EXPECT_EQ(seeded.num_clusters, 8);
}

TEST_F(CafcTest, HacSeededKMeansRuns) {
  cluster::Clustering c = HacSeededKMeans(*pages_, 8, CafcOptions{});
  EXPECT_EQ(c.num_clusters, 8);
  EXPECT_LT(Entropy(c), std::log(8.0));
}

TEST_F(CafcTest, BisectingProducesKClusters) {
  Rng rng(3);
  cluster::Clustering c = CafcBisecting(*pages_, 8, CafcOptions{}, &rng);
  EXPECT_EQ(c.num_clusters, 8);
  for (int a : c.assignment) {
    EXPECT_GE(a, 0);
    EXPECT_LT(a, 8);
  }
  // All clusters non-empty (we always split into two non-empty halves).
  for (int j = 0; j < 8; ++j) {
    EXPECT_GT(c.ClusterSize(j), 0u) << j;
  }
}

TEST_F(CafcTest, BisectingQualityComparableToKMeans) {
  double entropy_sum = 0.0;
  const int runs = 5;
  for (int r = 0; r < runs; ++r) {
    Rng rng(700 + static_cast<uint64_t>(r));
    entropy_sum += Entropy(CafcBisecting(*pages_, 8, CafcOptions{}, &rng));
  }
  EXPECT_LT(entropy_sum / runs, 1.2);  // far better than chance (ln 8)
}

TEST_F(CafcTest, BisectingDeterministicPerRngSeed) {
  Rng a(17);
  Rng b(17);
  EXPECT_EQ(CafcBisecting(*pages_, 8, CafcOptions{}, &a).assignment,
            CafcBisecting(*pages_, 8, CafcOptions{}, &b).assignment);
}

TEST_F(CafcTest, BisectingKLargerThanPoints) {
  // Build a 3-page set; asking for 8 clusters must stop at 3.
  FormPageSet tiny;
  for (int i = 0; i < 3; ++i) {
    FormPage page;
    page.pc = vsm::SparseVector::FromUnsorted(
        {{static_cast<vsm::TermId>(i), 1.0}});
    page.fc = page.pc;
    tiny.mutable_pages()->push_back(std::move(page));
  }
  Rng rng(5);
  cluster::Clustering c = CafcBisecting(tiny, 8, CafcOptions{}, &rng);
  EXPECT_EQ(c.num_clusters, 3);
}

TEST_F(CafcTest, FallbackSeedsExactlyKWhenBacklinksDepleted) {
  // Strip every backlink: no hub can be generated, so Algorithm 3 must
  // degrade to the farthest-point singleton fallback and still hand the
  // k-means exactly k seeds.
  FormPageSet bare(pages_->shared_dictionary());
  for (const FormPage& page : pages_->pages()) {
    FormPage stripped = page;
    stripped.backlinks.clear();
    bare.mutable_pages()->push_back(std::move(stripped));
  }
  CafcChReport report;
  cluster::Clustering c = CafcCh(bare, 8, CafcChOptions{}, &report);
  EXPECT_EQ(report.hub_clusters_total, 0u);
  EXPECT_EQ(report.hub_clusters_kept, 0u);
  EXPECT_EQ(report.padded_seeds, 8u);  // every seed is a fallback singleton
  EXPECT_EQ(c.num_clusters, 8);
  ASSERT_EQ(c.assignment.size(), bare.size());
  for (int a : c.assignment) {
    EXPECT_GE(a, 0);
    EXPECT_LT(a, 8);
  }
}

TEST(CafcChFallbackTest, PipelineCompletesWithDeadBacklinkEngine) {
  // End-to-end §3.1 worst case: the backlink engine indexes nothing
  // (coverage 0), so every page reports "no backlinks" even after the
  // root fallback — CAFC-CH must still run and produce k clusters.
  web::SyntheticWeb web = web::Synthesizer(SmallConfig()).Generate();
  DatasetOptions options;
  options.backlinks.coverage = 0.0;
  Result<Dataset> dataset = BuildDataset(web, options);
  ASSERT_TRUE(dataset.ok());
  EXPECT_EQ(dataset->stats.pages_without_any_backlinks,
            dataset->entries.size());
  FormPageSet pages = BuildFormPageSet(*dataset);
  CafcChReport report;
  cluster::Clustering c = CafcCh(pages, 8, CafcChOptions{}, &report);
  EXPECT_EQ(report.hub_clusters_total, 0u);
  EXPECT_EQ(report.padded_seeds, 8u);
  EXPECT_EQ(c.num_clusters, 8);
  ASSERT_EQ(c.assignment.size(), pages.size());
}

TEST_F(CafcTest, SingleAttributePagesClusteredWithTheirDomain) {
  // The paper's headline: single-attribute forms are handled correctly
  // because PC compensates for the empty FC. Check that CAFC-CH places a
  // clear majority of singles into their domain-majority cluster.
  CafcChOptions options;
  options.min_hub_cardinality = 5;
  cluster::Clustering c = CafcCh(*pages_, 8, options);

  // Majority gold domain per cluster.
  std::vector<std::vector<int>> votes(
      8, std::vector<int>(web::kNumDomains, 0));
  for (size_t i = 0; i < pages_->size(); ++i) {
    ++votes[static_cast<size_t>(c.assignment[i])]
           [static_cast<size_t>((*gold_)[i])];
  }
  std::vector<int> majority(8, 0);
  for (int j = 0; j < 8; ++j) {
    for (int d = 1; d < web::kNumDomains; ++d) {
      if (votes[j][d] > votes[j][majority[j]]) majority[j] = d;
    }
  }
  int singles = 0;
  int singles_correct = 0;
  for (size_t i = 0; i < pages_->size(); ++i) {
    if (!dataset_->entries[i].single_attribute) continue;
    ++singles;
    if (majority[static_cast<size_t>(c.assignment[i])] == (*gold_)[i]) {
      ++singles_correct;
    }
  }
  ASSERT_GT(singles, 0);
  EXPECT_GE(singles_correct * 10, singles * 7)  // >= 70%
      << singles_correct << "/" << singles;
}

}  // namespace
}  // namespace cafc
