#include "core/schema_baseline.h"

#include <gtest/gtest.h>

#include "core/cafc.h"
#include "eval/metrics.h"
#include "web/synthesizer.h"

namespace cafc {
namespace {

web::SynthesizerConfig SmallConfig() {
  web::SynthesizerConfig config;
  config.seed = 31;
  config.form_pages_total = 96;
  config.single_attribute_forms = 16;
  config.homogeneous_hubs_per_domain = 20;
  config.mixed_hubs = 30;
  config.directory_hubs = 2;
  config.large_air_hotel_hubs = 2;
  config.non_searchable_form_pages = 0;
  config.noise_pages = 0;
  config.outlier_pages = 0;
  return config;
}

class SchemaBaselineTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    web::SyntheticWeb web = web::Synthesizer(SmallConfig()).Generate();
    dataset_ = new Dataset(std::move(BuildDataset(web)).value());
    schema_ = new FormPageSet(BuildSchemaPageSet(*dataset_));
  }
  static void TearDownTestSuite() {
    delete schema_;
    delete dataset_;
    schema_ = nullptr;
    dataset_ = nullptr;
  }

  static Dataset* dataset_;
  static FormPageSet* schema_;
};

Dataset* SchemaBaselineTest::dataset_ = nullptr;
FormPageSet* SchemaBaselineTest::schema_ = nullptr;

TEST_F(SchemaBaselineTest, AlignedWithDataset) {
  ASSERT_EQ(schema_->size(), dataset_->entries.size());
  for (size_t i = 0; i < schema_->size(); ++i) {
    EXPECT_EQ(schema_->page(i).url, dataset_->entries[i].doc.url);
  }
}

TEST_F(SchemaBaselineTest, PcIsAlwaysEmpty) {
  for (size_t i = 0; i < schema_->size(); ++i) {
    EXPECT_TRUE(schema_->page(i).pc.empty());
  }
}

TEST_F(SchemaBaselineTest, MultiAttributePagesHaveSchemaVectors) {
  size_t multi = 0;
  size_t multi_with_schema = 0;
  for (size_t i = 0; i < schema_->size(); ++i) {
    if (dataset_->entries[i].single_attribute) continue;
    ++multi;
    if (!schema_->page(i).fc.empty()) ++multi_with_schema;
  }
  ASSERT_GT(multi, 0u);
  EXPECT_GE(multi_with_schema * 10, multi * 9);  // >= 90%
}

TEST_F(SchemaBaselineTest, SingleAttributePagesOftenEmptyOrThin) {
  // The paper's argument: keyword interfaces carry no schema. Their
  // vectors must be markedly thinner than multi-attribute ones.
  double single_terms = 0.0;
  size_t singles = 0;
  double multi_terms = 0.0;
  size_t multis = 0;
  for (size_t i = 0; i < schema_->size(); ++i) {
    if (dataset_->entries[i].single_attribute) {
      ++singles;
      single_terms += static_cast<double>(schema_->page(i).fc.size());
    } else {
      ++multis;
      multi_terms += static_cast<double>(schema_->page(i).fc.size());
    }
  }
  ASSERT_GT(singles, 0u);
  ASSERT_GT(multis, 0u);
  EXPECT_LT(single_terms / static_cast<double>(singles),
            0.5 * multi_terms / static_cast<double>(multis));
}

TEST_F(SchemaBaselineTest, ClusteringBeatsChanceButLosesToCafc) {
  std::vector<int> gold = dataset_->GoldLabels();
  CafcOptions fc_only;
  fc_only.content = ContentConfig::kFcOnly;

  double schema_entropy = 0.0;
  for (int r = 0; r < 5; ++r) {
    Rng rng(400 + static_cast<uint64_t>(r));
    cluster::Clustering c =
        CafcC(*schema_, web::kNumDomains, fc_only, &rng);
    eval::ContingencyTable t(gold, web::kNumDomains, c);
    schema_entropy += eval::TotalEntropy(t);
  }
  schema_entropy /= 5;
  EXPECT_LT(schema_entropy, 1.8);  // far better than chance (ln 8 = 2.08)

  FormPageSet cafc_pages = BuildFormPageSet(*dataset_);
  double cafc_entropy = 0.0;
  for (int r = 0; r < 5; ++r) {
    Rng rng(400 + static_cast<uint64_t>(r));
    cluster::Clustering c =
        CafcC(cafc_pages, web::kNumDomains, CafcOptions{}, &rng);
    eval::ContingencyTable t(gold, web::kNumDomains, c);
    cafc_entropy += eval::TotalEntropy(t);
  }
  cafc_entropy /= 5;
  EXPECT_LT(cafc_entropy, schema_entropy);
}

TEST_F(SchemaBaselineTest, FieldNamesOptional) {
  SchemaBaselineOptions no_names;
  no_names.include_field_names = false;
  FormPageSet without = BuildSchemaPageSet(*dataset_, no_names);
  // Dropping field names can only shrink (or keep) the vectors.
  size_t shrunk = 0;
  for (size_t i = 0; i < without.size(); ++i) {
    EXPECT_LE(without.page(i).fc.size(), schema_->page(i).fc.size() + 2);
    if (without.page(i).fc.size() < schema_->page(i).fc.size()) ++shrunk;
  }
  EXPECT_GT(shrunk, 0u);
}

}  // namespace
}  // namespace cafc
