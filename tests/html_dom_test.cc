#include "html/dom.h"

#include <gtest/gtest.h>

namespace cafc::html {
namespace {

TEST(DomTest, SimpleTree) {
  Document doc = Parse("<html><body><p>hi</p></body></html>");
  const Node* html = doc.root().FindFirst("html");
  ASSERT_NE(html, nullptr);
  const Node* p = doc.root().FindFirst("p");
  ASSERT_NE(p, nullptr);
  EXPECT_EQ(p->TextContent(), "hi");
}

TEST(DomTest, VoidElementsTakeNoChildren) {
  Document doc = Parse("<p><br>text after br</p>");
  const Node* br = doc.root().FindFirst("br");
  ASSERT_NE(br, nullptr);
  EXPECT_TRUE(br->children().empty());
  const Node* p = doc.root().FindFirst("p");
  EXPECT_EQ(p->TextContent(), "text after br");
}

TEST(DomTest, InputIsVoid) {
  Document doc = Parse("<form><input type=text>trailing</form>");
  const Node* input = doc.root().FindFirst("input");
  ASSERT_NE(input, nullptr);
  EXPECT_TRUE(input->children().empty());
  EXPECT_EQ(doc.root().FindFirst("form")->TextContent(), "trailing");
}

TEST(DomTest, IsVoidElement) {
  EXPECT_TRUE(IsVoidElement("br"));
  EXPECT_TRUE(IsVoidElement("input"));
  EXPECT_TRUE(IsVoidElement("img"));
  EXPECT_FALSE(IsVoidElement("form"));
  EXPECT_FALSE(IsVoidElement("option"));
}

TEST(DomTest, ImplicitOptionClose) {
  Document doc = Parse(
      "<select><option>a<option>b<option>c</select>");
  auto options = doc.root().FindAll("option");
  ASSERT_EQ(options.size(), 3u);
  EXPECT_EQ(options[0]->TextContent(), "a");
  EXPECT_EQ(options[1]->TextContent(), "b");
  EXPECT_EQ(options[2]->TextContent(), "c");
}

TEST(DomTest, ImplicitLiClose) {
  Document doc = Parse("<ul><li>one<li>two</ul>");
  auto items = doc.root().FindAll("li");
  ASSERT_EQ(items.size(), 2u);
  EXPECT_EQ(items[0]->TextContent(), "one");
  EXPECT_EQ(items[1]->TextContent(), "two");
}

TEST(DomTest, ImplicitCloseStopsAtFormBoundary) {
  // The <option> inside the form must not close a <p> outside it in a way
  // that pops the form off the stack.
  Document doc = Parse("<p>before<form><select><option>x</select></form>");
  const Node* form = doc.root().FindFirst("form");
  ASSERT_NE(form, nullptr);
  EXPECT_NE(form->FindFirst("option"), nullptr);
}

TEST(DomTest, UnmatchedEndTagIgnored) {
  Document doc = Parse("<div>a</span>b</div>");
  const Node* div = doc.root().FindFirst("div");
  ASSERT_NE(div, nullptr);
  EXPECT_EQ(div->TextContent(), "a b");
}

TEST(DomTest, UnclosedTagsClosedAtEof) {
  Document doc = Parse("<div><p>dangling");
  EXPECT_NE(doc.root().FindFirst("p"), nullptr);
  EXPECT_EQ(doc.root().FindFirst("p")->TextContent(), "dangling");
}

TEST(DomTest, EndTagClosesIntermediateElements) {
  // </div> closes the still-open <b>.
  Document doc = Parse("<div><b>bold</div>after");
  const Node* div = doc.root().FindFirst("div");
  ASSERT_NE(div, nullptr);
  EXPECT_EQ(div->TextContent(), "bold");
}

TEST(DomTest, GetAttr) {
  Document doc = Parse("<form action=\"/search\" method=\"GET\">");
  const Node* form = doc.root().FindFirst("form");
  ASSERT_NE(form, nullptr);
  EXPECT_EQ(form->GetAttr("action"), "/search");
  EXPECT_EQ(form->GetAttr("method"), "GET");
  EXPECT_EQ(form->GetAttr("missing"), "");
  EXPECT_TRUE(form->HasAttr("action"));
  EXPECT_FALSE(form->HasAttr("missing"));
}

TEST(DomTest, FindAllPreOrder) {
  Document doc = Parse("<div><a>1</a><p><a>2</a></p><a>3</a></div>");
  auto anchors = doc.root().FindAll("a");
  ASSERT_EQ(anchors.size(), 3u);
  EXPECT_EQ(anchors[0]->TextContent(), "1");
  EXPECT_EQ(anchors[1]->TextContent(), "2");
  EXPECT_EQ(anchors[2]->TextContent(), "3");
}

TEST(DomTest, FindFirstReturnsNullWhenAbsent) {
  Document doc = Parse("<p>no form here</p>");
  EXPECT_EQ(doc.root().FindFirst("form"), nullptr);
}

TEST(DomTest, TextContentCollapsesWhitespace) {
  Document doc = Parse("<p>  a  \n  b  </p>");
  EXPECT_EQ(doc.root().FindFirst("p")->TextContent(), "a  \n  b");
}

TEST(DomTest, TextContentJoinsAcrossElements) {
  Document doc = Parse("<p>one<b>two</b>three</p>");
  EXPECT_EQ(doc.root().FindFirst("p")->TextContent(), "one two three");
}

TEST(DomTest, CommentsPreservedAsNodes) {
  Document doc = Parse("<div><!-- hidden --></div>");
  const Node* div = doc.root().FindFirst("div");
  ASSERT_EQ(div->children().size(), 1u);
  EXPECT_EQ(div->children()[0]->type(), NodeType::kComment);
  EXPECT_EQ(div->TextContent(), "");  // comments are not text
}

TEST(DomTest, VisitPrunesSubtree) {
  Document doc = Parse("<div><form><p>in form</p></form><p>outside</p></div>");
  int paragraphs_seen = 0;
  doc.root().Visit([&paragraphs_seen](const Node& node) {
    if (node.type() == NodeType::kElement && node.tag() == "form") {
      return false;  // prune
    }
    if (node.type() == NodeType::kElement && node.tag() == "p") {
      ++paragraphs_seen;
    }
    return true;
  });
  EXPECT_EQ(paragraphs_seen, 1);
}

TEST(DomTest, EmptyInput) {
  Document doc = Parse("");
  EXPECT_EQ(doc.root().type(), NodeType::kDocument);
  EXPECT_TRUE(doc.root().children().empty());
}

TEST(DomTest, DeeplyNestedSoupDoesNotCrash) {
  std::string soup;
  for (int i = 0; i < 200; ++i) soup += "<div><span>";
  soup += "core";
  Document doc = Parse(soup);
  EXPECT_NE(doc.root().FindFirst("span"), nullptr);
}

TEST(DomTest, NestedTablesWithImplicitCells) {
  Document doc = Parse(
      "<table><tr><td>a<td>b<tr><td>c</table>");
  auto cells = doc.root().FindAll("td");
  ASSERT_EQ(cells.size(), 3u);
  auto rows = doc.root().FindAll("tr");
  EXPECT_EQ(rows.size(), 2u);
}

TEST(DomTest, SelfClosingNonVoidTakesNoChildren) {
  Document doc = Parse("<div/>text");
  const Node* div = doc.root().FindFirst("div");
  ASSERT_NE(div, nullptr);
  EXPECT_TRUE(div->children().empty());
}

}  // namespace
}  // namespace cafc::html
