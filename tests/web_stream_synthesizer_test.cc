#include "web/stream_synthesizer.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "forms/form_classifier.h"
#include "forms/form_extractor.h"
#include "html/dom.h"

namespace cafc::web {
namespace {

StreamingWebConfig SmallConfig() {
  StreamingWebConfig config;
  config.seed = 7;
  config.sites = 48;
  config.hubs_per_site = 0.5;
  config.hub_fanout = 7;
  config.max_site_pages = 5;
  return config;
}

TEST(StreamSynthesizerTest, GenerationIsAPureFunctionOfConfigAndUrl) {
  StreamingWeb a(SmallConfig());
  StreamingWeb b(SmallConfig());  // independent instance, same config
  std::vector<std::string> urls = {a.SiteRootUrl(3), a.FormPageUrl(3),
                                   a.FormPageUrl(47), a.HubUrl(0),
                                   a.HubUrl(a.num_hubs() - 1)};
  for (size_t s = 0; s < a.num_form_pages(); ++s) {
    if (a.FillerPages(s) > 0) {
      urls.push_back(a.FillerUrl(s, a.FillerPages(s) - 1));
      break;
    }
  }
  for (const std::string& url : urls) {
    Result<WebPage> first = a.GeneratePage(url);
    Result<WebPage> again = a.GeneratePage(url);
    Result<WebPage> other = b.GeneratePage(url);
    ASSERT_TRUE(first.ok()) << url;
    EXPECT_EQ(first->html, again->html) << url;
    EXPECT_EQ(first->html, other->html) << url;
    EXPECT_EQ(first->url, url);
  }
}

TEST(StreamSynthesizerTest, FetchServesTheGeneratedBytesWithStablePointers) {
  StreamingWeb web(SmallConfig());
  const std::string url = web.FormPageUrl(5);
  Result<const WebPage*> fetched = web.Fetch(url);
  ASSERT_TRUE(fetched.ok());
  Result<WebPage> generated = web.GeneratePage(url);
  EXPECT_EQ((*fetched)->html, generated->html);
  // Same pointer on a re-fetch (the WebFetcher stability contract).
  EXPECT_EQ(*web.Fetch(url), *fetched);
}

TEST(StreamSynthesizerTest, ByIndexFormPageMatchesUrlRoundTrip) {
  StreamingWeb web(SmallConfig());
  for (size_t s : {size_t{0}, size_t{17}, size_t{47}}) {
    Result<WebPage> via_url = web.GeneratePage(web.FormPageUrl(s));
    ASSERT_TRUE(via_url.ok());
    EXPECT_EQ(web.FormPage(s).html, via_url->html);
  }
}

TEST(StreamSynthesizerTest, UrlsOutsideTheUniverseAreNotFound) {
  StreamingWeb web(SmallConfig());
  for (const char* url :
       {"http://elsewhere.com/", "http://s48.stream/search.html",
        "http://s5.stream/nosuch.html", "http://s5.stream/p99.html",
        "http://h9999.stream/links.html", "not a url",
        "http://sX.stream/search.html"}) {
    EXPECT_FALSE(web.GeneratePage(url).ok()) << url;
    EXPECT_FALSE(web.Fetch(url).ok()) << url;
  }
}

TEST(StreamSynthesizerTest, CitingHubsMatchesTheHubPagesExactly) {
  StreamingWeb web(SmallConfig());
  // Ground truth by exhaustive scan: hub h cites site s iff its HTML
  // carries a quoted link to s's form page or root.
  std::vector<std::string> hub_html;
  for (size_t h = 0; h < web.num_hubs(); ++h) {
    hub_html.push_back(web.GeneratePage(web.HubUrl(h))->html);
  }
  for (size_t s = 0; s < web.num_form_pages(); ++s) {
    const std::string form_link = "\"" + web.FormPageUrl(s) + "\"";
    const std::string root_link = "\"" + web.SiteRootUrl(s) + "\"";
    std::vector<std::string> expected;
    for (size_t h = 0; h < web.num_hubs(); ++h) {
      if (hub_html[h].find(form_link) != std::string::npos ||
          hub_html[h].find(root_link) != std::string::npos) {
        expected.push_back(web.HubUrl(h));
      }
    }
    std::vector<std::string> derived = web.CitingHubs(s);
    std::sort(derived.begin(), derived.end());
    std::sort(expected.begin(), expected.end());
    EXPECT_EQ(derived, expected) << "site " << s;
    EXPECT_FALSE(derived.empty()) << "site " << s;
  }
}

TEST(StreamSynthesizerTest, MaterializeReproducesTheStreamedUniverse) {
  StreamingWeb stream(SmallConfig());
  SyntheticWeb web = stream.Materialize();
  EXPECT_EQ(web.pages().size(), stream.TotalPages());
  ASSERT_EQ(web.form_pages().size(), stream.num_form_pages());
  for (size_t s = 0; s < stream.num_form_pages(); ++s) {
    const FormPageInfo* info = web.FindFormPage(stream.FormPageUrl(s));
    ASSERT_NE(info, nullptr);
    EXPECT_EQ(info->domain, stream.GoldDomain(s));
    EXPECT_EQ(info->root_url, stream.SiteRootUrl(s));
    // The materialized bytes are the streamed bytes.
    Result<const WebPage*> page = web.Fetch(info->url);
    ASSERT_TRUE(page.ok());
    EXPECT_EQ((*page)->html, stream.FormPage(s).html);
  }
  EXPECT_EQ(web.hub_urls().size(), stream.num_hubs());
  EXPECT_FALSE(web.seed_urls().empty());
}

TEST(StreamSynthesizerTest, DomainsFormContiguousBlocksOverTheSiteRange) {
  StreamingWebConfig config = SmallConfig();
  config.domains = 4;
  StreamingWeb web(config);
  int last = -1;
  std::vector<bool> seen(kNumDomains, false);
  for (size_t s = 0; s < web.num_form_pages(); ++s) {
    int d = static_cast<int>(web.GoldDomain(s));
    EXPECT_GE(d, last);  // non-decreasing == contiguous blocks
    last = d;
    seen[static_cast<size_t>(d)] = true;
  }
  EXPECT_EQ(std::count(seen.begin(), seen.end(), true), 4);
}

TEST(StreamSynthesizerTest, StreamedFormPagesClassifySearchable) {
  StreamingWeb web(SmallConfig());
  forms::FormClassifier classifier;
  size_t searchable = 0;
  for (size_t s = 0; s < web.num_form_pages(); ++s) {
    html::Document dom = html::Parse(web.FormPage(s).html);
    for (const forms::Form& form : forms::ExtractForms(dom)) {
      if (classifier.IsSearchable(form)) {
        ++searchable;
        break;
      }
    }
  }
  // The generator aims every page at the searchable filter; allow the
  // classifier a small false-negative rate like the crawl pipeline does.
  EXPECT_GE(searchable, web.num_form_pages() * 9 / 10);
}

TEST(StreamSynthesizerTest, ZipfSiteSizesAreSkewedAndCapped) {
  StreamingWebConfig config = SmallConfig();
  config.sites = 2000;
  config.max_site_pages = 6;
  StreamingWeb web(config);
  size_t empty = 0, capped = 0;
  for (size_t s = 0; s < config.sites; ++s) {
    size_t fillers = web.FillerPages(s);
    EXPECT_LE(fillers, config.max_site_pages);
    if (fillers == 0) ++empty;
    if (fillers == config.max_site_pages) ++capped;
  }
  EXPECT_GT(empty, config.sites / 3);  // most sites are tiny
  EXPECT_GT(capped, 0u);               // a heavy tail exists
}

}  // namespace
}  // namespace cafc::web
