// Bit-identity of the index-accelerated directory paths: for every
// classify and search below, the indexed overload must return the exact
// same entry, similarity, and hit order as the full centroid scan — while
// the query-cost accounting shows it scored no more centroids than the
// scan would have.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "cluster/centroid_index.h"
#include "core/cafc.h"
#include "core/dataset.h"
#include "core/directory.h"
#include "web/synthesizer.h"

namespace cafc {
namespace {

web::SynthesizerConfig SmallConfig() {
  web::SynthesizerConfig config;
  config.seed = 55;
  config.form_pages_total = 64;
  config.single_attribute_forms = 8;
  config.homogeneous_hubs_per_domain = 25;
  config.mixed_hubs = 40;
  config.directory_hubs = 3;
  config.large_air_hotel_hubs = 3;
  config.non_searchable_form_pages = 0;
  config.noise_pages = 0;
  config.outlier_pages = 0;
  return config;
}

class CentroidIndexTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    web::SyntheticWeb web = web::Synthesizer(SmallConfig()).Generate();
    dataset_ = new Dataset(std::move(BuildDataset(web)).value());
    pages_ = new FormPageSet(BuildFormPageSet(*dataset_));
    Rng rng(55);
    cluster::Clustering clustering =
        CafcC(*pages_, web::kNumDomains, CafcOptions{}, &rng);
    directory_ = new DatabaseDirectory(DatabaseDirectory::Build(
        *pages_, clustering,
        DatabaseDirectory::AutoLabels(*pages_, clustering)));
    index_ = new cluster::CentroidIndex(directory_->BuildCentroidIndex());
  }
  static void TearDownTestSuite() {
    delete index_;
    delete directory_;
    delete pages_;
    delete dataset_;
    index_ = nullptr;
    directory_ = nullptr;
    pages_ = nullptr;
    dataset_ = nullptr;
  }

  static Dataset* dataset_;
  static FormPageSet* pages_;
  static DatabaseDirectory* directory_;
  static cluster::CentroidIndex* index_;
};

Dataset* CentroidIndexTest::dataset_ = nullptr;
FormPageSet* CentroidIndexTest::pages_ = nullptr;
DatabaseDirectory* CentroidIndexTest::directory_ = nullptr;
cluster::CentroidIndex* CentroidIndexTest::index_ = nullptr;

TEST_F(CentroidIndexTest, IndexCoversEveryEntry) {
  EXPECT_EQ(index_->num_centroids(), directory_->size());
  EXPECT_GT(index_->num_postings(), 0u);
}

TEST_F(CentroidIndexTest, IndexedClassifyPageIsBitIdenticalToTheFullScan) {
  for (ContentConfig config :
       {ContentConfig::kFcPlusPc, ContentConfig::kFcOnly,
        ContentConfig::kPcOnly}) {
    for (size_t i = 0; i < pages_->size(); ++i) {
      DatabaseDirectory::Classification scan =
          directory_->ClassifyPage(pages_->page(i), config);
      DirectoryQueryCost cost;
      DatabaseDirectory::Classification indexed =
          directory_->ClassifyPage(pages_->page(i), config, *index_, &cost);
      EXPECT_EQ(indexed.entry, scan.entry) << "page " << i;
      EXPECT_EQ(indexed.similarity, scan.similarity) << "page " << i;  // bits
      EXPECT_LE(cost.centroids_scored, directory_->size());
      EXPECT_GT(cost.postings_visited, 0u);
    }
  }
}

TEST_F(CentroidIndexTest, IndexedClassifyDocumentIsBitIdentical) {
  for (size_t i = 0; i < dataset_->entries.size(); ++i) {
    const forms::FormPageDocument& doc = dataset_->entries[i].doc;
    DatabaseDirectory::Classification scan =
        directory_->ClassifyDocument(doc);
    DirectoryQueryCost cost;
    DatabaseDirectory::Classification indexed = directory_->ClassifyDocument(
        doc, ContentConfig::kFcPlusPc, *index_, &cost);
    EXPECT_EQ(indexed.entry, scan.entry) << "doc " << i;
    EXPECT_EQ(indexed.similarity, scan.similarity) << "doc " << i;
  }
}

TEST_F(CentroidIndexTest, IndexedSearchReturnsTheExactSameHits) {
  for (const char* query :
       {"job career resume employment", "hotel rooms reservation",
        "cheap flights airline tickets", "music movie book", "car rental",
        "search databases online", "job"}) {
    std::vector<DatabaseDirectory::SearchHit> scan =
        directory_->Search(query, 5);
    DirectoryQueryCost cost;
    std::vector<DatabaseDirectory::SearchHit> indexed =
        directory_->Search(query, 5, *index_, &cost);
    ASSERT_EQ(indexed.size(), scan.size()) << query;
    for (size_t i = 0; i < scan.size(); ++i) {
      EXPECT_EQ(indexed[i].entry, scan[i].entry) << query;
      EXPECT_EQ(indexed[i].similarity, scan[i].similarity) << query;
    }
    EXPECT_LE(cost.centroids_scored, directory_->size());
  }
}

TEST_F(CentroidIndexTest, UnknownTermsScoreNoCentroidsAtAll) {
  // A query outside the vocabulary never touches a posting list — the
  // sublinear best case, with an identical (empty) result.
  DirectoryQueryCost cost;
  std::vector<DatabaseDirectory::SearchHit> indexed =
      directory_->Search("zzzzqqqq xxxyyy", 5, *index_, &cost);
  EXPECT_TRUE(indexed.empty());
  EXPECT_TRUE(directory_->Search("zzzzqqqq xxxyyy", 5).empty());
  EXPECT_EQ(cost.centroids_scored, 0u);
  EXPECT_EQ(cost.postings_visited, 0u);
}

TEST_F(CentroidIndexTest, NarrowQueriesScoreFewerCentroidsThanTheScan) {
  // A one-word query touches only the entries carrying that term. Across
  // the whole domain vocabulary at least some queries must come in under
  // the full-scan cost, or the index isn't pruning anything.
  uint64_t scored = 0, scanned = 0;
  for (const char* query : {"job", "hotel", "flight", "music", "movie",
                            "book", "car", "rental"}) {
    DirectoryQueryCost cost;
    directory_->Search(query, 5, *index_, &cost);
    scored += cost.centroids_scored;
    scanned += directory_->size();
  }
  EXPECT_LT(scored, scanned);
}

TEST_F(CentroidIndexTest, ScratchIsReusableAcrossQueriesAndIndexes) {
  // One Scratch serving interleaved queries must not leak state between
  // calls: repeat a query after scoring different ones and expect the
  // identical verdict.
  cluster::CentroidIndex::Scratch scratch;
  const FormPage& probe = pages_->page(0);
  auto score = [&](const FormPage& page) {
    double best = -1.0;
    int arg = -1;
    index_->Score(page.pc, page.fc, /*use_pc=*/true, /*use_fc=*/true,
                  &scratch, [&](int c, double pc_cos, double fc_cos) {
                    double sim = pc_cos + fc_cos;
                    if (sim > best) {
                      best = sim;
                      arg = c;
                    }
                  });
    return arg;
  };
  int first = score(probe);
  for (size_t i = 1; i < 10 && i < pages_->size(); ++i) score(pages_->page(i));
  EXPECT_EQ(score(probe), first);
}

}  // namespace
}  // namespace cafc
