#include "vsm/term_dictionary.h"

#include <string>
#include <vector>

#include <gtest/gtest.h>

namespace cafc::vsm {
namespace {

TEST(TermDictionaryTest, InternAssignsDenseIdsInFirstSeenOrder) {
  TermDictionary dict;
  EXPECT_EQ(dict.Intern("alpha"), 0u);
  EXPECT_EQ(dict.Intern("beta"), 1u);
  EXPECT_EQ(dict.Intern("alpha"), 0u);
  EXPECT_EQ(dict.Intern("gamma"), 2u);
  EXPECT_EQ(dict.size(), 3u);
  EXPECT_EQ(dict.term(0), "alpha");
  EXPECT_EQ(dict.term(1), "beta");
  EXPECT_EQ(dict.term(2), "gamma");
}

TEST(TermDictionaryTest, LookupFindsInternedAndRejectsUnknown) {
  TermDictionary dict;
  dict.Intern("alpha");
  EXPECT_EQ(dict.Lookup("alpha"), 0u);
  EXPECT_EQ(dict.Lookup("beta"), kInvalidTermId);
  // Heterogeneous probe: string_view into a larger buffer.
  std::string buffer = "xxalphaxx";
  EXPECT_EQ(dict.Lookup(std::string_view(buffer).substr(2, 5)), 0u);
}

TEST(TermDictionaryTest, ReservePreservesContents) {
  TermDictionary dict;
  dict.Intern("alpha");
  dict.Intern("beta");
  dict.Reserve(10'000);
  EXPECT_EQ(dict.size(), 2u);
  EXPECT_EQ(dict.Lookup("alpha"), 0u);
  EXPECT_EQ(dict.Lookup("beta"), 1u);
  for (int i = 0; i < 100; ++i) {
    dict.Intern("term" + std::to_string(i));
  }
  EXPECT_EQ(dict.term(0), "alpha");
  EXPECT_EQ(dict.Lookup("term99"), 101u);
}

TEST(TermDictionaryTest, MergeIntoEmptyIsIdentity) {
  TermDictionary shard;
  shard.Intern("alpha");
  shard.Intern("beta");
  TermDictionary merged;
  std::vector<TermId> remap = merged.Merge(shard);
  ASSERT_EQ(remap.size(), 2u);
  EXPECT_EQ(remap[0], 0u);
  EXPECT_EQ(remap[1], 1u);
  EXPECT_EQ(merged.size(), 2u);
  EXPECT_EQ(merged.term(0), "alpha");
  EXPECT_EQ(merged.term(1), "beta");
}

TEST(TermDictionaryTest, MergeRemapsOverlappingShards) {
  TermDictionary merged;
  merged.Intern("alpha");  // 0
  merged.Intern("beta");   // 1

  TermDictionary shard;
  shard.Intern("beta");   // shard id 0
  shard.Intern("gamma");  // shard id 1
  shard.Intern("alpha");  // shard id 2

  std::vector<TermId> remap = merged.Merge(shard);
  ASSERT_EQ(remap.size(), 3u);
  EXPECT_EQ(remap[0], 1u);  // beta already had id 1
  EXPECT_EQ(remap[1], 2u);  // gamma is new, appended
  EXPECT_EQ(remap[2], 0u);  // alpha already had id 0
  EXPECT_EQ(merged.size(), 3u);
  EXPECT_EQ(merged.term(2), "gamma");
}

TEST(TermDictionaryTest, MergeOrderIsDeterministic) {
  // Merging the same shards in the same order always produces the same
  // id assignment — the property the parallel ingestion build relies on.
  auto build = [] {
    TermDictionary a;
    a.Intern("x");
    a.Intern("y");
    TermDictionary b;
    b.Intern("y");
    b.Intern("z");
    TermDictionary merged;
    merged.Merge(a);
    merged.Merge(b);
    return merged;
  };
  TermDictionary first = build();
  TermDictionary second = build();
  ASSERT_EQ(first.size(), second.size());
  for (TermId id = 0; id < first.size(); ++id) {
    EXPECT_EQ(first.term(id), second.term(id));
  }
}

TEST(TermDictionaryTest, MergeEmptyShardIsNoOp) {
  TermDictionary merged;
  merged.Intern("alpha");
  TermDictionary empty;
  EXPECT_TRUE(merged.Merge(empty).empty());
  EXPECT_EQ(merged.size(), 1u);
}

TEST(TermDictionaryTest, CopyPreservesIds) {
  // The directory persistence layer copies dictionaries wholesale.
  TermDictionary dict;
  dict.Intern("alpha");
  dict.Intern("beta");
  TermDictionary copy = dict;
  EXPECT_EQ(copy.Lookup("beta"), 1u);
  copy.Intern("gamma");
  EXPECT_EQ(copy.size(), 3u);
  EXPECT_EQ(dict.size(), 2u);
}

}  // namespace
}  // namespace cafc::vsm
