// End-to-end integration tests over the full paper-scale corpus (454 form
// pages). These assert the *shape* of the paper's headline results, with
// generous margins so they stay robust to generator tweaks.

#include <gtest/gtest.h>

#include "core/cafc.h"
#include "core/dataset.h"
#include "eval/metrics.h"
#include "web/synthesizer.h"

namespace cafc {
namespace {

class IntegrationTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    web_ = new web::SyntheticWeb(
        web::Synthesizer(web::SynthesizerConfig{}).Generate());
    dataset_ = new Dataset(std::move(BuildDataset(*web_)).value());
    pages_ = new FormPageSet(BuildFormPageSet(*dataset_));
    gold_ = new std::vector<int>(dataset_->GoldLabels());
  }
  static void TearDownTestSuite() {
    delete gold_;
    delete pages_;
    delete dataset_;
    delete web_;
    gold_ = nullptr;
    pages_ = nullptr;
    dataset_ = nullptr;
    web_ = nullptr;
  }

  struct Quality {
    double entropy;
    double f_measure;
  };

  static Quality Score(const cluster::Clustering& c) {
    eval::ContingencyTable t(*gold_, web::kNumDomains, c);
    return {eval::TotalEntropy(t), eval::OverallFMeasure(t)};
  }

  static Quality AverageCafcC(ContentConfig config, int runs) {
    Quality sum{0.0, 0.0};
    CafcOptions options;
    options.content = config;
    for (int r = 0; r < runs; ++r) {
      Rng rng(5000 + static_cast<uint64_t>(r));
      Quality q = Score(CafcC(*pages_, web::kNumDomains, options, &rng));
      sum.entropy += q.entropy;
      sum.f_measure += q.f_measure;
    }
    return {sum.entropy / runs, sum.f_measure / runs};
  }

  static web::SyntheticWeb* web_;
  static Dataset* dataset_;
  static FormPageSet* pages_;
  static std::vector<int>* gold_;
};

web::SyntheticWeb* IntegrationTest::web_ = nullptr;
Dataset* IntegrationTest::dataset_ = nullptr;
FormPageSet* IntegrationTest::pages_ = nullptr;
std::vector<int>* IntegrationTest::gold_ = nullptr;

TEST_F(IntegrationTest, DatasetMatchesPaperScale) {
  EXPECT_GE(dataset_->entries.size(), 440u);
  EXPECT_LE(dataset_->entries.size(), 454u);
}

TEST_F(IntegrationTest, HubClusterStatisticsMatchPaperShape) {
  std::vector<HubCluster> clusters = GenerateHubClusters(*pages_);
  // ~3,450 distinct co-citation sets in the paper.
  EXPECT_GT(clusters.size(), 2000u);
  EXPECT_LT(clusters.size(), 6000u);

  // ~69% homogeneous.
  size_t homogeneous = 0;
  for (const HubCluster& hc : clusters) {
    std::set<int> domains;
    for (size_t m : hc.members) domains.insert((*gold_)[m]);
    if (domains.size() == 1) ++homogeneous;
  }
  double fraction =
      static_cast<double>(homogeneous) / static_cast<double>(clusters.size());
  EXPECT_GT(fraction, 0.55);
  EXPECT_LT(fraction, 0.85);

  // The cardinality filter prunes the candidate space dramatically
  // (3,450 → 164 in the paper).
  size_t kept = FilterByCardinality(clusters, 8).size();
  EXPECT_LT(kept, clusters.size() / 10);
  EXPECT_GT(kept, 20u);
}

TEST_F(IntegrationTest, CafcChFcPcBeatsCafcC) {
  // Figure 2's headline comparison.
  Quality cafc_c = AverageCafcC(ContentConfig::kFcPlusPc, 5);
  CafcChOptions options;
  Quality cafc_ch = Score(CafcCh(*pages_, web::kNumDomains, options));
  EXPECT_LT(cafc_ch.entropy, cafc_c.entropy);
  EXPECT_GT(cafc_ch.f_measure, cafc_c.f_measure);
  // Absolute quality in the paper's ballpark.
  EXPECT_LT(cafc_ch.entropy, 0.35);
  EXPECT_GT(cafc_ch.f_measure, 0.88);
}

TEST_F(IntegrationTest, CombinedSpacesBeatFcAloneForCafcC) {
  Quality fc = AverageCafcC(ContentConfig::kFcOnly, 5);
  Quality combined = AverageCafcC(ContentConfig::kFcPlusPc, 5);
  EXPECT_LT(combined.entropy, fc.entropy);
  EXPECT_GT(combined.f_measure, fc.f_measure);
}

TEST_F(IntegrationTest, MidCardinalityBeatsExtremesForCafcCh) {
  // Figure 3's U shape, sampled at three thresholds.
  auto entropy_at = [this](size_t min_card) {
    CafcChOptions options;
    options.min_hub_cardinality = min_card;
    return Score(CafcCh(*pages_, web::kNumDomains, options)).entropy;
  };
  double low = entropy_at(3);
  double mid = entropy_at(8);
  double high = entropy_at(12);
  EXPECT_LT(mid, low);
  EXPECT_LT(mid, high);
}

TEST_F(IntegrationTest, HubSeedingImprovesKMeansMoreThanHac) {
  // Table 2's headline: the k-means variant of CAFC-CH is clearly more
  // homogeneous than the HAC variant.
  std::vector<HubCluster> hubs =
      FilterByCardinality(GenerateHubClusters(*pages_), 8);
  std::vector<HubCluster> selected =
      SelectHubClusters(*pages_, hubs, web::kNumDomains, {});
  std::vector<std::vector<size_t>> seeds;
  for (const HubCluster& s : selected) seeds.push_back(s.members);

  Quality km = Score(CafcCWithSeeds(*pages_, seeds, CafcOptions{}));
  Quality hac = Score(
      CafcHacWithSeeds(*pages_, seeds, web::kNumDomains, CafcOptions{}));
  EXPECT_LT(km.entropy, hac.entropy);
  EXPECT_GT(km.f_measure, hac.f_measure);
}

TEST_F(IntegrationTest, HubSeedsBeatHacDerivedSeeds) {
  // §4.3: CAFC-CH's entropy is markedly lower than HAC-seeded k-means.
  Quality hac_seeded =
      Score(HacSeededKMeans(*pages_, web::kNumDomains, CafcOptions{}));
  CafcChOptions options;
  Quality cafc_ch = Score(CafcCh(*pages_, web::kNumDomains, options));
  EXPECT_LT(cafc_ch.entropy, hac_seeded.entropy);
}

TEST_F(IntegrationTest, MisclusteredPagesSkewTowardMusicMovie) {
  // §4.2: most incorrectly clustered pages belong to Music/Movie. Compare
  // the per-domain error rates under CAFC-CH.
  CafcChOptions options;
  cluster::Clustering c = CafcCh(*pages_, web::kNumDomains, options);
  // Majority-label clusters.
  std::vector<std::vector<int>> votes(
      static_cast<size_t>(c.num_clusters),
      std::vector<int>(web::kNumDomains, 0));
  for (size_t i = 0; i < pages_->size(); ++i) {
    ++votes[static_cast<size_t>(c.assignment[i])]
           [static_cast<size_t>((*gold_)[i])];
  }
  std::vector<int> majority(static_cast<size_t>(c.num_clusters), 0);
  for (int j = 0; j < c.num_clusters; ++j) {
    for (int d = 1; d < web::kNumDomains; ++d) {
      if (votes[static_cast<size_t>(j)][d] >
          votes[static_cast<size_t>(j)][majority[static_cast<size_t>(j)]]) {
        majority[static_cast<size_t>(j)] = d;
      }
    }
  }
  int media_errors = 0;
  int total_errors = 0;
  for (size_t i = 0; i < pages_->size(); ++i) {
    if (majority[static_cast<size_t>(c.assignment[i])] != (*gold_)[i]) {
      ++total_errors;
      int gold = (*gold_)[i];
      if (gold == static_cast<int>(web::Domain::kMusic) ||
          gold == static_cast<int>(web::Domain::kMovie)) {
        ++media_errors;
      }
    }
  }
  if (total_errors > 0) {
    // Music+Movie hold 2/8 of pages but should account for a
    // disproportionate share of the errors.
    EXPECT_GE(media_errors * 4, total_errors)
        << media_errors << " of " << total_errors;
  }
}

TEST_F(IntegrationTest, DifferentiatedWeightsNoWorseThanUniform) {
  CafcChOptions options;
  Quality differentiated = Score(CafcCh(*pages_, web::kNumDomains, options));
  FormPageSet uniform_pages =
      BuildFormPageSet(*dataset_, vsm::LocationWeightConfig::Uniform());
  eval::ContingencyTable t(
      *gold_, web::kNumDomains,
      CafcCh(uniform_pages, web::kNumDomains, options));
  double uniform_entropy = eval::TotalEntropy(t);
  EXPECT_LE(differentiated.entropy, uniform_entropy + 0.1);
}

TEST_F(IntegrationTest, HeadlineResultRobustAcrossGeneratorSeeds) {
  // The CAFC-CH > CAFC-C claim must not hinge on the default seed.
  for (uint64_t seed : {101ULL, 202ULL}) {
    web::SynthesizerConfig config;
    config.seed = seed;
    web::SyntheticWeb web = web::Synthesizer(config).Generate();
    Dataset dataset = std::move(BuildDataset(web)).value();
    FormPageSet pages = BuildFormPageSet(dataset);
    std::vector<int> gold = dataset.GoldLabels();

    CafcChOptions ch_options;
    cluster::Clustering ch = CafcCh(pages, web::kNumDomains, ch_options);
    eval::ContingencyTable ch_table(gold, dataset.num_classes, ch);

    double c_entropy = 0.0;
    const int runs = 3;
    for (int r = 0; r < runs; ++r) {
      Rng rng(seed * 31 + static_cast<uint64_t>(r));
      cluster::Clustering c =
          CafcC(pages, web::kNumDomains, CafcOptions{}, &rng);
      eval::ContingencyTable t(gold, dataset.num_classes, c);
      c_entropy += eval::TotalEntropy(t);
    }
    c_entropy /= runs;

    EXPECT_LT(eval::TotalEntropy(ch_table), c_entropy) << "seed " << seed;
    EXPECT_GT(eval::OverallFMeasure(ch_table), 0.85) << "seed " << seed;
  }
}

TEST_F(IntegrationTest, FullPipelineDeterministic) {
  web::SyntheticWeb web2 =
      web::Synthesizer(web::SynthesizerConfig{}).Generate();
  Dataset dataset2 = std::move(BuildDataset(web2)).value();
  FormPageSet pages2 = BuildFormPageSet(dataset2);
  CafcChOptions options;
  cluster::Clustering a = CafcCh(*pages_, web::kNumDomains, options);
  cluster::Clustering b = CafcCh(pages2, web::kNumDomains, options);
  EXPECT_EQ(a.assignment, b.assignment);
}

}  // namespace
}  // namespace cafc
