#include "core/hub_clusters.h"

#include <gtest/gtest.h>

namespace cafc {
namespace {

FormPage MakePage(std::string url, std::string site,
                  std::vector<std::string> backlinks) {
  FormPage page;
  page.url = std::move(url);
  page.site = std::move(site);
  page.backlinks = std::move(backlinks);
  return page;
}

FormPageSet MakeSet(std::vector<FormPage> pages) {
  FormPageSet set;
  *set.mutable_pages() = std::move(pages);
  return set;
}

TEST(HubClustersTest, InvertsBacklinksToCoCitation) {
  FormPageSet set = MakeSet({
      MakePage("http://a.com/f", "a.com", {"http://hub.net/l"}),
      MakePage("http://b.com/f", "b.com", {"http://hub.net/l"}),
      MakePage("http://c.com/f", "c.com", {"http://other.net/l"}),
  });
  auto clusters = GenerateHubClusters(set);
  ASSERT_EQ(clusters.size(), 2u);
  // Deterministic order: member sets sorted lexicographically.
  EXPECT_EQ(clusters[0].members, (std::vector<size_t>{0, 1}));
  EXPECT_EQ(clusters[0].hub_url, "http://hub.net/l");
  EXPECT_EQ(clusters[1].members, (std::vector<size_t>{2}));
}

TEST(HubClustersTest, IntraSiteHubsFiltered) {
  FormPageSet set = MakeSet({
      MakePage("http://a.com/f", "a.com",
               {"http://a.com/", "http://hub.net/l"}),
  });
  auto clusters = GenerateHubClusters(set);
  ASSERT_EQ(clusters.size(), 1u);
  EXPECT_EQ(clusters[0].hub_url, "http://hub.net/l");
}

TEST(HubClustersTest, PageWithOnlyIntraSiteBacklinksAbsent) {
  FormPageSet set = MakeSet({
      MakePage("http://a.com/f", "a.com", {"http://a.com/"}),
      MakePage("http://b.com/f", "b.com", {"http://hub.net/l"}),
  });
  auto clusters = GenerateHubClusters(set);
  ASSERT_EQ(clusters.size(), 1u);
  EXPECT_EQ(clusters[0].members, (std::vector<size_t>{1}));
}

TEST(HubClustersTest, IdenticalSetsDeduplicated) {
  FormPageSet set = MakeSet({
      MakePage("http://a.com/f", "a.com",
               {"http://hub1.net/l", "http://hub2.net/l"}),
      MakePage("http://b.com/f", "b.com",
               {"http://hub1.net/l", "http://hub2.net/l"}),
  });
  auto clusters = GenerateHubClusters(set);
  ASSERT_EQ(clusters.size(), 1u);
  EXPECT_EQ(clusters[0].members, (std::vector<size_t>{0, 1}));
  // Deterministic representative: lexicographically smallest hub URL.
  EXPECT_EQ(clusters[0].hub_url, "http://hub1.net/l");
}

TEST(HubClustersTest, DistinctSubsetsKeptSeparately) {
  FormPageSet set = MakeSet({
      MakePage("http://a.com/f", "a.com",
               {"http://big.net/l", "http://small.net/l"}),
      MakePage("http://b.com/f", "b.com", {"http://big.net/l"}),
  });
  auto clusters = GenerateHubClusters(set);
  EXPECT_EQ(clusters.size(), 2u);  // {0} and {0,1}
}

TEST(HubClustersTest, NoBacklinksNoClusters) {
  FormPageSet set = MakeSet({MakePage("http://a.com/f", "a.com", {})});
  EXPECT_TRUE(GenerateHubClusters(set).empty());
}

TEST(FilterByCardinalityTest, DropsSmallClusters) {
  std::vector<HubCluster> clusters = {
      {"h1", {0}},
      {"h2", {0, 1}},
      {"h3", {0, 1, 2}},
  };
  auto filtered = FilterByCardinality(clusters, 2);
  ASSERT_EQ(filtered.size(), 2u);
  EXPECT_EQ(filtered[0].hub_url, "h2");
  EXPECT_EQ(filtered[1].hub_url, "h3");
}

TEST(FilterByCardinalityTest, ThresholdOneKeepsAll) {
  std::vector<HubCluster> clusters = {{"h1", {0}}, {"h2", {1, 2}}};
  EXPECT_EQ(FilterByCardinality(clusters, 1).size(), 2u);
  EXPECT_EQ(FilterByCardinality(clusters, 0).size(), 2u);
}

TEST(FilterByCardinalityTest, AllFilteredYieldsEmpty) {
  std::vector<HubCluster> clusters = {{"h1", {0}}};
  EXPECT_TRUE(FilterByCardinality(clusters, 10).empty());
}

TEST(HubClusterTest, Cardinality) {
  HubCluster hc{"h", {3, 7, 9}};
  EXPECT_EQ(hc.cardinality(), 3u);
}

}  // namespace
}  // namespace cafc
