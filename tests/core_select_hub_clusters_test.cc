#include "core/select_hub_clusters.h"

#include <set>

#include <gtest/gtest.h>

namespace cafc {
namespace {

/// Pages with orthogonal PC vectors per "topic"; pages of the same topic
/// share the same term.
FormPageSet TopicSet(const std::vector<int>& topics) {
  FormPageSet set;
  for (size_t i = 0; i < topics.size(); ++i) {
    FormPage page;
    page.url = "http://p" + std::to_string(i) + ".com/";
    page.site = "p" + std::to_string(i) + ".com";
    page.pc = vsm::SparseVector::FromUnsorted(
        {{static_cast<vsm::TermId>(topics[i]), 1.0}});
    page.fc = page.pc;
    set.mutable_pages()->push_back(std::move(page));
  }
  return set;
}

TEST(SelectHubClustersTest, PicksOnePerTopic) {
  // 3 topics x 2 pages; 6 singleton-ish hub clusters (2 per topic).
  FormPageSet pages = TopicSet({0, 0, 1, 1, 2, 2});
  std::vector<HubCluster> hubs = {
      {"h0", {0, 1}}, {"h1", {0}},    {"h2", {2, 3}},
      {"h3", {3}},    {"h4", {4, 5}}, {"h5", {5}},
  };
  auto seeds = SelectHubClusters(pages, hubs, 3);
  ASSERT_EQ(seeds.size(), 3u);
  // The selected clusters must cover all three topics (mutually distant).
  std::set<vsm::TermId> covered;
  for (const HubCluster& s : seeds) {
    covered.insert(pages.page(s.members[0]).pc.entries()[0].term);
  }
  EXPECT_EQ(covered.size(), 3u);
}

TEST(SelectHubClustersTest, FirstTwoAreMostDistantPair) {
  // Two near-identical clusters plus one distant; the greedy must start
  // with a (near, far) pair, never (near, near).
  FormPageSet pages = TopicSet({0, 0, 1});
  std::vector<HubCluster> hubs = {{"near1", {0}}, {"near2", {1}},
                                  {"far", {2}}};
  auto seeds = SelectHubClusters(pages, hubs, 2);
  ASSERT_EQ(seeds.size(), 2u);
  std::set<std::string> names = {seeds[0].hub_url, seeds[1].hub_url};
  EXPECT_TRUE(names.contains("far"));
}

TEST(SelectHubClustersTest, ExactlyKReturned) {
  FormPageSet pages = TopicSet({0, 1, 2, 3, 4, 5, 6, 7});
  std::vector<HubCluster> hubs;
  for (size_t i = 0; i < 8; ++i) {
    hubs.push_back({"h" + std::to_string(i), {i}});
  }
  EXPECT_EQ(SelectHubClusters(pages, hubs, 4).size(), 4u);
  EXPECT_EQ(SelectHubClusters(pages, hubs, 8).size(), 8u);
}

TEST(SelectHubClustersTest, KOfOne) {
  FormPageSet pages = TopicSet({0, 1});
  std::vector<HubCluster> hubs = {{"h0", {0}}, {"h1", {1}}};
  EXPECT_EQ(SelectHubClusters(pages, hubs, 1).size(), 1u);
}

TEST(SelectHubClustersTest, PadsWithSingletonsWhenTooFewHubs) {
  FormPageSet pages = TopicSet({0, 1, 2, 3});
  std::vector<HubCluster> hubs = {{"only", {0}}};
  auto seeds = SelectHubClusters(pages, hubs, 3);
  ASSERT_EQ(seeds.size(), 3u);
  EXPECT_EQ(seeds[0].hub_url, "only");
  // Padding clusters are singletons of not-yet-used pages.
  std::set<size_t> used;
  for (const HubCluster& s : seeds) {
    for (size_t m : s.members) {
      EXPECT_TRUE(used.insert(m).second);
    }
  }
  EXPECT_EQ(seeds[1].members.size(), 1u);
  EXPECT_EQ(seeds[2].members.size(), 1u);
}

TEST(SelectHubClustersTest, NoHubsAtAllPadsEntirely) {
  FormPageSet pages = TopicSet({0, 1, 2});
  auto seeds = SelectHubClusters(pages, {}, 3);
  ASSERT_EQ(seeds.size(), 3u);
  std::set<vsm::TermId> covered;
  for (const HubCluster& s : seeds) {
    covered.insert(pages.page(s.members[0]).pc.entries()[0].term);
  }
  EXPECT_EQ(covered.size(), 3u);  // padding also spreads across topics
}

TEST(SelectHubClustersTest, PaddingNeverExceedsPageCount) {
  FormPageSet pages = TopicSet({0, 1});
  auto seeds = SelectHubClusters(pages, {}, 5);
  EXPECT_EQ(seeds.size(), 2u);  // min(k, n)
}

TEST(SelectHubClustersTest, PaddedFlagMarksSyntheticSeedsOnly) {
  FormPageSet pages = TopicSet({0, 1, 2, 3});
  std::vector<HubCluster> hubs = {{"only", {0}}};
  auto seeds = SelectHubClusters(pages, hubs, 4);
  ASSERT_EQ(seeds.size(), 4u);  // exactly k despite a single real hub
  EXPECT_FALSE(seeds[0].padded);
  for (size_t i = 1; i < seeds.size(); ++i) {
    EXPECT_TRUE(seeds[i].padded) << i;
    EXPECT_EQ(seeds[i].members.size(), 1u);
  }
}

TEST(SelectHubClustersTest, FallbackWithZeroHubsYieldsExactlyKPaddedSeeds) {
  // The CAFC-CH degradation path: a fully depleted backlink substrate
  // (coverage 0, dead engine, fault-killed hubs) leaves no hub clusters at
  // all, and the selection must degrade to CAFC-C-style singleton seeding
  // with exactly k seeds.
  FormPageSet pages = TopicSet({0, 1, 2, 3, 4, 5});
  auto seeds = SelectHubClusters(pages, {}, 4);
  ASSERT_EQ(seeds.size(), 4u);
  for (const HubCluster& s : seeds) {
    EXPECT_TRUE(s.padded);
    EXPECT_EQ(s.members.size(), 1u);
  }
}

TEST(SelectHubClustersTest, DeterministicSelection) {
  FormPageSet pages = TopicSet({0, 0, 1, 1, 2, 2, 3, 3});
  std::vector<HubCluster> hubs = {
      {"a", {0, 1}}, {"b", {2, 3}}, {"c", {4, 5}}, {"d", {6, 7}},
      {"e", {0}},    {"f", {2}},
  };
  auto first = SelectHubClusters(pages, hubs, 4);
  auto second = SelectHubClusters(pages, hubs, 4);
  ASSERT_EQ(first.size(), second.size());
  for (size_t i = 0; i < first.size(); ++i) {
    EXPECT_EQ(first[i].hub_url, second[i].hub_url);
  }
}

}  // namespace
}  // namespace cafc
