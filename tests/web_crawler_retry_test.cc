// Crawler resilience: FetchWithRetry semantics (deterministic virtual-clock
// backoff, retry classification) and end-to-end crawls over a
// FaultInjectingFetcher — transient faults recovered, dead/truncated/
// soft-404 URLs degraded into the CrawlStats taxonomy, and the whole
// CrawlResult bit-identical at any thread count under any fault profile.

#include <map>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "util/thread_pool.h"
#include "web/crawler.h"
#include "web/fault_injection.h"
#include "web/synthesizer.h"

namespace cafc::web {
namespace {

/// Scripted fetcher: each URL fails `failures` times with `error`, then
/// serves the page. Counts the attempts it saw.
class FlakyWeb : public WebFetcher {
 public:
  void Add(std::string url, std::string html, int failures = 0,
           Status error = Status::Unavailable("scripted failure")) {
    Entry& e = entries_[url];
    e.page = WebPage{url, std::move(html)};
    e.failures_left = failures;
    e.error = std::move(error);
  }

  Result<const WebPage*> Fetch(std::string_view url) const override {
    auto it = entries_.find(std::string(url));
    if (it == entries_.end()) return Status::NotFound("404");
    Entry& e = it->second;
    ++e.attempts_seen;
    if (e.failures_left > 0) {
      --e.failures_left;
      return e.error;
    }
    return &e.page;
  }

  int attempts_seen(const std::string& url) const {
    auto it = entries_.find(url);
    return it == entries_.end() ? 0 : it->second.attempts_seen;
  }

 private:
  struct Entry {
    WebPage page;
    mutable int failures_left = 0;
    mutable int attempts_seen = 0;
    Status error = Status::OK();
  };
  mutable std::map<std::string, Entry> entries_;
};

TEST(FetchWithRetryTest, FirstAttemptSuccessNeedsNoRetry) {
  FlakyWeb web;
  web.Add("http://a.com/", "ok");
  FetchAttemptLog log;
  Result<const WebPage*> page =
      FetchWithRetry(web, "http://a.com/", FetchRetryPolicy{}, &log);
  ASSERT_TRUE(page.ok());
  EXPECT_EQ(log.attempts, 1);
  EXPECT_EQ(log.backoff_ms, 0u);
}

TEST(FetchWithRetryTest, RecoversTransientWithExponentialBackoff) {
  FlakyWeb web;
  web.Add("http://a.com/", "ok", /*failures=*/2);
  FetchRetryPolicy policy;
  policy.max_attempts = 3;
  policy.initial_backoff_ms = 100;
  policy.multiplier = 2.0;
  FetchAttemptLog log;
  Result<const WebPage*> page =
      FetchWithRetry(web, "http://a.com/", policy, &log);
  ASSERT_TRUE(page.ok());
  EXPECT_EQ(log.attempts, 3);
  EXPECT_EQ(log.backoff_ms, 100u + 200u);  // virtual clock, exact
  EXPECT_EQ(web.attempts_seen("http://a.com/"), 3);
}

TEST(FetchWithRetryTest, GivesUpAfterMaxAttempts) {
  FlakyWeb web;
  web.Add("http://a.com/", "ok", /*failures=*/10);
  FetchRetryPolicy policy;
  policy.max_attempts = 3;
  FetchAttemptLog log;
  Result<const WebPage*> page =
      FetchWithRetry(web, "http://a.com/", policy, &log);
  ASSERT_FALSE(page.ok());
  EXPECT_EQ(page.status().code(), StatusCode::kUnavailable);
  EXPECT_EQ(log.attempts, 3);
  EXPECT_EQ(web.attempts_seen("http://a.com/"), 3);
}

TEST(FetchWithRetryTest, DeadlineExceededIsAlsoRetryable) {
  FlakyWeb web;
  web.Add("http://a.com/", "ok", /*failures=*/1,
          Status::DeadlineExceeded("scripted timeout"));
  FetchAttemptLog log;
  Result<const WebPage*> page =
      FetchWithRetry(web, "http://a.com/", FetchRetryPolicy{}, &log);
  ASSERT_TRUE(page.ok());
  EXPECT_EQ(log.attempts, 2);
}

TEST(FetchWithRetryTest, NotFoundNeverRetried) {
  FlakyWeb web;  // empty universe
  FetchAttemptLog log;
  Result<const WebPage*> page =
      FetchWithRetry(web, "http://nowhere.com/", FetchRetryPolicy{}, &log);
  ASSERT_FALSE(page.ok());
  EXPECT_EQ(page.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(log.attempts, 1);
  EXPECT_EQ(log.backoff_ms, 0u);
}

TEST(FetchWithRetryTest, PermanentErrorsNeverRetried) {
  FlakyWeb web;
  web.Add("http://a.com/", "ok", /*failures=*/5,
          Status::Internal("scripted dead host"));
  FetchAttemptLog log;
  Result<const WebPage*> page =
      FetchWithRetry(web, "http://a.com/", FetchRetryPolicy{}, &log);
  ASSERT_FALSE(page.ok());
  EXPECT_EQ(page.status().code(), StatusCode::kInternal);
  EXPECT_EQ(log.attempts, 1);  // retrying a dead host is wasted budget
}

TEST(FetchWithRetryTest, BackoffBudgetStopsRetriesEarly) {
  FlakyWeb web;
  web.Add("http://a.com/", "ok", /*failures=*/10);
  FetchRetryPolicy policy;
  policy.max_attempts = 10;
  policy.initial_backoff_ms = 100;
  policy.multiplier = 2.0;
  policy.backoff_budget_ms = 250;  // allows 100, rejects 100 + 200
  FetchAttemptLog log;
  Result<const WebPage*> page =
      FetchWithRetry(web, "http://a.com/", policy, &log);
  ASSERT_FALSE(page.ok());
  EXPECT_EQ(log.attempts, 2);
  EXPECT_EQ(log.backoff_ms, 100u);
}

TEST(FetchWithRetryTest, BackoffCappedAtMax) {
  FlakyWeb web;
  web.Add("http://a.com/", "ok", /*failures=*/4);
  FetchRetryPolicy policy;
  policy.max_attempts = 5;
  policy.initial_backoff_ms = 100;
  policy.multiplier = 10.0;
  policy.max_backoff_ms = 400;
  policy.backoff_budget_ms = 0;  // unlimited
  FetchAttemptLog log;
  Result<const WebPage*> page =
      FetchWithRetry(web, "http://a.com/", policy, &log);
  ASSERT_TRUE(page.ok());
  EXPECT_EQ(log.attempts, 5);
  EXPECT_EQ(log.backoff_ms, 100u + 400u + 400u + 400u);
}

// ---------------------------------------------------------------------------
// End-to-end crawls over an injected-fault web.

SynthesizerConfig CrawlConfig() {
  SynthesizerConfig config;
  config.seed = 7;
  config.form_pages_total = 64;
  config.single_attribute_forms = 8;
  config.homogeneous_hubs_per_domain = 16;
  config.mixed_hubs = 32;
  config.directory_hubs = 4;
  config.large_air_hotel_hubs = 2;
  config.non_searchable_form_pages = 8;
  config.noise_pages = 8;
  config.outlier_pages = 2;
  return config;
}

CrawlResult CrawlWithFaults(const SyntheticWeb& web,
                            const FaultProfile& profile) {
  // Fresh decorator per crawl: attempt counters model one crawl's view of
  // the network and must not leak between comparable runs.
  FaultInjectingFetcher faulty(&web, profile);
  Crawler crawler(&faulty);
  return crawler.Crawl(web.seed_urls());
}

TEST(CrawlerFaultTest, CleanWebHasCleanTaxonomy) {
  SyntheticWeb web = Synthesizer(CrawlConfig()).Generate();
  CrawlResult result = CrawlWithFaults(web, FaultProfile{});
  EXPECT_EQ(result.stats.fetched, result.visited.size());
  EXPECT_EQ(result.stats.fetch_failures(), 0u);
  EXPECT_EQ(result.stats.transient_recovered, 0u);
  EXPECT_EQ(result.stats.retry_attempts, 0u);
  EXPECT_EQ(result.stats.malformed_pages, 0u);
  EXPECT_EQ(result.stats.soft404_pages, 0u);
}

TEST(CrawlerFaultTest, TransientFaultsFullyRecoveredByRetries) {
  SyntheticWeb web = Synthesizer(CrawlConfig()).Generate();
  CrawlResult clean = CrawlWithFaults(web, FaultProfile{});

  FaultProfile profile;
  profile.transient_rate = 0.3;
  profile.transient_attempts = 2;  // recovered by the default 3 attempts
  profile.seed = 5;
  CrawlResult faulty = CrawlWithFaults(web, profile);

  // Retries hide the faults completely: same pages, same candidates, same
  // graph — only the retry accounting differs.
  EXPECT_EQ(faulty.visited, clean.visited);
  EXPECT_EQ(faulty.form_page_urls, clean.form_page_urls);
  EXPECT_GT(faulty.stats.transient_recovered, 0u);
  EXPECT_GT(faulty.stats.retry_attempts, 0u);
  EXPECT_GT(faulty.stats.backoff_virtual_ms, 0u);
  EXPECT_EQ(faulty.stats.retries_exhausted, 0u);
  EXPECT_EQ(faulty.stats.fetch_failures(), 0u);
}

TEST(CrawlerFaultTest, ExhaustedRetriesWhenFaultOutlivesBudget) {
  SyntheticWeb web = Synthesizer(CrawlConfig()).Generate();
  FaultProfile profile;
  profile.transient_rate = 0.3;
  profile.transient_attempts = 5;  // outlives max_attempts = 3
  profile.seed = 5;
  CrawlResult result = CrawlWithFaults(web, profile);
  EXPECT_GT(result.stats.retries_exhausted, 0u);
  EXPECT_EQ(result.stats.dead_urls, 0u);
  EXPECT_GT(result.visited.size(), 0u);  // the rest of the crawl went on
}

TEST(CrawlerFaultTest, DeadUrlsClassifiedWithoutRetryWaste) {
  SyntheticWeb web = Synthesizer(CrawlConfig()).Generate();
  FaultProfile profile;
  profile.dead_rate = 0.2;
  profile.seed = 5;
  CrawlResult result = CrawlWithFaults(web, profile);
  EXPECT_GT(result.stats.dead_urls, 0u);
  EXPECT_EQ(result.stats.retries_exhausted, 0u);
  EXPECT_EQ(result.stats.retry_attempts, 0u);  // dead hosts are not retried
  EXPECT_GT(result.visited.size(), 0u);
}

TEST(CrawlerFaultTest, TruncatedPagesDegradeGracefully) {
  SyntheticWeb web = Synthesizer(CrawlConfig()).Generate();
  CrawlResult clean = CrawlWithFaults(web, FaultProfile{});

  FaultProfile profile;
  profile.truncated_rate = 0.4;
  profile.seed = 5;
  CrawlResult result = CrawlWithFaults(web, profile);

  // Truncated bodies still parse (to a prefix), so every page is fetched;
  // cut-off form pages may drop out of candidacy, never crash the crawl.
  EXPECT_GT(result.stats.malformed_pages, 0u);
  EXPECT_EQ(result.stats.fetch_failures(), 0u);
  EXPECT_GT(result.visited.size(), 0u);
  EXPECT_LE(result.form_page_urls.size(), clean.form_page_urls.size());
}

TEST(CrawlerFaultTest, Soft404PagesDetectedAndQuarantined) {
  SyntheticWeb web = Synthesizer(CrawlConfig()).Generate();
  FaultProfile profile;
  profile.soft404_rate = 0.3;
  profile.seed = 5;

  FaultInjectingFetcher faulty(&web, profile);
  Crawler crawler(&faulty);
  CrawlResult result = crawler.Crawl(web.seed_urls());
  EXPECT_GT(result.stats.soft404_pages, 0u);
  // Quarantined: fetched (they look like 200s) but never candidates.
  for (const std::string& url : result.form_page_urls) {
    EXPECT_NE(faulty.KindFor(url), FaultKind::kSoft404) << url;
  }
}

TEST(CrawlerFaultTest, MixedFaultCrawlIdenticalAcrossThreadCounts) {
  SyntheticWeb web = Synthesizer(CrawlConfig()).Generate();
  FaultProfile profile;
  profile.dead_rate = 0.05;
  profile.transient_rate = 0.15;
  profile.slow_rate = 0.05;
  profile.truncated_rate = 0.1;
  profile.soft404_rate = 0.05;
  profile.seed = 13;

  auto crawl_with_threads = [&](int threads) {
    util::ScopedThreads scoped(threads);
    return CrawlWithFaults(web, profile);
  };
  CrawlResult serial = crawl_with_threads(1);
  EXPECT_GT(serial.stats.fetch_failures(), 0u);  // the profile does bite
  for (int threads : {2, 8}) {
    SCOPED_TRACE("threads=" + std::to_string(threads));
    CrawlResult parallel = crawl_with_threads(threads);
    EXPECT_EQ(parallel.visited, serial.visited);
    EXPECT_EQ(parallel.form_page_urls, serial.form_page_urls);
    EXPECT_TRUE(parallel.stats == serial.stats);
  }
}

}  // namespace
}  // namespace cafc::web
