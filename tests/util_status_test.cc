#include "util/status.h"

#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

namespace cafc {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.message(), "");
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, OkFactory) {
  EXPECT_TRUE(Status::OK().ok());
  EXPECT_EQ(Status::OK(), Status());
}

TEST(StatusTest, ErrorFactoriesCarryCodeAndMessage) {
  struct Case {
    Status status;
    StatusCode code;
    const char* name;
  };
  std::vector<Case> cases = {
      {Status::InvalidArgument("m"), StatusCode::kInvalidArgument,
       "InvalidArgument"},
      {Status::NotFound("m"), StatusCode::kNotFound, "NotFound"},
      {Status::OutOfRange("m"), StatusCode::kOutOfRange, "OutOfRange"},
      {Status::ParseError("m"), StatusCode::kParseError, "ParseError"},
      {Status::FailedPrecondition("m"), StatusCode::kFailedPrecondition,
       "FailedPrecondition"},
      {Status::Internal("m"), StatusCode::kInternal, "Internal"},
      {Status::Unavailable("m"), StatusCode::kUnavailable, "Unavailable"},
      {Status::DeadlineExceeded("m"), StatusCode::kDeadlineExceeded,
       "DeadlineExceeded"},
  };
  for (const Case& c : cases) {
    EXPECT_FALSE(c.status.ok());
    EXPECT_EQ(c.status.code(), c.code);
    EXPECT_EQ(c.status.message(), "m");
    EXPECT_EQ(c.status.ToString(), std::string(c.name) + ": m");
  }
}

TEST(StatusTest, ToStringWithoutMessage) {
  EXPECT_EQ(Status::NotFound("").ToString(), "NotFound");
}

TEST(StatusTest, StatusCodeName) {
  EXPECT_STREQ(StatusCodeName(StatusCode::kOk), "OK");
  EXPECT_STREQ(StatusCodeName(StatusCode::kUnavailable), "Unavailable");
  EXPECT_STREQ(StatusCodeName(StatusCode::kDeadlineExceeded),
               "DeadlineExceeded");
}

TEST(StatusTest, StreamInsertionMatchesToString) {
  Status s = Status::Unavailable("backend flaking");
  std::ostringstream os;
  os << s;
  EXPECT_EQ(os.str(), s.ToString());
  EXPECT_EQ(os.str(), "Unavailable: backend flaking");
}

TEST(StatusTest, StreamInsertionOfCode) {
  std::ostringstream os;
  os << StatusCode::kDeadlineExceeded;
  EXPECT_EQ(os.str(), "DeadlineExceeded");
}

TEST(StatusTest, GtestFailureMessagesArePrintable) {
  // EXPECT_EQ on Status values relies on operator<< for readable output;
  // make sure the printed form is the human string, not raw bytes.
  EXPECT_NE(::testing::PrintToString(Status::NotFound("u")).find("NotFound"),
            std::string::npos);
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::NotFound("x"), Status::NotFound("x"));
  EXPECT_FALSE(Status::NotFound("x") == Status::NotFound("y"));
  EXPECT_FALSE(Status::NotFound("x") == Status::Internal("x"));
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(*r, 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::NotFound("missing"));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(r.status().message(), "missing");
}

TEST(ResultTest, ValueOrFallsBack) {
  Result<int> ok(7);
  Result<int> err(Status::Internal("boom"));
  EXPECT_EQ(ok.value_or(-1), 7);
  EXPECT_EQ(err.value_or(-1), -1);
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> r(std::string("payload"));
  std::string moved = std::move(r).value();
  EXPECT_EQ(moved, "payload");
}

TEST(ResultTest, ArrowOperator) {
  Result<std::string> r(std::string("abc"));
  EXPECT_EQ(r->size(), 3u);
}

TEST(ResultTest, MutableValue) {
  Result<std::vector<int>> r(std::vector<int>{1});
  r->push_back(2);
  EXPECT_EQ(r.value().size(), 2u);
}

}  // namespace
}  // namespace cafc
