#include "forms/label_extractor.h"

#include <gtest/gtest.h>

#include "html/dom.h"

namespace cafc::forms {
namespace {

std::vector<LabeledField> Extract(std::string_view html) {
  html::Document doc = html::Parse(html);
  return ExtractAllLabels(doc);
}

TEST(LabelExtractorTest, LabelForAttributeWins) {
  auto labels = Extract(
      R"(<form><label for="cat">Job Category</label>
         <input type="text" name="category" id="cat"></form>)");
  ASSERT_EQ(labels.size(), 1u);
  EXPECT_EQ(labels[0].field_name, "category");
  EXPECT_EQ(labels[0].label, "Job Category");
}

TEST(LabelExtractorTest, SameCellTextBeforeControl) {
  auto labels = Extract(
      R"(<form><table><tr><td>State: <select name="state">
         <option>ca</option></select></td></tr></table></form>)");
  ASSERT_EQ(labels.size(), 1u);
  EXPECT_EQ(labels[0].label, "State");
}

TEST(LabelExtractorTest, PreviousCellInSameRow) {
  auto labels = Extract(
      R"(<form><table><tr><td><b>Make:</b></td>
         <td><select name="make"><option>ford</option></select></td>
         </tr></table></form>)");
  ASSERT_EQ(labels.size(), 1u);
  EXPECT_EQ(labels[0].label, "Make");
}

TEST(LabelExtractorTest, TwoRowsTwoLabels) {
  auto labels = Extract(
      R"(<form><table>
         <tr><td>From city:</td><td><input name="from"></td></tr>
         <tr><td>To city:</td><td><input name="to"></td></tr>
         </table></form>)");
  ASSERT_EQ(labels.size(), 2u);
  EXPECT_EQ(labels[0].field_name, "from");
  EXPECT_EQ(labels[0].label, "From city");
  EXPECT_EQ(labels[1].field_name, "to");
  EXPECT_EQ(labels[1].label, "To city");
}

TEST(LabelExtractorTest, PrecedingTextWithoutTables) {
  auto labels = Extract(
      R"(<form>Departure date: <input name="depart"></form>)");
  ASSERT_EQ(labels.size(), 1u);
  EXPECT_EQ(labels[0].label, "Departure date");
}

TEST(LabelExtractorTest, InterveningControlBlocksPrecedingText) {
  // "Year" belongs to the first input; the second gets the text "to".
  auto labels = Extract(
      R"(<form>Year <input name="min"> to <input name="max"></form>)");
  ASSERT_EQ(labels.size(), 2u);
  EXPECT_EQ(labels[0].label, "Year");
  EXPECT_EQ(labels[1].label, "to");
}

TEST(LabelExtractorTest, NoLabelAtAllYieldsEmpty) {
  auto labels = Extract(R"(<form><input type="text" name="q"></form>)");
  ASSERT_EQ(labels.size(), 1u);
  EXPECT_EQ(labels[0].label, "");
}

TEST(LabelExtractorTest, LabelOutsideFormInvisible) {
  // The paper's Figure 1(c): the descriptive string sits outside the FORM
  // tags; per-field extraction cannot see it.
  auto labels = Extract(
      R"(<b>Search Jobs</b><form><input type="text" name="q"></form>)");
  ASSERT_EQ(labels.size(), 1u);
  EXPECT_EQ(labels[0].label, "");
}

TEST(LabelExtractorTest, ChromeControlsSkipped) {
  auto labels = Extract(
      R"(<form>Keyword <input name="q">
         <input type="submit" value="go"><input type="reset">
         <input type="hidden" name="sid" value="x"></form>)");
  ASSERT_EQ(labels.size(), 1u);
  EXPECT_EQ(labels[0].field_name, "q");
}

TEST(LabelExtractorTest, OptionTextNeverALabel) {
  auto labels = Extract(
      R"(<form><select name="a"><option>first option</option></select>
         <input name="b"></form>)");
  ASSERT_EQ(labels.size(), 2u);
  // Input "b" must not inherit the option text of select "a".
  EXPECT_NE(labels[1].label, "first option");
}

TEST(LabelExtractorTest, TrailingPunctuationStripped) {
  auto labels = Extract(R"(<form>Zip code: * <input name="zip"></form>)");
  ASSERT_EQ(labels.size(), 1u);
  EXPECT_EQ(labels[0].label, "Zip code");
}

TEST(LabelExtractorTest, LongTextClippedToTail) {
  auto labels = Extract(
      R"(<form>Please use the box below to enter your desired job title
         keywords: <input name="kw"></form>)");
  ASSERT_EQ(labels.size(), 1u);
  // Clipped to the last few words — the part nearest the control.
  EXPECT_EQ(labels[0].label, "enter your desired job title keywords");
}

TEST(LabelExtractorTest, MultipleFormsConcatenated) {
  auto labels = Extract(
      R"(<form>A <input name="a"></form><form>B <input name="b"></form>)");
  ASSERT_EQ(labels.size(), 2u);
  EXPECT_EQ(labels[0].label, "A");
  EXPECT_EQ(labels[1].label, "B");
}

TEST(LabelExtractorTest, RadioGroupEachGetsNearestText) {
  auto labels = Extract(
      R"(<form><input type="radio" name="cond" value="new"> new
         <input type="radio" name="cond" value="used"> used</form>)");
  ASSERT_EQ(labels.size(), 2u);
  EXPECT_EQ(labels[1].label, "new");  // text preceding the second radio
}

}  // namespace
}  // namespace cafc::forms
