#include "web/focused_crawler.h"

#include <algorithm>
#include <map>
#include <unordered_set>

#include <gtest/gtest.h>

#include "web/synthesizer.h"

namespace cafc::web {
namespace {

class MiniWeb : public WebFetcher {
 public:
  void Add(std::string url, std::string html) {
    pages_[url] = WebPage{url, std::move(html)};
  }
  Result<const WebPage*> Fetch(std::string_view url) const override {
    auto it = pages_.find(std::string(url));
    if (it == pages_.end()) return Status::NotFound("404");
    return &it->second;
  }

 private:
  std::map<std::string, WebPage> pages_;
};

TEST(FocusedCrawlerTest, ScoreLinkAnchorCues) {
  MiniWeb web;
  FocusedCrawler crawler(&web);
  double search_anchor =
      crawler.ScoreLink("search the database", "http://x.com/page", false);
  double plain_anchor =
      crawler.ScoreLink("our privacy statement", "http://x.com/page", false);
  EXPECT_GT(search_anchor, plain_anchor);
}

TEST(FocusedCrawlerTest, ScoreLinkUrlCues) {
  MiniWeb web;
  FocusedCrawler crawler(&web);
  double search_url = crawler.ScoreLink("", "http://x.com/search.html", false);
  double plain_url = crawler.ScoreLink("", "http://x.com/about.html", false);
  EXPECT_GT(search_url, plain_url);
}

TEST(FocusedCrawlerTest, ParentFormBonus) {
  MiniWeb web;
  FocusedCrawler crawler(&web);
  EXPECT_GT(crawler.ScoreLink("x", "http://x.com/a", true),
            crawler.ScoreLink("x", "http://x.com/a", false));
}

TEST(FocusedCrawlerTest, CustomTargetTermsAreStemmed) {
  MiniWeb web;
  FocusedCrawlerOptions options;
  options.target_terms = {"flights"};
  FocusedCrawler crawler(&web, options);
  // "flight" (different inflection) must match via stemming.
  EXPECT_GT(crawler.ScoreLink("cheap flight deals", "http://x.com/", false),
            0.0);
  // Default cues are replaced.
  EXPECT_EQ(crawler.ScoreLink("search here", "http://x.com/", false), 0.0);
}

TEST(FocusedCrawlerTest, PrioritizesPromisingLinks) {
  MiniWeb web;
  // Hub links to a boring page and to a "search" page; the search page
  // must be fetched first even though it is listed second.
  web.Add("http://hub.com/",
          R"html(<a href="http://a.com/about.html">company history</a>
                 <a href="http://b.com/search.html">search databases</a>)html");
  web.Add("http://a.com/about.html", "nothing here");
  web.Add("http://b.com/search.html", "<form><input name=q></form>");
  FocusedCrawler crawler(&web);
  CrawlResult result = crawler.Crawl({"http://hub.com/"});
  ASSERT_EQ(result.visited.size(), 3u);
  EXPECT_EQ(result.visited[0], "http://hub.com/");
  EXPECT_EQ(result.visited[1], "http://b.com/search.html");
  EXPECT_EQ(result.visited[2], "http://a.com/about.html");
}

TEST(FocusedCrawlerTest, EquallyScoredLinksFetchedInDiscoveryOrder) {
  MiniWeb web;
  web.Add("http://hub.com/",
          R"html(<a href="http://a.com/x">one</a>
                 <a href="http://b.com/x">two</a>)html");
  web.Add("http://a.com/x", "a");
  web.Add("http://b.com/x", "b");
  FocusedCrawler crawler(&web);
  CrawlResult result = crawler.Crawl({"http://hub.com/"});
  ASSERT_EQ(result.visited.size(), 3u);
  EXPECT_EQ(result.visited[1], "http://a.com/x");
  EXPECT_EQ(result.visited[2], "http://b.com/x");
}

TEST(FocusedCrawlerTest, MaxPagesRespected) {
  MiniWeb web;
  web.Add("http://hub.com/",
          R"html(<a href="http://a.com/x">a</a><a href="http://b.com/x">b</a>)html");
  web.Add("http://a.com/x", "a");
  web.Add("http://b.com/x", "b");
  FocusedCrawlerOptions options;
  options.max_pages = 2;
  FocusedCrawler crawler(&web, options);
  EXPECT_EQ(crawler.Crawl({"http://hub.com/"}).visited.size(), 2u);
}

TEST(FocusedCrawlerTest, CoversSyntheticWebCompletely) {
  SynthesizerConfig config;
  config.seed = 12;
  config.form_pages_total = 32;
  config.single_attribute_forms = 4;
  config.homogeneous_hubs_per_domain = 10;
  config.mixed_hubs = 10;
  config.directory_hubs = 2;
  config.large_air_hotel_hubs = 2;
  config.non_searchable_form_pages = 4;
  config.noise_pages = 4;
  config.outlier_pages = 0;
  SyntheticWeb synthetic = Synthesizer(config).Generate();

  FocusedCrawler crawler(&synthetic);
  CrawlResult result = crawler.Crawl(synthetic.seed_urls());
  EXPECT_EQ(result.visited.size(), synthetic.pages().size());
  std::unordered_set<std::string> forms(result.form_page_urls.begin(),
                                        result.form_page_urls.end());
  for (const FormPageInfo& info : synthetic.form_pages()) {
    EXPECT_TRUE(forms.contains(info.url)) << info.url;
  }
}

TEST(FocusedCrawlerTest, HigherHarvestRateThanBfsOnSyntheticWeb) {
  SynthesizerConfig config;
  config.seed = 13;
  config.form_pages_total = 64;
  config.single_attribute_forms = 8;
  config.homogeneous_hubs_per_domain = 40;
  config.mixed_hubs = 60;
  config.directory_hubs = 4;
  config.large_air_hotel_hubs = 4;
  config.non_searchable_form_pages = 8;
  config.noise_pages = 8;
  SyntheticWeb synthetic = Synthesizer(config).Generate();

  auto fetches_to_half = [&synthetic](const std::vector<std::string>& order) {
    std::unordered_set<std::string> gold;
    for (const FormPageInfo& info : synthetic.form_pages()) {
      gold.insert(info.url);
    }
    size_t want = gold.size() / 2;
    size_t found = 0;
    for (size_t i = 0; i < order.size(); ++i) {
      if (gold.contains(order[i]) && ++found >= want) return i + 1;
    }
    return order.size();
  };

  Crawler bfs(&synthetic);
  FocusedCrawler focused(&synthetic);
  size_t bfs_cost = fetches_to_half(bfs.Crawl(synthetic.seed_urls()).visited);
  size_t focused_cost =
      fetches_to_half(focused.Crawl(synthetic.seed_urls()).visited);
  EXPECT_LT(focused_cost, bfs_cost);
}

}  // namespace
}  // namespace cafc::web
