// Durability and diagnostics of the text directory format: a failed
// rewrite must leave the previous file byte-identical (temp + rename
// crash safety), every parse failure must name the exact line and byte
// offset where the file broke, and version-1 files (no epoch line, raw
// labels) must still load with the version negotiated from the header.

#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/cafc.h"
#include "core/dataset.h"
#include "core/directory.h"
#include "web/synthesizer.h"

namespace cafc {
namespace {

web::SynthesizerConfig SmallConfig() {
  web::SynthesizerConfig config;
  config.seed = 19;
  config.form_pages_total = 48;
  config.single_attribute_forms = 6;
  config.homogeneous_hubs_per_domain = 20;
  config.mixed_hubs = 30;
  config.directory_hubs = 3;
  config.large_air_hotel_hubs = 3;
  config.non_searchable_form_pages = 0;
  config.noise_pages = 0;
  config.outlier_pages = 0;
  return config;
}

std::string TempPath(const char* name) {
  return std::string(::testing::TempDir()) + "/" + name;
}

std::string ReadAll(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return std::move(buffer).str();
}

void WriteAll(const std::string& path, const std::string& data) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out << data;
  ASSERT_TRUE(out.good());
}

class DirectoryIoTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    web::SyntheticWeb web = web::Synthesizer(SmallConfig()).Generate();
    Dataset dataset = std::move(BuildDataset(web)).value();
    pages_ = new FormPageSet(BuildFormPageSet(dataset));
    CafcChOptions options;
    options.min_hub_cardinality = 4;
    cluster::Clustering clustering =
        CafcCh(*pages_, web::kNumDomains, options);
    directory_ = new DatabaseDirectory(DatabaseDirectory::Build(
        *pages_, clustering,
        DatabaseDirectory::AutoLabels(*pages_, clustering)));
  }
  static void TearDownTestSuite() {
    delete directory_;
    delete pages_;
    directory_ = nullptr;
    pages_ = nullptr;
  }

  static FormPageSet* pages_;
  static DatabaseDirectory* directory_;
};

FormPageSet* DirectoryIoTest::pages_ = nullptr;
DatabaseDirectory* DirectoryIoTest::directory_ = nullptr;

TEST_F(DirectoryIoTest, FailedRewriteLeavesTheOldFileByteIdentical) {
  const std::string path = TempPath("io_durable.cafc");
  ASSERT_TRUE(directory_->SaveToFile(path).ok());
  const std::string before = ReadAll(path);
  ASSERT_FALSE(before.empty());

  // Occupy the staging path with a directory: the temp-file open fails,
  // so the rewrite never gets as far as touching the destination.
  const std::string tmp_path = path + ".tmp";
  ASSERT_EQ(::mkdir(tmp_path.c_str(), 0755), 0) << std::strerror(errno);
  Status status = directory_->SaveToFile(path);
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(ReadAll(path), before);
  ASSERT_EQ(::rmdir(tmp_path.c_str()), 0);

  // With the staging path free again the same save succeeds.
  EXPECT_TRUE(directory_->SaveToFile(path).ok());
  std::remove(path.c_str());
}

TEST_F(DirectoryIoTest, SaveIntoMissingDirectoryFailsCleanly) {
  const std::string path =
      TempPath("no_such_subdir") + "/directory.cafc";
  Status status = directory_->SaveToFile(path);
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kInternal);
  // Nothing was created at the destination.
  struct stat st;
  EXPECT_NE(::stat(path.c_str(), &st), 0);
}

TEST_F(DirectoryIoTest, ParseErrorsNameTheLineAndByteOffset) {
  const std::string path = TempPath("io_located.cafc");
  ASSERT_TRUE(directory_->SaveToFile(path).ok());
  std::string data = ReadAll(path);

  // Corrupt the stats keyword: the loader fails on line 4 and says so.
  const size_t stats_at = data.find("\nstats ");
  ASSERT_NE(stats_at, std::string::npos);
  std::string corrupted = data;
  corrupted[stats_at + 1] = 'z';
  WriteAll(path, corrupted);
  Result<DatabaseDirectory> loaded = DatabaseDirectory::LoadFromFile(path);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kParseError);
  EXPECT_NE(loaded.status().message().find(":line 4"), std::string::npos)
      << loaded.status().ToString();
  EXPECT_NE(loaded.status().message().find("(byte "), std::string::npos)
      << loaded.status().ToString();
  std::remove(path.c_str());
}

TEST_F(DirectoryIoTest, HeaderBitFlipIsRejectedAtLineOne) {
  const std::string path = TempPath("io_header.cafc");
  ASSERT_TRUE(directory_->SaveToFile(path).ok());
  std::string data = ReadAll(path);
  data[2] ^= 0x20;  // "CAFC-DIRECTORY" -> "CAfC-DIRECTORY"
  WriteAll(path, data);
  Result<DatabaseDirectory> loaded = DatabaseDirectory::LoadFromFile(path);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kParseError);
  EXPECT_NE(loaded.status().message().find(":line 1"), std::string::npos)
      << loaded.status().ToString();
  std::remove(path.c_str());
}

TEST_F(DirectoryIoTest, EveryTruncationPointReportsALocation) {
  const std::string path = TempPath("io_truncated.cafc");
  ASSERT_TRUE(directory_->SaveToFile(path).ok());
  const std::string data = ReadAll(path);
  ASSERT_GT(data.size(), 64u);

  for (const double fraction : {0.05, 0.25, 0.5, 0.75, 0.98}) {
    const size_t keep = static_cast<size_t>(data.size() * fraction);
    WriteAll(path, data.substr(0, keep));
    Result<DatabaseDirectory> loaded =
        DatabaseDirectory::LoadFromFile(path);
    ASSERT_FALSE(loaded.ok()) << "kept " << keep << " bytes";
    EXPECT_EQ(loaded.status().code(), StatusCode::kParseError);
    EXPECT_NE(loaded.status().message().find(":line "), std::string::npos)
        << "kept " << keep << ": " << loaded.status().ToString();
    EXPECT_NE(loaded.status().message().find("(byte "), std::string::npos)
        << "kept " << keep << ": " << loaded.status().ToString();
  }
  std::remove(path.c_str());
}

TEST_F(DirectoryIoTest, VersionOneFilesStillLoad) {
  // Version 1 had no epoch line and wrote labels raw. The reader must
  // negotiate the version from the header and parse accordingly.
  const std::string path = TempPath("io_v1.cafc");
  WriteAll(path,
           "CAFC-DIRECTORY 1\n"
           "weights 1 4 6 6 6\n"
           "stats 2 2 2\n"
           "job 2 1\n"
           "hotel 1 2\n"
           "entries 2\n"
           "label job listings\n"
           "members 1\n"
           "http://a.test/search\n"
           "pc 1\n"
           "0 0.5\n"
           "fc 1\n"
           "0 0.25\n"
           "label hotel rooms\n"
           "members 2\n"
           "http://b.test/form\n"
           "http://c.test/form\n"
           "pc 1\n"
           "1 0.75\n"
           "fc 2\n"
           "0 0.125\n"
           "1 1.5\n");
  Result<DatabaseDirectory> loaded = DatabaseDirectory::LoadFromFile(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->epoch(), 0u);
  ASSERT_EQ(loaded->size(), 2u);
  EXPECT_EQ(loaded->entries()[0].label, "job listings");
  EXPECT_EQ(loaded->entries()[1].label, "hotel rooms");
  ASSERT_EQ(loaded->entries()[1].member_urls.size(), 2u);
  EXPECT_EQ(loaded->entries()[1].member_urls[1], "http://c.test/form");
  ASSERT_EQ(loaded->entries()[1].centroid.fc.size(), 2u);
  EXPECT_EQ(loaded->entries()[1].centroid.fc.entries()[1].weight, 1.5);
  std::remove(path.c_str());
}

TEST_F(DirectoryIoTest, VectorTermBeyondVocabularyIsLocatedCorruption) {
  const std::string path = TempPath("io_badterm.cafc");
  WriteAll(path,
           "CAFC-DIRECTORY 1\n"
           "weights 1 4 6 6 6\n"
           "stats 1 1 1\n"
           "job 1 1\n"
           "entries 1\n"
           "label jobs\n"
           "members 0\n"
           "pc 1\n"
           "7 0.5\n"
           "fc 0\n");
  Result<DatabaseDirectory> loaded = DatabaseDirectory::LoadFromFile(path);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kParseError);
  EXPECT_NE(loaded.status().message().find("out of range"),
            std::string::npos)
      << loaded.status().ToString();
  EXPECT_NE(loaded.status().message().find(":line "), std::string::npos);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace cafc
