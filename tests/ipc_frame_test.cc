// Hostile-input tests of the wire frame codec: the decoder must turn
// every corruption — truncation, bad magic, oversized or bit-flipped
// length, bit-flipped payload — into a clean kParseError without crashing
// or allocating unboundedly, and stay poisoned afterwards.

#include "ipc/frame.h"

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "util/status.h"

namespace cafc::ipc {
namespace {

std::string Frame(std::string_view payload) {
  std::string out;
  EncodeFrame(payload, &out);
  return out;
}

TEST(FrameCodecTest, RoundTripsSingleFrame) {
  std::string wire = Frame("hello shard");
  FrameDecoder decoder;
  decoder.Append(wire);
  std::string payload;
  bool have = false;
  ASSERT_TRUE(decoder.Next(&payload, &have).ok());
  ASSERT_TRUE(have);
  EXPECT_EQ(payload, "hello shard");
  ASSERT_TRUE(decoder.Next(&payload, &have).ok());
  EXPECT_FALSE(have);
  EXPECT_EQ(decoder.buffered_bytes(), 0u);
}

TEST(FrameCodecTest, RoundTripsEmptyAndBinaryPayloads) {
  std::string binary("\x00\xff\x7f\x80\n\r", 6);
  std::string wire = Frame("") + Frame(binary);
  FrameDecoder decoder;
  decoder.Append(wire);
  std::string payload;
  bool have = false;
  ASSERT_TRUE(decoder.Next(&payload, &have).ok());
  ASSERT_TRUE(have);
  EXPECT_EQ(payload, "");
  ASSERT_TRUE(decoder.Next(&payload, &have).ok());
  ASSERT_TRUE(have);
  EXPECT_EQ(payload, binary);
}

TEST(FrameCodecTest, ReassemblesAcrossArbitraryChunkBoundaries) {
  std::string wire = Frame("first") + Frame("second") + Frame("third");
  // Feed one byte at a time — the cruelest chunking.
  FrameDecoder decoder;
  std::vector<std::string> got;
  for (char c : wire) {
    decoder.Append(std::string_view(&c, 1));
    std::string payload;
    bool have = true;
    while (true) {
      ASSERT_TRUE(decoder.Next(&payload, &have).ok());
      if (!have) break;
      got.push_back(payload);
    }
  }
  ASSERT_EQ(got.size(), 3u);
  EXPECT_EQ(got[0], "first");
  EXPECT_EQ(got[1], "second");
  EXPECT_EQ(got[2], "third");
}

TEST(FrameCodecTest, TruncatedFrameWaitsForMoreBytes) {
  std::string wire = Frame("truncate me");
  FrameDecoder decoder;
  decoder.Append(std::string_view(wire).substr(0, wire.size() - 3));
  std::string payload;
  bool have = true;
  // Mid-frame is not an error — the stream may simply be slow.
  ASSERT_TRUE(decoder.Next(&payload, &have).ok());
  EXPECT_FALSE(have);
  decoder.Append(std::string_view(wire).substr(wire.size() - 3));
  ASSERT_TRUE(decoder.Next(&payload, &have).ok());
  ASSERT_TRUE(have);
  EXPECT_EQ(payload, "truncate me");
}

TEST(FrameCodecTest, BadMagicIsParseErrorAndPoisons) {
  std::string wire = Frame("payload");
  wire[0] ^= 0x01;
  FrameDecoder decoder;
  decoder.Append(wire);
  std::string payload;
  bool have = false;
  Status status = decoder.Next(&payload, &have);
  EXPECT_EQ(status.code(), StatusCode::kParseError);
  // Poisoned: appending a pristine frame cannot resurrect the stream.
  decoder.Append(Frame("pristine"));
  EXPECT_EQ(decoder.Next(&payload, &have).code(), StatusCode::kParseError);
}

TEST(FrameCodecTest, OversizedDeclaredLengthRejectedBeforeAllocation) {
  std::string wire = Frame("x");
  // Rewrite the length field (bytes 4..7) to declare ~4 GiB.
  wire[4] = static_cast<char>(0xff);
  wire[5] = static_cast<char>(0xff);
  wire[6] = static_cast<char>(0xff);
  wire[7] = static_cast<char>(0xff);
  FrameDecoder decoder;
  decoder.Append(wire);
  std::string payload;
  bool have = false;
  // The header alone is enough to reject: no waiting for 4 GiB of body.
  EXPECT_EQ(decoder.Next(&payload, &have).code(), StatusCode::kParseError);
}

TEST(FrameCodecTest, BitFlippedLengthWithinCapFailsChecksum) {
  // Two frames back to back; growing the first frame's length by one makes
  // it swallow a byte of the second — the checksum must catch it.
  std::string wire = Frame("aaaa") + Frame("bbbb");
  wire[4] = static_cast<char>(wire[4] + 1);
  FrameDecoder decoder;
  decoder.Append(wire);
  std::string payload;
  bool have = false;
  EXPECT_EQ(decoder.Next(&payload, &have).code(), StatusCode::kParseError);
}

TEST(FrameCodecTest, BitFlippedPayloadFailsChecksum) {
  std::string wire = Frame("sensitive bits");
  wire[kFrameHeaderBytes + 3] ^= 0x10;
  FrameDecoder decoder;
  decoder.Append(wire);
  std::string payload;
  bool have = false;
  EXPECT_EQ(decoder.Next(&payload, &have).code(), StatusCode::kParseError);
}

TEST(FrameCodecTest, BitFlippedChecksumFieldFailsChecksum) {
  std::string wire = Frame("check me");
  wire[8] ^= 0x40;  // checksum field: bytes 8..15
  FrameDecoder decoder;
  decoder.Append(wire);
  std::string payload;
  bool have = false;
  EXPECT_EQ(decoder.Next(&payload, &have).code(), StatusCode::kParseError);
}

TEST(FrameCodecTest, EveryPrefixOfAValidStreamIsCrashFree) {
  // Exhaustive truncation sweep: any prefix either yields complete frames
  // plus "need more bytes", never an error, never a crash.
  std::string wire = Frame("alpha") + Frame("beta");
  for (size_t cut = 0; cut <= wire.size(); ++cut) {
    FrameDecoder decoder;
    decoder.Append(std::string_view(wire).substr(0, cut));
    std::string payload;
    bool have = true;
    while (have) {
      ASSERT_TRUE(decoder.Next(&payload, &have).ok()) << "cut=" << cut;
    }
  }
}

}  // namespace
}  // namespace cafc::ipc
