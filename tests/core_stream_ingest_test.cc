#include "core/stream_ingest.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "web/stream_synthesizer.h"

namespace cafc {
namespace {

web::StreamingWebConfig SmallConfig() {
  web::StreamingWebConfig config;
  config.seed = 11;
  config.sites = 150;
  config.hubs_per_site = 0.4;
  config.hub_fanout = 6;
  return config;
}

/// Bit-identity of two streamed builds: same entries in the same order,
/// same vocabulary, same derived Eq. 1 vectors.
void ExpectIdentical(Corpus& a, Corpus& b) {
  ASSERT_EQ(a.size(), b.size());
  ASSERT_EQ(a.dictionary()->size(), b.dictionary()->size());
  EXPECT_EQ(a.GoldLabels(), b.GoldLabels());
  for (size_t i = 0; i < a.size(); ++i) {
    const DatasetEntry& ea = a.entries()[i];
    const DatasetEntry& eb = b.entries()[i];
    EXPECT_EQ(ea.doc.url, eb.doc.url);
    EXPECT_EQ(ea.backlinks, eb.backlinks);
  }
  const FormPageSet& wa = a.Weighted();
  const FormPageSet& wb = b.Weighted();
  ASSERT_EQ(wa.size(), wb.size());
  for (size_t i = 0; i < wa.size(); ++i) {
    EXPECT_EQ(wa.page(i).pc, wb.page(i).pc) << "pc " << i;
    EXPECT_EQ(wa.page(i).fc, wb.page(i).fc) << "fc " << i;
  }
}

TEST(StreamIngestTest, CorpusIsBitIdenticalAtEveryThreadCount) {
  web::StreamingWeb web(SmallConfig());
  StreamIngestOptions options;
  options.threads = 1;
  Result<StreamedCorpusBuild> serial = BuildStreamedCorpus(web, options);
  ASSERT_TRUE(serial.ok());
  for (int threads : {2, 8}) {
    options.threads = threads;
    Result<StreamedCorpusBuild> parallel = BuildStreamedCorpus(web, options);
    ASSERT_TRUE(parallel.ok()) << threads << " threads";
    ExpectIdentical(serial->corpus, parallel->corpus);
    EXPECT_EQ(serial->stats.kept, parallel->stats.kept);
    EXPECT_EQ(serial->stats.classifier_false_negatives,
              parallel->stats.classifier_false_negatives);
  }
}

TEST(StreamIngestTest, CorpusIsIndependentOfBatchSize) {
  web::StreamingWeb web(SmallConfig());
  StreamIngestOptions coarse;
  Result<StreamedCorpusBuild> one = BuildStreamedCorpus(web, coarse);
  ASSERT_TRUE(one.ok());
  StreamIngestOptions fine;
  fine.batch_pages = 64;  // forces multiple macro-batches
  Result<StreamedCorpusBuild> many = BuildStreamedCorpus(web, fine);
  ASSERT_TRUE(many.ok());
  ExpectIdentical(one->corpus, many->corpus);
}

TEST(StreamIngestTest, KeepsNearlyEveryGoldPageAndLabelsIt) {
  web::StreamingWeb web(SmallConfig());
  Result<StreamedCorpusBuild> build = BuildStreamedCorpus(web);
  ASSERT_TRUE(build.ok());
  EXPECT_EQ(build->stats.pages_generated, web.num_form_pages());
  EXPECT_EQ(build->stats.kept + build->stats.classifier_false_negatives,
            web.num_form_pages());
  EXPECT_GE(build->stats.kept, web.num_form_pages() * 9 / 10);
  // Gold labels line up with the generator's domain assignment.
  for (const DatasetEntry& entry : build->corpus.entries()) {
    EXPECT_GE(entry.gold, 0);
    EXPECT_LT(entry.gold, web::kNumDomains);
    EXPECT_FALSE(entry.backlinks.empty()) << entry.doc.url;
    for (const std::string& hub : entry.backlinks) {
      EXPECT_EQ(hub.substr(0, 8), "http://h") << hub;
    }
  }
}

TEST(StreamIngestTest, MaxPagesBoundsTheBuild) {
  web::StreamingWeb web(SmallConfig());
  StreamIngestOptions options;
  options.max_pages = 40;
  Result<StreamedCorpusBuild> build = BuildStreamedCorpus(web, options);
  ASSERT_TRUE(build.ok());
  EXPECT_EQ(build->stats.pages_generated, 40u);
  EXPECT_LE(build->corpus.size(), 40u);
}

}  // namespace
}  // namespace cafc
