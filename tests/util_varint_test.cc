#include "util/varint.h"

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include <gtest/gtest.h>

namespace cafc::util {
namespace {

// Every varint length boundary: the largest value of each encoded length
// and the smallest value of the next. A codec bug at a 7-bit boundary
// corrupts every snapshot whose counts cross it.
const uint64_t kBoundaries[] = {
    0,
    1,
    0x7f,                // 1-byte max
    0x80,                // 2-byte min
    0x3fff,              // 2-byte max
    0x4000,              // 3-byte min
    0x1fffff,            // 3-byte max
    0x200000,            // 4-byte min
    0xfffffff,           // 4-byte max (2^28 - 1)
    0x10000000,          // 5-byte min (2^28)
    0xffffffffull,       // max TermId / fixed32 max
    0x100000000ull,      // first value past 32 bits
    0x7fffffffffffffffull,
    std::numeric_limits<uint64_t>::max(),
};

TEST(Varint, RoundTripsEveryLengthBoundary) {
  for (uint64_t value : kBoundaries) {
    std::string buf;
    PutVarint64(&buf, value);
    EXPECT_EQ(buf.size(), VarintLength(value)) << value;
    ByteReader reader(buf);
    uint64_t decoded = 0;
    ASSERT_TRUE(reader.ReadVarint64(&decoded).ok()) << value;
    EXPECT_EQ(decoded, value);
    EXPECT_TRUE(reader.empty());
  }
}

TEST(Varint, BackToBackValuesShareOneBuffer) {
  std::string buf;
  for (uint64_t value : kBoundaries) PutVarint64(&buf, value);
  ByteReader reader(buf);
  for (uint64_t value : kBoundaries) {
    uint64_t decoded = 0;
    ASSERT_TRUE(reader.ReadVarint64(&decoded).ok());
    EXPECT_EQ(decoded, value);
  }
  EXPECT_TRUE(reader.empty());
}

TEST(Varint, TruncatedVarintIsParseErrorNotOverread) {
  std::string buf;
  PutVarint64(&buf, std::numeric_limits<uint64_t>::max());
  for (size_t keep = 0; keep < buf.size(); ++keep) {
    ByteReader reader(reinterpret_cast<const uint8_t*>(buf.data()), keep);
    uint64_t decoded = 0;
    Status status = reader.ReadVarint64(&decoded);
    EXPECT_FALSE(status.ok()) << "kept " << keep << " of " << buf.size();
    EXPECT_EQ(status.code(), StatusCode::kParseError);
  }
}

TEST(Varint, RejectsOverlongEncodingThatOverflows64Bits) {
  // Ten continuation bytes whose final byte carries bits beyond 2^64.
  std::string buf(9, '\xff');
  buf.push_back('\x7f');
  ByteReader reader(buf);
  uint64_t decoded = 0;
  EXPECT_EQ(reader.ReadVarint64(&decoded).code(), StatusCode::kParseError);
}

TEST(Varint, Varint32RejectsWiderValues) {
  std::string buf;
  PutVarint64(&buf, 0x100000000ull);
  ByteReader reader(buf);
  uint32_t decoded = 0;
  EXPECT_EQ(reader.ReadVarint32(&decoded).code(), StatusCode::kParseError);

  std::string ok_buf;
  PutVarint32(&ok_buf, 0xffffffffu);
  ByteReader ok_reader(ok_buf);
  ASSERT_TRUE(ok_reader.ReadVarint32(&decoded).ok());
  EXPECT_EQ(decoded, 0xffffffffu);
}

TEST(Fixed, RoundTripLittleEndian) {
  std::string buf;
  PutFixed32(&buf, 0x01020304u);
  PutFixed64(&buf, 0x0102030405060708ull);
  // Little-endian on the wire: least significant byte first.
  EXPECT_EQ(static_cast<uint8_t>(buf[0]), 0x04);
  EXPECT_EQ(static_cast<uint8_t>(buf[4]), 0x08);
  ByteReader reader(buf);
  uint32_t narrow = 0;
  uint64_t wide = 0;
  ASSERT_TRUE(reader.ReadFixed32(&narrow).ok());
  ASSERT_TRUE(reader.ReadFixed64(&wide).ok());
  EXPECT_EQ(narrow, 0x01020304u);
  EXPECT_EQ(wide, 0x0102030405060708ull);
}

TEST(Fixed, TruncatedFixedReadsFail) {
  std::string buf;
  PutFixed64(&buf, 42);
  ByteReader reader(reinterpret_cast<const uint8_t*>(buf.data()), 7);
  uint64_t wide = 0;
  EXPECT_EQ(reader.ReadFixed64(&wide).code(), StatusCode::kParseError);
  uint32_t narrow = 0;
  ByteReader short_reader(reinterpret_cast<const uint8_t*>(buf.data()), 3);
  EXPECT_EQ(short_reader.ReadFixed32(&narrow).code(),
            StatusCode::kParseError);
}

TEST(ByteReader, BytesAndSkipStayInBounds) {
  std::string buf = "abcdefgh";
  ByteReader reader(buf);
  std::string_view bytes;
  ASSERT_TRUE(reader.ReadBytes(3, &bytes).ok());
  EXPECT_EQ(bytes, "abc");
  EXPECT_EQ(reader.offset(), 3u);
  ASSERT_TRUE(reader.Skip(4).ok());
  EXPECT_EQ(reader.remaining(), 1u);
  EXPECT_FALSE(reader.ReadBytes(2, &bytes).ok());
  EXPECT_FALSE(reader.Skip(2).ok());
  ASSERT_TRUE(reader.Skip(1).ok());
  EXPECT_TRUE(reader.empty());
}

TEST(Checksum, DeterministicAndLengthSensitive) {
  const std::string data(100000, 'x');
  EXPECT_EQ(Checksum64(data), Checksum64(data));
  // Same bytes, different length: appending one byte changes the sum.
  EXPECT_NE(Checksum64(data), Checksum64(data + "x"));
  EXPECT_NE(Checksum64(""), Checksum64(std::string(1, '\0')));
}

TEST(Checksum, EveryBitFlipChangesTheSum) {
  // The section checksum exists to catch bit flips; try each bit of a
  // word-aligned block and of a ragged tail.
  for (size_t size : {8u, 64u, 67u}) {
    std::string data(size, '\x5a');
    const uint64_t clean = Checksum64(data);
    for (size_t byte = 0; byte < data.size(); ++byte) {
      for (int bit = 0; bit < 8; ++bit) {
        data[byte] = static_cast<char>(data[byte] ^ (1 << bit));
        EXPECT_NE(Checksum64(data), clean)
            << "size " << size << " byte " << byte << " bit " << bit;
        data[byte] = static_cast<char>(data[byte] ^ (1 << bit));
      }
    }
  }
}

TEST(Checksum, Fnv1a64MatchesKnownVectors) {
  // Reference vectors of the classic FNV-1a 64 (used for short keys).
  EXPECT_EQ(Fnv1a64(""), 0xcbf29ce484222325ull);
  EXPECT_EQ(Fnv1a64("a"), 0xaf63dc4c8601ec8cull);
  EXPECT_EQ(Fnv1a64("foobar"), 0x85944171f73967e8ull);
}

}  // namespace
}  // namespace cafc::util
