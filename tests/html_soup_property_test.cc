// Property tests hammering the HTML stack with generated tag soup: the
// parser must never crash, always terminate, produce deterministic trees,
// and uphold structural invariants regardless of input garbage.

#include <string>

#include <gtest/gtest.h>

#include "forms/form_extractor.h"
#include "forms/form_page_model.h"
#include "html/dom.h"
#include "html/entities.h"
#include "html/tokenizer.h"
#include "util/rng.h"

namespace cafc::html {
namespace {

/// Deterministic tag-soup generator: a mix of well-formed fragments,
/// malformed tags, entities, raw-text elements, and binary-ish junk.
std::string GenerateSoup(Rng* rng, size_t pieces) {
  static constexpr const char* kFragments[] = {
      "<div>", "</div>", "<p>", "</p>", "<form action=\"/s\">", "</form>",
      "<input type=text name=q>", "<input type=\"submit\" value=\"go\">",
      "<select name='x'>", "<option>a", "<option value=>b", "</select>",
      "<table><tr><td>", "</td></tr></table>", "<b>", "</i>", "<br/>",
      "<a href=\"/x\">link</a>", "<a href=>", "<!-- comment ",
      "-->", "<!DOCTYPE html>", "<script>var x = '<div>';</script>",
      "<style>p { }</style>", "plain text ", "&amp;", "&bogus;", "&#65;",
      "&#xZZ;", "< not a tag", ">", "\"", "'", "<123>", "</>",
      "<p attr=\"unterminated", "<textarea>free text", "</textarea>",
      "<label for=\"a\">L</label>", "<img src=x>", "<option>",
      "word1 word2 ", "\t\n  ", "<FORM METHOD=POST>", "</FoRm>",
  };
  std::string soup;
  for (size_t i = 0; i < pieces; ++i) {
    soup += kFragments[rng->Uniform(std::size(kFragments))];
    if (rng->Bernoulli(0.1)) {
      // A few raw bytes, including non-ASCII.
      soup += static_cast<char>(rng->UniformInt(1, 255));
    }
  }
  return soup;
}

size_t CountNodes(const Node& node) {
  size_t n = 1;
  for (const auto& child : node.children()) n += CountNodes(*child);
  return n;
}

size_t MaxDepth(const Node& node) {
  size_t deepest = 0;
  for (const auto& child : node.children()) {
    deepest = std::max(deepest, MaxDepth(*child));
  }
  return deepest + 1;
}

class SoupPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SoupPropertyTest, ParseNeverCrashesAndIsDeterministic) {
  Rng rng(GetParam());
  for (int round = 0; round < 30; ++round) {
    std::string soup = GenerateSoup(&rng, 5 + rng.Uniform(120));
    Document first = Parse(soup);
    Document second = Parse(soup);
    EXPECT_EQ(CountNodes(first.root()), CountNodes(second.root()));
    EXPECT_EQ(first.root().TextContent(), second.root().TextContent());
  }
}

TEST_P(SoupPropertyTest, NodeCountBoundedByInput) {
  Rng rng(GetParam() ^ 0x50550ull);
  for (int round = 0; round < 30; ++round) {
    std::string soup = GenerateSoup(&rng, 5 + rng.Uniform(120));
    Document doc = Parse(soup);
    // Every node needs at least one input character ('<' or a text byte).
    EXPECT_LE(CountNodes(doc.root()), soup.size() + 2);
    EXPECT_LE(MaxDepth(doc.root()), soup.size() + 2);
  }
}

TEST_P(SoupPropertyTest, TokenizerRoundTerminates) {
  Rng rng(GetParam() ^ 0xbeef);
  for (int round = 0; round < 30; ++round) {
    std::string soup = GenerateSoup(&rng, 5 + rng.Uniform(120));
    std::vector<Token> tokens = Tokenizer::TokenizeAll(soup);
    // Token count is bounded: each token consumes at least one byte.
    EXPECT_LE(tokens.size(), soup.size() + 1);
  }
}

TEST_P(SoupPropertyTest, FormExtractionSurvivesSoup) {
  Rng rng(GetParam() ^ 0xf00d);
  for (int round = 0; round < 20; ++round) {
    std::string soup = GenerateSoup(&rng, 5 + rng.Uniform(150));
    Document doc = Parse(soup);
    std::vector<forms::Form> extracted = forms::ExtractForms(doc);
    for (const forms::Form& form : extracted) {
      // Structural invariants hold even on garbage.
      EXPECT_GE(form.NumFillableFields(), 0);
      EXPECT_LE(form.NumAttributes(), form.NumFillableFields() + 100);
    }
  }
}

TEST_P(SoupPropertyTest, FormPageModelSurvivesSoup) {
  Rng rng(GetParam() ^ 0xcafe);
  forms::FormPageModelBuilder builder;
  for (int round = 0; round < 20; ++round) {
    std::string soup = GenerateSoup(&rng, 5 + rng.Uniform(150));
    forms::FormPageDocument doc = builder.Build("http://x.com/", soup);
    for (const auto& term : doc.page_terms) {
      ASSERT_LT(term.term, doc.dictionary->size());
      EXPECT_FALSE(doc.Term(term).empty());
    }
    for (const auto& term : doc.form_terms) {
      ASSERT_LT(term.term, doc.dictionary->size());
      EXPECT_FALSE(doc.Term(term).empty());
    }
  }
}

TEST_P(SoupPropertyTest, EntityDecodingNeverGrowsPathologically) {
  Rng rng(GetParam() ^ 0x1111);
  for (int round = 0; round < 50; ++round) {
    std::string soup = GenerateSoup(&rng, 1 + rng.Uniform(40));
    std::string decoded = DecodeEntities(soup);
    // Decoding replaces references with at most 4 UTF-8 bytes each; output
    // can never be more than ~4x input.
    EXPECT_LE(decoded.size(), soup.size() * 4 + 4);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SoupPropertyTest,
                         ::testing::Values(1, 7, 99, 1234, 987654));

}  // namespace
}  // namespace cafc::html
