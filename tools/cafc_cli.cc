// cafc — command-line front end for the CAFC pipeline.
//
//   cafc stats    [--seed N]
//       Corpus + hub-cluster statistics of the synthetic web.
//
//   cafc cluster  [--seed N] [--k 8] [--algo ch|c|hac]
//                 [--min-cardinality 8] [--content fc|pc|fcpc]
//                 [--save FILE] [--dot FILE] [--show-members N]
//                 [--threads N] [fault flags]
//       Run the full pipeline (crawl → classify → model → cluster), print
//       the resulting directory, optionally persist it.
//
//   Fault flags (stats and cluster): crawl through a fault-injecting
//   fetcher instead of the pristine synthetic web.
//     --fault-transient R  --fault-dead R  --fault-slow R
//     --fault-truncated R  --fault-soft404 R   fraction of URLs per band
//     --fault-seed N       fault assignment seed (default 1)
//     --retry-attempts N   total fetch attempts per URL (default 3)
//     --retry-backoff-ms N initial virtual backoff (default 100)
//
//   cafc classify --dir FILE [--seed M] [--pages N]
//       Load a saved directory and classify the form pages of a *fresh*
//       corpus into it; report accuracy against the generator's gold.
//
//   cafc search   --dir FILE "query terms" [--top 5]
//       Keyword search over a saved directory's sections.
//
//   cafc add      --dir FILE [--seed M] [--pages N]
//       Incremental maintenance: file the form pages of a fresh corpus
//       into a saved directory (updating centroids) and re-save it.
//
//   cafc labels   FILE.html
//       Run the heuristic label extractor on a page (baseline input).

#include <cstdio>
#include <fstream>
#include <map>
#include <memory>
#include <sstream>
#include <string>

#include "core/cafc.h"
#include "core/dataset.h"
#include "core/directory.h"
#include "core/visualize.h"
#include "eval/metrics.h"
#include "forms/label_extractor.h"
#include "html/dom.h"
#include "util/flags.h"
#include "util/table.h"
#include "util/thread_pool.h"
#include "web/domain_vocab.h"
#include "web/fault_injection.h"
#include "web/synthesizer.h"

namespace {

using namespace cafc;  // NOLINT — tool code

int Usage() {
  std::fprintf(stderr,
               "usage: cafc <stats|cluster|classify|labels> [flags]\n"
               "run with a command to see its flags (documented in the "
               "source header)\n");
  return 2;
}

web::SyntheticWeb MakeWeb(uint64_t seed, int pages, int singles) {
  web::SynthesizerConfig config;
  config.seed = seed;
  if (pages > 0) {
    config.form_pages_total = pages;
    config.single_attribute_forms = std::max(1, pages / 8);
  }
  if (singles >= 0) config.single_attribute_forms = singles;
  return web::Synthesizer(config).Generate();
}

Result<Dataset> MakeDataset(const web::SyntheticWeb& web) {
  return BuildDataset(web);
}

/// Fault-flag plumbing shared by `stats` and `cluster`: reads the
/// --fault-* / --retry-* flags into a FaultProfile + FetchRetryPolicy and,
/// when any band is non-zero, routes the crawl through a decorator. The
/// decorator must outlive BuildDataset, hence the owning wrapper.
struct FaultSetup {
  std::unique_ptr<web::FaultInjectingFetcher> fetcher;
  bool active() const { return fetcher != nullptr; }
};

FaultSetup ConfigureFaults(const FlagParser& flags,
                           const web::SyntheticWeb& web,
                           DatasetOptions* options) {
  web::FaultProfile profile;
  profile.transient_rate = flags.GetDouble("fault-transient", 0.0);
  profile.dead_rate = flags.GetDouble("fault-dead", 0.0);
  profile.slow_rate = flags.GetDouble("fault-slow", 0.0);
  profile.truncated_rate = flags.GetDouble("fault-truncated", 0.0);
  profile.soft404_rate = flags.GetDouble("fault-soft404", 0.0);
  profile.seed = static_cast<uint64_t>(flags.GetInt("fault-seed", 1));

  web::FetchRetryPolicy& retry = options->crawler.retry;
  retry.max_attempts = static_cast<int>(
      flags.GetInt("retry-attempts", retry.max_attempts));
  retry.initial_backoff_ms = static_cast<uint64_t>(flags.GetInt(
      "retry-backoff-ms", static_cast<int64_t>(retry.initial_backoff_ms)));

  FaultSetup setup;
  if (profile.active()) {
    setup.fetcher =
        std::make_unique<web::FaultInjectingFetcher>(&web, profile);
    options->fetcher = setup.fetcher.get();
  }
  return setup;
}

void PrintCrawlStats(const Dataset& dataset) {
  const web::CrawlStats& c = dataset.stats.crawl;
  std::printf(
      "crawl under faults: fetched=%zu recovered=%zu exhausted=%zu "
      "dead=%zu dangling=%zu malformed=%zu soft404=%zu retries=%zu "
      "backoff=%llums\n",
      c.fetched, c.transient_recovered, c.retries_exhausted, c.dead_urls,
      c.dangling_links, c.malformed_pages, c.soft404_pages, c.retry_attempts,
      static_cast<unsigned long long>(c.backoff_virtual_ms));
}

int RunStats(const FlagParser& flags) {
  uint64_t seed = static_cast<uint64_t>(flags.GetInt("seed", 42));
  web::SyntheticWeb web =
      MakeWeb(seed, static_cast<int>(flags.GetInt("pages", 0)), -1);
  DatasetOptions options;
  FaultSetup faults = ConfigureFaults(flags, web, &options);
  Result<Dataset> dataset = BuildDataset(web, options);
  if (!dataset.ok()) {
    std::fprintf(stderr, "%s\n", dataset.status().ToString().c_str());
    return 1;
  }
  if (faults.active()) PrintCrawlStats(*dataset);
  FormPageSet pages = BuildFormPageSet(*dataset);
  std::vector<HubCluster> hubs = GenerateHubClusters(pages);

  Table table({"statistic", "value"});
  table.AddRow({"generated pages", std::to_string(web.pages().size())});
  table.AddRow({"crawled pages",
                std::to_string(dataset->stats.crawled_pages)});
  table.AddRow({"pages with forms",
                std::to_string(dataset->stats.pages_with_forms)});
  table.AddRow({"searchable form pages (gold)",
                std::to_string(dataset->entries.size())});
  table.AddRow({"classifier false negatives",
                std::to_string(dataset->stats.classifier_false_negatives)});
  table.AddRow({"pages without direct backlinks",
                std::to_string(dataset->stats.pages_without_backlinks)});
  table.AddRow({"distinct hub clusters", std::to_string(hubs.size())});
  table.AddRow({"hub clusters (cardinality >= 8)",
                std::to_string(FilterByCardinality(hubs, 8).size())});
  std::printf("%s", table.ToString().c_str());
  return 0;
}

/// Gold-majority label of a cluster, formatted "Domain | top terms".
std::vector<std::string> GoldAwareLabels(const FormPageSet& pages,
                                         const Dataset& dataset,
                                         const cluster::Clustering& c) {
  std::vector<std::string> auto_labels =
      DatabaseDirectory::AutoLabels(pages, c);
  std::vector<std::string> labels;
  for (int j = 0; j < c.num_clusters; ++j) {
    std::vector<size_t> members = c.Members(j);
    std::vector<int> votes(web::kNumDomains, 0);
    for (size_t m : members) {
      ++votes[static_cast<size_t>(dataset.entries[m].gold)];
    }
    int best = 0;
    for (int d = 1; d < web::kNumDomains; ++d) {
      if (votes[static_cast<size_t>(d)] > votes[static_cast<size_t>(best)]) {
        best = d;
      }
    }
    std::string domain(members.empty()
                           ? "(empty)"
                           : web::DomainName(web::AllDomains()
                                                 [static_cast<size_t>(best)]));
    labels.push_back(domain + " | " +
                     auto_labels[static_cast<size_t>(j)]);
  }
  return labels;
}

int RunCluster(const FlagParser& flags) {
  uint64_t seed = static_cast<uint64_t>(flags.GetInt("seed", 42));
  int k = static_cast<int>(flags.GetInt("k", web::kNumDomains));
  std::string algo = flags.GetString("algo", "ch");
  std::string content_name = flags.GetString("content", "fcpc");
  // 0 = hardware concurrency (the pool's automatic sizing).
  int threads = static_cast<int>(flags.GetInt("threads", 0));
  if (threads < 0) {
    std::fprintf(stderr, "--threads must be >= 0 (0 = all cores)\n");
    return 2;
  }
  util::ThreadPool::SetDefaultThreads(threads);

  ContentConfig content = ContentConfig::kFcPlusPc;
  if (content_name == "fc") content = ContentConfig::kFcOnly;
  if (content_name == "pc") content = ContentConfig::kPcOnly;

  web::SyntheticWeb web =
      MakeWeb(seed, static_cast<int>(flags.GetInt("pages", 0)), -1);
  DatasetOptions dataset_options;
  dataset_options.threads = threads;
  FaultSetup faults = ConfigureFaults(flags, web, &dataset_options);
  Result<Dataset> dataset = BuildDataset(web, dataset_options);
  if (!dataset.ok()) {
    std::fprintf(stderr, "%s\n", dataset.status().ToString().c_str());
    return 1;
  }
  if (faults.active()) PrintCrawlStats(*dataset);
  FormPageSet pages = BuildFormPageSet(*dataset);

  cluster::Clustering clustering;
  if (algo == "ch") {
    CafcChOptions options;
    options.cafc.content = content;
    options.cafc.threads = threads;
    options.min_hub_cardinality =
        static_cast<size_t>(flags.GetInt("min-cardinality", 8));
    CafcChReport report;
    clustering = CafcCh(pages, k, options, &report);
    std::printf("hub clusters: %zu total, %zu kept, %zu padded seeds\n",
                report.hub_clusters_total, report.hub_clusters_kept,
                report.padded_seeds);
  } else if (algo == "c") {
    CafcOptions options;
    options.content = content;
    options.threads = threads;
    Rng rng(seed ^ 0x5eed);
    clustering = CafcC(pages, k, options, &rng);
  } else if (algo == "hac") {
    CafcOptions options;
    options.content = content;
    options.threads = threads;
    clustering = CafcHac(pages, k, options);
  } else {
    std::fprintf(stderr, "unknown --algo %s (use ch|c|hac)\n", algo.c_str());
    return 2;
  }

  eval::ContingencyTable table(dataset->GoldLabels(), dataset->num_classes,
                               clustering);
  std::printf("quality: entropy=%.3f f-measure=%.3f purity=%.3f\n",
              eval::TotalEntropy(table), eval::OverallFMeasure(table),
              eval::Purity(table));

  std::vector<std::string> labels =
      GoldAwareLabels(pages, *dataset, clustering);
  Table out({"cluster", "databases", "label"});
  for (int j = 0; j < clustering.num_clusters; ++j) {
    out.AddRow({std::to_string(j),
                std::to_string(clustering.ClusterSize(j)),
                labels[static_cast<size_t>(j)]});
  }
  std::printf("%s", out.ToString().c_str());

  int show = static_cast<int>(flags.GetInt("show-members", 0));
  if (show > 0) {
    for (int j = 0; j < clustering.num_clusters; ++j) {
      std::printf("cluster %d:\n", j);
      int printed = 0;
      for (size_t m : clustering.Members(j)) {
        std::printf("  %s\n", pages.page(m).url.c_str());
        if (++printed >= show) break;
      }
    }
  }

  std::string dot_path = flags.GetString("dot");
  if (!dot_path.empty()) {
    std::ofstream out(dot_path);
    if (!out) {
      std::fprintf(stderr, "cannot open %s\n", dot_path.c_str());
      return 1;
    }
    out << ExportClusteringToDot(pages, clustering, labels);
    std::printf("DOT graph written to %s (render: neato -Tsvg %s)\n",
                dot_path.c_str(), dot_path.c_str());
  }

  std::string save_path = flags.GetString("save");
  if (!save_path.empty()) {
    DatabaseDirectory directory =
        DatabaseDirectory::Build(pages, clustering, labels);
    Status status = directory.SaveToFile(save_path);
    if (!status.ok()) {
      std::fprintf(stderr, "save failed: %s\n", status.ToString().c_str());
      return 1;
    }
    std::printf("directory saved to %s (%zu entries)\n", save_path.c_str(),
                directory.size());
  }
  return 0;
}

int RunClassify(const FlagParser& flags) {
  std::string dir_path = flags.GetString("dir");
  if (dir_path.empty()) {
    std::fprintf(stderr, "classify requires --dir FILE\n");
    return 2;
  }
  Result<DatabaseDirectory> directory =
      DatabaseDirectory::LoadFromFile(dir_path);
  if (!directory.ok()) {
    std::fprintf(stderr, "%s\n", directory.status().ToString().c_str());
    return 1;
  }

  uint64_t seed = static_cast<uint64_t>(flags.GetInt("seed", 777));
  int pages = static_cast<int>(flags.GetInt("pages", 120));
  web::SyntheticWeb web = MakeWeb(seed, pages, -1);
  Result<Dataset> dataset = MakeDataset(web);
  if (!dataset.ok()) {
    std::fprintf(stderr, "%s\n", dataset.status().ToString().c_str());
    return 1;
  }

  // Entry labels carry the gold domain name before " | " (see RunCluster).
  auto entry_domain = [&directory](int entry) {
    const std::string& label =
        directory->entries()[static_cast<size_t>(entry)].label;
    return label.substr(0, label.find(" | "));
  };

  size_t correct = 0;
  for (const DatasetEntry& e : dataset->entries) {
    DatabaseDirectory::Classification verdict =
        directory->ClassifyDocument(e.doc);
    if (verdict.entry < 0) continue;
    std::string gold(web::DomainName(
        web::AllDomains()[static_cast<size_t>(e.gold)]));
    if (entry_domain(verdict.entry) == gold) ++correct;
  }
  std::printf("classified %zu new sources, accuracy %.1f%%\n",
              dataset->entries.size(),
              100.0 * static_cast<double>(correct) /
                  static_cast<double>(dataset->entries.size()));
  return 0;
}

int RunSearch(const FlagParser& flags) {
  std::string dir_path = flags.GetString("dir");
  if (dir_path.empty() || flags.positional().size() < 2) {
    std::fprintf(stderr, "search requires --dir FILE and a query string\n");
    return 2;
  }
  Result<DatabaseDirectory> directory =
      DatabaseDirectory::LoadFromFile(dir_path);
  if (!directory.ok()) {
    std::fprintf(stderr, "%s\n", directory.status().ToString().c_str());
    return 1;
  }
  std::string query;
  for (size_t i = 1; i < flags.positional().size(); ++i) {
    if (!query.empty()) query += ' ';
    query += flags.positional()[i];
  }
  auto hits = directory->Search(
      query, static_cast<size_t>(flags.GetInt("top", 5)));
  if (hits.empty()) {
    std::printf("no matching sections for \"%s\"\n", query.c_str());
    return 0;
  }
  Table table({"score", "databases", "section"});
  for (const auto& hit : hits) {
    const DirectoryEntry& entry =
        directory->entries()[static_cast<size_t>(hit.entry)];
    char score[32];
    std::snprintf(score, sizeof(score), "%.3f", hit.similarity);
    table.AddRow({score, std::to_string(entry.member_urls.size()),
                  entry.label});
  }
  std::printf("%s", table.ToString().c_str());
  return 0;
}

int RunAdd(const FlagParser& flags) {
  std::string dir_path = flags.GetString("dir");
  if (dir_path.empty()) {
    std::fprintf(stderr, "add requires --dir FILE\n");
    return 2;
  }
  Result<DatabaseDirectory> directory =
      DatabaseDirectory::LoadFromFile(dir_path);
  if (!directory.ok()) {
    std::fprintf(stderr, "%s\n", directory.status().ToString().c_str());
    return 1;
  }
  uint64_t seed = static_cast<uint64_t>(flags.GetInt("seed", 888));
  int pages = static_cast<int>(flags.GetInt("pages", 40));
  web::SyntheticWeb web = MakeWeb(seed, pages, -1);
  Result<Dataset> dataset = MakeDataset(web);
  if (!dataset.ok()) {
    std::fprintf(stderr, "%s\n", dataset.status().ToString().c_str());
    return 1;
  }
  std::map<int, int> filed;
  for (const DatasetEntry& e : dataset->entries) {
    DatabaseDirectory::Classification verdict = directory->AddSource(e.doc);
    if (verdict.entry >= 0) ++filed[verdict.entry];
  }
  for (const auto& [entry, count] : filed) {
    std::printf("filed %3d new sources under [%s]\n", count,
                directory->entries()[static_cast<size_t>(entry)]
                    .label.c_str());
  }
  Status status = directory->SaveToFile(dir_path);
  if (!status.ok()) {
    std::fprintf(stderr, "save failed: %s\n", status.ToString().c_str());
    return 1;
  }
  std::printf("directory updated: %s\n", dir_path.c_str());
  return 0;
}

int RunLabels(const FlagParser& flags) {
  if (flags.positional().size() < 2) {
    std::fprintf(stderr, "labels requires an HTML file path\n");
    return 2;
  }
  std::ifstream in(flags.positional()[1]);
  if (!in) {
    std::fprintf(stderr, "cannot open %s\n", flags.positional()[1].c_str());
    return 1;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  html::Document doc = html::Parse(buffer.str());
  Table table({"field name", "extracted label"});
  for (const forms::LabeledField& field : forms::ExtractAllLabels(doc)) {
    table.AddRow({field.field_name,
                  field.label.empty() ? "(none)" : field.label});
  }
  std::printf("%s", table.ToString().c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  FlagParser flags(argc, argv);
  if (flags.positional().empty()) return Usage();
  const std::string& command = flags.positional()[0];
  if (command == "stats") return RunStats(flags);
  if (command == "cluster") return RunCluster(flags);
  if (command == "classify") return RunClassify(flags);
  if (command == "search") return RunSearch(flags);
  if (command == "add") return RunAdd(flags);
  if (command == "labels") return RunLabels(flags);
  return Usage();
}
