// cafc — command-line front end for the CAFC pipeline.
//
//   cafc stats    [--seed N]
//       Corpus + hub-cluster statistics of the synthetic web.
//
//   cafc cluster  [--seed N] [--k 8] [--algo ch|c|hac]
//                 [--min-cardinality 8] [--content fc|pc|fcpc]
//                 [--save FILE] [--save-v3 FILE.cafc3] [--dot FILE]
//                 [--show-members N] [--threads N] [fault flags]
//       Run the full pipeline (crawl → classify → model → cluster), print
//       the resulting directory, optionally persist it.
//
//   Fault flags (stats and cluster): crawl through a fault-injecting
//   fetcher instead of the pristine synthetic web.
//     --fault-transient R  --fault-dead R  --fault-slow R
//     --fault-truncated R  --fault-soft404 R   fraction of URLs per band
//     --fault-seed N       fault assignment seed (default 1)
//     --retry-attempts N   total fetch attempts per URL (default 3)
//     --retry-backoff-ms N initial virtual backoff (default 100)
//
//   cafc classify --dir FILE [--seed M] [--pages N]
//       Load a saved directory and classify the form pages of a *fresh*
//       corpus into it; report accuracy against the generator's gold.
//
//   cafc search   --dir FILE "query terms" [--top 5]
//       Keyword search over a saved directory's sections.
//
//   cafc add      --dir FILE [--seed M] [--pages N]
//       Incremental maintenance: file the form pages of a fresh corpus
//       into a saved directory (updating centroids) and re-save it.
//
//   cafc grow     [--seed N] [--pages N] [--add-sites N] [--k K]
//                 [--threads N] [--save FILE]
//       Epoch-versioned growth demo: build a corpus + directory, absorb
//       the form pages of a second synthetic web through Corpus::AddPages,
//       compare the incremental re-derive against a from-scratch rebuild
//       (must be bit-identical), and warm-start-refresh the directory.
//
//   cafc labels   FILE.html
//       Run the heuristic label extractor on a page (baseline input).
//
//   cafc serve    [--seed N] [--pages N] [--workers 4] [--clients 4]
//                 [--requests 64] [--queue 256] [--pad-ms N]
//                 [--refresh-pages 16] [--priority high|normal|low]
//                 [--deadline-ms N] [--cache-bytes BYTES]
//                 [--snapshot FILE.cafc3] [--memory-budget BYTES]
//       In-process serving demo: build a corpus + directory, start the
//       concurrent DirectoryServer, hammer it from client threads while a
//       refresh hot-swaps the snapshot mid-run, then print throughput,
//       latency percentiles, admission and epoch statistics.
//       With --snapshot the server instead mmaps a binary v3 snapshot
//       (written by `compact` or `cluster --save-v3`) read-only: stored
//       pages are classified by ordinal through the budget-bounded page
//       LRU (--memory-budget, bytes, 0 = unlimited) and the stats table
//       gains the storage hit/miss/resident counters.
//       --priority tags every generated request with a scheduling class
//       (and switches the backlog to priority/deadline ordering when not
//       "normal"); --deadline-ms gives each request a latency budget;
//       --cache-bytes enables the epoch-keyed result cache (0 = off).
//
//   cafc compact  --dir FILE --out FILE.cafc3
//       Convert a directory file (text v1/v2 or binary v3) to a binary v3
//       snapshot, printing the per-section byte breakdown and the
//       compression ratio against the input.
//
//   cafc inspect  FILE.cafc3 [--json]
//       Dump a v3 snapshot's header and section table (kind, offset,
//       bytes, items, checksum verdict) without decoding the payloads.
//       --json emits the same facts (plus the shard map, when present) as
//       a single machine-readable JSON object on stdout.
//
//   cafc shard    --snapshot FILE.cafc3 [--threads 2]
//       Serve one shard's snapshot over stdin/stdout as a framed RPC
//       backend (the child-process end of `route --spawn`). The snapshot's
//       shard-map section supplies the local->global section translation;
//       a snapshot without one serves as shard 0 of 1. Diagnostics go to
//       stderr — stdout is the wire.
//
//   cafc route    [--seed N] [--pages N] [--shards 4] [--workers 2]
//                 [--requests 32] [--spawn] [--save BASE]
//       Scatter-gather demo: build a corpus + directory, partition them by
//       site hash into --shards shard bundles, serve each behind the
//       message-pipe RPC (in-process by default; --spawn forks one `cafc
//       shard` child per shard over per-shard v3 snapshots), route every
//       probe document and a query mix through the ShardRouter, and verify
//       the merged answers are bit-identical to the unsharded directory.
//       --save BASE writes the per-shard snapshots (BASE.shard-NN-of-MM
//       .cafc3); --spawn implies it (default /tmp/cafc-route.cafc3).
//
//   cafc query    --dir FILE "query terms" [--top 5]
//                 [--priority high|normal|low] [--deadline-ms N]
//                 [--cache-bytes BYTES]
//       Serve a keyword search over a saved directory through the
//       DirectoryServer (epoch-pinned snapshot), printing the hits and the
//       snapshot version that answered. --priority/--deadline-ms tag the
//       request's scheduling class and latency budget; --cache-bytes
//       enables the result cache for the one-shot server.
//
//   All numeric flags are validated: a malformed or out-of-range value is
//   a usage error (exit 2), never a silent fallback to the default. An
//   unknown command lists the available commands and exits 2.

#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <fstream>
#include <limits>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/cafc.h"
#include "core/corpus.h"
#include "core/dataset.h"
#include "core/directory.h"
#include "core/ingest.h"
#include "core/partition.h"
#include "core/visualize.h"
#include "eval/metrics.h"
#include "forms/label_extractor.h"
#include "html/dom.h"
#include "ipc/pipe.h"
#include "ipc/shard_rpc.h"
#include "serve/server.h"
#include "serve/shard_router.h"
#include "serve/shard_service.h"
#include "storage/format.h"
#include "storage/reader.h"
#include "storage/writer.h"
#include "util/flags.h"
#include "util/histogram.h"
#include "util/table.h"
#include "util/thread_pool.h"
#include "web/domain_vocab.h"
#include "web/fault_injection.h"
#include "web/synthesizer.h"

namespace {

using namespace cafc;  // NOLINT — tool code

constexpr const char* kCommands[] = {"stats",   "cluster", "classify",
                                     "search",  "add",     "grow",
                                     "labels",  "serve",   "query",
                                     "compact", "inspect", "shard",
                                     "route"};

int Usage() {
  std::string names;
  for (const char* command : kCommands) {
    if (!names.empty()) names += '|';
    names += command;
  }
  std::fprintf(stderr,
               "usage: cafc <%s> [flags]\n"
               "run with a command to see its flags (documented in the "
               "source header)\n",
               names.c_str());
  return 2;
}

int UnknownCommand(const std::string& command) {
  std::fprintf(stderr, "cafc: unknown command '%s'\n", command.c_str());
  std::fprintf(stderr, "available commands:\n");
  for (const char* name : kCommands) std::fprintf(stderr, "  %s\n", name);
  return 2;
}

constexpr int64_t kMaxSeed = std::numeric_limits<int64_t>::max();

/// Unwraps a validated flag; on error prints the message so the caller
/// can return the usage exit code.
template <typename T>
[[nodiscard]] bool FlagValue(Result<T> result, T* out) {
  if (!result.ok()) {
    std::fprintf(stderr, "%s\n", result.status().ToString().c_str());
    return false;
  }
  *out = std::move(*result);
  return true;
}

web::SyntheticWeb MakeWeb(uint64_t seed, int pages, int singles) {
  web::SynthesizerConfig config;
  config.seed = seed;
  if (pages > 0) {
    config.form_pages_total = pages;
    config.single_attribute_forms = std::max(1, pages / 8);
  }
  if (singles >= 0) config.single_attribute_forms = singles;
  return web::Synthesizer(config).Generate();
}

Result<Dataset> MakeDataset(const web::SyntheticWeb& web) {
  return BuildDataset(web);
}

uint64_t FileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  if (!in) return 0;
  const std::streamoff size = in.tellg();
  return size < 0 ? 0 : static_cast<uint64_t>(size);
}

/// True when `path` starts with the binary v3 magic — `add` uses this to
/// re-save a directory in the format it arrived in.
bool IsV3File(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  char magic[sizeof(storage::kMagicV3)] = {};
  if (!in.read(magic, sizeof(magic))) return false;
  return storage::HasV3Magic(magic, sizeof(magic));
}

/// "12345 (12.1 KiB)"-style byte rendering for the storage tables.
std::string HumanBytes(uint64_t bytes) {
  char buf[64];
  if (bytes >= 1024 * 1024) {
    std::snprintf(buf, sizeof(buf), "%llu (%.1f MiB)",
                  static_cast<unsigned long long>(bytes),
                  static_cast<double>(bytes) / (1024.0 * 1024.0));
  } else if (bytes >= 1024) {
    std::snprintf(buf, sizeof(buf), "%llu (%.1f KiB)",
                  static_cast<unsigned long long>(bytes),
                  static_cast<double>(bytes) / 1024.0);
  } else {
    std::snprintf(buf, sizeof(buf), "%llu",
                  static_cast<unsigned long long>(bytes));
  }
  return buf;
}

/// Fault-flag plumbing shared by `stats` and `cluster`: reads the
/// --fault-* / --retry-* flags into a FaultProfile + FetchRetryPolicy and,
/// when any band is non-zero, routes the crawl through a decorator. The
/// decorator must outlive BuildDataset, hence the owning wrapper.
struct FaultSetup {
  std::unique_ptr<web::FaultInjectingFetcher> fetcher;
  bool active() const { return fetcher != nullptr; }
};

Result<FaultSetup> ConfigureFaults(const FlagParser& flags,
                                   const web::SyntheticWeb& web,
                                   DatasetOptions* options) {
  web::FaultProfile profile;
  const struct {
    const char* name;
    double* slot;
  } rates[] = {
      {"fault-transient", &profile.transient_rate},
      {"fault-dead", &profile.dead_rate},
      {"fault-slow", &profile.slow_rate},
      {"fault-truncated", &profile.truncated_rate},
      {"fault-soft404", &profile.soft404_rate},
  };
  for (const auto& rate : rates) {
    Result<double> value = flags.GetRate(rate.name, 0.0);
    if (!value.ok()) return value.status();
    *rate.slot = *value;
  }
  Result<int64_t> fault_seed = flags.GetIntInRange("fault-seed", 1, 0,
                                                   kMaxSeed);
  if (!fault_seed.ok()) return fault_seed.status();
  profile.seed = static_cast<uint64_t>(*fault_seed);

  web::FetchRetryPolicy& retry = options->crawler.retry;
  Result<int64_t> attempts =
      flags.GetIntInRange("retry-attempts", retry.max_attempts, 1, 1000);
  if (!attempts.ok()) return attempts.status();
  retry.max_attempts = static_cast<int>(*attempts);
  Result<int64_t> backoff = flags.GetIntInRange(
      "retry-backoff-ms", static_cast<int64_t>(retry.initial_backoff_ms), 0,
      86'400'000);
  if (!backoff.ok()) return backoff.status();
  retry.initial_backoff_ms = static_cast<uint64_t>(*backoff);

  FaultSetup setup;
  if (profile.active()) {
    setup.fetcher =
        std::make_unique<web::FaultInjectingFetcher>(&web, profile);
    options->fetcher = setup.fetcher.get();
  }
  return setup;
}

void PrintCrawlStats(const Dataset& dataset) {
  const web::CrawlStats& c = dataset.stats.crawl;
  std::printf(
      "crawl under faults: fetched=%zu recovered=%zu exhausted=%zu "
      "dead=%zu dangling=%zu malformed=%zu soft404=%zu retries=%zu "
      "backoff=%llums\n",
      c.fetched, c.transient_recovered, c.retries_exhausted, c.dead_urls,
      c.dangling_links, c.malformed_pages, c.soft404_pages, c.retry_attempts,
      static_cast<unsigned long long>(c.backoff_virtual_ms));
}

int RunStats(const FlagParser& flags) {
  int64_t seed = 0;
  int64_t pages_flag = 0;
  if (!FlagValue(flags.GetIntInRange("seed", 42, 0, kMaxSeed), &seed) ||
      !FlagValue(flags.GetIntInRange("pages", 0, 0, 1'000'000),
                 &pages_flag)) {
    return 2;
  }
  web::SyntheticWeb web =
      MakeWeb(static_cast<uint64_t>(seed), static_cast<int>(pages_flag), -1);
  DatasetOptions options;
  Result<FaultSetup> faults = ConfigureFaults(flags, web, &options);
  if (!faults.ok()) {
    std::fprintf(stderr, "%s\n", faults.status().ToString().c_str());
    return 2;
  }
  Result<Dataset> dataset = BuildDataset(web, options);
  if (!dataset.ok()) {
    std::fprintf(stderr, "%s\n", dataset.status().ToString().c_str());
    return 1;
  }
  if (faults->active()) PrintCrawlStats(*dataset);
  FormPageSet pages = BuildFormPageSet(*dataset);
  std::vector<HubCluster> hubs = GenerateHubClusters(pages);

  Table table({"statistic", "value"});
  table.AddRow({"generated pages", std::to_string(web.pages().size())});
  table.AddRow({"crawled pages",
                std::to_string(dataset->stats.crawled_pages)});
  table.AddRow({"pages with forms",
                std::to_string(dataset->stats.pages_with_forms)});
  table.AddRow({"searchable form pages (gold)",
                std::to_string(dataset->entries.size())});
  table.AddRow({"classifier false negatives",
                std::to_string(dataset->stats.classifier_false_negatives)});
  table.AddRow({"pages without direct backlinks",
                std::to_string(dataset->stats.pages_without_backlinks)});
  table.AddRow({"distinct hub clusters", std::to_string(hubs.size())});
  table.AddRow({"hub clusters (cardinality >= 8)",
                std::to_string(FilterByCardinality(hubs, 8).size())});
  std::printf("%s", table.ToString().c_str());
  return 0;
}

/// Gold-majority label of a cluster, formatted "Domain | top terms".
std::vector<std::string> GoldAwareLabels(const FormPageSet& pages,
                                         const Dataset& dataset,
                                         const cluster::Clustering& c) {
  std::vector<std::string> auto_labels =
      DatabaseDirectory::AutoLabels(pages, c);
  std::vector<std::string> labels;
  for (int j = 0; j < c.num_clusters; ++j) {
    std::vector<size_t> members = c.Members(j);
    std::vector<int> votes(web::kNumDomains, 0);
    for (size_t m : members) {
      ++votes[static_cast<size_t>(dataset.entries[m].gold)];
    }
    int best = 0;
    for (int d = 1; d < web::kNumDomains; ++d) {
      if (votes[static_cast<size_t>(d)] > votes[static_cast<size_t>(best)]) {
        best = d;
      }
    }
    std::string domain(members.empty()
                           ? "(empty)"
                           : web::DomainName(web::AllDomains()
                                                 [static_cast<size_t>(best)]));
    labels.push_back(domain + " | " +
                     auto_labels[static_cast<size_t>(j)]);
  }
  return labels;
}

int RunCluster(const FlagParser& flags) {
  int64_t seed = 0;
  int64_t k = 0;
  int64_t pages_flag = 0;
  int64_t threads64 = 0;  // 0 = hardware concurrency (automatic sizing)
  int64_t min_cardinality = 0;
  int64_t show = 0;
  if (!FlagValue(flags.GetIntInRange("seed", 42, 0, kMaxSeed), &seed) ||
      !FlagValue(flags.GetIntInRange("k", web::kNumDomains, 1, 4096), &k) ||
      !FlagValue(flags.GetIntInRange("pages", 0, 0, 1'000'000),
                 &pages_flag) ||
      !FlagValue(flags.GetIntInRange("threads", 0, 0, 4096), &threads64) ||
      !FlagValue(flags.GetIntInRange("min-cardinality", 8, 1, 1'000'000),
                 &min_cardinality) ||
      !FlagValue(flags.GetIntInRange("show-members", 0, 0, 1'000'000),
                 &show)) {
    return 2;
  }
  int threads = static_cast<int>(threads64);
  std::string algo = flags.GetString("algo", "ch");
  std::string content_name = flags.GetString("content", "fcpc");
  util::ThreadPool::SetDefaultThreads(threads);

  ContentConfig content = ContentConfig::kFcPlusPc;
  if (content_name == "fc") content = ContentConfig::kFcOnly;
  if (content_name == "pc") content = ContentConfig::kPcOnly;

  web::SyntheticWeb web = MakeWeb(static_cast<uint64_t>(seed),
                                  static_cast<int>(pages_flag), -1);
  DatasetOptions dataset_options;
  dataset_options.threads = threads;
  Result<FaultSetup> faults = ConfigureFaults(flags, web, &dataset_options);
  if (!faults.ok()) {
    std::fprintf(stderr, "%s\n", faults.status().ToString().c_str());
    return 2;
  }
  Result<Dataset> dataset = BuildDataset(web, dataset_options);
  if (!dataset.ok()) {
    std::fprintf(stderr, "%s\n", dataset.status().ToString().c_str());
    return 1;
  }
  if (faults->active()) PrintCrawlStats(*dataset);
  FormPageSet pages = BuildFormPageSet(*dataset);

  cluster::Clustering clustering;
  if (algo == "ch") {
    CafcChOptions options;
    options.cafc.content = content;
    options.cafc.threads = threads;
    options.min_hub_cardinality = static_cast<size_t>(min_cardinality);
    CafcChReport report;
    clustering = CafcCh(pages, static_cast<int>(k), options, &report);
    std::printf("hub clusters: %zu total, %zu kept, %zu padded seeds\n",
                report.hub_clusters_total, report.hub_clusters_kept,
                report.padded_seeds);
  } else if (algo == "c") {
    CafcOptions options;
    options.content = content;
    options.threads = threads;
    Rng rng(static_cast<uint64_t>(seed) ^ 0x5eed);
    clustering = CafcC(pages, static_cast<int>(k), options, &rng);
  } else if (algo == "hac") {
    CafcOptions options;
    options.content = content;
    options.threads = threads;
    clustering = CafcHac(pages, static_cast<int>(k), options);
  } else {
    std::fprintf(stderr, "unknown --algo %s (use ch|c|hac)\n", algo.c_str());
    return 2;
  }

  eval::ContingencyTable table(dataset->GoldLabels(), dataset->num_classes,
                               clustering);
  std::printf("quality: entropy=%.3f f-measure=%.3f purity=%.3f\n",
              eval::TotalEntropy(table), eval::OverallFMeasure(table),
              eval::Purity(table));

  std::vector<std::string> labels =
      GoldAwareLabels(pages, *dataset, clustering);
  Table out({"cluster", "databases", "label"});
  for (int j = 0; j < clustering.num_clusters; ++j) {
    out.AddRow({std::to_string(j),
                std::to_string(clustering.ClusterSize(j)),
                labels[static_cast<size_t>(j)]});
  }
  std::printf("%s", out.ToString().c_str());

  if (show > 0) {
    for (int j = 0; j < clustering.num_clusters; ++j) {
      std::printf("cluster %d:\n", j);
      int64_t printed = 0;
      for (size_t m : clustering.Members(j)) {
        std::printf("  %s\n", pages.page(m).url.c_str());
        if (++printed >= show) break;
      }
    }
  }

  std::string dot_path = flags.GetString("dot");
  if (!dot_path.empty()) {
    std::ofstream out(dot_path);
    if (!out) {
      std::fprintf(stderr, "cannot open %s\n", dot_path.c_str());
      return 1;
    }
    out << ExportClusteringToDot(pages, clustering, labels);
    std::printf("DOT graph written to %s (render: neato -Tsvg %s)\n",
                dot_path.c_str(), dot_path.c_str());
  }

  std::string save_path = flags.GetString("save");
  std::string save_v3_path = flags.GetString("save-v3");
  if (!save_path.empty() || !save_v3_path.empty()) {
    DatabaseDirectory directory =
        DatabaseDirectory::Build(pages, clustering, labels);
    if (!save_path.empty()) {
      Status status = directory.SaveToFile(save_path);
      if (!status.ok()) {
        std::fprintf(stderr, "save failed: %s\n", status.ToString().c_str());
        return 1;
      }
      std::printf("directory saved to %s (%zu entries)\n", save_path.c_str(),
                  directory.size());
    }
    if (!save_v3_path.empty()) {
      // With-pages snapshot: the clustered collection rides along so a
      // snapshot-backed server can classify stored pages by ordinal.
      storage::SnapshotWriteReport report;
      Status status = storage::WriteSnapshotV3(directory, &pages,
                                               save_v3_path, &report);
      if (!status.ok()) {
        std::fprintf(stderr, "save-v3 failed: %s\n",
                     status.ToString().c_str());
        return 1;
      }
      std::printf("v3 snapshot saved to %s (%zu entries, %zu pages, %s)\n",
                  save_v3_path.c_str(), directory.size(), pages.size(),
                  HumanBytes(report.total_bytes).c_str());
    }
  }
  return 0;
}

int RunClassify(const FlagParser& flags) {
  std::string dir_path = flags.GetString("dir");
  if (dir_path.empty()) {
    std::fprintf(stderr, "classify requires --dir FILE\n");
    return 2;
  }
  Result<DatabaseDirectory> directory =
      storage::LoadDirectoryAuto(dir_path);
  if (!directory.ok()) {
    std::fprintf(stderr, "%s\n", directory.status().ToString().c_str());
    return 1;
  }

  int64_t seed = 0;
  int64_t pages = 0;
  if (!FlagValue(flags.GetIntInRange("seed", 777, 0, kMaxSeed), &seed) ||
      !FlagValue(flags.GetIntInRange("pages", 120, 1, 1'000'000), &pages)) {
    return 2;
  }
  web::SyntheticWeb web =
      MakeWeb(static_cast<uint64_t>(seed), static_cast<int>(pages), -1);
  Result<Dataset> dataset = MakeDataset(web);
  if (!dataset.ok()) {
    std::fprintf(stderr, "%s\n", dataset.status().ToString().c_str());
    return 1;
  }

  // Entry labels carry the gold domain name before " | " (see RunCluster).
  auto entry_domain = [&directory](int entry) {
    const std::string& label =
        directory->entries()[static_cast<size_t>(entry)].label;
    return label.substr(0, label.find(" | "));
  };

  size_t correct = 0;
  for (const DatasetEntry& e : dataset->entries) {
    DatabaseDirectory::Classification verdict =
        directory->ClassifyDocument(e.doc);
    if (verdict.entry < 0) continue;
    std::string gold(web::DomainName(
        web::AllDomains()[static_cast<size_t>(e.gold)]));
    if (entry_domain(verdict.entry) == gold) ++correct;
  }
  std::printf("classified %zu new sources, accuracy %.1f%%\n",
              dataset->entries.size(),
              100.0 * static_cast<double>(correct) /
                  static_cast<double>(dataset->entries.size()));
  return 0;
}

int RunSearch(const FlagParser& flags) {
  std::string dir_path = flags.GetString("dir");
  if (dir_path.empty() || flags.positional().size() < 2) {
    std::fprintf(stderr, "search requires --dir FILE and a query string\n");
    return 2;
  }
  Result<DatabaseDirectory> directory =
      storage::LoadDirectoryAuto(dir_path);
  if (!directory.ok()) {
    std::fprintf(stderr, "%s\n", directory.status().ToString().c_str());
    return 1;
  }
  int64_t top = 0;
  if (!FlagValue(flags.GetIntInRange("top", 5, 1, 10'000), &top)) return 2;
  std::string query;
  for (size_t i = 1; i < flags.positional().size(); ++i) {
    if (!query.empty()) query += ' ';
    query += flags.positional()[i];
  }
  auto hits = directory->Search(query, static_cast<size_t>(top));
  if (hits.empty()) {
    std::printf("no matching sections for \"%s\"\n", query.c_str());
    return 0;
  }
  Table table({"score", "databases", "section"});
  for (const auto& hit : hits) {
    const DirectoryEntry& entry =
        directory->entries()[static_cast<size_t>(hit.entry)];
    char score[32];
    std::snprintf(score, sizeof(score), "%.3f", hit.similarity);
    table.AddRow({score, std::to_string(entry.member_urls.size()),
                  entry.label});
  }
  std::printf("%s", table.ToString().c_str());
  return 0;
}

int RunAdd(const FlagParser& flags) {
  std::string dir_path = flags.GetString("dir");
  if (dir_path.empty()) {
    std::fprintf(stderr, "add requires --dir FILE\n");
    return 2;
  }
  Result<DatabaseDirectory> directory =
      storage::LoadDirectoryAuto(dir_path);
  if (!directory.ok()) {
    std::fprintf(stderr, "%s\n", directory.status().ToString().c_str());
    return 1;
  }
  int64_t seed = 0;
  int64_t pages = 0;
  if (!FlagValue(flags.GetIntInRange("seed", 888, 0, kMaxSeed), &seed) ||
      !FlagValue(flags.GetIntInRange("pages", 40, 1, 1'000'000), &pages)) {
    return 2;
  }
  web::SyntheticWeb web =
      MakeWeb(static_cast<uint64_t>(seed), static_cast<int>(pages), -1);
  Result<Dataset> dataset = MakeDataset(web);
  if (!dataset.ok()) {
    std::fprintf(stderr, "%s\n", dataset.status().ToString().c_str());
    return 1;
  }
  std::map<int, int> filed;
  for (const DatasetEntry& e : dataset->entries) {
    DatabaseDirectory::Classification verdict = directory->AddSource(e.doc);
    if (verdict.entry >= 0) ++filed[verdict.entry];
  }
  for (const auto& [entry, count] : filed) {
    std::printf("filed %3d new sources under [%s]\n", count,
                directory->entries()[static_cast<size_t>(entry)]
                    .label.c_str());
  }
  // Re-save in the format the directory arrived in: a binary v3 input
  // stays binary (directory-only — `add` never carries page profiles), a
  // text input stays text.
  Status status = IsV3File(dir_path)
                      ? storage::WriteSnapshotV3(*directory, nullptr,
                                                 dir_path)
                      : directory->SaveToFile(dir_path);
  if (!status.ok()) {
    std::fprintf(stderr, "save failed: %s\n", status.ToString().c_str());
    return 1;
  }
  std::printf("directory updated: %s\n", dir_path.c_str());
  return 0;
}

/// Bit-exact comparison of two weighted sets (urls + both vectors): the
/// grow demo's incremental-vs-rebuild equality gate.
bool WeightedSetsIdentical(const FormPageSet& a, const FormPageSet& b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    const FormPage& x = a.page(i);
    const FormPage& y = b.page(i);
    if (x.url != y.url || !(x.pc == y.pc) || !(x.fc == y.fc)) return false;
  }
  return true;
}

int RunGrow(const FlagParser& flags) {
  int64_t seed = 0;
  int64_t pages = 0;
  int64_t add_sites = 0;
  int64_t k = 0;
  int64_t threads64 = 0;
  if (!FlagValue(flags.GetIntInRange("seed", 42, 0, kMaxSeed), &seed) ||
      !FlagValue(flags.GetIntInRange("pages", 0, 0, 1'000'000), &pages) ||
      !FlagValue(flags.GetIntInRange("add-sites", 24, 1, 1'000'000),
                 &add_sites) ||
      !FlagValue(flags.GetIntInRange("k", web::kNumDomains, 1, 4096), &k) ||
      !FlagValue(flags.GetIntInRange("threads", 0, 0, 4096), &threads64)) {
    return 2;
  }
  int threads = static_cast<int>(threads64);
  util::ThreadPool::SetDefaultThreads(threads);
  using Clock = std::chrono::steady_clock;
  auto ms_since = [](Clock::time_point start) {
    return std::chrono::duration<double, std::milli>(Clock::now() - start)
        .count();
  };

  // Epoch 1: stream the base web into a fresh corpus, cluster, build the
  // directory.
  web::SyntheticWeb base_web = MakeWeb(static_cast<uint64_t>(seed),
                                       static_cast<int>(pages), -1);
  DatasetOptions options;
  options.threads = threads;
  Result<CorpusBuild> built = BuildCorpus(base_web, options);
  if (!built.ok()) {
    std::fprintf(stderr, "%s\n", built.status().ToString().c_str());
    return 1;
  }
  Corpus& corpus = built->corpus;
  const FormPageSet& weighted = corpus.Weighted();
  std::printf("base corpus: %zu pages, %zu terms, epoch %llu\n",
              corpus.size(), corpus.dictionary()->size(),
              static_cast<unsigned long long>(corpus.epoch()));

  CafcOptions cluster_options;
  cluster_options.threads = threads;
  Rng rng(static_cast<uint64_t>(seed) ^ 0x5eed);
  cluster::Clustering clustering =
      CafcC(weighted, static_cast<int>(k), cluster_options, &rng);
  DatabaseDirectory directory = DatabaseDirectory::Build(
      weighted, clustering, DatabaseDirectory::AutoLabels(weighted,
                                                          clustering));
  std::printf("directory built: %zu sections\n", directory.size());

  // New sources: the form pages of a second synthetic web, ingested into
  // their own corpus and translated in by term string (the cross-corpus
  // grow path). URLs the base corpus already holds are skipped.
  web::SyntheticWeb growth_web = MakeWeb(static_cast<uint64_t>(seed) + 1,
                                         static_cast<int>(add_sites), -1);
  Result<CorpusBuild> growth = BuildCorpus(growth_web, options);
  if (!growth.ok()) {
    std::fprintf(stderr, "%s\n", growth.status().ToString().c_str());
    return 1;
  }
  std::vector<DatasetEntry> incoming = growth->corpus.TakeEntries();

  const auto t_add = Clock::now();
  Result<size_t> added = corpus.AddPages(std::move(incoming));
  if (!added.ok()) {
    std::fprintf(stderr, "%s\n", added.status().ToString().c_str());
    return 1;
  }
  const FormPageSet& grown = corpus.Weighted();
  const double incremental_ms = ms_since(t_add);
  const CorpusDeriveStats& derive = corpus.last_derive();
  std::printf(
      "grew corpus: +%zu pages -> %zu, epoch %llu (%.1f ms: %zu vectors "
      "recomputed, %zu reused)\n",
      *added, corpus.size(),
      static_cast<unsigned long long>(corpus.epoch()), incremental_ms,
      derive.vectors_recomputed, derive.vectors_reused);

  const auto t_rebuild = Clock::now();
  FormPageSet rebuilt = BuildFormPageSet(corpus.SnapshotDataset());
  const double rebuild_ms = ms_since(t_rebuild);
  const bool identical = WeightedSetsIdentical(grown, rebuilt);
  std::printf("from-scratch rebuild: %.1f ms, bit-identical: %s\n",
              rebuild_ms, identical ? "yes" : "NO");
  if (!identical) {
    std::fprintf(stderr,
                 "incremental epoch diverged from the rebuild — bug\n");
    return 1;
  }

  Result<DirectoryRefreshReport> report = directory.Refresh(corpus);
  if (!report.ok()) {
    std::fprintf(stderr, "%s\n", report.status().ToString().c_str());
    return 1;
  }
  std::printf(
      "directory refreshed to epoch %llu: retained=%zu moved=%zu "
      "entered=%zu left=%zu drift=%.3f (%d warm k-means iterations)%s\n",
      static_cast<unsigned long long>(report->epoch), report->retained,
      report->moved, report->entered, report->left, report->drift,
      report->kmeans.iterations,
      report->reseed_recommended ? " — reseed recommended" : "");

  std::string save_path = flags.GetString("save");
  if (!save_path.empty()) {
    Status status = directory.SaveToFile(save_path);
    if (!status.ok()) {
      std::fprintf(stderr, "save failed: %s\n", status.ToString().c_str());
      return 1;
    }
    std::printf("directory saved to %s (%zu entries)\n", save_path.c_str(),
                directory.size());
  }
  return 0;
}

/// Formats a histogram percentile in milliseconds (the histograms record
/// microseconds).
std::string PercentileMs(const util::Histogram& h, double p) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.2f", h.Percentile(p) / 1000.0);
  return buf;
}

/// Snapshot-backed serving: mmap a binary v3 file, start a read-only
/// DirectoryServer over it, classify stored pages by ordinal through the
/// budget-bounded page LRU, and print the storage counters alongside the
/// usual latency table.
int RunServeSnapshot(const FlagParser& flags, const std::string& path,
                     int64_t workers, int64_t clients, int64_t requests,
                     int64_t queue, int64_t pad_ms,
                     serve::QueryPriority priority, int64_t deadline_ms,
                     int64_t cache_bytes) {
  int64_t budget = 0;
  if (!FlagValue(flags.GetIntInRange("memory-budget", 0, 0,
                                     std::numeric_limits<int64_t>::max()),
                 &budget)) {
    return 2;
  }
  // The library-facing knob and the storage layer speak the same unit;
  // CafcOptions carries it so embedding applications configure serving
  // the same way this CLI does.
  CafcOptions cafc_options;
  cafc_options.memory_budget_bytes = static_cast<uint64_t>(budget);
  storage::SnapshotOpenOptions open_options;
  open_options.memory_budget_bytes = cafc_options.memory_budget_bytes;
  Result<std::unique_ptr<storage::MappedSnapshot>> opened =
      storage::MappedSnapshot::Open(path, open_options);
  if (!opened.ok()) {
    std::fprintf(stderr, "%s\n", opened.status().ToString().c_str());
    return 1;
  }
  std::shared_ptr<const storage::MappedSnapshot> mapped =
      std::move(*opened);
  const size_t num_pages = mapped->num_pages();
  std::printf("serving %zu sections over %zu stored pages (%s, budget %s)\n",
              mapped->directory().size(), num_pages,
              mapped->is_mapped() ? "mmapped" : "heap-loaded",
              budget == 0
                  ? "unlimited"
                  : HumanBytes(static_cast<uint64_t>(budget)).c_str());

  serve::DirectoryServerOptions options;
  options.workers = static_cast<size_t>(workers);
  options.queue_capacity = static_cast<size_t>(queue);
  options.service_pad_ms = static_cast<double>(pad_ms);
  options.cache_bytes = static_cast<size_t>(cache_bytes);
  if (priority != serve::QueryPriority::kStandard || deadline_ms > 0) {
    options.scheduling = serve::SchedulingPolicy::kPriorityDeadline;
  }
  serve::DirectoryServer server(mapped, options);

  const char* queries[] = {"job career", "hotel flight", "music cd",
                           "book author", "car rental"};
  const auto start = std::chrono::steady_clock::now();
  std::vector<std::thread> client_threads;
  for (int64_t c = 0; c < clients; ++c) {
    client_threads.emplace_back([&, c] {
      for (int64_t i = 0; i < requests; ++i) {
        const size_t pick =
            static_cast<size_t>(c + i * 7) % (num_pages + 5);
        serve::QueryRequest request;
        request.priority = priority;
        request.deadline_ms = static_cast<double>(deadline_ms);
        if (pick < num_pages) {
          request.kind = serve::QueryKind::kClassifyStored;
          request.page_ordinal = pick;
        } else {
          request.kind = serve::QueryKind::kSearch;
          request.query = queries[pick - num_pages];
        }
        server.Query(std::move(request));
      }
    });
  }
  for (std::thread& t : client_threads) t.join();
  const double wall_ms = std::chrono::duration<double, std::milli>(
                             std::chrono::steady_clock::now() - start)
                             .count();
  serve::ServerStats stats = server.Stats();
  serve::SnapshotPtr snapshot = server.snapshot();
  server.Shutdown();

  Table table({"metric", "value"});
  table.AddRow({"workers", std::to_string(options.workers)});
  table.AddRow({"clients", std::to_string(clients)});
  table.AddRow({"submitted", std::to_string(stats.submitted)});
  table.AddRow({"completed", std::to_string(stats.completed)});
  table.AddRow({"failed", std::to_string(stats.failed)});
  table.AddRow({"snapshot version", std::to_string(snapshot->version())});
  table.AddRow({"corpus epoch", std::to_string(snapshot->corpus_epoch())});
  char throughput[32];
  std::snprintf(throughput, sizeof(throughput), "%.0f",
                1000.0 * static_cast<double>(stats.completed) / wall_ms);
  table.AddRow({"throughput (req/s)", throughput});
  table.AddRow({"latency p50 (ms)", PercentileMs(stats.total_us, 50)});
  table.AddRow({"latency p95 (ms)", PercentileMs(stats.total_us, 95)});
  if (options.cache_bytes > 0) {
    table.AddRow({"result cache hits", std::to_string(stats.cache_hits)});
    table.AddRow({"result cache misses",
                  std::to_string(stats.cache_misses)});
  }
  // Storage layer: how the memory budget held up under the query load.
  table.AddRow({"page cache hits", std::to_string(stats.page_hits)});
  table.AddRow({"page cache misses", std::to_string(stats.page_misses)});
  table.AddRow({"page evictions", std::to_string(stats.page_evictions)});
  table.AddRow({"pages cached now", std::to_string(stats.page_cached)});
  table.AddRow({"fixed resident bytes",
                HumanBytes(stats.storage_fixed_bytes)});
  table.AddRow({"resident bytes now",
                HumanBytes(stats.storage_resident_bytes)});
  table.AddRow({"memory budget",
                stats.memory_budget_bytes == 0
                    ? "unlimited"
                    : HumanBytes(stats.memory_budget_bytes)});
  std::printf("%s", table.ToString().c_str());

  if (stats.memory_budget_bytes != 0 &&
      stats.storage_resident_bytes > stats.memory_budget_bytes) {
    std::fprintf(stderr, "resident bytes exceed the memory budget — bug\n");
    return 1;
  }
  return 0;
}

int RunServe(const FlagParser& flags) {
  int64_t seed = 0;
  int64_t pages = 0;
  int64_t workers = 0;
  int64_t clients = 0;
  int64_t requests = 0;
  int64_t queue = 0;
  int64_t pad_ms = 0;
  int64_t refresh_pages = 0;
  int64_t deadline_ms = 0;
  int64_t cache_bytes = 0;
  if (!FlagValue(flags.GetIntInRange("seed", 42, 0, kMaxSeed), &seed) ||
      !FlagValue(flags.GetIntInRange("pages", 0, 0, 1'000'000), &pages) ||
      !FlagValue(flags.GetIntInRange("workers", 4, 1, 256), &workers) ||
      !FlagValue(flags.GetIntInRange("clients", 4, 1, 256), &clients) ||
      !FlagValue(flags.GetIntInRange("requests", 64, 1, 1'000'000),
                 &requests) ||
      !FlagValue(flags.GetIntInRange("queue", 256, 1, 1'000'000), &queue) ||
      !FlagValue(flags.GetIntInRange("pad-ms", 0, 0, 60'000), &pad_ms) ||
      !FlagValue(flags.GetIntInRange("refresh-pages", 16, 0, 1'000'000),
                 &refresh_pages) ||
      !FlagValue(flags.GetIntInRange("deadline-ms", 0, 0, 600'000),
                 &deadline_ms) ||
      !FlagValue(flags.GetIntInRange("cache-bytes", 0, 0,
                                     int64_t{1} << 40),
                 &cache_bytes)) {
    return 2;
  }
  serve::QueryPriority priority = serve::QueryPriority::kStandard;
  const std::string priority_name = flags.GetString("priority", "normal");
  if (!serve::ParseQueryPriority(priority_name, &priority)) {
    std::fprintf(stderr,
                 "--priority must be high|normal|low, got '%s'\n",
                 priority_name.c_str());
    return 2;
  }
  std::string snapshot_path = flags.GetString("snapshot");
  if (!snapshot_path.empty()) {
    return RunServeSnapshot(flags, snapshot_path, workers, clients, requests,
                            queue, pad_ms, priority, deadline_ms,
                            cache_bytes);
  }

  web::SyntheticWeb web = MakeWeb(static_cast<uint64_t>(seed),
                                  static_cast<int>(pages), -1);
  Result<CorpusBuild> built = BuildCorpus(web);
  if (!built.ok()) {
    std::fprintf(stderr, "%s\n", built.status().ToString().c_str());
    return 1;
  }
  Corpus& corpus = built->corpus;
  const FormPageSet& weighted = corpus.Weighted();
  Rng rng(static_cast<uint64_t>(seed) ^ 0x5eed);
  cluster::Clustering clustering =
      CafcC(weighted, web::kNumDomains, CafcOptions{}, &rng);
  DatabaseDirectory directory = DatabaseDirectory::Build(
      weighted, clustering,
      DatabaseDirectory::AutoLabels(weighted, clustering));
  std::printf("serving %zu sections over %zu pages\n", directory.size(),
              corpus.size());

  // Probe documents must be copied before the corpus moves into the
  // server.
  std::vector<forms::FormPageDocument> docs;
  for (const DatasetEntry& e : corpus.entries()) docs.push_back(e.doc);
  const char* queries[] = {"job career", "hotel flight", "music cd",
                           "book author", "car rental"};

  serve::DirectoryServerOptions options;
  options.workers = static_cast<size_t>(workers);
  options.queue_capacity = static_cast<size_t>(queue);
  options.service_pad_ms = static_cast<double>(pad_ms);
  options.cache_bytes = static_cast<size_t>(cache_bytes);
  if (priority != serve::QueryPriority::kStandard || deadline_ms > 0) {
    options.scheduling = serve::SchedulingPolicy::kPriorityDeadline;
  }
  serve::DirectoryServer server(std::move(directory), std::move(corpus),
                                options);

  const auto start = std::chrono::steady_clock::now();
  std::vector<std::thread> client_threads;
  for (int64_t c = 0; c < clients; ++c) {
    client_threads.emplace_back([&, c] {
      for (int64_t i = 0; i < requests; ++i) {
        const size_t pick = static_cast<size_t>(c + i * 7) %
                            (docs.size() + 5);
        serve::QueryRequest request;
        request.priority = priority;
        request.deadline_ms = static_cast<double>(deadline_ms);
        if (pick < docs.size()) {
          request.kind = serve::QueryKind::kClassify;
          request.doc = docs[pick];
        } else {
          request.kind = serve::QueryKind::kSearch;
          request.query = queries[pick - docs.size()];
        }
        server.Query(std::move(request));
      }
    });
  }

  // Mid-run refresh: a second synthetic web hot-swaps the snapshot while
  // the clients are querying.
  if (refresh_pages > 0) {
    web::SyntheticWeb growth = MakeWeb(static_cast<uint64_t>(seed) + 1,
                                       static_cast<int>(refresh_pages), -1);
    Result<CorpusBuild> incoming = BuildCorpus(growth);
    if (incoming.ok()) {
      server.ScheduleRefresh(incoming->corpus.TakeEntries());
    }
  }

  for (std::thread& t : client_threads) t.join();
  server.WaitForRefreshes();
  const double wall_ms = std::chrono::duration<double, std::milli>(
                             std::chrono::steady_clock::now() - start)
                             .count();
  serve::ServerStats stats = server.Stats();
  serve::SnapshotPtr snapshot = server.snapshot();
  server.Shutdown();

  Table table({"metric", "value"});
  table.AddRow({"workers", std::to_string(options.workers)});
  table.AddRow({"clients", std::to_string(clients)});
  table.AddRow({"submitted", std::to_string(stats.submitted)});
  table.AddRow({"completed", std::to_string(stats.completed)});
  table.AddRow({"rejected (queue full)",
                std::to_string(stats.rejected_queue_full)});
  table.AddRow({"deadline exceeded",
                std::to_string(stats.deadline_exceeded)});
  table.AddRow({"deadline missed in service",
                std::to_string(stats.deadline_missed)});
  if (options.cache_bytes > 0) {
    table.AddRow({"result cache hits", std::to_string(stats.cache_hits)});
    table.AddRow({"result cache misses",
                  std::to_string(stats.cache_misses)});
    table.AddRow({"stale answers served",
                  std::to_string(stats.stale_served)});
  }
  table.AddRow({"queue peak", std::to_string(stats.queue_peak)});
  table.AddRow({"refreshes applied", std::to_string(stats.refreshes)});
  table.AddRow({"snapshot version",
                std::to_string(snapshot->version())});
  table.AddRow({"corpus epoch", std::to_string(snapshot->corpus_epoch())});
  char throughput[32];
  std::snprintf(throughput, sizeof(throughput), "%.0f",
                1000.0 * static_cast<double>(stats.completed) / wall_ms);
  table.AddRow({"throughput (req/s)", throughput});
  table.AddRow({"latency p50 (ms)", PercentileMs(stats.total_us, 50)});
  table.AddRow({"latency p95 (ms)", PercentileMs(stats.total_us, 95)});
  table.AddRow({"latency p99 (ms)", PercentileMs(stats.total_us, 99)});
  // Centroid-index pruning effectiveness: exact similarity evaluations
  // per query vs the full-scan cost (= directory size for every query).
  char dist_mean[32];
  std::snprintf(dist_mean, sizeof(dist_mean), "%.1f",
                stats.distance_comps.mean());
  table.AddRow({"distance comps/query mean", dist_mean});
  char dist_p[32];
  std::snprintf(dist_p, sizeof(dist_p), "%.0f",
                stats.distance_comps.Percentile(95));
  table.AddRow({"distance comps/query p95", dist_p});
  table.AddRow({"directory sections (full scan cost)",
                std::to_string(snapshot->directory().size())});
  std::printf("%s", table.ToString().c_str());
  return 0;
}

int RunQuery(const FlagParser& flags) {
  std::string dir_path = flags.GetString("dir");
  if (dir_path.empty() || flags.positional().size() < 2) {
    std::fprintf(stderr, "query requires --dir FILE and a query string\n");
    return 2;
  }
  Result<DatabaseDirectory> directory =
      storage::LoadDirectoryAuto(dir_path);
  if (!directory.ok()) {
    std::fprintf(stderr, "%s\n", directory.status().ToString().c_str());
    return 1;
  }
  int64_t top = 0;
  int64_t deadline_ms = 0;
  int64_t cache_bytes = 0;
  if (!FlagValue(flags.GetIntInRange("top", 5, 1, 10'000), &top) ||
      !FlagValue(flags.GetIntInRange("deadline-ms", 0, 0, 600'000),
                 &deadline_ms) ||
      !FlagValue(flags.GetIntInRange("cache-bytes", 0, 0,
                                     int64_t{1} << 40),
                 &cache_bytes)) {
    return 2;
  }
  serve::QueryPriority priority = serve::QueryPriority::kStandard;
  const std::string priority_name = flags.GetString("priority", "normal");
  if (!serve::ParseQueryPriority(priority_name, &priority)) {
    std::fprintf(stderr,
                 "--priority must be high|normal|low, got '%s'\n",
                 priority_name.c_str());
    return 2;
  }
  std::string query;
  for (size_t i = 1; i < flags.positional().size(); ++i) {
    if (!query.empty()) query += ' ';
    query += flags.positional()[i];
  }

  // Serve the search through the concurrent engine: the response carries
  // the snapshot version that answered it (1 — no refreshes here).
  serve::DirectoryServerOptions options;
  options.workers = 2;
  options.cache_bytes = static_cast<size_t>(cache_bytes);
  if (priority != serve::QueryPriority::kStandard || deadline_ms > 0) {
    options.scheduling = serve::SchedulingPolicy::kPriorityDeadline;
  }
  serve::DirectoryServer server(std::move(*directory), Corpus(), options);
  serve::QueryRequest request;
  request.kind = serve::QueryKind::kSearch;
  request.query = query;
  request.top_k = static_cast<size_t>(top);
  request.priority = priority;
  request.deadline_ms = static_cast<double>(deadline_ms);
  serve::QueryResponse response = server.Query(std::move(request));
  if (!response.status.ok()) {
    std::fprintf(stderr, "%s\n", response.status.ToString().c_str());
    return 1;
  }
  if (response.hits.empty()) {
    std::printf("no matching sections for \"%s\"\n", query.c_str());
    return 0;
  }
  serve::SnapshotPtr snapshot = server.snapshot();
  Table table({"score", "databases", "section"});
  for (const auto& hit : response.hits) {
    const DirectoryEntry& entry =
        snapshot->directory().entries()[static_cast<size_t>(hit.entry)];
    char score[32];
    std::snprintf(score, sizeof(score), "%.3f", hit.similarity);
    table.AddRow({score, std::to_string(entry.member_urls.size()),
                  entry.label});
  }
  std::printf("%s", table.ToString().c_str());
  std::printf("answered by snapshot v%llu (service %.2f ms%s%s)\n",
              static_cast<unsigned long long>(response.snapshot_version),
              response.service_ms, response.cache_hit ? ", cached" : "",
              response.deadline_missed ? ", deadline missed" : "");
  return 0;
}

int RunCompact(const FlagParser& flags) {
  std::string dir_path = flags.GetString("dir");
  std::string out_path = flags.GetString("out");
  if (dir_path.empty() || out_path.empty()) {
    std::fprintf(stderr, "compact requires --dir FILE and --out FILE\n");
    return 2;
  }
  const uint64_t input_bytes = FileBytes(dir_path);
  Result<DatabaseDirectory> directory = storage::LoadDirectoryAuto(dir_path);
  if (!directory.ok()) {
    std::fprintf(stderr, "%s\n", directory.status().ToString().c_str());
    return 1;
  }
  storage::SnapshotWriteReport report;
  Status status =
      storage::WriteSnapshotV3(*directory, nullptr, out_path, &report);
  if (!status.ok()) {
    std::fprintf(stderr, "compact failed: %s\n", status.ToString().c_str());
    return 1;
  }

  Table table({"section", "bytes", "items"});
  for (const storage::SectionReportRow& row : report.sections) {
    table.AddRow({storage::SectionKindName(row.kind),
                  std::to_string(row.bytes),
                  std::to_string(row.item_count)});
  }
  std::printf("%s", table.ToString().c_str());
  std::printf("weights: %llu quantized, %llu ulp-delta, %llu raw\n",
              static_cast<unsigned long long>(report.weights
                                                  .quantized_weights),
              static_cast<unsigned long long>(report.weights.delta_weights),
              static_cast<unsigned long long>(report.weights.raw_weights));
  std::printf("%s -> %s: %s -> %s",
              dir_path.c_str(), out_path.c_str(),
              HumanBytes(input_bytes).c_str(),
              HumanBytes(report.total_bytes).c_str());
  if (input_bytes > 0 && report.total_bytes > 0) {
    std::printf(" (%.2fx smaller)",
                static_cast<double>(input_bytes) /
                    static_cast<double>(report.total_bytes));
  }
  std::printf("\n");
  return 0;
}

/// Minimal JSON string escaping for paths/labels (quote, backslash,
/// control characters).
std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

/// The machine-readable half of `inspect`: one JSON object with the
/// header, the section table, and (per-shard snapshots) the shard map —
/// what scripts and the bench harness consume instead of scraping the
/// table rendering.
int InspectJson(const std::string& path,
                const storage::SnapshotFileInfo& info,
                const std::vector<bool>& checksum_ok, bool all_ok) {
  std::printf("{\n  \"path\": \"%s\",\n  \"format_version\": %u,\n"
              "  \"file_bytes\": %llu,\n  \"checksums_ok\": %s,\n"
              "  \"sections\": [\n",
              JsonEscape(path).c_str(), info.version,
              static_cast<unsigned long long>(info.file_bytes),
              all_ok ? "true" : "false");
  for (size_t i = 0; i < info.sections.size(); ++i) {
    const storage::SectionInfo& section = info.sections[i];
    std::printf(
        "    {\"kind\": \"%s\", \"kind_id\": %u, \"offset\": %llu, "
        "\"bytes\": %llu, \"items\": %llu, \"checksum_ok\": %s}%s\n",
        storage::SectionKindName(section.kind),
        static_cast<uint32_t>(section.kind),
        static_cast<unsigned long long>(section.offset),
        static_cast<unsigned long long>(section.bytes),
        static_cast<unsigned long long>(section.item_count),
        (i < checksum_ok.size() && checksum_ok[i]) ? "true" : "false",
        i + 1 < info.sections.size() ? "," : "");
  }
  std::printf("  ]");
  // The shard map needs a payload decode; reuse the full open (which also
  // exposes the meta epoch) only when the section is present and intact.
  bool has_shard_section = false;
  for (const storage::SectionInfo& section : info.sections) {
    has_shard_section |= section.kind == storage::SectionKind::kShardMap;
  }
  if (has_shard_section && all_ok) {
    Result<std::unique_ptr<storage::MappedSnapshot>> opened =
        storage::MappedSnapshot::Open(path);
    if (opened.ok() && (*opened)->has_shard_map()) {
      const storage::ShardMapInfo& map = (*opened)->shard_map();
      std::printf(",\n  \"shard\": {\"shard_id\": %u, \"num_shards\": %u, "
                  "\"sections\": %zu, \"epoch\": %llu}",
                  map.shard_id, map.num_shards, map.global_sections.size(),
                  static_cast<unsigned long long>((*opened)->meta().epoch));
    }
  }
  std::printf("\n}\n");
  return all_ok ? 0 : 1;
}

int RunInspect(const FlagParser& flags) {
  if (flags.positional().size() < 2) {
    std::fprintf(stderr, "inspect requires a snapshot file path\n");
    return 2;
  }
  const std::string& path = flags.positional()[1];
  std::vector<bool> checksum_ok;
  Result<storage::SnapshotFileInfo> info =
      storage::ReadSnapshotInfo(path, &checksum_ok);
  if (!info.ok()) {
    std::fprintf(stderr, "%s\n", info.status().ToString().c_str());
    return 1;
  }
  if (flags.GetBool("json", false)) {
    bool all_ok = true;
    for (size_t i = 0; i < info->sections.size(); ++i) {
      all_ok = all_ok && i < checksum_ok.size() && checksum_ok[i];
    }
    return InspectJson(path, *info, checksum_ok, all_ok);
  }
  std::printf("%s: format v%u, %s, %zu sections\n", path.c_str(),
              info->version, HumanBytes(info->file_bytes).c_str(),
              info->sections.size());
  Table table({"section", "offset", "bytes", "items", "checksum"});
  bool all_ok = true;
  for (size_t i = 0; i < info->sections.size(); ++i) {
    const storage::SectionInfo& section = info->sections[i];
    const bool ok = i < checksum_ok.size() && checksum_ok[i];
    all_ok = all_ok && ok;
    table.AddRow({storage::SectionKindName(section.kind),
                  std::to_string(section.offset),
                  std::to_string(section.bytes),
                  std::to_string(section.item_count),
                  ok ? "ok" : "MISMATCH"});
  }
  std::printf("%s", table.ToString().c_str());
  if (!all_ok) {
    std::fprintf(stderr, "checksum mismatch: the file is corrupted\n");
    return 1;
  }
  return 0;
}

/// `cafc shard`: the child-process end of the sharded service. Serves one
/// shard snapshot over stdin/stdout framed RPC until the parent closes
/// the pipe. stdout is the wire — all diagnostics go to stderr.
int RunShard(const FlagParser& flags) {
  std::string snapshot_path = flags.GetString("snapshot");
  int64_t threads = 0;
  int64_t workers = 0;
  if (snapshot_path.empty()) {
    std::fprintf(stderr, "shard requires --snapshot FILE.cafc3\n");
    return 2;
  }
  if (!FlagValue(flags.GetIntInRange("threads", 2, 1, 64), &threads) ||
      !FlagValue(flags.GetIntInRange("workers", 2, 1, 64), &workers)) {
    return 2;
  }
  Result<std::unique_ptr<storage::MappedSnapshot>> opened =
      storage::MappedSnapshot::Open(snapshot_path);
  if (!opened.ok()) {
    std::fprintf(stderr, "%s\n", opened.status().ToString().c_str());
    return 1;
  }
  std::shared_ptr<const storage::MappedSnapshot> mapped = std::move(*opened);

  // A per-shard snapshot carries its identity + local->global mapping in
  // the kShardMap section; a plain snapshot serves as shard 0 of 1 with
  // the identity mapping (global == local).
  uint32_t shard_id = 0;
  uint32_t num_shards = 1;
  std::vector<uint32_t> global_sections;
  if (mapped->has_shard_map()) {
    shard_id = mapped->shard_map().shard_id;
    num_shards = mapped->shard_map().num_shards;
    global_sections = mapped->shard_map().global_sections;
  } else {
    global_sections.resize(mapped->directory().size());
    for (size_t g = 0; g < global_sections.size(); ++g) {
      global_sections[g] = static_cast<uint32_t>(g);
    }
  }
  std::fprintf(stderr,
               "cafc shard %u/%u: %zu sections from %s (%zu threads)\n",
               shard_id, num_shards, mapped->directory().size(),
               snapshot_path.c_str(), static_cast<size_t>(threads));

  serve::DirectoryServerOptions options;
  options.workers = static_cast<size_t>(workers);
  serve::DirectoryServer server(mapped, options);
  serve::DirectoryShardService service(&server, std::move(global_sections),
                                       shard_id, num_shards);
  std::unique_ptr<ipc::MessagePipe> pipe = ipc::CreateFdPipe(
      STDIN_FILENO, STDOUT_FILENO);
  std::vector<std::thread> loops;
  for (int64_t t = 1; t < threads; ++t) {
    loops.emplace_back([&pipe, &service] {
      (void)ipc::ServeLoop(pipe.get(), &service);
    });
  }
  Status status = ipc::ServeLoop(pipe.get(), &service);
  pipe->Close();
  for (std::thread& t : loops) t.join();
  server.Shutdown();
  if (!status.ok()) {
    std::fprintf(stderr, "shard %u: %s\n", shard_id,
                 status.ToString().c_str());
    return 1;
  }
  return 0;
}

/// One spawned `cafc shard` child and the parent's fds toward it.
struct SpawnedShard {
  pid_t pid = -1;
  int read_fd = -1;   ///< child's stdout
  int write_fd = -1;  ///< child's stdin
};

/// Forks one `cafc shard` child serving `snapshot_path` over its
/// stdin/stdout. The parent keeps one fd pair; CreateFdPipe takes them.
Result<SpawnedShard> SpawnShardChild(const std::string& snapshot_path,
                                     int64_t workers) {
  int to_child[2];   // parent writes -> child stdin
  int from_child[2]; // child stdout -> parent reads
  if (pipe(to_child) != 0) return Status::Internal("pipe() failed");
  if (pipe(from_child) != 0) {
    close(to_child[0]);
    close(to_child[1]);
    return Status::Internal("pipe() failed");
  }
  const pid_t pid = fork();
  if (pid < 0) {
    for (int fd : {to_child[0], to_child[1], from_child[0], from_child[1]}) {
      close(fd);
    }
    return Status::Internal("fork() failed");
  }
  if (pid == 0) {
    dup2(to_child[0], STDIN_FILENO);
    dup2(from_child[1], STDOUT_FILENO);
    for (int fd : {to_child[0], to_child[1], from_child[0], from_child[1]}) {
      close(fd);
    }
    const std::string workers_arg = std::to_string(workers);
    const char* argv[] = {"cafc",       "shard",
                          "--snapshot", snapshot_path.c_str(),
                          "--workers",  workers_arg.c_str(),
                          nullptr};
    execv("/proc/self/exe", const_cast<char* const*>(argv));
    std::fprintf(stderr, "execv failed\n");
    _exit(127);
  }
  close(to_child[0]);
  close(from_child[1]);
  SpawnedShard child;
  child.pid = pid;
  child.read_fd = from_child[0];
  child.write_fd = to_child[1];
  return child;
}

/// `cafc route`: end-to-end scatter-gather demo with a built-in oracle —
/// every routed answer is compared against the unsharded directory and
/// any divergence is a non-zero exit.
int RunRoute(const FlagParser& flags) {
  int64_t seed = 0;
  int64_t pages = 0;
  int64_t shards = 0;
  int64_t workers = 0;
  int64_t requests = 0;
  if (!FlagValue(flags.GetIntInRange("seed", 42, 0, kMaxSeed), &seed) ||
      !FlagValue(flags.GetIntInRange("pages", 0, 0, 1'000'000), &pages) ||
      !FlagValue(flags.GetIntInRange("shards", 4, 1, 64), &shards) ||
      !FlagValue(flags.GetIntInRange("workers", 2, 1, 64), &workers) ||
      !FlagValue(flags.GetIntInRange("requests", 32, 0, 1'000'000),
                 &requests)) {
    return 2;
  }
  const bool spawn = flags.GetBool("spawn", false);
  std::string save_base = flags.GetString("save");
  if (spawn && save_base.empty()) save_base = "/tmp/cafc-route.cafc3";

  web::SyntheticWeb web = MakeWeb(static_cast<uint64_t>(seed),
                                  static_cast<int>(pages), -1);
  Result<CorpusBuild> built = BuildCorpus(web);
  if (!built.ok()) {
    std::fprintf(stderr, "%s\n", built.status().ToString().c_str());
    return 1;
  }
  Corpus& corpus = built->corpus;
  const FormPageSet& weighted = corpus.Weighted();
  Rng rng(static_cast<uint64_t>(seed) ^ 0x5eed);
  cluster::Clustering clustering =
      CafcC(weighted, web::kNumDomains, CafcOptions{}, &rng);
  DatabaseDirectory global = DatabaseDirectory::Build(
      weighted, clustering,
      DatabaseDirectory::AutoLabels(weighted, clustering));
  const cluster::CentroidIndex global_index = global.BuildCentroidIndex();
  std::vector<forms::FormPageDocument> docs;
  for (const DatasetEntry& e : corpus.entries()) docs.push_back(e.doc);

  Result<std::vector<ShardBundle>> bundles =
      PartitionDirectory(global, corpus, static_cast<size_t>(shards));
  if (!bundles.ok()) {
    std::fprintf(stderr, "%s\n", bundles.status().ToString().c_str());
    return 1;
  }
  std::printf("routing over %lld shards (%s): %zu global sections, %zu "
              "pages\n",
              static_cast<long long>(shards),
              spawn ? "spawned children" : "in-process",
              global.size(), corpus.size());

  if (!save_base.empty()) {
    for (const ShardBundle& bundle : *bundles) {
      storage::ShardMapInfo map;
      map.shard_id = static_cast<uint32_t>(bundle.shard_id);
      map.num_shards = static_cast<uint32_t>(bundle.num_shards);
      map.global_sections = bundle.global_sections;
      const std::string path = storage::ShardSnapshotPath(
          save_base, map.shard_id, map.num_shards);
      Status status = storage::WriteSnapshotV3(bundle.directory, nullptr,
                                               path, nullptr, &map);
      if (!status.ok()) {
        std::fprintf(stderr, "%s\n", status.ToString().c_str());
        return 1;
      }
      std::printf("  shard %zu: %zu sections, %zu pages -> %s\n",
                  bundle.shard_id, bundle.directory.size(),
                  bundle.corpus.size(), path.c_str());
    }
  }

  // Backends: either in-process hosts over pipe pairs, or forked `cafc
  // shard` children over their stdin/stdout (both speak the same frames).
  std::vector<std::unique_ptr<serve::DirectoryServer>> servers;
  std::vector<std::unique_ptr<serve::DirectoryShardService>> services;
  std::vector<std::unique_ptr<serve::ShardServiceHost>> hosts;
  std::vector<SpawnedShard> children;
  std::vector<std::unique_ptr<ipc::ShardClient>> clients;
  if (spawn) {
    for (const ShardBundle& bundle : *bundles) {
      const std::string path = storage::ShardSnapshotPath(
          save_base, static_cast<uint32_t>(bundle.shard_id),
          static_cast<uint32_t>(bundle.num_shards));
      Result<SpawnedShard> child = SpawnShardChild(path, workers);
      if (!child.ok()) {
        std::fprintf(stderr, "%s\n", child.status().ToString().c_str());
        return 1;
      }
      children.push_back(*child);
      clients.push_back(std::make_unique<ipc::ShardClient>(
          ipc::CreateFdPipe(child->read_fd, child->write_fd)));
    }
  } else {
    for (ShardBundle& bundle : *bundles) {
      serve::DirectoryServerOptions options;
      options.workers = static_cast<size_t>(workers);
      servers.push_back(std::make_unique<serve::DirectoryServer>(
          std::move(bundle.directory), std::move(bundle.corpus), options));
      services.push_back(std::make_unique<serve::DirectoryShardService>(
          servers.back().get(), bundle.global_sections,
          static_cast<uint32_t>(bundle.shard_id),
          static_cast<uint32_t>(bundle.num_shards)));
      auto [service_end, client_end] = ipc::CreateInProcessPipePair();
      hosts.push_back(std::make_unique<serve::ShardServiceHost>(
          std::move(service_end), services.back().get(),
          static_cast<size_t>(workers)));
      clients.push_back(
          std::make_unique<ipc::ShardClient>(std::move(client_end)));
    }
  }
  serve::ShardRouter router(std::move(clients));

  // Classify every probe through the router and through the unsharded
  // directory; the merge contract says the answers are bit-identical.
  size_t routed = 0;
  size_t classify_mismatches = 0;
  const size_t probe_count =
      std::min(docs.size(), static_cast<size_t>(requests));
  for (size_t i = 0; i < probe_count; ++i) {
    serve::RouterResponse response = router.Classify(docs[i]);
    if (!response.status.ok()) {
      std::fprintf(stderr, "route classify failed: %s\n",
                   response.status.ToString().c_str());
      return 1;
    }
    const DatabaseDirectory::Classification want =
        global.ClassifyDocument(docs[i], ContentConfig::kFcPlusPc,
                                global_index);
    if (response.classification.entry != want.entry ||
        response.classification.similarity != want.similarity) {
      ++classify_mismatches;
    }
    ++routed;
  }
  const char* queries[] = {"job career", "hotel flight", "music cd",
                           "book author", "car rental"};
  size_t search_mismatches = 0;
  for (const char* query : queries) {
    serve::RouterResponse response = router.Search(query, 5);
    if (!response.status.ok()) {
      std::fprintf(stderr, "route search failed: %s\n",
                   response.status.ToString().c_str());
      return 1;
    }
    const std::vector<DatabaseDirectory::SearchHit> want =
        global.Search(query, 5, global_index);
    bool same = response.hits.size() == want.size();
    for (size_t h = 0; same && h < want.size(); ++h) {
      same = response.hits[h].entry == want[h].entry &&
             response.hits[h].similarity == want[h].similarity;
    }
    if (!same) ++search_mismatches;
    ++routed;
  }

  Table table({"metric", "value"});
  table.AddRow({"shards", std::to_string(shards)});
  table.AddRow({"mode", spawn ? "spawned children" : "in-process"});
  table.AddRow({"requests routed", std::to_string(routed)});
  table.AddRow({"classify mismatches",
                std::to_string(classify_mismatches)});
  table.AddRow({"search mismatches", std::to_string(search_mismatches)});
  std::vector<Result<ipc::EpochResponse>> epochs = router.Epochs();
  for (size_t s = 0; s < epochs.size(); ++s) {
    table.AddRow({"shard " + std::to_string(s) + " snapshot/epoch",
                  epochs[s].ok()
                      ? "v" + std::to_string((*epochs[s]).snapshot_version) +
                            " / e" +
                            std::to_string((*epochs[s]).corpus_epoch)
                      : epochs[s].status().ToString()});
  }
  Result<serve::ServerStats> merged = router.Stats();
  if (merged.ok()) {
    table.AddRow({"fleet completed", std::to_string(merged->completed)});
    char cpu[32];
    std::snprintf(cpu, sizeof(cpu), "%.1f",
                  merged->service_cpu_us.sum() / 1000.0);
    table.AddRow({"fleet service CPU (ms)", cpu});
  }
  std::printf("%s", table.ToString().c_str());

  router.Close();
  for (std::unique_ptr<serve::ShardServiceHost>& host : hosts) {
    host->Shutdown();
  }
  for (std::unique_ptr<serve::DirectoryServer>& server : servers) {
    server->Shutdown();
  }
  int child_failures = 0;
  for (const SpawnedShard& child : children) {
    int wstatus = 0;
    if (waitpid(child.pid, &wstatus, 0) != child.pid ||
        !WIFEXITED(wstatus) || WEXITSTATUS(wstatus) != 0) {
      ++child_failures;
    }
  }
  if (child_failures > 0) {
    std::fprintf(stderr, "%d shard child(ren) exited abnormally\n",
                 child_failures);
    return 1;
  }
  if (classify_mismatches > 0 || search_mismatches > 0) {
    std::fprintf(stderr,
                 "scatter-gather diverged from the unsharded directory\n");
    return 1;
  }
  return 0;
}

int RunLabels(const FlagParser& flags) {
  if (flags.positional().size() < 2) {
    std::fprintf(stderr, "labels requires an HTML file path\n");
    return 2;
  }
  std::ifstream in(flags.positional()[1]);
  if (!in) {
    std::fprintf(stderr, "cannot open %s\n", flags.positional()[1].c_str());
    return 1;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  html::Document doc = html::Parse(buffer.str());
  Table table({"field name", "extracted label"});
  for (const forms::LabeledField& field : forms::ExtractAllLabels(doc)) {
    table.AddRow({field.field_name,
                  field.label.empty() ? "(none)" : field.label});
  }
  std::printf("%s", table.ToString().c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  FlagParser flags(argc, argv);
  if (flags.positional().empty()) return Usage();
  const std::string& command = flags.positional()[0];
  if (command == "stats") return RunStats(flags);
  if (command == "cluster") return RunCluster(flags);
  if (command == "classify") return RunClassify(flags);
  if (command == "search") return RunSearch(flags);
  if (command == "add") return RunAdd(flags);
  if (command == "grow") return RunGrow(flags);
  if (command == "labels") return RunLabels(flags);
  if (command == "serve") return RunServe(flags);
  if (command == "query") return RunQuery(flags);
  if (command == "compact") return RunCompact(flags);
  if (command == "inspect") return RunInspect(flags);
  if (command == "shard") return RunShard(flags);
  if (command == "route") return RunRoute(flags);
  return UnknownCommand(command);
}
