#ifndef CAFC_VSM_TERM_DICTIONARY_H_
#define CAFC_VSM_TERM_DICTIONARY_H_

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace cafc::vsm {

/// Integer id of a term within a TermDictionary.
using TermId = uint32_t;

/// Sentinel returned by Lookup for unknown terms.
inline constexpr TermId kInvalidTermId = static_cast<TermId>(-1);

/// \brief Bidirectional term ↔ id mapping shared by all vectors of a corpus.
///
/// Ids are dense and assigned in first-seen order, so they index directly
/// into document-frequency arrays. Lookups are heterogeneous (no temporary
/// std::string is built for a string_view probe), which keeps the
/// intern-at-tokenize ingestion path allocation-free for already-seen terms.
class TermDictionary {
 public:
  TermDictionary() = default;

  /// Returns the id of `term`, interning it if new.
  TermId Intern(std::string_view term);

  /// Returns the id of `term`, or kInvalidTermId if it was never interned.
  TermId Lookup(std::string_view term) const;

  /// Pre-sizes the index and term table for `expected_terms` entries.
  void Reserve(size_t expected_terms);

  /// Interns every term of `other` (in `other`'s id order) and returns the
  /// id-remap table: `remap[other_id]` is the id of the same term in *this*.
  /// Deterministic: the resulting dictionary depends only on the current
  /// contents and `other`'s insertion order — the merge primitive behind
  /// the sharded parallel ingestion build.
  std::vector<TermId> Merge(const TermDictionary& other);

  /// Precondition: id < size().
  const std::string& term(TermId id) const { return terms_[id]; }

  size_t size() const { return terms_.size(); }

 private:
  /// Transparent string hash so find(string_view) avoids an allocation.
  struct StringHash {
    using is_transparent = void;
    size_t operator()(std::string_view s) const {
      return std::hash<std::string_view>{}(s);
    }
  };

  std::unordered_map<std::string, TermId, StringHash, std::equal_to<>> index_;
  std::vector<std::string> terms_;
};

}  // namespace cafc::vsm

#endif  // CAFC_VSM_TERM_DICTIONARY_H_
