#ifndef CAFC_VSM_TERM_DICTIONARY_H_
#define CAFC_VSM_TERM_DICTIONARY_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace cafc::vsm {

/// Integer id of a term within a TermDictionary.
using TermId = uint32_t;

/// Sentinel returned by Lookup for unknown terms.
inline constexpr TermId kInvalidTermId = static_cast<TermId>(-1);

/// \brief Bidirectional term ↔ id mapping shared by all vectors of a corpus.
///
/// Ids are dense and assigned in first-seen order, so they index directly
/// into document-frequency arrays.
class TermDictionary {
 public:
  TermDictionary() = default;

  /// Returns the id of `term`, interning it if new.
  TermId Intern(std::string_view term);

  /// Returns the id of `term`, or kInvalidTermId if it was never interned.
  TermId Lookup(std::string_view term) const;

  /// Precondition: id < size().
  const std::string& term(TermId id) const { return terms_[id]; }

  size_t size() const { return terms_.size(); }

 private:
  std::unordered_map<std::string, TermId> index_;
  std::vector<std::string> terms_;
};

}  // namespace cafc::vsm

#endif  // CAFC_VSM_TERM_DICTIONARY_H_
