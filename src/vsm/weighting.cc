#include "vsm/weighting.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>

namespace cafc::vsm {

LocationWeightConfig LocationWeightConfig::Uniform() {
  LocationWeightConfig config;
  config.page_body = 1;
  config.page_title = 1;
  config.anchor_text = 1;
  config.form_text = 1;
  config.form_option = 1;
  return config;
}

int LocationWeightConfig::Factor(Location loc) const {
  switch (loc) {
    case Location::kPageBody:
      return page_body;
    case Location::kPageTitle:
      return page_title;
    case Location::kAnchorText:
      return anchor_text;
    case Location::kFormText:
      return form_text;
    case Location::kFormOption:
      return form_option;
    case Location::kMaxLocation:
      break;
  }
  return 1;
}

CorpusStats::CorpusStats(TermDictionary* dictionary)
    : dictionary_(dictionary) {}

void CorpusStats::AddDocument(const std::vector<LocatedTerm>& terms) {
  ++num_documents_;
  std::vector<TermId> seen;
  seen.reserve(terms.size());
  for (const LocatedTerm& lt : terms) {
    seen.push_back(dictionary_->Intern(lt.term));
  }
  std::sort(seen.begin(), seen.end());
  seen.erase(std::unique(seen.begin(), seen.end()), seen.end());
  if (dictionary_->size() > document_frequency_.size()) {
    document_frequency_.resize(dictionary_->size(), 0);
  }
  for (TermId id : seen) ++document_frequency_[id];
}

void CorpusStats::AddDocument(const std::vector<InternedTerm>& terms) {
  ++num_documents_;
  std::vector<TermId> seen;
  seen.reserve(terms.size());
  for (const InternedTerm& it : terms) seen.push_back(it.term);
  std::sort(seen.begin(), seen.end());
  seen.erase(std::unique(seen.begin(), seen.end()), seen.end());
  if (dictionary_->size() > document_frequency_.size()) {
    document_frequency_.resize(dictionary_->size(), 0);
  }
  for (TermId id : seen) ++document_frequency_[id];
}

void CorpusStats::Restore(size_t num_documents,
                          std::vector<size_t> document_frequency) {
  num_documents_ = num_documents;
  document_frequency_ = std::move(document_frequency);
}

size_t CorpusStats::DocumentFrequency(TermId id) const {
  return id < document_frequency_.size() ? document_frequency_[id] : 0;
}

double CorpusStats::Idf(TermId id) const {
  if (num_documents_ == 0) return 0.0;
  size_t df = std::max<size_t>(DocumentFrequency(id), 1);
  return std::log(static_cast<double>(num_documents_) /
                  static_cast<double>(df));
}

SparseVector TfIdfWeighter::Weigh(
    const std::vector<LocatedTerm>& terms) const {
  struct Accumulator {
    double tf = 0.0;
    int loc_factor = 1;
  };
  std::unordered_map<TermId, Accumulator> acc;
  for (const LocatedTerm& lt : terms) {
    TermId id = stats_->dictionary().Lookup(lt.term);
    if (id == kInvalidTermId) continue;
    Accumulator& a = acc[id];
    a.tf += 1.0;
    a.loc_factor = std::max(a.loc_factor, config_.Factor(lt.location));
  }
  std::vector<Entry> entries;
  entries.reserve(acc.size());
  for (const auto& [id, a] : acc) {
    double w = a.loc_factor * a.tf * stats_->Idf(id);
    if (w > 0.0) entries.push_back(Entry{id, w});
  }
  return SparseVector::FromUnsorted(std::move(entries));
}

std::vector<TermProfileEntry> FoldTermProfile(
    const std::vector<InternedTerm>& terms,
    const LocationWeightConfig& config) {
  std::vector<std::pair<TermId, int>> occ;
  occ.reserve(terms.size());
  for (const InternedTerm& it : terms) {
    occ.emplace_back(it.term, config.Factor(it.location));
  }
  std::sort(occ.begin(), occ.end());
  std::vector<TermProfileEntry> profile;
  for (size_t i = 0; i < occ.size();) {
    size_t j = i;
    int loc_factor = 1;
    while (j < occ.size() && occ[j].first == occ[i].first) {
      loc_factor = std::max(loc_factor, occ[j].second);
      ++j;
    }
    profile.push_back(TermProfileEntry{occ[i].first,
                                       static_cast<uint32_t>(j - i),
                                       static_cast<int32_t>(loc_factor)});
    i = j;
  }
  return profile;
}

SparseVector WeighProfileTfIdf(const std::vector<TermProfileEntry>& profile,
                               const std::vector<double>& idf) {
  std::vector<Entry> entries;
  for (const TermProfileEntry& e : profile) {
    if (static_cast<size_t>(e.term) >= idf.size()) continue;
    double w = e.loc_factor * static_cast<double>(e.tf) * idf[e.term];
    if (w > 0.0) entries.push_back(Entry{e.term, w});
  }
  return SparseVector::FromUnsorted(std::move(entries));
}

namespace {

/// Shared accumulator of the id-based Weigh paths: folds the occurrence
/// stream into its term profile (sorted unique ids with integer tf and max
/// LOC), then applies the weighting fold per run. The arithmetic matches
/// the string-keyed hash-map path exactly (integer tf accumulated as
/// doubles, integer LOC max), so weights are bit-identical.
template <typename Fold>
SparseVector WeighInterned(const std::vector<InternedTerm>& terms,
                           const LocationWeightConfig& config, Fold&& fold) {
  std::vector<TermProfileEntry> profile = FoldTermProfile(terms, config);
  std::vector<Entry> entries;
  entries.reserve(profile.size());
  for (const TermProfileEntry& e : profile) {
    double tf = static_cast<double>(e.tf);
    double w = fold(e.term, tf, static_cast<int>(e.loc_factor));
    if (w > 0.0) entries.push_back(Entry{e.term, w});
  }
  return SparseVector::FromUnsorted(std::move(entries));
}

}  // namespace

SparseVector TfIdfWeighter::Weigh(
    const std::vector<InternedTerm>& terms) const {
  return WeighInterned(terms, config_,
                       [this](TermId id, double tf, int loc_factor) {
                         return loc_factor * tf * stats_->Idf(id);
                       });
}

Bm25Weighter::Bm25Weighter(const CorpusStats* stats,
                           LocationWeightConfig config,
                           double average_document_length, Bm25Params params)
    : stats_(stats),
      config_(config),
      avgdl_(average_document_length > 0.0 ? average_document_length : 1.0),
      params_(params) {}

SparseVector Bm25Weighter::Weigh(
    const std::vector<LocatedTerm>& terms) const {
  struct Accumulator {
    double tf = 0.0;
    int loc_factor = 1;
  };
  std::unordered_map<TermId, Accumulator> acc;
  for (const LocatedTerm& lt : terms) {
    TermId id = stats_->dictionary().Lookup(lt.term);
    if (id == kInvalidTermId) continue;
    Accumulator& a = acc[id];
    a.tf += 1.0;
    a.loc_factor = std::max(a.loc_factor, config_.Factor(lt.location));
  }
  const double dl = static_cast<double>(terms.size());
  const double norm = params_.k1 * (1.0 - params_.b + params_.b * dl / avgdl_);
  std::vector<Entry> entries;
  entries.reserve(acc.size());
  for (const auto& [id, a] : acc) {
    double saturation = a.tf * (params_.k1 + 1.0) / (a.tf + norm);
    double w = a.loc_factor * saturation * stats_->Idf(id);
    if (w > 0.0) entries.push_back(Entry{id, w});
  }
  return SparseVector::FromUnsorted(std::move(entries));
}

SparseVector Bm25Weighter::Weigh(
    const std::vector<InternedTerm>& terms) const {
  const double dl = static_cast<double>(terms.size());
  const double norm = params_.k1 * (1.0 - params_.b + params_.b * dl / avgdl_);
  return WeighInterned(
      terms, config_, [this, norm](TermId id, double tf, int loc_factor) {
        double saturation = tf * (params_.k1 + 1.0) / (tf + norm);
        return loc_factor * saturation * stats_->Idf(id);
      });
}

SparseVector Centroid(const std::vector<const SparseVector*>& vectors) {
  TermId max_term = 0;
  bool any = false;
  for (const SparseVector* v : vectors) {
    if (!v->empty()) {
      max_term = std::max(max_term, v->entries().back().term);
      any = true;
    }
  }
  if (!any) return SparseVector();
  return Centroid(vectors, static_cast<size_t>(max_term) + 1);
}

SparseVector Centroid(const std::vector<const SparseVector*>& vectors,
                      size_t num_terms) {
  if (vectors.empty() || num_terms == 0) return SparseVector();
  std::vector<double> dense(num_terms, 0.0);
  for (const SparseVector* v : vectors) {
    for (const Entry& e : v->entries()) {
      if (static_cast<size_t>(e.term) < num_terms) dense[e.term] += e.weight;
    }
  }
  const double inv = 1.0 / static_cast<double>(vectors.size());
  std::vector<Entry> entries;
  for (size_t t = 0; t < num_terms; ++t) {
    double w = dense[t] * inv;
    if (std::abs(w) > 0.0) {
      entries.push_back(Entry{static_cast<TermId>(t), w});
    }
  }
  return SparseVector::FromUnsorted(std::move(entries));
}

}  // namespace cafc::vsm
