#ifndef CAFC_VSM_WEIGHTING_H_
#define CAFC_VSM_WEIGHTING_H_

#include <cstdint>
#include <string>
#include <vector>

#include "vsm/sparse_vector.h"
#include "vsm/term_dictionary.h"

namespace cafc::vsm {

/// Where a term occurrence was found; drives the LOC factor of Eq. 1.
enum class Location {
  kPageBody = 0,   ///< ordinary page text outside the form
  kPageTitle,      ///< inside <title>
  kAnchorText,     ///< inside <a> (future-work feature; default = body)
  kFormText,       ///< text inside <form> (labels, free text, buttons)
  kFormOption,     ///< text inside <option> — database *contents*, not schema
  kMaxLocation,    ///< sentinel
};

/// One analyzed term occurrence tagged with its location.
struct LocatedTerm {
  std::string term;
  Location location;
};

/// One analyzed term occurrence, already interned into a TermDictionary.
/// The id-based twin of LocatedTerm used by the zero-copy ingestion path:
/// 8 bytes instead of an owning std::string per occurrence.
struct InternedTerm {
  TermId term;
  Location location;

  bool operator==(const InternedTerm&) const = default;
};

/// LOC factors per location ("a small integer", §2.1). Defaults follow
/// §4.4: form text above option values; page title above body.
struct LocationWeightConfig {
  int page_body = 1;
  int page_title = 2;
  int anchor_text = 1;
  int form_text = 2;
  int form_option = 1;

  /// The §4.4 ablation: every location weighs 1.
  static LocationWeightConfig Uniform();

  int Factor(Location loc) const;
};

/// \brief Document-frequency statistics of one feature space.
///
/// `n_i` counts documents containing term i (Eq. 1); `N` is the collection
/// size. Build by calling AddDocument once per document, then Finalize.
class CorpusStats {
 public:
  explicit CorpusStats(TermDictionary* dictionary);

  /// Registers a document's term occurrences. Terms are interned into the
  /// shared dictionary; duplicate terms in one document count once toward
  /// document frequency.
  void AddDocument(const std::vector<LocatedTerm>& terms);

  /// Same, for a document whose terms are already interned into the shared
  /// dictionary (ids must be < dictionary().size()). No hashing, no string
  /// materialization — the fast path of the ingestion pipeline.
  void AddDocument(const std::vector<InternedTerm>& terms);

  size_t num_documents() const { return num_documents_; }

  /// Document frequency of `id` (0 for ids interned after the last
  /// AddDocument touching them).
  size_t DocumentFrequency(TermId id) const;

  /// Restores persisted statistics (model loading): `document_frequency`
  /// is indexed by TermId of the shared dictionary. Replaces any state.
  void Restore(size_t num_documents, std::vector<size_t> document_frequency);

  /// Smoothed inverse document frequency: log(N / max(n_i, 1)). A term in
  /// every document gets 0 — exactly the paper's noise elimination.
  double Idf(TermId id) const;

  const TermDictionary& dictionary() const { return *dictionary_; }
  TermDictionary* mutable_dictionary() { return dictionary_; }

 private:
  TermDictionary* dictionary_;  // not owned
  std::vector<size_t> document_frequency_;
  size_t num_documents_ = 0;
};

/// One folded run of a document's occurrence stream: term id, total term
/// frequency, and the maximum LOC factor among the occurrences. This is the
/// IDF-independent half of Eq. 1 — the expensive per-document sort+fold —
/// which cafc::Corpus caches per page so that an epoch derive only has to
/// multiply profiles against a fresh IDF table.
struct TermProfileEntry {
  TermId term;
  uint32_t tf;
  int32_t loc_factor;

  bool operator==(const TermProfileEntry&) const = default;
};

/// Folds an interned occurrence stream into its sorted unique term profile.
/// tf accumulates integer counts; loc_factor starts at 1 and takes the max
/// of the occurrences' factors — exactly the fold inside the id-based Weigh
/// paths, so materializing a profile against the same IDF reproduces
/// TfIdfWeighter::Weigh bit-for-bit.
std::vector<TermProfileEntry> FoldTermProfile(
    const std::vector<InternedTerm>& terms, const LocationWeightConfig& config);

/// Materializes the Eq. 1 vector of a folded profile against a precomputed
/// IDF table (`idf[id]` must equal CorpusStats::Idf(id) for the intended
/// collection; ids beyond the table are skipped). The arithmetic —
/// loc_factor * tf * idf, entries with w > 0 only, SparseVector::FromUnsorted
/// — is the TfIdfWeighter fold verbatim.
SparseVector WeighProfileTfIdf(const std::vector<TermProfileEntry>& profile,
                               const std::vector<double>& idf);

/// \brief Computes the Eq. 1 vector of a document:
/// w_i = LOC_i * TF_i * log(N / n_i).
///
/// TF_i is the total frequency of term i in the document; LOC_i is the
/// maximum location factor among the term's occurrences (a term used both in
/// the form body and inside an option is schema-like, so the stronger signal
/// wins).
class TfIdfWeighter {
 public:
  TfIdfWeighter(const CorpusStats* stats, LocationWeightConfig config)
      : stats_(stats), config_(config) {}

  /// Builds the weighted vector for a document already registered in (or at
  /// least drawn from the same distribution as) the corpus stats. Unknown
  /// terms are skipped — they carry no usable IDF.
  SparseVector Weigh(const std::vector<LocatedTerm>& terms) const;

  /// Id-based twin: terms are already interned into the stats' dictionary,
  /// so no per-term hash lookup happens. Weights are bit-identical to the
  /// string path for the same (term, location) stream.
  SparseVector Weigh(const std::vector<InternedTerm>& terms) const;

  const LocationWeightConfig& config() const { return config_; }

 private:
  const CorpusStats* stats_;  // not owned
  LocationWeightConfig config_;
};

/// BM25 parameters (Robertson/Spärck Jones). Defaults are the classic
/// k1 = 1.2, b = 0.75.
struct Bm25Params {
  double k1 = 1.2;
  double b = 0.75;
};

/// \brief Okapi BM25 weighting as a modern alternative to the paper's
/// Eq. 1 (an ablation: would 20 years of IR progress change the result?).
///
/// w_i = LOC_i * idf(i) * (tf_i * (k1 + 1)) / (tf_i + k1 * (1 - b + b *
/// dl/avgdl)), with the same location factor semantics as TfIdfWeighter.
/// The average document length is supplied at construction (compute it
/// from the same corpus the stats come from).
class Bm25Weighter {
 public:
  Bm25Weighter(const CorpusStats* stats, LocationWeightConfig config,
               double average_document_length, Bm25Params params = {});

  SparseVector Weigh(const std::vector<LocatedTerm>& terms) const;
  /// Id-based twin (see TfIdfWeighter::Weigh).
  SparseVector Weigh(const std::vector<InternedTerm>& terms) const;

 private:
  const CorpusStats* stats_;  // not owned
  LocationWeightConfig config_;
  double avgdl_;
  Bm25Params params_;
};

/// Mean of `vectors` (Eq. 4): the centroid used by k-means and by hub
/// clusters. Empty input yields an empty vector.
///
/// Implemented with a dense accumulator indexed by TermId (scatter every
/// member entry, then compact in term order) — O(total entries + range)
/// instead of the O(members * centroid size) of repeated sparse merges.
/// Accumulation order per term equals the member order, so the result is
/// bit-identical to the old sparse-Axpy formulation.
SparseVector Centroid(const std::vector<const SparseVector*>& vectors);

/// Same, with the dense range supplied by the caller (`num_terms` =
/// dictionary size) so the max-term scan is skipped. Entries with term id
/// >= num_terms would be dropped — pass the true dictionary size.
SparseVector Centroid(const std::vector<const SparseVector*>& vectors,
                      size_t num_terms);

}  // namespace cafc::vsm

#endif  // CAFC_VSM_WEIGHTING_H_
