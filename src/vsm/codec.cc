#include "vsm/codec.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdio>

namespace cafc::vsm::codec {
namespace {

using util::ByteReader;


Status Malformed(const char* what, size_t offset) {
  char buf[128];
  std::snprintf(buf, sizeof(buf), "%s near byte offset %zu", what, offset);
  return Status::ParseError(buf);
}

/// Largest ulp correction the delta encoding accepts: |d| below this is a
/// 1-4 byte zigzag varint, beating the 8-byte raw fallback; anything
/// farther means the reconstruction landed in the wrong neighbourhood and
/// raw bits are both safer and barely larger.
constexpr int64_t kMaxUlpDelta = int64_t{1} << 24;

struct QuantizedWeight {
  bool ok = false;       // false => store raw bits
  uint64_t m = 0;        // integer multiplier (>= 1 when ok)
  int64_t ulp_delta = 0; // signed bit-pattern correction (0 = exact)
};

/// Finds an integer multiplier m >= 1 whose exact reconstruction equals
/// `weight` bit-for-bit (m-1/m/m+1 are verified to absorb the rounding of
/// the derivation division), or — when no multiplier is exact, the common
/// case for centroid means whose accumulated sum rounds — the nearest
/// multiplier plus the signed distance in representable doubles between
/// its reconstruction and the original. Both forms decode bit-exactly.
QuantizedWeight QuantizeWeight(double weight, double idf, double inv,
                               bool scaled) {
  QuantizedWeight result;
  if (!(weight > 0.0) || !(idf > 0.0) || !std::isfinite(weight)) {
    return result;
  }
  const double target = scaled ? weight / inv : weight;
  const double estimate = target / idf;
  // Stay well inside the exactly-representable integer range of double.
  if (!(estimate > 0.5) || !(estimate < 9.0e15)) return result;
  const uint64_t center = static_cast<uint64_t>(std::llround(estimate));
  for (uint64_t m : {center, center - 1, center + 1}) {
    if (m >= 1 && ReconstructQuantized(m, idf, inv, scaled) == weight) {
      result.ok = true;
      result.m = m;
      return result;
    }
  }
  const double approx = ReconstructQuantized(center, idf, inv, scaled);
  if (!(approx > 0.0) || !std::isfinite(approx)) return result;
  // Same-sign finite doubles order monotonically by bit pattern, so the
  // bit-pattern difference is the exact ulp distance.
  const int64_t delta =
      static_cast<int64_t>(std::bit_cast<uint64_t>(weight)) -
      static_cast<int64_t>(std::bit_cast<uint64_t>(approx));
  if (delta == 0 || delta > kMaxUlpDelta || delta < -kMaxUlpDelta) {
    return result;  // delta 0 was handled above; this is paranoia
  }
  result.ok = true;
  result.m = center;
  result.ulp_delta = delta;
  return result;
}

void PutZigzag(std::string* out, int64_t value) {
  util::PutVarint64(out, (static_cast<uint64_t>(value) << 1) ^
                             static_cast<uint64_t>(value >> 63));
}

int64_t DecodeZigzag(uint64_t u) {
  return static_cast<int64_t>((u >> 1) ^ (~(u & 1) + 1));
}

}  // namespace

void EncodePostings(const std::vector<Entry>& entries,
                    const std::vector<double>& idf, double inv, bool scaled,
                    std::string* out, PostingCodecStats* stats) {
  util::PutVarint64(out, entries.size());
  TermId prev = 0;
  bool first = true;
  for (const Entry& e : entries) {
    const uint64_t delta = first ? e.term : e.term - prev;
    util::PutVarint64(out, delta);
    prev = e.term;
    first = false;
    const double idf_t = e.term < idf.size() ? idf[e.term] : 0.0;
    const QuantizedWeight q = QuantizeWeight(e.weight, idf_t, inv, scaled);
    if (!q.ok) {
      util::PutVarint64(out, 0);
      util::PutFixed64(out, std::bit_cast<uint64_t>(e.weight));
      if (stats != nullptr) ++stats->raw_weights;
    } else if (q.ulp_delta == 0) {
      util::PutVarint64(out, q.m << 1);
      if (stats != nullptr) ++stats->quantized_weights;
    } else {
      util::PutVarint64(out, (q.m << 1) | 1);
      PutZigzag(out, q.ulp_delta);
      if (stats != nullptr) ++stats->delta_weights;
    }
  }
}

Status DecodePostings(ByteReader* in, const std::vector<double>& idf,
                      double inv, bool scaled, std::vector<Entry>* out) {
  uint64_t count = 0;
  Status status = in->ReadVarint64(&count);
  if (!status.ok()) return status;
  if (count > idf.size()) {
    return Malformed("posting count exceeds vocabulary size", in->offset());
  }
  out->clear();
  out->reserve(count);
  uint64_t term = 0;
  for (uint64_t i = 0; i < count; ++i) {
    uint64_t delta = 0;
    status = in->ReadVarint64(&delta);
    if (!status.ok()) return status;
    if (i > 0 && delta == 0) {
      return Malformed("non-increasing term id in posting block",
                       in->offset());
    }
    term = i == 0 ? delta : term + delta;
    if (term >= idf.size()) {
      return Malformed("posting term id out of vocabulary range",
                       in->offset());
    }
    uint64_t token = 0;
    status = in->ReadVarint64(&token);
    if (!status.ok()) return status;
    double weight = 0.0;
    if (token == 0) {
      uint64_t bits = 0;
      status = in->ReadFixed64(&bits);
      if (!status.ok()) return status;
      weight = std::bit_cast<double>(bits);
    } else {
      const uint64_t m = token >> 1;
      if (m == 0) {
        return Malformed("quantized weight multiplier is zero",
                         in->offset());
      }
      weight = ReconstructQuantized(m, idf[term], inv, scaled);
      if ((token & 1) != 0) {
        uint64_t zigzag = 0;
        status = in->ReadVarint64(&zigzag);
        if (!status.ok()) return status;
        // Shift the reconstruction by the stored ulp distance: exact by
        // construction (the encoder derived it from the original bits).
        weight = std::bit_cast<double>(static_cast<uint64_t>(
            static_cast<int64_t>(std::bit_cast<uint64_t>(weight)) +
            DecodeZigzag(zigzag)));
      }
    }
    out->push_back(Entry{static_cast<TermId>(term), weight});
  }
  return Status::OK();
}

Status SkipPostings(ByteReader* in) {
  uint64_t count = 0;
  Status status = in->ReadVarint64(&count);
  if (!status.ok()) return status;
  for (uint64_t i = 0; i < count; ++i) {
    uint64_t delta = 0;
    status = in->ReadVarint64(&delta);
    if (!status.ok()) return status;
    uint64_t token = 0;
    status = in->ReadVarint64(&token);
    if (!status.ok()) return status;
    if (token == 0) {
      status = in->Skip(8);
      if (!status.ok()) return status;
    } else if ((token & 1) != 0) {
      uint64_t zigzag = 0;
      status = in->ReadVarint64(&zigzag);
      if (!status.ok()) return status;
    }
  }
  return Status::OK();
}

namespace {

size_t SharedPrefix(const std::string& a, const std::string& b) {
  const size_t limit = std::min(a.size(), b.size());
  size_t n = 0;
  while (n < limit && a[n] == b[n]) ++n;
  return n;
}

}  // namespace

namespace {

/// Longest suffix the tails `a[from_a:]` and `b[from_b:]` share — the
/// second half of the prefix+suffix coding below. Bounded so prefix and
/// suffix never overlap inside either string.
size_t SharedSuffix(const std::string& a, size_t from_a,
                    const std::string& b, size_t from_b) {
  const size_t limit = std::min(a.size() - from_a, b.size() - from_b);
  size_t n = 0;
  while (n < limit && a[a.size() - 1 - n] == b[b.size() - 1 - n]) ++n;
  return n;
}

}  // namespace

void EncodeFrontCodedList(const std::vector<std::string>& items,
                          std::string* out) {
  // Items share both ends with their predecessor: synthetic-web URLs
  // differ from their neighbour only in the site-number digits, so
  // prefix-only coding would re-emit the constant ".../form.html" tail
  // for every member. The encoded items are length-prefixed as a block
  // so a thin open can skip a whole list with one bounds check.
  std::string body;
  const std::string* prev = nullptr;
  for (const std::string& item : items) {
    const size_t prefix = prev == nullptr ? 0 : SharedPrefix(*prev, item);
    const size_t suffix =
        prev == nullptr ? 0 : SharedSuffix(*prev, prefix, item, prefix);
    util::PutVarint64(&body, prefix);
    util::PutVarint64(&body, suffix);
    util::PutVarint64(&body, item.size() - prefix - suffix);
    body.append(item, prefix, item.size() - prefix - suffix);
    prev = &item;
  }
  util::PutVarint64(out, items.size());
  util::PutVarint64(out, body.size());
  out->append(body);
}

Status DecodeFrontCodedList(ByteReader* in, std::vector<std::string>* out) {
  uint64_t count = 0;
  Status status = in->ReadVarint64(&count);
  if (!status.ok()) return status;
  uint64_t body_bytes = 0;
  status = in->ReadVarint64(&body_bytes);
  if (!status.ok()) return status;
  if (count > in->remaining() || body_bytes > in->remaining()) {
    // Each item costs at least one byte on the wire; a larger count can
    // only come from corruption and would otherwise reserve huge buffers.
    return Malformed("front-coded list count exceeds section size",
                     in->offset());
  }
  const size_t body_end = in->offset() + body_bytes;
  out->clear();
  out->reserve(count);
  std::string prev;
  for (uint64_t i = 0; i < count; ++i) {
    uint64_t prefix = 0;
    uint64_t suffix = 0;
    uint64_t middle = 0;
    status = in->ReadVarint64(&prefix);
    if (!status.ok()) return status;
    status = in->ReadVarint64(&suffix);
    if (!status.ok()) return status;
    status = in->ReadVarint64(&middle);
    if (!status.ok()) return status;
    if (prefix + suffix < prefix || prefix + suffix > prev.size()) {
      return Malformed("front-coded prefix/suffix exceeds previous item",
                       in->offset());
    }
    std::string_view bytes;
    status = in->ReadBytes(middle, &bytes);
    if (!status.ok()) return status;
    std::string current;
    current.reserve(prefix + middle + suffix);
    current.append(prev, 0, prefix);
    current.append(bytes);
    current.append(prev, prev.size() - suffix, suffix);
    out->push_back(current);
    prev = std::move(current);
  }
  if (in->offset() != body_end) {
    return Malformed("front-coded list body length mismatch",
                     in->offset());
  }
  return Status::OK();
}

Status SkipFrontCodedList(ByteReader* in, uint64_t* count_out) {
  uint64_t count = 0;
  Status status = in->ReadVarint64(&count);
  if (!status.ok()) return status;
  uint64_t body_bytes = 0;
  status = in->ReadVarint64(&body_bytes);
  if (!status.ok()) return status;
  if (count_out != nullptr) *count_out = count;
  return in->Skip(body_bytes);
}

void EncodeDictionary(const TermDictionary& dict, std::string* out) {
  const size_t n = dict.size();
  std::vector<TermId> order(n);
  for (size_t i = 0; i < n; ++i) order[i] = static_cast<TermId>(i);
  std::sort(order.begin(), order.end(), [&dict](TermId a, TermId b) {
    return dict.term(a) < dict.term(b);
  });
  util::PutVarint64(out, n);
  const std::string* prev = nullptr;
  for (TermId id : order) {
    const std::string& term = dict.term(id);
    const size_t prefix = prev == nullptr ? 0 : SharedPrefix(*prev, term);
    util::PutVarint64(out, prefix);
    util::PutVarint64(out, term.size() - prefix);
    out->append(term, prefix, term.size() - prefix);
    util::PutVarint64(out, id);
    prev = &term;
  }
}

Status DecodeDictionary(ByteReader* in, TermDictionary* dict) {
  uint64_t count = 0;
  Status status = in->ReadVarint64(&count);
  if (!status.ok()) return status;
  if (count > in->remaining()) {
    return Malformed("dictionary term count exceeds section size",
                     in->offset());
  }
  std::vector<std::string> by_id(count);
  std::vector<bool> seen(count, false);
  std::string current;
  for (uint64_t i = 0; i < count; ++i) {
    uint64_t prefix = 0;
    uint64_t suffix = 0;
    status = in->ReadVarint64(&prefix);
    if (!status.ok()) return status;
    status = in->ReadVarint64(&suffix);
    if (!status.ok()) return status;
    if (prefix > current.size()) {
      return Malformed("dictionary prefix exceeds previous term",
                       in->offset());
    }
    std::string_view bytes;
    status = in->ReadBytes(suffix, &bytes);
    if (!status.ok()) return status;
    current.resize(prefix);
    current.append(bytes);
    uint64_t id = 0;
    status = in->ReadVarint64(&id);
    if (!status.ok()) return status;
    if (id >= count || seen[id]) {
      return Malformed("invalid or duplicate dictionary term id",
                       in->offset());
    }
    seen[id] = true;
    by_id[id] = current;
  }
  dict->Reserve(count);
  for (uint64_t i = 0; i < count; ++i) {
    if (dict->Intern(by_id[i]) != static_cast<TermId>(i)) {
      return Malformed("duplicate term string in dictionary",
                       in->offset());
    }
  }
  return Status::OK();
}

}  // namespace cafc::vsm::codec
