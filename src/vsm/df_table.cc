#include "vsm/df_table.h"

#include <algorithm>
#include <cmath>

namespace cafc::vsm {

void DfTable::AddDocument(const std::vector<TermId>& unique_terms) {
  ++num_documents_;
  for (TermId id : unique_terms) {
    if (static_cast<size_t>(id) >= document_frequency_.size()) {
      document_frequency_.resize(static_cast<size_t>(id) + 1, 0);
    }
    ++document_frequency_[id];
  }
}

void DfTable::RemoveDocument(const std::vector<TermId>& unique_terms) {
  if (num_documents_ > 0) --num_documents_;
  for (TermId id : unique_terms) {
    if (static_cast<size_t>(id) < document_frequency_.size() &&
        document_frequency_[id] > 0) {
      --document_frequency_[id];
    }
  }
}

double DfTable::Idf(TermId id) const {
  if (num_documents_ == 0) return 0.0;
  size_t df = std::max<size_t>(DocumentFrequency(id), 1);
  return std::log(static_cast<double>(num_documents_) /
                  static_cast<double>(df));
}

void DfTable::FillIdf(size_t vocabulary_size, std::vector<double>* out) const {
  out->resize(vocabulary_size);
  if (num_documents_ == 0) {
    std::fill(out->begin(), out->end(), 0.0);
    return;
  }
  const double n = static_cast<double>(num_documents_);
  for (size_t id = 0; id < vocabulary_size; ++id) {
    size_t df = id < document_frequency_.size() ? document_frequency_[id] : 0;
    (*out)[id] = std::log(n / static_cast<double>(std::max<size_t>(df, 1)));
  }
}

std::vector<size_t> DfTable::Snapshot(size_t vocabulary_size) const {
  std::vector<size_t> df(vocabulary_size, 0);
  size_t n = std::min(vocabulary_size, document_frequency_.size());
  std::copy(document_frequency_.begin(), document_frequency_.begin() + n,
            df.begin());
  return df;
}

}  // namespace cafc::vsm
