#ifndef CAFC_VSM_CODEC_H_
#define CAFC_VSM_CODEC_H_

#include <cstdint>
#include <string>
#include <vector>

#include "util/status.h"
#include "util/varint.h"
#include "vsm/sparse_vector.h"
#include "vsm/term_dictionary.h"

namespace cafc::vsm::codec {

/// \brief Posting, dictionary, and string-list codecs of snapshot format v3.
///
/// Design constraint carried by every function here: decoded data must be
/// **bit-identical** to what the text path produces. Term ids round-trip
/// exactly (delta varints of a strictly increasing sequence); weights use a
/// quantize-but-verify scheme — the encoder stores an integer multiplier
/// when reconstructing through the *exact* floating-point expression of
/// `WeighProfileTfIdf` / `vsm::Centroid` reproduces the original bits, a
/// multiplier plus a small signed ulp correction when reconstruction lands
/// within a few representable values (typical for centroid means, whose
/// accumulated sum rounds), and raw IEEE-754 bits per value otherwise.
/// All three paths are exact; they differ only in bytes spent.

/// Tally of quantization outcomes across one or more EncodePostings calls.
struct PostingCodecStats {
  uint64_t quantized_weights = 0;  // stored as a small integer multiplier
  uint64_t delta_weights = 0;      // multiplier + signed ulp correction
  uint64_t raw_weights = 0;        // stored as 8 raw IEEE-754 bytes
};

/// Exact reconstruction expression for a quantized weight.
///
/// Mirrors the two weight-producing expressions in the repo:
///  - page vectors (`WeighProfileTfIdf`): w = double(loc*tf) * idf[t]
///    → `scaled == false`, m = loc*tf;
///  - centroids (`vsm::Centroid`): w = dense[t] * inv with
///    inv = 1.0 / double(n) → `scaled == true`; m quantizes dense[t]/idf
///    when that product happens to be exact (guaranteed for terms that
///    appear in a single member).
/// Any change to the arithmetic order here silently breaks bit-identity
/// with the text path — keep it in sync with src/vsm/weighting.cc.
inline double ReconstructQuantized(uint64_t m, double idf, double inv,
                                   bool scaled) {
  const double base = static_cast<double>(m) * idf;
  return scaled ? base * inv : base;
}

/// Encodes the sorted entries of one sparse vector: a varint entry count,
/// then per entry a delta varint term id followed by a weight token `t`
/// (varint):
///  - t == 0: 8 raw IEEE-754 bytes follow;
///  - t even: m = t/2, weight = ReconstructQuantized(m, idf[t], inv,
///    scaled), bit-exact by encoder verification;
///  - t odd:  m = t/2 (>= 1), followed by a zigzag varint ulp delta d;
///    weight = the reconstruction's bit pattern shifted by d — exact by
///    construction, since d was computed from the original bits.
/// `idf` must have one value per vocabulary term.
void EncodePostings(const std::vector<Entry>& entries,
                    const std::vector<double>& idf, double inv, bool scaled,
                    std::string* out, PostingCodecStats* stats = nullptr);

/// Decodes a posting block written by EncodePostings into sorted entries.
/// Validates term ids against `idf.size()` and strict monotonicity.
Status DecodePostings(util::ByteReader* in,
                            const std::vector<double>& idf, double inv,
                            bool scaled, std::vector<Entry>* out);

/// Skips a posting block without materializing entries (thin-open path).
Status SkipPostings(util::ByteReader* in);

/// Encodes a list of strings in the given order with two-ended front
/// coding: varint count, varint body byte length, then per item varint
/// shared-prefix length and shared-suffix length (both vs the previous
/// item, non-overlapping) followed by the varint-length middle bytes.
/// Synthetic-web URLs differ from their stream neighbour only in a few
/// site-number digits, so sharing both ends collapses most of each URL;
/// the body length lets a thin open skip a whole list in O(1).
void EncodeFrontCodedList(const std::vector<std::string>& items,
                          std::string* out);

/// Decodes a list written by EncodeFrontCodedList.
Status DecodeFrontCodedList(util::ByteReader* in,
                                  std::vector<std::string>* out);

/// Skips a front-coded list without touching its items (one bounds-checked
/// jump over the length-prefixed body); reports the item count (the thin
/// snapshot open needs the member count for the centroid quantization
/// context without decoding the URLs).
Status SkipFrontCodedList(util::ByteReader* in,
                                uint64_t* count = nullptr);

/// Encodes a term dictionary: varint term count, then the terms in sorted
/// string order, each front-coded against its predecessor and tagged with
/// its varint term id (the sort permutation), so ids are restored exactly.
void EncodeDictionary(const TermDictionary& dict, std::string* out);

/// Decodes into `dict` (must be empty); interns terms in original id order
/// so `Lookup`/`term(id)` behave identically to the source dictionary.
Status DecodeDictionary(util::ByteReader* in, TermDictionary* dict);

}  // namespace cafc::vsm::codec

#endif  // CAFC_VSM_CODEC_H_
