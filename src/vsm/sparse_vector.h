#ifndef CAFC_VSM_SPARSE_VECTOR_H_
#define CAFC_VSM_SPARSE_VECTOR_H_

#include <cstddef>
#include <utility>
#include <vector>

#include "vsm/term_dictionary.h"

namespace cafc::vsm {

/// One (term, weight) entry of a sparse vector.
struct Entry {
  TermId term;
  double weight;

  bool operator==(const Entry&) const = default;
};

/// \brief Sparse term-weight vector, sorted by term id.
///
/// The workhorse of the form-page model: every FC / PC feature vector and
/// every centroid is a SparseVector. Entries with zero weight are dropped on
/// normalization of the representation (`Compact`).
class SparseVector {
 public:
  SparseVector() = default;

  /// Builds from unsorted entries; duplicate term ids are summed.
  static SparseVector FromUnsorted(std::vector<Entry> entries);

  /// Builds from entries that are already sorted by term id and unique —
  /// the fast path for decoded snapshot postings, which are stored in
  /// sorted order. Skips the sort/fold of `FromUnsorted` but computes the
  /// norm over the identical entry sequence, so the result is bit-for-bit
  /// equal to `FromUnsorted` on the same (sorted) input.
  /// Precondition (checked only by assert): strictly increasing term ids.
  static SparseVector FromSorted(std::vector<Entry> entries);

  /// Adds `weight` to `term`'s entry.
  ///
  /// WARNING — quadratic bulk-construction hazard: each call costs O(n)
  /// (sorted insert + norm refresh), so building an m-entry vector with m
  /// `Add` calls is O(m^2). Every bulk path in this repo (weighting,
  /// centroids, directory load) uses `FromUnsorted` or a dense
  /// accumulator instead; `Add` is for small incremental touch-ups only.
  void Add(TermId term, double weight);

  /// Weight of `term`, or 0.0 when absent.
  double Get(TermId term) const;

  const std::vector<Entry>& entries() const { return entries_; }
  size_t size() const { return entries_.size(); }
  bool empty() const { return entries_.empty(); }

  /// Euclidean (L2) norm. Cached: every mutator refreshes the cache, so
  /// this is a plain load — safe for concurrent readers (no lazy
  /// computation) and what makes `CosineSimilarity` a single sparse dot
  /// product on the clustering hot paths.
  double Norm() const { return norm_; }

  /// Sum of weights (L1 mass).
  double Sum() const;

  /// Multiplies all weights by `factor`.
  void Scale(double factor);

  /// Adds `factor * other` into this vector (sparse axpy).
  void Axpy(double factor, const SparseVector& other);

  /// Drops entries with |weight| <= epsilon.
  void Compact(double epsilon = 0.0);

  /// Keeps only the `k` highest-weight entries (ties broken toward lower
  /// term ids); a standard index-pruning step for scaling the vector-space
  /// model. No-op when size() <= k.
  void KeepTopK(size_t k);

  /// Entry-wise equality (the cached norm is a pure function of the
  /// entries, so it is excluded from the comparison).
  bool operator==(const SparseVector& other) const {
    return entries_ == other.entries_;
  }

 private:
  /// Refreshes the cached L2 norm from `entries_`. Called by every
  /// mutator; always a full recomputation so the cache is a deterministic
  /// function of the entries (no incremental drift).
  void RecomputeNorm();

  std::vector<Entry> entries_;  // sorted by term, unique
  double norm_ = 0.0;           // cached L2 norm of entries_
};

/// Dot product of two sparse vectors (linear merge).
double Dot(const SparseVector& a, const SparseVector& b);

/// Cosine similarity (Eq. 2 of the paper): dot(a,b) / (|a| * |b|).
/// Returns 0 when either vector is empty or has zero norm — two empty form
/// pages are maximally uninformative, not identical.
double CosineSimilarity(const SparseVector& a, const SparseVector& b);

}  // namespace cafc::vsm

#endif  // CAFC_VSM_SPARSE_VECTOR_H_
