#include "vsm/term_dictionary.h"

namespace cafc::vsm {

TermId TermDictionary::Intern(std::string_view term) {
  auto it = index_.find(term);
  if (it != index_.end()) return it->second;
  TermId id = static_cast<TermId>(terms_.size());
  terms_.emplace_back(term);
  index_.emplace(terms_.back(), id);
  return id;
}

TermId TermDictionary::Lookup(std::string_view term) const {
  auto it = index_.find(term);
  return it == index_.end() ? kInvalidTermId : it->second;
}

void TermDictionary::Reserve(size_t expected_terms) {
  terms_.reserve(expected_terms);
  index_.reserve(expected_terms);
}

std::vector<TermId> TermDictionary::Merge(const TermDictionary& other) {
  std::vector<TermId> remap;
  remap.reserve(other.size());
  Reserve(size() + other.size());
  for (size_t id = 0; id < other.size(); ++id) {
    remap.push_back(Intern(other.terms_[id]));
  }
  return remap;
}

}  // namespace cafc::vsm
