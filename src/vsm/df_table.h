#ifndef CAFC_VSM_DF_TABLE_H_
#define CAFC_VSM_DF_TABLE_H_

#include <cstddef>
#include <vector>

#include "vsm/term_dictionary.h"

namespace cafc::vsm {

/// \brief Incrementally maintained document-frequency table of one feature
/// space (page content or form content).
///
/// CorpusStats is a build-once artifact: it can only grow via AddDocument
/// and is re-created on every rebuild. DfTable is its incremental twin,
/// owned by cafc::Corpus: documents can be registered *and* unregistered,
/// so n_i and N of Eq. 1 track the live page set across epochs. The
/// arithmetic (smoothed IDF = log(N / max(n_i, 1)), 0 when N == 0) matches
/// CorpusStats::Idf bit-for-bit so derived vectors are indistinguishable
/// from a from-scratch rebuild.
class DfTable {
 public:
  /// Registers a document given its sorted unique term ids (the id set of a
  /// folded term profile). Ids may exceed the current table size; the table
  /// grows as the dictionary does.
  void AddDocument(const std::vector<TermId>& unique_terms);

  /// Unregisters a document previously added with the same unique id set.
  /// Callers (Corpus) replay the stored profile, so a mismatch is a logic
  /// error; underflow is clamped defensively.
  void RemoveDocument(const std::vector<TermId>& unique_terms);

  size_t num_documents() const { return num_documents_; }

  size_t DocumentFrequency(TermId id) const {
    return id < document_frequency_.size() ? document_frequency_[id] : 0;
  }

  /// Smoothed IDF, identical to CorpusStats::Idf.
  double Idf(TermId id) const;

  /// Fills `out[id]` with Idf(id) for every id < vocabulary_size. Computed
  /// serially so an epoch's IDF table is deterministic; one table per derive
  /// replaces per-entry log() calls.
  void FillIdf(size_t vocabulary_size, std::vector<double>* out) const;

  /// Copy of the df column padded/truncated to `vocabulary_size`, in the
  /// shape CorpusStats::Restore expects.
  std::vector<size_t> Snapshot(size_t vocabulary_size) const;

 private:
  std::vector<size_t> document_frequency_;
  size_t num_documents_ = 0;
};

}  // namespace cafc::vsm

#endif  // CAFC_VSM_DF_TABLE_H_
