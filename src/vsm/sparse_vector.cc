#include "vsm/sparse_vector.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace cafc::vsm {

SparseVector SparseVector::FromUnsorted(std::vector<Entry> entries) {
  std::sort(entries.begin(), entries.end(),
            [](const Entry& a, const Entry& b) { return a.term < b.term; });
  SparseVector out;
  out.entries_.reserve(entries.size());
  for (const Entry& e : entries) {
    if (!out.entries_.empty() && out.entries_.back().term == e.term) {
      out.entries_.back().weight += e.weight;
    } else {
      out.entries_.push_back(e);
    }
  }
  out.RecomputeNorm();
  return out;
}

SparseVector SparseVector::FromSorted(std::vector<Entry> entries) {
#ifndef NDEBUG
  for (size_t i = 1; i < entries.size(); ++i) {
    assert(entries[i - 1].term < entries[i].term);
  }
#endif
  SparseVector out;
  out.entries_ = std::move(entries);
  out.RecomputeNorm();
  return out;
}

void SparseVector::Add(TermId term, double weight) {
  auto it = std::lower_bound(
      entries_.begin(), entries_.end(), term,
      [](const Entry& e, TermId t) { return e.term < t; });
  if (it != entries_.end() && it->term == term) {
    it->weight += weight;
  } else {
    entries_.insert(it, Entry{term, weight});
  }
  RecomputeNorm();
}

double SparseVector::Get(TermId term) const {
  auto it = std::lower_bound(
      entries_.begin(), entries_.end(), term,
      [](const Entry& e, TermId t) { return e.term < t; });
  return (it != entries_.end() && it->term == term) ? it->weight : 0.0;
}

void SparseVector::RecomputeNorm() {
  double sum_sq = 0.0;
  for (const Entry& e : entries_) sum_sq += e.weight * e.weight;
  norm_ = std::sqrt(sum_sq);
}

double SparseVector::Sum() const {
  double sum = 0.0;
  for (const Entry& e : entries_) sum += e.weight;
  return sum;
}

void SparseVector::Scale(double factor) {
  for (Entry& e : entries_) e.weight *= factor;
  RecomputeNorm();
}

void SparseVector::Axpy(double factor, const SparseVector& other) {
  std::vector<Entry> merged;
  merged.reserve(entries_.size() + other.entries_.size());
  size_t i = 0;
  size_t j = 0;
  while (i < entries_.size() || j < other.entries_.size()) {
    if (j >= other.entries_.size() ||
        (i < entries_.size() && entries_[i].term < other.entries_[j].term)) {
      merged.push_back(entries_[i++]);
    } else if (i >= entries_.size() ||
               other.entries_[j].term < entries_[i].term) {
      merged.push_back(
          Entry{other.entries_[j].term, factor * other.entries_[j].weight});
      ++j;
    } else {
      merged.push_back(Entry{entries_[i].term,
                             entries_[i].weight +
                                 factor * other.entries_[j].weight});
      ++i;
      ++j;
    }
  }
  entries_ = std::move(merged);
  RecomputeNorm();
}

void SparseVector::Compact(double epsilon) {
  entries_.erase(std::remove_if(entries_.begin(), entries_.end(),
                                [epsilon](const Entry& e) {
                                  return std::abs(e.weight) <= epsilon;
                                }),
                 entries_.end());
  RecomputeNorm();
}

void SparseVector::KeepTopK(size_t k) {
  if (entries_.size() <= k) return;
  std::vector<Entry> sorted = entries_;
  std::sort(sorted.begin(), sorted.end(),
            [](const Entry& a, const Entry& b) {
              if (a.weight != b.weight) return a.weight > b.weight;
              return a.term < b.term;
            });
  sorted.resize(k);
  std::sort(sorted.begin(), sorted.end(),
            [](const Entry& a, const Entry& b) { return a.term < b.term; });
  entries_ = std::move(sorted);
  RecomputeNorm();
}

double Dot(const SparseVector& a, const SparseVector& b) {
  double sum = 0.0;
  const auto& ea = a.entries();
  const auto& eb = b.entries();
  size_t i = 0;
  size_t j = 0;
  while (i < ea.size() && j < eb.size()) {
    if (ea[i].term < eb[j].term) {
      ++i;
    } else if (eb[j].term < ea[i].term) {
      ++j;
    } else {
      sum += ea[i].weight * eb[j].weight;
      ++i;
      ++j;
    }
  }
  return sum;
}

double CosineSimilarity(const SparseVector& a, const SparseVector& b) {
  double na = a.Norm();
  double nb = b.Norm();
  if (na == 0.0 || nb == 0.0) return 0.0;
  return Dot(a, b) / (na * nb);
}

}  // namespace cafc::vsm
