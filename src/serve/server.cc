#include "serve/server.h"

#include <time.h>

#include <algorithm>
#include <memory>
#include <utility>

namespace cafc::serve {
namespace {

double MsSince(std::chrono::steady_clock::time_point start,
               std::chrono::steady_clock::time_point now) {
  return std::chrono::duration<double, std::milli>(now - start).count();
}

/// CPU time this thread has burned, in microseconds. Unlike the wall
/// clocks around it, this is unaffected by preemption or co-scheduled
/// workers — two requests doing the same scoring work cost the same here
/// whether the box is idle or saturated.
double ThreadCpuUs() {
  timespec ts;
  if (clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts) != 0) return 0.0;
  return static_cast<double>(ts.tv_sec) * 1e6 +
         static_cast<double>(ts.tv_nsec) / 1e3;
}

QueryResponse Rejected(Status status) {
  QueryResponse response;
  response.status = std::move(status);
  return response;
}

}  // namespace

DirectoryServer::DirectoryServer(DatabaseDirectory directory, Corpus corpus,
                                 DirectoryServerOptions options)
    : options_(options),
      master_(std::move(directory)),
      corpus_(std::move(corpus)) {
  options_.workers = std::max<size_t>(1, options_.workers);
  options_.queue_capacity = std::max<size_t>(1, options_.queue_capacity);
  // Version 1: the directory the server was handed, frozen. Published
  // before any thread starts, so the first dequeue already sees it.
  Publish(std::make_shared<const DirectorySnapshot>(
      master_.Clone(), publish_seq_, master_.epoch()));
  workers_.reserve(options_.workers);
  for (size_t i = 0; i < options_.workers; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
  refresh_thread_ = std::thread([this] { RefreshLoop(); });
}

DirectoryServer::DirectoryServer(
    std::shared_ptr<const storage::MappedSnapshot> snapshot,
    DirectoryServerOptions options)
    : options_(options), read_only_(true) {
  options_.workers = std::max<size_t>(1, options_.workers);
  options_.queue_capacity = std::max<size_t>(1, options_.queue_capacity);
  // The mapped snapshot is the directory: no clone, no re-index — the
  // centroid index was streamed out of the file at Open, and the page
  // profiles stay behind the mmap. There is no refresh master and no
  // refresh thread; the single published snapshot lives for the server's
  // whole lifetime.
  Publish(std::make_shared<const DirectorySnapshot>(std::move(snapshot),
                                                    publish_seq_));
  workers_.reserve(options_.workers);
  for (size_t i = 0; i < options_.workers; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

DirectoryServer::~DirectoryServer() { Shutdown(); }

SnapshotPtr DirectoryServer::snapshot() const {
  std::lock_guard<std::mutex> lock(snapshot_mutex_);
  return current_;
}

void DirectoryServer::Publish(SnapshotPtr next) {
  std::lock_guard<std::mutex> lock(snapshot_mutex_);
  if (current_) retired_.push_back(std::move(current_));
  current_ = std::move(next);
  // The one store readers observe. Release pairs with the workers'
  // acquire load, so the snapshot's contents are fully built first.
  live_.store(current_.get(), std::memory_order_release);
}

std::future<QueryResponse> DirectoryServer::Submit(QueryRequest request) {
  Pending pending;
  pending.request = std::move(request);
  pending.submitted = std::chrono::steady_clock::now();
  std::future<QueryResponse> future = pending.promise.get_future();
  {
    std::lock_guard<std::mutex> lock(queue_mutex_);
    std::lock_guard<std::mutex> stats(stats_mutex_);
    ++stats_.submitted;
    if (stopping_) {
      ++stats_.rejected_stopped;
      pending.promise.set_value(
          Rejected(Status::Unavailable("server is shut down")));
      return future;
    }
    if (queue_.size() >= options_.queue_capacity) {
      // Admission control: fail fast instead of blocking the caller. The
      // transient code tells retry policies this is back-pressure, not a
      // bad request.
      ++stats_.rejected_queue_full;
      pending.promise.set_value(Rejected(Status::Unavailable(
          "query queue at capacity (" +
          std::to_string(options_.queue_capacity) + ")")));
      return future;
    }
    ++stats_.accepted;
    queue_.push_back(std::move(pending));
    stats_.queue_peak = std::max<uint64_t>(stats_.queue_peak, queue_.size());
  }
  queue_cv_.notify_one();
  return future;
}

QueryResponse DirectoryServer::Query(QueryRequest request) {
  return Submit(std::move(request)).get();
}

QueryResponse DirectoryServer::Execute(const QueryRequest& request,
                                       const DirectorySnapshot& snap) const {
  QueryResponse response;
  response.snapshot_version = snap.version();
  response.corpus_epoch = snap.corpus_epoch();
  // Index-accelerated paths: score only the sections sharing a term with
  // the query (bit-identical to the full scan). The index was built once
  // at publish time; `response.cost` records how little of the directory
  // this query touched.
  switch (request.kind) {
    case QueryKind::kClassify:
      response.classification = snap.directory().ClassifyDocument(
          request.doc, request.config, snap.index(), &response.cost);
      break;
    case QueryKind::kSearch:
      response.hits = snap.directory().Search(request.query, request.top_k,
                                              snap.index(), &response.cost);
      break;
    case QueryKind::kClassifyStored: {
      const storage::MappedSnapshot* mapped = snap.mapped();
      if (mapped == nullptr) {
        response.status = Status::FailedPrecondition(
            "stored-page classification needs a snapshot-backed server");
        break;
      }
      // The profile comes off the mapped file through the budget-bounded
      // LRU; the shared_ptr keeps it alive past an eviction mid-request.
      Result<std::shared_ptr<const FormPage>> page =
          mapped->GetPage(request.page_ordinal);
      if (!page.ok()) {
        response.status = page.status();
        break;
      }
      response.classification = snap.directory().ClassifyPage(
          **page, request.config, snap.index(), &response.cost);
      break;
    }
  }
  if (options_.service_pad_ms > 0.0) {
    std::this_thread::sleep_for(
        std::chrono::duration<double, std::milli>(options_.service_pad_ms));
  }
  return response;
}

void DirectoryServer::WorkerLoop() {
  for (;;) {
    Pending pending;
    {
      std::unique_lock<std::mutex> lock(queue_mutex_);
      queue_cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping, and fully drained
      pending = std::move(queue_.front());
      queue_.pop_front();
    }
    const auto dequeued = std::chrono::steady_clock::now();
    const double queue_ms = MsSince(pending.submitted, dequeued);
    QueryResponse response;
    double service_cpu_us = 0.0;
    bool executed = false;
    if (pending.request.deadline_ms > 0.0 &&
        queue_ms > pending.request.deadline_ms) {
      // The budget burned while queued; executing now would hand the
      // caller an answer it already stopped waiting for.
      response = Rejected(Status::DeadlineExceeded(
          "request spent " + std::to_string(queue_ms) +
          " ms queued, budget " +
          std::to_string(pending.request.deadline_ms) + " ms"));
    } else {
      // Pin the snapshot once (a single wait-free acquire load); the
      // entire request runs against it even if a refresh publishes
      // mid-flight. Deferred reclamation keeps the pointee alive until
      // this worker is joined.
      const double cpu_before = ThreadCpuUs();
      response = Execute(pending.request,
                         *live_.load(std::memory_order_acquire));
      service_cpu_us = ThreadCpuUs() - cpu_before;
      executed = true;
    }
    const auto finished = std::chrono::steady_clock::now();
    response.queue_ms = queue_ms;
    response.service_ms = MsSince(dequeued, finished);
    {
      std::lock_guard<std::mutex> stats(stats_mutex_);
      if (response.status.ok()) {
        ++stats_.completed;
        stats_.distance_comps.Add(
            static_cast<double>(response.cost.centroids_scored));
      } else if (response.status.code() == StatusCode::kDeadlineExceeded) {
        ++stats_.deadline_exceeded;
      } else {
        ++stats_.failed;  // e.g. a bad stored-page ordinal
      }
      stats_.queue_us.Add(response.queue_ms * 1000.0);
      stats_.service_us.Add(response.service_ms * 1000.0);
      if (executed) stats_.service_cpu_us.Add(service_cpu_us);
      stats_.total_us.Add((response.queue_ms + response.service_ms) *
                          1000.0);
    }
    pending.promise.set_value(std::move(response));
  }
}

Status DirectoryServer::ScheduleRefresh(std::vector<DatasetEntry> pages) {
  if (read_only_) {
    return Status::FailedPrecondition(
        "server is read-only: it serves an immutable mapped snapshot "
        "(rebuild the snapshot with `cafc compact` to update it)");
  }
  {
    std::lock_guard<std::mutex> lock(refresh_mutex_);
    if (refresh_stopping_) {
      return Status::Unavailable("server is shut down");
    }
    refresh_queue_.push_back(std::move(pages));
  }
  refresh_cv_.notify_one();
  return Status::OK();
}

void DirectoryServer::WaitForRefreshes() {
  std::unique_lock<std::mutex> lock(refresh_mutex_);
  refresh_idle_cv_.wait(
      lock, [this] { return refresh_queue_.empty() && !refresh_busy_; });
}

void DirectoryServer::RefreshLoop() {
  for (;;) {
    std::vector<DatasetEntry> batch;
    {
      std::unique_lock<std::mutex> lock(refresh_mutex_);
      refresh_cv_.wait(lock, [this] {
        return refresh_stopping_ || !refresh_queue_.empty();
      });
      if (refresh_queue_.empty()) return;  // stopping, and fully drained
      batch = std::move(refresh_queue_.front());
      refresh_queue_.pop_front();
      refresh_busy_ = true;
    }
    // Heavy lifting happens outside refresh_mutex_, so ScheduleRefresh
    // never blocks behind a running refresh.
    bool ok = true;
    Result<size_t> added = corpus_.AddPages(std::move(batch));
    if (!added.ok()) {
      ok = false;
    } else {
      Result<DirectoryRefreshReport> report =
          master_.Refresh(corpus_, options_.refresh);
      // On failure the master is untouched (Refresh's contract), so the
      // published snapshot simply stays at the previous epoch.
      ok = report.ok();
    }
    if (ok) {
      // Clone outside any lock (it is the refresh thread's private state),
      // then publish with one atomic store. Readers that pinned the old
      // snapshot keep using it; new dequeues see the new epoch.
      ++publish_seq_;
      Publish(std::make_shared<const DirectorySnapshot>(
          master_.Clone(), publish_seq_, master_.epoch()));
    }
    {
      std::lock_guard<std::mutex> stats(stats_mutex_);
      if (ok) {
        ++stats_.refreshes;
        ++stats_.epochs_published;
      } else {
        ++stats_.refresh_failures;
      }
    }
    {
      std::lock_guard<std::mutex> lock(refresh_mutex_);
      refresh_busy_ = false;
    }
    refresh_idle_cv_.notify_all();
  }
}

void ServerStats::Merge(const ServerStats& other) {
  submitted += other.submitted;
  accepted += other.accepted;
  rejected_queue_full += other.rejected_queue_full;
  rejected_stopped += other.rejected_stopped;
  deadline_exceeded += other.deadline_exceeded;
  failed += other.failed;
  completed += other.completed;
  refreshes += other.refreshes;
  refresh_failures += other.refresh_failures;
  epochs_published += other.epochs_published;
  queue_peak = std::max(queue_peak, other.queue_peak);
  queue_us.Merge(other.queue_us);
  service_us.Merge(other.service_us);
  service_cpu_us.Merge(other.service_cpu_us);
  total_us.Merge(other.total_us);
  distance_comps.Merge(other.distance_comps);
  mapped_storage = mapped_storage || other.mapped_storage;
  page_hits += other.page_hits;
  page_misses += other.page_misses;
  page_evictions += other.page_evictions;
  page_cached += other.page_cached;
  storage_fixed_bytes += other.storage_fixed_bytes;
  storage_resident_bytes += other.storage_resident_bytes;
  memory_budget_bytes += other.memory_budget_bytes;
}

ServerStats DirectoryServer::Stats() const {
  ServerStats out;
  {
    std::lock_guard<std::mutex> stats(stats_mutex_);
    out = stats_;
  }
  // Storage counters are sampled from the published snapshot's page store
  // after stats_mutex_ is released — snapshot() takes snapshot_mutex_, and
  // holding both here would order them against every other pairing.
  SnapshotPtr snap = snapshot();
  if (snap != nullptr && snap->mapped() != nullptr) {
    const storage::MappedSnapshot& mapped = *snap->mapped();
    const storage::PageStoreStats page_stats = mapped.page_store_stats();
    out.mapped_storage = true;
    out.page_hits = page_stats.hits;
    out.page_misses = page_stats.misses;
    out.page_evictions = page_stats.evictions;
    out.page_cached = page_stats.cached_pages;
    out.storage_fixed_bytes = mapped.fixed_resident_bytes();
    out.storage_resident_bytes = mapped.resident_bytes();
    out.memory_budget_bytes = mapped.memory_budget_bytes();
  }
  return out;
}

void DirectoryServer::Shutdown() {
  std::lock_guard<std::mutex> shutdown(shutdown_mutex_);
  if (shutdown_done_) return;
  shutdown_done_ = true;
  {
    std::lock_guard<std::mutex> lock(queue_mutex_);
    stopping_ = true;
  }
  {
    std::lock_guard<std::mutex> lock(refresh_mutex_);
    refresh_stopping_ = true;
  }
  // Wake everything: workers drain the query queue, the refresh thread
  // drains its batch queue, then both exit.
  queue_cv_.notify_all();
  refresh_cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
  workers_.clear();
  if (refresh_thread_.joinable()) refresh_thread_.join();
  // All readers have quiesced: superseded epochs can finally go. The
  // current snapshot stays published for snapshot() callers.
  {
    std::lock_guard<std::mutex> lock(snapshot_mutex_);
    retired_.clear();
  }
}

}  // namespace cafc::serve
