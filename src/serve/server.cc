#include "serve/server.h"

#include <time.h>

#include <algorithm>
#include <memory>
#include <utility>

#include "util/varint.h"

namespace cafc::serve {
namespace {

double MsSince(std::chrono::steady_clock::time_point start,
               std::chrono::steady_clock::time_point now) {
  return std::chrono::duration<double, std::milli>(now - start).count();
}

/// CPU time this thread has burned, in microseconds. Unlike the wall
/// clocks around it, this is unaffected by preemption or co-scheduled
/// workers — two requests doing the same scoring work cost the same here
/// whether the box is idle or saturated.
double ThreadCpuUs() {
  timespec ts;
  if (clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts) != 0) return 0.0;
  return static_cast<double>(ts.tv_sec) * 1e6 +
         static_cast<double>(ts.tv_nsec) / 1e3;
}

QueryResponse Rejected(Status status) {
  QueryResponse response;
  response.status = std::move(status);
  return response;
}

/// Absolute deadline of a request admitted `now` (max() when none).
std::chrono::steady_clock::time_point DeadlineFor(
    const QueryRequest& request,
    std::chrono::steady_clock::time_point now) {
  if (request.deadline_ms <= 0.0) {
    return std::chrono::steady_clock::time_point::max();
  }
  return now + std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                   std::chrono::duration<double, std::milli>(
                       request.deadline_ms));
}

}  // namespace

DirectoryServer::DirectoryServer(DatabaseDirectory directory, Corpus corpus,
                                 DirectoryServerOptions options)
    : options_(options),
      master_(std::move(directory)),
      corpus_(std::move(corpus)),
      queue_(options.scheduling) {
  options_.workers = std::max<size_t>(1, options_.workers);
  options_.queue_capacity = std::max<size_t>(1, options_.queue_capacity);
  if (options_.cache_bytes > 0) {
    cache_ = std::make_unique<ResultCache>(options_.cache_bytes);
  }
  // Version 1: the directory the server was handed, frozen. Published
  // before any thread starts, so the first dequeue already sees it.
  Publish(std::make_shared<const DirectorySnapshot>(
      master_.Clone(), publish_seq_, master_.epoch()));
  workers_.reserve(options_.workers);
  for (size_t i = 0; i < options_.workers; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
  refresh_thread_ = std::thread([this] { RefreshLoop(); });
}

DirectoryServer::DirectoryServer(
    std::shared_ptr<const storage::MappedSnapshot> snapshot,
    DirectoryServerOptions options)
    : options_(options), read_only_(true), queue_(options.scheduling) {
  options_.workers = std::max<size_t>(1, options_.workers);
  options_.queue_capacity = std::max<size_t>(1, options_.queue_capacity);
  if (options_.cache_bytes > 0) {
    cache_ = std::make_unique<ResultCache>(options_.cache_bytes);
  }
  // The mapped snapshot is the directory: no clone, no re-index — the
  // centroid index was streamed out of the file at Open, and the page
  // profiles stay behind the mmap. There is no refresh master and no
  // refresh thread; the single published snapshot lives for the server's
  // whole lifetime.
  Publish(std::make_shared<const DirectorySnapshot>(std::move(snapshot),
                                                    publish_seq_));
  workers_.reserve(options_.workers);
  for (size_t i = 0; i < options_.workers; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

DirectoryServer::~DirectoryServer() { Shutdown(); }

SnapshotPtr DirectoryServer::snapshot() const {
  std::lock_guard<std::mutex> lock(snapshot_mutex_);
  return current_;
}

void DirectoryServer::Publish(SnapshotPtr next) {
  std::lock_guard<std::mutex> lock(snapshot_mutex_);
  if (current_) retired_.push_back(std::move(current_));
  current_ = std::move(next);
  // The one store readers observe. Release pairs with the workers'
  // acquire load, so the snapshot's contents are fully built first.
  live_.store(current_.get(), std::memory_order_release);
}

std::string DirectoryServer::CacheKey(const QueryRequest& request) {
  std::string key;
  switch (request.kind) {
    case QueryKind::kSearch:
      key.push_back('S');
      util::PutVarint64(&key, request.top_k);
      key.append(request.query);
      return key;
    case QueryKind::kClassify: {
      // Canonical content: everything ClassifyDocument can read, as
      // (location, term-string) occurrences resolved through the
      // document's dictionary — two documents with different interning
      // but identical text hash to the same key, and two different
      // documents never collide (the key is the content, not a digest).
      if (request.doc.dictionary == nullptr) return std::string();
      key.push_back('C');
      key.push_back(static_cast<char>(request.config));
      const auto append_terms =
          [&key, &request](const std::vector<vsm::InternedTerm>& terms) {
            util::PutVarint64(&key, terms.size());
            for (const vsm::InternedTerm& occurrence : terms) {
              const std::string& term = request.doc.Term(occurrence);
              key.push_back(static_cast<char>(occurrence.location));
              util::PutVarint64(&key, term.size());
              key.append(term);
            }
          };
      append_terms(request.doc.form_terms);
      append_terms(request.doc.page_terms);
      return key;
    }
    case QueryKind::kClassifyStored:
      // Ordinal-addressed: within one snapshot version the ordinal names
      // one page, and the version tag scopes the entry, so this is as
      // exact as the content keys above.
      key.push_back('P');
      key.push_back(static_cast<char>(request.config));
      util::PutVarint64(&key, request.page_ordinal);
      return key;
  }
  return std::string();
}

QueryResponse DirectoryServer::FromCache(const CachedAnswer& answer,
                                         bool stale) const {
  QueryResponse response;
  response.snapshot_version = answer.snapshot_version;
  response.corpus_epoch = answer.corpus_epoch;
  if (answer.is_search) {
    response.hits = answer.hits;
  } else {
    response.classification = answer.classification;
  }
  response.cache_hit = true;
  response.stale = stale;
  return response;
}

std::future<QueryResponse> DirectoryServer::Submit(QueryRequest request) {
  Pending pending;
  pending.request = std::move(request);
  pending.submitted = std::chrono::steady_clock::now();
  pending.deadline = DeadlineFor(pending.request, pending.submitted);
  if (cache_ != nullptr) pending.cache_key = CacheKey(pending.request);
  std::future<QueryResponse> future = pending.promise.get_future();
  {
    std::lock_guard<std::mutex> lock(queue_mutex_);
    std::lock_guard<std::mutex> stats(stats_mutex_);
    ++stats_.submitted;
    if (stopping_) {
      ++stats_.rejected_stopped;
      pending.promise.set_value(
          Rejected(Status::Unavailable("server is shut down")));
      return future;
    }
    if (!pending.cache_key.empty()) {
      // Fresh-hit fast path: the entry must have been computed against
      // exactly the currently published snapshot, so the answer is
      // bit-identical to what a worker would produce — served inline,
      // never queued. A publish invalidates all older entries wholesale
      // because their version tags stop matching.
      const DirectorySnapshot* live = live_.load(std::memory_order_acquire);
      CachedAnswer answer;
      if (live != nullptr &&
          cache_->Lookup(pending.cache_key, live->version(), &answer)) {
        ++stats_.cache_hits;
        pending.promise.set_value(FromCache(answer, /*stale=*/false));
        return future;
      }
      ++stats_.cache_misses;
    }
    if (queue_.size() >= options_.queue_capacity) {
      // Overload. Degraded-but-useful beats kUnavailable when permitted:
      // a resident answer from a superseded snapshot, explicitly flagged
      // stale so the caller always knows it is not current.
      if (options_.degrade.enabled && options_.degrade.serve_stale &&
          !pending.cache_key.empty()) {
        CachedAnswer answer;
        if (cache_->LookupAny(pending.cache_key, &answer)) {
          ++stats_.stale_served;
          pending.promise.set_value(FromCache(answer, /*stale=*/true));
          return future;
        }
      }
      // Admission control: fail fast instead of blocking the caller. The
      // transient code tells retry policies this is back-pressure, not a
      // bad request.
      ++stats_.rejected_queue_full;
      pending.promise.set_value(Rejected(Status::Unavailable(
          "query queue at capacity (" +
          std::to_string(options_.queue_capacity) + ")")));
      return future;
    }
    if (options_.degrade.enabled &&
        pending.request.kind == QueryKind::kSearch &&
        pending.request.top_k > options_.degrade.truncated_top_k &&
        static_cast<double>(queue_.size()) >=
            options_.degrade.queue_high_water *
                static_cast<double>(options_.queue_capacity)) {
      // Above the high-water mark: admit, but serve a truncated ranking
      // (an exact prefix of the full one) and flag it degraded.
      pending.degrade_truncate = true;
      ++stats_.degraded_truncated;
    }
    ++stats_.accepted;
    const QueryPriority priority = pending.request.priority;
    const auto deadline = pending.deadline;
    queue_.Push(priority, deadline, std::move(pending));
    stats_.queue_peak = std::max<uint64_t>(stats_.queue_peak, queue_.size());
  }
  queue_cv_.notify_one();
  return future;
}

QueryResponse DirectoryServer::Query(QueryRequest request) {
  return Submit(std::move(request)).get();
}

QueryResponse DirectoryServer::Execute(const QueryRequest& request,
                                       const DirectorySnapshot& snap) const {
  QueryResponse response;
  response.snapshot_version = snap.version();
  response.corpus_epoch = snap.corpus_epoch();
  // Index-accelerated paths: score only the sections sharing a term with
  // the query (bit-identical to the full scan). The index was built once
  // at publish time; `response.cost` records how little of the directory
  // this query touched.
  switch (request.kind) {
    case QueryKind::kClassify:
      response.classification = snap.directory().ClassifyDocument(
          request.doc, request.config, snap.index(), &response.cost);
      break;
    case QueryKind::kSearch:
      response.hits = snap.directory().Search(request.query, request.top_k,
                                              snap.index(), &response.cost);
      break;
    case QueryKind::kClassifyStored: {
      const storage::MappedSnapshot* mapped = snap.mapped();
      if (mapped == nullptr) {
        response.status = Status::FailedPrecondition(
            "stored-page classification needs a snapshot-backed server");
        break;
      }
      // The profile comes off the mapped file through the budget-bounded
      // LRU; the shared_ptr keeps it alive past an eviction mid-request.
      Result<std::shared_ptr<const FormPage>> page =
          mapped->GetPage(request.page_ordinal);
      if (!page.ok()) {
        response.status = page.status();
        break;
      }
      response.classification = snap.directory().ClassifyPage(
          **page, request.config, snap.index(), &response.cost);
      break;
    }
  }
  if (options_.service_pad_ms > 0.0) {
    std::this_thread::sleep_for(
        std::chrono::duration<double, std::milli>(options_.service_pad_ms));
  }
  return response;
}

void DirectoryServer::WorkerLoop() {
  for (;;) {
    Pending pending;
    {
      std::unique_lock<std::mutex> lock(queue_mutex_);
      queue_cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping, and fully drained
      queue_.Pop(&pending);
    }
    const auto dequeued = std::chrono::steady_clock::now();
    const double queue_ms = MsSince(pending.submitted, dequeued);
    QueryResponse response;
    double service_cpu_us = 0.0;
    bool executed = false;
    if (dequeued > pending.deadline) {
      // The budget burned while queued; executing now would hand the
      // caller an answer it already stopped waiting for.
      response = Rejected(Status::DeadlineExceeded(
          "request spent " + std::to_string(queue_ms) +
          " ms queued, budget " +
          std::to_string(pending.request.deadline_ms) + " ms"));
    } else {
      if (pending.degrade_truncate) {
        // Degraded admission: an exact prefix of the full ranking. The
        // truncated request must not populate the cache (its key still
        // names the caller's original top_k).
        pending.request.top_k =
            std::min(pending.request.top_k, options_.degrade.truncated_top_k);
        pending.cache_key.clear();
      }
      // Pin the snapshot once (a single wait-free acquire load); the
      // entire request runs against it even if a refresh publishes
      // mid-flight. Deferred reclamation keeps the pointee alive until
      // this worker is joined.
      const double cpu_before = ThreadCpuUs();
      response = Execute(pending.request,
                         *live_.load(std::memory_order_acquire));
      service_cpu_us = ThreadCpuUs() - cpu_before;
      executed = true;
      response.degraded = pending.degrade_truncate;
    }
    const auto finished = std::chrono::steady_clock::now();
    response.queue_ms = queue_ms;
    response.service_ms = MsSince(dequeued, finished);
    if (executed && response.status.ok() && finished > pending.deadline) {
      // The deadline expired *during* service: the answer is complete,
      // but late — stamped so it is never mistaken for on-time.
      response.deadline_missed = true;
    }
    if (executed && response.status.ok() && !response.degraded &&
        cache_ != nullptr && !pending.cache_key.empty()) {
      CachedAnswer answer;
      answer.is_search = pending.request.kind == QueryKind::kSearch;
      answer.classification = response.classification;
      answer.hits = response.hits;
      answer.snapshot_version = response.snapshot_version;
      answer.corpus_epoch = response.corpus_epoch;
      cache_->Insert(pending.cache_key, std::move(answer));
    }
    {
      std::lock_guard<std::mutex> stats(stats_mutex_);
      if (response.status.ok()) {
        ++stats_.completed;
        if (response.deadline_missed) ++stats_.deadline_missed;
        stats_.distance_comps.Add(
            static_cast<double>(response.cost.centroids_scored));
      } else if (response.status.code() == StatusCode::kDeadlineExceeded) {
        ++stats_.deadline_exceeded;
      } else {
        ++stats_.failed;  // e.g. a bad stored-page ordinal
      }
      stats_.queue_us.Add(response.queue_ms * 1000.0);
      stats_.service_us.Add(response.service_ms * 1000.0);
      if (executed) stats_.service_cpu_us.Add(service_cpu_us);
      const double total_us =
          (response.queue_ms + response.service_ms) * 1000.0;
      stats_.total_us.Add(total_us);
      stats_.priority_total_us[static_cast<size_t>(pending.request.priority)]
          .Add(total_us);
    }
    pending.promise.set_value(std::move(response));
  }
}

Status DirectoryServer::ScheduleRefresh(std::vector<DatasetEntry> pages) {
  if (read_only_) {
    return Status::FailedPrecondition(
        "server is read-only: it serves an immutable mapped snapshot "
        "(rebuild the snapshot with `cafc compact` to update it)");
  }
  {
    std::lock_guard<std::mutex> lock(refresh_mutex_);
    if (refresh_stopping_) {
      return Status::Unavailable("server is shut down");
    }
    refresh_queue_.push_back(std::move(pages));
  }
  refresh_cv_.notify_one();
  return Status::OK();
}

void DirectoryServer::WaitForRefreshes() {
  std::unique_lock<std::mutex> lock(refresh_mutex_);
  refresh_idle_cv_.wait(
      lock, [this] { return refresh_queue_.empty() && !refresh_busy_; });
}

void DirectoryServer::RefreshLoop() {
  for (;;) {
    std::vector<DatasetEntry> batch;
    {
      std::unique_lock<std::mutex> lock(refresh_mutex_);
      refresh_cv_.wait(lock, [this] {
        return refresh_stopping_ || !refresh_queue_.empty();
      });
      if (refresh_queue_.empty()) return;  // stopping, and fully drained
      batch = std::move(refresh_queue_.front());
      refresh_queue_.pop_front();
      refresh_busy_ = true;
    }
    // Heavy lifting happens outside refresh_mutex_, so ScheduleRefresh
    // never blocks behind a running refresh.
    bool ok = true;
    Result<size_t> added = corpus_.AddPages(std::move(batch));
    if (!added.ok()) {
      ok = false;
    } else {
      Result<DirectoryRefreshReport> report =
          master_.Refresh(corpus_, options_.refresh);
      // On failure the master is untouched (Refresh's contract), so the
      // published snapshot simply stays at the previous epoch.
      ok = report.ok();
    }
    if (ok) {
      // Clone outside any lock (it is the refresh thread's private state),
      // then publish with one atomic store. Readers that pinned the old
      // snapshot keep using it; new dequeues see the new epoch.
      ++publish_seq_;
      Publish(std::make_shared<const DirectorySnapshot>(
          master_.Clone(), publish_seq_, master_.epoch()));
    }
    {
      std::lock_guard<std::mutex> stats(stats_mutex_);
      if (ok) {
        ++stats_.refreshes;
        ++stats_.epochs_published;
      } else {
        ++stats_.refresh_failures;
      }
    }
    {
      std::lock_guard<std::mutex> lock(refresh_mutex_);
      refresh_busy_ = false;
    }
    refresh_idle_cv_.notify_all();
  }
}

void ServerStats::Merge(const ServerStats& other) {
  submitted += other.submitted;
  accepted += other.accepted;
  rejected_queue_full += other.rejected_queue_full;
  rejected_stopped += other.rejected_stopped;
  deadline_exceeded += other.deadline_exceeded;
  failed += other.failed;
  completed += other.completed;
  deadline_missed += other.deadline_missed;
  cache_hits += other.cache_hits;
  cache_misses += other.cache_misses;
  cache_evictions += other.cache_evictions;
  cache_entries += other.cache_entries;
  cache_bytes_used += other.cache_bytes_used;
  stale_served += other.stale_served;
  degraded_truncated += other.degraded_truncated;
  refreshes += other.refreshes;
  refresh_failures += other.refresh_failures;
  epochs_published += other.epochs_published;
  queue_peak = std::max(queue_peak, other.queue_peak);
  queue_us.Merge(other.queue_us);
  service_us.Merge(other.service_us);
  service_cpu_us.Merge(other.service_cpu_us);
  total_us.Merge(other.total_us);
  for (size_t i = 0; i < kNumQueryPriorities; ++i) {
    priority_total_us[i].Merge(other.priority_total_us[i]);
  }
  distance_comps.Merge(other.distance_comps);
  mapped_storage = mapped_storage || other.mapped_storage;
  page_hits += other.page_hits;
  page_misses += other.page_misses;
  page_evictions += other.page_evictions;
  page_cached += other.page_cached;
  storage_fixed_bytes += other.storage_fixed_bytes;
  storage_resident_bytes += other.storage_resident_bytes;
  memory_budget_bytes += other.memory_budget_bytes;
}

ServerStats DirectoryServer::Stats() const {
  ServerStats out;
  {
    std::lock_guard<std::mutex> stats(stats_mutex_);
    out = stats_;
  }
  // Cache size gauges and evictions live inside the cache (they change on
  // worker inserts that never touch stats_mutex_); sampled here so one
  // Stats() call is a consistent point-in-time view.
  if (cache_ != nullptr) {
    const ResultCacheStats cache_stats = cache_->Stats();
    out.cache_evictions = cache_stats.evictions;
    out.cache_entries = cache_stats.entries;
    out.cache_bytes_used = cache_stats.bytes;
  }
  // Storage counters are sampled from the published snapshot's page store
  // after stats_mutex_ is released — snapshot() takes snapshot_mutex_, and
  // holding both here would order them against every other pairing.
  SnapshotPtr snap = snapshot();
  if (snap != nullptr && snap->mapped() != nullptr) {
    const storage::MappedSnapshot& mapped = *snap->mapped();
    const storage::PageStoreStats page_stats = mapped.page_store_stats();
    out.mapped_storage = true;
    out.page_hits = page_stats.hits;
    out.page_misses = page_stats.misses;
    out.page_evictions = page_stats.evictions;
    out.page_cached = page_stats.cached_pages;
    out.storage_fixed_bytes = mapped.fixed_resident_bytes();
    out.storage_resident_bytes = mapped.resident_bytes();
    out.memory_budget_bytes = mapped.memory_budget_bytes();
  }
  return out;
}

void DirectoryServer::Shutdown() {
  std::lock_guard<std::mutex> shutdown(shutdown_mutex_);
  if (shutdown_done_) return;
  shutdown_done_ = true;
  {
    std::lock_guard<std::mutex> lock(queue_mutex_);
    stopping_ = true;
  }
  {
    std::lock_guard<std::mutex> lock(refresh_mutex_);
    refresh_stopping_ = true;
  }
  // Wake everything: workers drain the query queue, the refresh thread
  // drains its batch queue, then both exit.
  queue_cv_.notify_all();
  refresh_cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
  workers_.clear();
  if (refresh_thread_.joinable()) refresh_thread_.join();
  // All readers have quiesced: superseded epochs can finally go. The
  // current snapshot stays published for snapshot() callers.
  {
    std::lock_guard<std::mutex> lock(snapshot_mutex_);
    retired_.clear();
  }
}

}  // namespace cafc::serve
