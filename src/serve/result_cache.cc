#include "serve/result_cache.h"

#include <utility>

namespace cafc::serve {

ResultCache::ResultCache(size_t byte_budget) : byte_budget_(byte_budget) {}

size_t ResultCache::EntryBytes(const std::string& key,
                               const CachedAnswer& answer) {
  // Estimate: key bytes + hit payload + fixed bookkeeping (list node, map
  // slot, answer struct). Precision does not matter — only that the total
  // tracks real usage closely enough for the budget to bound it.
  constexpr size_t kFixedOverhead = 128;
  return key.size() +
         answer.hits.size() * sizeof(DatabaseDirectory::SearchHit) +
         kFixedOverhead;
}

bool ResultCache::Lookup(const std::string& key, uint64_t snapshot_version,
                         CachedAnswer* out) {
  if (byte_budget_ == 0) return false;
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = index_.find(key);
  if (it == index_.end() ||
      it->second->answer.snapshot_version != snapshot_version) {
    // A resident entry from another snapshot is a miss on the fresh path:
    // the publish that bumped the version invalidated it wholesale. It
    // stays resident for LookupAny until LRU pressure or a recompute of
    // its key replaces it.
    ++stats_.misses;
    return false;
  }
  lru_.splice(lru_.begin(), lru_, it->second);
  ++stats_.hits;
  *out = it->second->answer;
  return true;
}

bool ResultCache::LookupAny(const std::string& key, CachedAnswer* out) {
  if (byte_budget_ == 0) return false;
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = index_.find(key);
  if (it == index_.end()) return false;
  ++stats_.stale_hits;
  *out = it->second->answer;
  return true;
}

void ResultCache::Insert(const std::string& key, CachedAnswer answer) {
  if (byte_budget_ == 0) return;
  const size_t bytes = EntryBytes(key, answer);
  std::lock_guard<std::mutex> lock(mutex_);
  ++stats_.inserts;
  auto it = index_.find(key);
  if (it != index_.end()) EraseLocked(it->second);
  if (bytes > byte_budget_) return;  // would evict everything else
  lru_.push_front(Entry{key, std::move(answer), bytes});
  index_[key] = lru_.begin();
  bytes_ += bytes;
  while (bytes_ > byte_budget_ && lru_.size() > 1) {
    auto last = std::prev(lru_.end());
    EraseLocked(last);
    ++stats_.evictions;
  }
}

void ResultCache::Clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  lru_.clear();
  index_.clear();
  bytes_ = 0;
}

void ResultCache::EraseLocked(LruList::iterator it) {
  bytes_ -= it->bytes;
  index_.erase(it->key);
  lru_.erase(it);
}

ResultCacheStats ResultCache::Stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  ResultCacheStats out = stats_;
  out.bytes = bytes_;
  out.entries = lru_.size();
  return out;
}

}  // namespace cafc::serve
