#ifndef CAFC_SERVE_SNAPSHOT_H_
#define CAFC_SERVE_SNAPSHOT_H_

#include <cstdint>
#include <memory>

#include "core/directory.h"
#include "storage/reader.h"

namespace cafc::serve {

/// \brief An immutable, refcounted view of the directory at one publish
/// point — the unit of consistency of the serving layer.
///
/// The server publishes a snapshot by atomically swapping a
/// `shared_ptr<const DirectorySnapshot>`; workers pin the current snapshot
/// at dequeue and execute the whole request against it, so every response
/// observes exactly one epoch — never a directory mid-refresh. Old
/// snapshots die when the last in-flight request holding them completes.
class DirectorySnapshot {
 public:
  /// Takes ownership of a frozen directory. `version` is the server's
  /// publish sequence number (1 = the directory the server was built
  /// with); `corpus_epoch` is the corpus epoch the directory reflects.
  DirectorySnapshot(DatabaseDirectory directory, uint64_t version,
                    uint64_t corpus_epoch);

  /// Mapped mode: the snapshot is a view over an mmapped binary v3 file.
  /// The thin directory and the centroid index live inside the
  /// MappedSnapshot (built once at Open); this wrapper only pins the
  /// refcount and carries the publish metadata. Queries run exactly as in
  /// the in-RAM mode — the indexed Classify/Search paths never read the
  /// centroid vectors the thin directory omits — and stored-page requests
  /// (QueryKind::kClassifyStored) reach the page LRU through `mapped()`.
  DirectorySnapshot(std::shared_ptr<const storage::MappedSnapshot> mapped,
                    uint64_t version);

  DirectorySnapshot(const DirectorySnapshot&) = delete;
  DirectorySnapshot& operator=(const DirectorySnapshot&) = delete;

  /// The frozen directory. Const access only — `DatabaseDirectory`'s const
  /// interface (ClassifyPage/ClassifyDocument/Search) is thread-safe, and
  /// immutability is what makes the refcounted share sound. In mapped mode
  /// this is the thin directory (empty centroid vectors) — sound because
  /// every query path the server executes goes through `index()`.
  const DatabaseDirectory& directory() const {
    return mapped_ ? mapped_->directory() : directory_;
  }

  /// The backing mapped snapshot, or nullptr for in-RAM snapshots.
  const storage::MappedSnapshot* mapped() const { return mapped_.get(); }

  /// Publish sequence number, starting at 1 and bumped by every refresh
  /// hot-swap. Strictly increasing across the server's lifetime.
  uint64_t version() const { return version_; }

  /// Corpus epoch the directory reflects (0 when the directory was built
  /// outside an epoch-versioned corpus).
  uint64_t corpus_epoch() const { return corpus_epoch_; }

  /// Inverted centroid index over the frozen entries, built once at
  /// publish time and shared immutably by every worker pinning this
  /// snapshot: queries score only the entries they share a term with
  /// instead of scanning all of them, with bit-identical results. In
  /// mapped mode the index was streamed out of the file at Open.
  const cluster::CentroidIndex& index() const {
    return mapped_ ? mapped_->index() : index_;
  }

 private:
  DatabaseDirectory directory_;
  cluster::CentroidIndex index_;
  std::shared_ptr<const storage::MappedSnapshot> mapped_;
  uint64_t version_ = 0;
  uint64_t corpus_epoch_ = 0;
};

/// How snapshots travel: pinned by workers, swapped by the refresh thread.
using SnapshotPtr = std::shared_ptr<const DirectorySnapshot>;

}  // namespace cafc::serve

#endif  // CAFC_SERVE_SNAPSHOT_H_
