#ifndef CAFC_SERVE_SNAPSHOT_H_
#define CAFC_SERVE_SNAPSHOT_H_

#include <cstdint>
#include <memory>

#include "core/directory.h"

namespace cafc::serve {

/// \brief An immutable, refcounted view of the directory at one publish
/// point — the unit of consistency of the serving layer.
///
/// The server publishes a snapshot by atomically swapping a
/// `shared_ptr<const DirectorySnapshot>`; workers pin the current snapshot
/// at dequeue and execute the whole request against it, so every response
/// observes exactly one epoch — never a directory mid-refresh. Old
/// snapshots die when the last in-flight request holding them completes.
class DirectorySnapshot {
 public:
  /// Takes ownership of a frozen directory. `version` is the server's
  /// publish sequence number (1 = the directory the server was built
  /// with); `corpus_epoch` is the corpus epoch the directory reflects.
  DirectorySnapshot(DatabaseDirectory directory, uint64_t version,
                    uint64_t corpus_epoch);

  DirectorySnapshot(const DirectorySnapshot&) = delete;
  DirectorySnapshot& operator=(const DirectorySnapshot&) = delete;

  /// The frozen directory. Const access only — `DatabaseDirectory`'s const
  /// interface (ClassifyPage/ClassifyDocument/Search) is thread-safe, and
  /// immutability is what makes the refcounted share sound.
  const DatabaseDirectory& directory() const { return directory_; }

  /// Publish sequence number, starting at 1 and bumped by every refresh
  /// hot-swap. Strictly increasing across the server's lifetime.
  uint64_t version() const { return version_; }

  /// Corpus epoch the directory reflects (0 when the directory was built
  /// outside an epoch-versioned corpus).
  uint64_t corpus_epoch() const { return corpus_epoch_; }

  /// Inverted centroid index over the frozen entries, built once at
  /// publish time and shared immutably by every worker pinning this
  /// snapshot: queries score only the entries they share a term with
  /// instead of scanning all of them, with bit-identical results.
  const cluster::CentroidIndex& index() const { return index_; }

 private:
  DatabaseDirectory directory_;
  cluster::CentroidIndex index_;
  uint64_t version_ = 0;
  uint64_t corpus_epoch_ = 0;
};

/// How snapshots travel: pinned by workers, swapped by the refresh thread.
using SnapshotPtr = std::shared_ptr<const DirectorySnapshot>;

}  // namespace cafc::serve

#endif  // CAFC_SERVE_SNAPSHOT_H_
