#ifndef CAFC_SERVE_SHARD_ROUTER_H_
#define CAFC_SERVE_SHARD_ROUTER_H_

#include <cstdint>
#include <memory>
#include <string_view>
#include <vector>

#include "core/directory.h"
#include "forms/form_page_model.h"
#include "ipc/message.h"
#include "ipc/shard_rpc.h"
#include "serve/server.h"
#include "util/status.h"

namespace cafc::serve {

/// What one shard contributed to (or withheld from) a routed response.
struct ShardEcho {
  uint32_t shard_id = 0;
  /// Snapshot publish sequence and corpus epoch the shard answered from.
  /// Both come from the single snapshot its response was computed
  /// against — a response can never mix epochs.
  uint64_t snapshot_version = 0;
  uint64_t corpus_epoch = 0;
  /// OK, or why this shard's answer is missing from the merge.
  Status status;
};

/// A scatter-gathered answer. `shards` always has one echo per *queried*
/// shard, in shard order — every configured shard on the scatter path,
/// exactly the owning shard on the classify fast path (`fast_path` true).
/// Degradation is explicit: a dead shard is a non-OK echo plus
/// `partial = true`, never a silently shorter result.
struct RouterResponse {
  /// OK when at least one shard answered; the first shard error when
  /// none did.
  Status status;
  /// True when one or more queried shards did not contribute (the merged
  /// result covers only the live shards' sections).
  bool partial = false;
  /// True when this Classify was routed to the single owning shard via
  /// the site partitioner instead of scatter-gathered.
  bool fast_path = false;
  std::vector<ShardEcho> shards;
  /// Classify: the winning *global* section.
  DatabaseDirectory::Classification classification;
  /// Search: merged ranking over global sections.
  std::vector<DatabaseDirectory::SearchHit> hits;
};

/// Router behavior knobs.
struct RouterOptions {
  /// Route URL-carrying Classify requests to the single owning shard
  /// (`Fnv1a64(site) % num_shards`) instead of scatter-gathering — one
  /// RPC instead of N, the first step off the classify scaling plateau.
  ///
  /// Exact for pages of the served corpus: the partitioner hosts every
  /// section with at least one member from the owner's sites on the
  /// owner, and a corpus page's best-scoring section contains the page
  /// as a member, so the owner's local maximum *is* the global maximum
  /// (bit-identical, verified against the scatter oracle in tests). For
  /// URLs outside the corpus the owner may not host the globally best
  /// section, so the answer can differ — hence default off; URL-less
  /// requests always scatter.
  bool classify_fast_path = false;
};

/// \brief The router layer: scatter-gathers Classify/Search across shard
/// backends and merges deterministically.
///
/// Each call pipelines one request to every shard (the per-shard clients
/// share nothing, so shards work concurrently), gathers, and merges:
///
///  - Classify: the best (similarity, lowest global index on ties) of the
///    per-shard winners. Because every shard scores exactly its hosted
///    global sections with bit-identical similarities, this reproduces the
///    single-directory scan's strict-improvement rule exactly.
///  - Search: per-shard rankings concatenated, deduplicated by global
///    section (shards sharing a section compute identical similarities),
///    ranked by (similarity desc, global index asc) — the same total
///    order RankHits applies — and truncated to top_k.
///
/// Thread-safe: any number of threads may route concurrently; responses
/// are matched by request id inside each ShardClient.
class ShardRouter {
 public:
  /// One client per shard, in shard-id order.
  explicit ShardRouter(
      std::vector<std::unique_ptr<ipc::ShardClient>> shards,
      RouterOptions options = {});
  ~ShardRouter();

  ShardRouter(const ShardRouter&) = delete;
  ShardRouter& operator=(const ShardRouter&) = delete;

  size_t num_shards() const { return shards_.size(); }

  RouterResponse Classify(const forms::FormPageDocument& doc,
                          ContentConfig config = ContentConfig::kFcPlusPc,
                          double deadline_ms = 0.0);

  RouterResponse Search(std::string_view query, size_t top_k = 5,
                        double deadline_ms = 0.0);

  /// Per-shard lifetime stats, in shard order (a dead shard is an error
  /// slot, not a hole).
  std::vector<Result<ServerStats>> PerShardStats();

  /// Fleet-wide aggregation of every reachable shard's stats
  /// (ServerStats::Merge); fails only when no shard is reachable.
  Result<ServerStats> Stats();

  /// Per-shard epoch/version probes, in shard order.
  std::vector<Result<ipc::EpochResponse>> Epochs();

  /// Closes every shard client (in-flight calls fail Unavailable).
  void Close();

 private:
  /// Single-shard classify of the fast path.
  RouterResponse ClassifyOnShard(size_t shard,
                                 const ipc::ClassifyRequest& request);

  std::vector<std::unique_ptr<ipc::ShardClient>> shards_;
  RouterOptions options_;
};

}  // namespace cafc::serve

#endif  // CAFC_SERVE_SHARD_ROUTER_H_
