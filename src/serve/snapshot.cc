#include "serve/snapshot.h"

#include <utility>

namespace cafc::serve {

DirectorySnapshot::DirectorySnapshot(DatabaseDirectory directory,
                                     uint64_t version, uint64_t corpus_epoch)
    : directory_(std::move(directory)),
      index_(directory_.BuildCentroidIndex()),
      version_(version),
      corpus_epoch_(corpus_epoch) {}

}  // namespace cafc::serve
