#include "serve/snapshot.h"

#include <utility>

namespace cafc::serve {

DirectorySnapshot::DirectorySnapshot(DatabaseDirectory directory,
                                     uint64_t version, uint64_t corpus_epoch)
    : directory_(std::move(directory)),
      index_(directory_.BuildCentroidIndex()),
      version_(version),
      corpus_epoch_(corpus_epoch) {}

DirectorySnapshot::DirectorySnapshot(
    std::shared_ptr<const storage::MappedSnapshot> mapped, uint64_t version)
    : mapped_(std::move(mapped)),
      version_(version),
      corpus_epoch_(mapped_->meta().epoch) {}

}  // namespace cafc::serve
