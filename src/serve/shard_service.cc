#include "serve/shard_service.h"

#include <utility>

namespace cafc::serve {

ipc::StatsResponse ToWireStats(const ServerStats& stats) {
  ipc::StatsResponse wire;
  wire.submitted = stats.submitted;
  wire.accepted = stats.accepted;
  wire.rejected_queue_full = stats.rejected_queue_full;
  wire.rejected_stopped = stats.rejected_stopped;
  wire.deadline_exceeded = stats.deadline_exceeded;
  wire.failed = stats.failed;
  wire.completed = stats.completed;
  wire.deadline_missed = stats.deadline_missed;
  wire.cache_hits = stats.cache_hits;
  wire.cache_misses = stats.cache_misses;
  wire.cache_evictions = stats.cache_evictions;
  wire.cache_entries = stats.cache_entries;
  wire.cache_bytes_used = stats.cache_bytes_used;
  wire.stale_served = stats.stale_served;
  wire.degraded_truncated = stats.degraded_truncated;
  wire.refreshes = stats.refreshes;
  wire.refresh_failures = stats.refresh_failures;
  wire.epochs_published = stats.epochs_published;
  wire.queue_peak = stats.queue_peak;
  wire.queue_us = stats.queue_us;
  wire.service_us = stats.service_us;
  wire.service_cpu_us = stats.service_cpu_us;
  wire.total_us = stats.total_us;
  for (size_t i = 0; i < kNumQueryPriorities; ++i) {
    wire.priority_total_us[i] = stats.priority_total_us[i];
  }
  wire.distance_comps = stats.distance_comps;
  return wire;
}

ServerStats FromWireStats(const ipc::StatsResponse& wire) {
  ServerStats stats;
  stats.submitted = wire.submitted;
  stats.accepted = wire.accepted;
  stats.rejected_queue_full = wire.rejected_queue_full;
  stats.rejected_stopped = wire.rejected_stopped;
  stats.deadline_exceeded = wire.deadline_exceeded;
  stats.failed = wire.failed;
  stats.completed = wire.completed;
  stats.deadline_missed = wire.deadline_missed;
  stats.cache_hits = wire.cache_hits;
  stats.cache_misses = wire.cache_misses;
  stats.cache_evictions = wire.cache_evictions;
  stats.cache_entries = wire.cache_entries;
  stats.cache_bytes_used = wire.cache_bytes_used;
  stats.stale_served = wire.stale_served;
  stats.degraded_truncated = wire.degraded_truncated;
  stats.refreshes = wire.refreshes;
  stats.refresh_failures = wire.refresh_failures;
  stats.epochs_published = wire.epochs_published;
  stats.queue_peak = wire.queue_peak;
  stats.queue_us = wire.queue_us;
  stats.service_us = wire.service_us;
  stats.service_cpu_us = wire.service_cpu_us;
  stats.total_us = wire.total_us;
  for (size_t i = 0; i < kNumQueryPriorities; ++i) {
    stats.priority_total_us[i] = wire.priority_total_us[i];
  }
  stats.distance_comps = wire.distance_comps;
  return stats;
}

DirectoryShardService::DirectoryShardService(
    DirectoryServer* server, std::vector<uint32_t> global_sections,
    uint32_t shard_id, uint32_t num_shards)
    : server_(server),
      global_sections_(std::move(global_sections)),
      shard_id_(shard_id),
      num_shards_(num_shards) {}

Result<int64_t> DirectoryShardService::ToGlobal(int local_entry) const {
  if (local_entry < 0) return static_cast<int64_t>(-1);
  if (static_cast<size_t>(local_entry) >= global_sections_.size()) {
    return Status::Internal(
        "shard " + std::to_string(shard_id_) + ": local section " +
        std::to_string(local_entry) +
        " is outside the frozen global mapping (" +
        std::to_string(global_sections_.size()) +
        " sections at partition time) — re-partition after refresh");
  }
  return static_cast<int64_t>(
      global_sections_[static_cast<size_t>(local_entry)]);
}

Result<ipc::ClassifyResponse> DirectoryShardService::HandleClassify(
    const ipc::ClassifyRequest& request) {
  QueryRequest query;
  query.kind = QueryKind::kClassify;
  query.doc = request.doc.ToDocument();
  query.config = request.config;
  query.deadline_ms = request.deadline_ms;
  QueryResponse response = server_->Query(std::move(query));
  if (!response.status.ok()) return response.status;
  Result<int64_t> global = ToGlobal(response.classification.entry);
  if (!global.ok()) return global.status();
  ipc::ClassifyResponse wire;
  wire.best.entry = *global;
  wire.best.similarity = response.classification.similarity;
  wire.snapshot_version = response.snapshot_version;
  wire.corpus_epoch = response.corpus_epoch;
  return wire;
}

Result<ipc::SearchResponse> DirectoryShardService::HandleSearch(
    const ipc::SearchRequest& request) {
  QueryRequest query;
  query.kind = QueryKind::kSearch;
  query.query = request.query;
  query.top_k = static_cast<size_t>(request.top_k);
  query.deadline_ms = request.deadline_ms;
  QueryResponse response = server_->Query(std::move(query));
  if (!response.status.ok()) return response.status;
  ipc::SearchResponse wire;
  wire.hits.reserve(response.hits.size());
  for (const DatabaseDirectory::SearchHit& hit : response.hits) {
    Result<int64_t> global = ToGlobal(hit.entry);
    if (!global.ok()) return global.status();
    wire.hits.push_back({*global, hit.similarity});
  }
  wire.snapshot_version = response.snapshot_version;
  wire.corpus_epoch = response.corpus_epoch;
  return wire;
}

Result<ipc::StatsResponse> DirectoryShardService::HandleStats(
    const ipc::StatsRequest&) {
  return ToWireStats(server_->Stats());
}

Result<ipc::EpochResponse> DirectoryShardService::HandleEpoch(
    const ipc::EpochRequest&) {
  ipc::EpochResponse wire;
  wire.shard_id = shard_id_;
  wire.num_shards = num_shards_;
  SnapshotPtr snap = server_->snapshot();
  if (snap != nullptr) {
    wire.snapshot_version = snap->version();
    wire.corpus_epoch = snap->corpus_epoch();
    wire.sections = snap->directory().size();
  }
  return wire;
}

ShardServiceHost::ShardServiceHost(std::unique_ptr<ipc::MessagePipe> pipe,
                                   ipc::ShardHandler* handler,
                                   size_t threads)
    : pipe_(std::move(pipe)) {
  if (threads < 1) threads = 1;
  threads_.reserve(threads);
  for (size_t i = 0; i < threads; ++i) {
    threads_.emplace_back([pipe = pipe_.get(), handler] {
      // Per-thread loop; the pipe synchronizes Recv/Send internally. A
      // transport error ends every loop the same way a clean close does.
      (void)ipc::ServeLoop(pipe, handler);
    });
  }
}

ShardServiceHost::~ShardServiceHost() { Shutdown(); }

void ShardServiceHost::Shutdown() {
  if (shut_down_) return;
  shut_down_ = true;
  pipe_->Close();
  for (std::thread& thread : threads_) thread.join();
  threads_.clear();
}

}  // namespace cafc::serve
