#ifndef CAFC_SERVE_SCHEDULER_H_
#define CAFC_SERVE_SCHEDULER_H_

#include <algorithm>
#include <array>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <string_view>
#include <utility>
#include <vector>

namespace cafc::serve {

/// Scheduling class of a request. Lower value = more urgent; the
/// priority-deadline policy always drains a higher band before touching a
/// lower one. The three bands mirror the classic serving split:
/// interactive user traffic, standard API traffic, background/batch work.
enum class QueryPriority : uint8_t {
  kInteractive = 0,  ///< user-facing, latency-sensitive
  kStandard = 1,     ///< default API traffic
  kBatch = 2,        ///< background refill, crawler probes, analytics
};

inline constexpr size_t kNumQueryPriorities = 3;

/// Short lowercase name ("high" / "normal" / "low") for CLI and JSON
/// surfaces.
inline const char* QueryPriorityName(QueryPriority priority) {
  switch (priority) {
    case QueryPriority::kInteractive:
      return "high";
    case QueryPriority::kStandard:
      return "normal";
    case QueryPriority::kBatch:
      return "low";
  }
  return "normal";
}

/// Parses a priority name as printed by QueryPriorityName. Returns false
/// on an unknown name (`*out` untouched) — the CLI turns that into a
/// usage error instead of a silent default.
inline bool ParseQueryPriority(std::string_view name, QueryPriority* out) {
  if (name == "high") {
    *out = QueryPriority::kInteractive;
    return true;
  }
  if (name == "normal") {
    *out = QueryPriority::kStandard;
    return true;
  }
  if (name == "low") {
    *out = QueryPriority::kBatch;
    return true;
  }
  return false;
}

/// How the worker pool orders the admitted backlog.
enum class SchedulingPolicy {
  /// One FIFO for everything — arrival order, priorities ignored. The
  /// pre-workload-engine behavior, and still the default.
  kFifo,
  /// Strict priority bands; earliest absolute deadline first within a
  /// band (requests without a deadline sort after every deadlined one,
  /// FIFO among themselves). Expired requests are still answered
  /// kDeadlineExceeded at dequeue, before any service work.
  kPriorityDeadline,
};

/// Graceful-degradation knobs: what the server does under overload
/// instead of answering kUnavailable. Both modes mark the response
/// (`degraded` / `stale`) so a caller can always tell a full fresh answer
/// from a shed-avoiding one.
struct DegradePolicy {
  bool enabled = false;
  /// Queue-depth fraction of capacity above which Search requests are
  /// admitted in truncated form (top_k clamped to `truncated_top_k`).
  double queue_high_water = 0.75;
  /// Effective top_k of a degraded Search admission.
  size_t truncated_top_k = 1;
  /// When the queue is at capacity, serve a result-cache entry from an
  /// older snapshot (flagged `stale`) instead of rejecting, when one
  /// exists. Requires a configured result cache to ever fire.
  bool serve_stale = true;
};

/// \brief Policy-ordered backlog of admitted requests — the data structure
/// behind the DirectoryServer's bounded MPMC queue.
///
/// Not thread-safe by itself: the server mutates it under its queue mutex.
/// kFifo keeps one deque (arrival order); kPriorityDeadline keeps one
/// binary heap per priority band ordered by (absolute deadline, admission
/// sequence), so Pop is O(log n) and always yields the most urgent
/// admitted request. Separated from the server so the ordering rules are
/// unit-testable without threads.
template <typename Item>
class RequestScheduler {
 public:
  using TimePoint = std::chrono::steady_clock::time_point;

  explicit RequestScheduler(SchedulingPolicy policy) : policy_(policy) {}

  /// Admits one item. `deadline` is absolute (TimePoint::max() = none).
  void Push(QueryPriority priority, TimePoint deadline, Item item) {
    Entry entry{deadline, next_seq_++, std::move(item)};
    if (policy_ == SchedulingPolicy::kFifo) {
      fifo_.push_back(std::move(entry));
    } else {
      std::vector<Entry>& band = bands_[static_cast<size_t>(priority)];
      band.push_back(std::move(entry));
      std::push_heap(band.begin(), band.end(), WorseThan);
    }
    ++size_;
  }

  /// Removes the most urgent item per the policy. False when empty.
  bool Pop(Item* out) {
    if (size_ == 0) return false;
    --size_;
    if (policy_ == SchedulingPolicy::kFifo) {
      *out = std::move(fifo_.front().item);
      fifo_.pop_front();
      return true;
    }
    for (std::vector<Entry>& band : bands_) {
      if (band.empty()) continue;
      std::pop_heap(band.begin(), band.end(), WorseThan);
      *out = std::move(band.back().item);
      band.pop_back();
      return true;
    }
    return false;  // unreachable: size_ was > 0
  }

  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

 private:
  struct Entry {
    TimePoint deadline;
    uint64_t seq = 0;
    Item item;
  };

  /// Heap order: the top is the entry with the earliest deadline, ties
  /// broken by admission order — so `a` sorts below `b` when it is
  /// strictly less urgent.
  static bool WorseThan(const Entry& a, const Entry& b) {
    if (a.deadline != b.deadline) return a.deadline > b.deadline;
    return a.seq > b.seq;
  }

  SchedulingPolicy policy_;
  uint64_t next_seq_ = 0;
  size_t size_ = 0;
  std::deque<Entry> fifo_;
  std::array<std::vector<Entry>, kNumQueryPriorities> bands_;
};

}  // namespace cafc::serve

#endif  // CAFC_SERVE_SCHEDULER_H_
