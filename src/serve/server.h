#ifndef CAFC_SERVE_SERVER_H_
#define CAFC_SERVE_SERVER_H_

#include <array>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/corpus.h"
#include "core/dataset.h"
#include "core/directory.h"
#include "core/form_page.h"
#include "serve/result_cache.h"
#include "serve/scheduler.h"
#include "serve/snapshot.h"
#include "util/histogram.h"
#include "util/status.h"

namespace cafc::serve {

/// What a request asks of the directory.
enum class QueryKind {
  kClassify,  ///< file a raw form-page document into its best section
  kSearch,    ///< keyword search over the section centroids
  /// Classify a page already stored in the backing v3 snapshot, addressed
  /// by ordinal. Snapshot-backed servers only: the page profile is decoded
  /// on demand from the mapped file through the budget-bounded LRU, so the
  /// request costs no resident memory beyond the hot set.
  kClassifyStored,
};

/// One unit of work for the serving layer. Classify requests carry `doc`
/// (+ `config`); Search requests carry `query` (+ `top_k`); ClassifyStored
/// requests carry `page_ordinal` (+ `config`).
struct QueryRequest {
  QueryKind kind = QueryKind::kClassify;
  forms::FormPageDocument doc;
  ContentConfig config = ContentConfig::kFcPlusPc;
  std::string query;
  size_t top_k = 5;
  /// Ordinal of the stored page (kClassifyStored only), in the snapshot's
  /// page-section order.
  size_t page_ordinal = 0;
  /// Latency budget measured from Submit. A request still queued when the
  /// budget expires is answered kDeadlineExceeded instead of executed
  /// (checked at dequeue — admission is cheaper than cancellation). 0
  /// disables the deadline.
  double deadline_ms = 0.0;
  /// Scheduling class. Ignored under SchedulingPolicy::kFifo; under
  /// kPriorityDeadline a higher band is always drained first, and within
  /// a band the earliest deadline wins.
  QueryPriority priority = QueryPriority::kStandard;
};

/// The answer to one QueryRequest. Exactly one of
/// `classification` / `hits` is meaningful, per `kind`.
struct QueryResponse {
  /// OK, or why the request was not served: kUnavailable (queue full or
  /// server stopped — retryable elsewhere/later), kDeadlineExceeded
  /// (budget burned in the queue).
  Status status;
  /// Snapshot publish sequence this response was computed against. All
  /// fields of one response come from this single snapshot.
  uint64_t snapshot_version = 0;
  /// Corpus epoch of that snapshot.
  uint64_t corpus_epoch = 0;
  DatabaseDirectory::Classification classification;
  std::vector<DatabaseDirectory::SearchHit> hits;
  double queue_ms = 0.0;    ///< Submit -> dequeue
  double service_ms = 0.0;  ///< dequeue -> response ready
  /// How much of the snapshot's directory this query actually touched
  /// (centroid-index pruning effectiveness; see ServerStats).
  DirectoryQueryCost cost;
  /// Answered out of the result cache (fresh or stale) — no directory
  /// work happened and the request never queued.
  bool cache_hit = false;
  /// Degradation marker: this answer was computed against a snapshot
  /// older than the one published when it was served (an overload-path
  /// cache answer). Never set on the normal path — the "zero
  /// stale-unflagged responses" invariant the workload bench gates.
  bool stale = false;
  /// Degradation marker: a Search admitted above the overload high-water
  /// mark and served with top_k truncated to DegradePolicy::
  /// truncated_top_k. The hits are an exact prefix of the full ranking.
  bool degraded = false;
  /// The deadline expired *during* service: the answer is complete and
  /// correct, but late. Stamped so a late answer is never silently
  /// on-time (callers that already gave up can discard it).
  bool deadline_missed = false;
};

/// Serving-layer knobs.
struct DirectoryServerOptions {
  size_t workers = 4;          ///< query worker threads (min 1)
  size_t queue_capacity = 256; ///< admission bound; full queue => reject
  /// Artificial per-request service time (sleep inside the worker),
  /// emulating the downstream I/O a production deployment would do per
  /// query (fetching the candidate page, RPC hops). Lets load benchmarks
  /// exercise worker-scaling and admission control independently of how
  /// fast the in-memory directory math happens to be. 0 in production use.
  double service_pad_ms = 0.0;
  /// Passed through to DatabaseDirectory::Refresh on every hot refresh.
  DirectoryRefreshOptions refresh;
  /// Backlog ordering (kFifo reproduces the pre-workload-engine server).
  SchedulingPolicy scheduling = SchedulingPolicy::kFifo;
  /// Result-cache byte budget; 0 disables the cache entirely. Cached
  /// answers are keyed by the request's exact content and the snapshot
  /// version, so a hit is bit-identical to recomputing and a snapshot
  /// swap invalidates wholesale.
  size_t cache_bytes = 0;
  /// Overload behavior: truncated top-k admissions and flagged stale
  /// cache answers instead of pure kUnavailable shedding.
  DegradePolicy degrade;
};

/// Monotonic counters + latency histograms of one server's lifetime.
/// `queue_us`/`service_us`/`total_us` record microseconds and only cover
/// requests that reached a worker (rejected submissions never queue).
struct ServerStats {
  uint64_t submitted = 0;          ///< every Submit call
  uint64_t accepted = 0;           ///< admitted to the queue
  uint64_t rejected_queue_full = 0;///< kUnavailable: queue at capacity
  uint64_t rejected_stopped = 0;   ///< kUnavailable: after Shutdown
  uint64_t deadline_exceeded = 0;  ///< kDeadlineExceeded at dequeue
  uint64_t failed = 0;             ///< executed but answered non-OK
  uint64_t completed = 0;          ///< served OK by a worker
  /// Deadlines that expired *during* service: the response was still
  /// delivered, stamped deadline_missed (completed counts it too).
  uint64_t deadline_missed = 0;
  /// Result-cache accounting. Hits are answered at Submit without
  /// queueing, so they are counted here and not in accepted/completed:
  /// submitted == accepted + rejections + cache_hits + stale_served.
  uint64_t cache_hits = 0;
  uint64_t cache_misses = 0;     ///< lookups that fell through to a worker
  uint64_t cache_evictions = 0;  ///< entries dropped to hold cache_bytes
  uint64_t cache_entries = 0;    ///< entries resident now (gauge)
  uint64_t cache_bytes_used = 0; ///< estimated resident bytes now (gauge)
  /// Degradation accounting: overload answers served from an older
  /// snapshot's cache entry (response.stale) and Search admissions
  /// truncated above the high-water mark (response.degraded).
  uint64_t stale_served = 0;
  uint64_t degraded_truncated = 0;
  uint64_t refreshes = 0;          ///< hot refreshes applied
  uint64_t refresh_failures = 0;   ///< refreshes rejected by the library
  uint64_t epochs_published = 0;   ///< snapshot swaps (excludes the initial)
  uint64_t queue_peak = 0;         ///< high-water mark of the queue depth
  util::Histogram queue_us;
  util::Histogram service_us;
  /// Thread CPU microseconds actually burned executing each served
  /// request (CLOCK_THREAD_CPUTIME_ID around Execute — excludes queueing
  /// and the artificial service pad). `sum()` over one shard is the
  /// shard's total scoring work: the capacity measure the sharding bench
  /// gates on, immune to wall-clock noise from co-scheduled workers.
  util::Histogram service_cpu_us;
  util::Histogram total_us;
  /// Submit -> response-ready microseconds, split by scheduling class —
  /// the distributions the workload bench compares across policies
  /// (priority scheduling must protect the interactive band's p99 under
  /// burst). Indexed by QueryPriority; covers worker-served requests.
  std::array<util::Histogram, kNumQueryPriorities> priority_total_us;
  /// Distance computations (exact centroid similarity evaluations) per
  /// served query — the count the inverted centroid index keeps sublinear
  /// in the number of sections. A full scan would put every query at
  /// exactly the directory size, so this distribution *is* the pruning
  /// effectiveness, surfaced in `cafc serve` stats output.
  util::Histogram distance_comps;
  /// Storage-layer counters of snapshot-backed servers (all zero for
  /// in-RAM servers). Sampled from the published snapshot's page store at
  /// Stats() time, so they reflect the moment of the call rather than an
  /// accumulation window.
  bool mapped_storage = false;       ///< true when serving a v3 snapshot
  uint64_t page_hits = 0;            ///< stored-page LRU hits
  uint64_t page_misses = 0;          ///< stored-page decodes from the map
  uint64_t page_evictions = 0;       ///< pages evicted to hold the budget
  uint64_t page_cached = 0;          ///< pages resident in the LRU now
  uint64_t storage_fixed_bytes = 0;  ///< dictionary+stats+index+labels
  uint64_t storage_resident_bytes = 0;  ///< fixed + cached pages, now
  uint64_t memory_budget_bytes = 0;  ///< configured cap (0 = unlimited)

  /// \brief Folds another server's stats into this one — the aggregation
  /// the scatter-gather router reports across its shards.
  ///
  /// Counters add; histograms merge element-wise (same compiled-in bucket
  /// layout); queue_peak takes the max (peaks do not add across
  /// independent queues). Storage gauges add and `mapped_storage` ORs:
  /// the merged view answers "what is the fleet holding now", not "what
  /// is one process holding".
  void Merge(const ServerStats& other);
};

/// \brief Concurrent query engine over an epoch-snapshot directory: a
/// bounded MPMC request queue drained by a worker pool, with hot refresh.
///
/// Ownership: the server owns the *refresh master* directory and the
/// epoch-versioned corpus it grows from. Queries never touch the master —
/// they run against the current immutable DirectorySnapshot, published by
/// one atomic pointer store. The single background refresh thread absorbs
/// scheduled page batches (Corpus::AddPages), re-fits the master
/// (DatabaseDirectory::Refresh), clones it into a fresh snapshot, and
/// swaps. Readers are wait-free: pinning the snapshot at dequeue is a
/// single atomic load — no lock, no refcount traffic — and each response
/// observes exactly one epoch. Superseded snapshots are not freed in
/// place; they retire to a deferred-reclamation list (bounded by the
/// number of refreshes) released once all workers have quiesced, so a
/// swap can never pull a snapshot out from under an in-flight request.
///
/// Admission control: Submit on a full queue fails fast with kUnavailable
/// (backpressure — the caller sheds load or retries elsewhere) instead of
/// blocking; a request whose deadline expired while queued is answered
/// kDeadlineExceeded at dequeue. Both reuse the crawl layer's transient
/// status taxonomy, so retry policies compose.
///
/// Thread-safe: Submit/Query/ScheduleRefresh/snapshot/Stats may be called
/// from any thread. Shutdown is idempotent; the destructor calls it.
class DirectoryServer {
 public:
  /// Takes ownership of the serving directory and its corpus. The initial
  /// snapshot (version 1) is a clone of `directory`, published before the
  /// constructor returns, so queries can be submitted immediately.
  DirectoryServer(DatabaseDirectory directory, Corpus corpus,
                  DirectoryServerOptions options = {});

  /// \brief Read-only server over an mmapped binary v3 snapshot.
  ///
  /// The initial (and only) snapshot wraps `snapshot` directly — nothing
  /// is cloned or re-indexed; the centroid index was streamed out of the
  /// mapped file at Open, and per-page profiles stay on disk behind the
  /// budget-bounded LRU. ScheduleRefresh fails with kFailedPrecondition
  /// (the backing file is immutable); everything else behaves as in the
  /// in-RAM mode, including kClassifyStored requests addressed by page
  /// ordinal. Memory budgeting is configured at MappedSnapshot::Open via
  /// SnapshotOpenOptions::memory_budget_bytes.
  explicit DirectoryServer(
      std::shared_ptr<const storage::MappedSnapshot> snapshot,
      DirectoryServerOptions options = {});

  /// Shuts down (drains the queues, joins all threads).
  ~DirectoryServer();

  DirectoryServer(const DirectoryServer&) = delete;
  DirectoryServer& operator=(const DirectoryServer&) = delete;

  /// Non-blocking admission: enqueues the request and returns a future
  /// that yields the response. On rejection (queue full / server stopped)
  /// the future is already satisfied with a kUnavailable response — Submit
  /// itself never blocks on capacity.
  std::future<QueryResponse> Submit(QueryRequest request);

  /// Blocking convenience wrapper: Submit + wait.
  QueryResponse Query(QueryRequest request);

  /// Queues a page batch for the refresh thread: AddPages + Refresh +
  /// snapshot swap, asynchronously. Returns kUnavailable after Shutdown,
  /// kFailedPrecondition on a read-only snapshot-backed server.
  /// Refresh failures (e.g. a vocabulary precondition) are counted in
  /// Stats and leave the published snapshot untouched.
  Status ScheduleRefresh(std::vector<DatasetEntry> pages);

  /// Blocks until every refresh scheduled so far has been applied (or
  /// counted as failed) and its snapshot published.
  void WaitForRefreshes();

  /// The currently published snapshot. Callers may hold it as long as
  /// they like; it stays valid (and immutable) after any number of swaps.
  SnapshotPtr snapshot() const;

  /// A consistent copy of the lifetime counters and latency histograms.
  ServerStats Stats() const;

  /// Stops admission, drains both queues (pending queries are answered,
  /// pending refreshes applied), joins all threads. Safe to call twice;
  /// Submit/ScheduleRefresh after Shutdown fail with kUnavailable.
  void Shutdown();

 private:
  struct Pending {
    QueryRequest request;
    std::promise<QueryResponse> promise;
    std::chrono::steady_clock::time_point submitted;
    /// Absolute deadline (max() = none); precomputed at Submit so the
    /// scheduler and the dequeue/service checks agree on one instant.
    std::chrono::steady_clock::time_point deadline;
    /// Canonical cache key (empty when the cache is off or the request
    /// kind is uncacheable), computed once at Submit.
    std::string cache_key;
    /// Admitted above the overload high-water mark: serve with top_k
    /// truncated to DegradePolicy::truncated_top_k and flag degraded.
    bool degrade_truncate = false;
  };

  void WorkerLoop();
  void RefreshLoop();
  /// Canonical content key for the result cache: a byte-exact encoding of
  /// everything Execute reads from the request (never a lossy hash, so
  /// equal keys imply identical answers). Empty for uncacheable kinds.
  static std::string CacheKey(const QueryRequest& request);
  /// Builds the response for a cache answer found at Submit time.
  QueryResponse FromCache(const CachedAnswer& answer, bool stale) const;
  /// Executes one admitted request against a pinned snapshot.
  QueryResponse Execute(const QueryRequest& request,
                        const DirectorySnapshot& snap) const;
  /// Retires the current snapshot and makes `next` live (one atomic
  /// pointer store). Ctor + refresh thread only.
  void Publish(SnapshotPtr next);

  DirectoryServerOptions options_;

  // Refresh master state: owned by the refresh thread after construction.
  // Empty (and the refresh thread never started) in read-only mapped mode.
  DatabaseDirectory master_;
  Corpus corpus_;
  bool read_only_ = false;  // set in the mapped ctor, immutable after

  /// The wait-free reader view: workers pin with a single acquire load.
  /// The pointee is owned by current_/retired_ below, which outlive every
  /// reader (workers are joined before either is released).
  std::atomic<const DirectorySnapshot*> live_{nullptr};
  mutable std::mutex snapshot_mutex_;
  SnapshotPtr current_;               // guarded by snapshot_mutex_
  std::vector<SnapshotPtr> retired_;  // guarded by snapshot_mutex_
  uint64_t publish_seq_ = 1;  // refresh thread only (after construction)

  mutable std::mutex queue_mutex_;
  std::condition_variable queue_cv_;
  RequestScheduler<Pending> queue_;  // guarded by queue_mutex_
  bool stopping_ = false;            // guarded by queue_mutex_

  /// Epoch-keyed result cache (null when options_.cache_bytes == 0).
  /// Thread-safe on its own mutex; Submit consults it under queue_mutex_
  /// (queue -> cache lock order), workers insert without queue_mutex_.
  std::unique_ptr<ResultCache> cache_;

  std::mutex refresh_mutex_;
  std::condition_variable refresh_cv_;
  std::condition_variable refresh_idle_cv_;
  std::deque<std::vector<DatasetEntry>> refresh_queue_;
  bool refresh_busy_ = false;      // guarded by refresh_mutex_
  bool refresh_stopping_ = false;  // guarded by refresh_mutex_

  mutable std::mutex stats_mutex_;
  ServerStats stats_;

  std::vector<std::thread> workers_;
  std::thread refresh_thread_;
  std::mutex shutdown_mutex_;
  bool shutdown_done_ = false;  // guarded by shutdown_mutex_
};

}  // namespace cafc::serve

#endif  // CAFC_SERVE_SERVER_H_
