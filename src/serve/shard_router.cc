#include "serve/shard_router.h"

#include <algorithm>
#include <unordered_set>
#include <utility>

#include "core/partition.h"
#include "serve/shard_service.h"
#include "web/url.h"

namespace cafc::serve {
namespace {

/// Applies the gather outcome of one shard to the response skeleton.
/// Returns true when the shard contributed (its echo is OK).
template <typename Resp>
bool Gather(const Result<Resp>& result, ShardEcho* echo, bool* partial) {
  if (!result.ok()) {
    echo->status = result.status();
    *partial = true;
    return false;
  }
  echo->snapshot_version = result->snapshot_version;
  echo->corpus_epoch = result->corpus_epoch;
  return true;
}

/// OK when anything answered; the first shard failure otherwise.
void FinishStatus(RouterResponse* response, size_t answered) {
  if (answered > 0) return;
  for (const ShardEcho& echo : response->shards) {
    if (!echo.status.ok()) {
      response->status = echo.status;
      return;
    }
  }
  response->status = Status::Unavailable("router has no shards");
}

}  // namespace

ShardRouter::ShardRouter(
    std::vector<std::unique_ptr<ipc::ShardClient>> shards,
    RouterOptions options)
    : shards_(std::move(shards)), options_(options) {}

ShardRouter::~ShardRouter() { Close(); }

void ShardRouter::Close() {
  for (const std::unique_ptr<ipc::ShardClient>& shard : shards_) {
    shard->Close();
  }
}

RouterResponse ShardRouter::ClassifyOnShard(
    size_t shard, const ipc::ClassifyRequest& request) {
  RouterResponse response;
  response.fast_path = true;
  response.shards.resize(1);
  response.shards[0].shard_id = static_cast<uint32_t>(shard);
  Result<uint64_t> inflight = shards_[shard]->SendClassify(request);
  Result<ipc::ClassifyResponse> result =
      inflight.ok() ? shards_[shard]->AwaitClassify(*inflight)
                    : Result<ipc::ClassifyResponse>(inflight.status());
  size_t answered = 0;
  if (Gather(result, &response.shards[0], &response.partial)) {
    ++answered;
    if (result->best.entry >= 0) {
      response.classification.entry = static_cast<int>(result->best.entry);
      response.classification.similarity = result->best.similarity;
    }
  }
  FinishStatus(&response, answered);
  return response;
}

RouterResponse ShardRouter::Classify(const forms::FormPageDocument& doc,
                                     ContentConfig config,
                                     double deadline_ms) {
  ipc::ClassifyRequest request;
  request.doc = ipc::WireDocument::FromDocument(doc);
  request.config = config;
  request.deadline_ms = deadline_ms;

  if (options_.classify_fast_path && !doc.url.empty() &&
      !shards_.empty()) {
    // One RPC to the shard that owns the page's site. Exact for corpus
    // pages (see RouterOptions::classify_fast_path); URL-less documents
    // fall through to the scatter below.
    const size_t owner =
        ShardForSite(web::SiteOf(doc.url), shards_.size());
    return ClassifyOnShard(owner, request);
  }

  RouterResponse response;
  response.shards.resize(shards_.size());
  // Scatter first (sends only enqueue), so shards score concurrently ...
  std::vector<Result<uint64_t>> inflight;
  inflight.reserve(shards_.size());
  for (size_t s = 0; s < shards_.size(); ++s) {
    response.shards[s].shard_id = static_cast<uint32_t>(s);
    inflight.push_back(shards_[s]->SendClassify(request));
  }
  // ... then gather and merge under the scan's exact tie rule: strict
  // similarity improvement, lowest global index wins equals.
  size_t answered = 0;
  bool have_best = false;
  ipc::WireHit best;
  for (size_t s = 0; s < shards_.size(); ++s) {
    Result<ipc::ClassifyResponse> result =
        inflight[s].ok() ? shards_[s]->AwaitClassify(*inflight[s])
                         : Result<ipc::ClassifyResponse>(
                               inflight[s].status());
    if (!Gather(result, &response.shards[s], &response.partial)) continue;
    ++answered;
    if (result->best.entry < 0) continue;  // shard hosts no sections
    if (!have_best || result->best.similarity > best.similarity ||
        (result->best.similarity == best.similarity &&
         result->best.entry < best.entry)) {
      best = result->best;
      have_best = true;
    }
  }
  if (have_best) {
    response.classification.entry = static_cast<int>(best.entry);
    response.classification.similarity = best.similarity;
  }
  FinishStatus(&response, answered);
  return response;
}

RouterResponse ShardRouter::Search(std::string_view query, size_t top_k,
                                   double deadline_ms) {
  ipc::SearchRequest request;
  request.query = std::string(query);
  request.top_k = top_k;
  request.deadline_ms = deadline_ms;

  RouterResponse response;
  response.shards.resize(shards_.size());
  std::vector<Result<uint64_t>> inflight;
  inflight.reserve(shards_.size());
  for (size_t s = 0; s < shards_.size(); ++s) {
    response.shards[s].shard_id = static_cast<uint32_t>(s);
    inflight.push_back(shards_[s]->SendSearch(request));
  }
  size_t answered = 0;
  std::vector<DatabaseDirectory::SearchHit> merged;
  std::unordered_set<int64_t> seen;
  for (size_t s = 0; s < shards_.size(); ++s) {
    Result<ipc::SearchResponse> result =
        inflight[s].ok() ? shards_[s]->AwaitSearch(*inflight[s])
                         : Result<ipc::SearchResponse>(
                               inflight[s].status());
    if (!Gather(result, &response.shards[s], &response.partial)) continue;
    ++answered;
    for (const ipc::WireHit& hit : result->hits) {
      // A section hosted by several shards (members on each) arrives once
      // per host with a bit-identical similarity — keep the first.
      if (!seen.insert(hit.entry).second) continue;
      merged.push_back(
          {static_cast<int>(hit.entry), hit.similarity});
    }
  }
  // The same total order RankHits applies inside each shard, so merging
  // and re-truncating reproduces the single-directory ranking exactly.
  std::sort(merged.begin(), merged.end(),
            [](const DatabaseDirectory::SearchHit& a,
               const DatabaseDirectory::SearchHit& b) {
              if (a.similarity != b.similarity) {
                return a.similarity > b.similarity;
              }
              return a.entry < b.entry;
            });
  if (merged.size() > top_k) merged.resize(top_k);
  response.hits = std::move(merged);
  FinishStatus(&response, answered);
  return response;
}

std::vector<Result<ServerStats>> ShardRouter::PerShardStats() {
  std::vector<Result<uint64_t>> inflight;
  inflight.reserve(shards_.size());
  for (const std::unique_ptr<ipc::ShardClient>& shard : shards_) {
    inflight.push_back(shard->SendStats(ipc::StatsRequest{}));
  }
  std::vector<Result<ServerStats>> out;
  out.reserve(shards_.size());
  for (size_t s = 0; s < shards_.size(); ++s) {
    if (!inflight[s].ok()) {
      out.push_back(inflight[s].status());
      continue;
    }
    Result<ipc::StatsResponse> result =
        shards_[s]->AwaitStats(*inflight[s]);
    if (!result.ok()) {
      out.push_back(result.status());
      continue;
    }
    out.push_back(FromWireStats(*result));
  }
  return out;
}

Result<ServerStats> ShardRouter::Stats() {
  std::vector<Result<ServerStats>> per_shard = PerShardStats();
  ServerStats merged;
  size_t reachable = 0;
  Status first_error = Status::OK();
  for (const Result<ServerStats>& stats : per_shard) {
    if (!stats.ok()) {
      if (first_error.ok()) first_error = stats.status();
      continue;
    }
    merged.Merge(*stats);
    ++reachable;
  }
  if (reachable == 0) {
    return first_error.ok()
               ? Status::Unavailable("router has no shards")
               : first_error;
  }
  return merged;
}

std::vector<Result<ipc::EpochResponse>> ShardRouter::Epochs() {
  std::vector<Result<uint64_t>> inflight;
  inflight.reserve(shards_.size());
  for (const std::unique_ptr<ipc::ShardClient>& shard : shards_) {
    inflight.push_back(shard->SendEpoch(ipc::EpochRequest{}));
  }
  std::vector<Result<ipc::EpochResponse>> out;
  out.reserve(shards_.size());
  for (size_t s = 0; s < shards_.size(); ++s) {
    if (!inflight[s].ok()) {
      out.push_back(inflight[s].status());
      continue;
    }
    out.push_back(shards_[s]->AwaitEpoch(*inflight[s]));
  }
  return out;
}

}  // namespace cafc::serve
