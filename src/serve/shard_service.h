#ifndef CAFC_SERVE_SHARD_SERVICE_H_
#define CAFC_SERVE_SHARD_SERVICE_H_

#include <cstdint>
#include <memory>
#include <thread>
#include <vector>

#include "ipc/message.h"
#include "ipc/pipe.h"
#include "ipc/shard_rpc.h"
#include "serve/server.h"
#include "util/status.h"

namespace cafc::serve {

/// Converts lifetime stats to/from their wire mirror (the ipc layer sits
/// below serve, so the boundary translation lives here). Storage gauges
/// do not travel — the Stats RPC reports serving work, and the router
/// re-merges with ServerStats::Merge on its side.
ipc::StatsResponse ToWireStats(const ServerStats& stats);
ServerStats FromWireStats(const ipc::StatsResponse& wire);

/// \brief The shard end of the scatter-gather service: an ipc::ShardHandler
/// that answers Classify/Search/Stats/Epoch out of one DirectoryServer.
///
/// The handler owns the local->global section translation: the RPC speaks
/// *global* section indices (so the router can merge rankings without
/// knowing the partition), while the wrapped server scores its local
/// projection. Thread-safe — handlers may be driven by any number of
/// ServeLoop threads; DirectoryServer::Query does the synchronization.
///
/// After a local refresh reshapes the shard's sections the frozen mapping
/// no longer describes them; local indices past its end fail Internal
/// rather than mislabel (re-partitioning rebuilds the mapping — see
/// docs/sharding.md).
class DirectoryShardService : public ipc::ShardHandler {
 public:
  /// `server` must outlive the service. `global_sections[i]` is the
  /// global index of the server's section i.
  DirectoryShardService(DirectoryServer* server,
                        std::vector<uint32_t> global_sections,
                        uint32_t shard_id, uint32_t num_shards);

  Result<ipc::ClassifyResponse> HandleClassify(
      const ipc::ClassifyRequest& request) override;
  Result<ipc::SearchResponse> HandleSearch(
      const ipc::SearchRequest& request) override;
  Result<ipc::StatsResponse> HandleStats(
      const ipc::StatsRequest& request) override;
  Result<ipc::EpochResponse> HandleEpoch(
      const ipc::EpochRequest& request) override;

 private:
  Result<int64_t> ToGlobal(int local_entry) const;

  DirectoryServer* server_;
  std::vector<uint32_t> global_sections_;
  uint32_t shard_id_;
  uint32_t num_shards_;
};

/// \brief Drives a handler over one pipe endpoint with `threads` service
/// threads — N-way request concurrency per shard (responses carry request
/// ids, so out-of-order completion is part of the protocol).
///
/// Owns the endpoint; Shutdown (or destruction) closes it and joins the
/// threads. The handler must outlive the host.
class ShardServiceHost {
 public:
  ShardServiceHost(std::unique_ptr<ipc::MessagePipe> pipe,
                   ipc::ShardHandler* handler, size_t threads);
  ~ShardServiceHost();

  ShardServiceHost(const ShardServiceHost&) = delete;
  ShardServiceHost& operator=(const ShardServiceHost&) = delete;

  /// Closes the pipe (clients see Unavailable) and joins. Idempotent.
  void Shutdown();

 private:
  std::unique_ptr<ipc::MessagePipe> pipe_;
  std::vector<std::thread> threads_;
  bool shut_down_ = false;
};

}  // namespace cafc::serve

#endif  // CAFC_SERVE_SHARD_SERVICE_H_
