#ifndef CAFC_SERVE_RESULT_CACHE_H_
#define CAFC_SERVE_RESULT_CACHE_H_

#include <cstddef>
#include <cstdint>
#include <list>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/directory.h"

namespace cafc::serve {

/// One cached answer, tagged with the snapshot it was computed against.
/// Exactly one of `classification` / `hits` is meaningful (mirrors
/// QueryResponse).
struct CachedAnswer {
  DatabaseDirectory::Classification classification;
  std::vector<DatabaseDirectory::SearchHit> hits;
  bool is_search = false;
  /// Publish sequence + corpus epoch of the snapshot that computed this
  /// answer. The freshness tag: a fresh lookup must match the currently
  /// published version exactly.
  uint64_t snapshot_version = 0;
  uint64_t corpus_epoch = 0;
};

/// Lifetime counters + size gauges of one cache.
struct ResultCacheStats {
  uint64_t hits = 0;        ///< fresh lookups that matched
  uint64_t misses = 0;      ///< fresh lookups that did not
  uint64_t stale_hits = 0;  ///< any-version lookups that matched
  uint64_t evictions = 0;   ///< entries dropped to hold the byte budget
  uint64_t inserts = 0;     ///< Insert calls (replacements included)
  uint64_t bytes = 0;       ///< estimated resident bytes now (gauge)
  uint64_t entries = 0;     ///< entries resident now (gauge)
};

/// \brief Byte-budgeted LRU cache of Classify/Search answers, keyed by the
/// request's exact content and tagged by snapshot version.
///
/// Keys are *exact* — the full canonical encoding of the request (terms,
/// locations, config, top_k), never a lossy hash — so a cache hit is
/// bit-identical to recomputing by construction; there is no collision
/// mode in which the cache can serve a wrong answer.
///
/// Epoch keying: every entry records the snapshot version that computed
/// it. `Lookup` (the fresh path) requires an exact version match, so a
/// snapshot swap invalidates the whole cache wholesale in O(1) — nothing
/// is swept; superseded entries age out through LRU pressure or are
/// overwritten when their key is next recomputed. `LookupAny` is the
/// degradation path: it returns whatever version is resident so the
/// server can answer from a stale snapshot under overload — the caller
/// must flag such responses stale (DegradePolicy, QueryResponse::stale).
///
/// Thread-safe; one mutex (the payload copy is small — an entry index or
/// a top-k hit list).
class ResultCache {
 public:
  /// `byte_budget` bounds the estimated resident size (keys + payloads +
  /// bookkeeping). 0 disables the cache: lookups miss, inserts drop.
  explicit ResultCache(size_t byte_budget);

  ResultCache(const ResultCache&) = delete;
  ResultCache& operator=(const ResultCache&) = delete;

  /// Fresh lookup: hit only when the resident entry was computed at
  /// exactly `snapshot_version`. Refreshes LRU position on hit.
  bool Lookup(const std::string& key, uint64_t snapshot_version,
              CachedAnswer* out);

  /// Stale-tolerant lookup for the overload path: any resident version.
  /// Does not refresh LRU position (a stale answer should not outcompete
  /// fresh entries for residency).
  bool LookupAny(const std::string& key, CachedAnswer* out);

  /// Inserts (or replaces) the entry for `key`, then evicts LRU entries
  /// until the estimate fits the budget. An answer too large for the
  /// whole budget is dropped.
  void Insert(const std::string& key, CachedAnswer answer);

  /// Drops every entry (counters survive).
  void Clear();

  ResultCacheStats Stats() const;

  size_t byte_budget() const { return byte_budget_; }

 private:
  struct Entry {
    std::string key;
    CachedAnswer answer;
    size_t bytes = 0;
  };
  using LruList = std::list<Entry>;

  static size_t EntryBytes(const std::string& key,
                           const CachedAnswer& answer);
  /// Unlinks + erases one entry; caller holds the mutex.
  void EraseLocked(LruList::iterator it);

  const size_t byte_budget_;
  mutable std::mutex mutex_;
  LruList lru_;  // front = most recently used
  std::unordered_map<std::string, LruList::iterator> index_;
  uint64_t bytes_ = 0;
  ResultCacheStats stats_;
};

}  // namespace cafc::serve

#endif  // CAFC_SERVE_RESULT_CACHE_H_
