#include "ipc/shard_rpc.h"

#include <string>
#include <utility>

namespace cafc::ipc {

ShardClient::ShardClient(std::unique_ptr<MessagePipe> pipe)
    : pipe_(std::move(pipe)) {}

ShardClient::~ShardClient() { Close(); }

void ShardClient::Close() {
  pipe_->Close();
  std::lock_guard<std::mutex> lock(mutex_);
  if (broken_.ok()) broken_ = Status::Unavailable("shard client closed");
  cv_.notify_all();
}

Result<uint64_t> ShardClient::SendEnvelope(MethodId method,
                                           std::string payload) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (!broken_.ok()) return broken_;
  }
  RequestEnvelope envelope;
  envelope.request_id = next_request_id_.fetch_add(1);
  envelope.method = method;
  envelope.payload = std::move(payload);
  std::string bytes;
  envelope.EncodeTo(&bytes);
  Status status = pipe_->Send(bytes);
  if (!status.ok()) {
    std::lock_guard<std::mutex> lock(mutex_);
    if (broken_.ok()) broken_ = status;
    cv_.notify_all();
    return broken_;
  }
  return envelope.request_id;
}

Result<ResponseEnvelope> ShardClient::AwaitEnvelope(uint64_t request_id) {
  std::unique_lock<std::mutex> lock(mutex_);
  while (true) {
    auto it = ready_.find(request_id);
    if (it != ready_.end()) {
      ResponseEnvelope envelope = std::move(it->second);
      ready_.erase(it);
      return envelope;
    }
    if (!broken_.ok()) return broken_;
    if (receiving_) {
      // Another caller is draining the pipe; it will stash our response
      // (or record the failure) and wake us.
      cv_.wait(lock);
      continue;
    }
    receiving_ = true;
    lock.unlock();
    std::string message;
    Status status = pipe_->Recv(&message);
    ResponseEnvelope envelope;
    if (status.ok()) {
      util::ByteReader reader(message);
      status = envelope.DecodeFrom(&reader);
    }
    lock.lock();
    receiving_ = false;
    if (!status.ok()) {
      // A transport or envelope failure is unrecoverable: responses can
      // no longer be matched. Poison every caller.
      if (broken_.ok()) broken_ = status;
      cv_.notify_all();
      return broken_;
    }
    ready_[envelope.request_id] = std::move(envelope);
    cv_.notify_all();
  }
}

#define CAFC_IPC_CLIENT_IMPL(Name, id, Req, Resp)                         \
  Result<uint64_t> ShardClient::Send##Name(const Req& request) {          \
    std::string payload;                                                  \
    request.EncodeTo(&payload);                                           \
    return SendEnvelope(MethodId::k##Name, std::move(payload));           \
  }                                                                       \
  Result<Resp> ShardClient::Await##Name(uint64_t request_id) {            \
    Result<ResponseEnvelope> envelope = AwaitEnvelope(request_id);        \
    if (!envelope.ok()) return envelope.status();                         \
    if (envelope->method != MethodId::k##Name) {                          \
      return Status::Internal(                                            \
          std::string("response method mismatch: expected " #Name        \
                      ", got ") +                                         \
          MethodName(envelope->method));                                  \
    }                                                                     \
    Status remote = envelope->status();                                   \
    if (!remote.ok()) return remote;                                      \
    Resp response;                                                        \
    util::ByteReader reader(envelope->payload);                           \
    Status status = response.DecodeFrom(&reader);                         \
    if (!status.ok()) return status;                                      \
    return response;                                                      \
  }                                                                       \
  Result<Resp> ShardClient::Name(const Req& request) {                    \
    Result<uint64_t> request_id = Send##Name(request);                    \
    if (!request_id.ok()) return request_id.status();                     \
    return Await##Name(*request_id);                                      \
  }
CAFC_IPC_METHOD_LIST(CAFC_IPC_CLIENT_IMPL)
#undef CAFC_IPC_CLIENT_IMPL

namespace {

/// Decodes, dispatches, and encodes one request. Failures become error
/// envelopes — the caller still gets an answer for its request id.
ResponseEnvelope DispatchOne(const RequestEnvelope& request,
                             ShardHandler* handler) {
  ResponseEnvelope response;
  response.request_id = request.request_id;
  response.method = request.method;
  auto fail = [&response](const Status& status) {
    response.status_code = static_cast<uint32_t>(status.code());
    response.status_message = status.message();
  };
  switch (request.method) {
#define CAFC_IPC_DISPATCH_CASE(Name, id, Req, Resp)          \
  case MethodId::k##Name: {                                  \
    Req typed;                                               \
    util::ByteReader reader(request.payload);                \
    Status status = typed.DecodeFrom(&reader);               \
    if (!status.ok()) {                                      \
      fail(status);                                          \
      break;                                                 \
    }                                                        \
    Result<Resp> result = handler->Handle##Name(typed);      \
    if (!result.ok()) {                                      \
      fail(result.status());                                 \
      break;                                                 \
    }                                                        \
    result->EncodeTo(&response.payload);                     \
    break;                                                   \
  }
    CAFC_IPC_METHOD_LIST(CAFC_IPC_DISPATCH_CASE)
#undef CAFC_IPC_DISPATCH_CASE
  }
  return response;
}

}  // namespace

Status ServeLoop(MessagePipe* pipe, ShardHandler* handler) {
  while (true) {
    std::string message;
    Status status = pipe->Recv(&message);
    if (!status.ok()) {
      return status.code() == StatusCode::kUnavailable ? Status::OK()
                                                       : status;
    }
    RequestEnvelope request;
    util::ByteReader reader(message);
    status = request.DecodeFrom(&reader);
    if (!status.ok()) {
      // The envelope itself was malformed — there is no request id to
      // answer to. Drop the message; the frame layer already guarantees
      // we are still aligned on frame boundaries.
      continue;
    }
    ResponseEnvelope response = DispatchOne(request, handler);
    std::string bytes;
    response.EncodeTo(&bytes);
    status = pipe->Send(bytes);
    if (!status.ok()) {
      return status.code() == StatusCode::kUnavailable ? Status::OK()
                                                       : status;
    }
  }
}

}  // namespace cafc::ipc
