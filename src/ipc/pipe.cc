#include "ipc/pipe.h"

#include <errno.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <condition_variable>
#include <cstring>
#include <deque>
#include <mutex>

#include "ipc/frame.h"

namespace cafc::ipc {
namespace {

/// Shared state of one direction of an in-process pair: a queue of
/// already-framed byte chunks plus the receiving side's decoder.
struct InProcessStream {
  std::mutex mutex;
  std::condition_variable cv;
  std::deque<std::string> chunks;  // raw frame bytes, send order
  FrameDecoder decoder;            // guarded by mutex (drained by Recv)
  bool closed = false;
};

class InProcessEndpoint : public MessagePipe {
 public:
  InProcessEndpoint(std::shared_ptr<InProcessStream> outgoing,
                    std::shared_ptr<InProcessStream> incoming)
      : outgoing_(std::move(outgoing)), incoming_(std::move(incoming)) {}

  ~InProcessEndpoint() override { Close(); }

  Status Send(std::string_view message) override {
    std::string frame;
    EncodeFrame(message, &frame);
    {
      std::lock_guard<std::mutex> lock(outgoing_->mutex);
      if (outgoing_->closed) {
        return Status::Unavailable("in-process pipe: closed");
      }
      outgoing_->chunks.push_back(std::move(frame));
    }
    outgoing_->cv.notify_one();
    return Status::OK();
  }

  Status Recv(std::string* message) override {
    std::unique_lock<std::mutex> lock(incoming_->mutex);
    while (true) {
      bool have_frame = false;
      Status status = incoming_->decoder.Next(message, &have_frame);
      if (!status.ok()) return status;
      if (have_frame) return Status::OK();
      if (!incoming_->chunks.empty()) {
        incoming_->decoder.Append(incoming_->chunks.front());
        incoming_->chunks.pop_front();
        continue;
      }
      if (incoming_->closed) {
        return Status::Unavailable("in-process pipe: closed");
      }
      incoming_->cv.wait(lock);
    }
  }

  void Close() override {
    for (const std::shared_ptr<InProcessStream>& stream :
         {outgoing_, incoming_}) {
      {
        std::lock_guard<std::mutex> lock(stream->mutex);
        stream->closed = true;
      }
      stream->cv.notify_all();
    }
  }

 private:
  std::shared_ptr<InProcessStream> outgoing_;
  std::shared_ptr<InProcessStream> incoming_;
};

class FdEndpoint : public MessagePipe {
 public:
  FdEndpoint(int read_fd, int write_fd)
      : read_fd_(read_fd), write_fd_(write_fd) {}

  ~FdEndpoint() override { Close(); }

  Status Send(std::string_view message) override {
    std::string frame;
    EncodeFrame(message, &frame);
    std::lock_guard<std::mutex> lock(send_mutex_);
    if (closed_.load(std::memory_order_acquire)) {
      return Status::Unavailable("fd pipe: closed");
    }
    size_t written = 0;
    while (written < frame.size()) {
      const ssize_t n = ::write(write_fd_, frame.data() + written,
                                frame.size() - written);
      if (n < 0) {
        if (errno == EINTR) continue;
        return Status::Unavailable(std::string("fd pipe: write failed: ") +
                                   std::strerror(errno));
      }
      written += static_cast<size_t>(n);
    }
    return Status::OK();
  }

  Status Recv(std::string* message) override {
    std::lock_guard<std::mutex> lock(recv_mutex_);
    while (true) {
      bool have_frame = false;
      Status status = decoder_.Next(message, &have_frame);
      if (!status.ok()) return status;
      if (have_frame) return Status::OK();
      if (closed_.load(std::memory_order_acquire)) {
        return Status::Unavailable("fd pipe: closed");
      }
      char buffer[16384];
      const ssize_t n = ::read(read_fd_, buffer, sizeof(buffer));
      if (n < 0) {
        if (errno == EINTR) continue;
        return Status::Unavailable(std::string("fd pipe: read failed: ") +
                                   std::strerror(errno));
      }
      if (n == 0) {
        if (decoder_.buffered_bytes() > 0) {
          return Status::ParseError(
              "fd pipe: stream ended mid-frame (truncated)");
        }
        return Status::Unavailable("fd pipe: peer closed");
      }
      decoder_.Append(std::string_view(buffer, static_cast<size_t>(n)));
    }
  }

  void Close() override {
    bool expected = false;
    if (!closed_.compare_exchange_strong(expected, true)) return;
    // Shut the socket down (wakes a peer blocked in read) before closing;
    // plain pipes ignore shutdown and rely on close's EOF.
    ::shutdown(read_fd_, SHUT_RDWR);
    if (write_fd_ != read_fd_) ::shutdown(write_fd_, SHUT_RDWR);
    ::close(read_fd_);
    if (write_fd_ != read_fd_) ::close(write_fd_);
  }

 private:
  int read_fd_;
  int write_fd_;
  std::atomic<bool> closed_{false};
  std::mutex send_mutex_;
  std::mutex recv_mutex_;
  FrameDecoder decoder_;  // guarded by recv_mutex_
};

}  // namespace

std::pair<std::unique_ptr<MessagePipe>, std::unique_ptr<MessagePipe>>
CreateInProcessPipePair() {
  auto a_to_b = std::make_shared<InProcessStream>();
  auto b_to_a = std::make_shared<InProcessStream>();
  return {std::make_unique<InProcessEndpoint>(a_to_b, b_to_a),
          std::make_unique<InProcessEndpoint>(b_to_a, a_to_b)};
}

std::unique_ptr<MessagePipe> CreateFdPipe(int read_fd, int write_fd) {
  return std::make_unique<FdEndpoint>(read_fd, write_fd);
}

Result<std::pair<std::unique_ptr<MessagePipe>, std::unique_ptr<MessagePipe>>>
CreateSocketPipePair() {
  int fds[2];
  if (::socketpair(AF_UNIX, SOCK_STREAM, 0, fds) != 0) {
    return Status::Internal(std::string("socketpair failed: ") +
                            std::strerror(errno));
  }
  return std::make_pair(CreateFdPipe(fds[0], fds[0]),
                        CreateFdPipe(fds[1], fds[1]));
}

}  // namespace cafc::ipc
