#ifndef CAFC_IPC_MESSAGE_DEFS_H_
#define CAFC_IPC_MESSAGE_DEFS_H_

/// \brief The message descriptor of the shard RPC protocol.
///
/// Every method of the protocol is one row of this X-macro:
///
///   X(Name, wire_id, RequestType, ResponseType)
///
/// The table is the single source of truth — `message.h` expands it into
/// the MethodId enum and MethodName(); `shard_rpc.h` expands it into the
/// typed client bindings (one synchronous and one pipelined pair per
/// method) and the service dispatch switch. Adding a method means adding a
/// row and implementing the two message structs; the bindings and the
/// dispatcher follow mechanically. Wire ids are part of the protocol —
/// append rows, never renumber.
#define CAFC_IPC_METHOD_LIST(X)                       \
  X(Classify, 1, ClassifyRequest, ClassifyResponse)   \
  X(Search, 2, SearchRequest, SearchResponse)         \
  X(Stats, 3, StatsRequest, StatsResponse)            \
  X(Epoch, 4, EpochRequest, EpochResponse)

#endif  // CAFC_IPC_MESSAGE_DEFS_H_
