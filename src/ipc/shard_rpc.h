#ifndef CAFC_IPC_SHARD_RPC_H_
#define CAFC_IPC_SHARD_RPC_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <unordered_map>

#include "ipc/message.h"
#include "ipc/pipe.h"
#include "util/status.h"

namespace cafc::ipc {

/// \brief Typed client stub over one MessagePipe, generated from the
/// descriptor table.
///
/// Two calling conventions per method:
///  - synchronous: `Classify(request)` sends and blocks for the response;
///  - pipelined: `SendClassify(request)` returns a request id immediately,
///    `AwaitClassify(id)` collects the response later — several calls can
///    be in flight on one pipe, and responses may return out of order.
///
/// Thread-safe: any number of threads may call concurrently; a shared-
/// receiver protocol matches responses to callers by request id (one
/// blocked caller drains the pipe and hands strays to their waiters).
/// Once the pipe fails (closed peer, corrupt stream) the client is
/// poisoned: every outstanding and future call fails with that status —
/// a dead shard answers fast, it does not hang the router.
class ShardClient {
 public:
  explicit ShardClient(std::unique_ptr<MessagePipe> pipe);
  ~ShardClient();

  ShardClient(const ShardClient&) = delete;
  ShardClient& operator=(const ShardClient&) = delete;

  // Typed bindings, expanded from the descriptor table: for each method
  //   Result<Resp> Name(const Req&);            — synchronous call
  //   Result<uint64_t> SendName(const Req&);    — pipelined send
  //   Result<Resp> AwaitName(uint64_t id);      — pipelined collect
#define CAFC_IPC_CLIENT_BINDING(Name, id, Req, Resp) \
  Result<Resp> Name(const Req& request);             \
  Result<uint64_t> Send##Name(const Req& request);   \
  Result<Resp> Await##Name(uint64_t request_id);
  CAFC_IPC_METHOD_LIST(CAFC_IPC_CLIENT_BINDING)
#undef CAFC_IPC_CLIENT_BINDING

  /// Closes the underlying pipe; everything in flight fails Unavailable.
  void Close();

 private:
  Result<uint64_t> SendEnvelope(MethodId method, std::string payload);
  /// Blocks until the response for `request_id` arrives (possibly
  /// receiving and stashing other callers' responses on the way).
  Result<ResponseEnvelope> AwaitEnvelope(uint64_t request_id);

  std::unique_ptr<MessagePipe> pipe_;
  std::atomic<uint64_t> next_request_id_{1};

  std::mutex mutex_;
  std::condition_variable cv_;
  bool receiving_ = false;  // one caller at a time drains the pipe
  std::unordered_map<uint64_t, ResponseEnvelope> ready_;  // stashed strays
  Status broken_ = Status::OK();  // first pipe failure; poisons the client
};

/// \brief The service side: what a shard backend implements, one handler
/// per descriptor row. Handlers run on whatever thread drives ServeLoop
/// and must be thread-safe when several loops share one handler.
class ShardHandler {
 public:
  virtual ~ShardHandler() = default;
#define CAFC_IPC_HANDLER_BINDING(Name, id, Req, Resp) \
  virtual Result<Resp> Handle##Name(const Req& request) = 0;
  CAFC_IPC_METHOD_LIST(CAFC_IPC_HANDLER_BINDING)
#undef CAFC_IPC_HANDLER_BINDING
};

/// \brief Dispatch loop of one service thread: Recv request envelopes,
/// decode, dispatch to `handler`, Send response envelopes (with the
/// handler's status on failure) — until the pipe closes.
///
/// Run it on N threads over one pipe for N-way request concurrency (the
/// pipe's Recv/Send are synchronized; responses carry request ids, so
/// out-of-order completion is fine). Malformed requests are answered with
/// an error envelope when the request id could be parsed and dropped
/// otherwise; only transport failure ends the loop.
///
/// Returns OK when the pipe closed normally, else the transport error.
Status ServeLoop(MessagePipe* pipe, ShardHandler* handler);

}  // namespace cafc::ipc

#endif  // CAFC_IPC_SHARD_RPC_H_
