#ifndef CAFC_IPC_FRAME_H_
#define CAFC_IPC_FRAME_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

#include "util/status.h"

namespace cafc::ipc {

/// \brief Length-prefixed message framing of the shard RPC byte streams.
///
/// A frame is:
///
///   fixed32  magic     "CAFR" (0x52464143 little-endian on the wire)
///   fixed32  length    payload bytes, <= kMaxFramePayload
///   fixed64  checksum  util::Checksum64 of the payload
///   bytes    payload   `length` opaque bytes
///
/// The decoder is written for hostile bytes: the magic and the declared
/// length are validated *before* any allocation, the length is capped, and
/// the checksum covers the payload so a bit-flipped length (one that still
/// passes the cap) desynchronizes into a checksum mismatch instead of a
/// silently wrong message. Every failure is a clean Status — a corrupt
/// stream can never crash the decoder or make it allocate unboundedly.

inline constexpr uint32_t kFrameMagic = 0x52464143u;  // "CAFR"
inline constexpr size_t kFrameHeaderBytes = 16;
/// Upper bound on one frame's payload. Far above any real message (the
/// largest is a classify document) while keeping a hostile length prefix
/// from driving allocation: 64 MiB.
inline constexpr size_t kMaxFramePayload = 64u << 20;

/// Appends one complete frame around `payload` to `out`.
void EncodeFrame(std::string_view payload, std::string* out);

/// \brief Incremental frame decoder over an untrusted byte stream.
///
/// Feed arbitrary chunks with Append (chunk boundaries need not align with
/// frames), then pop complete frames with Next. Once a stream error is
/// detected (bad magic, oversized length, checksum mismatch) the decoder
/// is poisoned: every further Next returns the same error, because a
/// framing error leaves no way to resynchronize.
class FrameDecoder {
 public:
  /// Buffers `bytes` for decoding.
  void Append(std::string_view bytes);

  /// Extracts the next complete frame. On success sets `*have_frame` and
  /// fills `*payload`; when the buffered bytes end mid-frame, clears
  /// `*have_frame` and returns OK (feed more bytes). Corruption returns
  /// kParseError and poisons the decoder.
  Status Next(std::string* payload, bool* have_frame);

  /// Bytes buffered but not yet consumed (tests; bounded by one frame plus
  /// one read chunk in steady state).
  size_t buffered_bytes() const { return buffer_.size() - pos_; }

 private:
  std::string buffer_;
  size_t pos_ = 0;
  Status error_ = Status::OK();
};

}  // namespace cafc::ipc

#endif  // CAFC_IPC_FRAME_H_
