#include "ipc/frame.h"

#include <cstdio>
#include <string>

#include "util/varint.h"

namespace cafc::ipc {
namespace {

std::string Hex32(uint32_t value) {
  char buf[16];
  std::snprintf(buf, sizeof(buf), "%08x", value);
  return std::string(buf);
}

}  // namespace

void EncodeFrame(std::string_view payload, std::string* out) {
  util::PutFixed32(out, kFrameMagic);
  util::PutFixed32(out, static_cast<uint32_t>(payload.size()));
  util::PutFixed64(out, util::Checksum64(payload));
  out->append(payload);
}

void FrameDecoder::Append(std::string_view bytes) {
  // Drop the consumed prefix before it grows without bound; amortized O(1)
  // because we only compact when the dead prefix dominates the buffer.
  if (pos_ > 4096 && pos_ > buffer_.size() / 2) {
    buffer_.erase(0, pos_);
    pos_ = 0;
  }
  buffer_.append(bytes);
}

Status FrameDecoder::Next(std::string* payload, bool* have_frame) {
  *have_frame = false;
  if (!error_.ok()) return error_;
  const size_t available = buffer_.size() - pos_;
  if (available < kFrameHeaderBytes) return Status::OK();

  util::ByteReader reader(
      reinterpret_cast<const uint8_t*>(buffer_.data()) + pos_, available);
  uint32_t magic = 0;
  uint32_t length = 0;
  uint64_t checksum = 0;
  // The header reads cannot fail: available >= kFrameHeaderBytes.
  (void)reader.ReadFixed32(&magic);
  (void)reader.ReadFixed32(&length);
  (void)reader.ReadFixed64(&checksum);

  // Validate before allocating anything: a hostile or bit-flipped header
  // must not be able to drive memory use.
  if (magic != kFrameMagic) {
    error_ = Status::ParseError("frame: bad magic 0x" + Hex32(magic));
    return error_;
  }
  if (length > kMaxFramePayload) {
    error_ = Status::ParseError(
        "frame: declared payload of " + std::to_string(length) +
        " bytes exceeds the " + std::to_string(kMaxFramePayload) +
        "-byte cap");
    return error_;
  }
  if (available < kFrameHeaderBytes + length) return Status::OK();

  std::string_view body(buffer_.data() + pos_ + kFrameHeaderBytes, length);
  if (util::Checksum64(body) != checksum) {
    error_ = Status::ParseError(
        "frame: payload checksum mismatch (corrupt or desynchronized "
        "stream)");
    return error_;
  }
  payload->assign(body);
  pos_ += kFrameHeaderBytes + length;
  *have_frame = true;
  return Status::OK();
}

}  // namespace cafc::ipc
