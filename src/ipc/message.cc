#include "ipc/message.h"

#include <cassert>
#include <cstring>
#include <unordered_map>
#include <utility>

#include "vsm/term_dictionary.h"
#include "vsm/weighting.h"

namespace cafc::ipc {
namespace {

/// Doubles travel as IEEE-754 bit patterns in fixed64 — decimal
/// round-trips would break the scatter-gather bit-identity gates.
void PutDouble(std::string* out, double value) {
  uint64_t bits;
  std::memcpy(&bits, &value, sizeof(bits));
  util::PutFixed64(out, bits);
}

Status ReadDouble(util::ByteReader* reader, double* value) {
  uint64_t bits = 0;
  Status status = reader->ReadFixed64(&bits);
  if (!status.ok()) return status;
  std::memcpy(value, &bits, sizeof(*value));
  return Status::OK();
}

void PutString(std::string* out, std::string_view s) {
  util::PutVarint64(out, s.size());
  out->append(s);
}

Status ReadString(util::ByteReader* reader, std::string* s) {
  uint64_t size = 0;
  Status status = reader->ReadVarint64(&size);
  if (!status.ok()) return status;
  std::string_view bytes;
  status = reader->ReadBytes(size, &bytes);  // bounds-checked: no hostile
  if (!status.ok()) return status;           // length can over-allocate
  s->assign(bytes);
  return Status::OK();
}

void PutZigzag(std::string* out, int64_t value) {
  util::PutVarint64(out, (static_cast<uint64_t>(value) << 1) ^
                             static_cast<uint64_t>(value >> 63));
}

Status ReadZigzag(util::ByteReader* reader, int64_t* value) {
  uint64_t raw = 0;
  Status status = reader->ReadVarint64(&raw);
  if (!status.ok()) return status;
  *value = static_cast<int64_t>((raw >> 1) ^ (~(raw & 1) + 1));
  return Status::OK();
}

void PutOccurrences(
    std::string* out,
    const std::vector<std::pair<uint32_t, uint8_t>>& occurrences) {
  util::PutVarint64(out, occurrences.size());
  for (const auto& [index, location] : occurrences) {
    util::PutVarint32(out, index);
    util::PutVarint32(out, location);
  }
}

Status ReadOccurrences(
    util::ByteReader* reader, size_t num_terms,
    std::vector<std::pair<uint32_t, uint8_t>>* occurrences) {
  uint64_t count = 0;
  Status status = reader->ReadVarint64(&count);
  if (!status.ok()) return status;
  occurrences->clear();
  // No reserve(count): a hostile count must not drive allocation. Each
  // decoded element consumes >= 2 reader bytes, so growth is bounded by
  // the (already capped) payload size.
  for (uint64_t i = 0; i < count; ++i) {
    uint32_t index = 0;
    uint32_t location = 0;
    status = reader->ReadVarint32(&index);
    if (!status.ok()) return status;
    status = reader->ReadVarint32(&location);
    if (!status.ok()) return status;
    if (index >= num_terms) {
      return Status::ParseError(
          "wire document: occurrence references string-table index " +
          std::to_string(index) + " of " + std::to_string(num_terms));
    }
    if (location >= static_cast<uint32_t>(vsm::Location::kMaxLocation)) {
      return Status::ParseError("wire document: invalid location " +
                                std::to_string(location));
    }
    occurrences->emplace_back(index, static_cast<uint8_t>(location));
  }
  return Status::OK();
}

void PutHits(std::string* out, const std::vector<WireHit>& hits) {
  util::PutVarint64(out, hits.size());
  for (const WireHit& hit : hits) {
    PutZigzag(out, hit.entry);
    PutDouble(out, hit.similarity);
  }
}

Status ReadHits(util::ByteReader* reader, std::vector<WireHit>* hits) {
  uint64_t count = 0;
  Status status = reader->ReadVarint64(&count);
  if (!status.ok()) return status;
  hits->clear();
  for (uint64_t i = 0; i < count; ++i) {
    WireHit hit;
    status = ReadZigzag(reader, &hit.entry);
    if (!status.ok()) return status;
    status = ReadDouble(reader, &hit.similarity);
    if (!status.ok()) return status;
    hits->push_back(hit);
  }
  return Status::OK();
}

Status ReadHistogram(util::ByteReader* reader, util::Histogram* histogram) {
  if (!histogram->DecodeFrom(reader)) {
    return Status::ParseError("stats: malformed histogram encoding");
  }
  return Status::OK();
}

Status MakeStatus(uint32_t code, std::string message) {
  switch (static_cast<StatusCode>(code)) {
    case StatusCode::kOk: return Status::OK();
    case StatusCode::kInvalidArgument:
      return Status::InvalidArgument(std::move(message));
    case StatusCode::kNotFound: return Status::NotFound(std::move(message));
    case StatusCode::kOutOfRange:
      return Status::OutOfRange(std::move(message));
    case StatusCode::kParseError:
      return Status::ParseError(std::move(message));
    case StatusCode::kFailedPrecondition:
      return Status::FailedPrecondition(std::move(message));
    case StatusCode::kInternal: return Status::Internal(std::move(message));
    case StatusCode::kUnavailable:
      return Status::Unavailable(std::move(message));
    case StatusCode::kDeadlineExceeded:
      return Status::DeadlineExceeded(std::move(message));
  }
  return Status::Internal("unknown remote status code " +
                          std::to_string(code) + ": " + message);
}

}  // namespace

const char* MethodName(MethodId method) {
  switch (method) {
#define CAFC_IPC_METHOD_NAME(Name, id, Req, Resp) \
  case MethodId::k##Name:                         \
    return #Name;
    CAFC_IPC_METHOD_LIST(CAFC_IPC_METHOD_NAME)
#undef CAFC_IPC_METHOD_NAME
  }
  return "unknown";
}

bool IsKnownMethod(uint32_t value) {
  switch (static_cast<MethodId>(value)) {
#define CAFC_IPC_METHOD_KNOWN(Name, id, Req, Resp) case MethodId::k##Name:
    CAFC_IPC_METHOD_LIST(CAFC_IPC_METHOD_KNOWN)
#undef CAFC_IPC_METHOD_KNOWN
    return true;
  }
  return false;
}

WireDocument WireDocument::FromDocument(const forms::FormPageDocument& doc) {
  assert(doc.dictionary != nullptr &&
         "wire documents flatten terms by string");
  WireDocument wire;
  wire.url = doc.url;
  std::unordered_map<vsm::TermId, uint32_t> table;
  auto flatten = [&](const std::vector<vsm::InternedTerm>& occurrences,
                     std::vector<std::pair<uint32_t, uint8_t>>* out) {
    out->reserve(occurrences.size());
    for (const vsm::InternedTerm& t : occurrences) {
      auto [it, inserted] =
          table.emplace(t.term, static_cast<uint32_t>(wire.terms.size()));
      if (inserted) wire.terms.push_back(doc.dictionary->term(t.term));
      out->emplace_back(it->second,
                        static_cast<uint8_t>(t.location));
    }
  };
  flatten(doc.page_terms, &wire.page_occurrences);
  flatten(doc.form_terms, &wire.form_occurrences);
  return wire;
}

forms::FormPageDocument WireDocument::ToDocument() const {
  forms::FormPageDocument doc;
  doc.url = url;
  auto dictionary = std::make_shared<vsm::TermDictionary>();
  for (const std::string& term : terms) dictionary->Intern(term);
  auto expand = [&](const std::vector<std::pair<uint32_t, uint8_t>>& wire,
                    std::vector<vsm::InternedTerm>* out) {
    out->reserve(wire.size());
    for (const auto& [index, location] : wire) {
      out->push_back({static_cast<vsm::TermId>(index),
                      static_cast<vsm::Location>(location)});
    }
  };
  expand(page_occurrences, &doc.page_terms);
  expand(form_occurrences, &doc.form_terms);
  doc.dictionary = std::move(dictionary);
  return doc;
}

void WireDocument::EncodeTo(std::string* out) const {
  PutString(out, url);
  util::PutVarint64(out, terms.size());
  for (const std::string& term : terms) PutString(out, term);
  PutOccurrences(out, page_occurrences);
  PutOccurrences(out, form_occurrences);
}

Status WireDocument::DecodeFrom(util::ByteReader* reader) {
  Status status = ReadString(reader, &url);
  if (!status.ok()) return status;
  uint64_t num_terms = 0;
  status = reader->ReadVarint64(&num_terms);
  if (!status.ok()) return status;
  terms.clear();
  for (uint64_t i = 0; i < num_terms; ++i) {
    std::string term;
    status = ReadString(reader, &term);
    if (!status.ok()) return status;
    terms.push_back(std::move(term));
  }
  status = ReadOccurrences(reader, terms.size(), &page_occurrences);
  if (!status.ok()) return status;
  return ReadOccurrences(reader, terms.size(), &form_occurrences);
}

void ClassifyRequest::EncodeTo(std::string* out) const {
  doc.EncodeTo(out);
  util::PutVarint32(out, static_cast<uint32_t>(config));
  PutDouble(out, deadline_ms);
}

Status ClassifyRequest::DecodeFrom(util::ByteReader* reader) {
  Status status = doc.DecodeFrom(reader);
  if (!status.ok()) return status;
  uint32_t raw_config = 0;
  status = reader->ReadVarint32(&raw_config);
  if (!status.ok()) return status;
  if (raw_config > static_cast<uint32_t>(ContentConfig::kFcPlusPc)) {
    return Status::ParseError("classify: invalid content config " +
                              std::to_string(raw_config));
  }
  config = static_cast<ContentConfig>(raw_config);
  return ReadDouble(reader, &deadline_ms);
}

void ClassifyResponse::EncodeTo(std::string* out) const {
  PutZigzag(out, best.entry);
  PutDouble(out, best.similarity);
  util::PutVarint64(out, snapshot_version);
  util::PutVarint64(out, corpus_epoch);
}

Status ClassifyResponse::DecodeFrom(util::ByteReader* reader) {
  Status status = ReadZigzag(reader, &best.entry);
  if (!status.ok()) return status;
  status = ReadDouble(reader, &best.similarity);
  if (!status.ok()) return status;
  status = reader->ReadVarint64(&snapshot_version);
  if (!status.ok()) return status;
  return reader->ReadVarint64(&corpus_epoch);
}

void SearchRequest::EncodeTo(std::string* out) const {
  PutString(out, query);
  util::PutVarint64(out, top_k);
  PutDouble(out, deadline_ms);
}

Status SearchRequest::DecodeFrom(util::ByteReader* reader) {
  Status status = ReadString(reader, &query);
  if (!status.ok()) return status;
  status = reader->ReadVarint64(&top_k);
  if (!status.ok()) return status;
  return ReadDouble(reader, &deadline_ms);
}

void SearchResponse::EncodeTo(std::string* out) const {
  PutHits(out, hits);
  util::PutVarint64(out, snapshot_version);
  util::PutVarint64(out, corpus_epoch);
}

Status SearchResponse::DecodeFrom(util::ByteReader* reader) {
  Status status = ReadHits(reader, &hits);
  if (!status.ok()) return status;
  status = reader->ReadVarint64(&snapshot_version);
  if (!status.ok()) return status;
  return reader->ReadVarint64(&corpus_epoch);
}

void StatsRequest::EncodeTo(std::string*) const {}

Status StatsRequest::DecodeFrom(util::ByteReader*) {
  return Status::OK();
}

void StatsResponse::EncodeTo(std::string* out) const {
  for (uint64_t counter :
       {submitted, accepted, rejected_queue_full, rejected_stopped,
        deadline_exceeded, failed, completed, deadline_missed, cache_hits,
        cache_misses, cache_evictions, cache_entries, cache_bytes_used,
        stale_served, degraded_truncated, refreshes, refresh_failures,
        epochs_published, queue_peak}) {
    util::PutVarint64(out, counter);
  }
  queue_us.EncodeTo(out);
  service_us.EncodeTo(out);
  service_cpu_us.EncodeTo(out);
  total_us.EncodeTo(out);
  for (const util::Histogram& histogram : priority_total_us) {
    histogram.EncodeTo(out);
  }
  distance_comps.EncodeTo(out);
}

Status StatsResponse::DecodeFrom(util::ByteReader* reader) {
  for (uint64_t* counter :
       {&submitted, &accepted, &rejected_queue_full, &rejected_stopped,
        &deadline_exceeded, &failed, &completed, &deadline_missed,
        &cache_hits, &cache_misses, &cache_evictions, &cache_entries,
        &cache_bytes_used, &stale_served, &degraded_truncated, &refreshes,
        &refresh_failures, &epochs_published, &queue_peak}) {
    Status status = reader->ReadVarint64(counter);
    if (!status.ok()) return status;
  }
  for (util::Histogram* histogram :
       {&queue_us, &service_us, &service_cpu_us, &total_us,
        &priority_total_us[0], &priority_total_us[1], &priority_total_us[2],
        &distance_comps}) {
    Status status = ReadHistogram(reader, histogram);
    if (!status.ok()) return status;
  }
  return Status::OK();
}

void EpochRequest::EncodeTo(std::string*) const {}

Status EpochRequest::DecodeFrom(util::ByteReader*) {
  return Status::OK();
}

void EpochResponse::EncodeTo(std::string* out) const {
  util::PutVarint32(out, shard_id);
  util::PutVarint32(out, num_shards);
  util::PutVarint64(out, snapshot_version);
  util::PutVarint64(out, corpus_epoch);
  util::PutVarint64(out, sections);
}

Status EpochResponse::DecodeFrom(util::ByteReader* reader) {
  Status status = reader->ReadVarint32(&shard_id);
  if (!status.ok()) return status;
  status = reader->ReadVarint32(&num_shards);
  if (!status.ok()) return status;
  status = reader->ReadVarint64(&snapshot_version);
  if (!status.ok()) return status;
  status = reader->ReadVarint64(&corpus_epoch);
  if (!status.ok()) return status;
  return reader->ReadVarint64(&sections);
}

void RequestEnvelope::EncodeTo(std::string* out) const {
  util::PutVarint64(out, request_id);
  util::PutVarint32(out, static_cast<uint32_t>(method));
  out->append(payload);
}

Status RequestEnvelope::DecodeFrom(util::ByteReader* reader) {
  Status status = reader->ReadVarint64(&request_id);
  if (!status.ok()) return status;
  uint32_t raw_method = 0;
  status = reader->ReadVarint32(&raw_method);
  if (!status.ok()) return status;
  if (!IsKnownMethod(raw_method)) {
    return Status::ParseError("request envelope: unknown method id " +
                              std::to_string(raw_method));
  }
  method = static_cast<MethodId>(raw_method);
  std::string_view rest;
  status = reader->ReadBytes(reader->remaining(), &rest);
  if (!status.ok()) return status;
  payload.assign(rest);
  return Status::OK();
}

Status ResponseEnvelope::status() const {
  return MakeStatus(status_code, status_message);
}

void ResponseEnvelope::EncodeTo(std::string* out) const {
  util::PutVarint64(out, request_id);
  util::PutVarint32(out, static_cast<uint32_t>(method));
  util::PutVarint32(out, status_code);
  PutString(out, status_message);
  out->append(payload);
}

Status ResponseEnvelope::DecodeFrom(util::ByteReader* reader) {
  Status status = reader->ReadVarint64(&request_id);
  if (!status.ok()) return status;
  uint32_t raw_method = 0;
  status = reader->ReadVarint32(&raw_method);
  if (!status.ok()) return status;
  if (!IsKnownMethod(raw_method)) {
    return Status::ParseError("response envelope: unknown method id " +
                              std::to_string(raw_method));
  }
  method = static_cast<MethodId>(raw_method);
  status = reader->ReadVarint32(&status_code);
  if (!status.ok()) return status;
  status = ReadString(reader, &status_message);
  if (!status.ok()) return status;
  std::string_view rest;
  status = reader->ReadBytes(reader->remaining(), &rest);
  if (!status.ok()) return status;
  payload.assign(rest);
  return Status::OK();
}

}  // namespace cafc::ipc
