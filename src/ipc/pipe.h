#ifndef CAFC_IPC_PIPE_H_
#define CAFC_IPC_PIPE_H_

#include <memory>
#include <string>
#include <string_view>
#include <utility>

#include "util/status.h"

namespace cafc::ipc {

/// \brief One endpoint of a bidirectional, frame-preserving byte channel.
///
/// Send writes one message; Recv blocks for the next whole message. Both
/// are internally synchronized, so any number of threads may send and any
/// number may receive concurrently on one endpoint — messages are never
/// torn or interleaved mid-frame (which thread gets which message is
/// scheduling-dependent; the RPC layer matches by request id). Close is
/// idempotent, wakes every blocked Recv, and makes both directions fail
/// with kUnavailable, on this endpoint and (eventually) the peer.
///
/// Implementations frame with `EncodeFrame`/`FrameDecoder` even when no
/// file descriptor is involved, so every test of the in-process transport
/// also exercises the wire codec.
class MessagePipe {
 public:
  virtual ~MessagePipe() = default;

  /// Writes one message. kUnavailable after Close (either side).
  virtual Status Send(std::string_view message) = 0;

  /// Blocks for the next message. kUnavailable when the channel closed
  /// with nothing left to deliver; kParseError on a corrupt byte stream.
  virtual Status Recv(std::string* message) = 0;

  /// Closes both directions of this endpoint. Idempotent.
  virtual void Close() = 0;
};

/// A connected pair of in-process endpoints (the test/bench transport:
/// byte-stream semantics, frame codec included, no file descriptors, no
/// child processes). Messages sent on one endpoint are received on the
/// other. Either endpoint may outlive the other.
std::pair<std::unique_ptr<MessagePipe>, std::unique_ptr<MessagePipe>>
CreateInProcessPipePair();

/// \brief Endpoint over POSIX file descriptors (socketpair, pipe, or a
/// child's stdin/stdout). Takes ownership of both descriptors; pass the
/// same descriptor twice for a bidirectional socket.
///
/// Short reads/writes and EINTR are handled; a peer that disappears
/// surfaces as kUnavailable, a corrupt stream as kParseError.
std::unique_ptr<MessagePipe> CreateFdPipe(int read_fd, int write_fd);

/// A connected socketpair as two FdPipe endpoints (for same-process tests
/// of the descriptor transport and as the building block of child-process
/// wiring).
Result<std::pair<std::unique_ptr<MessagePipe>, std::unique_ptr<MessagePipe>>>
CreateSocketPipePair();

}  // namespace cafc::ipc

#endif  // CAFC_IPC_PIPE_H_
