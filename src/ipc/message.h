#ifndef CAFC_IPC_MESSAGE_H_
#define CAFC_IPC_MESSAGE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/form_page.h"
#include "forms/form_page_model.h"
#include "ipc/message_defs.h"
#include "util/histogram.h"
#include "util/status.h"
#include "util/varint.h"

namespace cafc::ipc {

/// \brief Typed request/response messages of the shard RPC, generated
/// from the descriptor table in `message_defs.h`.
///
/// Encoding reuses the snapshot codec primitives (LEB128 varints,
/// fixed-width little-endian doubles as IEEE-754 bit patterns) so the wire
/// is portable across hosts and every double survives bit-exactly — the
/// scatter-gather bit-identity gates depend on similarities not being
/// round-tripped through decimal. Every DecodeFrom runs against a
/// bounds-checked ByteReader over an untrusted payload: truncation and
/// garbage fail with a clean Status, never a crash.

/// Protocol method ids (wire values from the descriptor table).
enum class MethodId : uint32_t {
#define CAFC_IPC_METHOD_ENUM(Name, id, Req, Resp) k##Name = id,
  CAFC_IPC_METHOD_LIST(CAFC_IPC_METHOD_ENUM)
#undef CAFC_IPC_METHOD_ENUM
};

/// Human-readable method name ("Classify", ...; "unknown" otherwise).
const char* MethodName(MethodId method);

/// True when `value` is a method id in the descriptor table.
bool IsKnownMethod(uint32_t value);

/// \brief A form-page document flattened for the wire.
///
/// Term occurrences are encoded against a per-message string table of the
/// document's unique terms, so the wire never depends on either side's
/// dictionary ids. The receiver reconstructs a FormPageDocument backed by
/// a fresh private dictionary; classification then runs through
/// `WeighNewDocument`'s by-string translation, which makes the resulting
/// weights bit-identical to weighing the sender's original document.
struct WireDocument {
  std::string url;
  /// Unique terms referenced by the occurrence streams.
  std::vector<std::string> terms;
  /// (string-table index, location) per occurrence, both spaces.
  std::vector<std::pair<uint32_t, uint8_t>> page_occurrences;
  std::vector<std::pair<uint32_t, uint8_t>> form_occurrences;

  /// Flattens `doc` (terms resolved through its dictionary).
  static WireDocument FromDocument(const forms::FormPageDocument& doc);
  /// Rebuilds a document with a fresh private dictionary.
  forms::FormPageDocument ToDocument() const;

  void EncodeTo(std::string* out) const;
  Status DecodeFrom(util::ByteReader* reader);
};

/// One ranked (section, similarity) pair; `entry` is a *global* section
/// index — shard services translate their local indices before answering.
struct WireHit {
  int64_t entry = -1;
  double similarity = 0.0;
};

struct ClassifyRequest {
  WireDocument doc;
  ContentConfig config = ContentConfig::kFcPlusPc;
  double deadline_ms = 0.0;

  void EncodeTo(std::string* out) const;
  Status DecodeFrom(util::ByteReader* reader);
};

struct ClassifyResponse {
  WireHit best;  ///< global section index, -1 when the shard is empty
  uint64_t snapshot_version = 0;
  uint64_t corpus_epoch = 0;

  void EncodeTo(std::string* out) const;
  Status DecodeFrom(util::ByteReader* reader);
};

struct SearchRequest {
  std::string query;
  uint64_t top_k = 5;
  double deadline_ms = 0.0;

  void EncodeTo(std::string* out) const;
  Status DecodeFrom(util::ByteReader* reader);
};

struct SearchResponse {
  std::vector<WireHit> hits;  ///< shard-local ranking, global indices
  uint64_t snapshot_version = 0;
  uint64_t corpus_epoch = 0;

  void EncodeTo(std::string* out) const;
  Status DecodeFrom(util::ByteReader* reader);
};

struct StatsRequest {
  void EncodeTo(std::string* out) const;
  Status DecodeFrom(util::ByteReader* reader);
};

/// Mirror of `serve::ServerStats` for the wire (ipc sits below serve in
/// the layering, so the serving layer converts at its boundary). Fields
/// travel in declaration order; histograms via Histogram::EncodeTo.
struct StatsResponse {
  uint64_t submitted = 0;
  uint64_t accepted = 0;
  uint64_t rejected_queue_full = 0;
  uint64_t rejected_stopped = 0;
  uint64_t deadline_exceeded = 0;
  uint64_t failed = 0;
  uint64_t completed = 0;
  uint64_t deadline_missed = 0;
  uint64_t cache_hits = 0;
  uint64_t cache_misses = 0;
  uint64_t cache_evictions = 0;
  uint64_t cache_entries = 0;
  uint64_t cache_bytes_used = 0;
  uint64_t stale_served = 0;
  uint64_t degraded_truncated = 0;
  uint64_t refreshes = 0;
  uint64_t refresh_failures = 0;
  uint64_t epochs_published = 0;
  uint64_t queue_peak = 0;
  util::Histogram queue_us;
  util::Histogram service_us;
  util::Histogram service_cpu_us;
  util::Histogram total_us;
  /// Per-scheduling-class total latency (serve::kNumQueryPriorities wide;
  /// a plain array here because ipc does not include serve headers).
  util::Histogram priority_total_us[3];
  util::Histogram distance_comps;

  void EncodeTo(std::string* out) const;
  Status DecodeFrom(util::ByteReader* reader);
};

struct EpochRequest {
  void EncodeTo(std::string* out) const;
  Status DecodeFrom(util::ByteReader* reader);
};

struct EpochResponse {
  uint32_t shard_id = 0;
  uint32_t num_shards = 1;
  uint64_t snapshot_version = 0;
  uint64_t corpus_epoch = 0;
  uint64_t sections = 0;  ///< sections this shard hosts

  void EncodeTo(std::string* out) const;
  Status DecodeFrom(util::ByteReader* reader);
};

/// \brief Request envelope: id + method, then the method's payload.
struct RequestEnvelope {
  uint64_t request_id = 0;
  MethodId method = MethodId::kClassify;
  std::string payload;  ///< encoded request message

  void EncodeTo(std::string* out) const;
  Status DecodeFrom(util::ByteReader* reader);
};

/// \brief Response envelope: echoes the request id (responses may arrive
/// out of order under pipelining) and carries the shard-side status.
struct ResponseEnvelope {
  uint64_t request_id = 0;
  MethodId method = MethodId::kClassify;
  uint32_t status_code = 0;  ///< StatusCode as uint32
  std::string status_message;
  std::string payload;  ///< encoded response message; empty on error

  Status status() const;

  void EncodeTo(std::string* out) const;
  Status DecodeFrom(util::ByteReader* reader);
};

}  // namespace cafc::ipc

#endif  // CAFC_IPC_MESSAGE_H_
