#ifndef CAFC_HTML_DOM_H_
#define CAFC_HTML_DOM_H_

#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "html/tokenizer.h"

namespace cafc::html {

/// Node kind in the parsed tree.
enum class NodeType { kDocument, kElement, kText, kComment };

/// \brief A node in the lightweight DOM.
///
/// Elements own their children; the tree is immutable after parsing. Tag
/// names are lowercase. This is not a conforming HTML5 tree builder — it is
/// a pragmatic tag-soup parser sufficient for form extraction: void elements
/// never take children, a small set of elements (`option`, `li`, `p`, `tr`,
/// `td`, `th`) close implicitly, and unmatched end tags are ignored.
class Node {
 public:
  Node(NodeType type, std::string name_or_text)
      : type_(type), name_or_text_(std::move(name_or_text)) {}

  Node(const Node&) = delete;
  Node& operator=(const Node&) = delete;

  NodeType type() const { return type_; }
  /// Lowercased tag name for elements.
  const std::string& tag() const { return name_or_text_; }
  /// Character data for text/comment nodes.
  const std::string& text() const { return name_or_text_; }

  const std::vector<Attribute>& attrs() const { return attrs_; }
  const std::vector<std::unique_ptr<Node>>& children() const {
    return children_;
  }

  /// Returns the value of attribute `name` (lowercase), or "" if absent.
  std::string_view GetAttr(std::string_view name) const;
  /// True if attribute `name` is present (possibly with empty value).
  bool HasAttr(std::string_view name) const;

  /// Depth-first pre-order visit of this subtree (including `this`).
  /// The visitor returns false to prune descent into a node's children.
  void Visit(const std::function<bool(const Node&)>& visitor) const;

  /// All descendant elements (pre-order) whose tag equals `tag` (lowercase).
  std::vector<const Node*> FindAll(std::string_view tag) const;

  /// First descendant element with tag `tag`, or nullptr.
  const Node* FindFirst(std::string_view tag) const;

  /// Concatenated text of all descendant text nodes, space-separated.
  std::string TextContent() const;

 private:
  friend class Parser;

  NodeType type_;
  std::string name_or_text_;
  std::vector<Attribute> attrs_;
  std::vector<std::unique_ptr<Node>> children_;
};

/// \brief Result of parsing: owns the document root.
class Document {
 public:
  explicit Document(std::unique_ptr<Node> root) : root_(std::move(root)) {}

  const Node& root() const { return *root_; }

 private:
  std::unique_ptr<Node> root_;
};

/// Parses `input` into a Document. Never fails: tag soup degrades to a
/// best-effort tree rather than an error (matching the paper's setting of
/// machine-consuming human-authored pages).
Document Parse(std::string_view input);

/// True for HTML void elements (`<br>`, `<input>`, ...), which never have
/// children.
bool IsVoidElement(std::string_view tag);

}  // namespace cafc::html

#endif  // CAFC_HTML_DOM_H_
