#include "html/tokenizer.h"

#include "html/entities.h"
#include "util/string_util.h"

namespace cafc::html {
namespace {

bool IsTagNameChar(char c) {
  return IsAsciiAlnum(c) || c == '-' || c == ':' || c == '_';
}

bool IsAttrNameChar(char c) {
  return IsAsciiAlnum(c) || c == '-' || c == ':' || c == '_' || c == '.';
}

}  // namespace

Tokenizer::Tokenizer(std::string_view input) : input_(input) {}

std::vector<Token> Tokenizer::TokenizeAll(std::string_view input) {
  Tokenizer tokenizer(input);
  std::vector<Token> tokens;
  Token token;
  while (tokenizer.Next(&token)) tokens.push_back(std::move(token));
  return tokens;
}

bool Tokenizer::Next(Token* token) {
  if (!pending_rawtext_.empty()) {
    std::string closing = "</" + pending_rawtext_;
    pending_rawtext_.clear();
    return LexRawText(closing, token);
  }
  if (pos_ >= input_.size()) return false;

  if (input_[pos_] == '<') {
    // Peek: is this a plausible tag, comment, or doctype? Otherwise treat
    // the '<' as text (common in tag soup, e.g. "price < 100").
    if (pos_ + 1 < input_.size()) {
      char c = input_[pos_ + 1];
      if (IsAsciiAlpha(c) || c == '/' || c == '!' || c == '?') {
        return LexTag(token);
      }
    }
  }

  // Text run until the next plausible tag opener.
  size_t start = pos_;
  while (pos_ < input_.size()) {
    if (input_[pos_] == '<' && pos_ + 1 < input_.size()) {
      char c = input_[pos_ + 1];
      if (IsAsciiAlpha(c) || c == '/' || c == '!' || c == '?') break;
    }
    ++pos_;
  }
  if (pos_ == start) {  // single trailing '<'
    pos_ = input_.size();
  }
  token->type = TokenType::kText;
  token->name.clear();
  token->attrs.clear();
  token->self_closing = false;
  token->text = DecodeEntities(input_.substr(start, pos_ - start));
  return true;
}

bool Tokenizer::LexTag(Token* token) {
  token->name.clear();
  token->text.clear();
  token->attrs.clear();
  token->self_closing = false;

  size_t i = pos_ + 1;  // past '<'

  // Comment.
  if (input_.substr(i).substr(0, 3) == "!--") {
    size_t end = input_.find("-->", i + 3);
    size_t body_end = (end == std::string_view::npos) ? input_.size() : end;
    token->type = TokenType::kComment;
    token->text = std::string(input_.substr(i + 3, body_end - (i + 3)));
    pos_ = (end == std::string_view::npos) ? input_.size() : end + 3;
    return true;
  }
  // Doctype / other markup declarations / processing instructions.
  if (i < input_.size() && (input_[i] == '!' || input_[i] == '?')) {
    size_t end = input_.find('>', i);
    size_t body_end = (end == std::string_view::npos) ? input_.size() : end;
    token->type = TokenType::kDoctype;
    token->text = std::string(input_.substr(i + 1, body_end - (i + 1)));
    pos_ = (end == std::string_view::npos) ? input_.size() : end + 1;
    return true;
  }

  bool end_tag = false;
  if (i < input_.size() && input_[i] == '/') {
    end_tag = true;
    ++i;
  }

  // Tag name.
  size_t name_start = i;
  while (i < input_.size() && IsTagNameChar(input_[i])) ++i;
  if (i == name_start) {
    // "</>" or similar garbage: skip to '>' and drop it as a comment-like
    // no-op; emit empty text to keep the stream moving.
    size_t end = input_.find('>', i);
    pos_ = (end == std::string_view::npos) ? input_.size() : end + 1;
    token->type = TokenType::kText;
    token->text.clear();
    return true;
  }
  token->name = ToLower(input_.substr(name_start, i - name_start));
  token->type = end_tag ? TokenType::kEndTag : TokenType::kStartTag;

  // Attributes.
  while (i < input_.size() && input_[i] != '>') {
    while (i < input_.size() && IsAsciiSpace(input_[i])) ++i;
    if (i >= input_.size() || input_[i] == '>') break;
    if (input_[i] == '/') {
      // Possible self-closing slash; only meaningful right before '>'.
      ++i;
      continue;
    }
    size_t attr_start = i;
    while (i < input_.size() && IsAttrNameChar(input_[i])) ++i;
    if (i == attr_start) {  // stray char — skip it
      ++i;
      continue;
    }
    Attribute attr;
    attr.name = ToLower(input_.substr(attr_start, i - attr_start));
    while (i < input_.size() && IsAsciiSpace(input_[i])) ++i;
    if (i < input_.size() && input_[i] == '=') {
      ++i;
      while (i < input_.size() && IsAsciiSpace(input_[i])) ++i;
      if (i < input_.size() && (input_[i] == '"' || input_[i] == '\'')) {
        char quote = input_[i++];
        size_t value_start = i;
        while (i < input_.size() && input_[i] != quote) ++i;
        attr.value =
            DecodeEntities(input_.substr(value_start, i - value_start));
        if (i < input_.size()) ++i;  // past closing quote
      } else {
        size_t value_start = i;
        while (i < input_.size() && !IsAsciiSpace(input_[i]) &&
               input_[i] != '>') {
          ++i;
        }
        attr.value =
            DecodeEntities(input_.substr(value_start, i - value_start));
      }
    }
    if (!end_tag) token->attrs.push_back(std::move(attr));
  }

  if (i > pos_ + 1 && i <= input_.size() && i > 0 && input_[i - 1] == '/') {
    token->self_closing = true;
  }
  // Detect "... />": the '/' right before '>'.
  if (i < input_.size() && input_[i] == '>' && i > 0 && input_[i - 1] == '/') {
    token->self_closing = true;
  }
  pos_ = (i < input_.size()) ? i + 1 : input_.size();

  if (token->type == TokenType::kStartTag && !token->self_closing &&
      (token->name == "script" || token->name == "style")) {
    pending_rawtext_ = token->name;
  }
  return true;
}

bool Tokenizer::LexRawText(std::string_view closing_tag, Token* token) {
  // Scan for the close tag case-insensitively.
  size_t i = pos_;
  size_t found = std::string_view::npos;
  for (; i + closing_tag.size() <= input_.size(); ++i) {
    if (input_[i] == '<' &&
        EqualsIgnoreCase(input_.substr(i, closing_tag.size()), closing_tag)) {
      found = i;
      break;
    }
  }
  size_t text_end = (found == std::string_view::npos) ? input_.size() : found;
  token->type = TokenType::kText;
  token->name.clear();
  token->attrs.clear();
  token->self_closing = false;
  // Raw text: no entity decoding inside script/style.
  token->text = std::string(input_.substr(pos_, text_end - pos_));
  pos_ = text_end;
  return true;
}

}  // namespace cafc::html
