#include "html/entities.h"

#include <cstdint>

#include "util/string_util.h"

namespace cafc::html {
namespace {

struct NamedEntity {
  const char* name;
  uint32_t code_point;
};

// Entities that actually occur in the era's form pages; sorted by name for
// readability (lookup is linear — the table is tiny and decoding is not on a
// hot path).
constexpr NamedEntity kNamedEntities[] = {
    {"AMP", '&'},     {"GT", '>'},       {"LT", '<'},      {"QUOT", '"'},
    {"amp", '&'},     {"apos", '\''},    {"bull", 0x2022}, {"cent", 0x00a2},
    {"copy", 0x00a9}, {"deg", 0x00b0},   {"eacute", 0x00e9},
    {"gt", '>'},      {"hellip", 0x2026}, {"laquo", 0x00ab},
    {"ldquo", 0x201c}, {"lsquo", 0x2018}, {"lt", '<'},
    {"mdash", 0x2014}, {"middot", 0x00b7}, {"nbsp", 0x00a0},
    {"ndash", 0x2013}, {"pound", 0x00a3}, {"quot", '"'},
    {"raquo", 0x00bb}, {"rdquo", 0x201d}, {"reg", 0x00ae},
    {"rsquo", 0x2019}, {"sect", 0x00a7},  {"times", 0x00d7},
    {"trade", 0x2122}, {"yen", 0x00a5},
};

bool LookupNamed(std::string_view name, uint32_t* code_point) {
  for (const NamedEntity& e : kNamedEntities) {
    if (name == e.name) {
      *code_point = e.code_point;
      return true;
    }
  }
  return false;
}

}  // namespace

void AppendUtf8(uint32_t cp, std::string* out) {
  if (cp >= 0xd800 && cp <= 0xdfff) cp = 0xfffd;  // surrogate
  if (cp > 0x10ffff) cp = 0xfffd;
  if (cp < 0x80) {
    out->push_back(static_cast<char>(cp));
  } else if (cp < 0x800) {
    out->push_back(static_cast<char>(0xc0 | (cp >> 6)));
    out->push_back(static_cast<char>(0x80 | (cp & 0x3f)));
  } else if (cp < 0x10000) {
    out->push_back(static_cast<char>(0xe0 | (cp >> 12)));
    out->push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3f)));
    out->push_back(static_cast<char>(0x80 | (cp & 0x3f)));
  } else {
    out->push_back(static_cast<char>(0xf0 | (cp >> 18)));
    out->push_back(static_cast<char>(0x80 | ((cp >> 12) & 0x3f)));
    out->push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3f)));
    out->push_back(static_cast<char>(0x80 | (cp & 0x3f)));
  }
}

std::string DecodeEntities(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  size_t i = 0;
  while (i < s.size()) {
    if (s[i] != '&') {
      out.push_back(s[i++]);
      continue;
    }
    // Find a terminating ';' within a reasonable window.
    size_t semi = std::string_view::npos;
    for (size_t j = i + 1; j < s.size() && j < i + 12; ++j) {
      if (s[j] == ';') {
        semi = j;
        break;
      }
      if (s[j] == '&' || IsAsciiSpace(s[j])) break;
    }
    if (semi == std::string_view::npos || semi == i + 1) {
      out.push_back(s[i++]);  // bare '&' — pass through
      continue;
    }
    std::string_view body = s.substr(i + 1, semi - i - 1);
    uint32_t cp = 0;
    bool ok = false;
    if (body[0] == '#') {
      std::string_view digits = body.substr(1);
      bool hex = !digits.empty() && (digits[0] == 'x' || digits[0] == 'X');
      if (hex) digits = digits.substr(1);
      ok = !digits.empty();
      for (char c : digits) {
        uint32_t d;
        if (IsAsciiDigit(c)) {
          d = static_cast<uint32_t>(c - '0');
        } else if (hex && c >= 'a' && c <= 'f') {
          d = static_cast<uint32_t>(c - 'a' + 10);
        } else if (hex && c >= 'A' && c <= 'F') {
          d = static_cast<uint32_t>(c - 'A' + 10);
        } else {
          ok = false;
          break;
        }
        cp = cp * (hex ? 16 : 10) + d;
        if (cp > 0x10ffff) cp = 0xfffd;
      }
    } else {
      ok = LookupNamed(body, &cp);
    }
    if (ok) {
      AppendUtf8(cp, &out);
      i = semi + 1;
    } else {
      out.push_back(s[i++]);  // unknown entity — pass through verbatim
    }
  }
  return out;
}

}  // namespace cafc::html
