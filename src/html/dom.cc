#include "html/dom.h"

#include <array>

#include "util/string_util.h"

namespace cafc::html {
namespace {

constexpr std::array<std::string_view, 14> kVoidElements = {
    "area", "base", "br",    "col",   "embed", "hr",    "img",
    "input", "link", "meta", "param", "source", "track", "wbr"};

// Elements that implicitly close an open element of the same tag, e.g.
// "<option>a<option>b" — the second <option> closes the first.
bool ClosesSameTag(std::string_view tag) {
  return tag == "option" || tag == "li" || tag == "p" || tag == "tr" ||
         tag == "td" || tag == "th" || tag == "dt" || tag == "dd";
}

}  // namespace

bool IsVoidElement(std::string_view tag) {
  for (std::string_view v : kVoidElements) {
    if (tag == v) return true;
  }
  return false;
}

std::string_view Node::GetAttr(std::string_view name) const {
  for (const Attribute& attr : attrs_) {
    if (attr.name == name) return attr.value;
  }
  return {};
}

bool Node::HasAttr(std::string_view name) const {
  for (const Attribute& attr : attrs_) {
    if (attr.name == name) return true;
  }
  return false;
}

void Node::Visit(const std::function<bool(const Node&)>& visitor) const {
  if (!visitor(*this)) return;
  for (const auto& child : children_) child->Visit(visitor);
}

std::vector<const Node*> Node::FindAll(std::string_view tag) const {
  std::vector<const Node*> out;
  Visit([&out, tag](const Node& node) {
    if (node.type() == NodeType::kElement && node.tag() == tag) {
      out.push_back(&node);
    }
    return true;
  });
  return out;
}

const Node* Node::FindFirst(std::string_view tag) const {
  const Node* found = nullptr;
  Visit([&found, tag](const Node& node) {
    if (found != nullptr) return false;
    if (node.type() == NodeType::kElement && node.tag() == tag) {
      found = &node;
      return false;
    }
    return true;
  });
  return found;
}

std::string Node::TextContent() const {
  std::string out;
  Visit([&out](const Node& node) {
    if (node.type() == NodeType::kText) {
      std::string_view stripped = StripAsciiWhitespace(node.text());
      if (!stripped.empty()) {
        if (!out.empty()) out.push_back(' ');
        out.append(stripped);
      }
    }
    return true;
  });
  return out;
}

/// Internal tree builder: maintains a stack of open elements.
class Parser {
 public:
  Document Run(std::string_view input) {
    auto root = std::make_unique<Node>(NodeType::kDocument, "");
    stack_.push_back(root.get());

    Tokenizer tokenizer(input);
    Token token;
    while (tokenizer.Next(&token)) {
      switch (token.type) {
        case TokenType::kText:
          if (!token.text.empty()) {
            Append(std::make_unique<Node>(NodeType::kText,
                                          std::move(token.text)));
          }
          break;
        case TokenType::kComment:
          Append(std::make_unique<Node>(NodeType::kComment,
                                        std::move(token.text)));
          break;
        case TokenType::kDoctype:
          break;  // dropped
        case TokenType::kStartTag:
          HandleStartTag(&token);
          break;
        case TokenType::kEndTag:
          HandleEndTag(token.name);
          break;
      }
    }
    return Document(std::move(root));
  }

 private:
  void Append(std::unique_ptr<Node> node) {
    stack_.back()->children_.push_back(std::move(node));
  }

  void HandleStartTag(Token* token) {
    if (ClosesSameTag(token->name)) {
      // Implicitly close an open element of the same tag, but never pop past
      // a structural boundary (form/select/table/body).
      for (size_t depth = stack_.size(); depth > 1; --depth) {
        const std::string& open = stack_[depth - 1]->tag();
        if (open == token->name) {
          stack_.resize(depth - 1);
          break;
        }
        if (open == "form" || open == "select" || open == "table" ||
            open == "body" || open == "html") {
          break;
        }
      }
    }
    auto node = std::make_unique<Node>(NodeType::kElement, token->name);
    node->attrs_ = std::move(token->attrs);
    Node* raw = node.get();
    Append(std::move(node));
    if (!token->self_closing && !IsVoidElement(token->name)) {
      stack_.push_back(raw);
    }
  }

  void HandleEndTag(const std::string& name) {
    if (IsVoidElement(name)) return;  // "</br>" and friends — ignore
    // Find the nearest open element with this tag; if none, ignore the
    // unmatched end tag (tag-soup tolerance).
    for (size_t depth = stack_.size(); depth > 1; --depth) {
      if (stack_[depth - 1]->tag() == name) {
        stack_.resize(depth - 1);
        return;
      }
    }
  }

  std::vector<Node*> stack_;
};

Document Parse(std::string_view input) {
  Parser parser;
  return parser.Run(input);
}

}  // namespace cafc::html
