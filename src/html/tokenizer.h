#ifndef CAFC_HTML_TOKENIZER_H_
#define CAFC_HTML_TOKENIZER_H_

#include <string>
#include <string_view>
#include <vector>

namespace cafc::html {

/// One `name="value"` pair in a start tag. Names are lowercased; values are
/// entity-decoded. Valueless attributes (e.g. `selected`) have empty value.
struct Attribute {
  std::string name;
  std::string value;
};

/// Kind of lexical token produced by the tokenizer.
enum class TokenType {
  kStartTag,  ///< `<form ...>` (self_closing true for `<br/>`)
  kEndTag,    ///< `</form>`
  kText,      ///< character data between tags (entity-decoded)
  kComment,   ///< `<!-- ... -->`
  kDoctype,   ///< `<!DOCTYPE ...>`
};

/// A single lexical token. Tag names are lowercased.
struct Token {
  TokenType type;
  std::string name;               ///< tag name for start/end tags
  std::string text;               ///< character data / comment body
  std::vector<Attribute> attrs;   ///< start-tag attributes
  bool self_closing = false;
};

/// \brief Streaming HTML lexer tolerant of 2000s-era tag soup.
///
/// Deviations from strict HTML that it accepts: unquoted attribute values,
/// attributes without values, stray `<` in text, unterminated tags at EOF
/// (flushed as text), uppercase tag names (lowercased). Contents of
/// `<script>` and `<style>` are treated as raw text until the matching close
/// tag and emitted as a text token (callers typically discard them).
class Tokenizer {
 public:
  /// `input` must outlive the tokenizer.
  explicit Tokenizer(std::string_view input);

  /// Produces the next token into `*token`; returns false at end of input.
  bool Next(Token* token);

  /// Convenience: tokenizes the whole input.
  static std::vector<Token> TokenizeAll(std::string_view input);

 private:
  bool LexTag(Token* token);
  bool LexRawText(std::string_view closing_tag, Token* token);

  std::string_view input_;
  size_t pos_ = 0;
  // Set after a <script>/<style> start tag: the element whose raw content
  // must be consumed before regular lexing resumes.
  std::string pending_rawtext_;
};

}  // namespace cafc::html

#endif  // CAFC_HTML_TOKENIZER_H_
