#ifndef CAFC_HTML_ENTITIES_H_
#define CAFC_HTML_ENTITIES_H_

#include <string>
#include <string_view>

namespace cafc::html {

/// \brief Decodes HTML character references in `s`.
///
/// Supports the named entities common in 2000s-era web pages (`&amp;`,
/// `&nbsp;`, `&copy;`, ...) and decimal / hexadecimal numeric references
/// (`&#65;`, `&#x41;`). Code points above 0x7F are emitted as UTF-8.
/// Malformed references are passed through verbatim, matching browser
/// behaviour on tag soup.
std::string DecodeEntities(std::string_view s);

/// Appends the UTF-8 encoding of `code_point` to `out`. Invalid code points
/// (surrogates, > U+10FFFF) are replaced with U+FFFD.
void AppendUtf8(uint32_t code_point, std::string* out);

}  // namespace cafc::html

#endif  // CAFC_HTML_ENTITIES_H_
