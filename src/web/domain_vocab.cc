#include "web/domain_vocab.h"

#include <cassert>

namespace cafc::web {
namespace {

// Static-storage pattern for non-trivially-destructible constants: heap
// allocate once, never delete (per style-guide guidance on static globals).
template <typename T>
const T& Leak(T* value) {
  return *value;
}

DomainSpec* MakeAirfare() {
  auto* spec = new DomainSpec;
  spec->domain = Domain::kAirfare;
  spec->attributes = {
      {{"from city", "departure city", "origin", "leaving from"}, {}, false},
      {{"to city", "destination", "arrival city", "going to"}, {}, false},
      {{"departure date", "depart", "departing", "outbound date"}, {}, false},
      {{"return date", "returning", "inbound date"}, {}, false},
      {{"passengers", "travelers", "adults"},
       {"1 adult", "2 adults", "3 adults", "4 adults", "1 child", "2 children",
        "infant"},
       true},
      {{"cabin class", "class of service", "seating class"},
       {"economy", "premium economy", "business", "first class"},
       true},
      {{"airline", "carrier", "preferred airline"},
       {"american airlines", "delta", "united", "continental", "northwest",
        "us airways", "southwest", "jetblue", "alaska air", "frontier",
        "airtran", "spirit", "hawaiian", "midwest express", "any airline"},
       true},
      {{"trip type", "flight type"},
       {"round trip", "one way", "multi city"},
       true},
      {{"departure airport", "from airport"},
       {"jfk new york", "lga new york", "lax los angeles", "ord chicago",
        "mdw chicago", "atl atlanta", "dfw dallas", "iah houston",
        "sfo san francisco", "san diego", "bos boston", "mia miami",
        "mco orlando", "las vegas", "phx phoenix", "sea seattle",
        "dtw detroit", "msp minneapolis", "phl philadelphia",
        "iad washington dulles"},
       true},
  };
  spec->content_terms = {
      "flight",      "flights",    "airfare",     "airfares",  "airline",
      "airlines",    "airport",    "airports",    "depart",    "departure",
      "arrival",     "arrive",     "nonstop",     "connecting", "layover",
      "roundtrip",   "fare",       "fares",       "ticket",    "tickets",
      "booking",     "itinerary",  "travel",      "traveler",  "vacation",
      "vacations",   "destination", "destinations", "passenger", "passengers",
      "seat",        "seats",      "cabin",       "economy",   "business",
      "mileage",     "miles",      "frequent",    "flyer",     "carrier",
      "carriers",    "domestic",   "international", "getaway", "lowfare",
      "lastminute",  "charter",    "jet",         "aviation",  "boarding",
      "baggage",     "luggage",    "stopover",    "redeye",    "airways",
      "departing",   "returning",  "cheap",       "saver",     "deal",
      "deals",       "specials",   "trip",        "trips",     "tour",
  };
  spec->title_terms = {"cheap", "flights", "airfare", "airline", "tickets",
                       "travel", "book", "flight", "deals", "search"};
  spec->site_terms = {"flights", "airfare", "fly", "travel", "air",
                      "trips", "skyfare", "jetsearch"};
  return spec;
}

DomainSpec* MakeAuto() {
  auto* spec = new DomainSpec;
  spec->domain = Domain::kAuto;
  spec->attributes = {
      {{"make", "manufacturer", "brand"},
       {"ford", "chevrolet", "toyota", "honda", "nissan", "bmw", "audi",
        "mercedes benz", "volkswagen", "dodge", "jeep", "lexus", "mazda",
        "subaru", "hyundai", "kia", "volvo", "pontiac", "saturn"},
       true},
      {{"model", "vehicle model"},
       {"accord", "civic", "camry", "corolla", "mustang", "explorer",
        "taurus", "f150", "altima", "maxima", "jetta", "passat", "outback"},
       true},
      {{"year", "model year", "year range"},
       {"1998", "1999", "2000", "2001", "2002", "2003", "2004", "2005",
        "2006", "2007"},
       true},
      {{"price range", "maximum price", "price"},
       {"under 5000", "5000 to 10000", "10000 to 15000", "15000 to 20000",
        "20000 to 30000", "over 30000"},
       true},
      {{"body style", "vehicle type", "category"},
       {"sedan", "coupe", "convertible", "wagon", "suv", "truck", "van",
        "hatchback", "minivan"},
       true},
      {{"zip code", "postal code", "your zip"}, {}, false},
      {{"mileage", "maximum mileage"},
       {"under 30000", "under 60000", "under 100000", "any mileage"},
       true},
      {{"condition"}, {"new", "used", "certified preowned"}, true},
      {{"keyword", "search our inventory"}, {}, false},
  };
  spec->content_terms = {
      "car",        "cars",       "auto",       "autos",      "automobile",
      "automobiles", "vehicle",   "vehicles",   "dealer",     "dealers",
      "dealership", "dealerships", "inventory", "preowned",   "certified",
      "sedan",      "coupe",      "suv",        "truck",      "trucks",
      "minivan",    "convertible", "wagon",     "hatchback",  "engine",
      "transmission", "automatic", "manual",    "cylinder",   "horsepower",
      "drivetrain", "odometer",   "mileage",    "warranty",   "financing",
      "finance",    "loan",       "lease",      "payment",    "payments",
      "trade",      "tradein",    "appraisal",  "msrp",       "invoice",
      "sticker",    "bluebook",   "carfax",     "listing",    "listings",
      "classifieds", "sale",      "motor",      "motors",     "automotive",
      "makes",      "models",     "test", "drive", "showroom", "leather",
      "sunroof",    "airbag",     "brakes",     "wheels",
  };
  spec->title_terms = {"used", "cars", "new", "auto", "sale", "find",
                       "vehicle", "dealer", "search", "automobiles"};
  spec->site_terms = {"cars", "auto", "motors", "autotrader", "carfinder",
                      "wheels", "usedcars", "automart"};
  return spec;
}

DomainSpec* MakeBook() {
  auto* spec = new DomainSpec;
  spec->domain = Domain::kBook;
  spec->attributes = {
      {{"title", "book title"}, {}, false},
      {{"author", "author name", "written by"}, {}, false},
      {{"isbn", "isbn number"}, {}, false},
      {{"keyword", "keywords", "search for"}, {}, false},
      {{"subject", "category", "genre"},
       {"fiction", "nonfiction", "mystery", "romance", "science fiction",
        "biography", "history", "children", "poetry", "reference",
        "textbooks", "cooking", "travel", "religion", "business"},
       true},
      {{"publisher", "publishing house"},
       {"penguin", "random house", "harpercollins", "simon schuster",
        "oxford", "wiley", "mcgraw hill", "scholastic"},
       true},
      {{"format", "binding"},
       {"hardcover", "paperback", "audio cassette", "audio cd", "ebook",
        "large print"},
       true},
      {{"price range"},
       {"under 10", "10 to 25", "25 to 50", "over 50"},
       true},
  };
  spec->content_terms = {
      "book",       "books",      "author",     "authors",    "title",
      "titles",     "isbn",       "publisher",  "publishers", "publishing",
      "paperback",  "hardcover",  "edition",    "editions",   "fiction",
      "nonfiction", "novel",      "novels",     "textbook",   "textbooks",
      "bestseller", "bestsellers", "literature", "literary",  "bookstore",
      "bookseller", "booksellers", "library",   "chapter",    "chapters",
      "reader",     "readers",    "reading",    "reviews",    "bibliography",
      "anthology",  "memoir",     "biography",  "autobiography", "poetry",
      "poems",      "prose",      "mystery",    "romance",    "thriller",
      "fantasy",    "bound",      "print",      "printing",   "copy",
      "copies",     "rare",       "signed",     "firstedition", "outofprint",
      "volume",     "volumes",    "series",     "excerpt",    "synopsis",
      "jacket",     "shelf",      "stacks",
  };
  spec->title_terms = {"books", "bookstore", "buy", "online", "search",
                       "new", "used", "rare", "titles", "authors"};
  spec->site_terms = {"books", "bookstore", "readers", "bookshop",
                      "pageturner", "bookfinder", "libris", "novelidea"};
  return spec;
}

DomainSpec* MakeCarRental() {
  auto* spec = new DomainSpec;
  spec->domain = Domain::kCarRental;
  spec->attributes = {
      {{"pickup location", "pick up city", "renting city"},
       {"new york", "los angeles", "chicago", "miami", "orlando", "denver",
        "seattle", "boston", "las vegas", "phoenix", "atlanta", "dallas",
        "houston", "detroit", "minneapolis", "tampa", "san jose",
        "salt lake city"},
       true},
      {{"return location", "drop off location", "dropoff city"}, {}, false},
      {{"pickup date", "pick up date", "rental date"}, {}, false},
      {{"return date", "drop off date"}, {}, false},
      {{"pickup time", "pick up time"},
       {"8 00 am", "10 00 am", "noon", "2 00 pm", "4 00 pm", "6 00 pm"},
       true},
      {{"car type", "car class", "vehicle class"},
       {"economy", "compact", "midsize", "fullsize", "standard", "premium",
        "luxury", "convertible", "minivan", "suv"},
       true},
      {{"driver age", "age of driver"},
       {"under 25", "25 and over", "over 65"},
       true},
      {{"discount code", "coupon code", "corporate id"}, {}, false},
  };
  spec->content_terms = {
      "rental",     "rentals",    "rent",       "renting",    "renter",
      "pickup",     "dropoff",    "car",        "cars",       "fleet",
      "vehicle",    "vehicles",   "economy",    "compact",    "midsize",
      "fullsize",   "luxury",     "minivan",    "suv",        "convertible",
      "daily",      "weekly",     "weekend",    "rates",      "rate",
      "unlimited",  "mileage",    "insurance",  "collision",  "waiver",
      "driver",     "drivers",    "license",    "surcharge",  "deposit",
      "reservation", "reservations", "reserve", "confirmation", "counter",
      "location",   "locations",  "branch",     "branches",   "airport",
      "offairport", "corporate",  "coupon",     "discount",   "upgrade",
      "dropcharge", "oneway",     "roadside",   "assistance", "gps",
      "childseat",  "returning",  "pick", "drop", "hire",
  };
  spec->title_terms = {"car", "rental", "rent", "rates", "reserve",
                       "cheap", "deals", "locations", "book", "online"};
  spec->site_terms = {"rentacar", "carrental", "rentals", "driveaway",
                      "autorent", "hirecar", "wheelsrent", "easyrent"};
  return spec;
}

DomainSpec* MakeHotel() {
  auto* spec = new DomainSpec;
  spec->domain = Domain::kHotel;
  spec->attributes = {
      {{"city", "destination", "where are you going"},
       {"new york", "chicago", "san francisco", "los angeles", "orlando",
        "las vegas", "miami", "boston", "seattle", "new orleans",
        "washington dc", "atlanta", "dallas", "denver", "philadelphia",
        "san diego", "phoenix", "honolulu", "nashville", "austin"},
       true},
      {{"check in date", "checkin", "arrival date"}, {}, false},
      {{"check out date", "checkout", "departure date"}, {}, false},
      {{"rooms", "number of rooms"}, {"1", "2", "3", "4"}, true},
      {{"adults", "guests", "number of guests"},
       {"1 adult", "2 adults", "3 adults", "4 adults"},
       true},
      {{"children", "kids"}, {"0", "1", "2", "3"}, true},
      {{"hotel name", "property name"}, {}, false},
      {{"star rating", "hotel class"},
       {"1 star", "2 star", "3 star", "4 star", "5 star"},
       true},
      {{"price per night", "nightly rate"},
       {"under 50", "50 to 100", "100 to 200", "over 200"},
       true},
  };
  spec->content_terms = {
      "hotel",      "hotels",     "room",       "rooms",      "reservation",
      "reservations", "availability", "checkin", "checkout",  "night",
      "nights",     "nightly",    "guest",      "guests",     "suite",
      "suites",     "amenities",  "lodging",    "accommodation",
      "accommodations", "resort", "resorts",    "inn",        "inns",
      "motel",      "motels",     "bed",        "beds",       "breakfast",
      "pool",       "spa",        "fitness",    "concierge",  "housekeeping",
      "lobby",      "oceanfront", "downtown",   "smoking",    "nonsmoking",
      "king",       "queen",      "doublebed",  "occupancy",  "rate",
      "rates",      "stay",       "stays",      "vacancy",    "getaways",
      "hospitality", "frontdesk", "valet",      "parking",    "wifi",
      "continental", "suitehotel", "boutique",  "property",   "properties",
      "destination", "romantic", "family",
  };
  spec->title_terms = {"hotel", "hotels", "rooms", "reservations", "cheap",
                       "discount", "book", "deals", "availability", "find"};
  spec->site_terms = {"hotels", "lodging", "rooms", "stayfinder",
                      "hotelguide", "innsearch", "bookaroom", "suites"};
  return spec;
}

DomainSpec* MakeJob() {
  auto* spec = new DomainSpec;
  spec->domain = Domain::kJob;
  spec->attributes = {
      {{"job category", "industry", "field", "job function"},
       {"accounting", "administrative", "advertising", "aerospace",
        "agriculture", "banking", "biotechnology", "construction",
        "consulting", "customer service", "education", "engineering",
        "entertainment", "finance", "government", "healthcare",
        "hospitality", "human resources", "information technology",
        "insurance", "legal", "manufacturing", "marketing", "media",
        "nonprofit", "pharmaceutical", "real estate", "retail", "sales",
        "telecommunications", "transportation", "utilities"},
       true},
      {{"state", "location", "region"},
       {"alabama", "alaska", "arizona", "arkansas", "california", "colorado",
        "connecticut", "delaware", "florida", "georgia", "hawaii", "idaho",
        "illinois", "indiana", "iowa", "kansas", "kentucky", "louisiana",
        "maine", "maryland", "massachusetts", "michigan", "minnesota",
        "mississippi", "missouri", "montana", "nebraska", "nevada",
        "new hampshire", "new jersey", "new mexico", "new york",
        "north carolina", "ohio", "oklahoma", "oregon", "pennsylvania",
        "tennessee", "texas", "utah", "vermont", "virginia", "washington",
        "wisconsin", "wyoming"},
       true},
      {{"keyword", "keywords", "job title keywords"}, {}, false},
      {{"city", "metro area"}, {}, false},
      {{"salary range", "desired salary", "compensation"},
       {"under 30000", "30000 to 50000", "50000 to 75000", "75000 to 100000",
        "over 100000"},
       true},
      {{"job type", "employment type"},
       {"full time", "part time", "contract", "temporary", "internship"},
       true},
      {{"experience level", "career level"},
       {"entry level", "mid career", "senior", "executive"},
       true},
      {{"posted within", "date posted"},
       {"last 24 hours", "last 7 days", "last 30 days", "anytime"},
       true},
  };
  spec->content_terms = {
      "job",        "jobs",       "career",     "careers",    "employment",
      "employer",   "employers",  "employee",   "employees",  "resume",
      "resumes",    "salary",     "salaries",   "position",   "positions",
      "opening",    "openings",   "applicant",  "applicants", "apply",
      "application", "applications", "hire",    "hiring",     "recruiter",
      "recruiters", "recruiting", "recruitment", "staffing",  "workforce",
      "workplace",  "occupation", "occupations", "profession", "professional",
      "vacancy",    "vacancies",  "posting",    "postings",   "candidate",
      "candidates", "interview",  "interviews", "qualification",
      "qualifications", "skills", "experience", "benefits",   "fulltime",
      "parttime",   "temp",       "internship", "internships", "seeker",
      "seekers",    "jobseeker",  "opportunity", "opportunities", "payroll",
      "industry",   "industries", "employed", "coverletter",
  };
  spec->title_terms = {"jobs", "careers", "employment", "search", "find",
                       "job", "resume", "openings", "career", "work"};
  spec->site_terms = {"jobs", "careers", "employment", "jobhunt",
                      "careerbuilder", "hotjobs", "worksearch", "hireme"};
  return spec;
}

DomainSpec* MakeMovie() {
  auto* spec = new DomainSpec;
  spec->domain = Domain::kMovie;
  spec->attributes = {
      {{"title", "movie title", "film title"}, {}, false},
      {{"actor", "actor name", "starring"}, {}, false},
      {{"director", "directed by"}, {}, false},
      {{"genre", "category"},
       {"action", "comedy", "drama", "horror", "thriller", "romance",
        "science fiction", "documentary", "animation", "family", "western",
        "musical"},
       true},
      {{"rating", "mpaa rating"},
       {"g", "pg", "pg 13", "r", "nc 17", "unrated"},
       true},
      {{"format"},
       {"dvd", "vhs", "widescreen dvd", "fullscreen dvd", "laserdisc"},
       true},
      {{"release year", "year"},
       {"2007", "2006", "2005", "2004", "2003", "2002", "older"},
       true},
      {{"keyword", "search movies"}, {}, false},
      {{"studio"},
       {"warner", "paramount", "universal", "columbia", "miramax", "disney",
        "dreamworks", "mgm"},
       true},
  };
  spec->content_terms = {
      "movie",      "movies",     "film",       "films",      "cinema",
      "actor",      "actors",     "actress",    "actresses",  "director",
      "directors",  "screenplay", "trailer",    "trailers",   "theater",
      "theaters",   "showtimes",  "boxoffice",  "cast",       "casting",
      "scene",      "scenes",     "sequel",     "screening",  "premiere",
      "filmography", "comedy",    "drama",      "thriller",   "horror",
      "western",    "documentary", "animation", "animated",   "subtitles",
      "widescreen", "fullscreen", "vhs",        "laserdisc",  "blockbuster",
      "oscar",      "academy",    "hollywood",  "studio",     "studios",
      "moviegoer",  "critics",    "critic",     "reel",       "feature",
      "matinee",    "cinematography", "starring", "costar",   "plot",
      "synopsis",   "remake",
  };
  spec->title_terms = {"movies", "dvd", "film", "search", "buy", "rent",
                       "new", "releases", "videos", "cinema"};
  spec->site_terms = {"movies", "films", "dvdstore", "cinemaworld",
                      "moviefinder", "reelsearch", "filmvault", "screenit"};
  return spec;
}

DomainSpec* MakeMusic() {
  auto* spec = new DomainSpec;
  spec->domain = Domain::kMusic;
  spec->attributes = {
      {{"artist", "artist name", "band", "performer"}, {}, false},
      {{"album", "album title"}, {}, false},
      {{"song", "song title", "track"}, {}, false},
      {{"genre", "style", "category"},
       {"rock", "pop", "jazz", "classical", "country", "rap", "hip hop",
        "blues", "folk", "electronic", "reggae", "metal", "soul", "gospel"},
       true},
      {{"label", "record label"},
       {"sony", "emi", "warner", "universal", "atlantic", "capitol",
        "motown", "geffen", "interscope"},
       true},
      {{"format"},
       {"cd", "cassette", "vinyl", "mp3", "dvd audio", "sacd"},
       true},
      {{"keyword", "search music"}, {}, false},
      {{"decade", "era"},
       {"2000s", "1990s", "1980s", "1970s", "1960s", "oldies"},
       true},
  };
  spec->content_terms = {
      "music",      "album",      "albums",     "artist",     "artists",
      "band",       "bands",      "song",       "songs",      "track",
      "tracks",     "lyrics",     "vinyl",      "cassette",   "recording",
      "recordings", "label",      "labels",     "rock",       "pop",
      "jazz",       "classical",  "country",    "rap",        "hiphop",
      "blues",      "folk",       "reggae",     "metal",      "punk",
      "soul",       "gospel",     "electronica", "techno",    "acoustic",
      "instrumental", "vocals",   "vocalist",   "singer",     "singers",
      "songwriter", "composer",   "orchestra",  "symphony",   "concert",
      "concerts",   "tour",       "tours",      "billboard",  "charts",
      "playlist",   "audio",      "stereo",     "remix",      "remastered",
      "compilation", "discography", "single",   "singles",    "listen",
      "mp3",        "download",   "grammy",
  };
  spec->title_terms = {"music", "cds", "albums", "search", "buy", "artists",
                       "new", "releases", "songs", "store"};
  spec->site_terms = {"music", "cdstore", "records", "tunes", "soundshop",
                      "discworld", "melodymart", "trackfinder"};
  return spec;
}

}  // namespace

const std::vector<Domain>& AllDomains() {
  static const auto& domains = Leak(new std::vector<Domain>{
      Domain::kAirfare, Domain::kAuto, Domain::kBook, Domain::kCarRental,
      Domain::kHotel, Domain::kJob, Domain::kMovie, Domain::kMusic});
  return domains;
}

std::string_view DomainName(Domain domain) {
  switch (domain) {
    case Domain::kAirfare:
      return "Airfare";
    case Domain::kAuto:
      return "Auto";
    case Domain::kBook:
      return "Book";
    case Domain::kCarRental:
      return "CarRental";
    case Domain::kHotel:
      return "Hotel";
    case Domain::kJob:
      return "Job";
    case Domain::kMovie:
      return "Movie";
    case Domain::kMusic:
      return "Music";
  }
  return "Unknown";
}

const DomainSpec& GetDomainSpec(Domain domain) {
  static const DomainSpec* const kSpecs[kNumDomains] = {
      MakeAirfare(),   MakeAuto(), MakeBook(),  MakeCarRental(),
      MakeHotel(),     MakeJob(),  MakeMovie(), MakeMusic(),
  };
  int index = static_cast<int>(domain);
  assert(index >= 0 && index < kNumDomains);
  return *kSpecs[index];
}

const std::vector<std::string>& GenericWebTerms() {
  static const auto& terms = Leak(new std::vector<std::string>{
      "home",      "contact",   "about",     "help",      "privacy",
      "policy",    "legal",     "sitemap",   "login",     "logout",
      "register",  "account",   "password",  "username",  "email",
      "newsletter", "subscribe", "unsubscribe", "member",  "members",
      "membership", "signin",   "signup",    "welcome",   "customer",
      "service",   "support",   "faq",       "feedback",  "shop",
      "shopping",  "cart",      "checkout",  "order",     "orders",
      "shipping",  "delivery",  "returns",   "payment",   "secure",
      "security",  "guarantee", "free",      "gift",      "gifts",
      "special",   "offers",    "promotion", "promotions", "news",
      "press",     "company",   "partners",  "affiliates", "advertise",
      "advertising", "jobsatcompany", "investor", "relations", "international",
      "directory", "links",     "resources", "tools",     "guide",
      "guides",    "top",       "best",      "popular",   "featured",
      "recommended", "today",   "daily",     "update",    "updated",
  });
  return terms;
}

const std::vector<std::string>& GenericFormTerms() {
  static const auto& terms = Leak(new std::vector<std::string>{
      "search", "find", "go", "submit", "advanced", "browse", "select",
      "enter", "choose", "all", "any", "clear", "reset", "show", "results",
      "sort", "options", "refine", "lookup", "quick",
  });
  return terms;
}

const std::vector<std::string>& MediaOverlapTerms() {
  static const auto& terms = Leak(new std::vector<std::string>{
      "title",     "titles",   "dvd",       "dvds",      "video",
      "videos",    "release",  "releases",  "genre",     "rating",
      "ratings",   "review",   "reviews",   "store",     "entertainment",
      "media",     "chart",    "bestselling", "soundtrack", "soundtracks",
      "disc",      "discs",    "boxset",    "collection", "collections",
      "edition",   "preorder", "newrelease", "catalog",  "catalogue",
  });
  return terms;
}

const std::vector<std::string>& TravelOverlapTerms() {
  static const auto& terms = Leak(new std::vector<std::string>{
      "travel",      "traveler",   "trip",        "trips",      "destination",
      "destinations", "reservation", "reservations", "booking",  "bookings",
      "book",        "confirm",    "confirmation", "itinerary", "vacation",
      "vacations",   "getaway",    "airport",     "city",       "cities",
      "dates",       "arrival",    "departure",   "return",     "rates",
      "rate",        "discount",   "deals",       "specials",   "leisure",
      "agent",       "agency",     "online",      "lowest",     "guarantee",
  });
  return terms;
}

}  // namespace cafc::web
