#include "web/crawler.h"

#include <deque>
#include <unordered_set>

#include "html/dom.h"
#include "web/url.h"

namespace cafc::web {

Result<Url> DocumentBaseUrl(const html::Document& document,
                            const Url& page_url) {
  const html::Node* base = document.root().FindFirst("base");
  if (base != nullptr) {
    std::string_view href = base->GetAttr("href");
    if (!href.empty()) {
      Result<Url> resolved = ResolveHref(page_url, href);
      if (resolved.ok()) return resolved;
    }
  }
  return page_url;
}

CrawlResult Crawler::Crawl(const std::vector<std::string>& seeds) const {
  CrawlResult result;
  std::deque<std::pair<std::string, size_t>> frontier;  // (url, depth)
  std::unordered_set<std::string> enqueued;

  for (const std::string& seed : seeds) {
    Result<Url> parsed = ParseUrl(seed);
    if (!parsed.ok()) continue;
    std::string canonical = parsed->ToString();
    if (enqueued.insert(canonical).second) {
      frontier.emplace_back(std::move(canonical), 0);
    }
  }

  while (!frontier.empty()) {
    if (options_.max_pages != 0 && result.visited.size() >= options_.max_pages)
      break;
    auto [url, depth] = std::move(frontier.front());
    frontier.pop_front();

    Result<const WebPage*> fetched = fetcher_->Fetch(url);
    if (!fetched.ok()) {
      ++result.fetch_failures;
      continue;
    }
    result.visited.push_back(url);

    html::Document doc = html::Parse((*fetched)->html);
    if (doc.root().FindFirst("form") != nullptr) {
      result.form_page_urls.push_back(url);
    }

    Result<Url> page_url = ParseUrl(url);
    if (!page_url.ok()) continue;
    Result<Url> base = DocumentBaseUrl(doc, *page_url);
    if (!base.ok()) continue;
    for (const html::Node* anchor : doc.root().FindAll("a")) {
      std::string_view href = anchor->GetAttr("href");
      if (href.empty()) continue;
      Result<Url> target = ResolveHref(*base, href);
      if (!target.ok()) continue;
      std::string target_url = target->ToString();
      result.graph.AddLink(url, target_url);
      if (depth + 1 <= options_.max_depth &&
          enqueued.insert(target_url).second) {
        frontier.emplace_back(std::move(target_url), depth + 1);
      }
    }
  }
  return result;
}

}  // namespace cafc::web
