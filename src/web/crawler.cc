#include "web/crawler.h"

#include <algorithm>
#include <chrono>
#include <deque>
#include <optional>
#include <unordered_set>
#include <utility>

#include "html/dom.h"
#include "util/string_util.h"
#include "util/thread_pool.h"
#include "web/url.h"

namespace cafc::web {

namespace {

/// Fixed chunk size of the per-level parallel scan. Like the ingestion
/// grain, chunk boundaries depend only on the level size, never on the
/// thread count.
constexpr size_t kCrawlGrain = 16;

bool Retryable(StatusCode code) {
  return code == StatusCode::kUnavailable ||
         code == StatusCode::kDeadlineExceeded;
}

/// Everything a single page contributes to the crawl, computed in
/// parallel; absorbed into the CrawlResult serially, in frontier order.
/// Every field is a deterministic function of the URL alone, which is
/// what keeps CrawlStats thread-count independent.
struct PageScan {
  Status fetch_status;                ///< OK, or the final error after retries
  FetchAttemptLog fetch_log;
  bool truncated = false;             ///< payload was cut short
  bool soft404 = false;               ///< garbage error page detected
  bool has_form = false;
  std::optional<html::Document> dom;  ///< kept only for form pages, on demand
  std::vector<PageAnchor> links;      ///< resolved anchors, document order
  double parse_ms = 0.0;
};

PageScan ScanPage(const WebFetcher& fetcher, const CrawlerOptions& options,
                  const std::string& url) {
  PageScan scan;
  Result<const WebPage*> fetched =
      FetchWithRetry(fetcher, url, options.retry, &scan.fetch_log);
  scan.fetch_status = fetched.status();
  if (!fetched.ok()) return scan;
  scan.truncated = (*fetched)->truncated;

  const auto t_parse = std::chrono::steady_clock::now();
  html::Document doc = html::Parse((*fetched)->html);
  scan.parse_ms = std::chrono::duration<double, std::milli>(
                      std::chrono::steady_clock::now() - t_parse)
                      .count();
  if (options.detect_soft404 && LooksLikeSoft404(doc)) {
    // Degrade: the page was fetched but its content is garbage. No form
    // candidacy, no link expansion — a soft-404's "links" lead nowhere.
    scan.soft404 = true;
    return scan;
  }
  scan.has_form = doc.root().FindFirst("form") != nullptr;

  Result<Url> page_url = ParseUrl(url);
  if (page_url.ok()) {
    Result<Url> base = DocumentBaseUrl(doc, *page_url);
    if (base.ok()) {
      for (const html::Node* anchor : doc.root().FindAll("a")) {
        std::string_view href = anchor->GetAttr("href");
        if (href.empty()) continue;
        Result<Url> target = ResolveHref(*base, href);
        if (!target.ok()) continue;
        PageAnchor link;
        link.target = target->ToString();
        if (options.record_anchor_text) link.text = anchor->TextContent();
        scan.links.push_back(std::move(link));
      }
    }
  }
  if (scan.has_form && options.keep_form_page_doms) {
    scan.dom.emplace(std::move(doc));
  }
  return scan;
}

}  // namespace

bool LooksLikeSoft404(const html::Document& document) {
  const html::Node* title = document.root().FindFirst("title");
  if (title == nullptr) return false;
  // Production crawlers key off exactly these title markers.
  std::string text = ToLower(title->TextContent());
  return text.find("404") != std::string::npos ||
         text.find("not found") != std::string::npos ||
         text.find("page unavailable") != std::string::npos;
}

Result<const WebPage*> FetchWithRetry(const WebFetcher& fetcher,
                                      const std::string& url,
                                      const FetchRetryPolicy& policy,
                                      FetchAttemptLog* log) {
  FetchAttemptLog local;
  FetchAttemptLog& out = log != nullptr ? *log : local;
  out = FetchAttemptLog{};
  const int max_attempts = std::max(1, policy.max_attempts);
  uint64_t backoff = policy.initial_backoff_ms;
  for (int attempt = 1;; ++attempt) {
    out.attempts = attempt;
    Result<const WebPage*> fetched = fetcher.Fetch(url);
    if (fetched.ok()) return fetched;
    if (!Retryable(fetched.status().code())) return fetched;
    if (attempt >= max_attempts) return fetched;
    if (policy.backoff_budget_ms != 0 &&
        out.backoff_ms + backoff > policy.backoff_budget_ms) {
      return fetched;  // the next wait would blow the budget: exhausted
    }
    // Virtual wait: accounted, never slept, so retry schedules are exact
    // and benchmarks stay fast.
    out.backoff_ms += backoff;
    backoff = std::min(
        static_cast<uint64_t>(static_cast<double>(backoff) *
                              std::max(1.0, policy.multiplier)),
        policy.max_backoff_ms);
  }
}

Result<Url> DocumentBaseUrl(const html::Document& document,
                            const Url& page_url) {
  const html::Node* base = document.root().FindFirst("base");
  if (base != nullptr) {
    std::string_view href = base->GetAttr("href");
    if (!href.empty()) {
      Result<Url> resolved = ResolveHref(page_url, href);
      if (resolved.ok()) return resolved;
    }
  }
  return page_url;
}

CrawlResult Crawler::Crawl(const std::vector<std::string>& seeds) const {
  return Crawl(seeds, nullptr);
}

CrawlResult Crawler::Crawl(const std::vector<std::string>& seeds,
                           const CrawlBatchCallback& on_form_pages) const {
  CrawlResult result;
  std::unordered_set<std::string> enqueued;
  const bool streaming = static_cast<bool>(on_form_pages);
  CrawlPageBatch pending;  // candidates absorbed since the last emit

  std::vector<std::string> level;  // current BFS depth, frontier order
  for (const std::string& seed : seeds) {
    Result<Url> parsed = ParseUrl(seed);
    if (!parsed.ok()) continue;
    std::string canonical = parsed->ToString();
    if (enqueued.insert(canonical).second) {
      level.push_back(std::move(canonical));
    }
  }

  // Folds one scanned page into the result and appends its newly
  // discovered links to `next`. Always called in frontier order.
  auto absorb = [&](const std::string& url, size_t depth, PageScan&& scan,
                    std::vector<std::string>* next) {
    result.parse_ms += scan.parse_ms;
    CrawlStats& stats = result.stats;
    stats.retry_attempts += static_cast<size_t>(scan.fetch_log.attempts - 1);
    stats.backoff_virtual_ms += scan.fetch_log.backoff_ms;
    if (!scan.fetch_status.ok()) {
      switch (scan.fetch_status.code()) {
        case StatusCode::kNotFound:
          ++stats.dangling_links;  // outside the universe: expected in BFS
          break;
        case StatusCode::kUnavailable:
        case StatusCode::kDeadlineExceeded:
          ++stats.retries_exhausted;
          break;
        default:
          ++stats.dead_urls;
      }
      return;
    }
    ++stats.fetched;
    if (scan.fetch_log.attempts > 1) ++stats.transient_recovered;
    if (scan.truncated) ++stats.malformed_pages;
    result.visited.push_back(url);
    if (scan.soft404) {
      ++stats.soft404_pages;
      return;  // fetched, but neither a candidate nor a link source
    }
    if (scan.has_form) {
      result.form_page_urls.push_back(url);
      if (streaming) {
        // Route the candidate (and its DOM) to the stream instead of the
        // batch result, so ingestion can start before the crawl ends and
        // DOM memory is released level by level.
        pending.urls.push_back(url);
        if (options_.keep_form_page_doms) {
          pending.doms.push_back(std::move(*scan.dom));
        }
      } else if (options_.keep_form_page_doms) {
        result.form_page_doms.push_back(std::move(*scan.dom));
      }
    }
    std::vector<PageAnchor>* recorded =
        options_.record_anchor_text ? &result.anchors[url] : nullptr;
    for (PageAnchor& link : scan.links) {
      if (options_.build_graph) result.graph.AddLink(url, link.target);
      if (depth + 1 <= options_.max_depth &&
          enqueued.insert(link.target).second) {
        next->push_back(link.target);
      }
      if (recorded != nullptr) recorded->push_back(std::move(link));
    }
  };

  // Hands the accumulated candidates to the stream. Runs on the absorbing
  // (serial) thread, so the callback may spin up its own parallel work.
  auto emit = [&](size_t at_depth) {
    if (!streaming || pending.urls.empty()) return;
    pending.depth = at_depth;
    on_form_pages(std::move(pending));
    pending = CrawlPageBatch{};
  };

  if (options_.max_pages != 0) {
    // Serial variant: the page cap can cut a level mid-way, so pages must
    // be scanned one at a time (and the stream sees one batch per page).
    std::deque<std::pair<std::string, size_t>> frontier;
    for (std::string& url : level) frontier.emplace_back(std::move(url), 0);
    while (!frontier.empty()) {
      if (result.visited.size() >= options_.max_pages) break;
      auto [url, depth] = std::move(frontier.front());
      frontier.pop_front();
      std::vector<std::string> next;
      absorb(url, depth, ScanPage(*fetcher_, options_, url), &next);
      emit(depth);
      for (std::string& target : next) {
        frontier.emplace_back(std::move(target), depth + 1);
      }
    }
    return result;
  }

  // Level-synchronous parallel BFS: scan a whole depth in parallel (each
  // chunk writes disjoint scan slots), then absorb serially in frontier
  // order — identical output to the serial crawl at any thread count.
  size_t depth = 0;
  while (!level.empty()) {
    std::vector<PageScan> scans(level.size());
    util::ParallelFor(0, level.size(), kCrawlGrain,
                      [&](size_t begin, size_t end) {
      for (size_t i = begin; i < end; ++i) {
        scans[i] = ScanPage(*fetcher_, options_, level[i]);
      }
    });
    std::vector<std::string> next;
    for (size_t i = 0; i < level.size(); ++i) {
      absorb(level[i], depth, std::move(scans[i]), &next);
    }
    emit(depth);
    level = std::move(next);
    ++depth;
  }
  return result;
}

}  // namespace cafc::web
