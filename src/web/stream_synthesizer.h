#ifndef CAFC_WEB_STREAM_SYNTHESIZER_H_
#define CAFC_WEB_STREAM_SYNTHESIZER_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "web/domain_vocab.h"
#include "web/page.h"
#include "web/synthesizer.h"

namespace cafc::web {

/// Knobs of the streaming large-web generator. Where a knob mirrors
/// SynthesizerConfig (vocabulary mixture shares) it keeps that default, so
/// streamed pages speak the same language as the paper-shaped corpus.
struct StreamingWebConfig {
  uint64_t seed = 42;

  /// Number of sites; every site hosts exactly one searchable form page,
  /// so this is also the gold form-page count. Sites are assigned to
  /// domains in contiguous blocks (site -> domain is a pure index
  /// computation), which keeps hub windows mostly homogeneous like the
  /// paper's observed hub structure.
  size_t sites = 1000;
  /// How many of the eight paper domains to use (clamped to [1, 8]).
  int domains = kNumDomains;

  /// Filler ("article") pages per site follow a truncated Zipf tail:
  /// P(filler >= x) ~ x^-zipf_exponent, capped at max_site_pages. Most
  /// sites are tiny, a few are deep — the realistic site-size skew.
  double zipf_exponent = 1.1;
  size_t max_site_pages = 8;

  /// Hub pages: `sites * hubs_per_site` hubs, each citing a contiguous
  /// window of `hub_fanout` sites (form page or, ~15% of the time, the
  /// site root — the paper's orphan-page pattern). Contiguous windows make
  /// the citing-hub set of any site computable in O(1), so the streamed
  /// ingest can attach real backlinks without inverting a random graph.
  double hubs_per_site = 0.4;
  size_t hub_fanout = 12;

  /// Body prose length of a form page (roots and fillers scale off this).
  int form_body_terms = 90;
  /// Fraction of sites whose form is a single keyword box.
  double single_attribute_fraction = 0.12;

  /// Vocabulary mixture shares — same semantics as SynthesizerConfig.
  double domain_term_share = 0.17;
  double cross_domain_noise = 0.22;
  double media_overlap_strength = 0.46;
  double travel_overlap_strength = 0.30;
  double site_vocabulary_fraction = 0.16;
};

/// \brief A synthetic web of unbounded size that is never materialized:
/// every page is a pure function of (config, url).
///
/// The eager Synthesizer builds the whole corpus up front — fine at the
/// paper's 454 form pages, hopeless at 10^5–10^6. StreamingWeb instead
/// derives each page on demand from a per-page RNG seeded by hashing the
/// config seed with the page's coordinates, so `GeneratePage(url)` returns
/// the same bytes no matter when, where, or how often it is called, and
/// generating a million-page web costs exactly the pages you touch.
///
/// Two consumption modes:
///  - Streaming (bounded RAM): `GeneratePage` returns pages by value;
///    `FormPageUrl`/`GoldDomain`/`CitingHubs` expose the gold standard and
///    link structure as index computations. This is what
///    `BuildStreamedCorpus` and the sublinear benches use.
///  - Fetcher (compatibility): `Fetch` satisfies the WebFetcher pointer-
///    stability contract by caching generated pages under a mutex — a
///    crawl that visits everything therefore materializes everything. Use
///    it for moderate sizes (the `--pages` overrides of the existing
///    benches); use the streaming mode for the large-n regime.
class StreamingWeb : public WebFetcher {
 public:
  explicit StreamingWeb(StreamingWebConfig config);

  const StreamingWebConfig& config() const { return config_; }

  // ------------------------------------------------------------- geometry

  /// One gold searchable form page per site.
  size_t num_form_pages() const { return config_.sites; }
  size_t num_hubs() const { return num_hubs_; }
  /// Total pages in the web (roots + form pages + fillers + hubs).
  /// O(sites): sums the per-site Zipf sizes.
  size_t TotalPages() const;

  std::string SiteRootUrl(size_t site) const;
  std::string FormPageUrl(size_t site) const;
  std::string FillerUrl(size_t site, size_t page) const;
  std::string HubUrl(size_t hub) const;

  /// Gold domain of site `site` (contiguous blocks over the site range).
  Domain GoldDomain(size_t site) const;
  /// True for the sites whose form is a single keyword box.
  bool SingleAttribute(size_t site) const;
  /// Filler pages of `site` (Zipf-distributed, deterministic per seed).
  size_t FillerPages(size_t site) const;

  /// URLs of the hub pages citing `site`, derived in O(hub_fanout) from
  /// the contiguous-window layout — no graph inversion, no materialized
  /// web. Every returned hub's page really does link to the site (form
  /// page or root).
  std::vector<std::string> CitingHubs(size_t site) const;

  // ----------------------------------------------------------- generation

  /// Generates `url` from scratch: same bytes for the same (config, url)
  /// on every call. NotFound for URLs outside the web's universe. This is
  /// the bounded-RAM path — nothing is retained.
  Result<WebPage> GeneratePage(std::string_view url) const;

  /// Direct by-index generation of site `site`'s gold form page —
  /// identical bytes to GeneratePage(FormPageUrl(site)), minus the URL
  /// round-trip. The streamed ingest's inner loop.
  WebPage FormPage(size_t site) const { return MakeFormPage(site); }

  /// WebFetcher compatibility: GeneratePage + cache (pointer stability).
  /// Thread-safe. Memory grows with the set of distinct URLs fetched.
  Result<const WebPage*> Fetch(std::string_view url) const override;

  /// Eagerly generates every page into a classic SyntheticWeb (pages,
  /// truth graph, gold labels, crawl seeds) so the crawl-based pipeline
  /// (BuildDataset / BuildCorpus) can consume a parameterized large web
  /// without code changes. O(TotalPages()) time and memory — the escape
  /// hatch for moderate sizes, not the million-page path.
  SyntheticWeb Materialize() const;

 private:
  struct ParsedUrl;

  WebPage MakeRoot(size_t site) const;
  WebPage MakeFormPage(size_t site) const;
  WebPage MakeFiller(size_t site, size_t page) const;
  WebPage MakeHub(size_t hub) const;
  /// First site of hub `hub`'s citation window.
  size_t HubWindowStart(size_t hub) const;
  /// Whether hub `hub` cites member slot `j` via the site root (the
  /// orphan-page pattern) instead of the form page directly.
  bool HubCitesRoot(size_t hub, size_t j) const;

  StreamingWebConfig config_;
  size_t num_hubs_ = 0;
  int num_domains_ = kNumDomains;

  mutable std::mutex cache_mutex_;
  mutable std::unordered_map<std::string, std::unique_ptr<WebPage>> cache_;
};

}  // namespace cafc::web

#endif  // CAFC_WEB_STREAM_SYNTHESIZER_H_
