#include "web/url.h"

#include <vector>

#include "util/string_util.h"

namespace cafc::web {

std::string Url::ToString() const {
  std::string out = scheme + "://" + host + path;
  if (!query.empty()) {
    out += '?';
    out += query;
  }
  return out;
}

Result<Url> ParseUrl(std::string_view input) {
  input = StripAsciiWhitespace(input);
  size_t scheme_end = input.find("://");
  if (scheme_end == std::string_view::npos || scheme_end == 0) {
    return Status::ParseError("missing scheme in URL: " + std::string(input));
  }
  Url url;
  url.scheme = ToLower(input.substr(0, scheme_end));
  if (url.scheme != "http" && url.scheme != "https") {
    return Status::ParseError("unsupported scheme: " + url.scheme);
  }
  std::string_view rest = input.substr(scheme_end + 3);
  size_t host_end = rest.find_first_of("/?#");
  std::string_view host =
      host_end == std::string_view::npos ? rest : rest.substr(0, host_end);
  if (host.empty()) {
    return Status::ParseError("missing host in URL: " + std::string(input));
  }
  url.host = ToLower(host);
  if (host_end == std::string_view::npos) {
    url.path = "/";
    return url;
  }
  rest = rest.substr(host_end);
  size_t frag = rest.find('#');
  if (frag != std::string_view::npos) rest = rest.substr(0, frag);
  size_t query_start = rest.find('?');
  if (query_start != std::string_view::npos) {
    url.query = std::string(rest.substr(query_start + 1));
    rest = rest.substr(0, query_start);
  }
  url.path = rest.empty() || rest[0] != '/' ? "/" + std::string(rest)
                                            : std::string(rest);
  return url;
}

Result<Url> ResolveHref(const Url& base, std::string_view href) {
  href = StripAsciiWhitespace(href);
  if (href.empty()) return Status::ParseError("empty href");
  if (href.find("://") != std::string_view::npos) return ParseUrl(href);
  if (StartsWith(href, "mailto:") || StartsWith(href, "javascript:") ||
      StartsWith(href, "ftp:") || StartsWith(href, "#")) {
    return Status::ParseError("unsupported href: " + std::string(href));
  }
  Url out = base;
  out.query.clear();
  size_t frag = href.find('#');
  if (frag != std::string_view::npos) href = href.substr(0, frag);
  size_t query_start = href.find('?');
  if (query_start != std::string_view::npos) {
    out.query = std::string(href.substr(query_start + 1));
    href = href.substr(0, query_start);
  }
  if (!href.empty() && href[0] == '/') {
    out.path = std::string(href);
    return out;
  }
  // Relative: resolve against the base directory, handling "." / "..".
  std::string dir = base.path.substr(0, base.path.rfind('/') + 1);
  std::vector<std::string> segments;
  for (const std::string& seg : SplitNonEmpty(dir, '/')) {
    segments.push_back(seg);
  }
  for (const std::string& seg : SplitNonEmpty(href, '/')) {
    if (seg == ".") continue;
    if (seg == "..") {
      if (!segments.empty()) segments.pop_back();
      continue;
    }
    segments.push_back(seg);
  }
  out.path = "/" + Join(segments, "/");
  // Keep a trailing slash if the href had one (directory-style link).
  if (!href.empty() && href.back() == '/' && out.path.back() != '/') {
    out.path += '/';
  }
  return out;
}

std::string SiteOf(std::string_view url) {
  Result<Url> parsed = ParseUrl(url);
  return parsed.ok() ? parsed->host : std::string();
}

std::string RootPageOf(const Url& url) {
  return url.scheme + "://" + url.host + "/";
}

}  // namespace cafc::web
