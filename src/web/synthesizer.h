#ifndef CAFC_WEB_SYNTHESIZER_H_
#define CAFC_WEB_SYNTHESIZER_H_

#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "web/domain_vocab.h"
#include "web/link_graph.h"
#include "web/page.h"

namespace cafc::web {

/// Gold-standard record for one searchable form page.
struct FormPageInfo {
  std::string url;       ///< the page containing the searchable form
  std::string root_url;  ///< root page of its site (backlink fallback)
  Domain domain;
  bool single_attribute = false;
  /// True for the deliberately ambiguous Music+Movie stores the paper found
  /// ("forms which actually search databases that have information from
  /// both domains", §4.2). Their gold label is Music.
  bool ambiguous_media = false;
  /// True for outlier pages: idiosyncratic vocabulary far from everything
  /// (the outliers §3.3 warns can poison greedy hub-cluster selection when
  /// small clusters are admitted).
  bool outlier_vocabulary = false;
};

/// \brief The generated corpus: pages, true link graph, and gold labels.
///
/// `graph` is the *true* hyperlink graph (every `<a href>` in the generated
/// HTML); algorithms must not read it directly — they see it only through a
/// BacklinkIndex, which simulates a search engine's incomplete `link:` API.
class SyntheticWeb : public WebFetcher {
 public:
  SyntheticWeb() = default;
  SyntheticWeb(SyntheticWeb&&) = default;
  SyntheticWeb& operator=(SyntheticWeb&&) = default;

  Result<const WebPage*> Fetch(std::string_view url) const override;

  /// All generated pages (form pages, roots, hubs, noise).
  const std::vector<WebPage>& pages() const { return pages_; }
  /// Gold standard: every searchable form page with its true domain.
  const std::vector<FormPageInfo>& form_pages() const { return form_pages_; }
  /// URLs of all hub pages (diagnostics only).
  const std::vector<std::string>& hub_urls() const { return hub_urls_; }
  /// Crawl entry points (directories and site roots).
  const std::vector<std::string>& seed_urls() const { return seed_urls_; }
  /// True hyperlink graph.
  const LinkGraph& graph() const { return graph_; }

  /// Gold domain of `form_page_url`, or nullptr if it is not a gold form
  /// page.
  const FormPageInfo* FindFormPage(std::string_view url) const;

 private:
  friend class SyntheticWebBuilder;
  friend class StreamingWeb;  // Materialize() fills the same fields

  std::vector<WebPage> pages_;
  std::unordered_map<std::string, size_t> index_;
  std::vector<FormPageInfo> form_pages_;
  std::vector<std::string> hub_urls_;
  std::vector<std::string> seed_urls_;
  LinkGraph graph_;
};

/// Tunable knobs of the corpus generator. Defaults reproduce the paper's
/// §4.1 data set shape: 454 searchable form pages (56 single-attribute) in
/// 8 domains, with ~3,450 hub clusters of which ~69% are homogeneous.
struct SynthesizerConfig {
  uint64_t seed = 42;

  /// Searchable form pages (total across the 8 domains) and how many of
  /// them are single-attribute keyword interfaces.
  int form_pages_total = 454;
  int single_attribute_forms = 56;

  /// Hub structure. Homogeneous hubs cite form pages of one domain; mixed
  /// hubs co-cite 2–4 domains; directory hubs span most domains (the
  /// "online directories" the paper calls out as heterogeneous); large
  /// hubs (cardinality >= 14) are generated only for Airfare and Hotel,
  /// matching the paper's observation.
  int homogeneous_hubs_per_domain = 360;
  int mixed_hubs = 1100;
  int directory_hubs = 24;
  int large_air_hotel_hubs = 30;

  /// Fraction of form pages that receive no direct backlinks (hubs cite
  /// their site root instead) — the paper saw >15% with no backlinks.
  double orphan_form_fraction = 0.16;

  /// Non-searchable forms (login, newsletter, quote request) and formless
  /// noise pages, for crawler/classifier realism.
  int non_searchable_form_pages = 60;
  int noise_pages = 80;

  /// Fraction of Music/Movie body vocabulary drawn from the shared media
  /// pool (drives the paper's Music↔Movie confusion).
  double media_overlap_strength = 0.46;
  /// Same for the travel trio (Airfare / Hotel / CarRental).
  double travel_overlap_strength = 0.30;
  /// Fraction of any page's body terms drawn from a random other domain
  /// (vocabulary heterogeneity / noise).
  double cross_domain_noise = 0.22;
  /// Fraction of body terms drawn from the site's domain vocabulary; the
  /// remainder is generic web chrome.
  double domain_term_share = 0.17;
  /// Each site uses only this fraction of its domain's vocabulary —
  /// intra-domain heterogeneity (§2.3's hard case for content clustering).
  double site_vocabulary_fraction = 0.16;
  /// Probability that a multi-attribute form carries one attribute
  /// borrowed from another vertical (schema-level noise).
  double foreign_attribute_prob = 0.20;
  /// Number of deliberately ambiguous Music+Movie stores (§4.2, Figure 4).
  int ambiguous_media_stores = 4;
  /// Number of outlier form pages with idiosyncratic vocabulary, each cited
  /// only by tiny dedicated hubs — the §3.3 failure mode for low
  /// min-cardinality thresholds in SelectHubClusters.
  int outlier_pages = 10;
};

/// \brief Generates a SyntheticWeb from a config. Deterministic per seed.
class Synthesizer {
 public:
  explicit Synthesizer(SynthesizerConfig config) : config_(config) {}

  SyntheticWeb Generate() const;

  const SynthesizerConfig& config() const { return config_; }

 private:
  SynthesizerConfig config_;
};

}  // namespace cafc::web

#endif  // CAFC_WEB_SYNTHESIZER_H_
