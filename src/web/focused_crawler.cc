#include "web/focused_crawler.h"

#include <algorithm>
#include <queue>
#include <unordered_set>

#include "html/dom.h"
#include "web/domain_vocab.h"
#include "web/url.h"

namespace cafc::web {
namespace {

/// Frontier entry. Higher score pops first; among equal scores, earlier
/// discovery wins (stable, deterministic order).
struct FrontierEntry {
  double score;
  uint64_t sequence;
  std::string url;
};

struct FrontierCompare {
  bool operator()(const FrontierEntry& a, const FrontierEntry& b) const {
    if (a.score != b.score) return a.score < b.score;  // max-heap on score
    return a.sequence > b.sequence;                    // FIFO tie-break
  }
};

}  // namespace

FocusedCrawler::FocusedCrawler(const WebFetcher* fetcher,
                               FocusedCrawlerOptions options)
    : fetcher_(fetcher), options_(std::move(options)) {
  std::vector<std::string> raw = options_.target_terms;
  if (raw.empty()) {
    raw = GenericFormTerms();
    raw.insert(raw.end(), {"database", "databases", "directory", "listings"});
  }
  for (const std::string& term : raw) {
    for (std::string& stem : analyzer_.Analyze(term)) {
      target_stems_.push_back(std::move(stem));
    }
  }
  std::sort(target_stems_.begin(), target_stems_.end());
  target_stems_.erase(
      std::unique(target_stems_.begin(), target_stems_.end()),
      target_stems_.end());
}

double FocusedCrawler::ScoreLink(std::string_view anchor_text,
                                 std::string_view url,
                                 bool parent_had_form) const {
  auto is_target = [this](const std::string& stem) {
    return std::binary_search(target_stems_.begin(), target_stems_.end(),
                              stem);
  };
  double score = 0.0;
  for (const std::string& stem : analyzer_.Analyze(anchor_text)) {
    if (is_target(stem)) score += options_.anchor_weight;
  }
  // URL path tokens: split on the usual separators via the analyzer.
  size_t path_start = url.find("://");
  std::string_view path =
      path_start == std::string_view::npos ? url : url.substr(path_start + 3);
  size_t slash = path.find('/');
  if (slash != std::string_view::npos) path = path.substr(slash);
  for (const std::string& stem : analyzer_.Analyze(path)) {
    if (is_target(stem)) score += options_.url_weight;
  }
  if (parent_had_form) score += options_.parent_form_bonus;
  return score;
}

CrawlResult FocusedCrawler::Crawl(
    const std::vector<std::string>& seeds) const {
  CrawlResult result;
  std::priority_queue<FrontierEntry, std::vector<FrontierEntry>,
                      FrontierCompare>
      frontier;
  std::unordered_set<std::string> enqueued;
  uint64_t sequence = 0;

  for (const std::string& seed : seeds) {
    Result<Url> parsed = ParseUrl(seed);
    if (!parsed.ok()) continue;
    std::string canonical = parsed->ToString();
    if (enqueued.insert(canonical).second) {
      // Seeds start with their URL-only score so promising seeds go first.
      frontier.push(FrontierEntry{ScoreLink("", canonical, false),
                                  sequence++, std::move(canonical)});
    }
  }

  while (!frontier.empty()) {
    if (options_.max_pages != 0 &&
        result.visited.size() >= options_.max_pages) {
      break;
    }
    FrontierEntry top = frontier.top();
    frontier.pop();

    FetchAttemptLog log;
    Result<const WebPage*> fetched =
        FetchWithRetry(*fetcher_, top.url, options_.retry, &log);
    result.stats.retry_attempts += static_cast<size_t>(log.attempts - 1);
    result.stats.backoff_virtual_ms += log.backoff_ms;
    if (!fetched.ok()) {
      switch (fetched.status().code()) {
        case StatusCode::kNotFound:
          ++result.stats.dangling_links;
          break;
        case StatusCode::kUnavailable:
        case StatusCode::kDeadlineExceeded:
          ++result.stats.retries_exhausted;
          break;
        default:
          ++result.stats.dead_urls;
      }
      continue;
    }
    ++result.stats.fetched;
    if (log.attempts > 1) ++result.stats.transient_recovered;
    if ((*fetched)->truncated) ++result.stats.malformed_pages;
    result.visited.push_back(top.url);

    html::Document doc = html::Parse((*fetched)->html);
    if (options_.detect_soft404 && LooksLikeSoft404(doc)) {
      ++result.stats.soft404_pages;
      continue;  // fetched, but neither a candidate nor a link source
    }
    bool has_form = doc.root().FindFirst("form") != nullptr;
    if (has_form) result.form_page_urls.push_back(top.url);

    Result<Url> page_url = ParseUrl(top.url);
    if (!page_url.ok()) continue;
    Result<Url> base = DocumentBaseUrl(doc, *page_url);
    if (!base.ok()) continue;
    for (const html::Node* anchor : doc.root().FindAll("a")) {
      std::string_view href = anchor->GetAttr("href");
      if (href.empty()) continue;
      Result<Url> target = ResolveHref(*base, href);
      if (!target.ok()) continue;
      std::string target_url = target->ToString();
      result.graph.AddLink(top.url, target_url);
      if (enqueued.insert(target_url).second) {
        double score =
            ScoreLink(anchor->TextContent(), target_url, has_form);
        frontier.push(
            FrontierEntry{score, sequence++, std::move(target_url)});
      }
    }
  }
  return result;
}

}  // namespace cafc::web
