#ifndef CAFC_WEB_URL_H_
#define CAFC_WEB_URL_H_

#include <string>
#include <string_view>

#include "util/status.h"

namespace cafc::web {

/// \brief Parsed absolute URL (scheme://host/path?query).
///
/// Only http/https are relevant to the corpus. Fragments are stripped.
struct Url {
  std::string scheme;
  std::string host;   ///< lowercase
  std::string path;   ///< always begins with '/'
  std::string query;  ///< without '?'

  /// Canonical string form.
  std::string ToString() const;

  bool operator==(const Url&) const = default;
};

/// Parses an absolute URL. Fails on missing scheme/host.
Result<Url> ParseUrl(std::string_view input);

/// Resolves `href` against `base`: absolute URLs pass through; paths
/// starting with '/' replace the base path; relative paths resolve against
/// the base directory. Returns an error for unsupported schemes (mailto,
/// javascript) and unparsable bases.
Result<Url> ResolveHref(const Url& base, std::string_view href);

/// The site of a URL — its lowercase host. Hub filtering treats two pages on
/// the same host as intra-site (§3.3).
std::string SiteOf(std::string_view url);

/// Root page of the site containing `url` (scheme://host/). Used for the
/// paper's fallback when a form page has no direct backlinks (§3.1).
std::string RootPageOf(const Url& url);

}  // namespace cafc::web

#endif  // CAFC_WEB_URL_H_
