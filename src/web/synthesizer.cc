#include "web/synthesizer.h"

#include <algorithm>
#include <cassert>
#include <string>

#include "util/rng.h"
#include "util/string_util.h"

namespace cafc::web {

Result<const WebPage*> SyntheticWeb::Fetch(std::string_view url) const {
  auto it = index_.find(std::string(url));
  if (it == index_.end()) {
    return Status::NotFound("no such page: " + std::string(url));
  }
  return &pages_[it->second];
}

const FormPageInfo* SyntheticWeb::FindFormPage(std::string_view url) const {
  for (const FormPageInfo& info : form_pages_) {
    if (info.url == url) return &info;
  }
  return nullptr;
}

namespace {

// Top-level-domain suffixes for synthetic hosts.
constexpr const char* kTlds[] = {"com", "com", "com", "net", "org"};

constexpr const char* kHubHostWords[] = {
    "links",   "portal",   "webguide", "favorites", "toplist",
    "bestof",  "netindex", "pathfinder", "surfer",  "compass",
    "gateway", "webring",  "hotlist",  "bookmarks", "navigator",
};

constexpr const char* kFormPaths[] = {
    "/search.html",   "/find.asp",     "/query.php",   "/cgi-bin/search",
    "/search/index.html", "/advanced_search.html", "/locate.jsp",
    "/dbsearch.html",
};

// Letter-only tokens for hidden-input values; the form-page model must not
// let these leak into feature vectors.
constexpr const char* kHiddenTokens[] = {
    "xkqzjw", "pqvbnm", "zzyxw", "qqklm", "vbnmp", "wwxyz",
};

}  // namespace

/// Generates the corpus. All randomness flows from the config seed.
class SyntheticWebBuilder {
 public:
  explicit SyntheticWebBuilder(const SynthesizerConfig& config)
      : config_(config), rng_(config.seed) {}

  SyntheticWeb Build() {
    PlanDomainCounts();
    GenerateFormSites();
    GenerateNonSearchableSites();
    GenerateNoisePages();
    GenerateHubs();
    return std::move(web_);
  }

 private:
  // ---------------------------------------------------------------- helpers

  const std::string& Pick(const std::vector<std::string>& pool) {
    assert(!pool.empty());
    return pool[rng_.Uniform(pool.size())];
  }

  template <typename T, size_t N>
  const T& Pick(const T (&pool)[N]) {
    return pool[rng_.Uniform(N)];
  }

  /// `n` terms sampled with replacement, space separated.
  std::string SampleTerms(const std::vector<std::string>& pool, int n) {
    std::vector<std::string> words;
    words.reserve(static_cast<size_t>(n));
    for (int i = 0; i < n; ++i) words.push_back(Pick(pool));
    return Join(words, " ");
  }

  /// Per-site slice of a domain's vocabulary: real sites each use only a
  /// fragment of their domain's language, which is exactly the intra-domain
  /// "vocabulary heterogeneity" the paper identifies as the hard case for
  /// content-only clustering (§2.3).
  std::vector<std::string> SampleSiteVocabulary(const DomainSpec& spec) {
    size_t want = std::max<size_t>(
        10,
        static_cast<size_t>(config_.site_vocabulary_fraction *
                            static_cast<double>(spec.content_terms.size())));
    want = std::min(want, spec.content_terms.size());
    std::vector<std::string> vocab;
    for (size_t idx :
         rng_.SampleWithoutReplacement(spec.content_terms.size(), want)) {
      vocab.push_back(spec.content_terms[idx]);
    }
    return vocab;
  }

  /// Body prose for a page of `domain`: a mixture of domain anchors (drawn
  /// from `site_vocab` when provided), generic web chrome, cross-domain
  /// noise, and (for Music/Movie) the shared media vocabulary.
  std::string DomainProse(Domain domain, int n_terms,
                          const std::vector<std::string>* site_vocab = nullptr,
                          double domain_share_scale = 1.0) {
    const DomainSpec& spec = GetDomainSpec(domain);
    bool media = domain == Domain::kMusic || domain == Domain::kMovie;
    bool travel = domain == Domain::kAirfare || domain == Domain::kHotel ||
                  domain == Domain::kCarRental;
    double overlap = media    ? config_.media_overlap_strength
                     : travel ? config_.travel_overlap_strength
                              : 0.0;
    const std::vector<std::string>& overlap_pool =
        media ? MediaOverlapTerms() : TravelOverlapTerms();
    double domain_share = config_.domain_term_share * domain_share_scale;
    const std::vector<std::string>& domain_pool =
        (site_vocab != nullptr && !site_vocab->empty()) ? *site_vocab
                                                        : spec.content_terms;
    std::vector<std::string> words;
    words.reserve(static_cast<size_t>(n_terms));
    for (int i = 0; i < n_terms; ++i) {
      double u = rng_.UniformDouble();
      if (u < overlap) {
        words.push_back(Pick(overlap_pool));
      } else if (u < overlap + config_.cross_domain_noise) {
        const DomainSpec& other = GetDomainSpec(
            AllDomains()[rng_.Uniform(AllDomains().size())]);
        words.push_back(Pick(other.content_terms));
      } else if (u < overlap + config_.cross_domain_noise + domain_share) {
        words.push_back(Pick(domain_pool));
      } else {
        words.push_back(Pick(GenericWebTerms()));
      }
    }
    return Join(words, " ");
  }

  /// Page titles mix domain words with generic site chrome ("welcome",
  /// "online", brand fragments), like real 2000s titles.
  std::string TitleText(const DomainSpec& spec, int n_terms) {
    std::vector<std::string> words;
    words.reserve(static_cast<size_t>(n_terms));
    for (int i = 0; i < n_terms; ++i) {
      words.push_back(rng_.Bernoulli(0.30) ? Pick(GenericWebTerms())
                                           : Pick(spec.title_terms));
    }
    return Join(words, " ");
  }

  /// Pseudo-words for outlier pages: unique, meaningless, high-IDF tokens
  /// that place the page far from every domain centroid.
  std::string JunkWord() {
    static constexpr const char* kSyllables[] = {
        "zor", "quin", "bax", "fex",  "mul",  "tro", "vel",  "gly",
        "pho", "dran", "skel", "urt", "wib",  "yax", "crum", "plen"};
    std::string word;
    int syllables = 3 + static_cast<int>(rng_.Uniform(2));
    for (int i = 0; i < syllables; ++i) {
      word += kSyllables[rng_.Uniform(std::size(kSyllables))];
    }
    return word;
  }

  std::string JunkProse(int n_terms) {
    std::vector<std::string> lexicon;
    for (int i = 0; i < 25; ++i) lexicon.push_back(JunkWord());
    std::vector<std::string> words;
    for (int i = 0; i < n_terms; ++i) {
      words.push_back(lexicon[rng_.Uniform(lexicon.size())]);
    }
    return Join(words, " ");
  }

  /// Registers a page and its outgoing links in the truth graph.
  void AddPage(std::string url, std::string html,
               const std::vector<std::string>& out_links) {
    web_.index_.emplace(url, web_.pages_.size());
    web_.graph_.Intern(url);
    for (const std::string& target : out_links) {
      web_.graph_.AddLink(url, target);
    }
    web_.pages_.push_back(WebPage{std::move(url), std::move(html)});
  }

  std::string NewHost(const std::vector<std::string>& words) {
    return "www." + Pick(words) + std::to_string(++site_counter_) + "." +
           std::string(Pick(kTlds));
  }

  // ------------------------------------------------------------------ plan

  void PlanDomainCounts() {
    int base = config_.form_pages_total / kNumDomains;
    int rem = config_.form_pages_total % kNumDomains;
    int single_base = config_.single_attribute_forms / kNumDomains;
    int single_rem = config_.single_attribute_forms % kNumDomains;
    for (int d = 0; d < kNumDomains; ++d) {
      pages_per_domain_[d] = base + (d < rem ? 1 : 0);
      singles_per_domain_[d] = single_base + (d < single_rem ? 1 : 0);
    }
  }

  // ------------------------------------------------------------ form sites

  struct RenderedForm {
    std::string html;
    int approx_form_terms = 0;
  };

  /// Renders one attribute as a table row: label cell + control cell.
  std::string RenderAttribute(const AttributeSpec& attr, int* term_count) {
    const std::string& label = attr.labels[rng_.Uniform(attr.labels.size())];
    *term_count += static_cast<int>(SplitNonEmpty(label, ' ').size());
    std::string control;
    bool as_select = attr.prefer_select && !attr.values.empty() &&
                     rng_.Bernoulli(0.85);
    std::string field_name = ToLower(label);
    std::replace(field_name.begin(), field_name.end(), ' ', '_');
    if (as_select) {
      control = "<select name=\"" + field_name + "\">\n";
      control += "<option value=\"\">" +
                 std::string(rng_.Bernoulli(0.5) ? "any" : "select one") +
                 "</option>\n";
      // A site shows a subset of the canonical value list, and real-world
      // option lists are database *contents*: they carry site-specific
      // noise (chrome entries, off-vertical values) alongside the canonical
      // values. This is exactly why the paper downweights option text.
      size_t show = std::max<size_t>(
          2, attr.values.size() - rng_.Uniform(attr.values.size() / 2 + 1));
      for (size_t v = 0; v < show && v < attr.values.size(); ++v) {
        std::string value = attr.values[v];
        if (rng_.Bernoulli(0.45)) {
          const DomainSpec& other = GetDomainSpec(
              AllDomains()[rng_.Uniform(AllDomains().size())]);
          value = rng_.Bernoulli(0.5) ? Pick(other.content_terms)
                                      : Pick(GenericWebTerms());
        }
        control += "<option value=\"" + std::to_string(v) + "\">" + value +
                   "</option>\n";
        *term_count += static_cast<int>(SplitNonEmpty(value, ' ').size());
      }
      control += "</select>";
    } else {
      control = "<input type=\"text\" name=\"" + field_name +
                "\" size=\"" + std::to_string(10 + rng_.Uniform(20)) + "\">";
    }
    std::string label_text = label;
    label_text[0] = static_cast<char>(label_text[0] - 'a' + 'A');
    return "<tr><td><b>" + label_text + ":</b></td><td>" + control +
           "</td></tr>\n";
  }

  /// Builds a multi-attribute searchable form for `domain`, drawing
  /// `n_attrs` attributes from the domain pool (plus, for ambiguous media
  /// stores, from the other media domain too).
  RenderedForm RenderMultiAttributeForm(Domain domain, int n_attrs,
                                        bool ambiguous_media) {
    RenderedForm out;
    std::vector<const AttributeSpec*> pool;
    for (const AttributeSpec& a : GetDomainSpec(domain).attributes) {
      pool.push_back(&a);
    }
    if (ambiguous_media) {
      Domain other = domain == Domain::kMusic ? Domain::kMovie
                                              : Domain::kMusic;
      for (const AttributeSpec& a : GetDomainSpec(other).attributes) {
        pool.push_back(&a);
      }
    }
    std::vector<size_t> chosen = rng_.SampleWithoutReplacement(
        pool.size(), static_cast<size_t>(n_attrs));

    std::string rows;
    for (size_t idx : chosen) {
      rows += RenderAttribute(*pool[idx], &out.approx_form_terms);
    }
    // Real sites bolt on attributes that belong to no particular domain
    // schema (zip code, price range, generic keyword) or borrow from
    // another vertical — schema-level noise for the FC space.
    if (rng_.Bernoulli(config_.foreign_attribute_prob)) {
      const DomainSpec& other = GetDomainSpec(
          AllDomains()[rng_.Uniform(AllDomains().size())]);
      const AttributeSpec& borrowed =
          other.attributes[rng_.Uniform(other.attributes.size())];
      rows += RenderAttribute(borrowed, &out.approx_form_terms);
    }
    const std::string& submit_word = Pick(GenericFormTerms());
    out.html = "<form action=\"" + std::string(Pick(kFormPaths)) +
               "\" method=\"get\" name=\"searchform\">\n<table>\n" + rows +
               "</table>\n<input type=\"submit\" value=\"" + submit_word +
               "\"> <input type=\"reset\" value=\"clear\">\n";
    // 1–3 hidden fields with opaque tokens (must be excluded downstream).
    int hidden = 1 + static_cast<int>(rng_.Uniform(3));
    for (int h = 0; h < hidden; ++h) {
      out.html += "<input type=\"hidden\" name=\"sid\" value=\"" +
                  std::string(Pick(kHiddenTokens)) + "\">\n";
    }
    out.html += "</form>\n";
    out.approx_form_terms += 2;
    return out;
  }

  /// Single-attribute keyword interface; ~40% of the time the descriptive
  /// label sits *outside* the FORM tags (the paper's Figure 1(c)).
  RenderedForm RenderSingleAttributeForm(Domain domain,
                                         std::string* outside_label) {
    RenderedForm out;
    const DomainSpec& spec = GetDomainSpec(domain);
    bool label_outside = rng_.Bernoulli(0.4);
    std::string label = "search " + Pick(spec.title_terms);
    if (label_outside) {
      *outside_label = "<b>" + label + "</b>\n";
    }
    out.html = "<form action=\"" + std::string(Pick(kFormPaths)) +
               "\" method=\"get\">\n";
    if (!label_outside && rng_.Bernoulli(0.6)) {
      out.html += label + " ";
      out.approx_form_terms += 2;
    }
    out.html +=
        "<input type=\"text\" name=\"" +
        std::string(rng_.Bernoulli(0.5) ? "q" : "keywords") +
        "\" size=\"25\"> <input type=\"submit\" value=\"" +
        Pick(GenericFormTerms()) + "\">\n</form>\n";
    out.approx_form_terms += 1;
    return out;
  }

  /// Page body size follows the paper's Table 1: pages with small forms are
  /// content-rich; pages with large forms are sparse.
  int BodyTermsForFormSize(int form_terms) {
    if (form_terms < 10) return 250 + static_cast<int>(rng_.Uniform(80));
    if (form_terms < 50) return 110 + static_cast<int>(rng_.Uniform(50));
    if (form_terms < 100) return 55 + static_cast<int>(rng_.Uniform(35));
    if (form_terms < 200) return 55 + static_cast<int>(rng_.Uniform(45));
    return 20 + static_cast<int>(rng_.Uniform(20));
  }

  void GenerateFormSites() {
    int ambiguous_left = config_.ambiguous_media_stores;
    int outliers_left = config_.outlier_pages;
    for (int d = 0; d < kNumDomains; ++d) {
      Domain domain = AllDomains()[static_cast<size_t>(d)];
      const DomainSpec& spec = GetDomainSpec(domain);
      for (int i = 0; i < pages_per_domain_[d]; ++i) {
        bool single = i < singles_per_domain_[d];
        bool ambiguous = false;
        if (domain == Domain::kMusic && !single && ambiguous_left > 0) {
          ambiguous = true;
          --ambiguous_left;
        }
        // The last page of the first few domains is an outlier: junk
        // vocabulary, generic one-field form.
        bool outlier = outliers_left > 0 && !single &&
                       i == pages_per_domain_[d] - 1;
        if (outlier) --outliers_left;

        std::string host = NewHost(spec.site_terms);
        std::string root_url = "http://" + host + "/";
        std::string form_path = Pick(kFormPaths);
        std::string form_url = "http://" + host + form_path;

        // --- form page ---
        std::string outside_label;
        RenderedForm form;
        if (outlier) {
          form.html =
              "<form action=\"/cgi-bin/search\" method=\"get\">\n"
              "<input type=\"text\" name=\"keyword\" size=\"20\">\n"
              "<input type=\"submit\" value=\"search\">\n</form>\n";
          form.approx_form_terms = 1;
        } else if (single) {
          form = RenderSingleAttributeForm(domain, &outside_label);
        } else {
          // Attribute count skews mid-size; a few very large forms exist.
          int n_attrs;
          double u = rng_.UniformDouble();
          size_t pool = spec.attributes.size();
          if (u < 0.40) {
            n_attrs = 2 + static_cast<int>(rng_.Uniform(2));  // 2-3
          } else if (u < 0.80) {
            n_attrs = 4 + static_cast<int>(rng_.Uniform(2));  // 4-5
          } else {
            n_attrs = 6 + static_cast<int>(rng_.Uniform(4));  // 6-9
          }
          n_attrs = std::min<int>(n_attrs,
                                  static_cast<int>(ambiguous ? pool * 2 : pool));
          form = RenderMultiAttributeForm(domain, n_attrs, ambiguous);
        }

        int body_terms = BodyTermsForFormSize(form.approx_form_terms);
        // Table 1's flip side: pages hosting large forms are not only
        // short on text, what text they have is mostly site chrome — PC is
        // weak exactly where FC is strong.
        double share_scale = form.approx_form_terms >= 100  ? 0.10
                             : form.approx_form_terms >= 50 ? 0.25
                             : form.approx_form_terms >= 10 ? 0.80
                                                            : 1.0;
        std::vector<std::string> site_vocab = SampleSiteVocabulary(spec);
        std::string title =
            TitleText(spec, 3 + static_cast<int>(rng_.Uniform(3)));

        std::string html = "<html><head><title>" + title +
                           "</title></head>\n<body>\n";
        html += "<h1>" + TitleText(spec, 2) + "</h1>\n";
        // Navigation chrome (links stay on-site).
        html += "<p><a href=\"/\">home</a> | <a href=\"/about.html\">about "
                "us</a> | <a href=\"/help.html\">help</a></p>\n";
        std::string prose;
        if (outlier) {
          // Weird but not alien: junk dominates, yet enough real domain
          // text remains that agglomerative methods can eventually place
          // the page — it is the *greedy seed selection* that outliers
          // must fool, per §3.3.
          prose = JunkProse((body_terms * 11) / 20) + " " +
                  DomainProse(domain, (body_terms * 9) / 20, &site_vocab);
        } else if (ambiguous) {
          prose = DomainProse(Domain::kMusic, body_terms / 2) + " " +
                  DomainProse(Domain::kMovie, body_terms - body_terms / 2);
        } else {
          prose = DomainProse(domain, body_terms, &site_vocab, share_scale);
        }
        html += "<p>" + prose + "</p>\n";
        html += outside_label;
        html += form.html;
        html += "<p>" + SampleTerms(GenericWebTerms(), 12) + "</p>\n";
        html += "</body></html>\n";

        AddPage(form_url, std::move(html), {root_url});

        // --- root page (intra-site hub; must be filtered by CAFC-CH) ---
        std::string root_html =
            "<html><head><title>" + title + "</title></head>\n<body>\n";
        root_html += "<h1>" + TitleText(spec, 3) + "</h1>\n";
        root_html += "<p>" + DomainProse(domain, 100, &site_vocab) + "</p>\n";
        root_html += "<p><a href=\"" + form_path + "\">" +
                     SampleTerms(GenericFormTerms(), 2) + "</a></p>\n";
        root_html += "<p>" + SampleTerms(GenericWebTerms(), 30) + "</p>\n";
        root_html += "</body></html>\n";
        AddPage(root_url, std::move(root_html), {form_url});
        web_.seed_urls_.push_back(root_url);

        FormPageInfo info;
        info.url = form_url;
        info.root_url = root_url;
        info.domain = domain;
        info.single_attribute = single;
        info.ambiguous_media = ambiguous;
        info.outlier_vocabulary = outlier;
        web_.form_pages_.push_back(std::move(info));
      }
    }
    // Interleave domains in the gold list so clustering seeds drawn from a
    // prefix are not all one domain.
    rng_.Shuffle(&web_.form_pages_);
  }

  // ----------------------------------------------- non-searchable / noise

  void GenerateNonSearchableSites() {
    for (int i = 0; i < config_.non_searchable_form_pages; ++i) {
      Domain domain = AllDomains()[rng_.Uniform(AllDomains().size())];
      const DomainSpec& spec = GetDomainSpec(domain);
      std::string host = NewHost(spec.site_terms);
      std::string url = "http://" + host + "/" +
                        (rng_.Bernoulli(0.5) ? "login.html" : "signup.html");
      std::string html = "<html><head><title>member login</title></head>\n"
                         "<body>\n<p>" +
                         DomainProse(domain, 60) + "</p>\n";
      int kind = static_cast<int>(rng_.Uniform(3));
      if (kind == 0) {
        html +=
            "<form action=\"/login.cgi\" method=\"post\">\n"
            "username <input type=\"text\" name=\"username\">\n"
            "password <input type=\"password\" name=\"password\">\n"
            "<input type=\"submit\" value=\"login\">\n</form>\n";
      } else if (kind == 1) {
        html +=
            "<form action=\"/subscribe\" method=\"post\">\n"
            "email address <input type=\"text\" name=\"email\">\n"
            "<input type=\"submit\" value=\"subscribe\">\n</form>\n";
      } else {
        html +=
            "<form action=\"/quote\" method=\"post\">\n"
            "your name <input type=\"text\" name=\"name\">\n"
            "phone <input type=\"text\" name=\"phone\">\n"
            "comments <textarea name=\"comments\"></textarea>\n"
            "<input type=\"submit\" value=\"request a quote\">\n</form>\n";
      }
      html += "</body></html>\n";
      AddPage(url, std::move(html), {});
      web_.seed_urls_.push_back(url);
      non_searchable_urls_.push_back(url);
    }
  }

  void GenerateNoisePages() {
    for (int i = 0; i < config_.noise_pages; ++i) {
      Domain domain = AllDomains()[rng_.Uniform(AllDomains().size())];
      std::string host = NewHost(GetDomainSpec(domain).site_terms);
      std::string url = "http://" + host + "/article" +
                        std::to_string(i) + ".html";
      std::string html = "<html><head><title>" +
                         SampleTerms(GenericWebTerms(), 4) +
                         "</title></head>\n<body>\n<p>" +
                         DomainProse(domain, 180) + "</p>\n</body></html>\n";
      AddPage(url, std::move(html), {});
      noise_urls_.push_back(url);
      web_.seed_urls_.push_back(url);
    }
  }

  // ------------------------------------------------------------------ hubs

  /// Form pages of one domain, as indices into web_.form_pages_. Outlier
  /// pages are excluded — they are only cited by their dedicated tiny hubs.
  std::vector<size_t> DomainMembers(Domain domain) const {
    std::vector<size_t> out;
    for (size_t i = 0; i < web_.form_pages_.size(); ++i) {
      if (web_.form_pages_[i].domain == domain &&
          !web_.form_pages_[i].outlier_vocabulary) {
        out.push_back(i);
      }
    }
    return out;
  }

  /// The URL a hub uses to cite form page `index`: orphan pages are cited
  /// via their site root only.
  const std::string& CiteUrl(size_t index) const {
    const FormPageInfo& info = web_.form_pages_[index];
    return orphan_[index] ? info.root_url : info.url;
  }

  void EmitHub(const std::vector<size_t>& members, Domain flavor) {
    const DomainSpec& spec = GetDomainSpec(flavor);
    std::string host = NewHost(hub_host_words_);
    std::string url = "http://" + host + "/links.html";
    std::string html = "<html><head><title>" +
                       SampleTerms(spec.title_terms, 2) +
                       " directory</title></head>\n<body>\n<ul>\n";
    std::vector<std::string> targets;
    for (size_t index : members) {
      const std::string& cite = CiteUrl(index);
      const DomainSpec& member_spec =
          GetDomainSpec(web_.form_pages_[index].domain);
      html += "<li><a href=\"" + cite + "\">" +
              SampleTerms(member_spec.title_terms, 2) + "</a></li>\n";
      targets.push_back(cite);
    }
    // Occasionally link a noise page (keeps the crawl frontier honest).
    if (!noise_urls_.empty() && rng_.Bernoulli(0.1)) {
      const std::string& noise = noise_urls_[rng_.Uniform(noise_urls_.size())];
      html += "<li><a href=\"" + noise + "\">" +
              SampleTerms(GenericWebTerms(), 2) + "</a></li>\n";
      targets.push_back(noise);
    }
    html += "</ul>\n<p>" + SampleTerms(GenericWebTerms(), 25) +
            "</p>\n</body></html>\n";
    AddPage(url, std::move(html), targets);
    web_.hub_urls_.push_back(url);
    web_.seed_urls_.push_back(url);
  }

  /// Cardinality distribution for homogeneous in-domain hubs: mostly small,
  /// a usable tail above the paper's cardinality-8 filter. Only some
  /// domains have hubs above cardinality 9 — at high thresholds the
  /// surviving clusters no longer cover every domain, which is the paper's
  /// explanation for the right side of Figure 3.
  size_t SampleHubCardinality(Domain domain) {
    bool deep = domain != Domain::kBook && domain != Domain::kCarRental;
    double top_band = deep ? 0.96 : 0.985;
    double u = rng_.UniformDouble();
    if (u < 0.58) return 1 + rng_.Uniform(3);                // 1-3
    if (u < 0.85) return 4 + rng_.Uniform(3);                // 4-6
    if (u < top_band) return 7 + rng_.Uniform(3);            // 7-9
    return 10 + rng_.Uniform(4);                             // 10-13
  }

  void GenerateHubs() {
    hub_host_words_.assign(std::begin(kHubHostWords),
                           std::end(kHubHostWords));

    // Mark orphan form pages (no direct backlinks; cited via root).
    orphan_.assign(web_.form_pages_.size(), false);
    size_t orphan_count = static_cast<size_t>(
        config_.orphan_form_fraction *
        static_cast<double>(web_.form_pages_.size()));
    for (size_t idx : rng_.SampleWithoutReplacement(web_.form_pages_.size(),
                                                    orphan_count)) {
      orphan_[idx] = true;
    }

    // Homogeneous hubs.
    for (Domain domain : AllDomains()) {
      std::vector<size_t> members = DomainMembers(domain);
      for (int h = 0; h < config_.homogeneous_hubs_per_domain; ++h) {
        size_t card = std::min(SampleHubCardinality(domain), members.size());
        std::vector<size_t> chosen;
        for (size_t pos :
             rng_.SampleWithoutReplacement(members.size(), card)) {
          chosen.push_back(members[pos]);
        }
        EmitHub(chosen, domain);
      }
    }

    // Large hubs exist only for Airfare and Hotel (paper §4.2: hub clusters
    // with 14+ form pages only contain Air and Hotel).
    for (int h = 0; h < config_.large_air_hotel_hubs; ++h) {
      Domain domain = rng_.Bernoulli(0.5) ? Domain::kAirfare : Domain::kHotel;
      std::vector<size_t> members = DomainMembers(domain);
      size_t card = std::min<size_t>(14 + rng_.Uniform(7), members.size());
      std::vector<size_t> chosen;
      for (size_t pos : rng_.SampleWithoutReplacement(members.size(), card)) {
        chosen.push_back(members[pos]);
      }
      EmitHub(chosen, domain);
    }

    // Mixed hubs: 2-4 domains, small cardinality.
    for (int h = 0; h < config_.mixed_hubs; ++h) {
      size_t n_domains = 2 + rng_.Uniform(3);
      std::vector<size_t> chosen;
      std::vector<size_t> domain_picks = rng_.SampleWithoutReplacement(
          AllDomains().size(), n_domains);
      size_t total = 2 + rng_.Uniform(7);  // 2-8
      for (size_t t = 0; t < total; ++t) {
        Domain domain =
            AllDomains()[domain_picks[t % domain_picks.size()]];
        std::vector<size_t> members = DomainMembers(domain);
        // Degenerate tiny configs can leave a domain with no form pages;
        // skip it instead of sampling from an empty pool.
        if (members.empty()) continue;
        chosen.push_back(members[rng_.Uniform(members.size())]);
      }
      std::sort(chosen.begin(), chosen.end());
      chosen.erase(std::unique(chosen.begin(), chosen.end()), chosen.end());
      EmitHub(chosen, AllDomains()[domain_picks[0]]);
    }

    // Outlier link farms: small rings of hubs co-citing outlier pages.
    // Their clusters live at cardinality 1-6 and are maximally distant from
    // every real domain — exactly the outliers that poison the greedy
    // selection when small hub clusters are admitted (§3.3), and that the
    // cardinality filter is meant to remove.
    std::vector<size_t> outlier_indices;
    for (size_t i = 0; i < web_.form_pages_.size(); ++i) {
      if (web_.form_pages_[i].outlier_vocabulary) outlier_indices.push_back(i);
    }
    for (size_t i : outlier_indices) {
      EmitHub({i}, web_.form_pages_[i].domain);
    }
    if (outlier_indices.size() >= 3) {
      int rings = static_cast<int>(outlier_indices.size()) + 4;
      for (int r = 0; r < rings; ++r) {
        size_t card = std::min<size_t>(3 + rng_.Uniform(4),
                                       outlier_indices.size());
        std::vector<size_t> chosen;
        for (size_t pos : rng_.SampleWithoutReplacement(
                 outlier_indices.size(), card)) {
          chosen.push_back(outlier_indices[pos]);
        }
        EmitHub(chosen, web_.form_pages_[chosen[0]].domain);
      }
    }

    // Directory hubs: wide, heterogeneous (the paper's "online
    // directories" that point to databases in many different domains).
    for (int h = 0; h < config_.directory_hubs; ++h) {
      // Capped at 11 members: in the paper, only Airfare/Hotel hubs reach
      // cardinality 14+ — directories stay well below that line.
      size_t total = 10 + rng_.Uniform(2);  // 10-11
      std::vector<size_t> chosen;
      for (size_t idx : rng_.SampleWithoutReplacement(
               web_.form_pages_.size(), total)) {
        if (!web_.form_pages_[idx].outlier_vocabulary) chosen.push_back(idx);
      }
      EmitHub(chosen, AllDomains()[rng_.Uniform(AllDomains().size())]);
    }

  }

  const SynthesizerConfig& config_;
  Rng rng_;
  SyntheticWeb web_;
  int site_counter_ = 0;
  int pages_per_domain_[kNumDomains] = {};
  int singles_per_domain_[kNumDomains] = {};
  std::vector<bool> orphan_;
  std::vector<std::string> noise_urls_;
  std::vector<std::string> non_searchable_urls_;
  std::vector<std::string> hub_host_words_;
};

SyntheticWeb Synthesizer::Generate() const {
  SyntheticWebBuilder builder(config_);
  return builder.Build();
}

}  // namespace cafc::web
