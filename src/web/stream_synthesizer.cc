#include "web/stream_synthesizer.h"

#include <algorithm>
#include <cassert>
#include <charconv>
#include <cmath>
#include <utility>

#include "util/rng.h"
#include "util/string_util.h"

namespace cafc::web {

namespace {

/// Independent per-entity RNG streams. A page's bytes depend only on
/// (config.seed, stream, coordinates), never on generation order.
enum Stream : uint64_t {
  kSiteVocabStream = 1,  ///< per-site vocabulary slice
  kSiteShapeStream,      ///< per-site sizes / single-attribute choice
  kFormStream,           ///< form-page content
  kRootStream,           ///< root-page content
  kFillerStream,         ///< filler-page content
  kHubStream,            ///< hub-page content
};

/// splitmix64 finalizer-based combiner: one well-mixed 64-bit seed from the
/// config seed and up to two coordinates.
uint64_t Mix(uint64_t a, uint64_t b, uint64_t c = 0) {
  uint64_t z = a;
  for (uint64_t w : {b, c}) {
    z += 0x9e3779b97f4a7c15ULL + w;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    z ^= z >> 31;
  }
  return z;
}

constexpr std::string_view kScheme = "http://";
constexpr std::string_view kSiteHostSuffix = ".stream";
constexpr std::string_view kFormPath = "/search.html";
constexpr std::string_view kHubPath = "/links.html";

const char* kFormActions[] = {"/cgi-bin/search", "/find.asp", "/query.php",
                              "/dbsearch.html", "/results.jsp"};

const std::string& Pick(Rng& rng, const std::vector<std::string>& pool) {
  assert(!pool.empty());
  return pool[rng.Uniform(pool.size())];
}

template <typename T, size_t N>
const T& Pick(Rng& rng, const T (&pool)[N]) {
  return pool[rng.Uniform(N)];
}

std::string SampleTerms(Rng& rng, const std::vector<std::string>& pool,
                        int n) {
  std::vector<std::string> words;
  words.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) words.push_back(Pick(rng, pool));
  return Join(words, " ");
}

/// Parses a decimal index out of `text`; false on junk or trailing bytes.
bool ParseIndex(std::string_view text, size_t* out) {
  if (text.empty()) return false;
  auto [ptr, ec] = std::from_chars(text.data(), text.data() + text.size(),
                                   *out);
  return ec == std::errc() && ptr == text.data() + text.size();
}

}  // namespace

/// URL coordinates: which entity of the web a URL names.
struct StreamingWeb::ParsedUrl {
  enum Kind { kRoot, kForm, kFiller, kHub } kind = kRoot;
  size_t site = 0;  ///< site index, or hub index for kHub
  size_t page = 0;  ///< filler index for kFiller
};

StreamingWeb::StreamingWeb(StreamingWebConfig config)
    : config_(std::move(config)) {
  config_.sites = std::max<size_t>(1, config_.sites);
  num_domains_ = std::clamp(config_.domains, 1, kNumDomains);
  config_.domains = num_domains_;
  config_.hub_fanout = std::max<size_t>(1, config_.hub_fanout);
  num_hubs_ = static_cast<size_t>(
      config_.hubs_per_site * static_cast<double>(config_.sites));
}

// ---------------------------------------------------------------- geometry

std::string StreamingWeb::SiteRootUrl(size_t site) const {
  return std::string(kScheme) + "s" + std::to_string(site) +
         std::string(kSiteHostSuffix) + "/";
}

std::string StreamingWeb::FormPageUrl(size_t site) const {
  return std::string(kScheme) + "s" + std::to_string(site) +
         std::string(kSiteHostSuffix) + std::string(kFormPath);
}

std::string StreamingWeb::FillerUrl(size_t site, size_t page) const {
  return std::string(kScheme) + "s" + std::to_string(site) +
         std::string(kSiteHostSuffix) + "/p" + std::to_string(page) +
         ".html";
}

std::string StreamingWeb::HubUrl(size_t hub) const {
  return std::string(kScheme) + "h" + std::to_string(hub) +
         std::string(kSiteHostSuffix) + std::string(kHubPath);
}

Domain StreamingWeb::GoldDomain(size_t site) const {
  size_t index = site * static_cast<size_t>(num_domains_) / config_.sites;
  index = std::min(index, static_cast<size_t>(num_domains_) - 1);
  return AllDomains()[index];
}

bool StreamingWeb::SingleAttribute(size_t site) const {
  Rng rng(Mix(config_.seed, kSiteShapeStream, site));
  return rng.Bernoulli(config_.single_attribute_fraction);
}

size_t StreamingWeb::FillerPages(size_t site) const {
  // Truncated Zipf tail: X = floor(u^{-1/a}) - 1 gives
  // P(X >= x) = (x + 1)^{-a}; most sites have no fillers, a few are deep.
  Rng rng(Mix(config_.seed, kSiteShapeStream, site));
  rng.Next64();  // decorrelate from the single-attribute draw
  double u = 1.0 - rng.UniformDouble();  // (0, 1]
  double x =
      std::floor(std::pow(u, -1.0 / config_.zipf_exponent)) - 1.0;
  if (x < 0.0) return 0;
  return std::min(config_.max_site_pages,
                  static_cast<size_t>(x));
}

size_t StreamingWeb::TotalPages() const {
  size_t total = 2 * config_.sites + num_hubs_;
  for (size_t s = 0; s < config_.sites; ++s) total += FillerPages(s);
  return total;
}

size_t StreamingWeb::HubWindowStart(size_t hub) const {
  return hub * config_.sites / num_hubs_;
}

bool StreamingWeb::HubCitesRoot(size_t hub, size_t j) const {
  Rng rng(Mix(config_.seed, kHubStream, Mix(hub, j)));
  return rng.Bernoulli(0.15);
}

std::vector<std::string> StreamingWeb::CitingHubs(size_t site) const {
  std::vector<std::string> out;
  if (num_hubs_ == 0) return out;
  const size_t n_sites = config_.sites;
  const size_t fanout = std::min(config_.hub_fanout, n_sites);
  // A hub whose window starts at t covers sites t .. t+fanout-1 (mod
  // sites); the hubs citing `site` are those with window start in the
  // fanout-sized band ending at `site`. Window starts are monotone in the
  // hub index (start = hub * sites / hubs), so each band position maps to
  // a directly computable hub range.
  for (size_t back = 0; back < fanout; ++back) {
    const size_t t = (site + n_sites - back) % n_sites;
    // Hubs with floor(h * sites / hubs) == t.
    size_t lo = (t * num_hubs_ + n_sites - 1) / n_sites;       // ceil
    size_t hi = ((t + 1) * num_hubs_ + n_sites - 1) / n_sites; // ceil
    for (size_t h = lo; h < hi && h < num_hubs_; ++h) {
      if (HubWindowStart(h) == t) out.push_back(HubUrl(h));
    }
  }
  return out;
}

// -------------------------------------------------------------- generation

/// Per-site slice of the domain vocabulary — same role as the eager
/// synthesizer's SampleSiteVocabulary: intra-domain heterogeneity.
static std::vector<std::string> SiteVocabulary(
    const StreamingWebConfig& config, size_t site, const DomainSpec& spec) {
  Rng rng(Mix(config.seed, kSiteVocabStream, site));
  size_t want = std::max<size_t>(
      10, static_cast<size_t>(config.site_vocabulary_fraction *
                              static_cast<double>(spec.content_terms.size())));
  want = std::min(want, spec.content_terms.size());
  std::vector<std::string> vocab;
  for (size_t idx :
       rng.SampleWithoutReplacement(spec.content_terms.size(), want)) {
    vocab.push_back(spec.content_terms[idx]);
  }
  return vocab;
}

/// Body prose mixture — the streaming analog of DomainProse: domain terms
/// (from the site slice), generic chrome, cross-domain noise, and the
/// media/travel overlap pools that drive the paper's confusions.
static std::string Prose(Rng& rng, const StreamingWebConfig& config,
                         Domain domain, int n_terms,
                         const std::vector<std::string>& site_vocab) {
  const DomainSpec& spec = GetDomainSpec(domain);
  bool media = domain == Domain::kMusic || domain == Domain::kMovie;
  bool travel = domain == Domain::kAirfare || domain == Domain::kHotel ||
                domain == Domain::kCarRental;
  double overlap = media    ? config.media_overlap_strength
                   : travel ? config.travel_overlap_strength
                            : 0.0;
  const std::vector<std::string>& overlap_pool =
      media ? MediaOverlapTerms() : TravelOverlapTerms();
  const std::vector<std::string>& domain_pool =
      site_vocab.empty() ? spec.content_terms : site_vocab;
  std::vector<std::string> words;
  words.reserve(static_cast<size_t>(n_terms));
  for (int i = 0; i < n_terms; ++i) {
    double u = rng.UniformDouble();
    if (u < overlap) {
      words.push_back(Pick(rng, overlap_pool));
    } else if (u < overlap + config.cross_domain_noise) {
      const DomainSpec& other =
          GetDomainSpec(AllDomains()[rng.Uniform(AllDomains().size())]);
      words.push_back(Pick(rng, other.content_terms));
    } else if (u < overlap + config.cross_domain_noise +
                       config.domain_term_share) {
      words.push_back(Pick(rng, domain_pool));
    } else {
      words.push_back(Pick(rng, GenericWebTerms()));
    }
  }
  return Join(words, " ");
}

static std::string TitleText(Rng& rng, const DomainSpec& spec, int n_terms) {
  std::vector<std::string> words;
  words.reserve(static_cast<size_t>(n_terms));
  for (int i = 0; i < n_terms; ++i) {
    words.push_back(rng.Bernoulli(0.30) ? Pick(rng, GenericWebTerms())
                                        : Pick(rng, spec.title_terms));
  }
  return Join(words, " ");
}

/// One attribute row: label cell + select/text control, mirroring the
/// eager synthesizer's rendering so downstream extraction sees the same
/// HTML idiom.
static std::string RenderAttribute(Rng& rng, const AttributeSpec& attr) {
  const std::string& label = attr.labels[rng.Uniform(attr.labels.size())];
  std::string field_name = ToLower(label);
  std::replace(field_name.begin(), field_name.end(), ' ', '_');
  std::string control;
  if (attr.prefer_select && !attr.values.empty() && rng.Bernoulli(0.85)) {
    control = "<select name=\"" + field_name + "\">\n<option value=\"\">" +
              std::string(rng.Bernoulli(0.5) ? "any" : "select one") +
              "</option>\n";
    size_t show = std::max<size_t>(
        2, attr.values.size() - rng.Uniform(attr.values.size() / 2 + 1));
    for (size_t v = 0; v < show && v < attr.values.size(); ++v) {
      control += "<option value=\"" + std::to_string(v) + "\">" +
                 attr.values[v] + "</option>\n";
    }
    control += "</select>";
  } else {
    control = "<input type=\"text\" name=\"" + field_name + "\" size=\"" +
              std::to_string(10 + rng.Uniform(20)) + "\">";
  }
  std::string label_text = label;
  label_text[0] = static_cast<char>(label_text[0] - 'a' + 'A');
  return "<tr><td><b>" + label_text + ":</b></td><td>" + control +
         "</td></tr>\n";
}

WebPage StreamingWeb::MakeFormPage(size_t site) const {
  Rng rng(Mix(config_.seed, kFormStream, site));
  Domain domain = GoldDomain(site);
  const DomainSpec& spec = GetDomainSpec(domain);
  std::vector<std::string> site_vocab =
      SiteVocabulary(config_, site, spec);

  std::string form;
  if (SingleAttribute(site)) {
    form = "<form action=\"" + std::string(Pick(rng, kFormActions)) +
           "\" method=\"get\">\nsearch " + Pick(rng, spec.title_terms) +
           " <input type=\"text\" name=\"" +
           std::string(rng.Bernoulli(0.5) ? "q" : "keywords") +
           "\" size=\"25\"> <input type=\"submit\" value=\"" +
           Pick(rng, GenericFormTerms()) + "\">\n</form>\n";
  } else {
    size_t n_attrs =
        std::min<size_t>(2 + rng.Uniform(4), spec.attributes.size());
    std::string rows;
    for (size_t idx :
         rng.SampleWithoutReplacement(spec.attributes.size(), n_attrs)) {
      rows += RenderAttribute(rng, spec.attributes[idx]);
    }
    form = "<form action=\"" + std::string(Pick(rng, kFormActions)) +
           "\" method=\"get\" name=\"searchform\">\n<table>\n" + rows +
           "</table>\n<input type=\"submit\" value=\"" +
           Pick(rng, GenericFormTerms()) +
           "\"> <input type=\"reset\" value=\"clear\">\n"
           "<input type=\"hidden\" name=\"sid\" value=\"xkqzjw\">\n"
           "</form>\n";
  }

  std::string title = TitleText(rng, spec, 3 + static_cast<int>(rng.Uniform(3)));
  std::string html = "<html><head><title>" + title +
                     "</title></head>\n<body>\n<h1>" +
                     TitleText(rng, spec, 2) + "</h1>\n";
  html += "<p><a href=\"/\">home</a></p>\n";
  html += "<p>" +
          Prose(rng, config_, domain, config_.form_body_terms, site_vocab) +
          "</p>\n";
  html += form;
  html += "<p>" + SampleTerms(rng, GenericWebTerms(), 12) +
          "</p>\n</body></html>\n";
  return WebPage{FormPageUrl(site), std::move(html)};
}

WebPage StreamingWeb::MakeRoot(size_t site) const {
  Rng rng(Mix(config_.seed, kRootStream, site));
  Domain domain = GoldDomain(site);
  const DomainSpec& spec = GetDomainSpec(domain);
  std::vector<std::string> site_vocab =
      SiteVocabulary(config_, site, spec);
  std::string html = "<html><head><title>" + TitleText(rng, spec, 3) +
                     "</title></head>\n<body>\n<h1>" +
                     TitleText(rng, spec, 3) + "</h1>\n";
  html += "<p>" +
          Prose(rng, config_, domain, config_.form_body_terms, site_vocab) +
          "</p>\n";
  html += "<p><a href=\"" + std::string(kFormPath) + "\">" +
          SampleTerms(rng, GenericFormTerms(), 2) + "</a></p>\n<ul>\n";
  const size_t fillers = FillerPages(site);
  for (size_t p = 0; p < fillers; ++p) {
    html += "<li><a href=\"/p" + std::to_string(p) + ".html\">" +
            SampleTerms(rng, spec.title_terms, 2) + "</a></li>\n";
  }
  html += "</ul>\n<p>" + SampleTerms(rng, GenericWebTerms(), 30) +
          "</p>\n</body></html>\n";
  return WebPage{SiteRootUrl(site), std::move(html)};
}

WebPage StreamingWeb::MakeFiller(size_t site, size_t page) const {
  Rng rng(Mix(config_.seed, kFillerStream, Mix(site, page)));
  Domain domain = GoldDomain(site);
  const DomainSpec& spec = GetDomainSpec(domain);
  std::vector<std::string> site_vocab =
      SiteVocabulary(config_, site, spec);
  std::string html = "<html><head><title>" + TitleText(rng, spec, 4) +
                     "</title></head>\n<body>\n<p>" +
                     Prose(rng, config_, domain,
                           config_.form_body_terms * 2, site_vocab) +
                     "</p>\n<p><a href=\"/\">home</a></p>\n</body></html>\n";
  return WebPage{FillerUrl(site, page), std::move(html)};
}

WebPage StreamingWeb::MakeHub(size_t hub) const {
  Rng rng(Mix(config_.seed, kHubStream, hub));
  const size_t start = HubWindowStart(hub);
  const size_t fanout = std::min(config_.hub_fanout, config_.sites);
  const DomainSpec& flavor = GetDomainSpec(GoldDomain(start));
  std::string html = "<html><head><title>" +
                     SampleTerms(rng, flavor.title_terms, 2) +
                     " directory</title></head>\n<body>\n<ul>\n";
  for (size_t j = 0; j < fanout; ++j) {
    const size_t member = (start + j) % config_.sites;
    const std::string cite = HubCitesRoot(hub, j) ? SiteRootUrl(member)
                                                  : FormPageUrl(member);
    const DomainSpec& member_spec = GetDomainSpec(GoldDomain(member));
    html += "<li><a href=\"" + cite + "\">" +
            SampleTerms(rng, member_spec.title_terms, 2) + "</a></li>\n";
  }
  html += "</ul>\n<p>" + SampleTerms(rng, GenericWebTerms(), 25) +
          "</p>\n</body></html>\n";
  return WebPage{HubUrl(hub), std::move(html)};
}

Result<WebPage> StreamingWeb::GeneratePage(std::string_view url) const {
  // Decode scheme://{s|h}<index>.stream/<path> back into coordinates.
  auto reject = [&url]() {
    return Status::NotFound("no such page: " + std::string(url));
  };
  if (url.substr(0, kScheme.size()) != kScheme) return reject();
  std::string_view rest = url.substr(kScheme.size());
  size_t slash = rest.find('/');
  if (slash == std::string_view::npos) return reject();
  std::string_view host = rest.substr(0, slash);
  std::string_view path = rest.substr(slash);
  if (host.size() <= 1 + kSiteHostSuffix.size() ||
      host.substr(host.size() - kSiteHostSuffix.size()) != kSiteHostSuffix) {
    return reject();
  }
  char kind = host[0];
  size_t index = 0;
  if (!ParseIndex(host.substr(1, host.size() - 1 - kSiteHostSuffix.size()),
                  &index)) {
    return reject();
  }
  if (kind == 'h') {
    if (index >= num_hubs_ || path != kHubPath) return reject();
    return MakeHub(index);
  }
  if (kind != 's' || index >= config_.sites) return reject();
  if (path == "/") return MakeRoot(index);
  if (path == kFormPath) return MakeFormPage(index);
  if (path.size() > 7 && path.substr(0, 2) == "/p" &&
      path.substr(path.size() - 5) == ".html") {
    size_t page = 0;
    if (!ParseIndex(path.substr(2, path.size() - 7), &page)) return reject();
    if (page >= FillerPages(index)) return reject();
    return MakeFiller(index, page);
  }
  return reject();
}

Result<const WebPage*> StreamingWeb::Fetch(std::string_view url) const {
  {
    std::lock_guard<std::mutex> lock(cache_mutex_);
    auto it = cache_.find(std::string(url));
    if (it != cache_.end()) return it->second.get();
  }
  Result<WebPage> page = GeneratePage(url);
  if (!page.ok()) return page.status();
  std::lock_guard<std::mutex> lock(cache_mutex_);
  auto [it, inserted] = cache_.emplace(
      std::string(url), std::make_unique<WebPage>(std::move(*page)));
  return it->second.get();
}

// ----------------------------------------------------------- materialize

SyntheticWeb StreamingWeb::Materialize() const {
  SyntheticWeb web;
  auto add = [&web](WebPage page, const std::vector<std::string>& links) {
    web.index_.emplace(page.url, web.pages_.size());
    web.graph_.Intern(page.url);
    for (const std::string& target : links) {
      web.graph_.AddLink(page.url, target);
    }
    web.pages_.push_back(std::move(page));
  };
  for (size_t s = 0; s < config_.sites; ++s) {
    const std::string root_url = SiteRootUrl(s);
    const std::string form_url = FormPageUrl(s);
    std::vector<std::string> root_links = {form_url};
    const size_t fillers = FillerPages(s);
    for (size_t p = 0; p < fillers; ++p) {
      root_links.push_back(FillerUrl(s, p));
    }
    add(MakeRoot(s), root_links);
    add(MakeFormPage(s), {root_url});
    for (size_t p = 0; p < fillers; ++p) {
      add(MakeFiller(s, p), {root_url});
    }
    web.seed_urls_.push_back(root_url);

    FormPageInfo info;
    info.url = form_url;
    info.root_url = root_url;
    info.domain = GoldDomain(s);
    info.single_attribute = SingleAttribute(s);
    web.form_pages_.push_back(std::move(info));
  }
  for (size_t h = 0; h < num_hubs_; ++h) {
    const size_t start = HubWindowStart(h);
    const size_t fanout = std::min(config_.hub_fanout, config_.sites);
    std::vector<std::string> targets;
    targets.reserve(fanout);
    for (size_t j = 0; j < fanout; ++j) {
      const size_t member = (start + j) % config_.sites;
      targets.push_back(HubCitesRoot(h, j) ? SiteRootUrl(member)
                                           : FormPageUrl(member));
    }
    WebPage page = MakeHub(h);
    web.hub_urls_.push_back(page.url);
    web.seed_urls_.push_back(page.url);
    add(std::move(page), targets);
  }
  return web;
}

}  // namespace cafc::web
