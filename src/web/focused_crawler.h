#ifndef CAFC_WEB_FOCUSED_CRAWLER_H_
#define CAFC_WEB_FOCUSED_CRAWLER_H_

#include <string>
#include <vector>

#include "text/analyzer.h"
#include "web/crawler.h"
#include "web/page.h"

namespace cafc::web {

/// Options of the focused crawler.
struct FocusedCrawlerOptions {
  /// Stop after fetching this many pages (0 = unlimited).
  size_t max_pages = 0;
  /// Retry policy applied to every fetch (see FetchRetryPolicy).
  FetchRetryPolicy retry;
  /// Detect soft-404s by their title and drop them from candidacy and link
  /// expansion (same heuristic as the BFS crawler).
  bool detect_soft404 = true;
  /// Terms (stemmed by the crawler's analyzer) that signal a promising
  /// link; defaults to form-chrome vocabulary ("search", "find", ...).
  /// Domain-focused crawls add the target domain's vocabulary.
  std::vector<std::string> target_terms;
  /// Score contribution of a target term in the anchor text.
  double anchor_weight = 2.0;
  /// Score contribution of a target term in the URL path.
  double url_weight = 1.0;
  /// Bonus for links discovered on a page that itself contained a form
  /// (form-rich neighbourhoods keep paying off).
  double parent_form_bonus = 0.5;
};

/// \brief Best-first crawler prioritizing links likely to lead to
/// searchable forms — the "crawler [3]" (Barbosa & Freire, WebDB'05) that
/// collected half the paper's data set. Where the BFS `Crawler` exhausts
/// the frontier in discovery order, this one scores each link by its
/// anchor text and URL tokens against a target vocabulary and always
/// expands the most promising link next.
///
/// The output is the same CrawlResult; `visited` reflects the best-first
/// fetch order, so harvest-rate curves (forms found per page fetched) can
/// be compared against the BFS baseline.
class FocusedCrawler {
 public:
  explicit FocusedCrawler(const WebFetcher* fetcher,
                          FocusedCrawlerOptions options = {});

  CrawlResult Crawl(const std::vector<std::string>& seeds) const;

  /// Link-priority score used by the frontier (exposed for tests).
  double ScoreLink(std::string_view anchor_text, std::string_view url,
                   bool parent_had_form) const;

 private:
  const WebFetcher* fetcher_;  // not owned
  FocusedCrawlerOptions options_;
  text::Analyzer analyzer_;
  std::vector<std::string> target_stems_;  // sorted for binary search
};

}  // namespace cafc::web

#endif  // CAFC_WEB_FOCUSED_CRAWLER_H_
