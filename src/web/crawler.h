#ifndef CAFC_WEB_CRAWLER_H_
#define CAFC_WEB_CRAWLER_H_

#include <string>
#include <vector>

#include "html/dom.h"
#include "web/link_graph.h"
#include "web/url.h"
#include "web/page.h"

namespace cafc::web {

/// Crawl limits.
struct CrawlerOptions {
  /// Stop after fetching this many pages (0 = unlimited).
  size_t max_pages = 0;
  /// Maximum link depth from a seed (seeds are depth 0).
  size_t max_depth = 8;
};

/// Output of a crawl.
struct CrawlResult {
  /// URLs fetched, in BFS order.
  std::vector<std::string> visited;
  /// URLs of fetched pages that contain at least one `<form>` element —
  /// the raw candidate set fed to the searchable-form classifier.
  std::vector<std::string> form_page_urls;
  /// Hyperlink graph discovered by parsing fetched pages. Contains only
  /// edges whose source was fetched; targets may be unfetched frontier.
  LinkGraph graph;
  /// Fetches that failed (dangling links).
  size_t fetch_failures = 0;
};

/// Effective base URL for resolving a page's links: the first
/// `<base href>` of the document when present and parsable, otherwise the
/// page's own URL (HTML4 §12.4 behaviour that 2000s sites relied on).
Result<Url> DocumentBaseUrl(const html::Document& document,
                            const Url& page_url);

/// \brief Breadth-first crawler over a WebFetcher.
///
/// Parses each fetched page with the HTML DOM parser, resolves `<a href>`
/// values against the page URL, and records the link structure. This is the
/// "Web crawler [3]" substrate the paper uses to gather half its data set.
class Crawler {
 public:
  explicit Crawler(const WebFetcher* fetcher, CrawlerOptions options = {})
      : fetcher_(fetcher), options_(options) {}

  /// Crawls from `seeds` until the frontier is exhausted or limits hit.
  CrawlResult Crawl(const std::vector<std::string>& seeds) const;

 private:
  const WebFetcher* fetcher_;  // not owned
  CrawlerOptions options_;
};

}  // namespace cafc::web

#endif  // CAFC_WEB_CRAWLER_H_
