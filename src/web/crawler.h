#ifndef CAFC_WEB_CRAWLER_H_
#define CAFC_WEB_CRAWLER_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "html/dom.h"
#include "web/link_graph.h"
#include "web/url.h"
#include "web/page.h"

namespace cafc::web {

/// Crawl limits and capture options.
struct CrawlerOptions {
  /// Stop after fetching this many pages (0 = unlimited).
  size_t max_pages = 0;
  /// Maximum link depth from a seed (seeds are depth 0).
  size_t max_depth = 8;
  /// Retain the parsed DOM of every page containing a `<form>` element,
  /// aligned with CrawlResult::form_page_urls, so downstream stages can
  /// consume candidate pages without re-parsing them.
  bool keep_form_page_doms = false;
  /// Record every fetched page's resolved anchors (target URL + anchor
  /// text) in CrawlResult::anchors, so anchor-text consumers (backlink hub
  /// mining) never need to re-fetch or re-parse a page the crawl saw.
  bool record_anchor_text = false;
  /// Build CrawlResult::graph from the discovered links. Callers that get
  /// link structure elsewhere (BuildDataset uses the synthesizer's full
  /// graph for backlinks) can turn this off to skip the per-anchor
  /// interning work.
  bool build_graph = true;
};

/// One resolved `<a href>` on a fetched page: the absolute target URL and
/// the anchor's text content (empty unless record_anchor_text is set).
struct PageAnchor {
  std::string target;
  std::string text;
};

/// Output of a crawl.
struct CrawlResult {
  /// URLs fetched, in BFS order.
  std::vector<std::string> visited;
  /// URLs of fetched pages that contain at least one `<form>` element —
  /// the raw candidate set fed to the searchable-form classifier.
  std::vector<std::string> form_page_urls;
  /// Parsed DOMs aligned with `form_page_urls`; filled only when
  /// CrawlerOptions::keep_form_page_doms is set.
  std::vector<html::Document> form_page_doms;
  /// Hyperlink graph discovered by parsing fetched pages. Contains only
  /// edges whose source was fetched; targets may be unfetched frontier.
  LinkGraph graph;
  /// Per fetched page, its resolved anchors in document order; filled only
  /// when CrawlerOptions::record_anchor_text is set.
  std::unordered_map<std::string, std::vector<PageAnchor>> anchors;
  /// Fetches that failed (dangling links).
  size_t fetch_failures = 0;
  /// Worker-summed wall time spent in html::Parse across the crawl
  /// (CPU-time-like: can exceed the crawl's wall time with many threads).
  double parse_ms = 0.0;
};

/// Effective base URL for resolving a page's links: the first
/// `<base href>` of the document when present and parsable, otherwise the
/// page's own URL (HTML4 §12.4 behaviour that 2000s sites relied on).
Result<Url> DocumentBaseUrl(const html::Document& document,
                            const Url& page_url);

/// \brief Breadth-first crawler over a WebFetcher.
///
/// Parses each fetched page with the HTML DOM parser, resolves `<a href>`
/// values against the page URL, and records the link structure. This is the
/// "Web crawler [3]" substrate the paper uses to gather half its data set.
///
/// When no page cap is set, each BFS level's fetch + parse + link
/// extraction runs in parallel over the default thread pool; pages are
/// then absorbed serially in frontier order, so visited order, candidate
/// order, graph contents and dedup decisions are bit-identical to the
/// serial crawl at any thread count. With max_pages != 0 the crawl runs
/// serially (the cap cuts a level mid-way, which is an inherently
/// sequential condition).
class Crawler {
 public:
  explicit Crawler(const WebFetcher* fetcher, CrawlerOptions options = {})
      : fetcher_(fetcher), options_(options) {}

  /// Crawls from `seeds` until the frontier is exhausted or limits hit.
  CrawlResult Crawl(const std::vector<std::string>& seeds) const;

 private:
  const WebFetcher* fetcher_;  // not owned
  CrawlerOptions options_;
};

}  // namespace cafc::web

#endif  // CAFC_WEB_CRAWLER_H_
