#ifndef CAFC_WEB_CRAWLER_H_
#define CAFC_WEB_CRAWLER_H_

#include <cstdint>
#include <functional>
#include <string>
#include <unordered_map>
#include <vector>

#include "html/dom.h"
#include "web/link_graph.h"
#include "web/url.h"
#include "web/page.h"

namespace cafc::web {

/// \brief Per-fetch retry policy with deterministic exponential backoff.
///
/// Backoff is *virtual*: no thread ever sleeps. The would-be wait is
/// accumulated on a per-URL virtual clock (CrawlStats::backoff_virtual_ms)
/// so degradation benchmarks can report retry overhead without the bench
/// itself becoming slow or timing-dependent.
struct FetchRetryPolicy {
  /// Total attempts per URL (1 = never retry). Only kUnavailable and
  /// kDeadlineExceeded are retried; kNotFound is a dangling link and any
  /// other error is treated as a permanently dead URL.
  int max_attempts = 3;
  /// Virtual wait before the first retry; doubles (times `multiplier`)
  /// each further retry, capped at `max_backoff_ms`.
  uint64_t initial_backoff_ms = 100;
  double multiplier = 2.0;
  uint64_t max_backoff_ms = 2000;
  /// Per-URL budget on the summed virtual backoff: once the next wait
  /// would exceed it, the fetch is abandoned as exhausted (0 = unlimited).
  uint64_t backoff_budget_ms = 10000;
};

/// Crawl limits and capture options.
struct CrawlerOptions {
  /// Stop after fetching this many pages (0 = unlimited).
  size_t max_pages = 0;
  /// Maximum link depth from a seed (seeds are depth 0).
  size_t max_depth = 8;
  /// Retry policy applied to every fetch (see FetchRetryPolicy).
  FetchRetryPolicy retry;
  /// Detect soft-404s ("200 OK" error pages) by their title and drop them
  /// from candidacy and link expansion; they still count as fetched.
  bool detect_soft404 = true;
  /// Retain the parsed DOM of every page containing a `<form>` element,
  /// aligned with CrawlResult::form_page_urls, so downstream stages can
  /// consume candidate pages without re-parsing them.
  bool keep_form_page_doms = false;
  /// Record every fetched page's resolved anchors (target URL + anchor
  /// text) in CrawlResult::anchors, so anchor-text consumers (backlink hub
  /// mining) never need to re-fetch or re-parse a page the crawl saw.
  bool record_anchor_text = false;
  /// Build CrawlResult::graph from the discovered links. Callers that get
  /// link structure elsewhere (BuildDataset uses the synthesizer's full
  /// graph for backlinks) can turn this off to skip the per-anchor
  /// interning work.
  bool build_graph = true;
};

/// \brief Failure taxonomy + retry accounting of a crawl.
///
/// Replaces the old single `fetch_failures` counter, which conflated
/// dangling links (expected in any BFS over an open frontier) with real
/// fetch errors — a conflation that would mask injected faults. Every
/// counter is a sum of per-URL deterministic events folded serially in
/// frontier order, so the whole struct is bit-identical at any thread
/// count and participates in parallel-equivalence comparisons.
struct CrawlStats {
  /// Pages fetched successfully (including after retries).
  size_t fetched = 0;
  /// kNotFound targets outside the fetcher's universe — expected BFS
  /// frontier noise, NOT a fetch error.
  size_t dangling_links = 0;
  /// Pages that failed transiently at least once but were recovered by a
  /// retry (subset of `fetched`).
  size_t transient_recovered = 0;
  /// Retryable errors (kUnavailable / kDeadlineExceeded) that outlived
  /// the attempt or backoff budget.
  size_t retries_exhausted = 0;
  /// Permanent fetch errors (anything else): dead hosts, refused
  /// connections. Never retried.
  size_t dead_urls = 0;
  /// Fetched pages whose payload was cut short (WebPage::truncated);
  /// parsed and used as far as they go — degraded, never fatal.
  size_t malformed_pages = 0;
  /// Soft-404 garbage pages detected by the title heuristic; fetched but
  /// excluded from candidacy and link expansion.
  size_t soft404_pages = 0;
  /// Re-fetch attempts issued beyond each URL's first attempt.
  size_t retry_attempts = 0;
  /// Summed virtual backoff the retry loops would have slept.
  uint64_t backoff_virtual_ms = 0;

  /// Real failures: everything except dangling links and recoveries.
  size_t fetch_failures() const { return retries_exhausted + dead_urls; }

  bool operator==(const CrawlStats&) const = default;
};

/// One resolved `<a href>` on a fetched page: the absolute target URL and
/// the anchor's text content (empty unless record_anchor_text is set).
struct PageAnchor {
  std::string target;
  std::string text;
};

/// Output of a crawl.
struct CrawlResult {
  /// URLs fetched, in BFS order.
  std::vector<std::string> visited;
  /// URLs of fetched pages that contain at least one `<form>` element —
  /// the raw candidate set fed to the searchable-form classifier.
  std::vector<std::string> form_page_urls;
  /// Parsed DOMs aligned with `form_page_urls`; filled only when
  /// CrawlerOptions::keep_form_page_doms is set.
  std::vector<html::Document> form_page_doms;
  /// Hyperlink graph discovered by parsing fetched pages. Contains only
  /// edges whose source was fetched; targets may be unfetched frontier.
  LinkGraph graph;
  /// Per fetched page, its resolved anchors in document order; filled only
  /// when CrawlerOptions::record_anchor_text is set.
  std::unordered_map<std::string, std::vector<PageAnchor>> anchors;
  /// Failure taxonomy and retry accounting (thread-count independent).
  CrawlStats stats;
  /// Worker-summed wall time spent in html::Parse across the crawl
  /// (CPU-time-like: can exceed the crawl's wall time with many threads).
  double parse_ms = 0.0;
};

/// \brief One batch of newly absorbed candidate form pages, emitted while
/// the crawl is still running (the streaming-ingest path).
///
/// The parallel crawl emits one batch per BFS depth (after the level's
/// serial absorption), the capped serial crawl one per absorbed page —
/// either way in frontier order, so the concatenation of all batches'
/// `urls` equals CrawlResult::form_page_urls exactly.
struct CrawlPageBatch {
  size_t depth = 0;
  /// Candidate URLs absorbed at this depth, in frontier order.
  std::vector<std::string> urls;
  /// Parsed DOMs aligned with `urls`; filled only when
  /// CrawlerOptions::keep_form_page_doms is set. Ownership transfers to
  /// the callback — these DOMs do NOT also appear in
  /// CrawlResult::form_page_doms.
  std::vector<html::Document> doms;
};

/// Receives candidate batches during the crawl. Called serially between
/// level absorptions (never concurrently with itself or the scan loop), so
/// it may freely run its own parallel work.
using CrawlBatchCallback = std::function<void(CrawlPageBatch&&)>;

/// Per-URL record of what FetchWithRetry did, for folding into CrawlStats.
struct FetchAttemptLog {
  int attempts = 1;          ///< fetch attempts issued (>= 1)
  uint64_t backoff_ms = 0;   ///< summed virtual backoff
};

/// \brief Fetches `url`, retrying retryable failures (kUnavailable /
/// kDeadlineExceeded) with deterministic exponential backoff on a virtual
/// clock — no real sleeps. Returns the first success or the final error;
/// `log` (optional) receives the attempt count and virtual backoff.
/// Deterministic per URL: independent of threads and wall time.
Result<const WebPage*> FetchWithRetry(const WebFetcher& fetcher,
                                      const std::string& url,
                                      const FetchRetryPolicy& policy,
                                      FetchAttemptLog* log = nullptr);

/// \brief Title heuristic for soft-404s: "200 OK" responses whose content
/// is really an error page ("404", "not found", "page unavailable" in the
/// `<title>`). Such pages must not become form candidates and their links
/// must not be expanded.
bool LooksLikeSoft404(const html::Document& document);

/// Effective base URL for resolving a page's links: the first
/// `<base href>` of the document when present and parsable, otherwise the
/// page's own URL (HTML4 §12.4 behaviour that 2000s sites relied on).
Result<Url> DocumentBaseUrl(const html::Document& document,
                            const Url& page_url);

/// \brief Breadth-first crawler over a WebFetcher.
///
/// Parses each fetched page with the HTML DOM parser, resolves `<a href>`
/// values against the page URL, and records the link structure. This is the
/// "Web crawler [3]" substrate the paper uses to gather half its data set.
///
/// Resilience: every fetch goes through FetchWithRetry, truncated payloads
/// degrade to whatever parsed (a cut-off form page simply stops being a
/// candidate), and soft-404 garbage is detected and skipped — under any
/// FaultProfile the crawl completes and classifies every URL into the
/// CrawlStats taxonomy instead of crashing.
///
/// When no page cap is set, each BFS level's fetch + parse + link
/// extraction runs in parallel over the default thread pool; pages are
/// then absorbed serially in frontier order, so visited order, candidate
/// order, graph contents, dedup decisions and all CrawlStats counters are
/// bit-identical to the serial crawl at any thread count. With
/// max_pages != 0 the crawl runs serially (the cap cuts a level mid-way,
/// which is an inherently sequential condition).
class Crawler {
 public:
  explicit Crawler(const WebFetcher* fetcher, CrawlerOptions options = {})
      : fetcher_(fetcher), options_(options) {}

  /// Crawls from `seeds` until the frontier is exhausted or limits hit.
  CrawlResult Crawl(const std::vector<std::string>& seeds) const;

  /// Streaming variant: emits candidate form pages to `on_form_pages` as
  /// they are absorbed instead of holding every DOM until the crawl ends
  /// (CrawlResult::form_page_doms stays empty; form_page_urls is still the
  /// full candidate list). A null callback behaves like the batch variant.
  /// Batch boundaries depend only on the BFS structure — never on the
  /// thread count — so downstream chunking over the cumulative candidate
  /// index is deterministic.
  CrawlResult Crawl(const std::vector<std::string>& seeds,
                    const CrawlBatchCallback& on_form_pages) const;

 private:
  const WebFetcher* fetcher_;  // not owned
  CrawlerOptions options_;
};

}  // namespace cafc::web

#endif  // CAFC_WEB_CRAWLER_H_
