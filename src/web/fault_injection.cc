#include "web/fault_injection.h"

#include <algorithm>
#include <utility>

namespace cafc::web {
namespace {

/// 64-bit FNV-1a over the URL bytes — the per-URL identity hash.
uint64_t HashUrl(std::string_view url) {
  uint64_t h = 0xcbf29ce484222325ULL;
  for (char c : url) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

/// Finalizer (murmur3 style) applied after folding in salts.
uint64_t Mix(uint64_t x) {
  x ^= x >> 33;
  x *= 0xff51afd7ed558ccdULL;
  x ^= x >> 33;
  x *= 0xc4ceb9fe1a85ec53ULL;
  x ^= x >> 33;
  return x;
}

/// Uniform double in [0,1) from (url, seed, salt).
double UnitHash(std::string_view url, uint64_t seed, uint64_t salt) {
  uint64_t h = Mix(HashUrl(url) ^ Mix(seed + salt));
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

/// The garbage body of a soft-404: a well-formed "200 OK" error page with
/// no links and no form — exactly the pages that poison a naive crawler's
/// candidate set. The crawler's title heuristic must catch it.
std::string Soft404Html(std::string_view url) {
  std::string html =
      "<html><head><title>404 Not Found</title></head><body>"
      "<h1>Not Found</h1><p>The requested document ";
  html.append(url);
  html +=
      " is no longer available on this server. Please check the address "
      "and try again later.</p></body></html>";
  return html;
}

}  // namespace

FaultKind FaultInjectingFetcher::KindFor(std::string_view url) const {
  if (!profile_.active()) return FaultKind::kNone;
  // Stacked bands in a fixed order; the same draw decides every band, so
  // growing one rate (others fixed) strictly grows that fault set.
  double u = UnitHash(url, profile_.seed, /*salt=*/0xfa17ULL);
  double edge = profile_.dead_rate;
  if (u < edge) return FaultKind::kDead;
  edge += profile_.transient_rate;
  if (u < edge) return FaultKind::kTransient;
  edge += profile_.slow_rate;
  if (u < edge) return FaultKind::kSlow;
  edge += profile_.truncated_rate;
  if (u < edge) return FaultKind::kTruncated;
  edge += profile_.soft404_rate;
  if (u < edge) return FaultKind::kSoft404;
  return FaultKind::kNone;
}

Result<const WebPage*> FaultInjectingFetcher::Fetch(
    std::string_view url) const {
  const FaultKind kind = KindFor(url);
  if (kind == FaultKind::kNone) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      ++stats_.fetch_calls;
    }
    return base_->Fetch(url);
  }

  std::lock_guard<std::mutex> lock(mu_);
  ++stats_.fetch_calls;
  switch (kind) {
    case FaultKind::kDead:
      ++stats_.injected_dead;
      // Permanent transport error (NXDOMAIN / connection refused):
      // deliberately NOT kUnavailable, so resilient callers classify it
      // as dead instead of burning their retry budget.
      return Status::Internal("injected fault: dead host");

    case FaultKind::kTransient: {
      int attempt = ++attempts_[std::string(url)];
      if (attempt <= profile_.transient_attempts) {
        ++stats_.injected_transient;
        return Status::Unavailable("injected fault: transient (attempt " +
                                   std::to_string(attempt) + ")");
      }
      return base_->Fetch(url);
    }

    case FaultKind::kSlow: {
      int attempt = ++attempts_[std::string(url)];
      const uint64_t lo = profile_.slow_latency_min_ms;
      const uint64_t hi = std::max(profile_.slow_latency_max_ms, lo);
      // Per-(url, attempt) draw: retries see fresh latency, so slow URLs
      // recover once an attempt lands under the budget.
      uint64_t latency =
          lo + static_cast<uint64_t>(
                   UnitHash(url, profile_.seed,
                            0x510cULL + static_cast<uint64_t>(attempt)) *
                   static_cast<double>(hi - lo + 1));
      stats_.simulated_latency_ms += latency;
      if (latency > profile_.latency_budget_ms) {
        ++stats_.injected_deadline;
        return Status::DeadlineExceeded(
            "injected fault: fetch took " + std::to_string(latency) +
            "ms (budget " + std::to_string(profile_.latency_budget_ms) +
            "ms)");
      }
      return base_->Fetch(url);
    }

    case FaultKind::kTruncated: {
      auto it = mutated_.find(std::string(url));
      if (it == mutated_.end()) {
        Result<const WebPage*> real = base_->Fetch(url);
        if (!real.ok()) return real;  // outside the universe: pass through
        // Keep a deterministic 25–75% prefix: enough to parse something,
        // rarely enough to keep the whole form.
        const std::string& html = (*real)->html;
        double keep = 0.25 + 0.5 * UnitHash(url, profile_.seed, 0x7254);
        WebPage cut;
        cut.url = (*real)->url;
        cut.html = html.substr(
            0, static_cast<size_t>(keep * static_cast<double>(html.size())));
        cut.truncated = true;
        it = mutated_.emplace(std::string(url), std::move(cut)).first;
      }
      ++stats_.truncated_served;
      return &it->second;
    }

    case FaultKind::kSoft404: {
      auto it = mutated_.find(std::string(url));
      if (it == mutated_.end()) {
        Result<const WebPage*> real = base_->Fetch(url);
        if (!real.ok()) return real;
        WebPage garbage;
        garbage.url = (*real)->url;
        garbage.html = Soft404Html(url);
        it = mutated_.emplace(std::string(url), std::move(garbage)).first;
      }
      ++stats_.soft404_served;
      return &it->second;
    }

    case FaultKind::kNone:
      break;  // unreachable
  }
  return base_->Fetch(url);
}

FaultStats FaultInjectingFetcher::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

void FaultInjectingFetcher::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  attempts_.clear();
  mutated_.clear();
  stats_ = FaultStats{};
}

}  // namespace cafc::web
