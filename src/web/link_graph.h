#ifndef CAFC_WEB_LINK_GRAPH_H_
#define CAFC_WEB_LINK_GRAPH_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace cafc::web {

/// Dense id of a page within a LinkGraph.
using PageId = uint32_t;

inline constexpr PageId kInvalidPageId = static_cast<PageId>(-1);

/// \brief Directed hyperlink graph over page URLs.
///
/// Stores forward and backward adjacency; self-links and duplicate edges
/// are dropped. URLs are canonical strings (produced by Url::ToString).
class LinkGraph {
 public:
  LinkGraph() = default;

  /// Returns the id of `url`, registering it if new.
  PageId Intern(std::string_view url);

  /// Returns the id of `url`, or kInvalidPageId.
  PageId Lookup(std::string_view url) const;

  /// Adds edge from → to (interning both). Self-links and duplicates are
  /// ignored.
  void AddLink(std::string_view from, std::string_view to);

  /// Precondition: id < num_pages().
  const std::string& url(PageId id) const { return urls_[id]; }

  size_t num_pages() const { return urls_.size(); }
  size_t num_edges() const { return num_edges_; }

  /// Pages that `id` links to.
  const std::vector<PageId>& OutLinks(PageId id) const;
  /// Pages that link to `id`.
  const std::vector<PageId>& InLinks(PageId id) const;

 private:
  std::unordered_map<std::string, PageId> index_;
  std::vector<std::string> urls_;
  std::vector<std::vector<PageId>> out_links_;
  std::vector<std::vector<PageId>> in_links_;
  size_t num_edges_ = 0;
};

}  // namespace cafc::web

#endif  // CAFC_WEB_LINK_GRAPH_H_
