#ifndef CAFC_WEB_PAGE_H_
#define CAFC_WEB_PAGE_H_

#include <string>
#include <string_view>

#include "util/status.h"

namespace cafc::web {

/// A fetched web page: canonical URL plus raw HTML.
struct WebPage {
  std::string url;
  std::string html;
  /// The transport layer detected a short read (content-length mismatch /
  /// connection cut mid-body): `html` is a prefix of the real document.
  /// Consumers must degrade gracefully — parse what arrived, never crash.
  bool truncated = false;
};

/// \brief Abstract page fetcher — the crawler's view of "the Web".
///
/// Production deployments would implement this over HTTP; the repository
/// ships `SyntheticWeb`, which serves the generated corpus.
class WebFetcher {
 public:
  virtual ~WebFetcher() = default;

  /// Fetches `url`. NotFound for URLs outside the fetcher's universe. The
  /// returned pointer remains valid for the fetcher's lifetime.
  virtual Result<const WebPage*> Fetch(std::string_view url) const = 0;
};

}  // namespace cafc::web

#endif  // CAFC_WEB_PAGE_H_
