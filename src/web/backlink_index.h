#ifndef CAFC_WEB_BACKLINK_INDEX_H_
#define CAFC_WEB_BACKLINK_INDEX_H_

#include <string>
#include <string_view>
#include <vector>

#include "web/link_graph.h"

namespace cafc::web {

/// Options simulating the limitations of a 2006 search-engine `link:` API
/// (AltaVista in the paper, §3.1).
struct BacklinkIndexOptions {
  /// Fraction of true in-links the engine has indexed; each edge is kept
  /// deterministically by hash, so coverage is stable across queries.
  double coverage = 0.75;
  /// Maximum results returned per query ("we extracted a maximum of 100
  /// backlinks" — the engine-side cap). 0 means the engine returns nothing
  /// at all, like coverage = 0 — consumers must survive both.
  size_t max_results = 100;
  /// Salt for the deterministic edge-sampling hash.
  uint64_t seed = 0;
};

/// \brief Read-only facade over a LinkGraph that mimics the `link:` query
/// facility of a search engine.
///
/// The paper cannot see the Web graph; it can only ask an engine "which
/// pages link to U?" and gets an incomplete answer. This class reproduces
/// that interface and its incompleteness, which CAFC-CH must tolerate
/// (§3.1: no backlinks at all for >15% of the collection).
class BacklinkIndex {
 public:
  /// `graph` must outlive the index.
  BacklinkIndex(const LinkGraph* graph, BacklinkIndexOptions options);

  /// URLs of indexed pages linking to `url`, capped at max_results.
  /// Unknown URLs yield an empty result (the engine has not crawled them).
  std::vector<std::string> Backlinks(std::string_view url) const;

  /// True if the engine would return at least one backlink for `url`.
  bool HasBacklinks(std::string_view url) const;

  const BacklinkIndexOptions& options() const { return options_; }

 private:
  bool EdgeIndexed(PageId from, PageId to) const;

  const LinkGraph* graph_;  // not owned
  BacklinkIndexOptions options_;
};

}  // namespace cafc::web

#endif  // CAFC_WEB_BACKLINK_INDEX_H_
