#ifndef CAFC_WEB_DOMAIN_VOCAB_H_
#define CAFC_WEB_DOMAIN_VOCAB_H_

#include <string>
#include <string_view>
#include <vector>

namespace cafc::web {

/// The eight online-database domains of the paper's gold standard (§4.1).
enum class Domain {
  kAirfare = 0,
  kAuto,
  kBook,
  kCarRental,
  kHotel,
  kJob,
  kMovie,
  kMusic,
};

inline constexpr int kNumDomains = 8;

/// All eight domains in enum order.
const std::vector<Domain>& AllDomains();

/// Human-readable domain name ("Airfare", ...).
std::string_view DomainName(Domain domain);

/// \brief One queryable attribute of a domain's form schema.
///
/// `labels` are synonymous names used by different sites for the same
/// concept (the paper's Figure 1: "Job Category" vs "Industry"); a site
/// picks one. `values` populate `<option>` tags when the attribute is
/// rendered as a select.
struct AttributeSpec {
  std::vector<std::string> labels;
  std::vector<std::string> values;
  /// Render as <select> when values are available (vs free-text input).
  bool prefer_select = false;
};

/// \brief Vocabulary and schema pool for one database domain.
struct DomainSpec {
  Domain domain;
  /// Pool of attributes; a generated form samples a subset.
  std::vector<AttributeSpec> attributes;
  /// Distinctive body vocabulary ("anchors" in the paper's terminology):
  /// high TF within the domain, low document frequency outside it.
  std::vector<std::string> content_terms;
  /// Words composing page titles.
  std::vector<std::string> title_terms;
  /// Host-name fragments for synthetic sites ("jobs", "career", ...).
  std::vector<std::string> site_terms;
};

/// Immutable spec for `domain`.
const DomainSpec& GetDomainSpec(Domain domain);

/// Generic web-boilerplate vocabulary shared by every site (navigation,
/// legal, account chrome). These are the terms the paper observes to have
/// "high frequency in form pages of all domains" and hence near-zero IDF.
const std::vector<std::string>& GenericWebTerms();

/// Generic form-chrome vocabulary (search, submit, advanced, ...), shared
/// by searchable forms in every domain.
const std::vector<std::string>& GenericFormTerms();

/// Extra vocabulary shared by the Music and Movie domains only — the
/// paper's observed "large vocabulary overlap between the two domains"
/// (§4.2) that causes most clustering mistakes.
const std::vector<std::string>& MediaOverlapTerms();

/// Extra vocabulary shared by the travel verticals (Airfare, Hotel,
/// CarRental) — reservations, destinations, dates — which makes the travel
/// trio mutually confusable for content-only clustering.
const std::vector<std::string>& TravelOverlapTerms();

}  // namespace cafc::web

#endif  // CAFC_WEB_DOMAIN_VOCAB_H_
