#include "web/backlink_index.h"

namespace cafc::web {
namespace {

uint64_t Mix(uint64_t x) {
  x ^= x >> 33;
  x *= 0xff51afd7ed558ccdULL;
  x ^= x >> 33;
  x *= 0xc4ceb9fe1a85ec53ULL;
  x ^= x >> 33;
  return x;
}

}  // namespace

BacklinkIndex::BacklinkIndex(const LinkGraph* graph,
                             BacklinkIndexOptions options)
    : graph_(graph), options_(options) {}

bool BacklinkIndex::EdgeIndexed(PageId from, PageId to) const {
  if (options_.coverage >= 1.0) return true;
  if (options_.coverage <= 0.0) return false;
  uint64_t h = Mix((static_cast<uint64_t>(from) << 32) ^ to ^ options_.seed);
  // Map the hash to [0,1) and keep the edge below the coverage threshold.
  double u = static_cast<double>(h >> 11) * 0x1.0p-53;
  return u < options_.coverage;
}

std::vector<std::string> BacklinkIndex::Backlinks(std::string_view url) const {
  std::vector<std::string> out;
  PageId id = graph_->Lookup(url);
  if (id == kInvalidPageId) return out;
  for (PageId from : graph_->InLinks(id)) {
    // Cap check first: max_results == 0 must return nothing, not one.
    if (out.size() >= options_.max_results) break;
    if (!EdgeIndexed(from, id)) continue;
    out.push_back(graph_->url(from));
  }
  return out;
}

bool BacklinkIndex::HasBacklinks(std::string_view url) const {
  PageId id = graph_->Lookup(url);
  if (id == kInvalidPageId) return false;
  for (PageId from : graph_->InLinks(id)) {
    if (EdgeIndexed(from, id)) return true;
  }
  return false;
}

}  // namespace cafc::web
