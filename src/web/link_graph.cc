#include "web/link_graph.h"

#include <algorithm>

namespace cafc::web {

PageId LinkGraph::Intern(std::string_view url) {
  auto it = index_.find(std::string(url));
  if (it != index_.end()) return it->second;
  PageId id = static_cast<PageId>(urls_.size());
  urls_.emplace_back(url);
  index_.emplace(urls_.back(), id);
  out_links_.emplace_back();
  in_links_.emplace_back();
  return id;
}

PageId LinkGraph::Lookup(std::string_view url) const {
  auto it = index_.find(std::string(url));
  return it == index_.end() ? kInvalidPageId : it->second;
}

void LinkGraph::AddLink(std::string_view from, std::string_view to) {
  PageId a = Intern(from);
  PageId b = Intern(to);
  if (a == b) return;
  auto& out = out_links_[a];
  if (std::find(out.begin(), out.end(), b) != out.end()) return;
  out.push_back(b);
  in_links_[b].push_back(a);
  ++num_edges_;
}

const std::vector<PageId>& LinkGraph::OutLinks(PageId id) const {
  return out_links_[id];
}

const std::vector<PageId>& LinkGraph::InLinks(PageId id) const {
  return in_links_[id];
}

}  // namespace cafc::web
