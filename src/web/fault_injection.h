#ifndef CAFC_WEB_FAULT_INJECTION_H_
#define CAFC_WEB_FAULT_INJECTION_H_

#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>

#include "web/page.h"

namespace cafc::web {

/// Which failure mode a URL is assigned to (at most one per URL).
enum class FaultKind {
  kNone = 0,   ///< served verbatim from the base fetcher
  kDead,       ///< permanently unreachable (non-retryable error)
  kTransient,  ///< kUnavailable for the first N attempts, then clean
  kSlow,       ///< per-attempt simulated latency vs the latency budget
  kTruncated,  ///< body cut mid-stream; WebPage::truncated set
  kSoft404,    ///< "200 OK" garbage error page instead of the real body
};

/// \brief Deterministic fault mix of a FaultInjectingFetcher.
///
/// Each URL is hashed (with `seed`) to a point in [0,1); the rates are
/// stacked bands in the fixed order dead → transient → slow → truncated →
/// soft-404, so a URL's fault kind depends only on (url, seed) — never on
/// fetch order, thread count, or which other URLs were fetched. Raising
/// one rate while the earlier bands stay fixed strictly grows that fault
/// set (the nesting that makes degradation sweeps monotone).
struct FaultProfile {
  double dead_rate = 0.0;
  double transient_rate = 0.0;
  double slow_rate = 0.0;
  double truncated_rate = 0.0;
  double soft404_rate = 0.0;

  /// Failures a transient URL serves before recovering: attempts
  /// 1..transient_attempts fail kUnavailable, attempt N+1 succeeds.
  int transient_attempts = 2;
  /// Fetch-side deadline: a slow attempt whose simulated latency exceeds
  /// this budget fails with kDeadlineExceeded instead of completing.
  uint64_t latency_budget_ms = 200;
  /// Simulated per-attempt latency of slow URLs is drawn deterministically
  /// from [min, max] by hash of (url, attempt) — some attempts land under
  /// the budget, so retries can recover slow URLs.
  uint64_t slow_latency_min_ms = 50;
  uint64_t slow_latency_max_ms = 600;
  uint64_t seed = 0;

  /// True when any fault band has non-zero width.
  bool active() const {
    return dead_rate > 0.0 || transient_rate > 0.0 || slow_rate > 0.0 ||
           truncated_rate > 0.0 || soft404_rate > 0.0;
  }
};

/// Injection counters. Totals depend only on the multiset of Fetch calls,
/// so a deterministic caller (the crawler's per-URL retry loop) sees the
/// same snapshot at any thread count.
struct FaultStats {
  size_t fetch_calls = 0;          ///< every Fetch() on this decorator
  size_t injected_dead = 0;        ///< permanent failures served
  size_t injected_transient = 0;   ///< kUnavailable failures served
  size_t injected_deadline = 0;    ///< kDeadlineExceeded failures served
  size_t truncated_served = 0;     ///< truncated bodies served
  size_t soft404_served = 0;       ///< garbage pages served
  uint64_t simulated_latency_ms = 0;  ///< summed virtual latency of slow URLs

  bool operator==(const FaultStats&) const = default;
};

/// \brief A seeded WebFetcher decorator that injects the failure modes a
/// production crawler meets on the real Web (the paper's substrate: an
/// AltaVista `link:` API missing >15% of the collection and the flaky
/// 2006 Web itself), while staying fully deterministic per (profile,
/// seed).
///
/// Thread-safe: Fetch may be called concurrently (the parallel BFS does).
/// Mutated pages (truncated / soft-404) are materialized once and cached;
/// returned pointers stay valid for the fetcher's lifetime.
///
/// The transient machinery counts *attempts per URL*, so a fetcher
/// instance represents one crawl's view of the network. Reuse across runs
/// would let a later run see already-warmed URLs — call Reset() (or build
/// a fresh decorator, it is cheap) between runs that must be comparable.
class FaultInjectingFetcher : public WebFetcher {
 public:
  /// `base` must outlive the decorator.
  FaultInjectingFetcher(const WebFetcher* base, FaultProfile profile)
      : base_(base), profile_(profile) {}

  Result<const WebPage*> Fetch(std::string_view url) const override;

  /// The fault band `url` hashes into — pure, no state.
  FaultKind KindFor(std::string_view url) const;

  const FaultProfile& profile() const { return profile_; }

  /// Snapshot of the injection counters.
  FaultStats stats() const;

  /// Clears attempt counters, mutated-page caches and stats, restoring the
  /// as-constructed state (previously returned page pointers die here).
  void Reset();

 private:
  const WebFetcher* base_;  // not owned
  FaultProfile profile_;

  mutable std::mutex mu_;
  mutable std::unordered_map<std::string, int> attempts_;
  mutable std::unordered_map<std::string, WebPage> mutated_;
  mutable FaultStats stats_;
};

}  // namespace cafc::web

#endif  // CAFC_WEB_FAULT_INJECTION_H_
