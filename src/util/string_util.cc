#include "util/string_util.h"

#include <cstdio>

namespace cafc {

char AsciiToLower(char c) {
  return (c >= 'A' && c <= 'Z') ? static_cast<char>(c - 'A' + 'a') : c;
}

std::string ToLower(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) out.push_back(AsciiToLower(c));
  return out;
}

bool IsAsciiAlpha(char c) {
  return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z');
}

bool IsAsciiDigit(char c) { return c >= '0' && c <= '9'; }

bool IsAsciiAlnum(char c) { return IsAsciiAlpha(c) || IsAsciiDigit(c); }

bool IsAsciiSpace(char c) {
  return c == ' ' || c == '\t' || c == '\n' || c == '\r' || c == '\f' ||
         c == '\v';
}

std::string_view StripAsciiWhitespace(std::string_view s) {
  size_t begin = 0;
  while (begin < s.size() && IsAsciiSpace(s[begin])) ++begin;
  size_t end = s.size();
  while (end > begin && IsAsciiSpace(s[end - 1])) --end;
  return s.substr(begin, end - begin);
}

std::vector<std::string> SplitNonEmpty(std::string_view s, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  while (start <= s.size()) {
    size_t pos = s.find(sep, start);
    if (pos == std::string_view::npos) pos = s.size();
    if (pos > start) out.emplace_back(s.substr(start, pos - start));
    start = pos + 1;
  }
  return out;
}

std::string Join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out.append(sep);
    out.append(parts[i]);
  }
  return out;
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool EndsWith(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.substr(s.size() - suffix.size()) == suffix;
}

bool EqualsIgnoreCase(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (AsciiToLower(a[i]) != AsciiToLower(b[i])) return false;
  }
  return true;
}

bool ContainsIgnoreCase(std::string_view haystack, std::string_view needle) {
  if (needle.empty()) return true;
  if (haystack.size() < needle.size()) return false;
  for (size_t i = 0; i + needle.size() <= haystack.size(); ++i) {
    if (EqualsIgnoreCase(haystack.substr(i, needle.size()), needle)) {
      return true;
    }
  }
  return false;
}

std::string FormatDouble(double value, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", digits, value);
  return buf;
}

}  // namespace cafc
