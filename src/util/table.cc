#include "util/table.h"

#include <algorithm>

namespace cafc {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {}

void Table::AddRow(std::vector<std::string> cells) {
  rows_.push_back(Row{std::move(cells), /*separator=*/false});
}

void Table::AddSeparator() { rows_.push_back(Row{{}, /*separator=*/true}); }

std::string Table::ToString() const {
  size_t columns = header_.size();
  for (const Row& row : rows_) columns = std::max(columns, row.cells.size());

  std::vector<size_t> widths(columns, 0);
  auto account = [&widths](const std::vector<std::string>& cells) {
    for (size_t i = 0; i < cells.size(); ++i) {
      widths[i] = std::max(widths[i], cells[i].size());
    }
  };
  account(header_);
  for (const Row& row : rows_) {
    if (!row.separator) account(row.cells);
  }

  auto render = [&widths, columns](const std::vector<std::string>& cells) {
    std::string line;
    for (size_t i = 0; i < columns; ++i) {
      const std::string cell = i < cells.size() ? cells[i] : "";
      line += "| ";
      line += cell;
      line.append(widths[i] - cell.size() + 1, ' ');
    }
    line += "|\n";
    return line;
  };

  std::string rule;
  for (size_t i = 0; i < columns; ++i) {
    rule += "+";
    rule.append(widths[i] + 2, '-');
  }
  rule += "+\n";

  std::string out = rule + render(header_) + rule;
  for (const Row& row : rows_) {
    out += row.separator ? rule : render(row.cells);
  }
  out += rule;
  return out;
}

}  // namespace cafc
