#ifndef CAFC_UTIL_TABLE_H_
#define CAFC_UTIL_TABLE_H_

#include <string>
#include <vector>

namespace cafc {

/// \brief Plain-text table printer used by the experiment harnesses to emit
/// the paper's rows.
///
/// Usage:
///   Table t({"config", "entropy", "f-measure"});
///   t.AddRow({"FC+PC", "0.56", "0.74"});
///   std::cout << t.ToString();
class Table {
 public:
  explicit Table(std::vector<std::string> header);

  /// Appends a row; it may have fewer cells than the header (padded empty).
  /// Extra cells are kept and widen the table.
  void AddRow(std::vector<std::string> cells);

  /// Appends a horizontal separator row.
  void AddSeparator();

  size_t num_rows() const { return rows_.size(); }

  /// Renders the table with column-aligned cells and a header rule.
  std::string ToString() const;

 private:
  struct Row {
    std::vector<std::string> cells;
    bool separator = false;
  };

  std::vector<std::string> header_;
  std::vector<Row> rows_;
};

}  // namespace cafc

#endif  // CAFC_UTIL_TABLE_H_
