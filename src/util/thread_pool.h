#ifndef CAFC_UTIL_THREAD_POOL_H_
#define CAFC_UTIL_THREAD_POOL_H_

#include <cstddef>
#include <functional>
#include <thread>

namespace cafc::util {

/// \brief A reusable fixed-size worker pool for data-parallel loops.
///
/// The pool exists to make the clustering hot loops (k-means assignment,
/// HAC similarity matrices, repeated-run averaging) scale with cores while
/// keeping results *bit-identical* to the serial code. The determinism
/// contract is:
///
///   * `ParallelFor` splits `[begin, end)` into fixed chunks of `grain`
///     indices. Chunk boundaries depend only on (begin, end, grain) —
///     never on the thread count or scheduling order.
///   * The callback receives disjoint `[chunk_begin, chunk_end)` ranges,
///     so as long as it writes only to slots derived from those indices
///     (the pattern used by every caller in this repo), the memory image
///     after the loop is independent of how chunks were interleaved.
///
/// Cross-chunk reductions (e.g. floating-point sums) must therefore be
/// performed by the caller *after* the loop, in chunk order, to stay
/// deterministic.
///
/// `threads` counts total concurrency including the calling thread: a pool
/// of size N owns N-1 workers and the caller executes chunks too. Size 1
/// means strictly serial inline execution (no worker threads at all).
class ThreadPool {
 public:
  /// Creates a pool with `threads` total lanes (minimum 1). Values < 1 are
  /// clamped to 1.
  explicit ThreadPool(int threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int num_threads() const { return num_threads_; }

  /// Explicit teardown: waits for any in-flight `ParallelFor` to finish its
  /// remaining chunks, then joins every worker. Safe to call more than once
  /// (later calls are no-ops) and called implicitly by the destructor.
  /// After shutdown the pool stays usable — `ParallelFor` runs its chunks
  /// serially inline on the calling thread — so owners with ordered
  /// teardown (DirectoryServer stops its pool before releasing state the
  /// loops may touch) do not need to null out references.
  void Shutdown();

  /// Runs `fn(chunk_begin, chunk_end)` over `[begin, end)` split into
  /// chunks of at most `grain` indices (grain < 1 is treated as 1).
  /// Blocks until every chunk finished. The first exception thrown by any
  /// chunk is rethrown on the calling thread (remaining chunks still run
  /// to completion). Calls from inside a pool worker run inline serially,
  /// so nested parallel sections cannot deadlock.
  void ParallelFor(size_t begin, size_t end, size_t grain,
                   const std::function<void(size_t, size_t)>& fn);

  /// The process-wide default pool used by the free `ParallelFor`. Sized
  /// by the last `SetDefaultThreads` call, else the `CAFC_THREADS`
  /// environment variable, else `std::thread::hardware_concurrency()`.
  /// Lazily constructed; never destroyed (workers are detached-joined at
  /// process exit via static destruction order being irrelevant to them).
  static ThreadPool* Default();

  /// Resizes the default pool. `threads` <= 0 restores the automatic
  /// sizing (environment / hardware). Not safe to call concurrently with
  /// running `ParallelFor` loops; intended for startup (CLI flag parsing)
  /// and tests.
  static void SetDefaultThreads(int threads);

  /// The thread count the default pool has (or would have) right now,
  /// honoring any active ScopedThreads override on this thread.
  static int EffectiveThreads();

 private:
  struct Impl;
  Impl* impl_;
  int num_threads_;
};

/// Free-function loop over the default pool, honoring any ScopedThreads
/// override active on the calling thread (an override of 1 runs the loop
/// serially inline without touching the pool).
void ParallelFor(size_t begin, size_t end, size_t grain,
                 const std::function<void(size_t, size_t)>& fn);

/// \brief RAII thread-count override for the current thread's ParallelFor
/// calls (plumbing for `CafcOptions::threads` / `--threads`).
///
/// `threads` <= 0 means "no override" (keep whatever is active). The
/// override is thread-local, so concurrent clustering runs with different
/// settings do not interfere. An override larger than the default pool
/// size is capped at the pool size (the pool is not grown mid-run).
class ScopedThreads {
 public:
  explicit ScopedThreads(int threads);
  ~ScopedThreads();

  ScopedThreads(const ScopedThreads&) = delete;
  ScopedThreads& operator=(const ScopedThreads&) = delete;

 private:
  int previous_;
};

}  // namespace cafc::util

#endif  // CAFC_UTIL_THREAD_POOL_H_
