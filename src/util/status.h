#ifndef CAFC_UTIL_STATUS_H_
#define CAFC_UTIL_STATUS_H_

#include <cassert>
#include <iosfwd>
#include <string>
#include <utility>
#include <variant>

namespace cafc {

/// Error category for a failed operation.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kOutOfRange,
  kParseError,
  kFailedPrecondition,
  kInternal,
  /// The operation failed transiently (e.g. an overloaded or flaky host);
  /// retrying the same call may succeed. Fetch layers use this for
  /// HTTP-503-like conditions.
  kUnavailable,
  /// The operation exceeded its latency budget before completing (a slow
  /// fetch aborted at the deadline). Retryable: a later attempt may be
  /// served faster.
  kDeadlineExceeded,
};

/// Code name without a message, e.g. "Unavailable".
const char* StatusCodeName(StatusCode code);

/// \brief Lightweight success/error carrier used across library boundaries.
///
/// The library does not throw exceptions; fallible operations return a
/// `Status` (or a `Result<T>` when they also produce a value), mirroring the
/// RocksDB/Arrow convention.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status ParseError(std::string msg) {
    return Status(StatusCode::kParseError, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// Human-readable rendering, e.g. "ParseError: unterminated tag".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  Status(StatusCode code, std::string msg)
      : code_(code), message_(std::move(msg)) {}

  StatusCode code_;
  std::string message_;
};

/// Streams `ToString()` — wired so error paths and gtest failure messages
/// can print a Status directly.
std::ostream& operator<<(std::ostream& os, const Status& status);
std::ostream& operator<<(std::ostream& os, StatusCode code);

/// \brief A value-or-error sum type: holds either a `T` or a non-OK `Status`.
template <typename T>
class Result {
 public:
  /// Implicit construction from a value (success).
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)
  /// Implicit construction from a non-OK status (failure).
  Result(Status status) : value_(std::move(status)) {  // NOLINT
    assert(!std::get<Status>(value_).ok() &&
           "Result must not be constructed from an OK status");
  }

  bool ok() const { return std::holds_alternative<T>(value_); }

  /// Status of the operation; OK when a value is held.
  Status status() const {
    return ok() ? Status::OK() : std::get<Status>(value_);
  }

  /// Precondition: ok().
  const T& value() const& {
    assert(ok());
    return std::get<T>(value_);
  }
  T& value() & {
    assert(ok());
    return std::get<T>(value_);
  }
  T&& value() && {
    assert(ok());
    return std::get<T>(std::move(value_));
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// Returns the held value, or `fallback` when in error state.
  T value_or(T fallback) const {
    return ok() ? std::get<T>(value_) : std::move(fallback);
  }

 private:
  std::variant<T, Status> value_;
};

}  // namespace cafc

#endif  // CAFC_UTIL_STATUS_H_
