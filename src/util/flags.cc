#include "util/flags.h"

#include <cstdlib>

#include "util/string_util.h"

namespace cafc {

FlagParser::FlagParser(int argc, const char* const* argv) {
  bool flags_done = false;
  for (int i = 1; i < argc; ++i) {
    std::string_view arg = argv[i];
    if (flags_done || !StartsWith(arg, "--")) {
      positional_.emplace_back(arg);
      continue;
    }
    if (arg == "--") {
      flags_done = true;
      continue;
    }
    std::string_view body = arg.substr(2);
    size_t eq = body.find('=');
    if (eq != std::string_view::npos) {
      flags_.emplace(std::string(body.substr(0, eq)),
                     std::string(body.substr(eq + 1)));
      continue;
    }
    // "--name value" when the next token is not itself a flag; otherwise a
    // bare boolean.
    if (i + 1 < argc && !StartsWith(argv[i + 1], "--")) {
      flags_.emplace(std::string(body), argv[i + 1]);
      ++i;
    } else {
      flags_.emplace(std::string(body), "");
    }
  }
}

bool FlagParser::Has(std::string_view name) const {
  return flags_.find(name) != flags_.end();
}

std::string FlagParser::GetString(std::string_view name,
                                  std::string default_value) const {
  auto it = flags_.find(name);
  return it == flags_.end() ? default_value : it->second;
}

int64_t FlagParser::GetInt(std::string_view name,
                           int64_t default_value) const {
  auto it = flags_.find(name);
  if (it == flags_.end() || it->second.empty()) return default_value;
  char* end = nullptr;
  long long value = std::strtoll(it->second.c_str(), &end, 10);
  return (end != nullptr && *end == '\0') ? value : default_value;
}

double FlagParser::GetDouble(std::string_view name,
                             double default_value) const {
  auto it = flags_.find(name);
  if (it == flags_.end() || it->second.empty()) return default_value;
  char* end = nullptr;
  double value = std::strtod(it->second.c_str(), &end);
  return (end != nullptr && *end == '\0') ? value : default_value;
}

Result<int64_t> FlagParser::GetIntInRange(std::string_view name,
                                          int64_t default_value, int64_t min,
                                          int64_t max) const {
  auto it = flags_.find(name);
  if (it == flags_.end()) return default_value;
  const std::string& raw = it->second;
  char* end = nullptr;
  long long value = raw.empty() ? 0 : std::strtoll(raw.c_str(), &end, 10);
  if (raw.empty() || end == nullptr || *end != '\0') {
    return Status::InvalidArgument("--" + std::string(name) +
                                   " expects an integer, got \"" + raw +
                                   "\"");
  }
  if (value < min || value > max) {
    return Status::InvalidArgument(
        "--" + std::string(name) + "=" + raw + " out of range [" +
        std::to_string(min) + ", " + std::to_string(max) + "]");
  }
  return static_cast<int64_t>(value);
}

Result<double> FlagParser::GetRate(std::string_view name,
                                   double default_value) const {
  auto it = flags_.find(name);
  if (it == flags_.end()) return default_value;
  const std::string& raw = it->second;
  char* end = nullptr;
  double value = raw.empty() ? 0.0 : std::strtod(raw.c_str(), &end);
  if (raw.empty() || end == nullptr || *end != '\0') {
    return Status::InvalidArgument("--" + std::string(name) +
                                   " expects a number, got \"" + raw + "\"");
  }
  if (!(value >= 0.0 && value <= 1.0)) {  // NaN fails too
    return Status::InvalidArgument("--" + std::string(name) + "=" + raw +
                                   " must be a rate in [0, 1]");
  }
  return value;
}

bool FlagParser::GetBool(std::string_view name, bool default_value) const {
  auto it = flags_.find(name);
  if (it == flags_.end()) return default_value;
  if (it->second.empty()) return true;  // bare --flag
  std::string lower = ToLower(it->second);
  if (lower == "true" || lower == "1" || lower == "yes" || lower == "on") {
    return true;
  }
  if (lower == "false" || lower == "0" || lower == "no" || lower == "off") {
    return false;
  }
  return default_value;
}

std::vector<std::string> FlagParser::UnknownFlags(
    const std::vector<std::string>& known) const {
  std::vector<std::string> unknown;
  for (const auto& [name, value] : flags_) {
    bool found = false;
    for (const std::string& k : known) {
      if (name == k) {
        found = true;
        break;
      }
    }
    if (!found) unknown.push_back(name);
  }
  return unknown;
}

}  // namespace cafc
