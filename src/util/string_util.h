#ifndef CAFC_UTIL_STRING_UTIL_H_
#define CAFC_UTIL_STRING_UTIL_H_

#include <string>
#include <string_view>
#include <vector>

namespace cafc {

/// ASCII-only lowercase of a single character.
char AsciiToLower(char c);

/// ASCII-only lowercase copy of `s` (web-era text processing; the paper's
/// corpus is English HTML).
std::string ToLower(std::string_view s);

/// True for ASCII letters a-z / A-Z.
bool IsAsciiAlpha(char c);

/// True for ASCII digits 0-9.
bool IsAsciiDigit(char c);

/// True for ASCII letters or digits.
bool IsAsciiAlnum(char c);

/// True for space, tab, CR, LF, FF, VT.
bool IsAsciiSpace(char c);

/// Removes leading and trailing ASCII whitespace.
std::string_view StripAsciiWhitespace(std::string_view s);

/// Splits on `sep`, omitting empty pieces.
std::vector<std::string> SplitNonEmpty(std::string_view s, char sep);

/// Joins `parts` with `sep`.
std::string Join(const std::vector<std::string>& parts, std::string_view sep);

/// True if `s` begins with `prefix` / ends with `suffix` (case-sensitive).
bool StartsWith(std::string_view s, std::string_view prefix);
bool EndsWith(std::string_view s, std::string_view suffix);

/// Case-insensitive (ASCII) equality.
bool EqualsIgnoreCase(std::string_view a, std::string_view b);

/// True if `haystack` contains `needle` ignoring ASCII case.
bool ContainsIgnoreCase(std::string_view haystack, std::string_view needle);

/// Formats a double with `digits` fractional digits (fixed notation).
std::string FormatDouble(double value, int digits);

}  // namespace cafc

#endif  // CAFC_UTIL_STRING_UTIL_H_
