#ifndef CAFC_UTIL_RNG_H_
#define CAFC_UTIL_RNG_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace cafc {

/// \brief Deterministic pseudo-random generator (xoshiro256**) seeded via
/// splitmix64.
///
/// Every stochastic component in the library (corpus synthesis, k-means
/// seeding, sampling) draws from an explicitly seeded `Rng`, so every
/// experiment is reproducible from its seed. The engine is self-contained so
/// results do not depend on the standard library's unspecified
/// distributions.
class Rng {
 public:
  /// Seeds the four 64-bit lanes of state from `seed` using splitmix64.
  explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ULL);

  /// Next raw 64-bit output.
  uint64_t Next64();

  /// Uniform integer in [0, bound). Precondition: bound > 0. Uses rejection
  /// sampling, so the distribution is exactly uniform.
  uint64_t Uniform(uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive. Precondition: lo <= hi.
  int64_t UniformInt(int64_t lo, int64_t hi);

  /// Uniform double in [0, 1).
  double UniformDouble();

  /// Bernoulli trial with success probability `p` (clamped to [0, 1]).
  bool Bernoulli(double p);

  /// Approximately normal deviate (mean 0, stddev 1) via sum of uniforms.
  double Gaussian();

  /// Samples an index in [0, weights.size()) proportionally to `weights`.
  /// Zero or negative weights are treated as zero; if all weights are zero
  /// the index is uniform. Precondition: !weights.empty().
  size_t WeightedIndex(const std::vector<double>& weights);

  /// Fisher–Yates shuffle of `items`.
  template <typename T>
  void Shuffle(std::vector<T>* items) {
    if (items->empty()) return;
    for (size_t i = items->size() - 1; i > 0; --i) {
      size_t j = static_cast<size_t>(Uniform(i + 1));
      using std::swap;
      swap((*items)[i], (*items)[j]);
    }
  }

  /// Samples `n` distinct indices from [0, pool) without replacement
  /// (reservoir when n < pool; all indices shuffled when n >= pool).
  std::vector<size_t> SampleWithoutReplacement(size_t pool, size_t n);

 private:
  uint64_t state_[4];
};

}  // namespace cafc

#endif  // CAFC_UTIL_RNG_H_
