#include "util/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <cstdlib>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace cafc::util {
namespace {

/// Set while a thread is executing chunks as a pool worker; nested
/// ParallelFor calls from such a thread run inline (no deadlock, no
/// oversubscription).
thread_local bool t_in_pool_worker = false;

/// Thread-local ScopedThreads override (0 = none).
thread_local int t_thread_override = 0;

int ResolveAutoThreads() {
  if (const char* env = std::getenv("CAFC_THREADS")) {
    char* end = nullptr;
    long v = std::strtol(env, &end, 10);
    if (end != env && *end == '\0' && v > 0) return static_cast<int>(v);
  }
  unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? static_cast<int>(hw) : 1;
}

}  // namespace

/// One ParallelFor invocation. Heap-shared so a worker woken late can still
/// inspect it safely after the submitting thread has moved on.
struct Job {
  size_t begin = 0;
  size_t end = 0;
  size_t grain = 1;
  size_t num_chunks = 0;
  const std::function<void(size_t, size_t)>* fn = nullptr;

  std::atomic<size_t> next_chunk{0};
  /// Worker participation budget (lanes - 1); workers that decrement it
  /// below zero sit this job out (ScopedThreads cap).
  std::atomic<int> worker_slots{0};

  std::mutex m;
  std::condition_variable done;
  size_t chunks_done = 0;            // guarded by m
  std::exception_ptr error;          // guarded by m (first one wins)

  void Process() {
    for (;;) {
      size_t c = next_chunk.fetch_add(1, std::memory_order_relaxed);
      if (c >= num_chunks) return;
      size_t chunk_begin = begin + c * grain;
      size_t chunk_end = std::min(end, chunk_begin + grain);
      std::exception_ptr chunk_error;
      try {
        (*fn)(chunk_begin, chunk_end);
      } catch (...) {
        chunk_error = std::current_exception();
      }
      {
        std::lock_guard<std::mutex> lock(m);
        if (chunk_error && !error) error = chunk_error;
        if (++chunks_done == num_chunks) done.notify_all();
      }
    }
  }
};

struct ThreadPool::Impl {
  std::mutex mutex;                  // guards job / job_seq / shutdown
  /// Lock-free mirror of `shutdown` for the ParallelFor fast path: once
  /// set, loops run serially inline instead of submitting to (joined)
  /// workers.
  std::atomic<bool> stopped{false};
  std::condition_variable wake;
  std::shared_ptr<Job> job;
  uint64_t job_seq = 0;
  bool shutdown = false;
  /// Serializes concurrent external ParallelFor submissions (the pool runs
  /// one job at a time; callers queue here).
  std::mutex submit_mutex;
  std::vector<std::thread> workers;

  void WorkerLoop() {
    t_in_pool_worker = true;
    uint64_t seen = 0;
    std::unique_lock<std::mutex> lock(mutex);
    for (;;) {
      wake.wait(lock, [&] { return shutdown || (job && job_seq != seen); });
      if (shutdown) return;
      std::shared_ptr<Job> current = job;
      seen = job_seq;
      lock.unlock();
      if (current->worker_slots.fetch_sub(1, std::memory_order_relaxed) > 0) {
        current->Process();
      }
      current.reset();
      lock.lock();
    }
  }
};

ThreadPool::ThreadPool(int threads)
    : impl_(new Impl), num_threads_(threads < 1 ? 1 : threads) {
  impl_->workers.reserve(static_cast<size_t>(num_threads_ - 1));
  for (int i = 0; i < num_threads_ - 1; ++i) {
    impl_->workers.emplace_back([impl = impl_] { impl->WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  Shutdown();
  delete impl_;
}

void ThreadPool::Shutdown() {
  // Holding submit_mutex serializes against an in-flight ParallelFor: the
  // submitting thread keeps it until every chunk of its job completed, so
  // by the time we own it the pending work has drained.
  std::lock_guard<std::mutex> submit(impl_->submit_mutex);
  {
    std::lock_guard<std::mutex> lock(impl_->mutex);
    impl_->shutdown = true;
  }
  impl_->stopped.store(true, std::memory_order_release);
  impl_->wake.notify_all();
  for (std::thread& worker : impl_->workers) worker.join();
  impl_->workers.clear();  // second Shutdown finds nothing to join
}

namespace {

/// Identical chunking to the parallel path, executed in ascending chunk
/// order — keeps per-chunk callbacks (and any chunk-indexed outputs)
/// bit-identical between serial and parallel execution.
void SerialChunks(size_t begin, size_t end, size_t grain,
                  const std::function<void(size_t, size_t)>& fn) {
  for (size_t chunk_begin = begin; chunk_begin < end; chunk_begin += grain) {
    fn(chunk_begin, std::min(end, chunk_begin + grain));
  }
}

}  // namespace

void ThreadPool::ParallelFor(size_t begin, size_t end, size_t grain,
                             const std::function<void(size_t, size_t)>& fn) {
  if (end <= begin) return;
  if (grain < 1) grain = 1;
  size_t num_chunks = (end - begin + grain - 1) / grain;

  int lanes = num_threads_;
  if (t_thread_override > 0 && t_thread_override < lanes) {
    lanes = t_thread_override;
  }
  if (lanes == 1 || num_chunks == 1 || t_in_pool_worker ||
      impl_->stopped.load(std::memory_order_acquire)) {
    SerialChunks(begin, end, grain, fn);
    return;
  }

  auto job = std::make_shared<Job>();
  job->begin = begin;
  job->end = end;
  job->grain = grain;
  job->num_chunks = num_chunks;
  job->fn = &fn;
  job->worker_slots.store(lanes - 1, std::memory_order_relaxed);

  std::lock_guard<std::mutex> submit(impl_->submit_mutex);
  {
    std::lock_guard<std::mutex> lock(impl_->mutex);
    impl_->job = job;
    ++impl_->job_seq;
  }
  impl_->wake.notify_all();
  // The caller is a full participant. While it runs chunks it counts as a
  // pool worker, so any ParallelFor its chunks trigger runs inline rather
  // than re-entering the (non-recursive) submission path.
  t_in_pool_worker = true;
  job->Process();
  t_in_pool_worker = false;
  {
    std::unique_lock<std::mutex> lock(job->m);
    job->done.wait(lock, [&] { return job->chunks_done == job->num_chunks; });
  }
  {
    std::lock_guard<std::mutex> lock(impl_->mutex);
    impl_->job.reset();
  }
  if (job->error) std::rethrow_exception(job->error);
}

namespace {

std::mutex g_default_mutex;
ThreadPool* g_default_pool = nullptr;  // leaked intentionally (process-wide)
int g_requested_threads = 0;           // 0 = automatic

}  // namespace

ThreadPool* ThreadPool::Default() {
  std::lock_guard<std::mutex> lock(g_default_mutex);
  if (g_default_pool == nullptr) {
    int threads =
        g_requested_threads > 0 ? g_requested_threads : ResolveAutoThreads();
    g_default_pool = new ThreadPool(threads);
  }
  return g_default_pool;
}

void ThreadPool::SetDefaultThreads(int threads) {
  ThreadPool* old = nullptr;
  {
    std::lock_guard<std::mutex> lock(g_default_mutex);
    g_requested_threads = threads > 0 ? threads : 0;
    old = g_default_pool;  // rebuilt lazily on next Default()
    g_default_pool = nullptr;
  }
  // Destroying the pool joins its workers under the pool's submit mutex.
  // That must happen *outside* the registry lock: a ParallelFor caller
  // holds its pool's submit mutex while running chunks inline, and a
  // nested ParallelFor inside a chunk takes the registry lock via
  // Default() — so registry-then-submit here would complete a lock-order
  // cycle with that submit-then-registry path.
  delete old;
}

int ThreadPool::EffectiveThreads() {
  int pool = Default()->num_threads();
  if (t_thread_override > 0 && t_thread_override < pool) {
    return t_thread_override;
  }
  return pool;
}

void ParallelFor(size_t begin, size_t end, size_t grain,
                 const std::function<void(size_t, size_t)>& fn) {
  ThreadPool::Default()->ParallelFor(begin, end, grain, fn);
}

ScopedThreads::ScopedThreads(int threads) : previous_(t_thread_override) {
  if (threads > 0) t_thread_override = threads;
}

ScopedThreads::~ScopedThreads() { t_thread_override = previous_; }

}  // namespace cafc::util
