#ifndef CAFC_UTIL_VARINT_H_
#define CAFC_UTIL_VARINT_H_

#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>

#include "util/status.h"

namespace cafc::util {

/// \brief Byte-level codec primitives of the binary snapshot format v3:
/// LEB128 varints, fixed-width little-endian integers, a bounds-checked
/// reader, and the 64-bit checksum the section table carries.
///
/// Everything is hand-rolled and endian-explicit: buffers are portable
/// byte streams, never reinterpret-cast structs, so a file written on any
/// host loads on any other.

/// Appends `value` as an unsigned LEB128 varint (1..10 bytes).
void PutVarint64(std::string* out, uint64_t value);
inline void PutVarint32(std::string* out, uint32_t value) {
  PutVarint64(out, value);
}

/// Encoded size of `value` as a varint.
size_t VarintLength(uint64_t value);

/// Appends `value` as 4 / 8 little-endian bytes.
void PutFixed32(std::string* out, uint32_t value);
void PutFixed64(std::string* out, uint64_t value);

/// FNV-1a 64-bit hash of `data` (byte-at-a-time; handy for short keys).
uint64_t Fnv1a64(std::string_view data);

/// The per-section checksum of snapshot format v3: a 64-bit mixing hash
/// that consumes 8 little-endian bytes per step, so checksumming a
/// multi-megabyte section costs a fraction of byte-wise FNV at open time.
/// Deterministic across hosts and good enough to catch torn writes and
/// bit flips (this is corruption detection, not cryptography).
uint64_t Checksum64(std::string_view data);

/// \brief Bounds-checked sequential reader over an immutable byte span
/// (typically a section of an mmapped snapshot).
///
/// Every read validates against the end of the span and reports a
/// descriptive kParseError carrying the byte offset, so a truncated or
/// bit-flipped file can never walk the decoder out of bounds.
class ByteReader {
 public:
  ByteReader(const uint8_t* data, size_t size) : data_(data), size_(size) {}
  explicit ByteReader(std::string_view data)
      : ByteReader(reinterpret_cast<const uint8_t*>(data.data()),
                   data.size()) {}

  size_t offset() const { return pos_; }
  size_t remaining() const { return size_ - pos_; }
  bool empty() const { return pos_ >= size_; }

  /// Reads one unsigned LEB128 varint.
  Status ReadVarint64(uint64_t* value);
  /// ReadVarint64 + range check against uint32_t.
  Status ReadVarint32(uint32_t* value);

  Status ReadFixed32(uint32_t* value);
  Status ReadFixed64(uint64_t* value);

  /// Yields a view of the next `n` raw bytes (no copy) and advances.
  Status ReadBytes(size_t n, std::string_view* out);
  /// Advances past `n` bytes without materializing them.
  Status Skip(size_t n);

 private:
  Status Truncated(const char* what) const;

  const uint8_t* data_;
  size_t size_;
  size_t pos_ = 0;
};

}  // namespace cafc::util

#endif  // CAFC_UTIL_VARINT_H_
