#ifndef CAFC_UTIL_HISTOGRAM_H_
#define CAFC_UTIL_HISTOGRAM_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace cafc::util {

class ByteReader;

/// \brief Fixed-bucket histogram for latency accounting (values in
/// microseconds by convention, but unit-agnostic).
///
/// The bucket layout is compiled in — geometric boundaries growing by 25%
/// per bucket from 1 upward — so two histograms are always mergeable by
/// element-wise addition, which is how the serving layer aggregates
/// per-worker recordings without sharing a lock on the hot path: each
/// worker owns one, `Stats()` merges.
///
/// Percentile extraction interpolates linearly inside the winning bucket
/// and clamps to the exact observed [min, max], so p0/p100 are exact and
/// interior percentiles carry at most one bucket width (25%) of error.
class Histogram {
 public:
  Histogram();

  /// Records one observation. Negative values are clamped to 0 (they can
  /// only come from clock skew) and land in the first bucket.
  void Add(double value);

  /// Element-wise addition of another histogram's counts (same compiled-in
  /// layout by construction).
  void Merge(const Histogram& other);

  /// Forgets every observation.
  void Reset();

  uint64_t count() const { return count_; }
  double sum() const { return sum_; }
  /// Exact observed extremes (0 when empty).
  double min() const { return count_ == 0 ? 0.0 : min_; }
  double max() const { return count_ == 0 ? 0.0 : max_; }
  double mean() const {
    return count_ == 0 ? 0.0 : sum_ / static_cast<double>(count_);
  }

  /// Value at percentile `p` in [0, 100]. 0 when empty; out-of-range `p`
  /// is clamped.
  double Percentile(double p) const;

  /// Number of buckets in the compiled-in layout (for tests).
  static size_t num_buckets();

  /// \brief Appends a self-delimiting binary encoding to `out`.
  ///
  /// Layout: varint bucket count, then one varint per bucket (sparse runs
  /// of zeros still cost one byte each — histograms are small), then
  /// fixed64 bit patterns of sum/min/max and a varint total count. Decode
  /// reproduces the histogram exactly: the doubles travel as IEEE-754 bit
  /// patterns, not decimal round-trips, so merged-then-encoded equals
  /// encoded-then-merged.
  void EncodeTo(std::string* out) const;

  /// Decodes an encoding produced by EncodeTo, replacing this histogram's
  /// contents. Returns false on truncation or a bucket-count mismatch with
  /// the compiled-in layout (the reader position is then unspecified).
  bool DecodeFrom(ByteReader* reader);

 private:
  std::vector<uint64_t> buckets_;
  uint64_t count_ = 0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

}  // namespace cafc::util

#endif  // CAFC_UTIL_HISTOGRAM_H_
