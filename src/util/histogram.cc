#include "util/histogram.h"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "util/varint.h"

namespace cafc::util {
namespace {

/// 96 buckets at 25% growth from 1 cover [0, ~2e9] before the overflow
/// bucket — in microseconds that is half an hour, far past any latency the
/// serving layer should ever record.
constexpr size_t kNumBuckets = 96;
constexpr double kGrowth = 1.25;

/// Upper bucket edges; edge(i) = kGrowth^i, edge(-1) = 0 conceptually.
const std::vector<double>& Edges() {
  static const std::vector<double> edges = [] {
    std::vector<double> e(kNumBuckets);
    double upper = 1.0;
    for (size_t i = 0; i < kNumBuckets; ++i) {
      e[i] = upper;
      upper *= kGrowth;
    }
    return e;
  }();
  return edges;
}

size_t BucketFor(double value) {
  const std::vector<double>& edges = Edges();
  // First bucket whose upper edge admits the value; everything past the
  // last edge goes to the overflow (last) bucket.
  auto it = std::lower_bound(edges.begin(), edges.end(), value);
  if (it == edges.end()) return kNumBuckets - 1;
  return static_cast<size_t>(it - edges.begin());
}

}  // namespace

Histogram::Histogram() : buckets_(kNumBuckets, 0) {}

size_t Histogram::num_buckets() { return kNumBuckets; }

void Histogram::Add(double value) {
  if (value < 0.0 || std::isnan(value)) value = 0.0;
  ++buckets_[BucketFor(value)];
  if (count_ == 0) {
    min_ = value;
    max_ = value;
  } else {
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
  }
  ++count_;
  sum_ += value;
}

void Histogram::Merge(const Histogram& other) {
  if (other.count_ == 0) return;
  for (size_t i = 0; i < kNumBuckets; ++i) buckets_[i] += other.buckets_[i];
  if (count_ == 0) {
    min_ = other.min_;
    max_ = other.max_;
  } else {
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
  }
  count_ += other.count_;
  sum_ += other.sum_;
}

void Histogram::Reset() {
  std::fill(buckets_.begin(), buckets_.end(), 0);
  count_ = 0;
  sum_ = 0.0;
  min_ = 0.0;
  max_ = 0.0;
}

namespace {

uint64_t DoubleBits(double value) {
  uint64_t bits;
  std::memcpy(&bits, &value, sizeof(bits));
  return bits;
}

double BitsDouble(uint64_t bits) {
  double value;
  std::memcpy(&value, &bits, sizeof(value));
  return value;
}

}  // namespace

void Histogram::EncodeTo(std::string* out) const {
  PutVarint64(out, buckets_.size());
  for (uint64_t bucket : buckets_) PutVarint64(out, bucket);
  PutFixed64(out, DoubleBits(sum_));
  PutFixed64(out, DoubleBits(min_));
  PutFixed64(out, DoubleBits(max_));
  PutVarint64(out, count_);
}

bool Histogram::DecodeFrom(ByteReader* reader) {
  uint64_t num = 0;
  if (!reader->ReadVarint64(&num).ok() || num != kNumBuckets) return false;
  std::vector<uint64_t> buckets(kNumBuckets, 0);
  for (size_t i = 0; i < kNumBuckets; ++i) {
    if (!reader->ReadVarint64(&buckets[i]).ok()) return false;
  }
  uint64_t sum_bits = 0;
  uint64_t min_bits = 0;
  uint64_t max_bits = 0;
  uint64_t count = 0;
  if (!reader->ReadFixed64(&sum_bits).ok() ||
      !reader->ReadFixed64(&min_bits).ok() ||
      !reader->ReadFixed64(&max_bits).ok() ||
      !reader->ReadVarint64(&count).ok()) {
    return false;
  }
  buckets_ = std::move(buckets);
  sum_ = BitsDouble(sum_bits);
  min_ = BitsDouble(min_bits);
  max_ = BitsDouble(max_bits);
  count_ = count;
  return true;
}

double Histogram::Percentile(double p) const {
  if (count_ == 0) return 0.0;
  p = std::clamp(p, 0.0, 100.0);
  const double target = p / 100.0 * static_cast<double>(count_);
  const std::vector<double>& edges = Edges();
  uint64_t cumulative = 0;
  for (size_t i = 0; i < kNumBuckets; ++i) {
    if (buckets_[i] == 0) continue;
    const double before = static_cast<double>(cumulative);
    cumulative += buckets_[i];
    if (static_cast<double>(cumulative) >= target) {
      const double lower = i == 0 ? 0.0 : edges[i - 1];
      // The last bucket is also the overflow bucket: its true upper bound
      // is the observed maximum, not the finite edge.
      const double upper = i == kNumBuckets - 1 ? std::max(edges[i], max_)
                                                : edges[i];
      const double fraction =
          (target - before) / static_cast<double>(buckets_[i]);
      const double value = lower + (upper - lower) * std::max(fraction, 0.0);
      return std::clamp(value, min_, max_);
    }
  }
  return max_;
}

}  // namespace cafc::util
