#include "util/varint.h"

#include <bit>
#include <cstdio>

namespace cafc::util {

void PutVarint64(std::string* out, uint64_t value) {
  while (value >= 0x80) {
    out->push_back(static_cast<char>((value & 0x7f) | 0x80));
    value >>= 7;
  }
  out->push_back(static_cast<char>(value));
}

size_t VarintLength(uint64_t value) {
  size_t len = 1;
  while (value >= 0x80) {
    value >>= 7;
    ++len;
  }
  return len;
}

void PutFixed32(std::string* out, uint32_t value) {
  for (int shift = 0; shift < 32; shift += 8) {
    out->push_back(static_cast<char>((value >> shift) & 0xff));
  }
}

void PutFixed64(std::string* out, uint64_t value) {
  for (int shift = 0; shift < 64; shift += 8) {
    out->push_back(static_cast<char>((value >> shift) & 0xff));
  }
}

uint64_t Fnv1a64(std::string_view data) {
  uint64_t hash = 0xcbf29ce484222325ull;
  for (char c : data) {
    hash ^= static_cast<uint8_t>(c);
    hash *= 0x100000001b3ull;
  }
  return hash;
}

namespace {

/// Explicit little-endian load so the checksum of a byte stream is the
/// same on any host (a raw memcpy would flip on big-endian machines).
/// Compilers collapse this to a single load where the target allows it.
inline uint64_t LoadLe64(const char* p) {
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<uint64_t>(static_cast<uint8_t>(p[i])) << (8 * i);
  }
  return v;
}

constexpr uint64_t kMix1 = 0x9e3779b185ebca87ull;
constexpr uint64_t kMix2 = 0xc2b2ae3d27d4eb4full;
constexpr uint64_t kMix3 = 0x165667b19e3779f9ull;

}  // namespace

uint64_t Checksum64(std::string_view data) {
  uint64_t h = 0xcbf29ce484222325ull ^ (data.size() * kMix1);
  const char* p = data.data();
  size_t i = 0;
  for (; i + 8 <= data.size(); i += 8) {
    h = std::rotl(h ^ (LoadLe64(p + i) * kMix2), 27) * kMix1 + kMix3;
  }
  if (i < data.size()) {
    uint64_t tail = 0;
    for (size_t j = i; j < data.size(); ++j) {
      tail |= static_cast<uint64_t>(static_cast<uint8_t>(p[j]))
              << (8 * (j - i));
    }
    h = std::rotl(h ^ (tail * kMix2), 27) * kMix1 + kMix3;
  }
  h ^= h >> 33;
  h *= kMix2;
  h ^= h >> 29;
  h *= kMix3;
  h ^= h >> 32;
  return h;
}

Status ByteReader::Truncated(const char* what) const {
  char buf[128];
  std::snprintf(buf, sizeof(buf), "truncated %s at byte offset %zu", what,
                pos_);
  return Status::ParseError(buf);
}

Status ByteReader::ReadVarint64(uint64_t* value) {
  uint64_t result = 0;
  for (int shift = 0; shift < 64; shift += 7) {
    if (pos_ >= size_) return Truncated("varint");
    uint8_t byte = data_[pos_++];
    if (shift == 63 && (byte & 0x7f) > 1) {
      char buf[96];
      std::snprintf(buf, sizeof(buf),
                    "varint overflows 64 bits at byte offset %zu", pos_ - 1);
      return Status::ParseError(buf);
    }
    result |= static_cast<uint64_t>(byte & 0x7f) << shift;
    if ((byte & 0x80) == 0) {
      *value = result;
      return Status::OK();
    }
  }
  char buf[96];
  std::snprintf(buf, sizeof(buf), "varint longer than 10 bytes at offset %zu",
                pos_);
  return Status::ParseError(buf);
}

Status ByteReader::ReadVarint32(uint32_t* value) {
  uint64_t wide = 0;
  Status status = ReadVarint64(&wide);
  if (!status.ok()) return status;
  if (wide > 0xffffffffull) {
    char buf[96];
    std::snprintf(buf, sizeof(buf),
                  "varint exceeds 32 bits near byte offset %zu", pos_);
    return Status::ParseError(buf);
  }
  *value = static_cast<uint32_t>(wide);
  return Status::OK();
}

Status ByteReader::ReadFixed32(uint32_t* value) {
  if (size_ - pos_ < 4) return Truncated("fixed32");
  uint32_t result = 0;
  for (int i = 0; i < 4; ++i) {
    result |= static_cast<uint32_t>(data_[pos_ + i]) << (8 * i);
  }
  pos_ += 4;
  *value = result;
  return Status::OK();
}

Status ByteReader::ReadFixed64(uint64_t* value) {
  if (size_ - pos_ < 8) return Truncated("fixed64");
  uint64_t result = 0;
  for (int i = 0; i < 8; ++i) {
    result |= static_cast<uint64_t>(data_[pos_ + i]) << (8 * i);
  }
  pos_ += 8;
  *value = result;
  return Status::OK();
}

Status ByteReader::ReadBytes(size_t n, std::string_view* out) {
  if (size_ - pos_ < n) return Truncated("byte block");
  *out = std::string_view(reinterpret_cast<const char*>(data_ + pos_), n);
  pos_ += n;
  return Status::OK();
}

Status ByteReader::Skip(size_t n) {
  if (size_ - pos_ < n) return Truncated("byte block");
  pos_ += n;
  return Status::OK();
}

}  // namespace cafc::util
