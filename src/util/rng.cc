#include "util/rng.h"

#include <cassert>
#include <cmath>
#include <numeric>

namespace cafc {
namespace {

uint64_t SplitMix64(uint64_t* x) {
  uint64_t z = (*x += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t s = seed;
  for (auto& lane : state_) lane = SplitMix64(&s);
}

uint64_t Rng::Next64() {
  const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

uint64_t Rng::Uniform(uint64_t bound) {
  assert(bound > 0);
  // Rejection sampling to avoid modulo bias.
  const uint64_t threshold = -bound % bound;
  for (;;) {
    uint64_t r = Next64();
    if (r >= threshold) return r % bound;
  }
}

int64_t Rng::UniformInt(int64_t lo, int64_t hi) {
  assert(lo <= hi);
  uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
  // span == 0 means the full 64-bit range [INT64_MIN, INT64_MAX].
  if (span == 0) return static_cast<int64_t>(Next64());
  return lo + static_cast<int64_t>(Uniform(span));
}

double Rng::UniformDouble() {
  // 53 high bits → uniform double in [0, 1).
  return static_cast<double>(Next64() >> 11) * 0x1.0p-53;
}

bool Rng::Bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return UniformDouble() < p;
}

double Rng::Gaussian() {
  // Irwin–Hall approximation: sum of 12 uniforms minus 6 has mean 0 and
  // variance 1; adequate for the corpus-synthesis jitter we need.
  double sum = 0.0;
  for (int i = 0; i < 12; ++i) sum += UniformDouble();
  return sum - 6.0;
}

size_t Rng::WeightedIndex(const std::vector<double>& weights) {
  assert(!weights.empty());
  double total = 0.0;
  for (double w : weights) total += (w > 0.0 ? w : 0.0);
  if (total <= 0.0) return static_cast<size_t>(Uniform(weights.size()));
  double target = UniformDouble() * total;
  double acc = 0.0;
  for (size_t i = 0; i < weights.size(); ++i) {
    acc += (weights[i] > 0.0 ? weights[i] : 0.0);
    if (target < acc) return i;
  }
  return weights.size() - 1;
}

std::vector<size_t> Rng::SampleWithoutReplacement(size_t pool, size_t n) {
  std::vector<size_t> indices(pool);
  std::iota(indices.begin(), indices.end(), size_t{0});
  if (n >= pool) {
    Shuffle(&indices);
    return indices;
  }
  // Partial Fisher–Yates: after i swaps, the first i entries are a uniform
  // sample without replacement.
  for (size_t i = 0; i < n; ++i) {
    size_t j = i + static_cast<size_t>(Uniform(pool - i));
    std::swap(indices[i], indices[j]);
  }
  indices.resize(n);
  return indices;
}

}  // namespace cafc
