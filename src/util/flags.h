#ifndef CAFC_UTIL_FLAGS_H_
#define CAFC_UTIL_FLAGS_H_

#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "util/status.h"

namespace cafc {

/// \brief Minimal command-line parser for the repository's tools.
///
/// Grammar: `--name=value`, `--name value`, or bare `--name` (boolean
/// true). Everything else is positional. `--` terminates flag parsing.
/// Flags may appear in any order relative to positionals.
class FlagParser {
 public:
  /// Parses argv[1..argc). Never fails: unknown flags are recorded and can
  /// be validated with UnknownFlags().
  FlagParser(int argc, const char* const* argv);

  bool Has(std::string_view name) const;

  /// Typed getters with defaults. Malformed numeric values fall back to
  /// the default (callers validate via Has + GetString when strictness
  /// matters).
  std::string GetString(std::string_view name,
                        std::string default_value = "") const;
  int64_t GetInt(std::string_view name, int64_t default_value) const;
  double GetDouble(std::string_view name, double default_value) const;
  bool GetBool(std::string_view name, bool default_value) const;

  /// Strict getters: the default applies only when the flag is absent.
  /// A present-but-malformed value, or one outside [min, max], is an
  /// InvalidArgument naming the flag — the silent fallback of GetInt/
  /// GetDouble turned `--threads=abc` into the default without a word.
  Result<int64_t> GetIntInRange(std::string_view name, int64_t default_value,
                                int64_t min, int64_t max) const;
  /// GetIntInRange for probabilities/fractions: a double in [0, 1].
  Result<double> GetRate(std::string_view name, double default_value) const;

  const std::vector<std::string>& positional() const { return positional_; }

  /// Names present on the command line but not in `known` — for usage
  /// errors.
  std::vector<std::string> UnknownFlags(
      const std::vector<std::string>& known) const;

 private:
  std::map<std::string, std::string, std::less<>> flags_;
  std::vector<std::string> positional_;
};

}  // namespace cafc

#endif  // CAFC_UTIL_FLAGS_H_
