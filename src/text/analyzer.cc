#include "text/analyzer.h"

#include "text/porter_stemmer.h"
#include "text/stopwords.h"
#include "text/word_tokenizer.h"
#include "util/string_util.h"

namespace cafc::text {

std::string Analyzer::AnalyzeWord(std::string_view word) const {
  if (word.size() < options_.min_word_length ||
      word.size() > options_.max_word_length) {
    return "";
  }
  std::string lower = ToLower(word);
  if (options_.remove_stopwords && IsStopword(lower)) return "";
  if (options_.stem) lower = PorterStem(lower);
  // Stemming can shorten a word below the minimum ("ties" → "ti"); keep it —
  // the paper stems after stopword removal and does not re-filter.
  return lower;
}

std::vector<std::string> Analyzer::Analyze(std::string_view input) const {
  std::vector<std::string> terms;
  for (const std::string& word :
       TokenizeWords(input, options_.min_word_length)) {
    std::string term = AnalyzeWord(word);
    if (!term.empty()) terms.push_back(std::move(term));
  }
  if (options_.emit_bigrams && terms.size() >= 2) {
    size_t unigrams = terms.size();
    terms.reserve(unigrams * 2 - 1);
    for (size_t i = 0; i + 1 < unigrams; ++i) {
      terms.push_back(terms[i] + "_" + terms[i + 1]);
    }
  }
  return terms;
}

}  // namespace cafc::text
