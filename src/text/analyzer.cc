#include "text/analyzer.h"

#include "text/porter_stemmer.h"
#include "text/stopwords.h"
#include "text/word_tokenizer.h"
#include "util/string_util.h"

namespace cafc::text {

std::string Analyzer::AnalyzeWord(std::string_view word) const {
  if (word.size() < options_.min_word_length ||
      word.size() > options_.max_word_length) {
    return "";
  }
  std::string lower = ToLower(word);
  if (options_.remove_stopwords && IsStopword(lower)) return "";
  if (options_.stem) lower = PorterStem(lower);
  // Stemming can shorten a word below the minimum ("ties" → "ti"); keep it —
  // the paper stems after stopword removal and does not re-filter.
  return lower;
}

std::vector<std::string> Analyzer::Analyze(std::string_view input) const {
  std::vector<std::string> terms;
  for (const std::string& word :
       TokenizeWords(input, options_.min_word_length)) {
    std::string term = AnalyzeWord(word);
    if (!term.empty()) terms.push_back(std::move(term));
  }
  if (options_.emit_bigrams && terms.size() >= 2) {
    size_t unigrams = terms.size();
    terms.reserve(unigrams * 2 - 1);
    for (size_t i = 0; i + 1 < unigrams; ++i) {
      terms.push_back(terms[i] + "_" + terms[i + 1]);
    }
  }
  return terms;
}

void Analyzer::AnalyzeInto(std::string_view input,
                           vsm::TermDictionary* dictionary,
                           std::vector<vsm::TermId>* out,
                           AnalyzerScratch* scratch) const {
  AnalyzerScratch local;
  AnalyzerScratch& s = scratch ? *scratch : local;
  const size_t first = out->size();
  std::string& token = s.token;
  token.clear();
  // Fused tokenize + filter + stem: one pass over the input, with the
  // current token built up (already lowercased) in the scratch buffer. The
  // tokenizer logic mirrors TokenizeWords and the filters mirror
  // AnalyzeWord, so the emitted term sequence matches Analyze exactly.
  auto emit = [&]() {
    if (token.size() >= options_.min_word_length &&
        token.size() <= options_.max_word_length &&
        !(options_.remove_stopwords && IsStopword(token))) {
      // Stems shorter than min_word_length are kept, as in AnalyzeWord.
      if (options_.stem) PorterStemInPlace(&token);
      out->push_back(dictionary->Intern(token));
    }
    token.clear();
  };
  for (size_t i = 0; i < input.size(); ++i) {
    char c = input[i];
    if (IsAsciiAlpha(c)) {
      token.push_back(AsciiToLower(c));
    } else if (c == '\'' && !token.empty() && i + 1 < input.size() &&
               IsAsciiAlpha(input[i + 1])) {
      // Possessive / contraction: keep the stem, drop the suffix.
      emit();
      while (i + 1 < input.size() && IsAsciiAlpha(input[i + 1])) ++i;
    } else {
      emit();
    }
  }
  emit();
  if (options_.emit_bigrams && out->size() - first >= 2) {
    const size_t unigrams = out->size();
    std::string& bigram = s.bigram;
    for (size_t i = first; i + 1 < unigrams; ++i) {
      // Copy before Intern: interning may reallocate the dictionary's term
      // table and invalidate the references term() hands back.
      bigram.assign(dictionary->term((*out)[i]));
      bigram.push_back('_');
      bigram.append(dictionary->term((*out)[i + 1]));
      out->push_back(dictionary->Intern(bigram));
    }
  }
}

}  // namespace cafc::text
