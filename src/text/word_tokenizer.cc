#include "text/word_tokenizer.h"

#include "util/string_util.h"

namespace cafc::text {

std::vector<std::string> TokenizeWords(std::string_view input,
                                       size_t min_length) {
  std::vector<std::string> out;
  std::string current;
  auto flush = [&out, &current, min_length]() {
    if (current.size() >= min_length) out.push_back(current);
    current.clear();
  };
  for (size_t i = 0; i < input.size(); ++i) {
    char c = input[i];
    if (IsAsciiAlpha(c)) {
      current.push_back(AsciiToLower(c));
    } else if (c == '\'' && !current.empty() && i + 1 < input.size() &&
               IsAsciiAlpha(input[i + 1])) {
      // Possessive / contraction: keep the stem, drop the suffix
      // ("job's" → "job", "don't" → "don").
      flush();
      while (i + 1 < input.size() && IsAsciiAlpha(input[i + 1])) ++i;
    } else {
      flush();
    }
  }
  flush();
  return out;
}

}  // namespace cafc::text
