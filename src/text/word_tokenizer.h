#ifndef CAFC_TEXT_WORD_TOKENIZER_H_
#define CAFC_TEXT_WORD_TOKENIZER_H_

#include <string>
#include <string_view>
#include <vector>

namespace cafc::text {

/// \brief Splits free text into lowercase word tokens.
///
/// A word is a maximal run of ASCII letters; embedded apostrophes are
/// dropped together with the possessive suffix ("job's" → "job"). Digits and
/// punctuation separate words; non-ASCII bytes act as separators (the
/// corpus is English web text). Words shorter than `min_length` are
/// discarded.
std::vector<std::string> TokenizeWords(std::string_view input,
                                       size_t min_length = 2);

}  // namespace cafc::text

#endif  // CAFC_TEXT_WORD_TOKENIZER_H_
