#ifndef CAFC_TEXT_STOPWORDS_H_
#define CAFC_TEXT_STOPWORDS_H_

#include <string_view>

namespace cafc::text {

/// True if `word` (lowercase) is an English stopword. The list is the
/// classic SMART-derived function-word list trimmed to what matters for web
/// form pages; domain-generic web terms ("click", "home", ...) are *not*
/// stopwords — the paper relies on IDF, not the stop list, to discount them.
bool IsStopword(std::string_view word);

/// Number of entries in the stopword list (for tests).
size_t StopwordCount();

}  // namespace cafc::text

#endif  // CAFC_TEXT_STOPWORDS_H_
