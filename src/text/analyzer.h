#ifndef CAFC_TEXT_ANALYZER_H_
#define CAFC_TEXT_ANALYZER_H_

#include <string>
#include <string_view>
#include <vector>

namespace cafc::text {

/// Options controlling the text analysis pipeline.
struct AnalyzerOptions {
  bool remove_stopwords = true;
  bool stem = true;
  size_t min_word_length = 2;
  /// Tokens longer than this are discarded (URL fragments, base64 blobs...).
  size_t max_word_length = 24;
  /// Additionally emit adjacent-term bigrams joined with '_'
  /// ("job_categori"), formed over the post-filter term stream. Captures
  /// multiword attribute names ("job category", "check in") as units.
  bool emit_bigrams = false;
};

/// \brief The tokenize → lowercase → stopword-filter → Porter-stem pipeline
/// the paper applies to both feature spaces ("the terms are obtained by
/// stemming all the distinct words", §2.1).
class Analyzer {
 public:
  explicit Analyzer(AnalyzerOptions options = {}) : options_(options) {}

  /// Analyzes free text into a sequence of terms (duplicates preserved —
  /// term frequency is computed downstream).
  std::vector<std::string> Analyze(std::string_view input) const;

  /// Analyzes a single already-tokenized word; returns "" if it is filtered
  /// out (stopword / too short / too long).
  std::string AnalyzeWord(std::string_view word) const;

  const AnalyzerOptions& options() const { return options_; }

 private:
  AnalyzerOptions options_;
};

}  // namespace cafc::text

#endif  // CAFC_TEXT_ANALYZER_H_
