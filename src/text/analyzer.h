#ifndef CAFC_TEXT_ANALYZER_H_
#define CAFC_TEXT_ANALYZER_H_

#include <string>
#include <string_view>
#include <vector>

#include "vsm/term_dictionary.h"

namespace cafc::text {

/// Options controlling the text analysis pipeline.
struct AnalyzerOptions {
  bool remove_stopwords = true;
  bool stem = true;
  size_t min_word_length = 2;
  /// Tokens longer than this are discarded (URL fragments, base64 blobs...).
  size_t max_word_length = 24;
  /// Additionally emit adjacent-term bigrams joined with '_'
  /// ("job_categori"), formed over the post-filter term stream. Captures
  /// multiword attribute names ("job category", "check in") as units.
  bool emit_bigrams = false;
};

/// Reusable scratch buffers for `Analyzer::AnalyzeInto`. One instance per
/// worker thread: after the first few calls every tokenize → lowercase →
/// stem step runs inside these buffers with no per-token allocation.
struct AnalyzerScratch {
  std::string token;   ///< current lowercased (then stemmed) token
  std::string bigram;  ///< join buffer for emit_bigrams
};

/// \brief The tokenize → lowercase → stopword-filter → Porter-stem pipeline
/// the paper applies to both feature spaces ("the terms are obtained by
/// stemming all the distinct words", §2.1).
class Analyzer {
 public:
  explicit Analyzer(AnalyzerOptions options = {}) : options_(options) {}

  /// Analyzes free text into a sequence of terms (duplicates preserved —
  /// term frequency is computed downstream).
  std::vector<std::string> Analyze(std::string_view input) const;

  /// Intern-at-tokenize fast path: analyzes `input` and appends the id of
  /// each surviving term (interned into `*dictionary`) to `*out`. Emits
  /// exactly the term sequence `Analyze` would, but without materializing a
  /// std::string per token — lowercasing and stemming happen in the
  /// caller-reusable `*scratch` buffers (pass nullptr for a call-local
  /// scratch). Not thread-safe on a shared dictionary; give each worker its
  /// own shard and merge (TermDictionary::Merge).
  void AnalyzeInto(std::string_view input, vsm::TermDictionary* dictionary,
                   std::vector<vsm::TermId>* out,
                   AnalyzerScratch* scratch = nullptr) const;

  /// Analyzes a single already-tokenized word; returns "" if it is filtered
  /// out (stopword / too short / too long).
  std::string AnalyzeWord(std::string_view word) const;

  const AnalyzerOptions& options() const { return options_; }

 private:
  AnalyzerOptions options_;
};

}  // namespace cafc::text

#endif  // CAFC_TEXT_ANALYZER_H_
