#include "text/porter_stemmer.h"

#include <cstring>

namespace cafc::text {
namespace {

// Implementation notes: this follows M. F. Porter, "An algorithm for suffix
// stripping", Program 14(3), 1980, using the same structure as the author's
// reference implementation: the word is held in a mutable buffer b[0..k],
// and `j` marks the end of the stem when a suffix match is being considered.
// Indices are signed because j may legitimately become -1 when a candidate
// suffix spans the whole word.
class Stemmer {
 public:
  /// Operates directly on `*word` (not owned), truncating it to the stem.
  explicit Stemmer(std::string* word)
      : b_(*word), k_(static_cast<int>(word->size()) - 1) {}

  void Run() {
    if (k_ <= 1) return;
    Step1ab();
    Step1c();
    Step2();
    Step3();
    Step4();
    Step5();
    b_.resize(static_cast<size_t>(k_) + 1);
  }

 private:
  // True if b_[i] is a consonant, with the Porter treatment of 'y': 'y' is a
  // consonant when at position 0 or preceded by a vowel.
  bool IsConsonant(int i) const {
    switch (b_[static_cast<size_t>(i)]) {
      case 'a':
      case 'e':
      case 'i':
      case 'o':
      case 'u':
        return false;
      case 'y':
        return i == 0 ? true : !IsConsonant(i - 1);
      default:
        return true;
    }
  }

  char At(int i) const { return b_[static_cast<size_t>(i)]; }

  // Measure m of the stem b_[0..j_]: number of VC sequences in the
  // [C](VC)^m[V] decomposition.
  int Measure() const {
    int n = 0;
    int i = 0;
    for (;;) {
      if (i > j_) return n;
      if (!IsConsonant(i)) break;
      ++i;
    }
    ++i;
    for (;;) {
      for (;;) {
        if (i > j_) return n;
        if (IsConsonant(i)) break;
        ++i;
      }
      ++i;
      ++n;
      for (;;) {
        if (i > j_) return n;
        if (!IsConsonant(i)) break;
        ++i;
      }
      ++i;
    }
  }

  // *v*: stem contains a vowel.
  bool VowelInStem() const {
    for (int i = 0; i <= j_; ++i) {
      if (!IsConsonant(i)) return true;
    }
    return false;
  }

  // *d: position i ends a double consonant.
  bool DoubleConsonant(int i) const {
    if (i < 1) return false;
    if (At(i) != At(i - 1)) return false;
    return IsConsonant(i);
  }

  // *o: b_[i-2..i] is consonant-vowel-consonant where the final consonant is
  // not w, x or y; signals a short syllable like "hop" in "hopping".
  bool CvcEnding(int i) const {
    if (i < 2 || !IsConsonant(i) || IsConsonant(i - 1) || !IsConsonant(i - 2))
      return false;
    char c = At(i);
    return c != 'w' && c != 'x' && c != 'y';
  }

  // True if b_[0..k_] ends with `suffix`; sets j_ to the stem end on match.
  bool Ends(const char* suffix) {
    int len = static_cast<int>(std::strlen(suffix));
    if (len > k_ + 1) return false;
    if (b_.compare(static_cast<size_t>(k_ + 1 - len), static_cast<size_t>(len),
                   suffix) != 0) {
      return false;
    }
    j_ = k_ - len;
    return true;
  }

  // Replaces the matched suffix (b_[j_+1..k_]) with `s`.
  void SetTo(const char* s) {
    int len = static_cast<int>(std::strlen(s));
    b_.replace(static_cast<size_t>(j_ + 1), static_cast<size_t>(k_ - j_), s);
    k_ = j_ + len;
  }

  // SetTo when the m-condition holds.
  void ReplaceIfM(const char* s) {
    if (Measure() > 0) SetTo(s);
  }

  // Step 1a: plurals. SSES→SS, IES→I, SS→SS, S→"".
  // Step 1b: -ED and -ING, with second-chance fixups.
  void Step1ab() {
    if (At(k_) == 's') {
      if (Ends("sses")) {
        k_ -= 2;
      } else if (Ends("ies")) {
        SetTo("i");
      } else if (At(k_ - 1) != 's') {
        --k_;
      }
    }
    if (Ends("eed")) {
      if (Measure() > 0) --k_;
    } else if ((Ends("ed") || Ends("ing")) && VowelInStem()) {
      k_ = j_;
      if (Ends("at")) {
        SetTo("ate");
      } else if (Ends("bl")) {
        SetTo("ble");
      } else if (Ends("iz")) {
        SetTo("ize");
      } else if (DoubleConsonant(k_)) {
        char c = At(k_);
        if (c != 'l' && c != 's' && c != 'z') --k_;
      } else if (Measure() == 1 && CvcEnding(k_)) {
        j_ = k_;
        SetTo("e");
      }
    }
  }

  // Step 1c: Y→I when there is another vowel in the stem.
  void Step1c() {
    if (Ends("y") && VowelInStem()) b_[static_cast<size_t>(k_)] = 'i';
  }

  // Step 2: double/triple suffixes mapped to single ones when m(stem) > 0.
  void Step2() {
    if (k_ < 1) return;
    switch (At(k_ - 1)) {
      case 'a':
        if (Ends("ational")) { ReplaceIfM("ate"); break; }
        if (Ends("tional")) { ReplaceIfM("tion"); break; }
        break;
      case 'c':
        if (Ends("enci")) { ReplaceIfM("ence"); break; }
        if (Ends("anci")) { ReplaceIfM("ance"); break; }
        break;
      case 'e':
        if (Ends("izer")) { ReplaceIfM("ize"); break; }
        break;
      case 'l':
        // "bli" (Porter's later revision) rather than the original "abli".
        if (Ends("bli")) { ReplaceIfM("ble"); break; }
        if (Ends("alli")) { ReplaceIfM("al"); break; }
        if (Ends("entli")) { ReplaceIfM("ent"); break; }
        if (Ends("eli")) { ReplaceIfM("e"); break; }
        if (Ends("ousli")) { ReplaceIfM("ous"); break; }
        break;
      case 'o':
        if (Ends("ization")) { ReplaceIfM("ize"); break; }
        if (Ends("ation")) { ReplaceIfM("ate"); break; }
        if (Ends("ator")) { ReplaceIfM("ate"); break; }
        break;
      case 's':
        if (Ends("alism")) { ReplaceIfM("al"); break; }
        if (Ends("iveness")) { ReplaceIfM("ive"); break; }
        if (Ends("fulness")) { ReplaceIfM("ful"); break; }
        if (Ends("ousness")) { ReplaceIfM("ous"); break; }
        break;
      case 't':
        if (Ends("aliti")) { ReplaceIfM("al"); break; }
        if (Ends("iviti")) { ReplaceIfM("ive"); break; }
        if (Ends("biliti")) { ReplaceIfM("ble"); break; }
        break;
      case 'g':
        // "logi" → "log" (Porter's later revision).
        if (Ends("logi")) { ReplaceIfM("log"); break; }
        break;
      default:
        break;
    }
  }

  // Step 3: -icate, -ative, etc.
  void Step3() {
    switch (At(k_)) {
      case 'e':
        if (Ends("icate")) { ReplaceIfM("ic"); break; }
        if (Ends("ative")) { ReplaceIfM(""); break; }
        if (Ends("alize")) { ReplaceIfM("al"); break; }
        break;
      case 'i':
        if (Ends("iciti")) { ReplaceIfM("ic"); break; }
        break;
      case 'l':
        if (Ends("ical")) { ReplaceIfM("ic"); break; }
        if (Ends("ful")) { ReplaceIfM(""); break; }
        break;
      case 's':
        if (Ends("ness")) { ReplaceIfM(""); break; }
        break;
      default:
        break;
    }
  }

  // Step 4: drop residual suffixes when m(stem) > 1.
  void Step4() {
    if (k_ < 1) return;
    switch (At(k_ - 1)) {
      case 'a':
        if (Ends("al")) break;
        return;
      case 'c':
        if (Ends("ance")) break;
        if (Ends("ence")) break;
        return;
      case 'e':
        if (Ends("er")) break;
        return;
      case 'i':
        if (Ends("ic")) break;
        return;
      case 'l':
        if (Ends("able")) break;
        if (Ends("ible")) break;
        return;
      case 'n':
        if (Ends("ant")) break;
        if (Ends("ement")) break;
        if (Ends("ment")) break;
        if (Ends("ent")) break;
        return;
      case 'o':
        // -ion only when the stem ends in s or t.
        if (Ends("ion") && j_ >= 0 && (At(j_) == 's' || At(j_) == 't')) break;
        if (Ends("ou")) break;  // as in "homologou"
        return;
      case 's':
        if (Ends("ism")) break;
        return;
      case 't':
        if (Ends("ate")) break;
        if (Ends("iti")) break;
        return;
      case 'u':
        if (Ends("ous")) break;
        return;
      case 'v':
        if (Ends("ive")) break;
        return;
      case 'z':
        if (Ends("ize")) break;
        return;
      default:
        return;
    }
    if (Measure() > 1) k_ = j_;
  }

  // Step 5a: drop final -e when m > 1, or m == 1 and not *o.
  // Step 5b: -ll → -l when m > 1.
  void Step5() {
    j_ = k_;
    if (At(k_) == 'e') {
      int m = Measure();
      if (m > 1 || (m == 1 && !CvcEnding(k_ - 1))) --k_;
    }
    if (At(k_) == 'l' && DoubleConsonant(k_) && Measure() > 1) --k_;
  }

  std::string& b_;
  int k_;      // index of last char of the current word
  int j_ = 0;  // index of last char of the stem during suffix tests
};

}  // namespace

std::string PorterStem(std::string_view word) {
  std::string copy(word);
  PorterStemInPlace(&copy);
  return copy;
}

void PorterStemInPlace(std::string* word) {
  if (word->size() <= 2) return;
  for (char c : *word) {
    if (c < 'a' || c > 'z') return;
  }
  Stemmer(word).Run();
}

}  // namespace cafc::text
