#ifndef CAFC_TEXT_PORTER_STEMMER_H_
#define CAFC_TEXT_PORTER_STEMMER_H_

#include <string>
#include <string_view>

namespace cafc::text {

/// \brief Stems `word` with the classic Porter (1980) algorithm.
///
/// Input must be lowercase ASCII letters (the word tokenizer guarantees
/// this); other characters are passed through untouched, in which case the
/// word is returned unmodified. Words of length <= 2 are returned as-is, per
/// the original algorithm.
///
/// Implements all five steps of the original paper, including the m-measure
/// conditions, *v*, *d, *o and the step-1b "second chance" rules, so that
/// e.g. "caresses"→"caress", "ponies"→"poni", "relational"→"relat",
/// "probate"→"probat", "controll"→"control".
std::string PorterStem(std::string_view word);

/// In-place variant: stems `*word` reusing its buffer (no allocation unless
/// a replacement suffix is longer than the matched one, which Porter's
/// rules never produce beyond the original length). The allocation-lean
/// path of the interning analyzer.
void PorterStemInPlace(std::string* word);

}  // namespace cafc::text

#endif  // CAFC_TEXT_PORTER_STEMMER_H_
